// Synthetic playground: generate a random multi-threaded application with a
// known root cause (the paper's Section 7.2 benchmark methodology) and
// watch all four engine variants debug it.
//
// Usage: ./build/examples/synthetic_playground [max_threads] [seed]

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/engine.h"
#include "synth/generator.h"
#include "synth/model.h"

using namespace aid;

int main(int argc, char** argv) {
  SyntheticAppOptions options;
  options.max_threads = argc > 1 ? std::max(2, std::atoi(argv[1])) : 12;
  options.seed = argc > 2 ? static_cast<uint64_t>(std::atoll(argv[2])) : 7;

  auto model_or = GenerateSyntheticApp(options);
  if (!model_or.ok()) {
    std::fprintf(stderr, "%s\n", model_or.status().ToString().c_str());
    return 1;
  }
  const GroundTruthModel& model = **model_or;

  std::printf("generated application: %zu predicates, %zu-predicate causal "
              "chain (MAXt=%d, seed=%llu)\n",
              model.size(), model.causal_chain().size(), options.max_threads,
              static_cast<unsigned long long>(options.seed));
  std::printf("ground-truth causal chain: ");
  for (PredicateId id : model.causal_chain()) {
    std::printf("P%d ", model.catalog().Get(id).occurrence);
  }
  std::printf("-> F\n\n");

  auto dag_or = model.BuildAcDag();
  if (!dag_or.ok()) {
    std::fprintf(stderr, "%s\n", dag_or.status().ToString().c_str());
    return 1;
  }
  const AcDag& dag = *dag_or;
  int junctions = 0;
  for (const auto& level : dag.TopoLevels()) {
    if (level.size() > 1) ++junctions;
  }
  std::printf("AC-DAG: %zu nodes, %d junction levels\n\n", dag.size(),
              junctions);

  struct Variant {
    const char* name;
    EngineOptions options;
  };
  const Variant kVariants[] = {
      {"AID (full)", EngineOptions::Aid()},
      {"AID-P (no predicate pruning)", EngineOptions::AidNoPredicatePruning()},
      {"AID-P-B (topological only)", EngineOptions::AidNoPruning()},
      {"TAGT (random order)", EngineOptions::Tagt()},
  };

  std::vector<PredicateId> truth = model.causal_chain();
  truth.push_back(model.failure());
  std::sort(truth.begin(), truth.end());

  for (const Variant& variant : kVariants) {
    ModelTarget target(&model);
    CausalPathDiscovery discovery(&dag, &target, variant.options);
    auto report = discovery.Run();
    if (!report.ok()) {
      std::fprintf(stderr, "%s: %s\n", variant.name,
                   report.status().ToString().c_str());
      return 1;
    }
    std::vector<PredicateId> got = report->causal_path;
    std::sort(got.begin(), got.end());
    std::printf("%-32s %3d rounds, %3d executions -> %s\n", variant.name,
                report->rounds, report->executions,
                got == truth ? "exact causal path" : "MISMATCH");
  }

  std::printf("\n(naive one-at-a-time repair would need %zu executions)\n",
              model.size());
  return 0;
}
