// Synthetic playground: generate a random multi-threaded application with a
// known root cause (the paper's Section 7.2 benchmark methodology) and
// watch all four engine variants debug it through one aid::Session.
//
// Usage: ./build/examples/synthetic_playground [max_threads] [seed]

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "api/session.h"
#include "synth/generator.h"
#include "synth/model.h"

using namespace aid;

int main(int argc, char** argv) {
  SyntheticAppOptions options;
  options.max_threads = argc > 1 ? std::max(2, std::atoi(argv[1])) : 12;
  options.seed = argc > 2 ? static_cast<uint64_t>(std::atoll(argv[2])) : 7;

  auto model_or = GenerateSyntheticApp(options);
  if (!model_or.ok()) {
    std::fprintf(stderr, "%s\n", model_or.status().ToString().c_str());
    return 1;
  }
  const GroundTruthModel& model = **model_or;

  std::printf("generated application: %zu predicates, %zu-predicate causal "
              "chain (MAXt=%d, seed=%llu)\n",
              model.size(), model.causal_chain().size(), options.max_threads,
              static_cast<unsigned long long>(options.seed));
  std::printf("ground-truth causal chain: ");
  for (PredicateId id : model.causal_chain()) {
    std::printf("P%d ", model.catalog().Get(id).occurrence);
  }
  std::printf("-> F\n\n");

  // One session over the model target; each preset runs on the shared
  // AC-DAG via Session::Run(EngineOptions).
  auto session_or = SessionBuilder().WithModel(&model).Build();
  if (!session_or.ok()) {
    std::fprintf(stderr, "%s\n", session_or.status().ToString().c_str());
    return 1;
  }
  Session& session = *session_or;

  std::vector<PredicateId> truth = model.causal_chain();
  truth.push_back(model.failure());
  std::sort(truth.begin(), truth.end());

  const EnginePreset kPresets[] = {
      EnginePreset::kAid,
      EnginePreset::kAidNoPredicatePruning,
      EnginePreset::kAidNoPruning,
      EnginePreset::kTagt,
  };

  bool printed_dag = false;
  for (EnginePreset preset : kPresets) {
    auto report = session.Run(MakeEngineOptions(preset));
    if (!report.ok()) {
      std::fprintf(stderr, "%s: %s\n",
                   std::string(EnginePresetName(preset)).c_str(),
                   report.status().ToString().c_str());
      return 1;
    }
    if (!printed_dag) {
      int junctions = 0;
      for (const auto& level : session.dag()->TopoLevels()) {
        if (level.size() > 1) ++junctions;
      }
      std::printf("AC-DAG: %d nodes, %d junction levels\n\n",
                  report->acdag_nodes, junctions);
      printed_dag = true;
    }
    std::vector<PredicateId> got = report->discovery.causal_path;
    std::sort(got.begin(), got.end());
    std::printf("%-32s %3d rounds, %3llu executions -> %s\n",
                std::string(EnginePresetName(preset)).c_str(),
                report->discovery.rounds,
                (unsigned long long)report->discovery.executions,
                got == truth ? "exact causal path" : "MISMATCH");
  }

  std::printf("\n(naive one-at-a-time repair would need %zu executions)\n",
              model.size());
  return 0;
}
