// Debugging over a remote fleet of aid_runner daemons.
//
// The same synthetic subject is debugged twice -- once in-process, once
// with every intervention replica running on a remote runner behind TCP
// (.WithRemoteFleet) -- and the two DiscoveryReports must be bit-identical:
// where a replica executes can never influence what it computes (positional
// trial indices, docs/remote_protocol.md). The fleet run is instrumented
// (.WithTelemetry): its metric totals must match its DiscoveryReport
// exactly, and its trace must contain imported host-side spans nesting
// under engine-side trial spans -- the cross-process trace contract of
// docs/telemetry.md. The program exits 1 on any divergence, which is how
// the CI loopback-fleet and fleet-telemetry jobs use it against real
// aid_runner processes.
//
// Usage:
//   ./build/examples/remote_fleet_session [flags] [host:port ...]
//       use the given already-running runners (start them with
//       ./build/aid_runner --port 7601 &); with no endpoints, a
//       self-contained demo spins up two in-process runners on loopback
//   --trace-json FILE     write the fleet run's Chrome trace-event JSON
//                         (load in Perfetto / chrome://tracing)
//   --metrics-json FILE   write the fleet run's metrics snapshot JSON

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "api/session.h"
#include "net/runner.h"
#include "synth/generator.h"
#include "synth/model.h"
#include "telemetry/telemetry.h"

using namespace aid;

namespace {

bool WriteFile(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  std::fclose(f);
  if (written != contents.size()) {
    std::fprintf(stderr, "short write to %s\n", path.c_str());
    return false;
  }
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), contents.size());
  return true;
}

/// The cross-process trace contract: every imported host-side span nests
/// under an engine-side "trial" span. Returns the number of imported
/// spans, or -1 when the contract is broken.
int CheckImportedSpans(const std::vector<SpanRecord>& spans) {
  int imported = 0;
  for (const SpanRecord& span : spans) {
    if (!span.imported) continue;
    ++imported;
    if (span.parent == 0 || span.parent > spans.size()) return -1;
    const SpanRecord& parent = spans[span.parent - 1];
    if (parent.name != "trial") return -1;
    if (span.start_us < parent.start_us || span.end_us > parent.end_us) {
      return -1;
    }
  }
  return imported;
}

}  // namespace

int main(int argc, char** argv) {
  if (!RemoteFleetSupported()) {
    std::printf("this platform has no sockets; nothing to demonstrate\n");
    return 0;
  }

  // Flags, then endpoints; two self-hosted loopback runners when none given.
  std::string trace_path;
  std::string metrics_path;
  std::vector<std::string> fleet;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace-json" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--metrics-json" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else {
      fleet.push_back(arg);
    }
  }
  std::vector<std::unique_ptr<Runner>> local_runners;
  if (fleet.empty()) {
    for (int i = 0; i < 2; ++i) {
      auto runner = Runner::Start();
      if (!runner.ok()) {
        std::fprintf(stderr, "runner start failed: %s\n",
                     runner.status().ToString().c_str());
        return 1;
      }
      fleet.push_back((*runner)->endpoint().ToString());
      local_runners.push_back(std::move(*runner));
    }
    std::printf("started 2 local runners for the demo\n");
  }
  std::printf("fleet:");
  for (const std::string& endpoint : fleet) {
    std::printf(" %s", endpoint.c_str());
  }
  std::printf("\n\n");

  SyntheticAppOptions options;
  options.max_threads = 12;
  options.seed = 7;
  auto model_or = GenerateSyntheticApp(options);
  if (!model_or.ok()) {
    std::fprintf(stderr, "%s\n", model_or.status().ToString().c_str());
    return 1;
  }
  const GroundTruthModel& model = **model_or;
  std::printf("subject: synthetic model, %zu predicates, flaky root cause "
              "(70%%)\n\n", model.size());

  auto run = [&](const std::vector<std::string>& endpoints, const char* label,
                 std::shared_ptr<Telemetry> telemetry)
      -> Result<SessionReport> {
    SessionBuilder builder;
    builder.WithFlakyModel(&model, 0.7, /*seed=*/5)
        .WithTrials(3)
        .WithParallelism(4);
    if (!endpoints.empty()) {
      builder.WithRemoteFleet(endpoints, /*trial_deadline_ms=*/30000);
    }
    if (telemetry != nullptr) builder.WithTelemetry(std::move(telemetry));
    AID_ASSIGN_OR_RETURN(Session session, builder.Build());
    AID_ASSIGN_OR_RETURN(SessionReport report, session.Run());
    std::printf("%-12s rounds=%llu executions=%llu root_cause=%s\n", label,
                (unsigned long long)report.discovery.rounds,
                (unsigned long long)report.discovery.executions,
                report.has_root_cause() ? report.root_cause.c_str() : "(none)");
    return report;
  };

  // Untraced in-process baseline; fully instrumented fleet run.
  auto in_process = run({}, "in-process", nullptr);
  if (!in_process.ok()) {
    std::fprintf(stderr, "%s\n", in_process.status().ToString().c_str());
    return 1;
  }
  std::shared_ptr<Telemetry> telemetry = Telemetry::Create();
  auto remote = run(fleet, "fleet", telemetry);
  if (!remote.ok()) {
    std::fprintf(stderr, "%s\n", remote.status().ToString().c_str());
    return 1;
  }

  if (!SameDiscoveryOutcome(in_process->discovery, remote->discovery)) {
    std::fprintf(stderr,
                 "\nBUG: fleet report diverges from the in-process run\n");
    return 1;
  }
  std::printf("\nfleet report bit-identical to the in-process run "
              "(4 replicas across %zu runner(s))\n", fleet.size());

  // Telemetry self-check: exported totals must match the fleet run's
  // DiscoveryReport exactly, and the cross-process trace must nest.
  const TelemetrySnapshot snapshot = telemetry->Snapshot();
  const DiscoveryReport& d = remote->discovery;
  struct { const char* metric; uint64_t expected; } totals[] = {
      {"aid_rounds_total", static_cast<uint64_t>(d.rounds)},
      {"aid_executions_total", d.executions},
      {"aid_speculative_executions_total", d.speculative_executions},
      {"aid_steals_total", d.steals},
      {"aid_crashed_trials_total", d.crashed_trials},
      {"aid_timed_out_trials_total", d.timed_out_trials},
  };
  for (const auto& check : totals) {
    const uint64_t got = snapshot.metrics.Value(check.metric);
    if (got != check.expected) {
      std::fprintf(stderr,
                   "\nBUG: %s=%llu does not match the DiscoveryReport "
                   "(%llu)\n",
                   check.metric, (unsigned long long)got,
                   (unsigned long long)check.expected);
      return 1;
    }
  }
  const int imported = CheckImportedSpans(snapshot.spans);
  if (imported <= 0) {
    std::fprintf(stderr,
                 "\nBUG: cross-process trace broken (%d imported spans)\n",
                 imported);
    return 1;
  }
  std::printf("telemetry consistent with the report: %llu executions, "
              "%zu spans, %d imported host spans nested under trials\n",
              (unsigned long long)d.executions, snapshot.spans.size(),
              imported);

  if (!trace_path.empty() &&
      !WriteFile(trace_path, ChromeTraceJson(snapshot.spans))) {
    return 1;
  }
  if (!metrics_path.empty() &&
      !WriteFile(metrics_path, MetricsJson(snapshot.metrics))) {
    return 1;
  }
  return 0;
}
