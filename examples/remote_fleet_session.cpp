// Debugging over a remote fleet of aid_runner daemons.
//
// The same synthetic subject is debugged twice -- once in-process, once
// with every intervention replica running on a remote runner behind TCP
// (.WithRemoteFleet) -- and the two DiscoveryReports must be bit-identical:
// where a replica executes can never influence what it computes (positional
// trial indices, docs/remote_protocol.md). The program exits 1 on any
// divergence, which is how the CI loopback-fleet job uses it against real
// aid_runner processes.
//
// Usage:
//   ./build/examples/remote_fleet_session host:port [host:port ...]
//       use the given already-running runners (start them with
//       ./build/aid_runner --port 7601 &)
//   ./build/examples/remote_fleet_session
//       self-contained demo: spins up two in-process runners on loopback

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "api/session.h"
#include "net/runner.h"
#include "synth/generator.h"
#include "synth/model.h"

using namespace aid;

int main(int argc, char** argv) {
  if (!RemoteFleetSupported()) {
    std::printf("this platform has no sockets; nothing to demonstrate\n");
    return 0;
  }

  // The fleet: endpoints from the command line, or two runners we host
  // ourselves for a self-contained demo.
  std::vector<std::string> fleet;
  std::vector<std::unique_ptr<Runner>> local_runners;
  for (int i = 1; i < argc; ++i) fleet.push_back(argv[i]);
  if (fleet.empty()) {
    for (int i = 0; i < 2; ++i) {
      auto runner = Runner::Start();
      if (!runner.ok()) {
        std::fprintf(stderr, "runner start failed: %s\n",
                     runner.status().ToString().c_str());
        return 1;
      }
      fleet.push_back((*runner)->endpoint().ToString());
      local_runners.push_back(std::move(*runner));
    }
    std::printf("started 2 local runners for the demo\n");
  }
  std::printf("fleet:");
  for (const std::string& endpoint : fleet) {
    std::printf(" %s", endpoint.c_str());
  }
  std::printf("\n\n");

  SyntheticAppOptions options;
  options.max_threads = 12;
  options.seed = 7;
  auto model_or = GenerateSyntheticApp(options);
  if (!model_or.ok()) {
    std::fprintf(stderr, "%s\n", model_or.status().ToString().c_str());
    return 1;
  }
  const GroundTruthModel& model = **model_or;
  std::printf("subject: synthetic model, %zu predicates, flaky root cause "
              "(70%%)\n\n", model.size());

  auto run = [&](const std::vector<std::string>& endpoints,
                 const char* label) -> Result<SessionReport> {
    SessionBuilder builder;
    builder.WithFlakyModel(&model, 0.7, /*seed=*/5)
        .WithTrials(3)
        .WithParallelism(4);
    if (!endpoints.empty()) {
      builder.WithRemoteFleet(endpoints, /*trial_deadline_ms=*/30000);
    }
    AID_ASSIGN_OR_RETURN(Session session, builder.Build());
    AID_ASSIGN_OR_RETURN(SessionReport report, session.Run());
    std::printf("%-12s rounds=%d executions=%llu root_cause=%s\n", label,
                report.discovery.rounds,
                (unsigned long long)report.discovery.executions,
                report.has_root_cause() ? report.root_cause.c_str() : "(none)");
    return report;
  };

  auto in_process = run({}, "in-process");
  if (!in_process.ok()) {
    std::fprintf(stderr, "%s\n", in_process.status().ToString().c_str());
    return 1;
  }
  auto remote = run(fleet, "fleet");
  if (!remote.ok()) {
    std::fprintf(stderr, "%s\n", remote.status().ToString().c_str());
    return 1;
  }

  if (!SameDiscoveryOutcome(in_process->discovery, remote->discovery)) {
    std::fprintf(stderr,
                 "\nBUG: fleet report diverges from the in-process run\n");
    return 1;
  }
  std::printf("\nfleet report bit-identical to the in-process run "
              "(4 replicas across %zu runner(s))\n", fleet.size());
  return 0;
}
