// Walkthrough of the paper's running example (Example 1, Section 7.1.1,
// Figure 9): the Npgsql #2485 data race.
//
// Prints every pipeline stage the paper illustrates:
//   Figure 9(b): execution traces of a successful and a failed run
//   Figure 9(c): extracted predicates with precision/recall
//   Section 4:   the AC-DAG (also emitted as Graphviz)
//   Section 5:   the intervention rounds and the final causal path
//
// Build & run:  ./build/examples/npgsql_race

#include <cstdio>

#include "api/session.h"
#include "casestudies/case_study.h"
#include "core/vm_target.h"
#include "runtime/vm.h"
#include "sd/statistical_debugger.h"
#include "trace/serialize.h"

using namespace aid;

int main() {
  auto study_or = MakeNpgsqlRace();
  if (!study_or.ok()) {
    std::fprintf(stderr, "%s\n", study_or.status().ToString().c_str());
    return 1;
  }
  const CaseStudy& study = *study_or;
  const Program& program = study.program;
  const TraceSymbols symbols{&program.method_names(), &program.object_names(),
                             &program.exception_names()};

  std::printf("== %s (%s) ==\n\n", study.name.c_str(), study.origin.c_str());
  std::printf("developer explanation: %s\n\n", study.root_cause.c_str());

  // --- Figure 9(b): one successful and one failed trace -------------------
  Vm vm(&program);
  bool shown_success = false;
  bool shown_failure = false;
  for (uint64_t seed = 1; seed < 200 && !(shown_success && shown_failure);
       ++seed) {
    VmOptions options;
    options.seed = seed;
    auto trace = vm.Run(options);
    if (!trace.ok()) continue;
    if (trace->failed() && !shown_failure) {
      std::printf("--- failed execution (seed %llu) ---\n%s\n",
                  static_cast<unsigned long long>(seed),
                  TraceToTsv(*trace, symbols).c_str());
      shown_failure = true;
    } else if (!trace->failed() && !shown_success) {
      std::printf("--- successful execution (seed %llu) ---\n%s\n",
                  static_cast<unsigned long long>(seed),
                  TraceToTsv(*trace, symbols).c_str());
      shown_success = true;
    }
  }

  // --- observation + Figure 9(c): predicates with precision/recall --------
  auto target_or = VmTarget::Create(&program, study.target_options);
  if (!target_or.ok()) {
    std::fprintf(stderr, "%s\n", target_or.status().ToString().c_str());
    return 1;
  }
  VmTarget& target = **target_or;
  auto sd_or = StatisticalDebugger::Analyze(target.extractor().catalog(),
                                            target.extractor().logs());
  if (!sd_or.ok()) {
    std::fprintf(stderr, "%s\n", sd_or.status().ToString().c_str());
    return 1;
  }
  std::printf("--- statistical debugging (top predicates by F1) ---\n");
  std::printf("%-62s %9s %7s\n", "predicate", "precision", "recall");
  int shown = 0;
  for (const RankedPredicate& ranked : sd_or->Ranked(0.5)) {
    if (++shown > 12) break;
    std::printf("%-62s %8.0f%% %6.0f%%\n",
                target.extractor()
                    .catalog()
                    .Describe(ranked.id, &program.method_names(),
                              &program.object_names())
                    .c_str(),
                100 * ranked.stats.precision(), 100 * ranked.stats.recall());
  }
  std::printf("fully discriminative: %zu predicates\n\n",
              sd_or->FullyDiscriminative().size());

  // --- Section 4: the AC-DAG ----------------------------------------------
  auto dag_or = target.BuildAcDag();
  if (!dag_or.ok()) {
    std::fprintf(stderr, "%s\n", dag_or.status().ToString().c_str());
    return 1;
  }
  std::printf("--- AC-DAG (%zu nodes; Graphviz) ---\n%s\n", dag_or->size(),
              dag_or->ToDot(&program.method_names(), &program.object_names())
                  .c_str());

  // --- Section 5: interventions, driven through aid::Session over the
  // hand-assembled target (MakeAdapterSessionTarget borrows the VmTarget
  // and the AC-DAG built above; no re-observation happens) ----------------
  auto session_or =
      SessionBuilder()
          .WithTarget(MakeAdapterSessionTarget(
              &target, &*dag_or, &target.extractor().catalog(),
              &program.method_names(), &program.object_names(), "npgsql"))
          .WithEngine(EnginePreset::kAid)
          .WithTrials(3)
          .Build();
  if (!session_or.ok()) {
    std::fprintf(stderr, "%s\n", session_or.status().ToString().c_str());
    return 1;
  }
  auto session_report_or = session_or->Run();
  if (!session_report_or.ok()) {
    std::fprintf(stderr, "%s\n",
                 session_report_or.status().ToString().c_str());
    return 1;
  }
  const DiscoveryReport* report_or = &session_report_or->discovery;
  std::printf("--- intervention rounds ---\n");
  for (size_t i = 0; i < report_or->history.size(); ++i) {
    const InterventionRound& round = report_or->history[i];
    std::printf("%2zu. [%s] intervene on {", i + 1, round.phase.c_str());
    for (size_t j = 0; j < round.intervened.size(); ++j) {
      std::printf("%s%s", j ? "; " : "",
                  target.extractor()
                      .catalog()
                      .Describe(round.intervened[j], &program.method_names(),
                                &program.object_names())
                      .c_str());
    }
    std::printf("} -> failure %s\n",
                round.failure_stopped ? "STOPPED" : "persists");
  }

  std::printf("\n--- causal explanation (paper: race -> out-of-bounds access "
              "-> exception -> crash) ---\n");
  for (size_t i = 0; i < report_or->causal_path.size(); ++i) {
    std::printf("  %zu. %s\n", i + 1,
                target.extractor()
                    .catalog()
                    .Describe(report_or->causal_path[i],
                              &program.method_names(),
                              &program.object_names())
                    .c_str());
  }
  std::printf("\nAID used %d intervention rounds (%llu re-executions); the "
              "paper reports 5 rounds vs 11 worst-case for TAGT.\n",
              report_or->rounds,
              (unsigned long long)report_or->executions);
  return 0;
}
