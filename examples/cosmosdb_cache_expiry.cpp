// The Cosmos DB cache-expiry timing bug (paper Section 7.1.3, Azure Cosmos
// DB .NET SDK pull request #713), rendered through the library's report
// API: transient-fault handling makes a task outlive the cache TTL, and the
// final lookup crashes on the expired entry.
//
// Build & run:  ./build/examples/cosmosdb_cache_expiry

#include <cstdio>

#include "casestudies/case_study.h"
#include "core/report.h"
#include "core/vm_target.h"

using namespace aid;

int main() {
  auto study_or = MakeCosmosDbCacheExpiry();
  if (!study_or.ok()) {
    std::fprintf(stderr, "%s\n", study_or.status().ToString().c_str());
    return 1;
  }
  const CaseStudy& study = *study_or;
  std::printf("== %s (%s) ==\n\n", study.name.c_str(), study.origin.c_str());
  std::printf("developer explanation: %s\n\n", study.root_cause.c_str());

  auto target_or = VmTarget::Create(&study.program, study.target_options);
  if (!target_or.ok()) {
    std::fprintf(stderr, "%s\n", target_or.status().ToString().c_str());
    return 1;
  }
  VmTarget& target = **target_or;
  std::printf("observed %d executions (%d failing, signature kept: the "
              "dominant failure group)\n\n",
              target.executions(), target.observed_failures());

  auto dag_or = target.BuildAcDag();
  if (!dag_or.ok()) {
    std::fprintf(stderr, "%s\n", dag_or.status().ToString().c_str());
    return 1;
  }

  EngineOptions options = EngineOptions::Aid();
  options.trials_per_intervention = 3;
  CausalPathDiscovery discovery(&*dag_or, &target, options);
  auto report_or = discovery.Run();
  if (!report_or.ok()) {
    std::fprintf(stderr, "%s\n", report_or.status().ToString().c_str());
    return 1;
  }

  ReportRenderOptions render;
  render.methods = &study.program.method_names();
  render.objects = &study.program.object_names();
  render.include_spurious = true;
  std::printf("%s", RenderReport(*report_or, *dag_or, render).c_str());
  std::printf("\npaper reference: 64 SD predicates, 7-predicate path, 15 AID "
              "vs 42 TAGT interventions\n");
  return 0;
}
