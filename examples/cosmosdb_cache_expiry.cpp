// The Cosmos DB cache-expiry timing bug (paper Section 7.1.3, Azure Cosmos
// DB .NET SDK pull request #713), rendered through the library's report
// API: transient-fault handling makes a task outlive the cache TTL, and the
// final lookup crashes on the expired entry.
//
// Uses the "case:cosmosdb" backend of the target registry: the session
// builds the whole case study internally, no program wiring needed.
//
// Build & run:  ./build/examples/cosmosdb_cache_expiry

#include <cstdio>

#include "api/session.h"

using namespace aid;

int main() {
  auto session_or = SessionBuilder()
                        .WithCaseStudy("cosmosdb")
                        .WithEngine(EnginePreset::kAid)
                        .WithTrials(3)
                        .Build();
  if (!session_or.ok()) {
    std::fprintf(stderr, "%s\n", session_or.status().ToString().c_str());
    return 1;
  }
  Session& session = *session_or;

  // name/description come from the case-study definition via the target.
  std::printf("== %s (%s) ==\n\n",
              std::string(session.target().name()).c_str(),
              std::string(session.target().description()).c_str());
  std::printf("observed %llu executions (dominant failure signature kept)\n\n",
              (unsigned long long)
                  session.target().intervention_target()->executions());

  auto report_or = session.Run();
  if (!report_or.ok()) {
    std::fprintf(stderr, "%s\n", report_or.status().ToString().c_str());
    return 1;
  }

  ReportRenderOptions render;
  render.include_spurious = true;
  std::printf("%s", session.Render(*report_or, render).c_str());
  std::printf("\npaper reference: 64 SD predicates, 7-predicate path, 15 AID "
              "vs 42 TAGT interventions\n");
  return 0;
}
