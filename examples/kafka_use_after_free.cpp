// Walkthrough of the Kafka use-after-free case study (paper Section 7.1.2,
// confluent-kafka-dotnet issue #279): a slow work item makes the child
// thread commit on a consumer the main thread has already disposed.
//
// Demonstrates the *explanation* value of AID: statistical debugging alone
// surfaces a pile of fully-discriminative predicates (wrong returns from
// every status probe, slow durations, the commit exception) with no
// indication which one to fix; AID prunes the symptoms and delivers the
// chain from the slow work item to the crash.
//
// Build & run:  ./build/examples/kafka_use_after_free

#include <cstdio>

#include "casestudies/case_study.h"
#include "casestudies/pipeline.h"
#include "sd/statistical_debugger.h"

using namespace aid;

int main() {
  auto study_or = MakeKafkaUseAfterFree();
  if (!study_or.ok()) {
    std::fprintf(stderr, "%s\n", study_or.status().ToString().c_str());
    return 1;
  }
  const CaseStudy& study = *study_or;

  std::printf("== %s (%s) ==\n\n", study.name.c_str(), study.origin.c_str());

  PipelineConfig config;
  config.aid.trials_per_intervention = 3;
  config.tagt.trials_per_intervention = 3;
  auto outcome_or = RunPipeline(study, config);
  if (!outcome_or.ok()) {
    std::fprintf(stderr, "%s\n", outcome_or.status().ToString().c_str());
    return 1;
  }
  const PipelineOutcome& outcome = *outcome_or;

  std::printf("what a developer gets from statistical debugging alone:\n");
  std::printf("  %d fully-discriminative predicates, no causal structure\n\n",
              outcome.fully_discriminative);

  std::printf("what AID adds:\n");
  std::printf("  root cause: %s\n", outcome.root_cause.c_str());
  std::printf("  causal explanation:\n");
  for (size_t i = 0; i < outcome.causal_path.size(); ++i) {
    std::printf("    %zu. %s\n", i + 1, outcome.causal_path[i].c_str());
  }
  std::printf("\n  interventions: %d rounds (TAGT on the same target: %d)\n",
              outcome.aid.rounds, outcome.tagt.rounds);
  std::printf("  predicates proven spurious: %zu\n",
              outcome.aid.spurious.size());
  std::printf("\npaper reference: 72 SD predicates, 5-predicate path, 17 AID "
              "vs 33 TAGT interventions\n");
  return 0;
}
