// Walkthrough of the Kafka use-after-free case study (paper Section 7.1.2,
// confluent-kafka-dotnet issue #279): a slow work item makes the child
// thread commit on a consumer the main thread has already disposed.
//
// Demonstrates the *explanation* value of AID: statistical debugging alone
// surfaces a pile of fully-discriminative predicates (wrong returns from
// every status probe, slow durations, the commit exception) with no
// indication which one to fix; AID prunes the symptoms and delivers the
// chain from the slow work item to the crash. The whole pipeline, plus the
// TAGT baseline on the same target, runs through one aid::Session.
//
// Build & run:  ./build/examples/kafka_use_after_free

#include <cstdio>

#include "api/session.h"
#include "casestudies/case_study.h"

using namespace aid;

int main() {
  auto study_or = MakeKafkaUseAfterFree();
  if (!study_or.ok()) {
    std::fprintf(stderr, "%s\n", study_or.status().ToString().c_str());
    return 1;
  }
  const CaseStudy& study = *study_or;

  std::printf("== %s (%s) ==\n\n", study.name.c_str(), study.origin.c_str());

  auto session_or = SessionBuilder()
                        .WithProgram(&study.program, study.target_options)
                        .WithEngine(EnginePreset::kAid)
                        .WithTrials(3)
                        .WithTagtBaseline()
                        .Build();
  if (!session_or.ok()) {
    std::fprintf(stderr, "%s\n", session_or.status().ToString().c_str());
    return 1;
  }
  auto report_or = session_or->Run();
  if (!report_or.ok()) {
    std::fprintf(stderr, "%s\n", report_or.status().ToString().c_str());
    return 1;
  }
  const SessionReport& report = *report_or;

  std::printf("what a developer gets from statistical debugging alone:\n");
  std::printf("  %d fully-discriminative predicates, no causal structure\n\n",
              report.sd_predicates);

  std::printf("what AID adds:\n");
  std::printf("  root cause: %s\n", report.root_cause.c_str());
  std::printf("  causal explanation:\n");
  for (size_t i = 0; i < report.causal_path.size(); ++i) {
    std::printf("    %zu. %s\n", i + 1, report.causal_path[i].c_str());
  }
  std::printf("\n  interventions: %d rounds (TAGT on the same target: %d)\n",
              report.discovery.rounds,
              report.tagt_baseline ? report.tagt_baseline->rounds : -1);
  std::printf("  predicates proven spurious: %zu\n",
              report.discovery.spurious.size());
  std::printf("\npaper reference: 72 SD predicates, 5-predicate path, 17 AID "
              "vs 33 TAGT interventions\n");
  return 0;
}
