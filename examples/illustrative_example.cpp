// The paper's illustrative example (Section 5.2, Figure 4): an 11-predicate
// AC-DAG whose true causal path is P1 -> P2 -> P11 -> F. AID discovers the
// path in 8 interventions where naive one-at-a-time repair would need 11.
// The discovery runs through aid::Session over the "model" backend.
//
// Build & run:  ./build/examples/illustrative_example

#include <cstdio>

#include "api/session.h"
#include "synth/model.h"

using namespace aid;

int main() {
  // Reconstruct Figure 4(a): the temporal over-approximation.
  GroundTruthModel model;
  model.AddFailure();
  PredicateId p[12];
  for (int i = 1; i <= 11; ++i) p[i] = model.AddPredicate(i);
  auto edge = [&](int a, int b) { model.AddTemporalEdge(p[a], p[b]); };
  edge(1, 2);
  edge(2, 3);
  edge(3, 4);   // branch B1 = {P4, P5, P6}
  edge(4, 5);
  edge(5, 6);
  edge(3, 7);   // branch B2 = {P7, P8, P9, P11}
  edge(7, 8);
  edge(7, 9);
  edge(8, 11);
  edge(9, 11);
  edge(6, 10);  // P10 merges below both branches
  edge(8, 10);
  edge(9, 10);

  // Figure 4(b): the actual causal structure.
  model.SetCausalChain({p[1], p[2], p[11]});
  model.SetTrueParents(p[10], {p[3], p[11]});  // effect of P3 and P11
  // P3 and P7 are spontaneous co-occurring predicates (non-causal).

  auto session_or = SessionBuilder()
                        .WithModel(&model)
                        .WithEngine(EnginePreset::kAid)
                        .Build();
  if (!session_or.ok()) {
    std::fprintf(stderr, "%s\n", session_or.status().ToString().c_str());
    return 1;
  }
  Session& session = *session_or;
  auto report = session.Run();
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  const AcDag* dag = session.dag();

  std::printf("Figure 4 AC-DAG: %zu nodes; true causal path P1 -> P2 -> P11 "
              "-> F\n\n",
              dag->size());
  std::printf("topological levels:\n");
  const auto levels = dag->TopoLevels();
  for (size_t i = 0; i < levels.size(); ++i) {
    std::printf("  level %zu: ", i);
    for (PredicateId id : levels[i]) {
      if (id == model.failure()) {
        std::printf("F ");
      } else {
        std::printf("P%d ", model.catalog().Get(id).occurrence);
      }
    }
    std::printf("%s\n", levels[i].size() > 1 ? " <- junction" : "");
  }

  std::printf("\nintervention rounds (paper: steps 1-8):\n");
  for (size_t i = 0; i < report->discovery.history.size(); ++i) {
    const InterventionRound& round = report->discovery.history[i];
    std::printf("  %zu. [%-6s] {", i + 1, round.phase.c_str());
    for (size_t j = 0; j < round.intervened.size(); ++j) {
      std::printf("%sP%d", j ? ", " : "",
                  model.catalog().Get(round.intervened[j]).occurrence);
    }
    std::printf("} -> failure %s\n",
                round.failure_stopped ? "STOPPED" : "persists");
  }

  std::printf("\ndiscovered causal path: ");
  for (PredicateId id : report->discovery.causal_path) {
    if (id == model.failure()) {
      std::printf("F");
    } else {
      std::printf("P%d -> ", model.catalog().Get(id).occurrence);
    }
  }
  std::printf("\nrounds: %d (paper: 8; naive: 11)\n", report->discovery.rounds);
  return report->discovery.rounds <= 11 ? 0 : 1;
}
