// Process-isolated debugging of a crashy, flaky subject.
//
// A synthetic application with a known root cause manifests its failure
// only probabilistically (the paper's footnote 1 regime) -- and, on top of
// that, the subject process itself is deliberately broken: every Nth trial
// it crashes outright, and every Mth it hangs. In-process execution would
// take the debugger down with it; under `.WithProcessIsolation(deadline)`
// each replica is a sandboxed aid_subject_host child, crashes become
// recorded failing trials followed by an automatic respawn, hangs are
// SIGKILLed at the deadline, and the discovery report prints exactly how
// rough the ride was.
//
// Usage: ./build/examples/subprocess_session [crash_period] [hang_period]

#include <cstdio>
#include <cstdlib>

#include "api/session.h"
#include "proc/wire.h"
#include "synth/generator.h"
#include "synth/model.h"

using namespace aid;

int main(int argc, char** argv) {
  if (!SubprocessIsolationSupported()) {
    std::printf("this platform has no fork/exec; nothing to demonstrate\n");
    return 0;
  }
  const uint64_t crash_period =
      argc > 1 ? static_cast<uint64_t>(std::atoll(argv[1])) : 9;
  const uint64_t hang_period =
      argc > 2 ? static_cast<uint64_t>(std::atoll(argv[2])) : 12;

  SyntheticAppOptions options;
  options.max_threads = 12;
  options.seed = 7;
  auto model_or = GenerateSyntheticApp(options);
  if (!model_or.ok()) {
    std::fprintf(stderr, "%s\n", model_or.status().ToString().c_str());
    return 1;
  }
  const GroundTruthModel& model = **model_or;

  std::printf("subject: %zu predicates, root cause manifests 70%% of the "
              "time,\n         crashes every %llu-th trial, hangs every "
              "%llu-th trial\n\n",
              model.size(), static_cast<unsigned long long>(crash_period),
              static_cast<unsigned long long>(hang_period));

  TargetConfig config;
  config.model = &model;
  config.manifest_probability = 0.7;
  config.flaky_seed = 5;
  config.isolation = Isolation::kSubprocess;
  config.subprocess.trial_deadline_ms = 500;  // hang -> SIGKILL after 500ms
  config.subprocess.inject_crash_period = crash_period;
  config.subprocess.inject_hang_period = hang_period;

  auto session_or = SessionBuilder()
                        .WithTarget("flaky-model", config)
                        .WithTrials(3)
                        .WithParallelism(2)
                        .Build();
  if (!session_or.ok()) {
    std::fprintf(stderr, "%s\n", session_or.status().ToString().c_str());
    return 1;
  }
  auto report_or = session_or->Run();
  if (!report_or.ok()) {
    std::fprintf(stderr, "%s\n", report_or.status().ToString().c_str());
    return 1;
  }
  const SessionReport& report = *report_or;

  std::printf("%s\n", session_or->Render(report).c_str());
  std::printf("subject survival report:\n");
  std::printf("  crashed trials:   %llu\n",
              (unsigned long long)report.discovery.crashed_trials);
  std::printf("  timed-out trials: %llu\n",
              (unsigned long long)report.discovery.timed_out_trials);
  std::printf("  child respawns:   %llu\n",
              (unsigned long long)report.discovery.respawns);
  std::printf("  executions:       %llu (%d rounds)\n",
              (unsigned long long)report.discovery.executions,
              report.discovery.rounds);
  if (report.has_root_cause()) {
    std::printf("\nroot cause pinned despite the carnage: %s\n",
                report.root_cause.c_str());
  } else {
    std::printf("\nno root cause certified\n");
  }
  return 0;
}
