// Driving the multi-tenant discovery daemon (aid_service) end to end:
// submit a session, detach it at a checkpoint, "lose" the client, and
// resume the checkpoint on a fresh connection to the bit-identical report.
//
// The subject is the paper's Figure 4 ground-truth model, submitted as a
// serialized SubjectSpec -- the daemon rebuilds it and interleaves this
// session's intervention rounds with every other tenant's.
//
// Run a daemon first (in-process targets; add --fleet for real runners):
//
//   ./build/aid_service --port 7602 &
//   ./build/examples/service_session 127.0.0.1:7602
//
// Exits 0 iff the resumed report matches an uninterrupted local run --
// CI's multi-session smoke job leans on that.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "api/target_factory.h"
#include "core/engine.h"
#include "net/socket.h"
#include "service/client.h"
#include "synth/model.h"

using namespace aid;

namespace {

// Figure 4: p10's anomalous interval has temporal paths from its true
// causes p3 and p11 plus confounded non-causes (paper Section 4).
std::unique_ptr<GroundTruthModel> Figure4Model() {
  auto model = std::make_unique<GroundTruthModel>();
  model->AddFailure();
  std::vector<PredicateId> p(12, kInvalidPredicate);
  for (int i = 1; i <= 11; ++i) {
    p[static_cast<size_t>(i)] = model->AddPredicate(i);
  }
  auto edge = [&](int a, int b) {
    model->AddTemporalEdge(p[static_cast<size_t>(a)],
                           p[static_cast<size_t>(b)]);
  };
  edge(1, 2); edge(2, 3); edge(3, 4); edge(4, 5); edge(5, 6);
  edge(3, 7); edge(7, 8); edge(7, 9); edge(8, 11); edge(9, 11);
  edge(6, 10); edge(8, 10); edge(9, 10);
  model->SetCausalChain({p[1], p[2], p[11]});
  model->SetTrueParents(p[10], {p[3], p[11]});
  return model;
}

int Fail(const char* stage, const Status& status) {
  std::fprintf(stderr, "service_session: %s: %s\n", stage,
               status.ToString().c_str());
  return 1;
}

DiscoveryReport SoloRun(const GroundTruthModel* model,
                        const EngineOptions& options, int* error) {
  auto target = MakeModelSessionTarget(model);
  if (!target.ok()) { *error = Fail("target", target.status()); return {}; }
  auto dag = (*target)->BuildAcDag();
  if (!dag.ok()) { *error = Fail("dag", dag.status()); return {}; }
  CausalPathDiscovery local(&*dag, (*target)->intervention_target(), options);
  auto report = local.Run();
  if (!report.ok()) { *error = Fail("local run", report.status()); return {}; }
  return *report;
}

/// --concurrent N: the multi-tenant path CI smokes. N sessions with
/// distinct labels and presets are submitted before any is awaited, so the
/// daemon interleaves all of them; every report must match its solo run.
/// Prints one machine-readable line per session for the metrics validator.
int RunConcurrent(const Endpoint& endpoint, int sessions) {
  auto model = Figure4Model();
  SubjectSpec spec;
  spec.kind = SubjectKind::kModel;
  spec.model = model.get();
  const EngineOptions presets[] = {EngineOptions::Aid(), EngineOptions::Tagt(),
                                   EngineOptions::Linear()};

  std::vector<std::unique_ptr<ServiceClient>> clients;
  std::vector<DiscoveryReport> solos;
  for (int i = 0; i < sessions; ++i) {
    const EngineOptions& engine = presets[static_cast<size_t>(i) % 3];
    int error = 0;
    solos.push_back(SoloRun(model.get(), engine, &error));
    if (error != 0) return error;
    auto client = ServiceClient::Connect(endpoint);
    if (!client.ok()) return Fail("connect", client.status());
    ServiceSubmission submission;
    submission.label = "smoke-" + std::to_string(i + 1);
    submission.spec = spec;
    submission.engine = engine;
    auto accepted = (*client)->Submit(submission);
    if (!accepted.ok()) return Fail("submit", accepted.status());
    clients.push_back(std::move(*client));
  }
  for (int i = 0; i < sessions; ++i) {
    auto outcome = clients[static_cast<size_t>(i)]->Await(
        /*timeout_ms=*/120000);
    if (!outcome.ok()) return Fail("await", outcome.status());
    if (outcome->checkpointed ||
        !SameDiscoveryOutcome(outcome->report, solos[static_cast<size_t>(i)])) {
      std::fprintf(stderr, "service_session: session smoke-%d DIVERGED from "
                           "its solo run\n", i + 1);
      return 1;
    }
    std::printf("session smoke-%d rounds=%llu executions=%llu\n", i + 1,
                (unsigned long long)outcome->report.rounds,
                (unsigned long long)outcome->report.executions);
  }
  std::printf("%d concurrent sessions, every report bit-identical to its "
              "solo run\n", sessions);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 4 && std::string(argv[1]) == "--concurrent") {
    const int sessions = std::atoi(argv[2]);
    auto endpoint = ParseEndpoint(argv[3]);
    if (!endpoint.ok()) return Fail("endpoint", endpoint.status());
    if (sessions < 1) {
      std::fprintf(stderr, "usage: service_session --concurrent N HOST:PORT\n");
      return 2;
    }
    return RunConcurrent(*endpoint, sessions);
  }
  if (argc != 2) {
    std::fprintf(stderr,
                 "usage: service_session [--concurrent N] HOST:PORT\n");
    return 2;
  }
  auto endpoint = ParseEndpoint(argv[1]);
  if (!endpoint.ok()) return Fail("endpoint", endpoint.status());

  auto model = Figure4Model();
  SubjectSpec spec;
  spec.kind = SubjectKind::kModel;
  spec.model = model.get();
  const EngineOptions engine = EngineOptions::Aid();

  // The ground truth the daemon is held to: an uninterrupted local run.
  auto target = MakeModelSessionTarget(model.get());
  if (!target.ok()) return Fail("target", target.status());
  auto dag = (*target)->BuildAcDag();
  if (!dag.ok()) return Fail("dag", dag.status());
  CausalPathDiscovery local(&*dag, (*target)->intervention_target(), engine);
  auto solo = local.Run();
  if (!solo.ok()) return Fail("local run", solo.status());
  std::printf("local run: %llu rounds, %llu executions\n",
              (unsigned long long)solo->rounds,
              (unsigned long long)solo->executions);

  // 1. Submit, asking the daemon to checkpoint after 3 rounds.
  auto client = ServiceClient::Connect(*endpoint);
  if (!client.ok()) return Fail("connect", client.status());
  ServiceSubmission submission;
  submission.label = "figure4-demo";
  submission.spec = spec;
  submission.engine = engine;
  submission.checkpoint_after_rounds = 3;
  auto accepted = (*client)->Submit(submission);
  if (!accepted.ok()) return Fail("submit", accepted.status());
  std::printf("submitted: session %llu\n",
              (unsigned long long)accepted->session_id);

  // 2. The daemon detaches the session at the boundary and ships the
  //    serialized DiscoveryState back.
  auto checkpointed = (*client)->Await(/*timeout_ms=*/60000);
  if (!checkpointed.ok()) return Fail("await checkpoint",
                                      checkpointed.status());
  if (!checkpointed->checkpointed) {
    std::fprintf(stderr, "service_session: expected a checkpoint, got the "
                         "final report\n");
    return 1;
  }
  std::printf("checkpointed: %llu rounds, %llu executions, %zu state bytes\n",
              (unsigned long long)checkpointed->checkpoint.rounds,
              (unsigned long long)checkpointed->checkpoint.executions,
              checkpointed->checkpoint.state.size());

  // 3. "Kill" the client: drop the connection. Only the state bytes and
  //    the spec survive -- exactly what a crash-and-restart would hold.
  const std::string state = checkpointed->checkpoint.state;
  client->reset();

  // 4. Resume on a fresh connection (any daemon serving the same subjects
  //    would do) and run to completion.
  auto resumer = ServiceClient::Connect(*endpoint);
  if (!resumer.ok()) return Fail("reconnect", resumer.status());
  ServiceSubmission resume;
  resume.label = "figure4-demo-resumed";
  resume.spec = spec;
  resume.engine = engine;
  resume.resume_state = state;
  auto readmitted = (*resumer)->Submit(resume);
  if (!readmitted.ok()) return Fail("resubmit", readmitted.status());
  std::printf("resumed: session %llu (resumed=%d)\n",
              (unsigned long long)readmitted->session_id,
              readmitted->resumed ? 1 : 0);
  auto outcome = (*resumer)->Await(/*timeout_ms=*/60000);
  if (!outcome.ok()) return Fail("await report", outcome.status());
  if (outcome->checkpointed) {
    std::fprintf(stderr, "service_session: expected the final report, got "
                         "another checkpoint\n");
    return 1;
  }

  std::printf("final report: %llu rounds, %llu executions, %zu causal "
              "predicates\n",
              (unsigned long long)outcome->report.rounds,
              (unsigned long long)outcome->report.executions,
              outcome->report.causal_path.size());
  if (!SameDiscoveryOutcome(outcome->report, *solo)) {
    std::fprintf(stderr, "service_session: resumed report DIVERGED from the "
                         "uninterrupted run\n");
    return 1;
  }
  std::printf("resumed report is bit-identical to the uninterrupted run\n");
  return 0;
}
