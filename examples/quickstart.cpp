// Quickstart: debug an intermittently failing program with AID.
//
// The subject program has a classic atomicity bug: a writer thread updates
// a config version and only later updates the matching checksum, while a
// reader validates (version, checksum) consistency. When the reader lands
// inside the writer's update window, validation throws.
//
// The whole workflow -- observation, statistical debugging, AC-DAG
// construction, causality-guided interventions -- runs through the public
// aid::Session API; an Observer streams progress while the pipeline works.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "api/session.h"
#include "runtime/program.h"

using namespace aid;

namespace {

Result<Program> BuildSubjectProgram() {
  ProgramBuilder b;
  b.Global("version", 1);
  b.Global("checksum", 1);

  {
    auto m = b.Method("Main");
    m.Spawn(0, "Writer").Spawn(1, "Reader").Join(0).Join(1).Return();
  }
  {
    // The writer thread picks its moment, then publishes the new config.
    auto m = b.Method("Writer");
    m.Random(0, 2);
    const size_t late = m.JumpIfNonZeroPlaceholder(0);
    m.Delay(10);
    const size_t go = m.JumpPlaceholder();
    m.PatchTarget(late);
    m.Delay(70);
    m.PatchTarget(go);
    m.CallVoid("PublishConfig").Return();
  }
  {
    // PublishConfig bumps the version, then (non-atomically) the checksum:
    // its whole execution is the inconsistency window.
    auto m = b.Method("PublishConfig");
    m.LoadConst(1, 2)
        .StoreGlobal("version", 1)
        .Delay(30)
        .StoreGlobal("checksum", 1)
        .Return();
  }
  {
    auto m = b.Method("Reader");
    m.Random(0, 2);
    const size_t late = m.JumpIfNonZeroPlaceholder(0);
    m.Delay(30);
    const size_t go = m.JumpPlaceholder();
    m.PatchTarget(late);
    m.Delay(85);
    m.PatchTarget(go);
    m.CallVoid("ValidateConfig").Return();
  }
  {
    auto m = b.Method("ValidateConfig");
    m.SideEffectFree();
    m.LoadGlobal(0, "version")
        .LoadGlobal(1, "checksum")
        .CmpEq(2, 0, 1)
        .ThrowIfZero(2, "ChecksumMismatch")
        .Return(2);
  }
  return b.Build("Main");
}

/// Streams pipeline progress to stdout as the session works.
class ProgressPrinter : public Observer {
 public:
  void OnPhaseChanged(SessionPhase phase) override {
    std::printf("[phase] %s\n",
                std::string(SessionPhaseName(phase)).c_str());
  }
  void OnRoundFinished(const ObservedRound& round) override {
    std::printf("[round %2llu] %-6s intervened on %zu predicate(s) -> %s\n",
                static_cast<unsigned long long>(round.round),
                std::string(round.phase).c_str(),
                round.intervened.size(),
                round.failure_stopped ? "failure stopped" : "still failing");
  }
  void OnPredicateDecided(PredicateId id, bool causal) override {
    if (causal) std::printf("[decide] predicate %d is causal\n", id);
  }
};

}  // namespace

int main() {
  auto program_or = BuildSubjectProgram();
  if (!program_or.ok()) {
    std::fprintf(stderr, "program: %s\n", program_or.status().ToString().c_str());
    return 1;
  }
  const Program& program = *program_or;

  std::printf("== AID quickstart: intermittent checksum mismatch ==\n\n");

  ProgressPrinter progress;
  VmTargetOptions options;
  options.min_successes = 50;
  options.min_failures = 50;

  auto session_or = SessionBuilder()
                        .WithProgram(&program, options)
                        .WithEngine(EnginePreset::kAid)
                        .WithTrials(3)
                        .WithStaticAnalysis()    // lint + dependence pruning
                        .WithAdaptiveBudget()    // SPRT trial allocation
                        .WithTelemetry()         // metrics + pipeline trace
                        .WithObserver(&progress)
                        .Build();
  if (!session_or.ok()) {
    std::fprintf(stderr, "build: %s\n",
                 session_or.status().ToString().c_str());
    return 1;
  }
  Session& session = *session_or;
  std::printf("observed %llu executions\n",
              (unsigned long long)
                  session.target().intervention_target()->executions());

  auto report_or = session.Run();
  if (!report_or.ok()) {
    std::fprintf(stderr, "run: %s\n", report_or.status().ToString().c_str());
    return 1;
  }
  const SessionReport& report = *report_or;

  std::printf("\nstatistical debugging: %d fully-discriminative predicates\n",
              report.sd_predicates);
  std::printf("AC-DAG: %d nodes (after safety & reachability filters)\n",
              report.acdag_nodes);
  const AnalysisSummary& analysis = report.discovery.analysis;
  if (analysis.ran) {
    std::printf("static analysis: %llu/%llu candidate edges pruned, "
                "%llu lint warning(s)\n",
                (unsigned long long)analysis.edges_pruned,
                (unsigned long long)analysis.edges_before,
                (unsigned long long)analysis.lint_warnings);
  }
  if (report.discovery.budgeted_trials_allocated > 0) {
    std::printf("adaptive budgeting: %llu trials run, %lld saved vs the "
                "fixed count, %llu early stops\n",
                (unsigned long long)report.discovery.budgeted_trials_allocated,
                (long long)report.discovery.budgeted_trials_saved,
                (unsigned long long)report.discovery.budget_early_stops);
  }
  std::printf(
      "\nAID finished in %llu intervention rounds (%llu re-executions)\n",
      (unsigned long long)report.discovery.rounds,
      (unsigned long long)report.discovery.executions);

  std::printf("\nroot cause:\n  %s\n",
              report.has_root_cause() ? report.root_cause.c_str()
                                      : "(none found)");
  std::printf("\ncausal explanation path:\n");
  for (size_t i = 0; i < report.causal_path.size(); ++i) {
    std::printf("  %zu. %s\n", i + 1, report.causal_path[i].c_str());
  }

  // Where did the run spend its effort? The telemetry snapshot carries the
  // same totals as the report plus the span tree; exporters (MetricsJson,
  // ChromeTraceJson, PrometheusText) turn it into files -- see
  // examples/remote_fleet_session.cpp and docs/telemetry.md.
  const TelemetrySnapshot telemetry = session.TelemetrySnapshot();
  std::printf("\ntelemetry: %llu rounds, %llu executions, %zu spans "
              "recorded\n",
              (unsigned long long)
                  telemetry.metrics.Value("aid_rounds_total"),
              (unsigned long long)
                  telemetry.metrics.Value("aid_executions_total"),
              telemetry.spans.size());
  return 0;
}
