// Quickstart: debug an intermittently failing program with AID.
//
// The subject program has a classic atomicity bug: a writer thread updates
// a config version and only later updates the matching checksum, while a
// reader validates (version, checksum) consistency. When the reader lands
// inside the writer's update window, validation throws.
//
// The example walks the full AID workflow:
//   1. observe: run the program across seeds, collect predicate logs
//   2. statistical debugging: fully-discriminative predicates
//   3. AC-DAG: approximate causality from temporal precedence
//   4. causality-guided interventions: root cause + causal path
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "causal/acdag.h"
#include "core/engine.h"
#include "core/vm_target.h"
#include "runtime/program.h"
#include "sd/statistical_debugger.h"

using namespace aid;

namespace {

Result<Program> BuildSubjectProgram() {
  ProgramBuilder b;
  b.Global("version", 1);
  b.Global("checksum", 1);

  {
    auto m = b.Method("Main");
    m.Spawn(0, "Writer").Spawn(1, "Reader").Join(0).Join(1).Return();
  }
  {
    // The writer thread picks its moment, then publishes the new config.
    auto m = b.Method("Writer");
    m.Random(0, 2);
    const size_t late = m.JumpIfNonZeroPlaceholder(0);
    m.Delay(10);
    const size_t go = m.JumpPlaceholder();
    m.PatchTarget(late);
    m.Delay(70);
    m.PatchTarget(go);
    m.CallVoid("PublishConfig").Return();
  }
  {
    // PublishConfig bumps the version, then (non-atomically) the checksum:
    // its whole execution is the inconsistency window.
    auto m = b.Method("PublishConfig");
    m.LoadConst(1, 2)
        .StoreGlobal("version", 1)
        .Delay(30)
        .StoreGlobal("checksum", 1)
        .Return();
  }
  {
    auto m = b.Method("Reader");
    m.Random(0, 2);
    const size_t late = m.JumpIfNonZeroPlaceholder(0);
    m.Delay(30);
    const size_t go = m.JumpPlaceholder();
    m.PatchTarget(late);
    m.Delay(85);
    m.PatchTarget(go);
    m.CallVoid("ValidateConfig").Return();
  }
  {
    auto m = b.Method("ValidateConfig");
    m.SideEffectFree();
    m.LoadGlobal(0, "version")
        .LoadGlobal(1, "checksum")
        .CmpEq(2, 0, 1)
        .ThrowIfZero(2, "ChecksumMismatch")
        .Return(2);
  }
  return b.Build("Main");
}

}  // namespace

int main() {
  auto program_or = BuildSubjectProgram();
  if (!program_or.ok()) {
    std::fprintf(stderr, "program: %s\n", program_or.status().ToString().c_str());
    return 1;
  }
  const Program& program = *program_or;

  std::printf("== AID quickstart: intermittent checksum mismatch ==\n\n");

  // 1. Observation phase.
  VmTargetOptions options;
  options.min_successes = 50;
  options.min_failures = 50;
  auto target_or = VmTarget::Create(&program, options);
  if (!target_or.ok()) {
    std::fprintf(stderr, "observe: %s\n", target_or.status().ToString().c_str());
    return 1;
  }
  VmTarget& target = **target_or;
  std::printf("observed %d executions (%d failing)\n", target.executions(),
              target.observed_failures());

  // 2. Statistical debugging.
  auto sd_or = StatisticalDebugger::Analyze(target.extractor().catalog(),
                                            target.extractor().logs());
  if (!sd_or.ok()) {
    std::fprintf(stderr, "sd: %s\n", sd_or.status().ToString().c_str());
    return 1;
  }
  const auto discriminative = sd_or->FullyDiscriminative();
  std::printf("statistical debugging: %zu fully-discriminative predicates\n",
              discriminative.size());
  for (PredicateId id : discriminative) {
    std::printf("  - %s\n",
                target.extractor()
                    .catalog()
                    .Describe(id, &program.method_names(),
                              &program.object_names())
                    .c_str());
  }

  // 3. AC-DAG.
  auto dag_or = target.BuildAcDag();
  if (!dag_or.ok()) {
    std::fprintf(stderr, "acdag: %s\n", dag_or.status().ToString().c_str());
    return 1;
  }
  const AcDag& dag = *dag_or;
  std::printf("\nAC-DAG: %zu nodes (after safety & reachability filters)\n",
              dag.size());

  // 4. Causality-guided interventions.
  EngineOptions engine_options = EngineOptions::Aid();
  engine_options.trials_per_intervention = 3;
  CausalPathDiscovery discovery(&dag, &target, engine_options);
  auto report_or = discovery.Run();
  if (!report_or.ok()) {
    std::fprintf(stderr, "aid: %s\n", report_or.status().ToString().c_str());
    return 1;
  }
  const DiscoveryReport& report = *report_or;

  std::printf("\nAID finished in %d intervention rounds (%d re-executions)\n",
              report.rounds, report.executions);
  std::printf("\nroot cause:\n  %s\n",
              report.root_cause() == kInvalidPredicate
                  ? "(none found)"
                  : target.extractor()
                        .catalog()
                        .Describe(report.root_cause(), &program.method_names(),
                                  &program.object_names())
                        .c_str());
  std::printf("\ncausal explanation path:\n");
  for (size_t i = 0; i < report.causal_path.size(); ++i) {
    std::printf("  %zu. %s\n", i + 1,
                target.extractor()
                    .catalog()
                    .Describe(report.causal_path[i], &program.method_names(),
                              &program.object_names())
                    .c_str());
  }
  return 0;
}
