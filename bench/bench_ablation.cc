// Ablation bench: quantifies the contribution of each AID design choice
// called out in DESIGN.md, beyond the Figure 8 variant comparison:
//
//   1. junction width (branch pruning's leverage grows with B);
//   2. causal-chain length D (predicate pruning's leverage grows with D,
//      matching Theorem 3's D(D-1) S2 / 2N term);
//   3. trials per intervention (robustness cost on nondeterministic
//      targets: rounds stay constant, executions scale linearly).

#include <cstdio>

#include "api/session.h"
#include "synth/generator.h"
#include "synth/model.h"

namespace {

using namespace aid;

double AverageRounds(const GroundTruthModel& model, EngineOptions options,
                     int repeats) {
  auto session =
      SessionBuilder().WithModel(&model).WithDescriptions(false).Build();
  if (!session.ok()) return -1;
  double total = 0;
  for (int i = 0; i < repeats; ++i) {
    options.seed = static_cast<uint64_t>(i) + 1;
    auto report = session->Run(options);
    if (!report.ok()) return -1;
    total += report->discovery.rounds;
  }
  return total / repeats;
}

}  // namespace

int main() {
  std::printf("Ablation 1: junction width B (symmetric DAG, J=2, n=3, D=3)\n");
  std::printf("%4s | %10s %10s %12s\n", "B", "AID", "AID-P", "no branches");
  for (int b : {2, 4, 8, 16}) {
    auto model = MakeSymmetricModel(2, b, 3, 3, /*seed=*/9);
    if (!model.ok()) continue;
    std::printf("%4d | %10.1f %10.1f %12.1f\n", b,
                AverageRounds(**model, EngineOptions::Aid(), 5),
                AverageRounds(**model,
                              EngineOptions::AidNoPredicatePruning(), 5),
                AverageRounds(**model, EngineOptions::AidNoPruning(), 5));
  }

  std::printf("\nAblation 2: causal chain length D (symmetric DAG, J=3, B=4, "
              "n=4)\n");
  std::printf("%4s | %10s %14s %10s\n", "D", "AID", "AID no pred-prune",
              "TAGT");
  for (int d : {1, 3, 6, 9, 12}) {
    auto model = MakeSymmetricModel(3, 4, 4, d, /*seed=*/4);
    if (!model.ok()) continue;
    std::printf("%4d | %10.1f %14.1f %10.1f\n", d,
                AverageRounds(**model, EngineOptions::Aid(), 5),
                AverageRounds(**model,
                              EngineOptions::AidNoPredicatePruning(), 5),
                AverageRounds(**model, EngineOptions::Tagt(), 5));
  }

  std::printf("\nAblation 3: trials per intervention (rounds constant, "
              "executions linear)\n");
  std::printf("%7s | %7s %12s\n", "trials", "rounds", "executions");
  {
    SyntheticAppOptions options;
    options.max_threads = 12;
    options.seed = 21;
    auto model = GenerateSyntheticApp(options);
    if (model.ok()) {
      auto session = SessionBuilder()
                         .WithModel(model->get())
                         .WithDescriptions(false)
                         .Build();
      if (session.ok()) {
        for (int trials : {1, 3, 5, 10}) {
          EngineOptions engine = EngineOptions::Aid();
          engine.trials_per_intervention = trials;
          auto report = session->Run(engine);
          if (report.ok()) {
            std::printf("%7d | %7d %12llu\n", trials,
                        report->discovery.rounds,
                        (unsigned long long)report->discovery.executions);
          }
        }
      }
    }
  }
  return 0;
}
