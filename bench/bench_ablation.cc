// Ablation bench: quantifies the contribution of each AID design choice
// called out in DESIGN.md, beyond the Figure 8 variant comparison:
//
//   1. junction width (branch pruning's leverage grows with B);
//   2. causal-chain length D (predicate pruning's leverage grows with D,
//      matching Theorem 3's D(D-1) S2 / 2N term);
//   3. trials per intervention (robustness cost on nondeterministic
//      targets: rounds stay constant, executions scale linearly);
//   4. static dependence analysis (src/analysis/): AC-DAG edges pruned and
//      executions saved across all six case studies and the fig7/fig8
//      synthetics, self-checked -- the process exits nonzero unless the
//      root cause stays bit-identical everywhere, aggregate pruning
//      reaches 10% of edges, and aggregate executions strictly drop.
//   5. adaptive intervention budgeting (src/budget/): SPRT trial
//      allocation vs the fixed-trial engine, self-checked -- nonzero exit
//      unless every target reaches the identical root cause with no more
//      executions, and every flaky-backend target with STRICTLY fewer.

#include <cstdio>
#include <string>
#include <vector>

#include "api/session.h"
#include "bench_json.h"
#include "casestudies/case_study.h"
#include "synth/generator.h"
#include "synth/model.h"

namespace {

using namespace aid;

double AverageRounds(const GroundTruthModel& model, EngineOptions options,
                     int repeats) {
  auto session =
      SessionBuilder().WithModel(&model).WithDescriptions(false).Build();
  if (!session.ok()) return -1;
  double total = 0;
  for (int i = 0; i < repeats; ++i) {
    options.seed = static_cast<uint64_t>(i) + 1;
    auto report = session->Run(options);
    if (!report.ok()) return -1;
    total += static_cast<double>(report->discovery.rounds);
  }
  return total / repeats;
}

}  // namespace


namespace {

struct AblationRow {
  std::string name;
  bool ok = false;
  bool path_identical = false;
  uint64_t executions_baseline = 0;
  uint64_t executions_analyzed = 0;
  size_t edges_before = 0;
  size_t edges_pruned = 0;
};

template <typename Configure>
AblationRow RunStaticAnalysisPair(const std::string& name,
                                  Configure&& configure) {
  AblationRow row;
  row.name = name;

  SessionBuilder baseline_builder;
  configure(baseline_builder);
  auto baseline = baseline_builder.WithSeed(11).Build();
  if (!baseline.ok()) return row;
  auto baseline_report = baseline->Run();
  if (!baseline_report.ok()) return row;

  SessionBuilder analyzed_builder;
  configure(analyzed_builder);
  auto analyzed = analyzed_builder.WithSeed(11).WithStaticAnalysis().Build();
  if (!analyzed.ok()) return row;
  auto analyzed_report = analyzed->Run();
  if (!analyzed_report.ok()) return row;

  row.ok = true;
  row.path_identical = analyzed_report->discovery.causal_path ==
                       baseline_report->discovery.causal_path;
  row.executions_baseline = baseline_report->discovery.executions;
  row.executions_analyzed = analyzed_report->discovery.executions;
  row.edges_before = analyzed_report->discovery.analysis.edges_before;
  row.edges_pruned = analyzed_report->discovery.analysis.edges_pruned;
  return row;
}

/// Runs ablation 4 and returns the process exit code (0 = all invariants
/// hold).
int RunStaticAnalysisAblation(bench::BenchJson& profile) {
  std::printf("\nAblation 4: static dependence analysis (edge pruning)\n");
  std::printf("%-18s | %8s %8s %7s | %12s %12s | %s\n", "target", "edges",
              "pruned", "prune%", "exec (base)", "exec (SA)", "same path");

  std::vector<AblationRow> rows;
  for (const std::string& key : CaseStudyKeys()) {
    rows.push_back(RunStaticAnalysisPair(
        key, [&](SessionBuilder& b) { b.WithCaseStudy(key); }));
  }
  std::vector<std::unique_ptr<GroundTruthModel>> keep_alive;
  for (const uint64_t seed : {3ull, 21ull}) {
    SyntheticAppOptions options;
    options.max_threads = 12;
    options.seed = seed;
    auto model = GenerateSyntheticApp(options);
    if (!model.ok()) continue;
    keep_alive.push_back(std::move(*model));
    const GroundTruthModel* raw = keep_alive.back().get();
    rows.push_back(RunStaticAnalysisPair(
        "fig8-seed" + std::to_string(seed),
        [raw](SessionBuilder& b) { b.WithModel(raw); }));
  }
  for (const int branches : {3, 6}) {
    auto model = MakeSymmetricModel(3, branches, 3, 4, /*seed=*/9);
    if (!model.ok()) continue;
    keep_alive.push_back(std::move(*model));
    const GroundTruthModel* raw = keep_alive.back().get();
    rows.push_back(RunStaticAnalysisPair(
        "fig5c-B" + std::to_string(branches),
        [raw](SessionBuilder& b) { b.WithModel(raw); }));
  }

  size_t edges_before = 0;
  size_t edges_pruned = 0;
  uint64_t exec_baseline = 0;
  uint64_t exec_analyzed = 0;
  bool all_ok = true;
  for (const AblationRow& row : rows) {
    if (!row.ok) {
      std::printf("%-18s | failed to run\n", row.name.c_str());
      all_ok = false;
      continue;
    }
    const double pct =
        row.edges_before == 0
            ? 0.0
            : 100.0 * row.edges_pruned / row.edges_before;
    std::printf("%-18s | %8zu %8zu %6.1f%% | %12llu %12llu | %s\n",
                row.name.c_str(), row.edges_before, row.edges_pruned, pct,
                (unsigned long long)row.executions_baseline,
                (unsigned long long)row.executions_analyzed,
                row.path_identical ? "yes" : "NO");
    all_ok = all_ok && row.path_identical &&
             row.executions_analyzed <= row.executions_baseline;
    edges_before += row.edges_before;
    edges_pruned += row.edges_pruned;
    exec_baseline += row.executions_baseline;
    exec_analyzed += row.executions_analyzed;
  }

  const double aggregate_pct =
      edges_before == 0 ? 0.0 : 100.0 * edges_pruned / edges_before;
  profile.Metric("sa_edges_before", static_cast<double>(edges_before));
  profile.Metric("sa_edges_pruned", static_cast<double>(edges_pruned));
  profile.Metric("sa_prune_pct", aggregate_pct);
  profile.Metric("sa_exec_baseline", static_cast<double>(exec_baseline));
  profile.Metric("sa_exec_analyzed", static_cast<double>(exec_analyzed));
  std::printf("%-18s | %8zu %8zu %6.1f%% | %12llu %12llu |\n", "aggregate",
              edges_before, edges_pruned, aggregate_pct,
              (unsigned long long)exec_baseline,
              (unsigned long long)exec_analyzed);

  int failures = 0;
  if (!all_ok) {
    std::printf("SELF-CHECK FAILED: a target lost root-cause parity or "
                "executions grew\n");
    ++failures;
  }
  if (aggregate_pct < 10.0) {
    std::printf("SELF-CHECK FAILED: aggregate pruning %.1f%% < 10%%\n",
                aggregate_pct);
    ++failures;
  }
  if (exec_analyzed >= exec_baseline) {
    std::printf("SELF-CHECK FAILED: aggregate executions did not drop "
                "(%llu -> %llu)\n",
                (unsigned long long)exec_baseline,
                (unsigned long long)exec_analyzed);
    ++failures;
  }
  if (failures == 0) {
    std::printf("self-check: parity, >=10%% pruning, and fewer executions "
                "all hold\n");
  }
  return failures;
}

struct BudgetRow {
  std::string name;
  bool ok = false;
  bool root_cause_identical = false;
  uint64_t executions_fixed = 0;
  uint64_t executions_budgeted = 0;
  int64_t trials_saved = 0;
  bool require_strict = false;  ///< flaky backends must strictly improve
};

template <typename Configure>
BudgetRow RunBudgetPair(const std::string& name, int trials,
                        bool require_strict, Configure&& configure) {
  BudgetRow row;
  row.name = name;
  row.require_strict = require_strict;

  SessionBuilder fixed_builder;
  configure(fixed_builder);
  auto fixed = fixed_builder.WithTrials(trials).WithSeed(11).Build();
  if (!fixed.ok()) return row;
  auto fixed_report = fixed->Run();
  if (!fixed_report.ok()) return row;

  SessionBuilder budgeted_builder;
  configure(budgeted_builder);
  auto budgeted = budgeted_builder.WithTrials(trials)
                      .WithSeed(11)
                      .WithAdaptiveBudget()
                      .Build();
  if (!budgeted.ok()) return row;
  auto budgeted_report = budgeted->Run();
  if (!budgeted_report.ok()) return row;

  row.ok = true;
  row.root_cause_identical = budgeted_report->discovery.root_cause() ==
                                 fixed_report->discovery.root_cause() &&
                             fixed_report->discovery.has_root_cause();
  row.executions_fixed = fixed_report->discovery.executions;
  row.executions_budgeted = budgeted_report->discovery.executions;
  row.trials_saved = budgeted_report->discovery.budgeted_trials_saved;
  return row;
}

/// Runs ablation 5 and returns the number of self-check failures.
int RunBudgetingAblation(bench::BenchJson& profile) {
  std::printf("\nAblation 5: adaptive intervention budgeting (SPRT trial "
              "allocation)\n");
  std::printf("%-22s | %12s %12s %8s %7s | %s\n", "target", "exec (fixed)",
              "exec (budget)", "saved", "spend%", "same root cause");

  std::vector<BudgetRow> rows;
  // The six case studies: deterministic VM targets at the paper's 3 trials.
  // Budgeting must never lose the root cause or spend more.
  for (const std::string& key : CaseStudyKeys()) {
    rows.push_back(RunBudgetPair(key, /*trials=*/3, /*require_strict=*/false,
                                 [&](SessionBuilder& b) {
                                   b.WithCaseStudy(key);
                                 }));
  }
  // The fig7/fig8 synthetics on the flaky-model backend: the regime the
  // budgeter exists for. Identical root cause, STRICTLY fewer executions.
  std::vector<std::unique_ptr<GroundTruthModel>> keep_alive;
  for (const uint64_t seed : {3ull, 7ull, 21ull}) {
    SyntheticAppOptions options;
    options.max_threads = 12;
    options.seed = seed;
    auto model = GenerateSyntheticApp(options);
    if (!model.ok()) continue;
    keep_alive.push_back(std::move(*model));
    const GroundTruthModel* raw = keep_alive.back().get();
    rows.push_back(RunBudgetPair(
        "fig8-flaky-seed" + std::to_string(seed), /*trials=*/5,
        /*require_strict=*/true, [raw, seed](SessionBuilder& b) {
          b.WithFlakyModel(raw, 0.8, /*seed=*/seed);
        }));
  }
  for (const int branches : {3, 6}) {
    auto model = MakeSymmetricModel(3, branches, 3, 4, /*seed=*/9);
    if (!model.ok()) continue;
    keep_alive.push_back(std::move(*model));
    const GroundTruthModel* raw = keep_alive.back().get();
    rows.push_back(RunBudgetPair(
        "fig7-flaky-B" + std::to_string(branches), /*trials=*/5,
        /*require_strict=*/true, [raw](SessionBuilder& b) {
          b.WithFlakyModel(raw, 0.8, /*seed=*/1);
        }));
  }

  uint64_t exec_fixed = 0;
  uint64_t exec_budgeted = 0;
  int failures = 0;
  for (const BudgetRow& row : rows) {
    if (!row.ok) {
      std::printf("%-22s | failed to run\n", row.name.c_str());
      ++failures;
      continue;
    }
    const double pct = row.executions_fixed == 0
                           ? 0.0
                           : 100.0 * row.executions_budgeted /
                                 row.executions_fixed;
    std::printf("%-22s | %12llu %12llu %8lld %6.1f%% | %s\n",
                row.name.c_str(), (unsigned long long)row.executions_fixed,
                (unsigned long long)row.executions_budgeted,
                (long long)row.trials_saved, pct,
                row.root_cause_identical ? "yes" : "NO");
    const bool spend_ok = row.require_strict
                              ? row.executions_budgeted < row.executions_fixed
                              : row.executions_budgeted <= row.executions_fixed;
    if (!row.root_cause_identical || !spend_ok) ++failures;
    exec_fixed += row.executions_fixed;
    exec_budgeted += row.executions_budgeted;
  }

  const double aggregate_pct =
      exec_fixed == 0 ? 0.0 : 100.0 * exec_budgeted / exec_fixed;
  profile.Metric("budget_exec_fixed", static_cast<double>(exec_fixed));
  profile.Metric("budget_exec_budgeted", static_cast<double>(exec_budgeted));
  profile.Metric("budget_spend_pct", aggregate_pct);
  std::printf("%-22s | %12llu %12llu %8s %6.1f%% |\n", "aggregate",
              (unsigned long long)exec_fixed,
              (unsigned long long)exec_budgeted, "", aggregate_pct);

  if (failures == 0) {
    std::printf("self-check: identical root causes everywhere, fewer "
                "executions on every flaky target\n");
  } else {
    std::printf("SELF-CHECK FAILED: %d budgeting row(s) lost the root cause "
                "or overspent\n", failures);
  }
  return failures;
}

}  // namespace

int main() {
  aid::bench::BenchJson profile("ablation");
  std::printf("Ablation 1: junction width B (symmetric DAG, J=2, n=3, D=3)\n");
  std::printf("%4s | %10s %10s %12s\n", "B", "AID", "AID-P", "no branches");
  for (int b : {2, 4, 8, 16}) {
    auto model = MakeSymmetricModel(2, b, 3, 3, /*seed=*/9);
    if (!model.ok()) continue;
    const double aid = AverageRounds(**model, EngineOptions::Aid(), 5);
    const double aid_p =
        AverageRounds(**model, EngineOptions::AidNoPredicatePruning(), 5);
    const double no_prune =
        AverageRounds(**model, EngineOptions::AidNoPruning(), 5);
    std::printf("%4d | %10.1f %10.1f %12.1f\n", b, aid, aid_p, no_prune);
    profile.Metric("b" + std::to_string(b) + "_aid_avg_rounds", aid);
    profile.Metric("b" + std::to_string(b) + "_aid_p_avg_rounds", aid_p);
    profile.Metric("b" + std::to_string(b) + "_no_prune_avg_rounds",
                   no_prune);
  }

  std::printf("\nAblation 2: causal chain length D (symmetric DAG, J=3, B=4, "
              "n=4)\n");
  std::printf("%4s | %10s %14s %10s\n", "D", "AID", "AID no pred-prune",
              "TAGT");
  for (int d : {1, 3, 6, 9, 12}) {
    auto model = MakeSymmetricModel(3, 4, 4, d, /*seed=*/4);
    if (!model.ok()) continue;
    const double aid = AverageRounds(**model, EngineOptions::Aid(), 5);
    const double aid_p =
        AverageRounds(**model, EngineOptions::AidNoPredicatePruning(), 5);
    const double tagt = AverageRounds(**model, EngineOptions::Tagt(), 5);
    std::printf("%4d | %10.1f %14.1f %10.1f\n", d, aid, aid_p, tagt);
    profile.Metric("d" + std::to_string(d) + "_aid_avg_rounds", aid);
    profile.Metric("d" + std::to_string(d) + "_aid_p_avg_rounds", aid_p);
    profile.Metric("d" + std::to_string(d) + "_tagt_avg_rounds", tagt);
  }

  std::printf("\nAblation 3: trials per intervention (rounds constant, "
              "executions linear)\n");
  std::printf("%7s | %7s %12s\n", "trials", "rounds", "executions");
  {
    SyntheticAppOptions options;
    options.max_threads = 12;
    options.seed = 21;
    auto model = GenerateSyntheticApp(options);
    if (model.ok()) {
      auto session = SessionBuilder()
                         .WithModel(model->get())
                         .WithDescriptions(false)
                         .Build();
      if (session.ok()) {
        for (int trials : {1, 3, 5, 10}) {
          EngineOptions engine = EngineOptions::Aid();
          engine.trials_per_intervention = trials;
          auto report = session->Run(engine);
          if (report.ok()) {
            std::printf("%7d | %7llu %12llu\n", trials,
                        (unsigned long long)report->discovery.rounds,
                        (unsigned long long)report->discovery.executions);
            profile.Metric("trials" + std::to_string(trials) + "_rounds",
                           report->discovery.rounds);
            profile.Metric(
                "trials" + std::to_string(trials) + "_executions",
                static_cast<double>(report->discovery.executions));
          }
        }
      }
    }
  }
  int failures = RunStaticAnalysisAblation(profile);
  failures += RunBudgetingAblation(profile);
  profile.Write();
  return failures;
}
