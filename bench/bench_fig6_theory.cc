// Regenerates the paper's Figure 6: the theoretical comparison between CPD
// (causal path discovery, AID's setting) and GT (group testing) on the
// symmetric AC-DAG of Figure 5(c) -- search-space sizes, lower bounds on
// the number of interventions, and upper bounds.
//
// For small shapes the closed-form search space is validated against exact
// enumeration of the candidate causal paths; the empirical columns run the
// actual AID/TAGT engines on ground-truth symmetric models and report the
// measured rounds next to the theoretical bounds.

#include <cmath>
#include <cstdio>
#include <string>

#include "api/session.h"
#include "bench_json.h"
#include "synth/generator.h"
#include "theory/bounds.h"
#include "theory/enumerate.h"

int main() {
  using namespace aid;
  bench::BenchJson profile("fig6_theory");

  std::printf("Figure 6: CPD vs GT on the symmetric AC-DAG (J junctions x B "
              "branches x n predicates)\n\n");
  std::printf("Search space (log2 of #candidate solutions)\n");
  std::printf("%4s %4s %4s %6s | %10s %10s %12s\n", "J", "B", "n", "N",
              "W_CPD", "W_GT", "enumerated");

  const int shapes[][3] = {{1, 2, 3}, {2, 2, 2}, {2, 3, 2}, {3, 2, 2},
                           {2, 4, 3}, {3, 4, 4}, {4, 8, 4}};
  bool formulas_match = true;
  for (const auto& shape_def : shapes) {
    SymmetricDagShape shape{shape_def[0], shape_def[1], shape_def[2]};
    const double w_cpd = CpdSearchSpaceLog2Symmetric(shape);
    const double w_gt = GtSearchSpaceLog2(shape.total());
    std::string enumerated = "-";
    if (w_cpd < 40) {  // enumerate only when it fits comfortably in uint64
      auto model = MakeSymmetricModel(shape.junctions, shape.branches,
                                      shape.chain_len, /*causal=*/1, 1);
      if (model.ok()) {
        auto dag = (*model)->BuildAcDag();
        if (dag.ok()) {
          const uint64_t count = CountCpdSolutions(*dag);
          enumerated = std::to_string(count);
          const double expected = std::pow(2.0, w_cpd);
          if (std::llround(expected) != static_cast<long long>(count)) {
            formulas_match = false;
          }
        }
      }
    }
    std::printf("%4d %4d %4d %6lld | %10.2f %10.2f %12s\n", shape.junctions,
                shape.branches, shape.chain_len,
                static_cast<long long>(shape.total()), w_cpd, w_gt,
                enumerated.c_str());
  }
  std::printf("\nclosed form (B(2^n-1)+1)^J matches exact enumeration: %s\n\n",
              formulas_match ? "yes" : "NO");

  std::printf("Bounds on #interventions (D causal, S1 = S2 = 2)\n");
  std::printf("%4s %4s %4s %4s | %9s %9s | %9s %9s | %9s %9s\n", "J", "B",
              "n", "D", "LB(CPD)", "LB(GT)", "UB(AID)", "UB(TAGT)",
              "AID(meas)", "TAGT(max)");

  bool bounds_ordered = true;
  for (const auto& shape_def : shapes) {
    SymmetricDagShape shape{shape_def[0], shape_def[1], shape_def[2]};
    const int d = std::min<int>(shape.junctions * shape.chain_len,
                                std::max<int>(1, shape.total() / 8));
    const auto lower = Figure6LowerBounds(shape, d, /*s1=*/2.0);
    const auto upper = Figure6UpperBounds(shape, d, /*s2=*/2.0);
    bounds_ordered = bounds_ordered && lower.cpd <= lower.gt + 1e-9;
    // Section 6.3.1: branch pruning's upper bound beats TAGT's only when
    // J < D (J log B < D log B); rows with J >= D demonstrate the caveat.
    if (shape.junctions < d) {
      bounds_ordered = bounds_ordered && upper.aid <= upper.tagt + 1e-9;
    }

    // Empirical: run both engines on ground-truth symmetric models.
    uint64_t aid_rounds = 0;
    uint64_t tagt_worst = 0;
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      auto model = MakeSymmetricModel(shape.junctions, shape.branches,
                                      shape.chain_len, d, seed);
      if (!model.ok()) continue;
      auto session = SessionBuilder()
                         .WithModel(model->get())
                         .WithDescriptions(false)
                         .Build();
      if (!session.ok()) continue;
      {
        auto report = session->Run(EngineOptions::Aid());
        if (report.ok()) {
          aid_rounds = std::max(aid_rounds, report->discovery.rounds);
        }
      }
      {
        EngineOptions tagt = EngineOptions::Tagt();
        tagt.seed = seed;
        auto report = session->Run(tagt);
        if (report.ok()) {
          tagt_worst = std::max(tagt_worst, report->discovery.rounds);
        }
      }
    }
    std::printf("%4d %4d %4d %4d | %9.2f %9.2f | %9.2f %9.2f | %9llu %9llu\n",
                shape.junctions, shape.branches, shape.chain_len, d,
                lower.cpd, lower.gt, upper.aid, upper.tagt,
                static_cast<unsigned long long>(aid_rounds),
                static_cast<unsigned long long>(tagt_worst));
    const std::string tag = "J" + std::to_string(shape.junctions) + "_B" +
                            std::to_string(shape.branches) + "_n" +
                            std::to_string(shape.chain_len);
    profile.Metric(tag + "_aid_rounds_max", aid_rounds);
    profile.Metric(tag + "_tagt_rounds_max", tagt_worst);
    profile.Metric(tag + "_ub_aid", upper.aid);
    profile.Metric(tag + "_ub_tagt", upper.tagt);
  }
  std::printf(
      "\nlower bound LB(CPD) <= LB(GT) everywhere, and UB(AID) <= UB(TAGT) "
      "whenever J < D (Section 6.3.1's condition): %s\n",
      bounds_ordered ? "yes" : "NO");
  profile.Metric("formulas_match", formulas_match ? 1 : 0);
  profile.Metric("bounds_ordered", bounds_ordered ? 1 : 0);
  profile.Write();
  return (formulas_match && bounds_ordered) ? 0 : 1;
}
