// Process-isolation bench: per-trial IPC overhead of subprocess subjects
// vs. in-process dispatch, at 1/2/4/8 workers.
//
// The subject is a synthetic ground-truth model whose executions cost
// microseconds, so the numbers isolate what the proc/ machinery itself
// charges per trial: one RUN_TRIAL frame out, streamed TRACE_EVENT frames
// plus a VERDICT back, across two pipes and a context switch. The paper's
// real subjects take seconds per execution (Section 7), which is exactly
// why per-trial overhead in the microsecond range makes isolation free in
// practice -- and every configuration must still produce the bit-identical
// discovery report, which the bench asserts.
//
// Usage: bench_proc [model_threads] (default 14)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "api/session.h"
#include "bench_json.h"
#include "proc/wire.h"
#include "synth/generator.h"
#include "synth/model.h"

namespace {

using namespace aid;

struct RunStats {
  double wall_ms = 0;
  SessionReport report;
};

RunStats RunOnce(const GroundTruthModel* model, Isolation isolation,
                 int parallelism, int trials,
                 TelemetrySnapshot* snapshot_out = nullptr) {
  SessionBuilder builder;
  builder.WithModel(model).WithTrials(trials).WithParallelism(parallelism);
  if (isolation == Isolation::kSubprocess) {
    builder.WithProcessIsolation(/*trial_deadline_ms=*/10000);
  }
  // Telemetry never changes the report's bytes (asserted below via
  // SameDiscoveryOutcome against the uninstrumented baseline), so the
  // instrumented run doubles as the bench's exportable profile.
  if (snapshot_out != nullptr) builder.WithTelemetry();
  const auto start = std::chrono::steady_clock::now();
  auto session = builder.Build();
  if (!session.ok()) {
    std::fprintf(stderr, "session build failed: %s\n",
                 session.status().ToString().c_str());
    std::exit(1);
  }
  auto report = session->Run();
  if (!report.ok()) {
    std::fprintf(stderr, "session run failed: %s\n",
                 report.status().ToString().c_str());
    std::exit(1);
  }
  const auto end = std::chrono::steady_clock::now();
  if (snapshot_out != nullptr) *snapshot_out = session->TelemetrySnapshot();
  RunStats stats;
  stats.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          end - start)
          .count();
  stats.report = std::move(*report);
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  if (!SubprocessIsolationSupported()) {
    std::printf("bench_proc: subprocess isolation unsupported here; "
                "nothing to measure\n");
    return 0;
  }
  const int model_threads = argc > 1 ? std::atoi(argv[1]) : 14;
  const int trials = 3;

  SyntheticAppOptions options;
  options.max_threads = model_threads;
  options.seed = 7;
  auto model = GenerateSyntheticApp(options);
  if (!model.ok()) {
    std::fprintf(stderr, "model generation failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }

  std::printf("subject: synthetic model, %zu predicates, %d trials/round\n\n",
              (*model)->size(), trials);
  std::printf("%-14s %-8s %10s %12s %12s %8s\n", "isolation", "workers",
              "wall_ms", "executions", "us/trial", "rounds");

  // In-process baselines at matching worker counts (dispatch mode matches:
  // parallelism > 1 implies batched linear scan on both sides).
  bench::BenchJson profile("proc");
  TelemetrySnapshot snapshot;
  std::vector<int> workers = {1, 2, 4, 8};
  std::vector<RunStats> in_process;
  for (int w : workers) {
    RunStats stats = RunOnce(model->get(), Isolation::kInProcess, w, trials);
    std::printf("%-14s %-8d %10.2f %12llu %12.2f %8llu\n", "in_process", w,
                stats.wall_ms,
                (unsigned long long)stats.report.discovery.executions,
                1000.0 * stats.wall_ms /
                    std::max<uint64_t>(1, stats.report.discovery.executions),
                (unsigned long long)stats.report.discovery.rounds);
    profile.Metric("in_process_w" + std::to_string(w) + "_wall_ms",
                   stats.wall_ms);
    in_process.push_back(std::move(stats));
  }
  std::printf("\n");
  for (size_t i = 0; i < workers.size(); ++i) {
    const int w = workers[i];
    // The widest subprocess run is the instrumented one: its snapshot (trial
    // spans, latency histograms) ships in the profile document.
    RunStats stats =
        RunOnce(model->get(), Isolation::kSubprocess, w, trials,
                i + 1 == workers.size() ? &snapshot : nullptr);
    const double us_per_trial =
        1000.0 * stats.wall_ms /
        std::max<uint64_t>(1, stats.report.discovery.executions);
    const double base_us =
        1000.0 * in_process[i].wall_ms /
        std::max<uint64_t>(1, in_process[i].report.discovery.executions);
    std::printf("%-14s %-8d %10.2f %12llu %12.2f %8llu  (+%.2f us/trial IPC)\n",
                "subprocess", w, stats.wall_ms,
                (unsigned long long)stats.report.discovery.executions,
                us_per_trial,
                (unsigned long long)stats.report.discovery.rounds,
                us_per_trial - base_us);
    profile.Metric("subprocess_w" + std::to_string(w) + "_wall_ms",
                   stats.wall_ms);
    profile.Metric("subprocess_w" + std::to_string(w) + "_ipc_us_per_trial",
                   us_per_trial - base_us);
    if (!SameDiscoveryOutcome(stats.report.discovery, in_process[i].report.discovery)) {
      std::fprintf(stderr,
                   "BUG: subprocess report diverges from in-process at "
                   "%d workers\n",
                   w);
      return 1;
    }
  }
  std::printf("\nall subprocess reports bit-identical to in-process runs\n");
  profile.Attach(snapshot);
  profile.Write();
  return 0;
}
