// Regenerates the paper's Figure 8: synthetic applications with known root
// causes, sweeping the maximum thread count MAXt, comparing the number of
// intervention rounds for TAGT, AID-P-B (topological order only), AID-P
// (plus branch pruning), and AID (plus predicate pruning).
//
// The paper uses 500 generated applications per setting with MAXt from 2 to
// 40 (plotted at 2, 10, 18, 26, 34, 42); pass a smaller count as argv[1]
// for a quick run. Both the average and the worst case are reported, plus
// the average predicate count N (the grey dotted line in the paper's plot).
//
// Expected shape: AID < AID-P < AID-P-B < TAGT on average, with the
// worst-case margin between AID and TAGT much larger than the average one.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "api/session.h"
#include "bench_json.h"
#include "synth/generator.h"
#include "synth/model.h"

int main(int argc, char** argv) {
  using namespace aid;
  bench::BenchJson profile("fig8_synthetic");

  int apps_per_setting = 500;
  if (argc > 1) apps_per_setting = std::max(1, std::atoi(argv[1]));

  const int kMaxT[] = {2, 10, 18, 26, 34, 42};
  struct Variant {
    const char* name;
    EngineOptions options;
  };
  const Variant kVariants[] = {
      {"TAGT", EngineOptions::Tagt()},
      {"AID-P-B", EngineOptions::AidNoPruning()},
      {"AID-P", EngineOptions::AidNoPredicatePruning()},
      {"AID", EngineOptions::Aid()},
  };

  std::printf("Figure 8: synthetic benchmark, %d apps per setting\n\n",
              apps_per_setting);
  std::printf("Average #interventions\n");
  std::printf("%6s %8s %8s %9s %8s %8s\n", "MAXt", "avg N", "TAGT", "AID-P-B",
              "AID-P", "AID");

  // Worst-case rows are accumulated during the same sweep.
  double worst[6][4] = {};
  double averages[6][5] = {};

  for (int s = 0; s < 6; ++s) {
    const int max_threads = kMaxT[s];
    double sum_rounds[4] = {};
    double sum_n = 0;
    int correct = 0;
    for (int i = 0; i < apps_per_setting; ++i) {
      SyntheticAppOptions options;
      options.max_threads = max_threads;
      options.seed = static_cast<uint64_t>(max_threads) * 1'000'003ULL +
                     static_cast<uint64_t>(i);
      auto model = GenerateSyntheticApp(options);
      if (!model.ok()) {
        std::fprintf(stderr, "generate: %s\n",
                     model.status().ToString().c_str());
        return 1;
      }
      auto session = SessionBuilder()
                         .WithModel(model->get())
                         .WithDescriptions(false)
                         .Build();
      if (!session.ok()) {
        std::fprintf(stderr, "session: %s\n",
                     session.status().ToString().c_str());
        return 1;
      }
      sum_n += static_cast<double>((*model)->size());

      std::vector<PredicateId> expected = (*model)->causal_chain();
      expected.push_back((*model)->failure());
      std::sort(expected.begin(), expected.end());

      for (int v = 0; v < 4; ++v) {
        EngineOptions engine = kVariants[v].options;
        engine.seed = static_cast<uint64_t>(i) * 31 + 7;
        auto report = session->Run(engine);
        if (!report.ok()) {
          std::fprintf(stderr, "engine %s: %s\n", kVariants[v].name,
                       report.status().ToString().c_str());
          return 1;
        }
        sum_rounds[v] += report->discovery.rounds;
        worst[s][v] = std::max(worst[s][v],
                               static_cast<double>(report->discovery.rounds));
        std::vector<PredicateId> got = report->discovery.causal_path;
        std::sort(got.begin(), got.end());
        if (v == 3 && got == expected) ++correct;
      }
    }
    averages[s][0] = sum_n / apps_per_setting;
    for (int v = 0; v < 4; ++v) {
      averages[s][v + 1] = sum_rounds[v] / apps_per_setting;
    }
    std::printf("%6d %8.1f %8.1f %9.1f %8.1f %8.1f   (AID found the exact "
                "causal path in %d/%d apps)\n",
                max_threads, averages[s][0], averages[s][1], averages[s][2],
                averages[s][3], averages[s][4], correct, apps_per_setting);
    const std::string tag = "maxt" + std::to_string(max_threads);
    profile.Metric(tag + "_avg_n", averages[s][0]);
    profile.Metric(tag + "_tagt_avg_rounds", averages[s][1]);
    profile.Metric(tag + "_aid_p_b_avg_rounds", averages[s][2]);
    profile.Metric(tag + "_aid_p_avg_rounds", averages[s][3]);
    profile.Metric(tag + "_aid_avg_rounds", averages[s][4]);
    profile.Metric(tag + "_aid_exact_path_apps", correct);
  }

  std::printf("\nWorst-case #interventions\n");
  std::printf("%6s %8s %9s %8s %8s\n", "MAXt", "TAGT", "AID-P-B", "AID-P",
              "AID");
  for (int s = 0; s < 6; ++s) {
    std::printf("%6d %8.0f %9.0f %8.0f %8.0f\n", kMaxT[s], worst[s][0],
                worst[s][1], worst[s][2], worst[s][3]);
  }

  // The paper's headline orderings, checked on the largest setting.
  const bool avg_ordered = averages[5][4] <= averages[5][3] &&
                           averages[5][3] <= averages[5][2] &&
                           averages[5][2] <= averages[5][1];
  const bool worst_ordered = worst[5][3] <= worst[5][0];
  std::printf("\naverage ordering AID <= AID-P <= AID-P-B <= TAGT at MAXt=42: %s\n",
              avg_ordered ? "holds" : "VIOLATED");
  std::printf("worst-case AID <= worst-case TAGT at MAXt=42: %s\n",
              worst_ordered ? "holds" : "VIOLATED");
  profile.Metric("avg_ordered", avg_ordered ? 1 : 0);
  profile.Metric("worst_ordered", worst_ordered ? 1 : 0);
  profile.Write();
  return (avg_ordered && worst_ordered) ? 0 : 1;
}
