// Parallel dispatch bench: serial vs. batched vs. parallel intervention
// execution (src/exec/) at 1/2/4/8 workers.
//
// Three subjects:
//   * a symmetric synthetic model -- executions cost microseconds, so this
//     row mostly measures the dispatch machinery's own overhead;
//   * a VM case study, CPU-bound -- replicas scale with physical cores
//     (flat on a single-core machine, by construction);
//   * the same VM case study with simulated per-execution application
//     latency -- the paper's actual regime (its subjects take seconds per
//     run; re-execution dominates debugging cost, Sections 2 and 7), where
//     overlapping replicas buy wall-clock on any machine.
//
// Every configuration must agree with serial dispatch on the discovered
// causal path (bit-identical reports, the ReplicableTarget contract); the
// bench prints rounds/executions/speculative executions so the accounting
// is visible next to the speedup.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/session.h"
#include "casestudies/case_study.h"
#include "core/engine.h"
#include "core/vm_target.h"
#include "exec/parallel_target.h"
#include "exec/replicable.h"
#include "synth/generator.h"
#include "synth/model.h"

namespace {

using namespace aid;

/// Wraps a ReplicableTarget and charges a simulated application latency per
/// execution -- the stand-in for subjects whose runs block on I/O, sleeps,
/// or remote machinery rather than local CPU.
class LatencyTarget : public ReplicableTarget {
 public:
  LatencyTarget(std::unique_ptr<ReplicableTarget> inner,
                std::chrono::microseconds per_execution)
      : inner_(std::move(inner)), per_execution_(per_execution) {}

  Result<TargetRunResult> RunIntervened(
      const std::vector<PredicateId>& intervened, int trials) override {
    if (trials < 1) trials = 1;
    std::this_thread::sleep_for(per_execution_ * trials);
    return inner_->RunIntervened(intervened, trials);
  }

  Result<std::unique_ptr<ReplicableTarget>> Clone() const override {
    AID_ASSIGN_OR_RETURN(std::unique_ptr<ReplicableTarget> inner,
                         inner_->Clone());
    return std::unique_ptr<ReplicableTarget>(
        new LatencyTarget(std::move(inner), per_execution_));
  }

  void SeekTrial(uint64_t trial_index) override {
    inner_->SeekTrial(trial_index);
  }

  uint64_t trial_position() const override {
    return inner_->trial_position();
  }

  int executions() const override { return inner_->executions(); }

 private:
  std::unique_ptr<ReplicableTarget> inner_;
  std::chrono::microseconds per_execution_;
};

struct RunStats {
  double ms = 0;
  int rounds = 0;
  int executions = 0;
  int speculative = 0;
  std::string path;
  bool ok = false;
};

std::string PathKey(const DiscoveryReport& report) {
  std::string key;
  for (PredicateId id : report.causal_path) {
    key += std::to_string(id);
    key += '>';
  }
  return key;
}

void PrintRow(const char* label, const RunStats& run, const RunStats& base) {
  std::printf("%-22s | %9.2f %7.2fx %7d %11d %6d%s\n", label, run.ms,
              base.ms / run.ms, run.rounds, run.executions, run.speculative,
              run.path == base.path ? "" : "  [PATH MISMATCH]");
}

void PrintHeader(const char* title) {
  std::printf("%s\n", title);
  std::printf("%-22s | %9s %8s %7s %11s %6s\n", "dispatch", "wall ms",
              "speedup", "rounds", "executions", "spec");
}

// ---- session-driven subjects (model + raw VM case study) -----------------

/// Times the discovery phase alone: observation and AC-DAG construction run
/// once, untimed, in a warm-up pass; the timed runs then measure pure
/// intervention dispatch (the paper's cost model and this subsystem's
/// target).
template <typename MakeBuilder>
RunStats TimeDiscovery(MakeBuilder make_builder, const EngineOptions& engine,
                       int repeats) {
  RunStats stats;
  auto session = make_builder().Build();
  if (!session.ok()) {
    std::fprintf(stderr, "session: %s\n", session.status().ToString().c_str());
    return stats;
  }
  auto warmup = session->Run(engine);
  if (!warmup.ok()) {
    std::fprintf(stderr, "warm-up: %s\n", warmup.status().ToString().c_str());
    return stats;
  }
  for (int i = 0; i < repeats; ++i) {
    const auto start = std::chrono::steady_clock::now();
    auto report = session->Run(engine);
    const auto end = std::chrono::steady_clock::now();
    if (!report.ok()) {
      std::fprintf(stderr, "run: %s\n", report.status().ToString().c_str());
      return stats;
    }
    stats.ms +=
        std::chrono::duration<double, std::milli>(end - start).count();
    stats.rounds = report->discovery.rounds;
    stats.executions = report->discovery.executions;
    stats.speculative = report->discovery.speculative_executions;
    stats.path = PathKey(report->discovery);
  }
  stats.ms /= repeats;
  stats.ok = true;
  return stats;
}

template <typename MakeBuilder>
void BenchSubject(const char* title, MakeBuilder make_builder,
                  EngineOptions engine, int repeats) {
  PrintHeader(title);
  engine.linear_scan = true;
  engine.branch_pruning = false;

  EngineOptions serial = engine;
  serial.batched_dispatch = false;
  serial.parallelism = 1;
  RunStats base =
      TimeDiscovery([&]() { return make_builder(1); }, serial, repeats);
  if (!base.ok) return;
  PrintRow("serial", base, base);

  EngineOptions batched = engine;
  batched.batched_dispatch = true;
  batched.parallelism = 1;
  RunStats batch =
      TimeDiscovery([&]() { return make_builder(1); }, batched, repeats);
  if (!batch.ok) return;
  PrintRow("batched (1 worker)", batch, base);

  for (int workers : {2, 4, 8}) {
    EngineOptions parallel = engine;
    parallel.batched_dispatch = true;
    parallel.parallelism = workers;
    RunStats run = TimeDiscovery([&]() { return make_builder(workers); },
                                 parallel, repeats);
    if (!run.ok) return;
    const std::string label =
        "parallel (" + std::to_string(workers) + " workers)";
    PrintRow(label.c_str(), run, base);
  }
  std::printf("\n");
}

// ---- latency-bound subject (core-level API, custom target) ---------------

RunStats TimeLatencyBound(const VmTarget& observed, const AcDag& dag,
                          std::chrono::microseconds latency, int workers,
                          EngineOptions engine, int repeats) {
  RunStats stats;
  for (int i = 0; i < repeats; ++i) {
    auto inner = observed.Clone();
    if (!inner.ok()) return stats;
    LatencyTarget primary(std::move(inner).value(), latency);
    InterventionTarget* target = &primary;
    std::unique_ptr<ParallelTarget> pool;
    if (workers > 1) {
      auto pool_or = ParallelTarget::Create(&primary, workers);
      if (!pool_or.ok()) return stats;
      pool = std::move(pool_or).value();
      target = pool.get();
    }
    CausalPathDiscovery discovery(&dag, target, engine);
    const auto start = std::chrono::steady_clock::now();
    auto report = discovery.Run();
    const auto end = std::chrono::steady_clock::now();
    if (!report.ok()) {
      std::fprintf(stderr, "run: %s\n", report.status().ToString().c_str());
      return stats;
    }
    stats.ms +=
        std::chrono::duration<double, std::milli>(end - start).count();
    stats.rounds = report->rounds;
    stats.executions = report->executions;
    stats.speculative = report->speculative_executions;
    stats.path = PathKey(*report);
  }
  stats.ms /= repeats;
  stats.ok = true;
  return stats;
}

void BenchLatencyBound(std::chrono::microseconds latency, int repeats) {
  auto study = MakeKafkaUseAfterFree();
  if (!study.ok()) return;
  auto vm = VmTarget::Create(&study->program, study->target_options);
  if (!vm.ok()) {
    std::fprintf(stderr, "vm: %s\n", vm.status().ToString().c_str());
    return;
  }
  auto dag = (*vm)->BuildAcDag();
  if (!dag.ok()) return;

  const std::string title =
      "VM case study with " + std::to_string(latency.count()) +
      "us simulated application latency per execution (kafka, 6 trials)";
  PrintHeader(title.c_str());

  EngineOptions engine = EngineOptions::Linear();
  engine.trials_per_intervention = 6;

  EngineOptions serial = engine;
  serial.batched_dispatch = false;
  RunStats base = TimeLatencyBound(**vm, *dag, latency, 1, serial, repeats);
  if (!base.ok) return;
  PrintRow("serial", base, base);

  EngineOptions batched = engine;
  batched.batched_dispatch = true;
  RunStats batch = TimeLatencyBound(**vm, *dag, latency, 1, batched, repeats);
  if (!batch.ok) return;
  PrintRow("batched (1 worker)", batch, base);

  for (int workers : {2, 4, 8}) {
    EngineOptions parallel = batched;
    parallel.parallelism = workers;
    RunStats run =
        TimeLatencyBound(**vm, *dag, latency, workers, parallel, repeats);
    if (!run.ok) return;
    const std::string label =
        "parallel (" + std::to_string(workers) + " workers)";
    PrintRow(label.c_str(), run, base);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const int repeats = argc > 1 ? std::atoi(argv[1]) : 3;
  const int latency_us = argc > 2 ? std::atoi(argv[2]) : 500;
  std::printf("hardware threads: %u\n\n", std::thread::hardware_concurrency());

  // Synthetic model: executions are microseconds, so this mostly measures
  // the dispatch machinery itself.
  auto model = MakeSymmetricModel(/*junctions=*/3, /*branches=*/6,
                                  /*chain_len=*/5, /*causal=*/6, /*seed=*/7);
  if (!model.ok()) {
    std::fprintf(stderr, "model: %s\n", model.status().ToString().c_str());
    return 1;
  }
  {
    EngineOptions engine = EngineOptions::Linear();
    engine.trials_per_intervention = 4;
    BenchSubject(
        "Synthetic model (symmetric DAG, 90+ predicates, 4 trials)",
        [&](int workers) {
          SessionBuilder builder;
          builder.WithModel(model->get())
              .WithDescriptions(false)
              .WithParallelism(workers);
          return builder;
        },
        engine, repeats);
  }

  // VM case study, CPU-bound: every execution recompiles the intervention
  // plan and re-runs the program. Scales with physical cores.
  {
    EngineOptions engine = EngineOptions::Linear();
    engine.trials_per_intervention = 6;
    BenchSubject(
        "VM case study, CPU-bound (kafka use-after-free, 6 trials)",
        [&](int workers) {
          SessionBuilder builder;
          builder.WithCaseStudy("kafka")
              .WithDescriptions(false)
              .WithParallelism(workers);
          return builder;
        },
        engine, repeats);
  }

  // VM case study, latency-bound: the regime the paper's subjects live in.
  BenchLatencyBound(std::chrono::microseconds(latency_us), repeats);
  return 0;
}
