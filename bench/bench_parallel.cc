// Parallel dispatch bench: serial vs. batched vs. parallel intervention
// execution (src/exec/) at 1/2/4/8 workers, plus the heterogeneous-pool
// scenario (one replica 10x slower) comparing static sharding against the
// latency-aware work-stealing scheduler. The heterogeneous scenario is
// self-checking: it exits 1 unless work stealing beats static sharding by
// >= 1.5x with a bit-identical discovery report.
//
// Three uniform subjects:
//   * a symmetric synthetic model -- executions cost microseconds, so this
//     row mostly measures the dispatch machinery's own overhead;
//   * a VM case study, CPU-bound -- replicas scale with physical cores
//     (flat on a single-core machine, by construction);
//   * the same VM case study with simulated per-execution application
//     latency -- the paper's actual regime (its subjects take seconds per
//     run; re-execution dominates debugging cost, Sections 2 and 7), where
//     overlapping replicas buy wall-clock on any machine.
//
// Every configuration must agree with serial dispatch on the discovered
// causal path (bit-identical reports, the ReplicableTarget contract); the
// bench prints rounds/executions/speculative executions so the accounting
// is visible next to the speedup.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/session.h"
#include "bench_json.h"
#include "casestudies/case_study.h"
#include "core/engine.h"
#include "core/vm_target.h"
#include "exec/parallel_target.h"
#include "exec/replicable.h"
#include "synth/generator.h"
#include "synth/model.h"

namespace {

using namespace aid;

/// The bench's JSON profile; every printed row lands in it too, keyed
/// <subject prefix>_<slugged dispatch label>_wall_ms.
bench::BenchJson g_profile("parallel");
std::string g_prefix;

std::string Slug(const char* label) {
  std::string slug;
  for (const char* p = label; *p != '\0'; ++p) {
    const char c = *p;
    if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
      slug += c;
    } else if (c >= 'A' && c <= 'Z') {
      slug += static_cast<char>(c - 'A' + 'a');
    } else if (!slug.empty() && slug.back() != '_') {
      slug += '_';
    }
  }
  while (!slug.empty() && slug.back() == '_') slug.pop_back();
  return slug;
}

/// Wraps a ReplicableTarget and charges a simulated application latency per
/// execution -- the stand-in for subjects whose runs block on I/O, sleeps,
/// or remote machinery rather than local CPU.
class LatencyTarget : public ReplicableTarget {
 public:
  LatencyTarget(std::unique_ptr<ReplicableTarget> inner,
                std::chrono::microseconds per_execution)
      : inner_(std::move(inner)), per_execution_(per_execution) {}

  Result<TargetRunResult> RunIntervened(
      const std::vector<PredicateId>& intervened, int trials) override {
    if (trials < 1) trials = 1;
    std::this_thread::sleep_for(per_execution_ * trials);
    return inner_->RunIntervened(intervened, trials);
  }

  Result<std::unique_ptr<ReplicableTarget>> Clone() const override {
    AID_ASSIGN_OR_RETURN(std::unique_ptr<ReplicableTarget> inner,
                         inner_->Clone());
    return std::unique_ptr<ReplicableTarget>(
        new LatencyTarget(std::move(inner), per_execution_));
  }

  void SeekTrial(uint64_t trial_index) override {
    inner_->SeekTrial(trial_index);
  }

  uint64_t trial_position() const override {
    return inner_->trial_position();
  }

  uint64_t executions() const override { return inner_->executions(); }

 private:
  std::unique_ptr<ReplicableTarget> inner_;
  std::chrono::microseconds per_execution_;
};

/// LatencyTarget whose FIRST clone charges `slow_factor` times the base
/// latency: the heterogeneous-pool stand-in (one replica living on a
/// loaded/distant machine). The slowdown is pure wall clock -- positions
/// and bytes are untouched, so reports must stay bit-identical however the
/// scheduler routes around the straggler.
class HeteroLatencyTarget : public ReplicableTarget {
 public:
  HeteroLatencyTarget(std::unique_ptr<ReplicableTarget> inner,
                      std::chrono::microseconds base_latency, int slow_factor)
      : inner_(std::move(inner)),
        base_(base_latency),
        slow_factor_(slow_factor),
        delay_(base_latency),
        clones_(std::make_shared<std::atomic<int>>(0)) {}

  Result<TargetRunResult> RunIntervened(
      const std::vector<PredicateId>& intervened, int trials) override {
    if (trials < 1) trials = 1;
    std::this_thread::sleep_for(delay_ * trials);
    return inner_->RunIntervened(intervened, trials);
  }

  Result<std::unique_ptr<ReplicableTarget>> Clone() const override {
    AID_ASSIGN_OR_RETURN(std::unique_ptr<ReplicableTarget> inner,
                         inner_->Clone());
    auto clone = std::unique_ptr<HeteroLatencyTarget>(
        new HeteroLatencyTarget(std::move(inner), base_, slow_factor_));
    clone->clones_ = clones_;
    clone->delay_ =
        clones_->fetch_add(1) == 0 ? base_ * slow_factor_ : base_;
    return std::unique_ptr<ReplicableTarget>(std::move(clone));
  }

  void SeekTrial(uint64_t trial_index) override {
    inner_->SeekTrial(trial_index);
  }
  uint64_t trial_position() const override { return inner_->trial_position(); }
  uint64_t executions() const override { return inner_->executions(); }

 private:
  std::unique_ptr<ReplicableTarget> inner_;
  std::chrono::microseconds base_;
  int slow_factor_;
  std::chrono::microseconds delay_;
  std::shared_ptr<std::atomic<int>> clones_;
};

struct RunStats {
  double ms = 0;
  uint64_t rounds = 0;
  uint64_t executions = 0;
  uint64_t speculative = 0;
  uint64_t steals = 0;
  double straggler_wait_ms = 0;
  std::string path;
  bool ok = false;
};

std::string PathKey(const DiscoveryReport& report) {
  std::string key;
  for (PredicateId id : report.causal_path) {
    key += std::to_string(id);
    key += '>';
  }
  return key;
}

void PrintRow(const char* label, const RunStats& run, const RunStats& base) {
  std::printf("%-22s | %9.2f %7.2fx %7llu %11llu %6llu%s\n", label, run.ms,
              base.ms / run.ms, static_cast<unsigned long long>(run.rounds),
              static_cast<unsigned long long>(run.executions),
              static_cast<unsigned long long>(run.speculative),
              run.path == base.path ? "" : "  [PATH MISMATCH]");
  g_profile.Metric(g_prefix + "_" + Slug(label) + "_wall_ms", run.ms);
}

void PrintHeader(const char* title) {
  std::printf("%s\n", title);
  std::printf("%-22s | %9s %8s %7s %11s %6s\n", "dispatch", "wall ms",
              "speedup", "rounds", "executions", "spec");
}

// ---- session-driven subjects (model + raw VM case study) -----------------

/// Times the discovery phase alone: observation and AC-DAG construction run
/// once, untimed, in a warm-up pass; the timed runs then measure pure
/// intervention dispatch (the paper's cost model and this subsystem's
/// target).
template <typename MakeBuilder>
RunStats TimeDiscovery(MakeBuilder make_builder, const EngineOptions& engine,
                       int repeats) {
  RunStats stats;
  auto session = make_builder().Build();
  if (!session.ok()) {
    std::fprintf(stderr, "session: %s\n", session.status().ToString().c_str());
    return stats;
  }
  auto warmup = session->Run(engine);
  if (!warmup.ok()) {
    std::fprintf(stderr, "warm-up: %s\n", warmup.status().ToString().c_str());
    return stats;
  }
  for (int i = 0; i < repeats; ++i) {
    const auto start = std::chrono::steady_clock::now();
    auto report = session->Run(engine);
    const auto end = std::chrono::steady_clock::now();
    if (!report.ok()) {
      std::fprintf(stderr, "run: %s\n", report.status().ToString().c_str());
      return stats;
    }
    stats.ms +=
        std::chrono::duration<double, std::milli>(end - start).count();
    stats.rounds = report->discovery.rounds;
    stats.executions = report->discovery.executions;
    stats.speculative = report->discovery.speculative_executions;
    stats.path = PathKey(report->discovery);
  }
  stats.ms /= repeats;
  stats.ok = true;
  return stats;
}

template <typename MakeBuilder>
void BenchSubject(const char* title, MakeBuilder make_builder,
                  EngineOptions engine, int repeats) {
  PrintHeader(title);
  engine.linear_scan = true;
  engine.branch_pruning = false;

  EngineOptions serial = engine;
  serial.batched_dispatch = false;
  serial.parallelism = 1;
  RunStats base =
      TimeDiscovery([&]() { return make_builder(1); }, serial, repeats);
  if (!base.ok) return;
  PrintRow("serial", base, base);

  EngineOptions batched = engine;
  batched.batched_dispatch = true;
  batched.parallelism = 1;
  RunStats batch =
      TimeDiscovery([&]() { return make_builder(1); }, batched, repeats);
  if (!batch.ok) return;
  PrintRow("batched (1 worker)", batch, base);

  for (int workers : {2, 4, 8}) {
    EngineOptions parallel = engine;
    parallel.batched_dispatch = true;
    parallel.parallelism = workers;
    RunStats run = TimeDiscovery([&]() { return make_builder(workers); },
                                 parallel, repeats);
    if (!run.ok) return;
    const std::string label =
        "parallel (" + std::to_string(workers) + " workers)";
    PrintRow(label.c_str(), run, base);
  }
  std::printf("\n");
}

// ---- latency-bound subject (core-level API, custom target) ---------------

RunStats TimeLatencyBound(const VmTarget& observed, const AcDag& dag,
                          std::chrono::microseconds latency, int workers,
                          EngineOptions engine, int repeats) {
  RunStats stats;
  for (int i = 0; i < repeats; ++i) {
    auto inner = observed.Clone();
    if (!inner.ok()) return stats;
    LatencyTarget primary(std::move(inner).value(), latency);
    InterventionTarget* target = &primary;
    std::unique_ptr<ParallelTarget> pool;
    if (workers > 1) {
      auto pool_or = ParallelTarget::Create(&primary, workers);
      if (!pool_or.ok()) return stats;
      pool = std::move(pool_or).value();
      target = pool.get();
    }
    CausalPathDiscovery discovery(&dag, target, engine);
    const auto start = std::chrono::steady_clock::now();
    auto report = discovery.Run();
    const auto end = std::chrono::steady_clock::now();
    if (!report.ok()) {
      std::fprintf(stderr, "run: %s\n", report.status().ToString().c_str());
      return stats;
    }
    stats.ms +=
        std::chrono::duration<double, std::milli>(end - start).count();
    stats.rounds = report->rounds;
    stats.executions = report->executions;
    stats.speculative = report->speculative_executions;
    stats.path = PathKey(*report);
  }
  stats.ms /= repeats;
  stats.ok = true;
  return stats;
}

void BenchLatencyBound(std::chrono::microseconds latency, int repeats) {
  g_prefix = "kafka_latency";
  auto study = MakeKafkaUseAfterFree();
  if (!study.ok()) return;
  auto vm = VmTarget::Create(&study->program, study->target_options);
  if (!vm.ok()) {
    std::fprintf(stderr, "vm: %s\n", vm.status().ToString().c_str());
    return;
  }
  auto dag = (*vm)->BuildAcDag();
  if (!dag.ok()) return;

  const std::string title =
      "VM case study with " + std::to_string(latency.count()) +
      "us simulated application latency per execution (kafka, 6 trials)";
  PrintHeader(title.c_str());

  EngineOptions engine = EngineOptions::Linear();
  engine.trials_per_intervention = 6;

  EngineOptions serial = engine;
  serial.batched_dispatch = false;
  RunStats base = TimeLatencyBound(**vm, *dag, latency, 1, serial, repeats);
  if (!base.ok) return;
  PrintRow("serial", base, base);

  EngineOptions batched = engine;
  batched.batched_dispatch = true;
  RunStats batch = TimeLatencyBound(**vm, *dag, latency, 1, batched, repeats);
  if (!batch.ok) return;
  PrintRow("batched (1 worker)", batch, base);

  for (int workers : {2, 4, 8}) {
    EngineOptions parallel = batched;
    parallel.parallelism = workers;
    RunStats run =
        TimeLatencyBound(**vm, *dag, latency, workers, parallel, repeats);
    if (!run.ok) return;
    const std::string label =
        "parallel (" + std::to_string(workers) + " workers)";
    PrintRow(label.c_str(), run, base);
  }
  std::printf("\n");
}

// ---- heterogeneous pool: static sharding vs work stealing ----------------

RunStats TimeHetero(const VmTarget& observed, const AcDag& dag,
                    std::chrono::microseconds latency, int slow_factor,
                    int workers, SchedulerPolicy policy, EngineOptions engine,
                    int repeats) {
  RunStats stats;
  for (int i = 0; i < repeats; ++i) {
    auto inner = observed.Clone();
    if (!inner.ok()) return stats;
    HeteroLatencyTarget primary(std::move(inner).value(), latency,
                                slow_factor);
    SchedulerOptions scheduler;
    scheduler.policy = policy;
    auto pool_or = ParallelTarget::Create(&primary, workers, scheduler);
    if (!pool_or.ok()) return stats;
    std::unique_ptr<ParallelTarget> pool = std::move(pool_or).value();
    CausalPathDiscovery discovery(&dag, pool.get(), engine);
    const auto start = std::chrono::steady_clock::now();
    auto report = discovery.Run();
    const auto end = std::chrono::steady_clock::now();
    if (!report.ok()) {
      std::fprintf(stderr, "run: %s\n", report.status().ToString().c_str());
      return stats;
    }
    stats.ms +=
        std::chrono::duration<double, std::milli>(end - start).count();
    stats.rounds = report->rounds;
    stats.executions = report->executions;
    stats.speculative = report->speculative_executions;
    stats.steals = report->steals;
    stats.straggler_wait_ms =
        static_cast<double>(report->straggler_wait_micros) / 1000.0;
    stats.path = PathKey(*report);
  }
  stats.ms /= repeats;
  stats.ok = true;
  return stats;
}

/// The acceptance scenario: 4 workers, replica 0 charging 10x the
/// per-execution latency. Returns 0 when work stealing beats static
/// sharding >= 1.5x with a bit-identical path, 1 otherwise.
int BenchHeterogeneous(std::chrono::microseconds latency, int repeats) {
  g_prefix = "hetero";
  auto study = MakeKafkaUseAfterFree();
  if (!study.ok()) return 1;
  auto vm = VmTarget::Create(&study->program, study->target_options);
  if (!vm.ok()) return 1;
  auto dag = (*vm)->BuildAcDag();
  if (!dag.ok()) return 1;

  const int slow_factor = 10;
  const int workers = 4;
  const std::string title =
      "Heterogeneous pool (kafka, " + std::to_string(latency.count()) +
      "us/execution, replica 0 of " + std::to_string(workers) + " is " +
      std::to_string(slow_factor) + "x slower, 6 trials)";
  PrintHeader(title.c_str());

  EngineOptions engine = EngineOptions::Linear();
  engine.trials_per_intervention = 6;
  engine.batched_dispatch = true;
  engine.parallelism = workers;

  RunStats fixed = TimeHetero(**vm, *dag, latency, slow_factor, workers,
                              SchedulerPolicy::kStatic, engine, repeats);
  if (!fixed.ok) return 1;
  PrintRow("static sharding", fixed, fixed);
  RunStats stealing = TimeHetero(**vm, *dag, latency, slow_factor, workers,
                                 SchedulerPolicy::kWorkStealing, engine,
                                 repeats);
  if (!stealing.ok) return 1;
  PrintRow("work stealing", stealing, fixed);
  std::printf("work stealing: %llu chunks stolen, %.1f ms straggler wait "
              "(static waited %.1f ms)\n\n",
              static_cast<unsigned long long>(stealing.steals),
              stealing.straggler_wait_ms, fixed.straggler_wait_ms);

  const double speedup = fixed.ms / stealing.ms;
  if (stealing.path != fixed.path) {
    std::fprintf(stderr,
                 "BUG: work-stealing report diverges from static sharding\n");
    return 1;
  }
  if (speedup < 1.5) {
    std::fprintf(stderr,
                 "REGRESSION: work stealing only %.2fx over static sharding "
                 "on a heterogeneous pool (>= 1.5x required)\n",
                 speedup);
    return 1;
  }
  std::printf("heterogeneous-pool check passed: %.2fx over static sharding, "
              "bit-identical report\n",
              speedup);
  g_profile.Metric("hetero_stealing_speedup", speedup);
  g_profile.Metric("hetero_steals", static_cast<double>(stealing.steals));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const int repeats = argc > 1 ? std::atoi(argv[1]) : 3;
  const int latency_us = argc > 2 ? std::atoi(argv[2]) : 500;
  std::printf("hardware threads: %u\n\n", std::thread::hardware_concurrency());

  // Synthetic model: executions are microseconds, so this mostly measures
  // the dispatch machinery itself.
  auto model = MakeSymmetricModel(/*junctions=*/3, /*branches=*/6,
                                  /*chain_len=*/5, /*causal=*/6, /*seed=*/7);
  if (!model.ok()) {
    std::fprintf(stderr, "model: %s\n", model.status().ToString().c_str());
    return 1;
  }
  {
    g_prefix = "model";
    EngineOptions engine = EngineOptions::Linear();
    engine.trials_per_intervention = 4;
    BenchSubject(
        "Synthetic model (symmetric DAG, 90+ predicates, 4 trials)",
        [&](int workers) {
          SessionBuilder builder;
          builder.WithModel(model->get())
              .WithDescriptions(false)
              .WithParallelism(workers);
          return builder;
        },
        engine, repeats);
  }

  // VM case study, CPU-bound: every execution recompiles the intervention
  // plan and re-runs the program. Scales with physical cores.
  {
    g_prefix = "kafka_cpu";
    EngineOptions engine = EngineOptions::Linear();
    engine.trials_per_intervention = 6;
    BenchSubject(
        "VM case study, CPU-bound (kafka use-after-free, 6 trials)",
        [&](int workers) {
          SessionBuilder builder;
          builder.WithCaseStudy("kafka")
              .WithDescriptions(false)
              .WithParallelism(workers);
          return builder;
        },
        engine, repeats);
  }

  // VM case study, latency-bound: the regime the paper's subjects live in.
  BenchLatencyBound(std::chrono::microseconds(latency_us), repeats);

  // Heterogeneous pool (one straggler replica): static vs work stealing,
  // self-checking -- the process exit code is the acceptance gate.
  const int rc = BenchHeterogeneous(std::chrono::microseconds(latency_us),
                                    repeats);
  g_profile.Write();
  return rc;
}
