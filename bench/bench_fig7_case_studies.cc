// Regenerates the paper's Figure 7: the six real-world case studies.
//
// Columns: #fully-discriminative predicates (SD), AC-DAG size after AID's
// safety/reachability filters, causal-path length, AID intervention rounds,
// measured TAGT rounds (random order, same target), and TAGT's worst-case
// bound D * ceil(log2 N). Paper values are printed alongside.
//
// Expected shape (not absolute numbers -- the substrate is a simulator):
//   * SD reports many more predicates than the causal path contains;
//   * AID localizes the documented root cause on every case;
//   * AID needs fewer interventions than TAGT's worst case throughout.

#include <algorithm>
#include <cstdio>

#include "casestudies/case_study.h"
#include "casestudies/pipeline.h"
#include "common/math_util.h"

int main() {
  using namespace aid;

  auto studies = AllCaseStudies();
  if (!studies.ok()) {
    std::fprintf(stderr, "case studies: %s\n",
                 studies.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "Figure 7: case studies of real-world applications (paper values in "
      "parentheses)\n\n");
  std::printf(
      "%-16s %-14s %-8s %-12s %-10s %-12s %-12s\n", "Application",
      "SD preds", "AC-DAG", "path len", "AID", "TAGT(meas)", "TAGT(worst)");

  bool all_roots_found = true;
  for (const CaseStudy& study : *studies) {
    PipelineConfig config;
    config.aid.trials_per_intervention = 3;
    config.tagt.trials_per_intervention = 3;
    auto outcome = RunPipeline(study, config);
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s: %s\n", study.name.c_str(),
                   outcome.status().ToString().c_str());
      return 1;
    }
    const int worst_tagt = static_cast<int>(
        outcome->aid_path_len() *
        CeilLog2(static_cast<uint64_t>(std::max(outcome->acdag_nodes, 2))));
    std::printf("%-16s %4d (%3d)    %4d     %4d (%2d)    %3d (%2d)   %4d"
                "         %4d (%2d)\n",
                study.name.c_str(), outcome->fully_discriminative,
                study.paper.sd_predicates, outcome->acdag_nodes,
                outcome->aid_path_len(), study.paper.causal_path,
                outcome->aid.rounds, study.paper.aid_interventions,
                outcome->tagt.rounds, worst_tagt,
                study.paper.tagt_interventions);
    const bool root_ok =
        outcome->root_cause.find(study.expected_root_substring) !=
        std::string::npos;
    all_roots_found = all_roots_found && root_ok;
    std::printf("    root cause%s: %s\n", root_ok ? "" : " (UNEXPECTED)",
                outcome->root_cause.c_str());
    std::printf("    explanation:\n");
    for (size_t i = 0; i < outcome->causal_path.size(); ++i) {
      std::printf("      %zu. %s\n", i + 1, outcome->causal_path[i].c_str());
    }
    std::printf("\n");
  }
  std::printf("all documented root causes identified: %s\n",
              all_roots_found ? "yes" : "NO");
  return all_roots_found ? 0 : 1;
}
