// Regenerates the paper's Figure 7: the six real-world case studies.
//
// Columns: #fully-discriminative predicates (SD), AC-DAG size after AID's
// safety/reachability filters, causal-path length, AID intervention rounds,
// measured TAGT rounds (random order, same target), and TAGT's worst-case
// bound D * ceil(log2 N). Paper values are printed alongside.
//
// Expected shape (not absolute numbers -- the substrate is a simulator):
//   * SD reports many more predicates than the causal path contains;
//   * AID localizes the documented root cause on every case;
//   * AID needs fewer interventions than TAGT's worst case throughout.

#include <algorithm>
#include <cstdio>

#include "api/session.h"
#include "bench_json.h"
#include "casestudies/case_study.h"
#include "common/math_util.h"

int main() {
  using namespace aid;
  bench::BenchJson profile("fig7_case_studies");

  auto studies = AllCaseStudies();
  if (!studies.ok()) {
    std::fprintf(stderr, "case studies: %s\n",
                 studies.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "Figure 7: case studies of real-world applications (paper values in "
      "parentheses)\n\n");
  std::printf(
      "%-16s %-14s %-8s %-12s %-10s %-12s %-12s\n", "Application",
      "SD preds", "AC-DAG", "path len", "AID", "TAGT(meas)", "TAGT(worst)");

  bool all_roots_found = true;
  for (const CaseStudy& study : *studies) {
    auto session = SessionBuilder()
                       .WithProgram(&study.program, study.target_options)
                       .WithEngine(EnginePreset::kAid)
                       .WithTrials(3)
                       .WithTagtBaseline()
                       .Build();
    if (!session.ok()) {
      std::fprintf(stderr, "%s: %s\n", study.name.c_str(),
                   session.status().ToString().c_str());
      return 1;
    }
    auto report = session->Run();
    if (!report.ok()) {
      std::fprintf(stderr, "%s: %s\n", study.name.c_str(),
                   report.status().ToString().c_str());
      return 1;
    }
    const int worst_tagt = static_cast<int>(
        report->causal_path_len() *
        CeilLog2(static_cast<uint64_t>(std::max(report->acdag_nodes, 2))));
    std::printf("%-16s %4d (%3d)    %4d     %4d (%2d)    %3llu (%2d)   %4llu"
                "         %4d (%2d)\n",
                study.name.c_str(), report->sd_predicates,
                study.paper.sd_predicates, report->acdag_nodes,
                report->causal_path_len(), study.paper.causal_path,
                static_cast<unsigned long long>(report->discovery.rounds),
                study.paper.aid_interventions,
                static_cast<unsigned long long>(report->tagt_baseline->rounds),
                worst_tagt, study.paper.tagt_interventions);
    const bool root_ok =
        report->root_cause.find(study.expected_root_substring) !=
        std::string::npos;
    all_roots_found = all_roots_found && root_ok;
    profile.Metric(study.name + "_sd_predicates", report->sd_predicates);
    profile.Metric(study.name + "_acdag_nodes", report->acdag_nodes);
    profile.Metric(study.name + "_path_len", report->causal_path_len());
    profile.Metric(study.name + "_aid_rounds", report->discovery.rounds);
    profile.Metric(study.name + "_tagt_rounds",
                   report->tagt_baseline->rounds);
    profile.Metric(study.name + "_root_found", root_ok ? 1 : 0);
    std::printf("    root cause%s: %s\n", root_ok ? "" : " (UNEXPECTED)",
                report->root_cause.c_str());
    std::printf("    explanation:\n");
    for (size_t i = 0; i < report->causal_path.size(); ++i) {
      std::printf("      %zu. %s\n", i + 1, report->causal_path[i].c_str());
    }
    std::printf("\n");
  }
  std::printf("all documented root causes identified: %s\n",
              all_roots_found ? "yes" : "NO");
  profile.Metric("all_roots_found", all_roots_found ? 1 : 0);
  profile.Write();
  return all_roots_found ? 0 : 1;
}
