// Remote-fleet bench: per-trial RPC overhead of loopback runner fleets vs.
// in-process dispatch, at 1/2/4/8 workers over 2 runners.
//
// The subject is a synthetic ground-truth model whose executions cost
// microseconds, so the numbers isolate what the net/ machinery itself
// charges per trial: one RUN_TRIAL frame out, streamed TRACE_EVENT frames
// plus a VERDICT back, across a loopback TCP connection into a forked
// runner-side subject process. The paper's real subjects take seconds per
// execution (Section 7), which is why per-trial overhead in the hundreds
// of microseconds makes a fleet effectively free -- and every
// configuration must still produce the bit-identical discovery report,
// which the bench asserts (exit 1 on divergence).
//
// Usage: bench_net [model_threads] (default 14)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "api/session.h"
#include "bench_json.h"
#include "net/runner.h"
#include "synth/generator.h"
#include "synth/model.h"

namespace {

using namespace aid;

struct RunStats {
  double wall_ms = 0;
  SessionReport report;
};

RunStats RunOnce(const GroundTruthModel* model,
                 const std::vector<std::string>& fleet, int parallelism,
                 int trials,
                 SchedulerPolicy policy = SchedulerPolicy::kWorkStealing) {
  SessionBuilder builder;
  builder.WithModel(model).WithTrials(trials).WithParallelism(parallelism);
  SchedulerOptions scheduler;
  scheduler.policy = policy;
  builder.WithScheduler(scheduler);
  if (!fleet.empty()) {
    builder.WithRemoteFleet(fleet, /*trial_deadline_ms=*/20000);
  }
  const auto start = std::chrono::steady_clock::now();
  auto session = builder.Build();
  if (!session.ok()) {
    std::fprintf(stderr, "session build failed: %s\n",
                 session.status().ToString().c_str());
    std::exit(1);
  }
  auto report = session->Run();
  if (!report.ok()) {
    std::fprintf(stderr, "session run failed: %s\n",
                 report.status().ToString().c_str());
    std::exit(1);
  }
  const auto end = std::chrono::steady_clock::now();
  RunStats stats;
  stats.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          end - start)
          .count();
  stats.report = std::move(*report);
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  if (!RemoteFleetSupported()) {
    std::printf("bench_net: remote fleets unsupported here; "
                "nothing to measure\n");
    return 0;
  }
  const int model_threads = argc > 1 ? std::atoi(argv[1]) : 14;
  const int trials = 3;

  SyntheticAppOptions options;
  options.max_threads = model_threads;
  options.seed = 7;
  auto model = GenerateSyntheticApp(options);
  if (!model.ok()) {
    std::fprintf(stderr, "model generation failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }

  // Two loopback runners: the smallest real fleet.
  std::vector<std::unique_ptr<Runner>> runners;
  std::vector<std::string> fleet;
  for (int i = 0; i < 2; ++i) {
    auto runner = Runner::Start();
    if (!runner.ok()) {
      std::fprintf(stderr, "runner start failed: %s\n",
                   runner.status().ToString().c_str());
      return 1;
    }
    fleet.push_back((*runner)->endpoint().ToString());
    runners.push_back(std::move(*runner));
  }

  std::printf("subject: synthetic model, %zu predicates, %d trials/round\n",
              (*model)->size(), trials);
  std::printf("fleet: 2 loopback runners (%s, %s)\n\n", fleet[0].c_str(),
              fleet[1].c_str());
  std::printf("%-14s %-8s %10s %12s %12s %8s\n", "substrate", "workers",
              "wall_ms", "executions", "us/trial", "rounds");

  // In-process baselines at matching worker counts (dispatch mode matches:
  // parallelism > 1 implies batched linear scan on both sides).
  bench::BenchJson profile("net");
  std::vector<int> workers = {1, 2, 4, 8};
  std::vector<RunStats> in_process;
  for (int w : workers) {
    RunStats stats = RunOnce(model->get(), {}, w, trials);
    std::printf("%-14s %-8d %10.2f %12llu %12.2f %8llu\n", "in_process", w,
                stats.wall_ms,
                (unsigned long long)stats.report.discovery.executions,
                1000.0 * stats.wall_ms /
                    std::max<uint64_t>(1, stats.report.discovery.executions),
                (unsigned long long)stats.report.discovery.rounds);
    profile.Metric("in_process_w" + std::to_string(w) + "_wall_ms",
                   stats.wall_ms);
    in_process.push_back(std::move(stats));
  }
  std::printf("\n");
  for (size_t i = 0; i < workers.size(); ++i) {
    const int w = workers[i];
    RunStats stats = RunOnce(model->get(), fleet, w, trials);
    const double us_per_trial =
        1000.0 * stats.wall_ms /
        std::max<uint64_t>(1, stats.report.discovery.executions);
    const double base_us =
        1000.0 * in_process[i].wall_ms /
        std::max<uint64_t>(1, in_process[i].report.discovery.executions);
    std::printf("%-14s %-8d %10.2f %12llu %12.2f %8llu  (+%.2f us/trial RPC)\n",
                "remote_fleet", w, stats.wall_ms,
                (unsigned long long)stats.report.discovery.executions,
                us_per_trial,
                (unsigned long long)stats.report.discovery.rounds,
                us_per_trial - base_us);
    profile.Metric("remote_fleet_w" + std::to_string(w) + "_wall_ms",
                   stats.wall_ms);
    profile.Metric("remote_fleet_w" + std::to_string(w) + "_rpc_us_per_trial",
                   us_per_trial - base_us);
    if (!SameDiscoveryOutcome(stats.report.discovery, in_process[i].report.discovery)) {
      std::fprintf(stderr,
                   "BUG: remote-fleet report diverges from in-process at "
                   "%d workers\n",
                   w);
      return 1;
    }
  }
  std::printf("\nall remote-fleet reports bit-identical to in-process runs "
              "(%d + %d sessions hosted)\n\n",
              runners[0]->sessions_started(),
              runners[1]->sessions_started());

  // ---- heterogeneous fleet: one runner 10x slower ------------------------
  //
  // A third runner joins, charging 10x a typical loopback trial's cost
  // (~200us RPC -> 2ms injected delay) per trial, and one replica lives on
  // each runner with enough trials per round that static sharding MUST use
  // the straggler every round. The latency-aware work-stealing scheduler
  // has to win >= 1.5x with the bit-identical report, or this bench
  // exits 1.
  {
    RunnerOptions slow_options;
    slow_options.trial_delay_us = 2000;
    auto slow_runner = Runner::Start(slow_options);
    if (!slow_runner.ok()) {
      std::fprintf(stderr, "slow runner start failed: %s\n",
                   slow_runner.status().ToString().c_str());
      return 1;
    }
    std::vector<std::string> hetero_fleet = fleet;
    hetero_fleet.push_back((*slow_runner)->endpoint().ToString());
    const int hetero_workers = 3;   // one replica per runner
    const int hetero_trials = 12;   // static must shard onto the straggler
    std::printf("heterogeneous fleet: 2 fast runners + %s (+2000us/trial), "
                "%d workers, %d trials/round\n",
                hetero_fleet[2].c_str(), hetero_workers, hetero_trials);

    RunStats reference =
        RunOnce(model->get(), {}, hetero_workers, hetero_trials);
    RunStats fixed = RunOnce(model->get(), hetero_fleet, hetero_workers,
                             hetero_trials, SchedulerPolicy::kStatic);
    std::printf("%-14s %10.2f ms  %8llu steals  %10.1f ms straggler wait\n",
                "static", fixed.wall_ms,
                (unsigned long long)fixed.report.discovery.steals,
                fixed.report.discovery.straggler_wait_micros / 1000.0);
    RunStats stealing = RunOnce(model->get(), hetero_fleet, hetero_workers,
                                hetero_trials, SchedulerPolicy::kWorkStealing);
    std::printf("%-14s %10.2f ms  %8llu steals  %10.1f ms straggler wait\n",
                "work-stealing", stealing.wall_ms,
                (unsigned long long)stealing.report.discovery.steals,
                stealing.report.discovery.straggler_wait_micros / 1000.0);

    if (!SameDiscoveryOutcome(stealing.report.discovery,
                              fixed.report.discovery) ||
        !SameDiscoveryOutcome(stealing.report.discovery,
                              reference.report.discovery)) {
      std::fprintf(stderr, "BUG: heterogeneous-fleet report diverges\n");
      return 1;
    }
    const double speedup = fixed.wall_ms / stealing.wall_ms;
    if (speedup < 1.5) {
      std::fprintf(stderr,
                   "REGRESSION: work stealing only %.2fx over static "
                   "sharding on the heterogeneous fleet (>= 1.5x required)\n",
                   speedup);
      return 1;
    }
    std::printf("heterogeneous-fleet check passed: %.2fx over static "
                "sharding, bit-identical report\n",
                speedup);
    profile.Metric("hetero_static_wall_ms", fixed.wall_ms);
    profile.Metric("hetero_stealing_wall_ms", stealing.wall_ms);
    profile.Metric("hetero_stealing_speedup", speedup);
    profile.Metric("hetero_steals",
                   static_cast<double>(stealing.report.discovery.steals));
  }
  profile.Write();
  return 0;
}
