// Remote-fleet bench: per-trial RPC overhead of loopback runner fleets vs.
// in-process dispatch, at 1/2/4/8 workers over 2 runners.
//
// The subject is a synthetic ground-truth model whose executions cost
// microseconds, so the numbers isolate what the net/ machinery itself
// charges per trial: one RUN_TRIAL frame out, streamed TRACE_EVENT frames
// plus a VERDICT back, across a loopback TCP connection into a forked
// runner-side subject process. The paper's real subjects take seconds per
// execution (Section 7), which is why per-trial overhead in the hundreds
// of microseconds makes a fleet effectively free -- and every
// configuration must still produce the bit-identical discovery report,
// which the bench asserts (exit 1 on divergence).
//
// Usage: bench_net [model_threads] (default 14)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "api/session.h"
#include "net/runner.h"
#include "synth/generator.h"
#include "synth/model.h"

namespace {

using namespace aid;

struct RunStats {
  double wall_ms = 0;
  SessionReport report;
};

RunStats RunOnce(const GroundTruthModel* model,
                 const std::vector<std::string>& fleet, int parallelism,
                 int trials) {
  SessionBuilder builder;
  builder.WithModel(model).WithTrials(trials).WithParallelism(parallelism);
  if (!fleet.empty()) {
    builder.WithRemoteFleet(fleet, /*trial_deadline_ms=*/20000);
  }
  const auto start = std::chrono::steady_clock::now();
  auto session = builder.Build();
  if (!session.ok()) {
    std::fprintf(stderr, "session build failed: %s\n",
                 session.status().ToString().c_str());
    std::exit(1);
  }
  auto report = session->Run();
  if (!report.ok()) {
    std::fprintf(stderr, "session run failed: %s\n",
                 report.status().ToString().c_str());
    std::exit(1);
  }
  const auto end = std::chrono::steady_clock::now();
  RunStats stats;
  stats.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          end - start)
          .count();
  stats.report = std::move(*report);
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  if (!RemoteFleetSupported()) {
    std::printf("bench_net: remote fleets unsupported here; "
                "nothing to measure\n");
    return 0;
  }
  const int model_threads = argc > 1 ? std::atoi(argv[1]) : 14;
  const int trials = 3;

  SyntheticAppOptions options;
  options.max_threads = model_threads;
  options.seed = 7;
  auto model = GenerateSyntheticApp(options);
  if (!model.ok()) {
    std::fprintf(stderr, "model generation failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }

  // Two loopback runners: the smallest real fleet.
  std::vector<std::unique_ptr<Runner>> runners;
  std::vector<std::string> fleet;
  for (int i = 0; i < 2; ++i) {
    auto runner = Runner::Start();
    if (!runner.ok()) {
      std::fprintf(stderr, "runner start failed: %s\n",
                   runner.status().ToString().c_str());
      return 1;
    }
    fleet.push_back((*runner)->endpoint().ToString());
    runners.push_back(std::move(*runner));
  }

  std::printf("subject: synthetic model, %zu predicates, %d trials/round\n",
              (*model)->size(), trials);
  std::printf("fleet: 2 loopback runners (%s, %s)\n\n", fleet[0].c_str(),
              fleet[1].c_str());
  std::printf("%-14s %-8s %10s %12s %12s %8s\n", "substrate", "workers",
              "wall_ms", "executions", "us/trial", "rounds");

  // In-process baselines at matching worker counts (dispatch mode matches:
  // parallelism > 1 implies batched linear scan on both sides).
  std::vector<int> workers = {1, 2, 4, 8};
  std::vector<RunStats> in_process;
  for (int w : workers) {
    RunStats stats = RunOnce(model->get(), {}, w, trials);
    std::printf("%-14s %-8d %10.2f %12d %12.2f %8d\n", "in_process", w,
                stats.wall_ms, stats.report.discovery.executions,
                1000.0 * stats.wall_ms /
                    std::max(1, stats.report.discovery.executions),
                stats.report.discovery.rounds);
    in_process.push_back(std::move(stats));
  }
  std::printf("\n");
  for (size_t i = 0; i < workers.size(); ++i) {
    const int w = workers[i];
    RunStats stats = RunOnce(model->get(), fleet, w, trials);
    const double us_per_trial =
        1000.0 * stats.wall_ms /
        std::max(1, stats.report.discovery.executions);
    const double base_us =
        1000.0 * in_process[i].wall_ms /
        std::max(1, in_process[i].report.discovery.executions);
    std::printf("%-14s %-8d %10.2f %12d %12.2f %8d  (+%.2f us/trial RPC)\n",
                "remote_fleet", w, stats.wall_ms,
                stats.report.discovery.executions, us_per_trial,
                stats.report.discovery.rounds, us_per_trial - base_us);
    if (!SameDiscoveryOutcome(stats.report.discovery, in_process[i].report.discovery)) {
      std::fprintf(stderr,
                   "BUG: remote-fleet report diverges from in-process at "
                   "%d workers\n",
                   w);
      return 1;
    }
  }
  std::printf("\nall remote-fleet reports bit-identical to in-process runs "
              "(%d + %d sessions hosted)\n",
              runners[0]->sessions_started(),
              runners[1]->sessions_started());
  return 0;
}
