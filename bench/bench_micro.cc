// Microbenchmarks for the core data structures and algorithms: AC-DAG
// construction, synthetic-app generation, model execution, and full
// causal-path discovery at several scales.

#include <benchmark/benchmark.h>

#include <string>
#include <string_view>
#include <vector>

#include "api/session.h"
#include "causal/acdag.h"
#include "core/engine.h"
#include "synth/generator.h"
#include "synth/model.h"

namespace aid {
namespace {

void BM_GenerateSyntheticApp(benchmark::State& state) {
  SyntheticAppOptions options;
  options.max_threads = static_cast<int>(state.range(0));
  uint64_t seed = 1;
  for (auto _ : state) {
    options.seed = seed++;
    auto model = GenerateSyntheticApp(options);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_GenerateSyntheticApp)->Arg(4)->Arg(16)->Arg(40);

void BM_BuildAcDag(benchmark::State& state) {
  SyntheticAppOptions options;
  options.max_threads = static_cast<int>(state.range(0));
  options.seed = 42;
  auto model = GenerateSyntheticApp(options);
  for (auto _ : state) {
    auto dag = (*model)->BuildAcDag();
    benchmark::DoNotOptimize(dag);
  }
  state.counters["predicates"] =
      static_cast<double>((*model)->size());
}
BENCHMARK(BM_BuildAcDag)->Arg(4)->Arg(16)->Arg(40);

void BM_ModelExecute(benchmark::State& state) {
  SyntheticAppOptions options;
  options.max_threads = static_cast<int>(state.range(0));
  options.seed = 7;
  auto model = GenerateSyntheticApp(options);
  const std::vector<PredicateId> intervened{(*model)->causal_chain().front()};
  for (auto _ : state) {
    PredicateLog log = (*model)->Execute(intervened);
    benchmark::DoNotOptimize(log);
  }
}
BENCHMARK(BM_ModelExecute)->Arg(4)->Arg(16)->Arg(40);

void BM_CausalPathDiscovery(benchmark::State& state) {
  SyntheticAppOptions options;
  options.max_threads = static_cast<int>(state.range(0));
  options.seed = 99;
  auto model = GenerateSyntheticApp(options);
  auto dag = (*model)->BuildAcDag();
  for (auto _ : state) {
    ModelTarget target(model->get());
    CausalPathDiscovery discovery(&*dag, &target, EngineOptions::Aid());
    auto report = discovery.Run();
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_CausalPathDiscovery)->Arg(4)->Arg(16)->Arg(40);

// --- batched vs. single-call intervention dispatch -------------------------
//
// The same round of singleton interventions submitted one RunIntervened call
// at a time versus as one RunInterventionsBatch call. The model target's
// batch override skips the per-call Result/virtual-dispatch plumbing, which
// is exactly the overhead a remote or pooled backend would amortize.

InterventionSpans SingletonSpans(const GroundTruthModel& model) {
  InterventionSpans spans;
  spans.reserve(model.predicates().size());
  for (PredicateId id : model.predicates()) spans.push_back({id});
  return spans;
}

void BM_DispatchSingleCalls(benchmark::State& state) {
  SyntheticAppOptions options;
  options.max_threads = static_cast<int>(state.range(0));
  options.seed = 11;
  auto model = GenerateSyntheticApp(options);
  const InterventionSpans spans = SingletonSpans(**model);
  ModelTarget target(model->get());
  for (auto _ : state) {
    for (const auto& span : spans) {
      auto result = target.RunIntervened(span, /*trials=*/1);
      benchmark::DoNotOptimize(result);
    }
  }
  state.counters["spans"] = static_cast<double>(spans.size());
}
BENCHMARK(BM_DispatchSingleCalls)->Arg(4)->Arg(16)->Arg(40);

void BM_DispatchBatched(benchmark::State& state) {
  SyntheticAppOptions options;
  options.max_threads = static_cast<int>(state.range(0));
  options.seed = 11;
  auto model = GenerateSyntheticApp(options);
  const InterventionSpans spans = SingletonSpans(**model);
  ModelTarget target(model->get());
  for (auto _ : state) {
    auto results = target.RunInterventionsBatch(spans, /*trials=*/1);
    benchmark::DoNotOptimize(results);
  }
  state.counters["spans"] = static_cast<double>(spans.size());
}
BENCHMARK(BM_DispatchBatched)->Arg(4)->Arg(16)->Arg(40);

// Full linear-scan discovery through aid::Session, serial vs. batched
// dispatch of each scan round.
void BM_SessionLinearScan(benchmark::State& state) {
  SyntheticAppOptions options;
  options.max_threads = static_cast<int>(state.range(0));
  options.seed = 11;
  auto model = GenerateSyntheticApp(options);
  auto session = SessionBuilder()
                     .WithModel(model->get())
                     .WithDescriptions(false)
                     .Build();
  EngineOptions engine = EngineOptions::Linear();
  engine.batched_dispatch = state.range(1) != 0;
  for (auto _ : state) {
    auto report = session->Run(engine);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_SessionLinearScan)
    ->ArgsProduct({{4, 16, 40}, {0, 1}})
    ->ArgNames({"maxt", "batched"});

}  // namespace
}  // namespace aid

// Custom main instead of benchmark_main: unless the caller already chose an
// output file, every run also writes BENCH_micro.json (google benchmark's
// own JSON schema), matching the BENCH_<name>.json contract of the other
// benches.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--benchmark_out", 0) == 0) {
      has_out = true;
    }
  }
  std::string out_flag = "--benchmark_out=BENCH_micro.json";
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
