// Microbenchmarks for the core data structures and algorithms: AC-DAG
// construction, synthetic-app generation, model execution, and full
// causal-path discovery at several scales.

#include <benchmark/benchmark.h>

#include "causal/acdag.h"
#include "core/engine.h"
#include "synth/generator.h"
#include "synth/model.h"

namespace aid {
namespace {

void BM_GenerateSyntheticApp(benchmark::State& state) {
  SyntheticAppOptions options;
  options.max_threads = static_cast<int>(state.range(0));
  uint64_t seed = 1;
  for (auto _ : state) {
    options.seed = seed++;
    auto model = GenerateSyntheticApp(options);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_GenerateSyntheticApp)->Arg(4)->Arg(16)->Arg(40);

void BM_BuildAcDag(benchmark::State& state) {
  SyntheticAppOptions options;
  options.max_threads = static_cast<int>(state.range(0));
  options.seed = 42;
  auto model = GenerateSyntheticApp(options);
  for (auto _ : state) {
    auto dag = (*model)->BuildAcDag();
    benchmark::DoNotOptimize(dag);
  }
  state.counters["predicates"] =
      static_cast<double>((*model)->size());
}
BENCHMARK(BM_BuildAcDag)->Arg(4)->Arg(16)->Arg(40);

void BM_ModelExecute(benchmark::State& state) {
  SyntheticAppOptions options;
  options.max_threads = static_cast<int>(state.range(0));
  options.seed = 7;
  auto model = GenerateSyntheticApp(options);
  const std::vector<PredicateId> intervened{(*model)->causal_chain().front()};
  for (auto _ : state) {
    PredicateLog log = (*model)->Execute(intervened);
    benchmark::DoNotOptimize(log);
  }
}
BENCHMARK(BM_ModelExecute)->Arg(4)->Arg(16)->Arg(40);

void BM_CausalPathDiscovery(benchmark::State& state) {
  SyntheticAppOptions options;
  options.max_threads = static_cast<int>(state.range(0));
  options.seed = 99;
  auto model = GenerateSyntheticApp(options);
  auto dag = (*model)->BuildAcDag();
  for (auto _ : state) {
    ModelTarget target(model->get());
    CausalPathDiscovery discovery(&*dag, &target, EngineOptions::Aid());
    auto report = discovery.Run();
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_CausalPathDiscovery)->Arg(4)->Arg(16)->Arg(40);

}  // namespace
}  // namespace aid
