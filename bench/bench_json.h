// BenchJson: the machine-readable profile every AID bench writes beside
// its stdout tables.
//
// Each bench_<name> binary collects its headline numbers into a BenchJson
// and writes BENCH_<name>.json into the working directory on exit, so CI
// and dashboards track bench results across commits without scraping the
// human tables. The document is flat by design:
//
//   {"bench":"ablation","metrics":{"fig5c_b4_aid_rounds":6.0,...},
//    "telemetry":{...}}          // telemetry block only when attached
//
// Metrics keep insertion order. Attach() embeds a session's full telemetry
// snapshot (TelemetryJson) so a bench run doubles as an exportable run
// profile. Header-only; benches are standalone binaries and this is their
// only shared code.

#ifndef AID_BENCH_BENCH_JSON_H_
#define AID_BENCH_BENCH_JSON_H_

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/json.h"
#include "telemetry/telemetry.h"

namespace aid::bench {

class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  /// Records one headline number (duplicate keys are written as-is; use
  /// distinct names).
  void Metric(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }

  /// Embeds a full telemetry snapshot under "telemetry" (last call wins).
  void Attach(const TelemetrySnapshot& snapshot) {
    telemetry_json_ = TelemetryJson(snapshot);
  }

  /// The document, rendered.
  std::string ToJson() const {
    JsonWriter w;
    w.BeginObject();
    w.Key("bench").String(name_);
    w.Key("metrics").BeginObject();
    for (const auto& [key, value] : metrics_) w.Key(key).Double(value);
    w.EndObject();
    if (!telemetry_json_.empty()) w.Key("telemetry").Raw(telemetry_json_);
    w.EndObject();
    return w.str();
  }

  /// Writes BENCH_<name>.json into the working directory. Returns false
  /// (after a stderr note) when the file cannot be written; benches treat
  /// that as nonfatal -- the stdout tables already happened.
  bool Write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    const std::string body = ToJson();
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return false;
    }
    const bool ok =
        std::fwrite(body.data(), 1, body.size(), f) == body.size() &&
        std::fputc('\n', f) != EOF;
    std::fclose(f);
    if (ok) std::printf("wrote %s\n", path.c_str());
    return ok;
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::string telemetry_json_;
};

}  // namespace aid::bench

#endif  // AID_BENCH_BENCH_JSON_H_
