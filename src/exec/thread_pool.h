// ThreadPool: a fixed-size worker pool with a futures-style join.
//
// The execution subsystem's scheduling primitive: ParallelTarget fans an
// intervention round's spans out across replicas by submitting one task per
// span and joining the returned futures. The pool is deliberately minimal --
// a locked deque, `workers` threads, and std::packaged_task plumbing -- so
// it stays easy to audit under ThreadSanitizer.
//
// Shutdown comes in two flavors. The graceful default (the destructor, or
// Shutdown(kDrain)) lets already-queued tasks finish, then joins every
// worker. Shutdown(kDiscard) lets only the tasks already *running* finish:
// still-queued tasks are destroyed without running, which delivers
// std::future_error(broken_promise) to their futures -- pending waiters get
// a prompt, unambiguous abort instead of a result that will never come.
// Submitting after shutdown is a programming error (AID_CHECK).

#ifndef AID_EXEC_THREAD_POOL_H_
#define AID_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace aid {

class ThreadPool {
 public:
  /// Starts `workers` threads (clamped to >= 1).
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int workers() const { return static_cast<int>(threads_.size()); }

  /// Enqueues `fn` and returns the future of its result. The future's
  /// shared state also transports exceptions thrown by `fn`.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Enqueue([task]() { (*task)(); });
    return future;
  }

  /// What happens to tasks that are queued but not yet running when the
  /// pool shuts down.
  enum class DrainPolicy {
    kDrain,    ///< run them to completion (graceful; the destructor's choice)
    kDiscard,  ///< drop them; their futures observe broken_promise
  };

  /// Stops the pool and joins every worker. Queued-but-unstarted tasks are
  /// handled per `policy`; in both cases no future is left dangling --
  /// every Submit()ed future either carries its result/exception or throws
  /// broken_promise. Idempotent; the destructor calls Shutdown(kDrain).
  void Shutdown(DrainPolicy policy = DrainPolicy::kDrain);

 private:
  void Enqueue(std::function<void()> task);
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  bool shutting_down_ = false;
  bool discard_queued_ = false;
};

}  // namespace aid

#endif  // AID_EXEC_THREAD_POOL_H_
