// ThreadPool: a fixed-size worker pool with a futures-style join.
//
// The execution subsystem's scheduling primitive: ParallelTarget fans an
// intervention round's spans out across replicas by submitting one task per
// span and joining the returned futures. The pool is deliberately minimal --
// a locked deque, `workers` threads, and std::packaged_task plumbing -- so
// it stays easy to audit under ThreadSanitizer.
//
// Shutdown is graceful: the destructor (or an explicit Shutdown call) lets
// already-queued tasks finish, then joins every worker. Submitting after
// shutdown is a programming error (AID_CHECK).

#ifndef AID_EXEC_THREAD_POOL_H_
#define AID_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace aid {

class ThreadPool {
 public:
  /// Starts `workers` threads (clamped to >= 1).
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int workers() const { return static_cast<int>(threads_.size()); }

  /// Enqueues `fn` and returns the future of its result. The future's
  /// shared state also transports exceptions thrown by `fn`.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Enqueue([task]() { (*task)(); });
    return future;
  }

  /// Drains the queue and joins every worker. Idempotent; implied by the
  /// destructor.
  void Shutdown();

 private:
  void Enqueue(std::function<void()> task);
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  bool shutting_down_ = false;
};

}  // namespace aid

#endif  // AID_EXEC_THREAD_POOL_H_
