// ThreadPool: a fixed-size worker pool with a futures-style join.
//
// The execution subsystem's scheduling primitive: ParallelTarget fans an
// intervention round's spans out across replicas by submitting one task per
// span and joining the returned futures. The pool is deliberately minimal --
// a locked deque, `workers` threads, and std::packaged_task plumbing -- so
// it stays easy to audit under ThreadSanitizer.
//
// Shutdown comes in two flavors. The graceful default (the destructor, or
// Shutdown(kDrain)) lets already-queued tasks finish, then joins every
// worker. Shutdown(kDiscard) lets only the tasks already *running* finish:
// still-queued tasks are destroyed without running, which delivers
// std::future_error(broken_promise) to their futures -- pending waiters get
// a prompt, unambiguous abort instead of a result that will never come.
//
// Shutdown may be called repeatedly, including concurrently, and stays
// policy-consistent: a kDiscard arriving while an earlier kDrain is still
// draining escalates it (the not-yet-started tasks are dropped), kDrain
// never de-escalates a discard, and only the first caller joins the worker
// threads -- later callers wait for that join instead of racing it.
// Submitting after shutdown has begun is recoverable, not fatal: the task
// is refused and its future reports std::future_error(broken_promise),
// exactly like a task discarded at shutdown.

#ifndef AID_EXEC_THREAD_POOL_H_
#define AID_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace aid {

class ThreadPool {
 public:
  /// Starts `workers` threads (clamped to >= 1).
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int workers() const { return static_cast<int>(threads_.size()); }

  /// Enqueues `fn` and returns the future of its result. The future's
  /// shared state also transports exceptions thrown by `fn`. After Shutdown
  /// has begun the task is refused instead of queued: the returned future
  /// then reports std::future_error(broken_promise) -- a recoverable
  /// refusal callers can catch, never a crash.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    // A refused task is simply dropped here: destroying the packaged_task
    // (the lambda held the last owner) breaks its promise, which is the
    // abort signal the future's waiter needs.
    (void)Enqueue([task]() { (*task)(); });
    return future;
  }

  /// What happens to tasks that are queued but not yet running when the
  /// pool shuts down.
  enum class DrainPolicy {
    kDrain,    ///< run them to completion (graceful; the destructor's choice)
    kDiscard,  ///< drop them; their futures observe broken_promise
  };

  /// Stops the pool and joins every worker. Queued-but-unstarted tasks are
  /// handled per `policy`; in both cases no future is left dangling --
  /// every Submit()ed future either carries its result/exception or throws
  /// broken_promise. Safe to call repeatedly and concurrently; a repeated
  /// call's policy is honored (kDiscard escalates an in-flight drain,
  /// kDrain never un-discards). The destructor calls Shutdown(kDrain).
  void Shutdown(DrainPolicy policy = DrainPolicy::kDrain);

 private:
  /// Queues `task`; false (task not queued) once shutdown has begun.
  bool Enqueue(std::function<void()> task);
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  /// Signals joined_ to Shutdown callers who lost the race to join.
  std::condition_variable join_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  bool shutting_down_ = false;
  bool discard_queued_ = false;
  bool joined_ = false;
};

}  // namespace aid

#endif  // AID_EXEC_THREAD_POOL_H_
