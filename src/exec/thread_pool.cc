#include "exec/thread_pool.h"

#include "common/logging.h"

namespace aid {

ThreadPool::ThreadPool(int workers) {
  if (workers < 1) workers = 1;
  threads_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    AID_CHECK(!shutting_down_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return shutting_down_ || !queue_.empty(); });
      // Discard-shutdown: stop dequeuing; Shutdown() breaks the leftovers'
      // promises after the join. Drain-shutdown: keep going until empty.
      if (shutting_down_ && discard_queued_) return;
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::Shutdown(DrainPolicy policy) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_ && threads_.empty()) return;
    shutting_down_ = true;
    if (policy == DrainPolicy::kDiscard) discard_queued_ = true;
  }
  cv_.notify_all();
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
  // With kDiscard the queue may still hold never-started tasks. Destroying
  // them destroys their std::packaged_task state, which delivers
  // std::future_error(broken_promise) to every pending future -- the abort
  // signal waiters need instead of blocking on a result that cannot come.
  std::deque<std::function<void()>> leftovers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftovers.swap(queue_);
  }
  leftovers.clear();
}

}  // namespace aid
