#include "exec/thread_pool.h"

namespace aid {

ThreadPool::ThreadPool(int workers) {
  if (workers < 1) workers = 1;
  threads_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) return false;  // refused; Submit breaks the promise
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return shutting_down_ || !queue_.empty(); });
      // Discard-shutdown: stop dequeuing; Shutdown() breaks the leftovers'
      // promises after the join. Drain-shutdown: keep going until empty.
      if (shutting_down_ && discard_queued_) return;
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::Shutdown(DrainPolicy policy) {
  bool join_here = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Policy first, idempotence second: a kDiscard arriving while an
    // earlier kDrain is still draining must escalate it (the workers stop
    // dequeuing and the leftovers' promises are broken below) -- the old
    // early-return silently ignored the second call's policy. kDrain never
    // de-escalates an earlier discard.
    if (policy == DrainPolicy::kDiscard) discard_queued_ = true;
    if (!shutting_down_) {
      shutting_down_ = true;
      join_here = true;
    }
  }
  cv_.notify_all();
  if (join_here) {
    // Only the first caller joins; concurrent callers would otherwise race
    // std::thread::join on the same handles (UB). They wait below instead.
    for (std::thread& thread : threads_) {
      if (thread.joinable()) thread.join();
    }
    threads_.clear();
    {
      std::lock_guard<std::mutex> lock(mu_);
      joined_ = true;
    }
    join_cv_.notify_all();
  } else {
    std::unique_lock<std::mutex> lock(mu_);
    join_cv_.wait(lock, [this]() { return joined_; });
  }
  // A discard (this call's, or one that escalated the drain mid-flight)
  // can leave never-started tasks behind. Destroying them destroys their
  // std::packaged_task state, which delivers
  // std::future_error(broken_promise) to every pending future -- the abort
  // signal waiters need instead of blocking on a result that cannot come.
  std::deque<std::function<void()>> leftovers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftovers.swap(queue_);
  }
  leftovers.clear();
}

}  // namespace aid
