// ReplicableTarget: an InterventionTarget that can stamp out independent
// replicas of itself for parallel dispatch.
//
// The contract has two halves, and together they make parallel execution
// bit-identical to serial execution:
//
//   * Clone() produces a replica that answers RunIntervened exactly like
//     the original would, given the same trial positions. Replicas share
//     immutable observation state (the subject program / model, predicate
//     catalogs, failing seeds) but own every piece of mutable state, so
//     distinct replicas may run concurrently on distinct threads. A
//     replica's executions() counter starts at zero: a pool sums per-replica
//     counters to keep cost accounting exact.
//
//   * SeekTrial(trial_index) positions the target's per-trial state (RNG
//     draws, failing-seed cursors) as if `trial_index` intervened
//     executions had already happened serially. Targets must derive all
//     per-execution nondeterminism positionally from the trial index, never
//     from a shared stream consumed in arrival order -- that is what lets a
//     scheduler hand span k to any replica on any worker and still get the
//     bytes serial dispatch would have produced.
//
// Deterministic targets (synth::ModelTarget) implement SeekTrial as a no-op.
//
// The contract is deliberately location-blind: a replica may be an object
// in this process, a sandboxed child (proc::SubprocessTarget), or a
// subject on another machine (net::RemoteTarget / net::FleetTarget) --
// the scheduler cannot tell them apart, and the bytes cannot differ.

#ifndef AID_EXEC_REPLICABLE_H_
#define AID_EXEC_REPLICABLE_H_

#include <cstdint>
#include <memory>

#include "common/status.h"
#include "core/target.h"

namespace aid {

class ReplicableTarget : public InterventionTarget {
 public:
  /// Stamps out an independent replica (see file comment for the contract).
  /// The replica may borrow immutable state from this target and must not
  /// outlive it.
  virtual Result<std::unique_ptr<ReplicableTarget>> Clone() const = 0;

  /// Positions per-trial state at the global trial index. Called by the
  /// scheduler before each span (or trial shard) it assigns; never called
  /// concurrently on the same replica.
  virtual void SeekTrial(uint64_t trial_index) { (void)trial_index; }

  /// The trial index the next RunIntervened execution would run at --
  /// i.e. how many intervened trials this target has consumed (or been
  /// SeekTrial'd past). A scheduler wrapping a target mid-stream starts its
  /// own cursor here so dispatch continues exactly where serial execution
  /// left off. Positionless (deterministic) targets keep the default 0.
  virtual uint64_t trial_position() const { return 0; }
};

}  // namespace aid

#endif  // AID_EXEC_REPLICABLE_H_
