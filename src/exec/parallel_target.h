// ParallelTarget: batched intervention dispatch over replicated targets.
//
// The paper's cost model (Sections 2 and 7) is dominated by application
// executions: every intervention round re-runs the subject `trials` times,
// and nondeterministic subjects need many trials (footnote 1). The engine's
// InterventionTarget::RunInterventionsBatch hook hands whole rounds to the
// backend; ParallelTarget is the backend that turns those rounds into
// wall-clock-parallel work:
//
//   * a fixed pool of `parallelism` replicas cloned from one primary
//     ReplicableTarget, each exclusively leased to one in-flight task;
//   * a ThreadPool of `parallelism` workers fanning the batch's spans out
//     across the replicas;
//   * deterministic trial seeking (ReplicableTarget::SeekTrial) so span k
//     runs the exact trial positions a serial loop over the same spans
//     would have used -- results are bit-identical to serial dispatch of
//     the same calls, independent of worker count and scheduling order.
//     (Whether the engine submits the same spans is the engine's dispatch
//     mode, not this class's: batched linear-scan dispatch runs spans that
//     a serial unbatched scan would have pruned, which on nondeterministic
//     targets also shifts later spans' trial positions. See
//     EngineOptions::batched_dispatch.)
//
// Single-span rounds still parallelize: RunIntervened shards its `trials`
// executions across the replicas and concatenates the logs in trial order,
// which is where nondeterministic targets with high trial counts win.
//
// executions() sums the primary's counter (observation cost) with every
// replica's counter, so engine accounting stays exact. All engine-facing
// entry points run on the driving thread and join their workers before
// returning; Observer callbacks therefore stay serialized on the driving
// thread and existing observers need no locking.

#ifndef AID_EXEC_PARALLEL_TARGET_H_
#define AID_EXEC_PARALLEL_TARGET_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "core/target.h"
#include "exec/replicable.h"
#include "exec/thread_pool.h"

namespace aid {

/// Upper bound on replica pools. Far above any sane worker count (replicas
/// cost real memory -- and under process isolation, a live child process
/// each); a request beyond it is a typo or an overflow, not a plan, and gets
/// a clear error instead of an OOM or a fork bomb.
inline constexpr int kMaxParallelism = 256;

/// The shared validation gate for every parallelism knob (SessionBuilder,
/// TargetConfig, ParallelTarget::Create): OK iff 1 <= parallelism <=
/// kMaxParallelism, with a message naming the offending value.
Status ValidateParallelism(int parallelism);

class ParallelTarget : public InterventionTarget {
 public:
  /// Clones `primary` into `parallelism` replicas backed by `parallelism`
  /// pool workers. `primary` is borrowed (it must outlive the ParallelTarget)
  /// and is never run again -- it only contributes its executions() history
  /// (the observation phase) to this target's accounting. Requires
  /// parallelism >= 1; parallelism == 1 is a valid degenerate pool whose
  /// results equal the primary's by the ReplicableTarget contract.
  static Result<std::unique_ptr<ParallelTarget>> Create(
      const ReplicableTarget* primary, int parallelism);

  /// Shards `trials` across the replicas (contiguous trial ranges, logs
  /// concatenated in trial order).
  Result<TargetRunResult> RunIntervened(
      const std::vector<PredicateId>& intervened, int trials) override;

  /// Fans the spans out across the replicas, one task per span; results come
  /// back in span order.
  Result<std::vector<TargetRunResult>> RunInterventionsBatch(
      const InterventionSpans& spans, int trials) override;

  /// Primary executions (observation) + every replica's executions.
  int executions() const override;

  /// Primary health + every replica's health (nonzero only over process-
  /// isolated replicas, src/proc/). Same quiescence argument as
  /// executions().
  TargetHealth health() const override;

  int parallelism() const { return static_cast<int>(replicas_.size()); }

 private:
  ParallelTarget(const ReplicableTarget* primary,
                 std::vector<std::unique_ptr<ReplicableTarget>> replicas);

  /// Exclusive replica lease for one task. Lease() blocks until a replica is
  /// free; with one pool worker per replica it never actually waits.
  ReplicableTarget* Lease();
  void Return(ReplicableTarget* replica);

  const ReplicableTarget* primary_;
  std::vector<std::unique_ptr<ReplicableTarget>> replicas_;

  std::mutex lease_mu_;
  std::condition_variable lease_cv_;
  std::vector<ReplicableTarget*> free_;

  /// Declared after the lease state and the replicas: the pool's destructor
  /// drains still-queued tasks, which touch both, so it must run first.
  ThreadPool pool_;

  /// Global intervened-trial cursor: the trial index serial dispatch would
  /// be at (starts at the primary's position, advances by the trials
  /// dispatched here). Only touched on the driving thread.
  uint64_t trial_cursor_ = 0;
};

}  // namespace aid

#endif  // AID_EXEC_PARALLEL_TARGET_H_
