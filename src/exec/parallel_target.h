// ParallelTarget: batched intervention dispatch over replicated targets.
//
// The paper's cost model (Sections 2 and 7) is dominated by application
// executions: every intervention round re-runs the subject `trials` times,
// and nondeterministic subjects need many trials (footnote 1). The engine's
// InterventionTarget::RunInterventionsBatch hook hands whole rounds to the
// backend; ParallelTarget is the backend that turns those rounds into
// wall-clock-parallel work:
//
//   * a fixed pool of `parallelism` replicas cloned from one primary
//     ReplicableTarget, each bound 1:1 to a pool worker;
//   * a ChunkScheduler (exec/scheduler.h) that cuts each round's spans and
//     trials into chunks on per-replica queues and -- under the default
//     work-stealing policy -- lets fast replicas steal the chunks queued
//     behind stragglers, guided by per-replica latency EWMAs;
//   * deterministic trial seeking (ReplicableTarget::SeekTrial) so every
//     chunk runs the exact trial positions a serial loop over the same
//     spans would have used -- results are bit-identical to serial dispatch
//     of the same calls, independent of worker count, replica speeds, and
//     steal schedule. (Whether the engine submits the same spans is the
//     engine's dispatch mode, not this class's: batched linear-scan
//     dispatch runs spans that a serial unbatched scan would have pruned,
//     which on nondeterministic targets also shifts later spans' trial
//     positions. See EngineOptions::batched_dispatch.)
//
// Single-span rounds still parallelize: RunIntervened chunks its `trials`
// executions across the replicas with the logs landing in trial order,
// which is where nondeterministic targets with high trial counts win.
//
// Error paths fail fast: the first chunk failure cancels every
// not-yet-leased chunk, the round returns the serially earliest observed
// error, and the trial cursor is committed only on success. Chunks a
// worker had already leased when the failure landed still run to
// completion and bill executions()/health() -- concurrency makes exact
// serial error accounting impossible -- but nothing queued behind the
// failure is started, which is the bulk of what the old dispatcher
// over-billed.
//
// executions() sums the primary's counter (observation cost) with every
// replica's counter, so engine accounting stays exact. All engine-facing
// entry points run on the driving thread and join their workers before
// returning; Observer callbacks therefore stay serialized on the driving
// thread and existing observers need no locking.

#ifndef AID_EXEC_PARALLEL_TARGET_H_
#define AID_EXEC_PARALLEL_TARGET_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/target.h"
#include "exec/replicable.h"
#include "exec/scheduler.h"
#include "exec/thread_pool.h"

namespace aid {

/// Upper bound on replica pools. Far above any sane worker count (replicas
/// cost real memory -- and under process isolation, a live child process
/// each); a request beyond it is a typo or an overflow, not a plan, and gets
/// a clear error instead of an OOM or a fork bomb.
inline constexpr int kMaxParallelism = 256;

/// The shared validation gate for every parallelism knob (SessionBuilder,
/// TargetConfig, ParallelTarget::Create): OK iff 1 <= parallelism <=
/// kMaxParallelism, with a message naming the offending value.
Status ValidateParallelism(int parallelism);

class ParallelTarget : public InterventionTarget {
 public:
  /// Clones `primary` into `parallelism` replicas backed by `parallelism`
  /// pool workers, dispatched per `scheduler` (default: latency-aware work
  /// stealing). `primary` is borrowed (it must outlive the ParallelTarget)
  /// and is never run again -- it only contributes its executions() history
  /// (the observation phase) to this target's accounting. Requires
  /// parallelism >= 1; parallelism == 1 is a valid degenerate pool whose
  /// results equal the primary's by the ReplicableTarget contract.
  /// `telemetry` (nullable, non-owning; must outlive the target) is handed
  /// to the ChunkScheduler for chunk spans and replica metrics.
  static Result<std::unique_ptr<ParallelTarget>> Create(
      const ReplicableTarget* primary, int parallelism,
      SchedulerOptions scheduler = {}, Telemetry* telemetry = nullptr);

  /// Chunks `trials` across the replicas (contiguous trial ranges, logs
  /// assembled in trial order).
  Result<TargetRunResult> RunIntervened(
      const std::vector<PredicateId>& intervened, int trials) override;

  /// Chunks the spans' trials out across the replicas; results come back in
  /// span order.
  Result<std::vector<TargetRunResult>> RunInterventionsBatch(
      const InterventionSpans& spans, int trials) override;

  /// Primary executions (observation) + every replica's executions.
  uint64_t executions() const override;

  /// Primary health + every replica's health (nonzero only over process-
  /// isolated or remote replicas, src/proc/ and src/net/). Same quiescence
  /// argument as executions().
  TargetHealth health() const override;

  /// Cumulative scheduler counters: per-replica trials, steals, fail-fast
  /// cancellations, straggler wait (see DispatchStats).
  DispatchStats dispatch_stats() const override {
    return scheduler_.stats();
  }

  int parallelism() const { return static_cast<int>(replicas_.size()); }

  const SchedulerOptions& scheduler_options() const {
    return scheduler_.options();
  }

  /// Latency estimate for one replica slot, us/trial (0: no sample yet,
  /// or `replica` outside [0, parallelism())).
  uint64_t replica_ewma_micros(int replica) const {
    if (replica < 0) return 0;
    return scheduler_.ewma_micros(static_cast<size_t>(replica));
  }

 private:
  ParallelTarget(const ReplicableTarget* primary,
                 std::vector<std::unique_ptr<ReplicableTarget>> replicas,
                 SchedulerOptions scheduler, Telemetry* telemetry);

  /// The one dispatch path: chunks `spans` x `trials` starting at the trial
  /// cursor, runs the round, and commits the cursor ONLY on success (a
  /// failed round leaves the cursor untouched, like serial dispatch that
  /// stopped at its first error).
  Result<std::vector<TargetRunResult>> Dispatch(const InterventionSpans& spans,
                                                int trials);

  const ReplicableTarget* primary_;
  std::vector<std::unique_ptr<ReplicableTarget>> replicas_;
  /// Borrowed views of replicas_, in slot order, for the scheduler.
  std::vector<ReplicableTarget*> replica_ptrs_;

  ChunkScheduler scheduler_;

  /// Declared after the replicas and scheduler state: the pool's destructor
  /// drains still-queued tasks, which touch both, so it must run first.
  ThreadPool pool_;

  /// Global intervened-trial cursor: the trial index serial dispatch would
  /// be at (starts at the primary's position, advances by the trials
  /// dispatched here on success). Only touched on the driving thread.
  uint64_t trial_cursor_ = 0;
};

}  // namespace aid

#endif  // AID_EXEC_PARALLEL_TARGET_H_
