#include "exec/parallel_target.h"

#include <utility>

namespace aid {

Status ValidateParallelism(int parallelism) {
  if (parallelism < 1) {
    return Status::InvalidArgument(
        "parallelism must be >= 1 (1 = serial dispatch), got " +
        std::to_string(parallelism));
  }
  if (parallelism > kMaxParallelism) {
    return Status::InvalidArgument(
        "parallelism must be <= " + std::to_string(kMaxParallelism) +
        " (each worker is a full target replica), got " +
        std::to_string(parallelism));
  }
  return Status::OK();
}

Result<std::unique_ptr<ParallelTarget>> ParallelTarget::Create(
    const ReplicableTarget* primary, int parallelism,
    SchedulerOptions scheduler, Telemetry* telemetry) {
  if (primary == nullptr) {
    return Status::InvalidArgument("ParallelTarget: primary must not be null");
  }
  AID_RETURN_IF_ERROR(ValidateParallelism(parallelism));
  AID_RETURN_IF_ERROR(ValidateSchedulerOptions(scheduler));
  std::vector<std::unique_ptr<ReplicableTarget>> replicas;
  replicas.reserve(static_cast<size_t>(parallelism));
  for (int i = 0; i < parallelism; ++i) {
    AID_ASSIGN_OR_RETURN(std::unique_ptr<ReplicableTarget> replica,
                         primary->Clone());
    replicas.push_back(std::move(replica));
  }
  return std::unique_ptr<ParallelTarget>(new ParallelTarget(
      primary, std::move(replicas), scheduler, telemetry));
}

ParallelTarget::ParallelTarget(
    const ReplicableTarget* primary,
    std::vector<std::unique_ptr<ReplicableTarget>> replicas,
    SchedulerOptions scheduler, Telemetry* telemetry)
    : primary_(primary),
      replicas_(std::move(replicas)),
      scheduler_(scheduler, replicas_.size(), telemetry),
      pool_(static_cast<int>(replicas_.size())),
      // Continue exactly where the primary's serial execution left off.
      trial_cursor_(primary->trial_position()) {
  replica_ptrs_.reserve(replicas_.size());
  for (auto& replica : replicas_) replica_ptrs_.push_back(replica.get());
}

Result<std::vector<TargetRunResult>> ParallelTarget::Dispatch(
    const InterventionSpans& spans, int trials) {
  const uint64_t base = trial_cursor_;
  const std::vector<ChunkScheduler::Chunk> chunks =
      scheduler_.MakeChunks(spans, trials, base);
  std::vector<TargetRunResult> results(spans.size());
  for (TargetRunResult& result : results) {
    result.logs.resize(static_cast<size_t>(trials));
  }
  AID_RETURN_IF_ERROR(
      scheduler_.RunRound(pool_, replica_ptrs_, chunks, &results));
  // Commit only on success: a failed round leaves the cursor where serial
  // dispatch -- which stops at its first error -- left it, so accounting
  // and positions cannot drift apart on error paths.
  trial_cursor_ = base + static_cast<uint64_t>(spans.size()) *
                             static_cast<uint64_t>(trials);
  return results;
}

Result<TargetRunResult> ParallelTarget::RunIntervened(
    const std::vector<PredicateId>& intervened, int trials) {
  if (trials < 1) trials = 1;
  const InterventionSpans spans{intervened};
  AID_ASSIGN_OR_RETURN(std::vector<TargetRunResult> results,
                       Dispatch(spans, trials));
  return std::move(results.front());
}

Result<std::vector<TargetRunResult>> ParallelTarget::RunInterventionsBatch(
    const InterventionSpans& spans, int trials) {
  if (trials < 1) trials = 1;
  if (spans.empty()) return std::vector<TargetRunResult>{};
  return Dispatch(spans, trials);
}

uint64_t ParallelTarget::executions() const {
  // Safe to read without synchronization: every dispatch entry point joins
  // its futures before returning, so replica counters are quiescent (and
  // ordered by the futures' happens-before edges) whenever callers can
  // observe this target.
  uint64_t total = primary_->executions();
  for (const auto& replica : replicas_) total += replica->executions();
  return total;
}

TargetHealth ParallelTarget::health() const {
  TargetHealth total = primary_->health();
  for (const auto& replica : replicas_) total += replica->health();
  return total;
}

}  // namespace aid
