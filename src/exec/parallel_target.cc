#include "exec/parallel_target.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace aid {

Status ValidateParallelism(int parallelism) {
  if (parallelism < 1) {
    return Status::InvalidArgument(
        "parallelism must be >= 1 (1 = serial dispatch), got " +
        std::to_string(parallelism));
  }
  if (parallelism > kMaxParallelism) {
    return Status::InvalidArgument(
        "parallelism must be <= " + std::to_string(kMaxParallelism) +
        " (each worker is a full target replica), got " +
        std::to_string(parallelism));
  }
  return Status::OK();
}

Result<std::unique_ptr<ParallelTarget>> ParallelTarget::Create(
    const ReplicableTarget* primary, int parallelism) {
  if (primary == nullptr) {
    return Status::InvalidArgument("ParallelTarget: primary must not be null");
  }
  AID_RETURN_IF_ERROR(ValidateParallelism(parallelism));
  std::vector<std::unique_ptr<ReplicableTarget>> replicas;
  replicas.reserve(static_cast<size_t>(parallelism));
  for (int i = 0; i < parallelism; ++i) {
    AID_ASSIGN_OR_RETURN(std::unique_ptr<ReplicableTarget> replica,
                         primary->Clone());
    replicas.push_back(std::move(replica));
  }
  return std::unique_ptr<ParallelTarget>(
      new ParallelTarget(primary, std::move(replicas)));
}

ParallelTarget::ParallelTarget(
    const ReplicableTarget* primary,
    std::vector<std::unique_ptr<ReplicableTarget>> replicas)
    : primary_(primary),
      replicas_(std::move(replicas)),
      pool_(static_cast<int>(replicas_.size())),
      // Continue exactly where the primary's serial execution left off.
      trial_cursor_(primary->trial_position()) {
  free_.reserve(replicas_.size());
  for (auto& replica : replicas_) free_.push_back(replica.get());
}

namespace {
/// Joins one worker future, converting a (never expected) task exception
/// into a Status instead of letting it escape mid-join: every entry point
/// must join ALL futures before returning, or queued tasks would outlive
/// the caller-owned spans they reference.
Result<TargetRunResult> JoinTask(std::future<Result<TargetRunResult>>& future) {
  try {
    return future.get();
  } catch (const std::exception& e) {
    return Status::Internal(std::string("worker task threw: ") + e.what());
  } catch (...) {
    return Status::Internal("worker task threw a non-std exception");
  }
}
}  // namespace

ReplicableTarget* ParallelTarget::Lease() {
  std::unique_lock<std::mutex> lock(lease_mu_);
  lease_cv_.wait(lock, [this]() { return !free_.empty(); });
  ReplicableTarget* replica = free_.back();
  free_.pop_back();
  return replica;
}

void ParallelTarget::Return(ReplicableTarget* replica) {
  {
    std::lock_guard<std::mutex> lock(lease_mu_);
    free_.push_back(replica);
  }
  lease_cv_.notify_one();
}

Result<TargetRunResult> ParallelTarget::RunIntervened(
    const std::vector<PredicateId>& intervened, int trials) {
  if (trials < 1) trials = 1;
  const uint64_t base = trial_cursor_;
  trial_cursor_ += static_cast<uint64_t>(trials);

  const int shards = std::min<int>(parallelism(), trials);
  if (shards == 1) {
    ReplicableTarget* replica = Lease();
    replica->SeekTrial(base);
    Result<TargetRunResult> result = replica->RunIntervened(intervened, trials);
    Return(replica);
    return result;
  }

  // Contiguous trial ranges: shard i runs trials [offset_i, offset_i + n_i);
  // concatenating the shard logs in shard order reproduces the serial log
  // order exactly.
  std::vector<std::future<Result<TargetRunResult>>> futures;
  futures.reserve(static_cast<size_t>(shards));
  uint64_t offset = base;
  for (int i = 0; i < shards; ++i) {
    const int n = trials / shards + (i < trials % shards ? 1 : 0);
    const uint64_t shard_offset = offset;
    offset += static_cast<uint64_t>(n);
    futures.push_back(pool_.Submit([this, &intervened, shard_offset, n]() {
      ReplicableTarget* replica = Lease();
      replica->SeekTrial(shard_offset);
      Result<TargetRunResult> result = replica->RunIntervened(intervened, n);
      Return(replica);
      return result;
    }));
  }

  TargetRunResult merged;
  merged.logs.reserve(static_cast<size_t>(trials));
  Status first_error = Status::OK();
  for (auto& future : futures) {
    Result<TargetRunResult> shard = JoinTask(future);
    if (!shard.ok()) {
      if (first_error.ok()) first_error = shard.status();
      continue;
    }
    for (auto& log : shard->logs) merged.logs.push_back(std::move(log));
  }
  if (!first_error.ok()) return first_error;
  return merged;
}

Result<std::vector<TargetRunResult>> ParallelTarget::RunInterventionsBatch(
    const InterventionSpans& spans, int trials) {
  if (trials < 1) trials = 1;
  if (spans.empty()) return std::vector<TargetRunResult>{};
  const uint64_t base = trial_cursor_;
  trial_cursor_ += static_cast<uint64_t>(spans.size()) *
                   static_cast<uint64_t>(trials);

  // One task per span. Span k runs at the trial positions serial dispatch
  // would have given it (base + k * trials), on whichever replica is free.
  std::vector<std::future<Result<TargetRunResult>>> futures;
  futures.reserve(spans.size());
  for (size_t k = 0; k < spans.size(); ++k) {
    const uint64_t span_offset = base + static_cast<uint64_t>(k) *
                                            static_cast<uint64_t>(trials);
    const std::vector<PredicateId>* span = &spans[k];
    futures.push_back(pool_.Submit([this, span, span_offset, trials]() {
      ReplicableTarget* replica = Lease();
      replica->SeekTrial(span_offset);
      Result<TargetRunResult> result = replica->RunIntervened(*span, trials);
      Return(replica);
      return result;
    }));
  }

  std::vector<TargetRunResult> results;
  results.reserve(spans.size());
  Status first_error = Status::OK();
  for (auto& future : futures) {
    Result<TargetRunResult> result = JoinTask(future);
    if (!result.ok()) {
      if (first_error.ok()) first_error = result.status();
      results.emplace_back();
      continue;
    }
    results.push_back(std::move(result).value());
  }
  if (!first_error.ok()) return first_error;
  return results;
}

int ParallelTarget::executions() const {
  // Safe to read without synchronization: every dispatch entry point joins
  // its futures before returning, so replica counters are quiescent (and
  // ordered by the futures' happens-before edges) whenever callers can
  // observe this target.
  int total = primary_->executions();
  for (const auto& replica : replicas_) total += replica->executions();
  return total;
}

TargetHealth ParallelTarget::health() const {
  TargetHealth total = primary_->health();
  for (const auto& replica : replicas_) total += replica->health();
  return total;
}

}  // namespace aid
