// ChunkScheduler: latency-aware work-stealing dispatch of intervention
// rounds over a replica pool.
//
// The paper's cost model (Sections 2 and 7) is wall-clock per intervention
// round, and a round is only as fast as its slowest replica. Fixed
// contiguous sharding (PR 2's dispatcher) hands every replica an equal
// slice up front, so one slow replica -- a loaded machine in a remote
// fleet, a throttled subprocess -- stalls the whole round at the
// straggler's pace. This scheduler replaces the fixed split with:
//
//   * CHUNKS: each span's trials are cut into fine-grained chunks (a chunk
//     is a run of consecutive trials of one span, carrying its absolute
//     trial positions and result slots);
//   * QUEUES: chunks are dealt onto per-replica deques, contiguous in
//     serial order, sized proportional to each replica's measured speed;
//   * STEALING: a worker whose own deque drains steals from the back of
//     the deque predicted to finish last (queued trials x that replica's
//     latency estimate), so fast replicas drain the queues stalled behind
//     stragglers. A steal only happens when it is PROFITABLE -- the
//     thief's predicted time for the chunk beats the victim's predicted
//     queue drain -- so the straggler itself never "helps" by dragging
//     chunks from fast queues back to its own pace;
//   * EWMA: per-replica trial latency is tracked as an exponentially
//     weighted moving average, fed by the substrate's own wire-level
//     timing where it exists (TargetHealth::trial_micros, src/proc/ and
//     src/net/) and by call-site wall clock otherwise.
//
// None of this can change a single byte of the results: chunks carry
// absolute trial indices and replicas derive all per-trial nondeterminism
// positionally (ReplicableTarget::SeekTrial), and every chunk writes its
// logs into pre-assigned slots of the round's result vector. Worker count,
// chunk boundaries, replica speeds, and the steal schedule only decide
// WHERE and WHEN a trial runs -- reports stay bit-identical to serial
// dispatch (SameDiscoveryOutcome) under any schedule.
//
// Error paths are fail-fast: the first chunk error cancels every chunk not
// yet leased by a worker (they never execute, never count), and the round
// returns the failing chunk's error -- the earliest in serial order among
// the failures actually observed. Chunks already leased (in flight) when
// the failure lands still complete and count; exact serial error
// accounting is unattainable under concurrency, but no QUEUED work is
// silently performed and billed past a failure.

#ifndef AID_EXEC_SCHEDULER_H_
#define AID_EXEC_SCHEDULER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/target.h"
#include "exec/replicable.h"
#include "exec/thread_pool.h"

namespace aid {

class Telemetry;  // telemetry/telemetry.h; nullable everywhere below

/// How a replica pool spreads a round's chunks over its replicas.
enum class SchedulerPolicy : uint8_t {
  /// Fixed contiguous sharding: every replica gets an equal contiguous
  /// share up front and keeps it. The pre-work-stealing dispatcher, kept as
  /// the bench baseline and for substrates with perfectly uniform latency.
  kStatic = 0,
  /// Latency-aware work stealing (the default; see file comment).
  kWorkStealing = 1,
};

std::string_view SchedulerPolicyName(SchedulerPolicy policy);

struct SchedulerOptions {
  SchedulerPolicy policy = SchedulerPolicy::kWorkStealing;

  /// Chunk granularity: a round targets about `chunks_per_worker` chunks
  /// per pool worker, so a straggler strands at most ~1/chunks_per_worker
  /// of its share when the others come stealing. More chunks = finer load
  /// balancing, more SeekTrial/dispatch overhead.
  int chunks_per_worker = 4;

  /// Floor on trials per chunk: below this, splitting costs more in
  /// dispatch overhead than it wins in balance. Chunks never span two
  /// intervention spans regardless of this value.
  int min_chunk_trials = 1;

  /// EWMA smoothing factor in (0, 1]: weight of the newest latency sample.
  /// 1 = latest sample only; smaller values smooth over transient spikes.
  double ewma_alpha = 0.25;
};

/// OK iff the options are in range (chunks_per_worker >= 1,
/// min_chunk_trials >= 1, 0 < ewma_alpha <= 1), with a message naming the
/// offending knob. The shared gate for every scheduler surface
/// (SessionBuilder::WithScheduler, TargetConfig, ParallelTarget::Create).
Status ValidateSchedulerOptions(const SchedulerOptions& options);

/// The scheduling core behind exec::ParallelTarget: owns the per-replica
/// latency estimates and cumulative dispatch counters (which persist across
/// rounds) and executes one round of chunks at a time over a ThreadPool.
///
/// Thread model: RunRound is called from the pool's driving thread only and
/// joins every worker before returning; the accessors are safe on the
/// driving thread whenever RunRound is not in flight (the same quiescence
/// argument as ParallelTarget::executions()).
class ChunkScheduler {
 public:
  /// One unit of schedulable work: `trials` consecutive trials of one span
  /// at absolute positions [first_trial, first_trial + trials), whose logs
  /// land in results[result_index].logs[log_offset ...]. The span pointer
  /// is borrowed and must outlive the round.
  struct Chunk {
    const std::vector<PredicateId>* span = nullptr;
    uint64_t first_trial = 0;
    int trials = 0;
    size_t result_index = 0;
    size_t log_offset = 0;
  };

  /// `telemetry` (nullable, non-owning) makes the scheduler first-class
  /// observable: each chunk opens a "chunk" span parented under the
  /// engine's active round span and feeds the aid_chunk_latency_us
  /// histogram, EWMAs surface as aid_replica_ewma_micros gauges, and
  /// cumulative steals as aid_replica_steals gauges -- all labeled by
  /// replica slot. Null = zero overhead.
  ChunkScheduler(SchedulerOptions options, size_t replica_count,
                 Telemetry* telemetry = nullptr);

  /// Cuts `spans` x `trials` into chunks in serial order, starting at
  /// absolute trial index `base` (span k's trials sit at base + k * trials,
  /// exactly the positions serial dispatch would use).
  std::vector<Chunk> MakeChunks(const InterventionSpans& spans, int trials,
                                uint64_t base) const;

  /// Executes `chunks` on `replicas` through `pool` (one worker per
  /// replica; a worker only ever touches its own replica), writing each
  /// chunk's logs into `*results`, whose TargetRunResult entries the caller
  /// has pre-sized (logs.resize) to receive them. On any chunk error the
  /// round fails fast: chunks not yet leased are cancelled unexecuted and
  /// the earliest failing chunk's (in serial order, among observed
  /// failures) error is returned.
  Status RunRound(ThreadPool& pool,
                  const std::vector<ReplicableTarget*>& replicas,
                  const std::vector<Chunk>& chunks,
                  std::vector<TargetRunResult>* results);

  /// Cumulative counters across every round so far (see DispatchStats).
  DispatchStats stats() const;

  /// Current latency estimate for one replica slot, microseconds per
  /// trial; 0 before the first sample or for an out-of-range slot.
  uint64_t ewma_micros(size_t replica) const {
    if (replica >= ewma_micros_.size()) return 0;
    return ewma_micros_[replica].load(std::memory_order_relaxed);
  }

  const SchedulerOptions& options() const { return options_; }

 private:
  /// Initial deal: contiguous runs of `chunks`, sized evenly (kStatic or no
  /// latency data yet) or proportional to measured replica speed
  /// (kWorkStealing), onto per-replica queues.
  std::vector<std::deque<size_t>> AssignChunks(
      const std::vector<Chunk>& chunks) const;

  /// Folds one latency sample (microseconds over `trials` trials) into a
  /// replica's EWMA.
  void RecordLatency(size_t replica, uint64_t micros, int trials);

  /// The slot with the lowest measured EWMA (slot 0 when nothing is
  /// measured yet, in which case its ewma reads 0). The shared notion of
  /// "fastest" behind the initial deal's weights, the steal profitability
  /// guard's unmeasured-victim optimism, and the single-chunk fast path.
  size_t FastestSlot() const;

  SchedulerOptions options_;

  /// Runs one chunk on `replicas[slot]`, records the latency sample and
  /// the slot counters, and writes the logs into their pre-assigned slots
  /// of `*results`. Shared by the pool workers and the single-chunk
  /// inline fast path.
  Status ExecuteChunk(size_t slot, const Chunk& chunk,
                      const std::vector<ReplicableTarget*>& replicas,
                      std::vector<TargetRunResult>* results, bool stolen);

  /// Per-replica latency estimate, us/trial. Atomic because victim
  /// selection reads other replicas' estimates while their workers update
  /// them; everything else about a slot is touched only by its own worker
  /// (during a round) or the driving thread (between rounds).
  std::vector<std::atomic<uint64_t>> ewma_micros_;

  /// Cumulative per-slot counters, written by slot workers during a round
  /// and read by the driving thread after the join (ordered by the future
  /// joins; no locking needed).
  std::vector<uint64_t> trials_run_;
  std::vector<uint64_t> chunks_run_;
  std::vector<uint64_t> steals_by_;

  /// Round-level cumulative counters, updated on the driving thread.
  uint64_t cancelled_chunks_ = 0;
  uint64_t straggler_wait_micros_ = 0;

  Telemetry* telemetry_ = nullptr;  ///< nullable; see constructor
};

}  // namespace aid

#endif  // AID_EXEC_SCHEDULER_H_
