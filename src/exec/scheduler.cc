#include "exec/scheduler.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <mutex>
#include <string>
#include <utility>

#include "common/math_util.h"
#include "telemetry/telemetry.h"

namespace aid {

namespace {
using Clock = std::chrono::steady_clock;

uint64_t MicrosSince(Clock::time_point start) {
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                           Clock::now() - start)
                           .count();
  return elapsed > 0 ? static_cast<uint64_t>(elapsed) : 0;
}
}  // namespace

std::string_view SchedulerPolicyName(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kStatic: return "static";
    case SchedulerPolicy::kWorkStealing: return "work-stealing";
  }
  return "unknown";
}

Status ValidateSchedulerOptions(const SchedulerOptions& options) {
  if (options.chunks_per_worker < 1) {
    return Status::InvalidArgument(
        "scheduler: chunks_per_worker must be >= 1, got " +
        std::to_string(options.chunks_per_worker));
  }
  if (options.min_chunk_trials < 1) {
    return Status::InvalidArgument(
        "scheduler: min_chunk_trials must be >= 1, got " +
        std::to_string(options.min_chunk_trials));
  }
  if (!(options.ewma_alpha > 0.0) || options.ewma_alpha > 1.0) {
    return Status::InvalidArgument(
        "scheduler: ewma_alpha must be in (0, 1], got " +
        std::to_string(options.ewma_alpha));
  }
  return Status::OK();
}

ChunkScheduler::ChunkScheduler(SchedulerOptions options, size_t replica_count,
                               Telemetry* telemetry)
    : options_(options),
      ewma_micros_(replica_count),
      trials_run_(replica_count, 0),
      chunks_run_(replica_count, 0),
      steals_by_(replica_count, 0),
      telemetry_(telemetry) {}

std::vector<ChunkScheduler::Chunk> ChunkScheduler::MakeChunks(
    const InterventionSpans& spans, int trials, uint64_t base) const {
  std::vector<Chunk> chunks;
  if (spans.empty() || trials < 1) return chunks;
  const uint64_t total =
      static_cast<uint64_t>(spans.size()) * static_cast<uint64_t>(trials);
  // Static sharding cuts one contiguous share per worker (the fixed split
  // of the old dispatcher); work stealing cuts chunks_per_worker times
  // finer so a straggler strands only its current chunk.
  const uint64_t target_chunks =
      ewma_micros_.size() *
      (options_.policy == SchedulerPolicy::kStatic
           ? 1
           : static_cast<uint64_t>(options_.chunks_per_worker));
  uint64_t chunk_trials = (total + target_chunks - 1) / target_chunks;
  chunk_trials = std::max<uint64_t>(
      chunk_trials, static_cast<uint64_t>(options_.min_chunk_trials));
  for (size_t k = 0; k < spans.size(); ++k) {
    // Span k's trials sit at base + k * trials (the serial positions); a
    // chunk never crosses a span boundary (different intervened sets).
    const uint64_t span_base =
        base + static_cast<uint64_t>(k) * static_cast<uint64_t>(trials);
    int done = 0;
    while (done < trials) {
      Chunk chunk;
      chunk.span = &spans[k];
      chunk.first_trial = span_base + static_cast<uint64_t>(done);
      chunk.trials = static_cast<int>(
          std::min<uint64_t>(chunk_trials,
                             static_cast<uint64_t>(trials - done)));
      chunk.result_index = k;
      chunk.log_offset = static_cast<size_t>(done);
      chunks.push_back(chunk);
      done += chunk.trials;
    }
  }
  return chunks;
}

std::vector<std::deque<size_t>> ChunkScheduler::AssignChunks(
    const std::vector<Chunk>& chunks) const {
  const size_t workers = ewma_micros_.size();
  std::vector<std::deque<size_t>> queues(workers);

  // Relative speeds: weight = fastest_ewma / ewma, so a 10x-slower replica
  // gets ~1/10 the initial deal and the others need not steal it back
  // later. Unmeasured replicas are treated as fast (they deserve work until
  // proven slow); with no measurements at all -- or under the static
  // policy -- the deal is even.
  std::vector<double> weight(workers, 1.0);
  if (options_.policy == SchedulerPolicy::kWorkStealing) {
    const uint64_t fastest = ewma_micros(FastestSlot());
    if (fastest > 0) {
      for (size_t i = 0; i < workers; ++i) {
        const uint64_t e = ewma_micros(i);
        if (e > 0) weight[i] = static_cast<double>(fastest) / e;
      }
    }
  }

  uint64_t total_trials = 0;
  for (const Chunk& chunk : chunks) {
    total_trials += static_cast<uint64_t>(chunk.trials);
  }
  double total_weight = 0;
  for (double w : weight) total_weight += w;

  // Contiguous deal in serial order: replica i's cumulative quota is the
  // weighted prefix share of the round's trials. The last replica takes
  // whatever rounding left over.
  size_t next = 0;
  uint64_t dealt = 0;
  double cumulative_weight = 0;
  for (size_t i = 0; i < workers && next < chunks.size(); ++i) {
    cumulative_weight += weight[i];
    const uint64_t quota =
        i + 1 == workers
            ? total_trials
            : static_cast<uint64_t>(std::llround(
                  static_cast<double>(total_trials) *
                  (cumulative_weight / total_weight)));
    while (next < chunks.size() && dealt < quota) {
      queues[i].push_back(next);
      dealt += static_cast<uint64_t>(chunks[next].trials);
      ++next;
    }
  }
  return queues;
}

void ChunkScheduler::RecordLatency(size_t replica, uint64_t micros,
                                   int trials) {
  if (trials < 1) return;
  const double sample =
      static_cast<double>(micros) / static_cast<double>(trials);
  const uint64_t old = ewma_micros_[replica].load(std::memory_order_relaxed);
  const double next =
      FoldEwma(static_cast<double>(old), sample, options_.ewma_alpha);
  const uint64_t folded = static_cast<uint64_t>(next + 0.5);
  ewma_micros_[replica].store(folded, std::memory_order_relaxed);
  if (telemetry_ != nullptr) {
    telemetry_->metrics()
        .GetGauge("aid_replica_ewma_micros",
                  {{"replica", std::to_string(replica)}})
        ->Set(folded);
  }
}

size_t ChunkScheduler::FastestSlot() const {
  size_t fastest = 0;
  uint64_t best = 0;
  for (size_t i = 0; i < ewma_micros_.size(); ++i) {
    const uint64_t e = ewma_micros(i);
    if (e > 0 && (best == 0 || e < best)) {
      best = e;
      fastest = i;
    }
  }
  return fastest;
}

Status ChunkScheduler::ExecuteChunk(
    size_t slot, const Chunk& chunk,
    const std::vector<ReplicableTarget*>& replicas,
    std::vector<TargetRunResult>* results, bool stolen) {
  ReplicableTarget* replica = replicas[slot];
  // Latency sample: prefer the substrate's own wire-level timing
  // (TargetHealth::trial_micros, accumulated in proc/client for process-
  // and socket-backed replicas), fall back to call-site wall clock for
  // in-process replicas that do not self-time.
  const TargetHealth health_before = replica->health();
  // The chunk span parents under the engine's active round span (published
  // cross-thread on the Telemetry bundle): this worker's slice of the round
  // in the trace, on its own lane.
  ScopedSpan chunk_span;
  if (telemetry_ != nullptr && telemetry_->tracer() != nullptr) {
    chunk_span = ScopedSpan(telemetry_->tracer(), "chunk",
                            telemetry_->active_parent());
  }
  const Clock::time_point start = Clock::now();
  replica->SeekTrial(chunk.first_trial);
  Result<TargetRunResult> result =
      replica->RunIntervened(*chunk.span, chunk.trials);
  const uint64_t wall = MicrosSince(start);
  chunk_span.End();
  if (telemetry_ != nullptr && wall > 0) {
    telemetry_
        ->LatencyHistogram("aid_chunk_latency_us",
                           {{"replica", std::to_string(slot)}})
        ->Record(wall);
  }
  const TargetHealth health_after = replica->health();
  const uint64_t substrate =
      health_after.trial_micros - health_before.trial_micros;
  // Chunks that hit subject turbulence are excluded from the EWMA (same
  // rule as the fleet's LatencyBoard): their time is deadline waits plus
  // respawn/reconnect recovery, and crashes follow trial POSITIONS, not
  // replicas -- folding one in would brand a healthy replica a straggler
  // for rounds.
  const bool turbulent =
      health_after.crashed_trials != health_before.crashed_trials ||
      health_after.timed_out_trials != health_before.timed_out_trials;
  if (!turbulent) {
    RecordLatency(slot, substrate > 0 ? substrate : wall, chunk.trials);
  }

  if (result.ok() && result->logs.size() != static_cast<size_t>(chunk.trials)) {
    result = Status::Internal(
        "scheduler: replica returned " + std::to_string(result->logs.size()) +
        " logs for a " + std::to_string(chunk.trials) + "-trial chunk");
  }
  if (!result.ok()) return result.status();

  // Disjoint pre-sized slots: no two chunks share a log index, so the
  // writes need no lock and arrive in serial order by construction.
  TargetRunResult& out = (*results)[chunk.result_index];
  for (int t = 0; t < chunk.trials; ++t) {
    out.logs[chunk.log_offset + static_cast<size_t>(t)] =
        std::move(result->logs[static_cast<size_t>(t)]);
  }
  trials_run_[slot] += static_cast<uint64_t>(chunk.trials);
  ++chunks_run_[slot];
  if (stolen) ++steals_by_[slot];
  return Status::OK();
}

Status ChunkScheduler::RunRound(ThreadPool& pool,
                                const std::vector<ReplicableTarget*>& replicas,
                                const std::vector<Chunk>& chunks,
                                std::vector<TargetRunResult>* results) {
  if (chunks.empty()) return Status::OK();
  const size_t workers = replicas.size();

  if (chunks.size() == 1) {
    // Single-chunk rounds (serial-ish workloads, tiny trial counts) skip
    // the pool entirely: no task submissions, no futures, no idle-worker
    // wakeups. The chunk runs inline on the driving thread, on the
    // fastest-measured replica so a known straggler never hosts it.
    return ExecuteChunk(FastestSlot(), chunks.front(), replicas, results,
                        /*stolen=*/false);
  }

  struct RoundState {
    std::mutex mu;
    std::vector<std::deque<size_t>> queues;
    std::vector<uint64_t> queued_trials;
    bool failed = false;
    size_t error_chunk = SIZE_MAX;
    Status error = Status::OK();
    uint64_t cancelled = 0;
  } state;
  state.queues = AssignChunks(chunks);
  state.queued_trials.assign(workers, 0);
  for (size_t i = 0; i < workers; ++i) {
    for (size_t idx : state.queues[i]) {
      state.queued_trials[i] += static_cast<uint64_t>(chunks[idx].trials);
    }
  }

  // Per-slot round bookkeeping. Workers write only their own slot; the
  // driving thread reads after the joins below (which order the accesses),
  // so no locking -- but no vector<bool> either (its packed bits would
  // make neighboring slots race).
  std::vector<Clock::time_point> finish(workers);
  std::vector<char> active(workers, 0);

  auto run_worker = [&](size_t slot) {
    for (;;) {
      size_t chunk_idx = SIZE_MAX;
      bool stolen = false;
      {
        std::lock_guard<std::mutex> lock(state.mu);
        if (state.failed) break;
        if (!state.queues[slot].empty()) {
          chunk_idx = state.queues[slot].front();
          state.queues[slot].pop_front();
          state.queued_trials[slot] -=
              static_cast<uint64_t>(chunks[chunk_idx].trials);
        } else if (options_.policy == SchedulerPolicy::kWorkStealing) {
          // Steal from the queue predicted to finish last: remaining
          // trials weighted by that replica's latency estimate (no
          // estimate -> the thief's own speed). Taken from the back, the
          // serial tail of the victim's contiguous deal.
          //
          // A steal must also be PROFITABLE: running the chunk here
          // (chunk trials x own latency) has to beat leaving it queued
          // behind the victim (queued trials x victim latency). Without
          // this guard the straggler itself "helps" by stealing chunks
          // off fast replicas' queues -- and drags the round back to its
          // own pace, the exact disease this scheduler treats.
          const uint64_t own = ewma_micros(slot);
          const uint64_t fastest = ewma_micros(FastestSlot());
          size_t victim = SIZE_MAX;
          double worst = 0;
          for (size_t j = 0; j < workers; ++j) {
            if (state.queues[j].empty()) continue;
            const uint64_t e = ewma_micros(j);
            // Unmeasured replicas are assumed to run at the fastest
            // measured speed -- the same optimism the initial deal uses.
            // Assuming "as slow as the thief" instead lets a measured-slow
            // thief see a tie against a replica that simply has not run
            // yet, steal its chunk, keep it unmeasured, and repeat the
            // theft every round.
            const double victim_ewma = static_cast<double>(
                e > 0 ? e : (fastest > 0 ? fastest : 1));
            const double predicted =
                static_cast<double>(state.queued_trials[j]) * victim_ewma;
            if (own > 0) {
              const size_t tail = state.queues[j].back();
              const double cost_here =
                  static_cast<double>(chunks[tail].trials) *
                  static_cast<double>(own);
              if (cost_here > predicted) continue;  // unprofitable steal
            }
            if (victim == SIZE_MAX || predicted > worst) {
              victim = j;
              worst = predicted;
            }
          }
          if (victim == SIZE_MAX) break;  // drained, or no profitable steal
          chunk_idx = state.queues[victim].back();
          state.queues[victim].pop_back();
          state.queued_trials[victim] -=
              static_cast<uint64_t>(chunks[chunk_idx].trials);
          stolen = true;
        } else {
          break;  // static policy: own share done, never steal
        }
      }

      const Status executed =
          ExecuteChunk(slot, chunks[chunk_idx], replicas, results, stolen);
      if (!executed.ok()) {
        std::lock_guard<std::mutex> lock(state.mu);
        // Keep the failure earliest in serial order among those observed
        // (racing chunks may fail in any arrival order), and cancel every
        // chunk no worker has leased yet: serial dispatch would not have
        // run -- or billed -- work past its first failure.
        if (!state.failed || chunk_idx < state.error_chunk) {
          state.error = executed;
          state.error_chunk = chunk_idx;
        }
        if (!state.failed) {
          state.failed = true;
          for (std::deque<size_t>& queue : state.queues) {
            state.cancelled += queue.size();
            queue.clear();
          }
          std::fill(state.queued_trials.begin(), state.queued_trials.end(),
                    0);
        }
        break;
      }
      active[slot] = 1;
    }
    finish[slot] = Clock::now();
  };

  std::vector<std::future<void>> futures;
  futures.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    futures.push_back(pool.Submit([&run_worker, i]() { run_worker(i); }));
  }
  // Every future joins before anything returns: queued tasks must never
  // outlive the caller-owned spans and results they reference. Exceptions
  // (never expected from run_worker) become a Status, not a mid-join leak.
  Status join_error = Status::OK();
  for (std::future<void>& future : futures) {
    try {
      future.get();
    } catch (const std::exception& e) {
      if (join_error.ok()) {
        join_error =
            Status::Internal(std::string("worker task threw: ") + e.what());
      }
    } catch (...) {
      if (join_error.ok()) {
        join_error = Status::Internal("worker task threw a non-std exception");
      }
    }
  }

  // Straggler accounting: among the workers that ran work this round, the
  // idle tail each spent parked behind the last finisher. (Workers that
  // never got a chunk -- single-chunk rounds -- were not "waiting".)
  Clock::time_point last{};
  for (size_t i = 0; i < workers; ++i) {
    if (active[i] && finish[i] > last) last = finish[i];
  }
  for (size_t i = 0; i < workers; ++i) {
    if (!active[i]) continue;
    straggler_wait_micros_ += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(last -
                                                              finish[i])
            .count());
  }
  cancelled_chunks_ += state.cancelled;
  if (telemetry_ != nullptr) {
    // Cumulative per-slot steal counts as gauges, refreshed at the round
    // barrier (the quiescent point where the per-slot counters are safe to
    // read on the driving thread).
    for (size_t i = 0; i < workers; ++i) {
      telemetry_->metrics()
          .GetGauge("aid_replica_steals", {{"replica", std::to_string(i)}})
          ->Set(steals_by_[i]);
    }
  }

  if (!join_error.ok()) return join_error;
  if (state.failed) return state.error;
  return Status::OK();
}

DispatchStats ChunkScheduler::stats() const {
  DispatchStats stats;
  stats.replica_trials = trials_run_;
  for (uint64_t steals : steals_by_) stats.steals += steals;
  stats.cancelled_chunks = cancelled_chunks_;
  stats.straggler_wait_micros = straggler_wait_micros_;
  return stats;
}

}  // namespace aid
