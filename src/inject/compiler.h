// InterventionCompiler: predicate -> fault-injection actions.
//
// Realizes the paper's Figure 2 (column 3) mapping. An intervention forces
// a predicate to the value it has in successful executions:
//
//   data race (M1, M2, X)  -> lock around the racing methods
//   M fails                -> wrap M in try/catch (return the successful
//                             value) -- safe only for side-effect-free M
//   M runs too fast        -> delay before M's return
//   M runs too slow        -> prematurely return the correct value, taking
//                             the successful duration -- side-effect-free only
//   M returns wrong value  -> force the correct return value -- s.e.f. only
//   order inversion (A, B) -> block A's entry until B has finished
//   return collision (A,B) -> force B to return a value distinct from A's
//   compound (P1 && P2)    -> both members' actions (falsifying either
//                             falsifies the conjunction; we falsify both)
//
// Safety (paper Section 3.3): return-value and exception interventions are
// restricted to methods declared side-effect-free; IsSafelyIntervenable
// reports whether a predicate admits a safe intervention, and the pipeline
// drops unsafe predicates before the AC-DAG is built.

#ifndef AID_INJECT_COMPILER_H_
#define AID_INJECT_COMPILER_H_

#include <vector>

#include "common/status.h"
#include "predicates/extractor.h"
#include "predicates/predicate.h"
#include "runtime/intervention.h"
#include "runtime/program.h"

namespace aid {

class InterventionCompiler {
 public:
  /// All pointers must outlive the compiler.
  InterventionCompiler(const Program* program, const PredicateCatalog* catalog,
                       const std::unordered_map<SymbolId, MethodBaseline>* baselines)
      : program_(program), catalog_(catalog), baselines_(baselines) {}

  /// Static validity check for an intervention point: OK iff `id` names an
  /// in-range predicate whose methods exist in the program and whose flip
  /// admits a safe VM action (paper Section 3.3). The diagnostic names the
  /// offending predicate/method, so un-flippable predicates are rejected
  /// up front instead of costing a wasted trial.
  Status Validate(PredicateId id) const;

  /// True iff `id` can be forced to its successful value without unsafe
  /// side effects (Validate(id).ok()). The failure predicate itself is
  /// never intervenable.
  bool IsSafelyIntervenable(PredicateId id) const {
    return Validate(id).ok();
  }

  /// VM actions that falsify `id`. Fails for unsafe or non-intervenable
  /// predicates.
  Result<std::vector<VmAction>> Compile(PredicateId id) const;

  /// Union plan over several predicates (one simultaneous group
  /// intervention, paper Section 5's group intervention).
  Result<InterventionPlan> CompilePlan(const std::vector<PredicateId>& ids) const;

 private:
  Status ValidateImpl(PredicateId id, int depth) const;

  const Program* program_;
  const PredicateCatalog* catalog_;
  const std::unordered_map<SymbolId, MethodBaseline>* baselines_;
};

}  // namespace aid

#endif  // AID_INJECT_COMPILER_H_
