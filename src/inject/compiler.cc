#include "inject/compiler.h"

#include "common/strings.h"

namespace aid {
namespace {

int64_t BaselineReturn(
    const std::unordered_map<SymbolId, MethodBaseline>* baselines,
    SymbolId method) {
  auto it = baselines->find(method);
  if (it == baselines->end()) return 0;
  return it->second.consistent_return.value_or(0);
}

}  // namespace

Status InterventionCompiler::Validate(PredicateId id) const {
  return ValidateImpl(id, 0);
}

Status InterventionCompiler::ValidateImpl(PredicateId id, int depth) const {
  if (depth > 16) {
    return Status::InvalidArgument(
        StrFormat("predicate %d: compound nesting too deep", id));
  }
  if (id < 0 || static_cast<size_t>(id) >= catalog_->size()) {
    return Status::InvalidArgument(
        StrFormat("predicate %d is outside the catalog", id));
  }
  const Predicate& p = catalog_->Get(id);
  auto check_method = [&](SymbolId m) -> Status {
    if (m < 0 || static_cast<size_t>(m) >= program_->methods().size()) {
      return Status::InvalidArgument(StrFormat(
          "predicate %d (%s) references method %d outside the program", id,
          std::string(PredKindName(p.kind)).c_str(), m));
    }
    return Status::OK();
  };
  auto side_effect_free = [&](SymbolId m) {
    return m >= 0 && static_cast<size_t>(m) < program_->methods().size() &&
           program_->method(m).side_effect_free;
  };
  switch (p.kind) {
    case PredKind::kDataRace:
    case PredKind::kAtomicityViolation:
    case PredKind::kOrder:
      // Timing/locking interventions occur naturally under the runtime and
      // are always safe (Section 3.3) -- both named methods must exist.
      AID_RETURN_IF_ERROR(check_method(p.m1));
      return check_method(p.m2);
    case PredKind::kTooFast:
      return check_method(p.m1);
    case PredKind::kMethodFails:
    case PredKind::kTooSlow:
    case PredKind::kWrongReturn:
      // These alter return values or swallow exceptions: the developer must
      // have declared the method side-effect-free.
      AID_RETURN_IF_ERROR(check_method(p.m1));
      if (!side_effect_free(p.m1)) {
        return Status::FailedPrecondition(StrFormat(
            "predicate %d (%s): method '%s' is not declared side-effect-free",
            id, std::string(PredKindName(p.kind)).c_str(),
            program_->method(p.m1).name.c_str()));
      }
      return Status::OK();
    case PredKind::kReturnEquals:
      AID_RETURN_IF_ERROR(check_method(p.m1));
      AID_RETURN_IF_ERROR(check_method(p.m2));
      if (!side_effect_free(p.m1) && !side_effect_free(p.m2)) {
        return Status::FailedPrecondition(StrFormat(
            "predicate %d (ReturnEquals): neither '%s' nor '%s' is declared "
            "side-effect-free",
            id, program_->method(p.m1).name.c_str(),
            program_->method(p.m2).name.c_str()));
      }
      return Status::OK();
    case PredKind::kCompound:
      AID_RETURN_IF_ERROR(ValidateImpl(p.sub1, depth + 1));
      return ValidateImpl(p.sub2, depth + 1);
    case PredKind::kSynthetic:
      return Status::OK();  // model targets intervene abstractly
    case PredKind::kFailure:
      return Status::FailedPrecondition(
          "the failure predicate itself cannot be intervened");
  }
  return Status::InvalidArgument(
      StrFormat("predicate %d has an unknown kind", id));
}

Result<std::vector<VmAction>> InterventionCompiler::Compile(
    PredicateId id) const {
  AID_RETURN_IF_ERROR(Validate(id));
  const Predicate& p = catalog_->Get(id);
  std::vector<VmAction> actions;
  switch (p.kind) {
    case PredKind::kDataRace:
    case PredKind::kAtomicityViolation: {
      // "Put locks around the code segments within M1 and M2 that access X"
      // (Figure 2): serializing the two methods removes both the race and
      // the atomicity intrusion.
      VmAction a;
      a.kind = VmActionKind::kSerializeMethods;
      a.method = p.m1;
      a.method2 = p.m2;
      a.mutex = InterventionMutexId(id);
      actions.push_back(a);
      break;
    }
    case PredKind::kMethodFails: {
      VmAction a;
      a.kind = VmActionKind::kCatchExceptions;
      a.method = p.m1;
      a.occurrence = p.occurrence;
      a.value = BaselineReturn(baselines_, p.m1);
      a.has_value = true;
      actions.push_back(a);
      break;
    }
    case PredKind::kTooFast: {
      auto it = baselines_->find(p.m1);
      VmAction a;
      a.kind = VmActionKind::kDelayBeforeReturn;
      a.method = p.m1;
      a.occurrence = p.occurrence;
      // Pushing the duration above the successful minimum repairs "too
      // fast"; the min duration itself is a sufficient delay.
      a.ticks = it == baselines_->end() ? 1 : it->second.min_duration + 1;
      actions.push_back(a);
      break;
    }
    case PredKind::kTooSlow: {
      auto it = baselines_->find(p.m1);
      VmAction a;
      a.kind = VmActionKind::kPrematureReturn;
      a.method = p.m1;
      a.occurrence = p.occurrence;
      // "Prematurely return the correct value that M returns in all
      // successful executions" (Figure 2); take a typical successful
      // duration so downstream timing matches a good run.
      a.ticks = it == baselines_->end()
                    ? 1
                    : (it->second.min_duration + it->second.max_duration) / 2;
      a.value = BaselineReturn(baselines_, p.m1);
      a.has_value = true;
      actions.push_back(a);
      break;
    }
    case PredKind::kWrongReturn: {
      VmAction a;
      a.kind = VmActionKind::kForceReturnValue;
      a.method = p.m1;
      a.occurrence = p.occurrence;
      a.value = p.expected;
      a.has_value = true;
      actions.push_back(a);
      break;
    }
    case PredKind::kOrder: {
      // The predicate is "m1 started before m2 finished"; the repair makes
      // m1 wait for m2, restoring the successful order.
      VmAction a;
      a.kind = VmActionKind::kEnforceOrder;
      a.method = p.m1;
      a.method2 = p.m2;
      actions.push_back(a);
      break;
    }
    case PredKind::kReturnEquals: {
      // Repair the collision by steering whichever method returns *second*
      // away from the other's value. Both directions are armed (for every
      // side-effect-free member); only the later return sees a recorded
      // value for its peer, so exactly one adjustment fires per run.
      for (const auto& [self, peer] :
           {std::pair{p.m1, p.m2}, std::pair{p.m2, p.m1}}) {
        if (!program_->method(self).side_effect_free) continue;
        VmAction a;
        a.kind = VmActionKind::kForceReturnDistinct;
        a.method = self;
        a.method2 = peer;
        actions.push_back(a);
      }
      break;
    }
    case PredKind::kCompound: {
      AID_ASSIGN_OR_RETURN(std::vector<VmAction> first, Compile(p.sub1));
      AID_ASSIGN_OR_RETURN(std::vector<VmAction> second, Compile(p.sub2));
      actions = std::move(first);
      actions.insert(actions.end(), second.begin(), second.end());
      break;
    }
    case PredKind::kSynthetic:
    case PredKind::kFailure:
      return Status::InvalidArgument(
          "predicate kind has no VM-level intervention");
  }
  return actions;
}

Result<InterventionPlan> InterventionCompiler::CompilePlan(
    const std::vector<PredicateId>& ids) const {
  InterventionPlan plan;
  for (PredicateId id : ids) {
    AID_ASSIGN_OR_RETURN(std::vector<VmAction> actions, Compile(id));
    for (const VmAction& action : actions) plan.Add(action);
  }
  return plan;
}

}  // namespace aid
