// Compound-predicate mining (paper Section 3.2, "Modeling nondeterminism").
//
// Two predicates A and B may cause the failure only in conjunction: each
// alone has perfect recall but imperfect precision (the failure always sees
// both, but each also appears in successful runs), so neither is fully
// discriminative and AID would drop them. Their conjunction A && B *is*
// fully discriminative and can stand in as a single root-cause predicate.
//
// FindDiscriminativeConjunctions proposes exactly those pairs; callers
// register them with PredicateExtractor::AddCompound so the logs carry the
// compound's observations.

#ifndef AID_SD_CONJUNCTIONS_H_
#define AID_SD_CONJUNCTIONS_H_

#include <vector>

#include "predicates/predicate.h"

namespace aid {

struct ConjunctionCandidate {
  PredicateId first = kInvalidPredicate;
  PredicateId second = kInvalidPredicate;
};

/// Returns pairs (A, B), A < B, such that neither A nor B is fully
/// discriminative over `logs` but their conjunction is: observed together
/// in every failed run and never together in a successful run. Both members
/// must individually have perfect recall (a compound with a low-recall
/// member could never explain every failure). At most `max_results` pairs
/// are returned (ordered by id).
std::vector<ConjunctionCandidate> FindDiscriminativeConjunctions(
    const PredicateCatalog& catalog, const std::vector<PredicateLog>& logs,
    size_t max_results = 16);

}  // namespace aid

#endif  // AID_SD_CONJUNCTIONS_H_
