#include "sd/statistical_debugger.h"

#include <algorithm>

namespace aid {

Result<StatisticalDebugger> StatisticalDebugger::Analyze(
    const PredicateCatalog& catalog, const std::vector<PredicateLog>& logs,
    const std::vector<PredicateId>& excluded) {
  int failed = 0;
  int successful = 0;
  for (const PredicateLog& log : logs) {
    log.failed ? ++failed : ++successful;
  }
  if (failed == 0 || successful == 0) {
    return Status::InvalidArgument(
        "statistical debugging requires both failed and successful logs");
  }

  StatisticalDebugger sd;
  sd.failed_runs_ = failed;
  sd.successful_runs_ = successful;
  sd.stats_.resize(catalog.size());
  for (auto& s : sd.stats_) {
    s.failed_runs = failed;
    s.successful_runs = successful;
  }
  for (const PredicateLog& log : logs) {
    for (const auto& [id, obs] : log.observed) {
      (void)obs;
      if (static_cast<size_t>(id) >= sd.stats_.size()) continue;
      if (log.failed) {
        ++sd.stats_[static_cast<size_t>(id)].true_in_failed;
      } else {
        ++sd.stats_[static_cast<size_t>(id)].true_in_successful;
      }
    }
  }
  // Statically infeasible sites leave the denominators entirely: zeroed
  // stats make them neither fully discriminative (failed_runs == 0) nor
  // rankable (true_total == 0), instead of skewing scores with
  // structurally impossible observations.
  for (PredicateId id : excluded) {
    if (id < 0 || static_cast<size_t>(id) >= sd.stats_.size()) continue;
    sd.stats_[static_cast<size_t>(id)] = PredicateStats{};
  }
  return sd;
}

std::vector<PredicateId> StatisticalDebugger::FullyDiscriminative() const {
  std::vector<PredicateId> out;
  for (size_t i = 0; i < stats_.size(); ++i) {
    if (stats_[i].fully_discriminative()) {
      out.push_back(static_cast<PredicateId>(i));
    }
  }
  return out;
}

std::vector<RankedPredicate> StatisticalDebugger::Ranked(
    double min_recall) const {
  std::vector<RankedPredicate> out;
  for (size_t i = 0; i < stats_.size(); ++i) {
    if (stats_[i].true_total() == 0) continue;
    if (stats_[i].recall() < min_recall) continue;
    out.push_back({static_cast<PredicateId>(i), stats_[i]});
  }
  std::sort(out.begin(), out.end(),
            [](const RankedPredicate& a, const RankedPredicate& b) {
              const double fa = a.stats.f1();
              const double fb = b.stats.f1();
              if (fa != fb) return fa > fb;
              return a.id < b.id;
            });
  return out;
}

}  // namespace aid
