#include "sd/conjunctions.h"

#include "sd/statistical_debugger.h"

namespace aid {

std::vector<ConjunctionCandidate> FindDiscriminativeConjunctions(
    const PredicateCatalog& catalog, const std::vector<PredicateLog>& logs,
    size_t max_results) {
  std::vector<ConjunctionCandidate> out;
  auto sd = StatisticalDebugger::Analyze(catalog, logs);
  if (!sd.ok()) return out;

  // Candidate members: perfect recall, imperfect precision, and not a
  // compound already (no nesting by default).
  std::vector<PredicateId> members;
  for (size_t i = 0; i < catalog.size(); ++i) {
    const PredicateId id = static_cast<PredicateId>(i);
    if (catalog.Get(id).kind == PredKind::kCompound) continue;
    if (catalog.Get(id).kind == PredKind::kFailure) continue;
    const PredicateStats& stats = sd->stats(id);
    if (stats.recall() == 1.0 && !stats.fully_discriminative()) {
      members.push_back(id);
    }
  }

  for (size_t a = 0; a < members.size() && out.size() < max_results; ++a) {
    for (size_t b = a + 1; b < members.size() && out.size() < max_results;
         ++b) {
      // The conjunction must vanish from every successful run. (Recall is
      // already perfect for both members, so it holds for the pair.)
      bool seen_in_success = false;
      for (const PredicateLog& log : logs) {
        if (!log.failed && log.Has(members[a]) && log.Has(members[b])) {
          seen_in_success = true;
          break;
        }
      }
      if (!seen_in_success) {
        out.push_back({members[a], members[b]});
      }
    }
  }
  return out;
}

}  // namespace aid
