// Statistical debugging: precision/recall scoring of predicates over
// labeled predicate logs, discriminative-predicate mining, ranking.
//
// This is the paper's Section 2 baseline: given predicate logs of many
// successful and failed executions,
//
//   precision(P) = #failed runs where P / #runs where P
//   recall(P)    = #failed runs where P / #failed runs
//
// AID consumes only the *fully-discriminative* predicates (precision =
// recall = 1), which also strips trivial program invariants (their precision
// is the overall failure rate, < 1 whenever successful runs exist).

#ifndef AID_SD_STATISTICAL_DEBUGGER_H_
#define AID_SD_STATISTICAL_DEBUGGER_H_

#include <vector>

#include "common/status.h"
#include "predicates/predicate.h"

namespace aid {

/// Occurrence counts of one predicate across the observation logs.
struct PredicateStats {
  int true_in_failed = 0;
  int true_in_successful = 0;
  int failed_runs = 0;
  int successful_runs = 0;

  int true_total() const { return true_in_failed + true_in_successful; }

  /// Fraction of P-observing runs that failed (0 if P never observed).
  double precision() const {
    const int total = true_total();
    return total == 0 ? 0.0
                      : static_cast<double>(true_in_failed) / total;
  }

  /// Fraction of failed runs that observed P (0 if no failed runs).
  double recall() const {
    return failed_runs == 0
               ? 0.0
               : static_cast<double>(true_in_failed) / failed_runs;
  }

  /// Harmonic mean of precision and recall.
  double f1() const {
    const double p = precision();
    const double r = recall();
    return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }

  /// Fully discriminative: observed in every failed run and no successful
  /// run (precision = recall = 100%).
  bool fully_discriminative() const {
    return failed_runs > 0 && true_in_failed == failed_runs &&
           true_in_successful == 0;
  }
};

/// A ranked predicate, for SD-style report output.
struct RankedPredicate {
  PredicateId id = kInvalidPredicate;
  PredicateStats stats;
};

/// Computes per-predicate statistics over the observation logs.
class StatisticalDebugger {
 public:
  /// `logs` must contain at least one failed and one successful run.
  ///
  /// `excluded` (optional) lists predicate ids that must not enter any
  /// denominator -- e.g. sites the static analyzer proved can never fire
  /// (analysis/analyzer.h). Their stats are zeroed: they are neither
  /// fully discriminative nor ranked.
  static Result<StatisticalDebugger> Analyze(
      const PredicateCatalog& catalog, const std::vector<PredicateLog>& logs,
      const std::vector<PredicateId>& excluded = {});

  const PredicateStats& stats(PredicateId id) const {
    return stats_[static_cast<size_t>(id)];
  }

  int failed_runs() const { return failed_runs_; }
  int successful_runs() const { return successful_runs_; }

  /// Ids of fully-discriminative predicates, ascending.
  std::vector<PredicateId> FullyDiscriminative() const;

  /// Predicates with recall above `min_recall`, ranked by F1 descending
  /// (ties by id). This is the classic SD output a developer would sift.
  std::vector<RankedPredicate> Ranked(double min_recall = 0.0) const;

 private:
  std::vector<PredicateStats> stats_;
  int failed_runs_ = 0;
  int successful_runs_ = 0;
};

}  // namespace aid

#endif  // AID_SD_STATISTICAL_DEBUGGER_H_
