// DiscoveryState: the intervention engine as an explicit, resumable
// round-state machine.
//
// CausalPathDiscovery::Run() used to be one blocking loop: plan a round,
// execute it on the target, absorb the outcome, repeat. DiscoveryState
// splits that loop at the execution boundary so a driver owns the target
// I/O and the state machine owns every decision:
//
//   DiscoveryState state(dag, options, rng);
//   while (true) {
//     DiscoveryAction action = state.NextAction();     // plan
//     if (action.kind == DiscoveryAction::Kind::kDone) break;
//     ActionOutcome outcome =
//         ExecuteDiscoveryAction(state, action, target);  // the only I/O
//     state.Feed(action, outcome);                     // absorb
//   }
//   DiscoveryReport report = state.Finalize();
//
// Run() is now exactly this loop, and every decision, counter, and
// telemetry span is bit-identical (SameDiscoveryOutcome and beyond) to the
// old recursive implementation. What the split buys:
//
//   * a long-lived service (src/service/) can interleave the actions of
//     many concurrent discoveries over one shared runner fleet, one action
//     per session per scheduling turn;
//   * Serialize()/Deserialize() checkpoint a discovery between actions --
//     items, verdicts, the GIWP recursion (an explicit frame stack), the
//     branch-prune junction search, the budgeting posteriors, and the RNG
//     stream -- so a session can stop mid-discovery and resume on another
//     host from the SubjectSpec plus the state blob, reaching a report
//     bit-identical to the uninterrupted run.
//
// The codec is the repository-wide little-endian wire encoding
// (trace/serialize.h WireWriter/WireReader), the same primitives the proc/
// wire protocol and subject specs use.

#ifndef AID_CORE_DISCOVERY_STATE_H_
#define AID_CORE_DISCOVERY_STATE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "causal/acdag.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/engine.h"
#include "core/target.h"
#include "telemetry/trace.h"

namespace aid {

class WireWriter;
class WireReader;
class BeliefState;     // budget/belief.h; live iff budgeting is enabled
class BudgetPlanner;   // budget/planner.h; live iff budgeting is enabled

/// What the engine wants executed next. Planning is pure: producing an
/// action performs no target I/O (budgeted serial rounds defer their trial
/// allocation to DiscoveryState::PlanBudgetedTrials so the plan lands
/// inside the round's telemetry span, exactly where the blocking engine
/// put it).
struct DiscoveryAction {
  enum class Kind : uint8_t {
    kRound,  ///< one group intervention (serial dispatch)
    kBatch,  ///< a whole linear-scan round as one batched dispatch
    kDone,   ///< discovery finished; call Finalize()
  };
  Kind kind = Kind::kDone;

  /// "branch" or "giwp" -- the phase label rounds are recorded under.
  const char* phase = "giwp";
  /// True when adaptive budgeting plans this action's trial counts.
  bool budgeted = false;

  /// kRound: the union of the intervened items' predicates, deduplicated.
  std::vector<PredicateId> preds;
  /// kRound, unbudgeted: executions to run (trials_per_intervention).
  int trials = 1;

  /// kBatch: one span per undecided scan item, in scan order.
  InterventionSpans spans;
  /// kBatch, budgeted: per-span trial allocation and whether the global
  /// execution budget funded the span (unfunded spans are not executed and
  /// their items stay undecided).
  std::vector<int> alloc;
  std::vector<uint8_t> funded;
};

/// What executing one action cost and returned. The driver snapshots the
/// target's cumulative counters around the dispatch and reports deltas;
/// the state machine accumulates them so budget checks and the final
/// report never read the target directly -- which is what makes a
/// checkpoint resumable on a fresh target whose counters start elsewhere.
struct ActionOutcome {
  /// kRound: the round's (possibly early-stopped) result.
  TargetRunResult result;
  /// kRound, budgeted: trials actually executed / planned by the SPRT.
  int used = 0;
  int planned = 0;
  /// kBatch: one result per span, scan order; unfunded spans stay empty.
  std::vector<TargetRunResult> batch;
  /// kBatch, budgeted: total trials the funded spans executed.
  uint64_t budgeted_trials = 0;

  /// Target-counter deltas over this dispatch.
  uint64_t executions_delta = 0;
  uint64_t trial_micros_delta = 0;
  uint64_t respawns_delta = 0;
  uint64_t crashed_trials_delta = 0;
  uint64_t timed_out_trials_delta = 0;
  uint64_t steals_delta = 0;
  uint64_t cancelled_chunks_delta = 0;
  uint64_t straggler_wait_micros_delta = 0;
  std::vector<uint64_t> replica_trials_delta;
};

/// Serializes `options` (everything except the observer/telemetry
/// pointers, which are process-local) onto `writer`; the service's SUBMIT
/// payload and the DiscoveryState checkpoint share this codec.
void EncodeEngineOptions(const EngineOptions& options, WireWriter& writer);
/// Decodes options written by EncodeEngineOptions. observer/telemetry come
/// back null; the resuming host supplies its own.
Result<EngineOptions> DecodeEngineOptions(WireReader& reader);

/// The resumable state machine behind CausalPathDiscovery. One instance is
/// one discovery over one AC-DAG; `dag` is borrowed and must outlive it.
class DiscoveryState {
 public:
  /// `rng` carries the caller's stream position so repeated discoveries on
  /// one CausalPathDiscovery keep consuming a single stream (TAGT's random
  /// order depends on it). Options must already be validated
  /// (ValidateDiscoveryOptions).
  DiscoveryState(const AcDag* dag, EngineOptions options, Rng rng);
  ~DiscoveryState();
  DiscoveryState(const DiscoveryState&) = delete;
  DiscoveryState& operator=(const DiscoveryState&) = delete;

  /// Plans the next action. Idempotent until Feed consumes the pending
  /// action: calling NextAction twice returns the same plan. Returns a
  /// kDone action once every item is decided (or the budget is spent).
  Result<DiscoveryAction> NextAction();

  /// Absorbs the outcome of the pending action: records the round(s),
  /// updates verdicts, pruning, budgeting posteriors, and the phase/stack
  /// bookkeeping that decides what NextAction plans next.
  Status Feed(const DiscoveryAction& action, const ActionOutcome& outcome);

  /// True once NextAction has returned (or will return) kDone.
  bool done() const { return stage_ == Stage::kFinished; }

  /// Assembles the DiscoveryReport -- causal path in topological order,
  /// chain check, counter deltas, confidence -- and folds the run's deltas
  /// into the telemetry counters, exactly as the blocking Run() did at its
  /// end. Call once, after done().
  Result<DiscoveryReport> Finalize();

  /// Budgeted serial rounds: plans the SPRT allocation for `preds` under a
  /// "budget_plan" span parented to `round_span` and clamps it to the
  /// remaining global budget. Called by the driver between opening the
  /// round span and running trials (see ExecuteDiscoveryAction).
  int PlanBudgetedTrials(const std::vector<PredicateId>& preds,
                         uint64_t round_span);

  /// Checkpoints the state between actions. FailedPrecondition while an
  /// action is pending: a checkpoint is only coherent at the Feed ->
  /// NextAction boundary.
  Result<std::string> Serialize() const;

  /// Restores a checkpoint against `dag` (rebuilt from the same
  /// SubjectSpec -- the blob carries no topology). `observer` / `telemetry`
  /// replace the checkpointed process-local pointers; the current phase
  /// change is re-announced and fresh discovery/phase spans are opened on
  /// the new tracer.
  static Result<std::unique_ptr<DiscoveryState>> Deserialize(
      const AcDag* dag, std::string_view bytes, Observer* observer,
      Telemetry* telemetry);

  const EngineOptions& options() const { return options_; }
  /// The caller's RNG stream position after the work so far (Run() copies
  /// it back so the stream continues across discoveries).
  Rng rng() const { return rng_; }
  /// Open phase span id ("branch_prune"/"giwp"); 0 without telemetry.
  uint64_t phase_span() const { return phase_span_; }
  /// 1-based index the next recorded round will get.
  uint64_t next_round_index() const { return report_.rounds + 1; }
  /// Application executions absorbed so far (the budget's spend ledger).
  uint64_t executions() const { return executions_; }

 private:
  /// An engine item: a single predicate, or a branch (disjunction of the
  /// branch predicates, Algorithm 2 lines 10-12) intervened as one unit.
  struct Item {
    std::vector<PredicateId> preds;
    int order_key = 0;  ///< topological position (or random key for TAGT)
  };
  enum class ItemDecision : uint8_t { kUndecided, kCausal, kSpurious };

  /// Where the discovery is between actions. The GIWP recursion is an
  /// explicit frame stack; the branch-prune junction search is two stages
  /// over bp_* members.
  enum class Stage : uint8_t {
    kInit = 0,        ///< nothing run yet; first NextAction seeds the run
    kBranchOuter = 1, ///< Algorithm 2: find the next junction
    kBranchInner = 2, ///< Algorithm 2: binary-search the current junction
    kGiwp = 3,        ///< Algorithm 1 over the frame stack
    kFinished = 4,
  };

  /// One suspended GIWP invocation. When a stopped round recurses into its
  /// selected half, the parent parks the round's result here and applies
  /// Definition 2 pruning only after the child frame pops -- the exact
  /// point the recursive implementation reached that code.
  struct GiwpFrame {
    std::vector<size_t> pool;  ///< indexes into items_
    bool has_pending_prune = false;
    std::vector<size_t> pending_selected;
    TargetRunResult pending_result;
  };

  /// Advances stages until an action is planned or the run is done.
  void Pump();
  void InitRun();
  /// Finds the next junction / plans the next branch round.
  void PumpBranchOuter();
  void PumpBranchInner();
  void PumpGiwp();
  /// Ends the branch phase and enters GIWP (Algorithm 3's second stage).
  void EnterGiwp();
  /// Applies a resolved junction to bp_remaining_ (Algorithm 2 line 13).
  void FinishJunction();
  /// Plans a kRound action intervening on `item_indexes` as one group.
  void PlanRound(const std::vector<size_t>& item_indexes, const char* phase);
  /// Plans a kBatch action over `pool` (budget allocation included).
  void PlanBatch(const std::vector<size_t>& pool);

  void FeedRound(const DiscoveryAction& action, const ActionOutcome& outcome);
  void FeedBatch(const DiscoveryAction& action, const ActionOutcome& outcome);
  void AccumulateDeltas(const ActionOutcome& outcome);
  /// Budgeted-round bookkeeping shared by serial rounds: cost model,
  /// allocated/saved counters, early stops, belief updates.
  void ObserveBudgetedRound(const std::vector<PredicateId>& preds,
                            const ActionOutcome& outcome);

  bool BudgetSpent() const;
  void RecordRound(const std::vector<PredicateId>& preds,
                   const TargetRunResult& result, const char* phase);
  void Decide(size_t item, ItemDecision decision);
  void InterventionalPruning(const std::vector<size_t>& intervened,
                             const TargetRunResult& result);
  bool ItemReachesItem(size_t a, size_t b) const;
  bool ItemObserved(const Item& item, const PredicateLog& log) const;
  void MakeSingletonItems(const std::vector<PredicateId>& preds);
  std::vector<size_t> UndecidedItems() const;
  Tracer* tracer() const;

  const AcDag* dag_;
  EngineOptions options_;
  Rng rng_;

  Stage stage_ = Stage::kInit;
  bool has_pending_action_ = false;
  DiscoveryAction pending_action_;
  /// kRound context the next Feed consumes (branch: tested/rest item
  /// splits; giwp: the selected half). Replanned on resume, never
  /// serialized.
  std::vector<size_t> pending_selected_;
  std::vector<size_t> pending_rest_;

  std::vector<Item> items_;
  std::vector<ItemDecision> decisions_;
  std::vector<PredicateId> causal_;
  std::vector<PredicateId> spurious_;
  std::vector<PredicateId> candidates_;
  DiscoveryReport report_;

  /// GIWP recursion as data (stage kGiwp).
  std::vector<GiwpFrame> giwp_stack_;
  /// Branch-prune search state (stages kBranchOuter/kBranchInner).
  std::vector<PredicateId> bp_remaining_;
  std::vector<size_t> bp_live_;

  /// Accumulated ActionOutcome deltas: the report's cost/health/dispatch
  /// numbers, independent of which target executed which action.
  uint64_t executions_ = 0;
  uint64_t respawns_ = 0;
  uint64_t crashed_trials_ = 0;
  uint64_t timed_out_trials_ = 0;
  uint64_t steals_ = 0;
  uint64_t cancelled_chunks_ = 0;
  uint64_t straggler_wait_micros_ = 0;
  std::vector<uint64_t> replica_trials_;

  /// Budgeting state (src/budget/); live iff options_.budget.enabled.
  std::unique_ptr<BeliefState> belief_;
  std::unique_ptr<BudgetPlanner> planner_;
  bool budget_exhausted_ = false;

  /// Telemetry spans spanning the whole discovery / the open phase. Not
  /// serialized; Deserialize opens fresh ones on the new tracer.
  ScopedSpan discovery_scope_;
  ScopedSpan phase_scope_;
  uint64_t phase_span_ = 0;
  bool finalized_ = false;
};

/// The one place a discovery touches its target: fires OnRoundStarted,
/// opens the round ("round" / "round.batch") span as the active telemetry
/// parent, dispatches the action (budgeted serial rounds run trial-at-a-
/// time with first-failure early stop), and returns the outcome with the
/// target-counter deltas filled in. Shared by CausalPathDiscovery::Run()
/// and the aid_service session scheduler.
Result<ActionOutcome> ExecuteDiscoveryAction(DiscoveryState& state,
                                             const DiscoveryAction& action,
                                             InterventionTarget* target);

/// Validation shared by Run() and the service admission path: trial count
/// plus (when enabled) budget options.
Status ValidateDiscoveryOptions(const EngineOptions& options);

}  // namespace aid

#endif  // AID_CORE_DISCOVERY_STATE_H_
