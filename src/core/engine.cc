#include "core/engine.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "budget/belief.h"
#include "budget/planner.h"
#include "common/logging.h"
#include "telemetry/telemetry.h"

namespace aid {

Status ValidateTrialsPerIntervention(int trials) {
  if (trials < 1) {
    return Status::InvalidArgument(
        "trials_per_intervention must be >= 1 (each round needs at least "
        "one execution), got " + std::to_string(trials));
  }
  if (trials > kMaxTrialsPerIntervention) {
    return Status::InvalidArgument(
        "trials_per_intervention must be <= " +
        std::to_string(kMaxTrialsPerIntervention) +
        " (each trial is a full application execution), got " +
        std::to_string(trials));
  }
  return Status::OK();
}

CausalPathDiscovery::CausalPathDiscovery(const AcDag* dag,
                                         InterventionTarget* target,
                                         EngineOptions options)
    : dag_(dag), target_(target), options_(options), rng_(options.seed) {}

CausalPathDiscovery::~CausalPathDiscovery() = default;

Result<DiscoveryReport> CausalPathDiscovery::Run() {
  AID_RETURN_IF_ERROR(
      ValidateTrialsPerIntervention(options_.trials_per_intervention));
  if (options_.budget.enabled) {
    AID_RETURN_IF_ERROR(ValidateBudgetOptions(options_.budget));
  }
  report_ = DiscoveryReport{};
  causal_.clear();
  spurious_.clear();
  const uint64_t executions_before = target_->executions();
  const TargetHealth health_before = target_->health();
  const DispatchStats dispatch_before = target_->dispatch_stats();

  Tracer* tracer =
      options_.telemetry != nullptr ? options_.telemetry->tracer() : nullptr;
  ScopedSpan discovery_span(tracer, "discovery");

  candidates_.clear();
  for (PredicateId id : dag_->nodes()) {
    if (id != dag_->failure()) candidates_.push_back(id);
  }

  belief_.reset();
  planner_.reset();
  budget_exhausted_ = false;
  run_start_executions_ = executions_before;
  if (options_.budget.enabled) {
    belief_ = std::make_unique<BeliefState>(dag_, options_.budget);
    belief_->SeedCandidates(candidates_);
    planner_ =
        std::make_unique<BudgetPlanner>(options_.budget, belief_.get());
  }

  if (options_.branch_pruning && options_.topological_order) {
    if (options_.observer) {
      options_.observer->OnPhaseChanged(SessionPhase::kBranchPruning);
    }
    ScopedSpan phase_span(tracer, "branch_prune", discovery_span.id());
    phase_span_ = phase_span.id();
    AID_RETURN_IF_ERROR(BranchPrune());
    phase_span_ = 0;
  }

  if (options_.observer) {
    options_.observer->OnPhaseChanged(SessionPhase::kGiwp);
  }
  MakeSingletonItems(candidates_);
  {
    ScopedSpan phase_span(tracer, "giwp", discovery_span.id());
    phase_span_ = phase_span.id();
    AID_RETURN_IF_ERROR(Giwp(UndecidedItems()));
    phase_span_ = 0;
  }

  // Assemble the causal path: causal predicates in topological order, then F
  // (Definition 1: C0 .. Cn with Cn = F).
  std::sort(causal_.begin(), causal_.end());
  causal_.erase(std::unique(causal_.begin(), causal_.end()), causal_.end());
  std::unordered_map<PredicateId, int> topo_pos;
  {
    int pos = 0;
    for (PredicateId id : dag_->TopoOrder()) topo_pos[id] = pos++;
  }
  std::sort(causal_.begin(), causal_.end(),
            [&](PredicateId a, PredicateId b) {
              return topo_pos[a] < topo_pos[b];
            });
  report_.causal_path = causal_;
  report_.causal_path.push_back(dag_->failure());

  // Definition 1 sanity: the causal predicates should be totally ordered by
  // reachability. When they are not (e.g. a conjunctive root cause on
  // disjoint branches), flag the assumption violation instead of silently
  // presenting an unordered set as a chain (Section 5.1).
  report_.path_is_chain = true;
  for (size_t i = 0; i + 1 < causal_.size(); ++i) {
    if (!dag_->Reaches(causal_[i], causal_[i + 1])) {
      report_.path_is_chain = false;
      break;
    }
  }

  std::sort(spurious_.begin(), spurious_.end());
  spurious_.erase(std::unique(spurious_.begin(), spurious_.end()),
                  spurious_.end());
  report_.spurious = spurious_;
  report_.executions = target_->executions() - executions_before;
  const TargetHealth health_after = target_->health();
  report_.respawns = health_after.respawns - health_before.respawns;
  report_.crashed_trials =
      health_after.crashed_trials - health_before.crashed_trials;
  report_.timed_out_trials =
      health_after.timed_out_trials - health_before.timed_out_trials;
  const DispatchStats dispatch_after = target_->dispatch_stats();
  report_.steals = dispatch_after.steals - dispatch_before.steals;
  report_.straggler_wait_micros = dispatch_after.straggler_wait_micros -
                                  dispatch_before.straggler_wait_micros;
  report_.replica_trials = dispatch_after.replica_trials;
  for (size_t i = 0; i < report_.replica_trials.size() &&
                     i < dispatch_before.replica_trials.size();
       ++i) {
    report_.replica_trials[i] -= dispatch_before.replica_trials[i];
  }
  report_.budget_exhausted = budget_exhausted_;
  if (belief_ != nullptr) report_.confidence = belief_->Snapshot();

  // Fold the report's own deltas into the metrics registry, so the exported
  // snapshot matches the DiscoveryReport EXACTLY (rounds were counted live
  // in RecordRound; everything else lands here, at the quiescent end of the
  // run). Substrates only feed latency histograms/EWMAs live -- totals come
  // from the same numbers the report carries.
  if (options_.telemetry != nullptr) {
    MetricsRegistry& reg = options_.telemetry->metrics();
    reg.GetCounter("aid_executions_total")->Add(report_.executions);
    reg.GetCounter("aid_speculative_executions_total")
        ->Add(report_.speculative_executions);
    reg.GetCounter("aid_respawns_total")->Add(report_.respawns);
    reg.GetCounter("aid_crashed_trials_total")->Add(report_.crashed_trials);
    reg.GetCounter("aid_timed_out_trials_total")
        ->Add(report_.timed_out_trials);
    reg.GetCounter("aid_steals_total")->Add(report_.steals);
    reg.GetCounter("aid_straggler_wait_micros_total")
        ->Add(report_.straggler_wait_micros);
    reg.GetCounter("aid_cancelled_chunks_total")
        ->Add(dispatch_after.cancelled_chunks -
              dispatch_before.cancelled_chunks);
    if (options_.budget.enabled) {
      reg.GetCounter("aid_budget_trials_allocated_total")
          ->Add(report_.budgeted_trials_allocated);
      if (report_.budgeted_trials_saved > 0) {
        // Counters are monotone; a negative saving (cap raised above the
        // fixed trial count) simply adds nothing.
        reg.GetCounter("aid_budget_trials_saved_total")
            ->Add(static_cast<uint64_t>(report_.budgeted_trials_saved));
      }
      reg.GetCounter("aid_budget_early_stops_total")
          ->Add(report_.budget_early_stops);
      reg.GetGauge("aid_budget_exhausted")->Set(budget_exhausted_ ? 1 : 0);
    }
  }
  return report_;
}

void CausalPathDiscovery::Decide(size_t item, ItemDecision decision) {
  AID_CHECK(decisions_[item] == ItemDecision::kUndecided);
  decisions_[item] = decision;
  const bool causal = decision == ItemDecision::kCausal;
  std::vector<PredicateId>& sink = causal ? causal_ : spurious_;
  for (PredicateId id : items_[item].preds) {
    sink.push_back(id);
    if (belief_ != nullptr) {
      // Certified verdicts pin the budgeting posterior (and, for causal
      // ones, propagate a discount over incomparable candidates).
      if (causal) {
        belief_->MarkCausal(id);
      } else {
        belief_->MarkSpurious(id);
      }
    }
    if (options_.observer) {
      options_.observer->OnPredicateDecided(id, causal);
    }
  }
}

void CausalPathDiscovery::MakeSingletonItems(
    const std::vector<PredicateId>& preds) {
  items_.clear();
  decisions_.clear();
  std::unordered_map<PredicateId, int> topo_pos;
  {
    int pos = 0;
    for (PredicateId id : dag_->TopoOrder()) topo_pos[id] = pos++;
  }
  std::vector<PredicateId> ordered = preds;
  if (options_.topological_order) {
    std::sort(ordered.begin(), ordered.end(),
              [&](PredicateId a, PredicateId b) {
                return topo_pos[a] < topo_pos[b];
              });
  } else {
    rng_.Shuffle(ordered);
  }
  items_.reserve(ordered.size());
  for (size_t i = 0; i < ordered.size(); ++i) {
    items_.push_back(Item{{ordered[i]}, static_cast<int>(i)});
  }
  decisions_.assign(items_.size(), ItemDecision::kUndecided);
}

std::vector<size_t> CausalPathDiscovery::UndecidedItems() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < items_.size(); ++i) {
    if (decisions_[i] == ItemDecision::kUndecided) out.push_back(i);
  }
  return out;
}

Status CausalPathDiscovery::Giwp(std::vector<size_t> pool) {
  while (true) {
    // Line 18: drop items decided in this or deeper/earlier rounds.
    pool.erase(std::remove_if(pool.begin(), pool.end(),
                              [&](size_t i) {
                                return decisions_[i] !=
                                       ItemDecision::kUndecided;
                              }),
               pool.end());
    if (pool.empty()) return Status::OK();
    if (BudgetSpent()) {
      // Best effort: leave the remaining items undecided; the report
      // carries their posteriors as confidence.
      budget_exhausted_ = true;
      return Status::OK();
    }

    const bool batched =
        options_.batched_dispatch || options_.parallelism > 1;
    if (options_.linear_scan && batched) {
      AID_RETURN_IF_ERROR(GiwpLinearBatched(pool));
      // An exhausted batch leaves its unfunded spans undecided, and the
      // leftover budget cannot cover any of them (funding is greedy over
      // every span the remainder could pay for) -- re-planning would spin.
      if (budget_exhausted_) return Status::OK();
      continue;  // re-filter; a second pass only runs if items stay undecided
    }

    // Line 4: the first half in (topological) order -- or a single item in
    // linear-scan mode (the D >= N/log N regime, Section 2).
    const size_t half = options_.linear_scan ? 1 : (pool.size() + 1) / 2;
    std::vector<size_t> selected(pool.begin(), pool.begin() + half);

    AID_ASSIGN_OR_RETURN(TargetRunResult result, Intervene(selected, "giwp"));
    const bool failure_stopped = !result.AnyFailed();

    if (failure_stopped) {
      // Lines 6-12: a counterfactual cause is inside the group.
      if (selected.size() == 1) {
        Decide(selected[0], ItemDecision::kCausal);
      } else {
        AID_RETURN_IF_ERROR(Giwp(selected));
      }
    } else {
      // Lines 13-14: intervened predicates did not avert the failure.
      for (size_t i : selected) Decide(i, ItemDecision::kSpurious);
    }

    // Lines 15-17 (Definition 2): prune by counterfactual violations.
    if (options_.predicate_pruning) {
      InterventionalPruning(selected, result);
    }
  }
}

Status CausalPathDiscovery::GiwpLinearBatched(const std::vector<size_t>& pool) {
  // Submit every singleton intervention of the scan as one batch, then
  // consume the results in scan order. Items that Definition 2 pruning
  // decides before their result is reached keep their pruning verdict; their
  // speculative executions are the price of batching (see EngineOptions).
  InterventionSpans spans;
  spans.reserve(pool.size());
  for (size_t i : pool) spans.push_back(items_[i].preds);

  // Budgeted batches: one "budget_plan" span covers the whole round's
  // allocation. Each span gets its own SPRT requirement; when a global
  // execution budget cannot fund the full round, the highest-scoring
  // (information gain per cost) spans are funded first and the rest are
  // left undecided. Within a batch there is no mid-span early stop -- the
  // substrate runs each span's whole allocation; that is the same batching
  // trade-off speculative executions already embody.
  std::vector<int> alloc(pool.size(), options_.trials_per_intervention);
  std::vector<bool> funded(pool.size(), true);
  if (options_.budget.enabled) {
    ScopedSpan plan_span(
        options_.telemetry != nullptr ? options_.telemetry->tracer()
                                      : nullptr,
        "budget_plan", phase_span_);
    const int cap = options_.budget.max_trials_per_round > 0
                        ? options_.budget.max_trials_per_round
                        : options_.trials_per_intervention;
    for (size_t k = 0; k < pool.size(); ++k) {
      alloc[k] = planner_->PlanTrials(spans[k], cap);
    }
    if (options_.budget.max_executions > 0) {
      const uint64_t spent = target_->executions() - run_start_executions_;
      const uint64_t remaining =
          spent >= options_.budget.max_executions
              ? 0
              : options_.budget.max_executions - spent;
      uint64_t total = 0;
      for (int a : alloc) total += static_cast<uint64_t>(a);
      if (total > remaining) {
        std::vector<size_t> order(pool.size());
        std::iota(order.begin(), order.end(), size_t{0});
        std::stable_sort(order.begin(), order.end(),
                         [&](size_t a, size_t b) {
                           return planner_->Score(spans[a], alloc[a]) >
                                  planner_->Score(spans[b], alloc[b]);
                         });
        funded.assign(pool.size(), false);
        uint64_t left = remaining;
        for (size_t k : order) {
          if (static_cast<uint64_t>(alloc[k]) <= left) {
            funded[k] = true;
            left -= static_cast<uint64_t>(alloc[k]);
          }
        }
        budget_exhausted_ = true;
      }
    }
  }

  // One "round.batch" span covers the whole batched dispatch (the decisions
  // it feeds are consumed below, outside the span); like Intervene, it is
  // the active parent for substrate-side chunk/trial spans.
  ScopedSpan batch_span;
  if (options_.telemetry != nullptr &&
      options_.telemetry->tracer() != nullptr) {
    batch_span = ScopedSpan(options_.telemetry->tracer(), "round.batch",
                            phase_span_);
    options_.telemetry->SetActiveParent(batch_span.id());
  }
  std::vector<TargetRunResult> results(pool.size());
  const uint64_t micros_before = target_->health().trial_micros;
  uint64_t budgeted_trials = 0;
  Status batch_status = Status::OK();
  if (!options_.budget.enabled) {
    Result<std::vector<TargetRunResult>> batch = target_->RunInterventionsBatch(
        spans, options_.trials_per_intervention);
    if (!batch.ok()) {
      batch_status = batch.status();
    } else if (batch->size() != pool.size()) {
      // Backends are third-party code; a contract violation is their
      // runtime error, not our programming error.
      batch_status = Status::Internal(
          "RunInterventionsBatch returned " + std::to_string(batch->size()) +
          " results for " + std::to_string(spans.size()) + " spans");
    } else {
      results = std::move(*batch);
    }
  } else {
    // Submit one sub-batch per distinct allocation (the batch interface
    // takes a single trial count), then map results back to scan order.
    std::map<int, std::vector<size_t>> buckets;
    for (size_t k = 0; k < pool.size(); ++k) {
      if (funded[k]) buckets[alloc[k]].push_back(k);
    }
    for (const auto& [trials, indexes] : buckets) {
      InterventionSpans sub;
      sub.reserve(indexes.size());
      for (size_t k : indexes) sub.push_back(spans[k]);
      Result<std::vector<TargetRunResult>> batch =
          target_->RunInterventionsBatch(sub, trials);
      if (!batch.ok()) {
        batch_status = batch.status();
        break;
      }
      if (batch->size() != indexes.size()) {
        batch_status = Status::Internal(
            "RunInterventionsBatch returned " +
            std::to_string(batch->size()) + " results for " +
            std::to_string(sub.size()) + " spans");
        break;
      }
      for (size_t j = 0; j < indexes.size(); ++j) {
        budgeted_trials += (*batch)[j].logs.size();
        results[indexes[j]] = std::move((*batch)[j]);
      }
    }
  }
  if (options_.telemetry != nullptr) options_.telemetry->SetActiveParent(0);
  batch_span.End();
  AID_RETURN_IF_ERROR(batch_status);

  if (options_.budget.enabled) {
    planner_->ObserveRoundCost(
        target_->health().trial_micros - micros_before,
        static_cast<int>(budgeted_trials));
    report_.budgeted_trials_allocated += budgeted_trials;
    for (size_t k = 0; k < pool.size(); ++k) {
      if (!funded[k]) continue;
      report_.budgeted_trials_saved +=
          static_cast<int64_t>(options_.trials_per_intervention) - alloc[k];
    }
  }

  for (size_t k = 0; k < pool.size(); ++k) {
    const size_t item = pool[k];
    if (!funded[k]) continue;  // unfunded span: the item stays undecided
    if (decisions_[item] != ItemDecision::kUndecided) {
      // Pruning answered this span before its result was consumed: its
      // executions were speculative (see DiscoveryReport).
      report_.speculative_executions += results[k].logs.size();
      continue;
    }
    const TargetRunResult& result = results[k];
    if (options_.observer) {
      options_.observer->OnRoundStarted(report_.rounds + 1, spans[k]);
    }
    RecordRound(spans[k], result, "giwp");
    if (belief_ != nullptr) {
      if (result.AnyFailed()) {
        int passes = 0;
        for (const PredicateLog& log : result.logs) {
          if (log.failed) break;
          ++passes;
        }
        belief_->ObservePersistingRound(passes);
      } else {
        belief_->ObserveStoppedRound(spans[k],
                                     static_cast<int>(result.logs.size()));
      }
    }
    Decide(item, result.AnyFailed() ? ItemDecision::kSpurious
                                    : ItemDecision::kCausal);
    if (options_.predicate_pruning) {
      InterventionalPruning({item}, result);
    }
  }
  return Status::OK();
}

Status CausalPathDiscovery::BranchPrune() {
  // Iteratively reduce the AC-DAG (restricted to surviving candidates) to a
  // chain by resolving one junction at a time.
  std::vector<PredicateId> remaining = candidates_;
  while (true) {
    if (BudgetSpent()) {
      budget_exhausted_ = true;
      break;
    }
    AcDag sub = dag_->Restrict(remaining);
    std::vector<std::vector<PredicateId>> levels = sub.TopoLevels();
    std::vector<PredicateId> junction_members;
    for (auto& level : levels) {
      // The failure predicate is never part of a junction (it cannot be
      // intervened); a level with >= 2 other members is a junction.
      std::erase(level, sub.failure());
      if (level.size() >= 2) {
        junction_members = level;
        break;
      }
    }
    if (junction_members.empty()) break;
    const std::vector<PredicateId>* junction = &junction_members;

    // Algorithm 2 lines 8-12: one branch per junction member P --
    // P plus all descendants of P that descend from no other member.
    items_.clear();
    for (PredicateId p : *junction) {
      Item item;
      item.preds.push_back(p);
      for (PredicateId q : sub.Descendants(p)) {
        if (q == sub.failure()) continue;
        bool exclusive = true;
        for (PredicateId other : *junction) {
          if (other != p && sub.Reaches(other, q)) {
            exclusive = false;
            break;
          }
        }
        if (exclusive) item.preds.push_back(q);
      }
      items_.push_back(std::move(item));
    }
    decisions_.assign(items_.size(), ItemDecision::kUndecided);

    // Binary search for the (at most one) causal branch: under the
    // deterministic-effect assumption the causal path continues through one
    // branch, so log2(B) interventions resolve a B-way junction (S 6.3.1).
    std::vector<size_t> live(items_.size());
    for (size_t i = 0; i < live.size(); ++i) live[i] = i;
    while (live.size() > 1) {
      if (BudgetSpent()) {
        budget_exhausted_ = true;
        break;
      }
      const size_t half = (live.size() + 1) / 2;
      std::vector<size_t> tested(live.begin(), live.begin() + half);
      std::vector<size_t> rest(live.begin() + half, live.end());
      AID_ASSIGN_OR_RETURN(TargetRunResult result,
                           Intervene(tested, "branch"));
      const bool failure_stopped = !result.AnyFailed();
      const std::vector<size_t>& losers = failure_stopped ? rest : tested;
      for (size_t i : losers) Decide(i, ItemDecision::kSpurious);
      live = failure_stopped ? tested : rest;
      if (options_.predicate_pruning) {
        InterventionalPruning(tested, result);
        // Pruning may have decided survivors; drop them from `live`.
        live.erase(std::remove_if(live.begin(), live.end(),
                                  [&](size_t i) {
                                    return decisions_[i] ==
                                           ItemDecision::kSpurious;
                                  }),
                   live.end());
        if (live.empty()) break;
      }
    }

    // Remove the losing branches' predicates from the candidate set.
    std::unordered_set<PredicateId> removed;
    for (size_t i = 0; i < items_.size(); ++i) {
      if (decisions_[i] == ItemDecision::kSpurious) {
        for (PredicateId id : items_[i].preds) removed.insert(id);
      }
    }
    std::vector<PredicateId> next;
    next.reserve(remaining.size());
    for (PredicateId id : remaining) {
      if (!removed.count(id)) next.push_back(id);
    }
    if (budget_exhausted_) {
      // The budget ran out mid-junction: keep what the partial search
      // decided and stop pruning (GIWP will bail the same way).
      remaining = std::move(next);
      break;
    }
    AID_CHECK(next.size() < remaining.size());  // progress is guaranteed
    remaining = std::move(next);
  }
  candidates_ = remaining;
  return Status::OK();
}

Result<TargetRunResult> CausalPathDiscovery::Intervene(
    const std::vector<size_t>& item_indexes, const char* phase) {
  std::vector<PredicateId> preds;
  for (size_t i : item_indexes) {
    preds.insert(preds.end(), items_[i].preds.begin(), items_[i].preds.end());
  }
  std::sort(preds.begin(), preds.end());
  preds.erase(std::unique(preds.begin(), preds.end()), preds.end());

  if (options_.observer) {
    options_.observer->OnRoundStarted(report_.rounds + 1, preds);
  }
  // The round span is published as the ACTIVE PARENT while the dispatch is
  // in flight: worker threads (and the wire clients under them) parent
  // their chunk/trial spans under it without the engine threading ids
  // through the InterventionTarget interface. Rounds are serial, so one
  // slot suffices.
  ScopedSpan round_span;
  if (options_.telemetry != nullptr &&
      options_.telemetry->tracer() != nullptr) {
    round_span = ScopedSpan(options_.telemetry->tracer(), "round",
                            phase_span_);
    options_.telemetry->SetActiveParent(round_span.id());
  }
  Result<TargetRunResult> result =
      options_.budget.enabled
          ? RunBudgetedRound(preds, round_span.id())
          : target_->RunIntervened(preds, options_.trials_per_intervention);
  if (options_.telemetry != nullptr) options_.telemetry->SetActiveParent(0);
  round_span.End();
  if (!result.ok()) return result.status();

  RecordRound(preds, *result, phase);
  return result;
}

Result<TargetRunResult> CausalPathDiscovery::RunBudgetedRound(
    const std::vector<PredicateId>& preds, uint64_t parent_span) {
  Tracer* tracer =
      options_.telemetry != nullptr ? options_.telemetry->tracer() : nullptr;
  int planned;
  {
    ScopedSpan plan_span(tracer, "budget_plan", parent_span);
    const int cap = options_.budget.max_trials_per_round > 0
                        ? options_.budget.max_trials_per_round
                        : options_.trials_per_intervention;
    planned = planner_->PlanTrials(preds, cap);
  }
  planned = ClampToRemainingBudget(planned);

  // Trials run one at a time so a failing trial -- decisive proof the
  // group is spurious -- ends the round immediately. Replicable targets
  // make this equivalent, trial for trial, to one RunIntervened(preds, k)
  // call truncated at the failure.
  const uint64_t micros_before = target_->health().trial_micros;
  TargetRunResult round;
  bool failed = false;
  int used = 0;
  while (used < planned && !failed) {
    AID_ASSIGN_OR_RETURN(TargetRunResult one,
                         target_->RunIntervened(preds, 1));
    used += one.logs.empty() ? 1 : static_cast<int>(one.logs.size());
    for (PredicateLog& log : one.logs) {
      failed = failed || log.failed;
      round.logs.push_back(std::move(log));
    }
  }
  planner_->ObserveRoundCost(target_->health().trial_micros - micros_before,
                             used);

  report_.budgeted_trials_allocated += static_cast<uint64_t>(used);
  report_.budgeted_trials_saved +=
      static_cast<int64_t>(options_.trials_per_intervention) - used;
  if (failed) {
    if (used < planned) ++report_.budget_early_stops;
    belief_->ObservePersistingRound(used - 1);
  } else {
    belief_->ObserveStoppedRound(preds, used);
  }
  return round;
}

int CausalPathDiscovery::ClampToRemainingBudget(int planned) {
  if (options_.budget.max_executions == 0) return planned;
  const uint64_t spent = target_->executions() - run_start_executions_;
  if (spent >= options_.budget.max_executions) return 1;  // callers guard
  const uint64_t remaining = options_.budget.max_executions - spent;
  if (static_cast<uint64_t>(planned) <= remaining) return planned;
  // A truncated allocation still runs (partial evidence beats none); the
  // loops notice the spent budget before the next round.
  return static_cast<int>(remaining);
}

bool CausalPathDiscovery::BudgetSpent() const {
  if (!options_.budget.enabled || options_.budget.max_executions == 0) {
    return false;
  }
  return target_->executions() - run_start_executions_ >=
         options_.budget.max_executions;
}

void CausalPathDiscovery::RecordRound(const std::vector<PredicateId>& preds,
                                      const TargetRunResult& result,
                                      const char* phase) {
  ++report_.rounds;
  if (options_.telemetry != nullptr) {
    options_.telemetry->metrics().GetCounter("aid_rounds_total")->Add(1);
  }
  InterventionRound round;
  round.intervened = preds;
  round.failure_stopped = !result.AnyFailed();
  round.phase = phase;
  if (options_.observer) {
    ObservedRound observed;
    observed.round = report_.rounds;
    observed.intervened = preds;
    observed.failure_stopped = round.failure_stopped;
    observed.phase = phase;
    options_.observer->OnRoundFinished(observed);
  }
  report_.history.push_back(std::move(round));
}

bool CausalPathDiscovery::ItemReachesItem(size_t a, size_t b) const {
  for (PredicateId pa : items_[a].preds) {
    for (PredicateId pb : items_[b].preds) {
      if (dag_->Reaches(pa, pb)) return true;
    }
  }
  return false;
}

bool CausalPathDiscovery::ItemObserved(const Item& item,
                                       const PredicateLog& log) const {
  // A branch is a disjunction over its predicates (Algorithm 2 line 10).
  for (PredicateId id : item.preds) {
    if (log.Has(id)) return true;
  }
  return false;
}

void CausalPathDiscovery::InterventionalPruning(
    const std::vector<size_t>& intervened, const TargetRunResult& result) {
  std::unordered_set<size_t> intervened_set(intervened.begin(),
                                            intervened.end());
  for (size_t i = 0; i < items_.size(); ++i) {
    if (decisions_[i] != ItemDecision::kUndecided) continue;
    if (intervened_set.count(i)) continue;
    // Ancestor guard (Definition 2): an ancestor of an intervened predicate
    // may have had its causal influence muted by the intervention.
    bool is_ancestor = false;
    for (size_t j : intervened) {
      if (ItemReachesItem(i, j)) {
        is_ancestor = true;
        break;
      }
    }
    if (is_ancestor) continue;

    for (const PredicateLog& log : result.logs) {
      // A crashed or timed-out trial carries only a partial observation set
      // (whatever the subject streamed before dying); concluding "P was
      // absent" from it would prune soundly-causal predicates. Its failed
      // flag still feeds the group verdict (AnyFailed), just not Definition
      // 2's absence reasoning.
      if (!log.complete()) continue;
      const bool observed = ItemObserved(items_[i], log);
      if ((observed && !log.failed) || (!observed && log.failed)) {
        Decide(i, ItemDecision::kSpurious);
        break;
      }
    }
  }
}

}  // namespace aid
