#include "core/engine.h"

#include "common/logging.h"
#include "core/discovery_state.h"

namespace aid {

Status ValidateTrialsPerIntervention(int trials) {
  if (trials < 1) {
    return Status::InvalidArgument(
        "trials_per_intervention must be >= 1 (each round needs at least "
        "one execution), got " + std::to_string(trials));
  }
  if (trials > kMaxTrialsPerIntervention) {
    return Status::InvalidArgument(
        "trials_per_intervention must be <= " +
        std::to_string(kMaxTrialsPerIntervention) +
        " (each trial is a full application execution), got " +
        std::to_string(trials));
  }
  return Status::OK();
}

CausalPathDiscovery::CausalPathDiscovery(const AcDag* dag,
                                         InterventionTarget* target,
                                         EngineOptions options)
    : dag_(dag), target_(target), options_(options), rng_(options.seed) {}

Result<DiscoveryReport> CausalPathDiscovery::Run() {
  AID_RETURN_IF_ERROR(ValidateDiscoveryOptions(options_));
  DiscoveryState state(dag_, options_, rng_);
  while (true) {
    AID_ASSIGN_OR_RETURN(DiscoveryAction action, state.NextAction());
    if (action.kind == DiscoveryAction::Kind::kDone) break;
    AID_ASSIGN_OR_RETURN(ActionOutcome outcome,
                         ExecuteDiscoveryAction(state, action, target_));
    AID_RETURN_IF_ERROR(state.Feed(action, outcome));
  }
  rng_ = state.rng();
  return state.Finalize();
}

}  // namespace aid
