// The AID intervention engine: causality-guided causal path discovery.
//
// Implements the paper's Section 5:
//   * Algorithm 1 (GIWP)  -- group intervention with pruning: divide and
//     conquer over the candidate predicates in topological order; a stopped
//     failure certifies a causal predicate in the intervened group; a
//     persisting failure marks the whole group spurious; every round's logs
//     additionally prune candidates via Definition 2;
//   * Algorithm 2 (Branch-Prune) -- at each junction of the AC-DAG, binary-
//     search the branches (at most one can carry the causal path under the
//     deterministic-effect assumption) to reduce the DAG to a chain;
//   * Algorithm 3 (Causal-Path-Discovery) -- optional branch pruning, then
//     GIWP over what remains.
//
// The engine variants of the paper's Section 7.2 are option presets:
//   AID      = topological order + branch pruning + predicate pruning
//   AID-P    = AID without predicate pruning
//   AID-P-B  = AID without predicate or branch pruning (topological order)
//   TAGT     = random order, no pruning (traditional adaptive group testing)

#ifndef AID_CORE_ENGINE_H_
#define AID_CORE_ENGINE_H_

#include <string>
#include <vector>

#include "analysis/summary.h"
#include "budget/options.h"
#include "causal/acdag.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/observer.h"
#include "core/target.h"

namespace aid {

class Telemetry;       // telemetry/telemetry.h; nullable everywhere below

/// Upper bound on trials_per_intervention: past this a trial count is a
/// typo, not robustness (each trial is a full application execution).
inline constexpr int kMaxTrialsPerIntervention = 100000;

/// InvalidArgument outside [1, kMaxTrialsPerIntervention], naming the
/// offending value (the trials analog of ValidateParallelism).
Status ValidateTrialsPerIntervention(int trials);

struct EngineOptions {
  /// Group candidates by AC-DAG topological order (false: random order, as
  /// in traditional group testing).
  bool topological_order = true;
  /// Apply Definition 2 interventional pruning after every round.
  bool predicate_pruning = true;
  /// Run Algorithm 2 before the final GIWP pass.
  bool branch_pruning = true;
  /// Intervene on one predicate at a time instead of halving groups -- the
  /// preferable strategy when D >= N / log2(N) (paper Section 2).
  bool linear_scan = false;
  /// Executions per intervention round (paper footnote 1; deterministic
  /// model targets need only 1).
  int trials_per_intervention = 1;
  /// Seed for random ordering / tie-breaking.
  uint64_t seed = 0x41d5eedULL;
  /// In linear-scan mode, submit the whole remaining round as one
  /// InterventionTarget::RunInterventionsBatch call instead of one
  /// RunIntervened call per predicate. Decisions are identical on
  /// deterministic targets; interventions already answered by Definition 2
  /// pruning become speculative executions instead of being skipped --
  /// still counted in DiscoveryReport::executions but reported separately
  /// as DiscoveryReport::speculative_executions -- so `executions` may be
  /// higher while wall-clock drops on backends with per-call overhead.
  bool batched_dispatch = false;
  /// Target-level parallelism this engine run is configured for. The engine
  /// spawns no threads itself -- exec::ParallelTarget does -- but
  /// parallelism > 1 implies batched linear-scan dispatch (a parallel
  /// backend is pointless when rounds arrive one span at a time), and
  /// aid::Session propagates the value to the TargetFactory so presets
  /// build replica pools (see src/exec/). Default 1 = serial dispatch,
  /// today's behavior.
  int parallelism = 1;
  /// Progress callbacks (non-owning; may be null). The engine reports the
  /// kBranchPruning / kGiwp phase changes, every round, and every predicate
  /// decision.
  Observer* observer = nullptr;
  /// Telemetry sink (non-owning; may be null = zero overhead). With a sink,
  /// the engine opens a "discovery" span over the whole run, phase spans
  /// ("branch_prune" / "giwp"), a "round" span per intervention (published
  /// as the active parent so substrate-side trial spans nest under it), and
  /// writes its DiscoveryReport deltas into the aid_* counters at the end
  /// of Run() -- so the metrics snapshot matches the report exactly.
  /// Telemetry never changes a decision: reports stay bit-identical.
  Telemetry* telemetry = nullptr;
  /// Adaptive intervention budgeting (src/budget/): replace the fixed
  /// trials_per_intervention with SPRT early stopping over a per-candidate
  /// causal posterior -- a failing trial ends the round decisively after 1
  /// execution, all-pass rounds run only as many trials as the flakiness
  /// estimate demands (never more than trials_per_intervention unless
  /// budget.max_trials_per_round raises the cap), and an optional global
  /// execution budget degrades gracefully into a best-effort report with
  /// per-candidate confidence. Disabled by default; with budgeting off the
  /// engine's behavior and reports are bit-identical to before the
  /// subsystem existed. Usually set through
  /// SessionBuilder::WithAdaptiveBudget.
  BudgetOptions budget;

  static EngineOptions Aid() { return EngineOptions{}; }
  static EngineOptions AidNoPredicatePruning() {
    EngineOptions o;
    o.predicate_pruning = false;
    return o;
  }
  static EngineOptions AidNoPruning() {
    EngineOptions o;
    o.predicate_pruning = false;
    o.branch_pruning = false;
    return o;
  }
  static EngineOptions Tagt() {
    EngineOptions o;
    o.topological_order = false;
    o.predicate_pruning = false;
    o.branch_pruning = false;
    return o;
  }
  /// One-predicate-at-a-time repair (with pruning still available).
  static EngineOptions Linear() {
    EngineOptions o;
    o.linear_scan = true;
    o.branch_pruning = false;
    return o;
  }
};

/// One intervention round, for reports and debugging.
struct InterventionRound {
  std::vector<PredicateId> intervened;
  bool failure_stopped = false;
  std::string phase;  ///< "branch" or "giwp"
};

/// The outcome of causal path discovery.
struct DiscoveryReport {
  /// Causal predicates in topological order, ending with the failure
  /// predicate: the paper's causal path <C0, .., Cn = F>. C0 is the root
  /// cause.
  std::vector<PredicateId> causal_path;
  /// Predicates proven non-causal.
  std::vector<PredicateId> spurious;
  /// Number of intervention rounds (the paper's "#interventions"). 64-bit
  /// like `executions`: a long-lived multi-tenant service accumulates
  /// rounds across sessions far past what int can hold.
  uint64_t rounds = 0;
  /// Total application executions the discovery run cost, speculative ones
  /// included (rounds * trials + speculative_executions on targets that run
  /// exactly `trials` executions per span). 64-bit end-to-end: fleet-scale
  /// replica pools with high trial counts overflow int.
  uint64_t executions = 0;
  /// The subset of `executions` spent on speculative work: spans submitted
  /// by batched dispatch whose item was already decided (by Definition 2
  /// pruning) before their result was consumed. Those spans execute but are
  /// not rounds -- the wall-clock price of shipping a whole scan to a
  /// batching/parallel backend at once.
  uint64_t speculative_executions = 0;
  /// Process-isolation health deltas over this run (see TargetHealth): how
  /// many times a subject process was respawned, and how many trials were
  /// recorded failing because the subject crashed or hit its deadline. All
  /// zero for in-process targets.
  uint64_t respawns = 0;
  uint64_t crashed_trials = 0;
  uint64_t timed_out_trials = 0;
  /// Dispatch-schedule deltas over this run (see DispatchStats): how many
  /// intervened trials each replica slot executed, how many chunks fast
  /// replicas stole from queues behind stragglers, and how long workers
  /// idled at round barriers waiting for the slowest replica. Empty/zero on
  /// serial targets. Observational only -- the schedule never changes the
  /// report's bytes, so none of this is part of SameDiscoveryOutcome.
  std::vector<uint64_t> replica_trials;
  uint64_t steals = 0;
  uint64_t straggler_wait_micros = 0;
  std::vector<InterventionRound> history;
  /// True iff the causal predicates are totally ordered by AC-DAG
  /// reachability -- the Definition 1 chain. False signals a violation of
  /// the single-root-cause / deterministic-effect assumptions (e.g. a
  /// conjunctive root cause on separate branches, Section 5.1), in which
  /// case the "path" is the set of counterfactual causes in topological
  /// order rather than a proper chain.
  bool path_is_chain = true;
  /// What the static analysis pass did for this discovery (ran == false
  /// when analysis was off). Like the dispatch stats above, this describes
  /// how the result was obtained, not the result itself, so it is NOT part
  /// of SameDiscoveryOutcome -- analysis-on vs analysis-off runs that make
  /// identical decisions still compare equal.
  AnalysisSummary analysis;
  /// Adaptive budgeting accounting (all zero/empty with budgeting off, so
  /// unbudgeted reports stay bit-identical to earlier releases; none of it
  /// is part of SameDiscoveryOutcome). `budgeted_trials_allocated` counts
  /// trials the budgeter actually ran; `budgeted_trials_saved` is the
  /// signed difference against the fixed-trial baseline (rounds *
  /// trials_per_intervention), negative only when max_trials_per_round
  /// raises the cap above the fixed count; `budget_early_stops` counts
  /// rounds a decisive failure ended before their allocation was spent.
  uint64_t budgeted_trials_allocated = 0;
  int64_t budgeted_trials_saved = 0;
  uint64_t budget_early_stops = 0;
  /// True iff BudgetOptions::max_executions ran out with candidates still
  /// undecided: those predicates appear in neither causal_path nor
  /// spurious, and `confidence` carries their posteriors instead.
  bool budget_exhausted = false;
  /// Per-candidate causal posterior at the end of a budgeted run (1 =
  /// certified causal, 0 = certified spurious, in between = undecided when
  /// the budget ran out). Empty with budgeting off.
  std::vector<PredicateConfidence> confidence;

  /// True iff discovery certified at least one causal predicate. The causal
  /// path always ends with the failure predicate F, so a path of size 1 is
  /// just <F>: the engine proved every candidate spurious (or had none) and
  /// there is no root cause to report.
  bool has_root_cause() const { return causal_path.size() >= 2; }

  /// Root cause: the first causal predicate C0 of the path <C0, .., Cn = F>.
  /// Returns kInvalidPredicate iff !has_root_cause() -- callers rendering a
  /// report should branch on has_root_cause() rather than compare ids.
  PredicateId root_cause() const {
    return has_root_cause() ? causal_path.front() : kInvalidPredicate;
  }
};

/// True when two discovery runs made identical decisions at identical
/// cost: same causal path, spurious set, round count, and (speculative)
/// execution counts. This is THE bit-identical contract the execution
/// substrates (exec/ pools, proc/ subprocesses, net/ fleets) are held to
/// against a serial in-process run; benches and tests should compare
/// through it rather than hand-picking fields. Health counters and dispatch
/// stats (steals, per-replica trial counts, straggler waits) are
/// deliberately excluded: they describe substrate turbulence and scheduling
/// choices, not decisions.
inline bool SameDiscoveryOutcome(const DiscoveryReport& a,
                                 const DiscoveryReport& b) {
  return a.causal_path == b.causal_path && a.spurious == b.spurious &&
         a.rounds == b.rounds && a.executions == b.executions &&
         a.speculative_executions == b.speculative_executions;
}

/// Discovers the causal path explaining the failure in `dag` by intervening
/// on `target`. The AC-DAG nodes must be intervenable on the target (the
/// pipeline filters unsafe predicates before building the DAG).
///
/// Run() is a thin driver over the resumable round-state machine in
/// core/discovery_state.h: plan (DiscoveryState::NextAction), execute
/// (ExecuteDiscoveryAction -- the only target I/O), absorb
/// (DiscoveryState::Feed), repeat. Callers that need to interleave many
/// discoveries, or checkpoint one mid-flight, drive a DiscoveryState
/// directly; the reports are bit-identical either way.
class CausalPathDiscovery {
 public:
  CausalPathDiscovery(const AcDag* dag, InterventionTarget* target,
                      EngineOptions options = {});

  /// Runs Algorithm 3. Returns the discovery report.
  Result<DiscoveryReport> Run();

 private:
  const AcDag* dag_;
  InterventionTarget* target_;
  EngineOptions options_;
  /// The engine's RNG stream. Each Run() hands the current position to its
  /// DiscoveryState and copies the advanced position back, so repeated
  /// discoveries keep consuming one stream (TAGT's random order counts on
  /// it).
  Rng rng_;
};

}  // namespace aid

#endif  // AID_CORE_ENGINE_H_
