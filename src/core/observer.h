// Observer: progress callbacks for the AID pipeline.
//
// Defined in core/ so the engine depends only on core headers; api/observer.h
// re-exports it as part of the stable public surface. An Observer attached
// to an aid::Session (or directly to EngineOptions) is notified as the
// pipeline moves through its phases and as the intervention engine runs
// rounds and certifies predicates. This replaces the ad-hoc report plumbing
// each workload used to carry: progress printing, transcripts, and live
// metrics all hang off the same four hooks.
//
// Callbacks are invoked synchronously on the thread driving the session;
// implementations must not re-enter the session. This holds under parallel
// dispatch too: exec::ParallelTarget joins its workers inside each target
// call, and the engine delivers every callback from the driving thread
// afterwards, so round callbacks stay serialized and existing observers
// need no locking. The default implementation of every hook is a no-op, so
// observers override only what they need.

#ifndef AID_CORE_OBSERVER_H_
#define AID_CORE_OBSERVER_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "predicates/predicate.h"

namespace aid {

/// The phases of a debugging session, in execution order. The engine itself
/// reports only kBranchPruning / kGiwp; aid::Session reports the rest.
enum class SessionPhase {
  kObservation,            ///< running the app, collecting predicate logs
  kStatisticalDebugging,   ///< fully-discriminative predicate filtering
  kAcDagConstruction,      ///< temporal-precedence DAG construction
  kBranchPruning,          ///< Algorithm 2 junction resolution
  kGiwp,                   ///< Algorithm 1 group intervention with pruning
  kFinished,
};

inline std::string_view SessionPhaseName(SessionPhase phase) {
  switch (phase) {
    case SessionPhase::kObservation: return "observation";
    case SessionPhase::kStatisticalDebugging: return "statistical-debugging";
    case SessionPhase::kAcDagConstruction: return "acdag-construction";
    case SessionPhase::kBranchPruning: return "branch-pruning";
    case SessionPhase::kGiwp: return "giwp";
    case SessionPhase::kFinished: return "finished";
  }
  return "unknown";
}

/// One finished intervention round, as seen by observers.
struct ObservedRound {
  uint64_t round = 0;                   ///< 1-based round number
  std::vector<PredicateId> intervened;  ///< predicates forced to success
  bool failure_stopped = false;         ///< no execution failed
  std::string_view phase;               ///< "branch" or "giwp"
};

class Observer {
 public:
  virtual ~Observer() = default;

  /// The pipeline entered `phase`.
  virtual void OnPhaseChanged(SessionPhase phase) { (void)phase; }

  /// An intervention round is about to execute with these predicates
  /// forced. Under EngineOptions::batched_dispatch the whole scan executes
  /// as one batch first and rounds are delivered as their results are
  /// consumed, so this hook then fires after the physical execution --
  /// still immediately before the matching OnRoundFinished.
  virtual void OnRoundStarted(uint64_t round,
                              const std::vector<PredicateId>& intervened) {
    (void)round;
    (void)intervened;
  }

  /// An intervention round finished.
  virtual void OnRoundFinished(const ObservedRound& round) { (void)round; }

  /// `id` was certified causal (true) or proven spurious (false).
  virtual void OnPredicateDecided(PredicateId id, bool causal) {
    (void)id;
    (void)causal;
  }
};

}  // namespace aid

#endif  // AID_CORE_OBSERVER_H_
