// VmTarget: an InterventionTarget backed by a real VM program.
//
// Owns the full observation pipeline of the paper's Figure 1:
//   1. run the instrumented program across seeds until enough successful and
//      failed executions are collected (the "50 + 50 runs" of Section 7);
//   2. group failures by signature and keep the dominant group (paper
//      Assumption 1 discussion: failure trackers bucket failures by
//      metadata; AID treats each group separately);
//   3. extract predicate logs (aid::predicates);
//   4. on demand, build the AC-DAG over the fully-discriminative, safely
//      intervenable predicates (aid::sd + aid::inject + aid::causal).
//
// RunIntervened recompiles the requested predicates into fault injections
// and re-executes the program on known-failing seeds, so a persisting root
// cause has every chance to re-manifest (footnote 1 of the paper).

#ifndef AID_CORE_VM_TARGET_H_
#define AID_CORE_VM_TARGET_H_

#include <memory>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/summary.h"
#include "causal/acdag.h"
#include "core/target.h"
#include "exec/replicable.h"
#include "predicates/extractor.h"
#include "runtime/program.h"
#include "runtime/vm.h"

namespace aid {

struct VmTargetOptions {
  /// First seed of the observation scan; seeds increase from here.
  uint64_t first_seed = 1;
  /// Observation stops once both quotas are met.
  int min_successes = 50;
  int min_failures = 50;
  /// Hard cap on scanned seeds (programs may fail rarely).
  int max_seed_scan = 20000;
  ExtractionOptions extraction;
  VmOptions vm;
  /// Static analysis pass (off by default): lint before running, prune
  /// dependence-free AC-DAG edges, exclude infeasible predicates from SD.
  AnalysisOptions analysis;
};

class VmTarget : public ReplicableTarget {
 public:
  /// Runs the observation phase. Fails if the seed scan cannot produce the
  /// requested mix of successful and failed executions.
  static Result<std::unique_ptr<VmTarget>> Create(const Program* program,
                                                  const VmTargetOptions& options);

  /// Builds the AC-DAG: fully-discriminative predicates, minus those that
  /// cannot be safely intervened (Section 3.3), minus those with no path to
  /// the failure predicate (Section 4).
  Result<AcDag> BuildAcDag(
      const PrecedenceConfig& config = PrecedenceConfig::Default()) const;

  Result<TargetRunResult> RunIntervened(
      const std::vector<PredicateId>& intervened, int trials) override;

  /// Replica for parallel dispatch: copies the frozen observation state
  /// (extractor catalog + baselines, failing seeds, primary signature)
  /// without re-running the seed scan. Each replica recompiles intervention
  /// plans and runs its own VM, so replicas execute concurrently without
  /// sharing mutable state; the replica's executions() counter starts at 0.
  Result<std::unique_ptr<ReplicableTarget>> Clone() const override;

  /// Positions the round-robin failing-seed cursor at the global trial
  /// index, making the VM seeds of a span a function of its position alone.
  void SeekTrial(uint64_t trial_index) override {
    intervened_runs_ = trial_index;
  }
  uint64_t trial_position() const override { return intervened_runs_; }

  uint64_t executions() const override { return executions_; }

  const PredicateExtractor& extractor() const { return extractor_; }
  const Program& program() const { return *program_; }
  /// Observation-phase predicate logs (successes relabeled per signature).
  const std::vector<PredicateLog>& observation_logs() const {
    return extractor_.logs();
  }
  int observed_failures() const { return static_cast<int>(failing_seeds_.size()); }
  const FailureSignature& primary_signature() const { return signature_; }

  /// What the static analysis did (ran == false when analysis is off).
  /// The pruning counters are filled in by BuildAcDag.
  const AnalysisSummary& analysis_summary() const { return analysis_summary_; }
  /// The program analysis, when options.analysis.enabled; else null.
  const ProgramAnalysis* analysis() const { return analysis_.get(); }

 private:
  VmTarget(const Program* program, const VmTargetOptions& options)
      : program_(program), options_(options), extractor_(options.extraction) {}

  const Program* program_;
  VmTargetOptions options_;
  PredicateExtractor extractor_;
  std::vector<uint64_t> failing_seeds_;
  FailureSignature signature_;
  uint64_t executions_ = 0;
  uint64_t intervened_runs_ = 0;  ///< round-robin cursor into failing seeds
  /// Shared across clones (immutable once built).
  std::shared_ptr<const ProgramAnalysis> analysis_;
  /// Mutable: BuildAcDag (const, like every read of the frozen observation
  /// state) records what pruning achieved.
  mutable AnalysisSummary analysis_summary_;
};

}  // namespace aid

#endif  // AID_CORE_VM_TARGET_H_
