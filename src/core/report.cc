#include "core/report.h"

#include <sstream>

#include "common/strings.h"

namespace aid {
namespace {

std::string Describe(const AcDag& dag, PredicateId id,
                     const ReportRenderOptions& options) {
  if (dag.catalog() == nullptr) return StrFormat("predicate %d", id);
  return dag.catalog()->Describe(id, options.methods, options.objects);
}

}  // namespace

std::string RenderReport(const DiscoveryReport& report, const AcDag& dag,
                         const ReportRenderOptions& options) {
  std::ostringstream out;
  if (report.root_cause() == kInvalidPredicate) {
    out << "no root cause identified (no candidate predicate was "
           "counterfactual for the failure)\n";
  } else {
    out << "root cause:\n  " << Describe(dag, report.root_cause(), options)
        << "\n";
  }

  out << "causal explanation path:\n";
  for (size_t i = 0; i < report.causal_path.size(); ++i) {
    out << StrFormat("  %zu. %s\n", i + 1,
                     Describe(dag, report.causal_path[i], options).c_str());
  }
  if (!report.path_is_chain) {
    out << "WARNING: the causal predicates are not totally ordered -- the "
           "single-root-cause / deterministic-effect assumptions look "
           "violated (e.g. a conjunctive root cause); the list above is the "
           "set of counterfactual causes in topological order.\n";
  }

  if (report.speculative_executions > 0) {
    out << StrFormat(
        "interventions: %llu rounds, %llu executions (%llu speculative)\n",
        static_cast<unsigned long long>(report.rounds),
        static_cast<unsigned long long>(report.executions),
        static_cast<unsigned long long>(report.speculative_executions));
  } else {
    out << StrFormat("interventions: %llu rounds, %llu executions\n",
                     static_cast<unsigned long long>(report.rounds),
                     static_cast<unsigned long long>(report.executions));
  }

  if (report.budgeted_trials_allocated > 0 || report.budget_exhausted) {
    out << StrFormat(
        "adaptive budgeting: %llu trials run, %lld saved vs fixed-trial, "
        "%llu early stops\n",
        static_cast<unsigned long long>(report.budgeted_trials_allocated),
        static_cast<long long>(report.budgeted_trials_saved),
        static_cast<unsigned long long>(report.budget_early_stops));
  }
  if (report.budget_exhausted) {
    out << "WARNING: execution budget exhausted -- this is a best-effort "
           "report; unresolved candidates and posterior confidence:\n";
    for (const PredicateConfidence& c : report.confidence) {
      if (c.causal_posterior <= 0.0 || c.causal_posterior >= 1.0) {
        continue;  // certified verdicts are reported above
      }
      out << StrFormat("  - %s: P(causal) = %.2f\n",
                       Describe(dag, c.id, options).c_str(),
                       c.causal_posterior);
    }
  }

  if (report.analysis.ran) {
    out << StrFormat(
        "static analysis: pruned %llu of %llu AC-DAG edges (%llu of %llu "
        "nodes); %llu infeasible predicates excluded; lint: %llu errors, "
        "%llu warnings\n",
        static_cast<unsigned long long>(report.analysis.edges_pruned),
        static_cast<unsigned long long>(report.analysis.edges_before),
        static_cast<unsigned long long>(report.analysis.nodes_pruned),
        static_cast<unsigned long long>(report.analysis.nodes_before),
        static_cast<unsigned long long>(report.analysis.infeasible_predicates),
        static_cast<unsigned long long>(report.analysis.lint_errors),
        static_cast<unsigned long long>(report.analysis.lint_warnings));
  }

  if (report.respawns > 0 || report.crashed_trials > 0 ||
      report.timed_out_trials > 0) {
    out << StrFormat(
        "process isolation: %llu crashed trials, %llu timed-out trials, "
        "%llu subject respawns\n",
        static_cast<unsigned long long>(report.crashed_trials),
        static_cast<unsigned long long>(report.timed_out_trials),
        static_cast<unsigned long long>(report.respawns));
  }

  if (report.replica_trials.size() > 1) {
    // The scheduler's telemetry: how the round work actually spread over
    // the replica pool. Purely observational -- placement and stealing
    // never change the decisions above.
    out << StrFormat("parallel dispatch: %zu replicas, trials [",
                     report.replica_trials.size());
    for (size_t i = 0; i < report.replica_trials.size(); ++i) {
      if (i > 0) out << ", ";
      out << report.replica_trials[i];
    }
    out << StrFormat(
        "], %llu chunks stolen, %.1f ms straggler wait\n",
        static_cast<unsigned long long>(report.steals),
        static_cast<double>(report.straggler_wait_micros) / 1000.0);
  }

  if (options.include_spurious && !report.spurious.empty()) {
    out << "proven spurious:\n";
    for (PredicateId id : report.spurious) {
      out << "  - " << Describe(dag, id, options) << "\n";
    }
  }

  if (options.include_history) {
    out << "intervention transcript:\n";
    for (size_t i = 0; i < report.history.size(); ++i) {
      const InterventionRound& round = report.history[i];
      out << StrFormat("  %zu. [%s] {", i + 1, round.phase.c_str());
      for (size_t j = 0; j < round.intervened.size(); ++j) {
        if (j > 0) out << "; ";
        out << Describe(dag, round.intervened[j], options);
      }
      out << "} -> failure " << (round.failure_stopped ? "stopped" : "persists")
          << "\n";
    }
  }
  return out.str();
}

}  // namespace aid
