#include "core/vm_target.h"

#include <algorithm>
#include <map>

#include "common/strings.h"
#include "inject/compiler.h"
#include "sd/statistical_debugger.h"

namespace aid {

Result<std::unique_ptr<VmTarget>> VmTarget::Create(
    const Program* program, const VmTargetOptions& options) {
  if (program == nullptr) {
    return Status::InvalidArgument("program must not be null");
  }
  auto target = std::unique_ptr<VmTarget>(new VmTarget(program, options));

  if (options.analysis.enabled) {
    // Lint before the first execution: a malformed program should fail
    // fast with a diagnostic instead of crashing mid-scan.
    auto analysis =
        std::make_shared<const ProgramAnalysis>(ProgramAnalysis::Analyze(*program));
    target->analysis_summary_.ran = true;
    target->analysis_summary_.lint_errors = analysis->error_count();
    target->analysis_summary_.lint_warnings = analysis->warning_count();
    if (options.analysis.lint_programs) {
      AID_RETURN_IF_ERROR(analysis->LintStatus());
    }
    target->analysis_ = std::move(analysis);
  }

  // Seed scan: collect successes and failures.
  Vm vm(program);
  std::vector<ExecutionTrace> successes;
  std::vector<ExecutionTrace> failures;
  std::vector<uint64_t> failure_seeds;
  int scanned = 0;
  for (uint64_t seed = options.first_seed;
       scanned < options.max_seed_scan &&
       (static_cast<int>(successes.size()) < options.min_successes ||
        static_cast<int>(failures.size()) < options.min_failures);
       ++seed, ++scanned) {
    VmOptions vm_options = options.vm;
    vm_options.seed = seed;
    AID_ASSIGN_OR_RETURN(ExecutionTrace trace, vm.Run(vm_options));
    ++target->executions_;
    if (trace.failed()) {
      if (static_cast<int>(failures.size()) < options.min_failures) {
        failure_seeds.push_back(seed);
        failures.push_back(std::move(trace));
      }
    } else if (static_cast<int>(successes.size()) < options.min_successes) {
      successes.push_back(std::move(trace));
    }
  }
  if (successes.empty() || failures.empty()) {
    return Status::FailedPrecondition(StrFormat(
        "observation scan found %zu successes and %zu failures in %d seeds; "
        "need at least one of each",
        successes.size(), failures.size(), scanned));
  }

  // Group failures by signature; keep the dominant group (Assumption 1).
  std::map<std::pair<SymbolId, SymbolId>, int> signature_counts;
  for (const auto& trace : failures) {
    const FailureSignature& sig = trace.failure_signature();
    ++signature_counts[{sig.exception_type, sig.method}];
  }
  std::pair<SymbolId, SymbolId> primary = signature_counts.begin()->first;
  for (const auto& [sig, count] : signature_counts) {
    if (count > signature_counts[primary]) primary = sig;
  }
  target->signature_ = {primary.first, primary.second};

  std::vector<ExecutionTrace> observation = std::move(successes);
  target->failing_seeds_.clear();
  for (size_t i = 0; i < failures.size(); ++i) {
    const FailureSignature& sig = failures[i].failure_signature();
    if (sig.exception_type == primary.first && sig.method == primary.second) {
      observation.push_back(std::move(failures[i]));
      target->failing_seeds_.push_back(failure_seeds[i]);
    }
  }

  AID_RETURN_IF_ERROR(target->extractor_.Observe(observation));
  return target;
}

Result<std::unique_ptr<ReplicableTarget>> VmTarget::Clone() const {
  auto clone = std::unique_ptr<VmTarget>(new VmTarget(program_, options_));
  clone->extractor_ = extractor_;
  clone->failing_seeds_ = failing_seeds_;
  clone->signature_ = signature_;
  clone->intervened_runs_ = intervened_runs_;
  clone->analysis_ = analysis_;
  clone->analysis_summary_ = analysis_summary_;
  return std::unique_ptr<ReplicableTarget>(std::move(clone));
}

Result<AcDag> VmTarget::BuildAcDag(const PrecedenceConfig& config) const {
  // Statically infeasible sites (methods the entry can never reach) leave
  // the statistical-debugging denominators. With an in-process catalog --
  // which only interns dynamically observed predicates -- this is a
  // defensive no-op, but wire-received catalogs make no such promise.
  std::vector<PredicateId> excluded;
  if (analysis_ != nullptr && options_.analysis.exclude_infeasible) {
    excluded = InfeasiblePredicates(*analysis_, extractor_.catalog());
    analysis_summary_.infeasible_predicates = excluded.size();
  }
  AID_ASSIGN_OR_RETURN(StatisticalDebugger sd,
                       StatisticalDebugger::Analyze(
                           extractor_.catalog(), extractor_.logs(), excluded));
  std::vector<PredicateId> discriminative = sd.FullyDiscriminative();

  // Safety filter (Section 3.3): drop predicates AID cannot intervene on
  // without side effects; keep the failure predicate.
  InterventionCompiler compiler(program_, &extractor_.catalog(),
                                &extractor_.baselines());
  std::vector<PredicateId> candidates;
  for (PredicateId id : discriminative) {
    if (id == extractor_.failure_predicate() ||
        compiler.IsSafelyIntervenable(id)) {
      candidates.push_back(id);
    }
  }

  // Dependence-based edge pruning: an AC-DAG edge P -> Q whose methods
  // cannot influence each other (no control/data/spawn/lock channel) is a
  // temporal coincidence; discharging it statically saves the intervention
  // loop the trials it would spend proving Q spurious.
  AcDag::EdgeFilter filter;
  AcDag::PruneStats stats;
  if (analysis_ != nullptr && options_.analysis.prune_edges) {
    const PredicateCatalog* catalog = &extractor_.catalog();
    const PredicateId failure_id = extractor_.failure_predicate();
    const SymbolId failure_method = signature_.method;
    auto methods_by_id =
        std::make_shared<std::vector<std::vector<SymbolId>>>(catalog->size());
    for (size_t i = 0; i < catalog->size(); ++i) {
      auto& methods = (*methods_by_id)[i];
      methods = PredicateMethods(*catalog, static_cast<PredicateId>(i));
      if (methods.empty() && static_cast<PredicateId>(i) == failure_id &&
          failure_method != kInvalidSymbol) {
        methods.push_back(failure_method);
      }
    }
    const ProgramAnalysis* analysis = analysis_.get();
    filter = [analysis, methods_by_id](PredicateId from, PredicateId to) {
      const auto& from_methods = (*methods_by_id)[static_cast<size_t>(from)];
      const auto& to_methods = (*methods_by_id)[static_cast<size_t>(to)];
      // Predicates with no method information stay conservative.
      if (from_methods.empty() || to_methods.empty()) return true;
      for (SymbolId a : from_methods) {
        for (SymbolId b : to_methods) {
          if (analysis->MayInfluence(a, b)) return true;
        }
      }
      return false;
    };
  }
  auto dag = AcDag::Build(&extractor_.catalog(), extractor_.logs(), candidates,
                          extractor_.failure_predicate(), config, filter,
                          filter ? &stats : nullptr);
  if (dag.ok() && filter) {
    analysis_summary_.nodes_before = stats.nodes_before;
    analysis_summary_.nodes_pruned = stats.nodes_pruned;
    analysis_summary_.edges_before = stats.edges_before;
    analysis_summary_.edges_pruned = stats.edges_pruned;
  }
  return dag;
}

Result<TargetRunResult> VmTarget::RunIntervened(
    const std::vector<PredicateId>& intervened, int trials) {
  if (trials < 1) trials = 1;
  InterventionCompiler compiler(program_, &extractor_.catalog(),
                                &extractor_.baselines());
  AID_ASSIGN_OR_RETURN(InterventionPlan plan, compiler.CompilePlan(intervened));

  TargetRunResult result;
  Vm vm(program_);
  for (int i = 0; i < trials; ++i) {
    // Round-robin over the known-failing seeds so the failure has every
    // chance to re-manifest unless the intervention truly represses it.
    const uint64_t seed =
        failing_seeds_[intervened_runs_ % failing_seeds_.size()];
    ++intervened_runs_;
    VmOptions vm_options = options_.vm;
    vm_options.seed = seed;
    AID_ASSIGN_OR_RETURN(ExecutionTrace trace, vm.Run(vm_options, &plan));
    ++executions_;
    AID_ASSIGN_OR_RETURN(PredicateLog log, extractor_.Evaluate(trace));
    // Only the primary failure signature counts as "the" failure; a run that
    // fails differently is a different bug (Assumption 1).
    const FailureSignature& sig = trace.failure_signature();
    const bool primary_failure =
        trace.failed() && sig.exception_type == signature_.exception_type &&
        sig.method == signature_.method;
    log.failed = primary_failure;
    if (!primary_failure) {
      log.observed.erase(extractor_.failure_predicate());
    }
    result.logs.push_back(std::move(log));
  }
  return result;
}

}  // namespace aid
