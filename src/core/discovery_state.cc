#include "core/discovery_state.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "budget/belief.h"
#include "budget/planner.h"
#include "common/logging.h"
#include "telemetry/telemetry.h"
#include "trace/serialize.h"

namespace aid {
namespace {

constexpr uint8_t kStateFormatVersion = 1;
const char* const kPhaseBranch = "branch";
const char* const kPhaseGiwp = "giwp";

void EncodePredVector(const std::vector<PredicateId>& v, WireWriter& w) {
  w.U32(static_cast<uint32_t>(v.size()));
  for (PredicateId id : v) w.I32(id);
}

std::vector<PredicateId> DecodePredVector(WireReader& r) {
  const uint32_t n = r.Count(sizeof(int32_t));
  std::vector<PredicateId> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) out.push_back(r.I32());
  return out;
}

void EncodeIndexVector(const std::vector<size_t>& v, WireWriter& w) {
  w.U32(static_cast<uint32_t>(v.size()));
  for (size_t i : v) w.U64(static_cast<uint64_t>(i));
}

std::vector<size_t> DecodeIndexVector(WireReader& r) {
  const uint32_t n = r.Count(sizeof(uint64_t));
  std::vector<size_t> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) out.push_back(static_cast<size_t>(r.U64()));
  return out;
}

void EncodeLog(const PredicateLog& log, WireWriter& w) {
  w.U8(log.failed ? 1 : 0);
  w.U8(static_cast<uint8_t>(log.outcome));
  // The observation map is unordered; sort by id so equal logs encode to
  // equal bytes (checkpoints of identical states must compare equal).
  std::vector<std::pair<PredicateId, PredicateObservation>> obs(
      log.observed.begin(), log.observed.end());
  std::sort(obs.begin(), obs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.U32(static_cast<uint32_t>(obs.size()));
  for (const auto& [id, o] : obs) {
    w.I32(id);
    w.I64(o.start);
    w.I64(o.end);
  }
}

PredicateLog DecodeLog(WireReader& r) {
  PredicateLog log;
  log.failed = r.U8() != 0;
  log.outcome = static_cast<TrialOutcome>(r.U8());
  const uint32_t n = r.Count(sizeof(int32_t) + 2 * sizeof(int64_t));
  for (uint32_t i = 0; i < n; ++i) {
    const PredicateId id = r.I32();
    PredicateObservation o;
    o.start = r.I64();
    o.end = r.I64();
    log.observed.emplace(id, o);
  }
  return log;
}

void EncodeRunResult(const TargetRunResult& result, WireWriter& w) {
  w.U32(static_cast<uint32_t>(result.logs.size()));
  for (const PredicateLog& log : result.logs) EncodeLog(log, w);
}

TargetRunResult DecodeRunResult(WireReader& r) {
  TargetRunResult result;
  const uint32_t n = r.Count(2);  // failed + outcome bytes at minimum
  result.logs.reserve(n);
  for (uint32_t i = 0; i < n; ++i) result.logs.push_back(DecodeLog(r));
  return result;
}

}  // namespace

Status ValidateDiscoveryOptions(const EngineOptions& options) {
  AID_RETURN_IF_ERROR(
      ValidateTrialsPerIntervention(options.trials_per_intervention));
  if (options.budget.enabled) {
    AID_RETURN_IF_ERROR(ValidateBudgetOptions(options.budget));
  }
  return Status::OK();
}

void EncodeEngineOptions(const EngineOptions& options, WireWriter& w) {
  w.U8(options.topological_order ? 1 : 0);
  w.U8(options.predicate_pruning ? 1 : 0);
  w.U8(options.branch_pruning ? 1 : 0);
  w.U8(options.linear_scan ? 1 : 0);
  w.U8(options.batched_dispatch ? 1 : 0);
  w.I32(options.trials_per_intervention);
  w.I32(options.parallelism);
  w.U64(options.seed);
  const BudgetOptions& b = options.budget;
  w.U8(b.enabled ? 1 : 0);
  w.F64(b.error_tolerance);
  w.F64(b.causal_prior);
  w.I32(b.max_trials_per_round);
  w.U64(b.max_executions);
  w.F64(b.flakiness_prior_alpha);
  w.F64(b.flakiness_prior_beta);
  w.F64(b.topology_discount);
  w.F64(b.cost_ewma_alpha);
  EncodePredVector(b.advice.suspects, w);
  w.F64(b.advice.suspect_prior);
  w.U32(static_cast<uint32_t>(b.advice.sd_scores.size()));
  for (const SuspiciousnessScore& s : b.advice.sd_scores) {
    w.I32(s.id);
    w.F64(s.score);
  }
  w.F64(b.advice.sd_weight);
}

Result<EngineOptions> DecodeEngineOptions(WireReader& r) {
  EngineOptions o;
  o.topological_order = r.U8() != 0;
  o.predicate_pruning = r.U8() != 0;
  o.branch_pruning = r.U8() != 0;
  o.linear_scan = r.U8() != 0;
  o.batched_dispatch = r.U8() != 0;
  o.trials_per_intervention = r.I32();
  o.parallelism = r.I32();
  o.seed = r.U64();
  BudgetOptions& b = o.budget;
  b.enabled = r.U8() != 0;
  b.error_tolerance = r.F64();
  b.causal_prior = r.F64();
  b.max_trials_per_round = r.I32();
  b.max_executions = r.U64();
  b.flakiness_prior_alpha = r.F64();
  b.flakiness_prior_beta = r.F64();
  b.topology_discount = r.F64();
  b.cost_ewma_alpha = r.F64();
  b.advice.suspects = DecodePredVector(r);
  b.advice.suspect_prior = r.F64();
  const uint32_t sd_count = r.Count(sizeof(int32_t) + sizeof(double));
  b.advice.sd_scores.clear();
  b.advice.sd_scores.reserve(sd_count);
  for (uint32_t i = 0; i < sd_count; ++i) {
    SuspiciousnessScore s;
    s.id = r.I32();
    s.score = r.F64();
    b.advice.sd_scores.push_back(s);
  }
  b.advice.sd_weight = r.F64();
  if (!r.ok()) return r.status();
  return o;
}

DiscoveryState::DiscoveryState(const AcDag* dag, EngineOptions options,
                               Rng rng)
    : dag_(dag), options_(options), rng_(rng) {}

DiscoveryState::~DiscoveryState() = default;

Tracer* DiscoveryState::tracer() const {
  return options_.telemetry != nullptr ? options_.telemetry->tracer()
                                       : nullptr;
}

Result<DiscoveryAction> DiscoveryState::NextAction() {
  if (finalized_) {
    return Status::FailedPrecondition("NextAction after Finalize");
  }
  if (!has_pending_action_ && stage_ != Stage::kFinished) Pump();
  if (has_pending_action_) return pending_action_;
  DiscoveryAction done;
  done.kind = DiscoveryAction::Kind::kDone;
  return done;
}

void DiscoveryState::Pump() {
  while (!has_pending_action_ && stage_ != Stage::kFinished) {
    switch (stage_) {
      case Stage::kInit:
        InitRun();
        break;
      case Stage::kBranchOuter:
        PumpBranchOuter();
        break;
      case Stage::kBranchInner:
        PumpBranchInner();
        break;
      case Stage::kGiwp:
        PumpGiwp();
        break;
      case Stage::kFinished:
        break;
    }
  }
}

void DiscoveryState::InitRun() {
  report_ = DiscoveryReport{};
  causal_.clear();
  spurious_.clear();
  discovery_scope_ = ScopedSpan(tracer(), "discovery");

  candidates_.clear();
  for (PredicateId id : dag_->nodes()) {
    if (id != dag_->failure()) candidates_.push_back(id);
  }

  belief_.reset();
  planner_.reset();
  budget_exhausted_ = false;
  if (options_.budget.enabled) {
    belief_ = std::make_unique<BeliefState>(dag_, options_.budget);
    belief_->SeedCandidates(candidates_);
    planner_ =
        std::make_unique<BudgetPlanner>(options_.budget, belief_.get());
  }

  if (options_.branch_pruning && options_.topological_order) {
    if (options_.observer) {
      options_.observer->OnPhaseChanged(SessionPhase::kBranchPruning);
    }
    phase_scope_ = ScopedSpan(tracer(), "branch_prune", discovery_scope_.id());
    phase_span_ = phase_scope_.id();
    bp_remaining_ = candidates_;
    stage_ = Stage::kBranchOuter;
  } else {
    EnterGiwp();
  }
}

void DiscoveryState::EnterGiwp() {
  phase_scope_.End();
  phase_span_ = 0;
  if (options_.observer) {
    options_.observer->OnPhaseChanged(SessionPhase::kGiwp);
  }
  MakeSingletonItems(candidates_);
  phase_scope_ = ScopedSpan(tracer(), "giwp", discovery_scope_.id());
  phase_span_ = phase_scope_.id();
  giwp_stack_.clear();
  GiwpFrame root;
  root.pool = UndecidedItems();
  giwp_stack_.push_back(std::move(root));
  stage_ = Stage::kGiwp;
}

void DiscoveryState::PumpBranchOuter() {
  if (BudgetSpent()) {
    budget_exhausted_ = true;
    candidates_ = bp_remaining_;
    EnterGiwp();
    return;
  }
  // Iteratively reduce the AC-DAG (restricted to surviving candidates) to a
  // chain by resolving one junction at a time.
  AcDag sub = dag_->Restrict(bp_remaining_);
  std::vector<std::vector<PredicateId>> levels = sub.TopoLevels();
  std::vector<PredicateId> junction_members;
  for (auto& level : levels) {
    // The failure predicate is never part of a junction (it cannot be
    // intervened); a level with >= 2 other members is a junction.
    std::erase(level, sub.failure());
    if (level.size() >= 2) {
      junction_members = level;
      break;
    }
  }
  if (junction_members.empty()) {
    candidates_ = bp_remaining_;
    EnterGiwp();
    return;
  }

  // Algorithm 2 lines 8-12: one branch per junction member P --
  // P plus all descendants of P that descend from no other member.
  items_.clear();
  for (PredicateId p : junction_members) {
    Item item;
    item.preds.push_back(p);
    for (PredicateId q : sub.Descendants(p)) {
      if (q == sub.failure()) continue;
      bool exclusive = true;
      for (PredicateId other : junction_members) {
        if (other != p && sub.Reaches(other, q)) {
          exclusive = false;
          break;
        }
      }
      if (exclusive) item.preds.push_back(q);
    }
    items_.push_back(std::move(item));
  }
  decisions_.assign(items_.size(), ItemDecision::kUndecided);
  bp_live_.resize(items_.size());
  std::iota(bp_live_.begin(), bp_live_.end(), size_t{0});
  stage_ = Stage::kBranchInner;
}

void DiscoveryState::PumpBranchInner() {
  // Binary search for the (at most one) causal branch: under the
  // deterministic-effect assumption the causal path continues through one
  // branch, so log2(B) interventions resolve a B-way junction (S 6.3.1).
  if (bp_live_.size() <= 1) {
    FinishJunction();
    return;
  }
  if (BudgetSpent()) {
    budget_exhausted_ = true;
    FinishJunction();
    return;
  }
  const size_t half = (bp_live_.size() + 1) / 2;
  pending_selected_.assign(bp_live_.begin(), bp_live_.begin() + half);
  pending_rest_.assign(bp_live_.begin() + half, bp_live_.end());
  PlanRound(pending_selected_, kPhaseBranch);
}

void DiscoveryState::FinishJunction() {
  // Remove the losing branches' predicates from the candidate set.
  std::unordered_set<PredicateId> removed;
  for (size_t i = 0; i < items_.size(); ++i) {
    if (decisions_[i] == ItemDecision::kSpurious) {
      for (PredicateId id : items_[i].preds) removed.insert(id);
    }
  }
  std::vector<PredicateId> next;
  next.reserve(bp_remaining_.size());
  for (PredicateId id : bp_remaining_) {
    if (!removed.count(id)) next.push_back(id);
  }
  if (budget_exhausted_) {
    // The budget ran out mid-junction: keep what the partial search
    // decided and stop pruning (GIWP will bail the same way).
    bp_remaining_ = std::move(next);
    candidates_ = bp_remaining_;
    EnterGiwp();
    return;
  }
  AID_CHECK(next.size() < bp_remaining_.size());  // progress is guaranteed
  bp_remaining_ = std::move(next);
  bp_live_.clear();
  stage_ = Stage::kBranchOuter;
}

void DiscoveryState::PumpGiwp() {
  while (!giwp_stack_.empty()) {
    GiwpFrame& frame = giwp_stack_.back();
    if (frame.has_pending_prune) {
      // A recursion child has popped: apply the parked round's Definition 2
      // pruning exactly where the recursive implementation applied it.
      InterventionalPruning(frame.pending_selected, frame.pending_result);
      frame.has_pending_prune = false;
      frame.pending_selected.clear();
      frame.pending_result = TargetRunResult{};
    }
    // Line 18: drop items decided in this or deeper/earlier rounds.
    frame.pool.erase(std::remove_if(frame.pool.begin(), frame.pool.end(),
                                    [&](size_t i) {
                                      return decisions_[i] !=
                                             ItemDecision::kUndecided;
                                    }),
                     frame.pool.end());
    if (frame.pool.empty()) {
      giwp_stack_.pop_back();
      continue;
    }
    if (BudgetSpent()) {
      // Best effort: leave the remaining items undecided; the report
      // carries their posteriors as confidence. Popping unwinds the
      // recursion, letting parents apply their parked prunes.
      budget_exhausted_ = true;
      giwp_stack_.pop_back();
      continue;
    }

    const bool batched =
        options_.batched_dispatch || options_.parallelism > 1;
    if (options_.linear_scan && batched) {
      PlanBatch(frame.pool);
      return;
    }

    // Line 4: the first half in (topological) order -- or a single item in
    // linear-scan mode (the D >= N/log N regime, Section 2).
    const size_t half = options_.linear_scan ? 1 : (frame.pool.size() + 1) / 2;
    pending_selected_.assign(frame.pool.begin(), frame.pool.begin() + half);
    pending_rest_.clear();
    PlanRound(pending_selected_, kPhaseGiwp);
    return;
  }
  phase_scope_.End();
  phase_span_ = 0;
  stage_ = Stage::kFinished;
}

void DiscoveryState::PlanRound(const std::vector<size_t>& item_indexes,
                               const char* phase) {
  std::vector<PredicateId> preds;
  for (size_t i : item_indexes) {
    preds.insert(preds.end(), items_[i].preds.begin(), items_[i].preds.end());
  }
  std::sort(preds.begin(), preds.end());
  preds.erase(std::unique(preds.begin(), preds.end()), preds.end());

  pending_action_ = DiscoveryAction{};
  pending_action_.kind = DiscoveryAction::Kind::kRound;
  pending_action_.phase = phase;
  pending_action_.budgeted = options_.budget.enabled;
  pending_action_.preds = std::move(preds);
  pending_action_.trials = options_.trials_per_intervention;
  has_pending_action_ = true;
}

void DiscoveryState::PlanBatch(const std::vector<size_t>& pool) {
  // Submit every singleton intervention of the scan as one batch; Feed
  // consumes the results in scan order. Items that Definition 2 pruning
  // decides before their result is reached keep their pruning verdict;
  // their speculative executions are the price of batching.
  DiscoveryAction action;
  action.kind = DiscoveryAction::Kind::kBatch;
  action.phase = kPhaseGiwp;
  action.budgeted = options_.budget.enabled;
  action.trials = options_.trials_per_intervention;
  action.spans.reserve(pool.size());
  for (size_t i : pool) action.spans.push_back(items_[i].preds);
  action.alloc.assign(pool.size(), options_.trials_per_intervention);
  action.funded.assign(pool.size(), 1);

  // Budgeted batches: one "budget_plan" span covers the whole round's
  // allocation. Each span gets its own SPRT requirement; when a global
  // execution budget cannot fund the full round, the highest-scoring
  // (information gain per cost) spans are funded first and the rest are
  // left undecided. Within a batch there is no mid-span early stop -- the
  // substrate runs each span's whole allocation; that is the same batching
  // trade-off speculative executions already embody.
  if (options_.budget.enabled) {
    ScopedSpan plan_span(tracer(), "budget_plan", phase_span_);
    const int cap = options_.budget.max_trials_per_round > 0
                        ? options_.budget.max_trials_per_round
                        : options_.trials_per_intervention;
    for (size_t k = 0; k < pool.size(); ++k) {
      action.alloc[k] = planner_->PlanTrials(action.spans[k], cap);
    }
    if (options_.budget.max_executions > 0) {
      const uint64_t spent = executions_;
      const uint64_t remaining =
          spent >= options_.budget.max_executions
              ? 0
              : options_.budget.max_executions - spent;
      uint64_t total = 0;
      for (int a : action.alloc) total += static_cast<uint64_t>(a);
      if (total > remaining) {
        std::vector<size_t> order(pool.size());
        std::iota(order.begin(), order.end(), size_t{0});
        std::stable_sort(order.begin(), order.end(),
                         [&](size_t a, size_t b) {
                           return planner_->Score(action.spans[a],
                                                  action.alloc[a]) >
                                  planner_->Score(action.spans[b],
                                                  action.alloc[b]);
                         });
        action.funded.assign(pool.size(), 0);
        uint64_t left = remaining;
        for (size_t k : order) {
          if (static_cast<uint64_t>(action.alloc[k]) <= left) {
            action.funded[k] = 1;
            left -= static_cast<uint64_t>(action.alloc[k]);
          }
        }
        budget_exhausted_ = true;
      }
    }
  }

  pending_selected_ = pool;
  pending_rest_.clear();
  pending_action_ = std::move(action);
  has_pending_action_ = true;
}

int DiscoveryState::PlanBudgetedTrials(const std::vector<PredicateId>& preds,
                                       uint64_t round_span) {
  int planned;
  {
    ScopedSpan plan_span(tracer(), "budget_plan", round_span);
    const int cap = options_.budget.max_trials_per_round > 0
                        ? options_.budget.max_trials_per_round
                        : options_.trials_per_intervention;
    planned = planner_->PlanTrials(preds, cap);
  }
  if (options_.budget.max_executions == 0) return planned;
  const uint64_t spent = executions_;
  if (spent >= options_.budget.max_executions) return 1;  // callers guard
  const uint64_t remaining = options_.budget.max_executions - spent;
  if (static_cast<uint64_t>(planned) <= remaining) return planned;
  // A truncated allocation still runs (partial evidence beats none); the
  // stage pumps notice the spent budget before the next round.
  return static_cast<int>(remaining);
}

Status DiscoveryState::Feed(const DiscoveryAction& action,
                            const ActionOutcome& outcome) {
  if (!has_pending_action_) {
    return Status::FailedPrecondition(
        "Feed without a pending action (call NextAction first)");
  }
  if (action.kind != pending_action_.kind ||
      action.kind == DiscoveryAction::Kind::kDone) {
    return Status::InvalidArgument(
        "fed action does not match the pending plan");
  }
  AccumulateDeltas(outcome);
  if (action.kind == DiscoveryAction::Kind::kRound) {
    FeedRound(action, outcome);
  } else {
    FeedBatch(action, outcome);
  }
  has_pending_action_ = false;
  pending_action_ = DiscoveryAction{};
  pending_selected_.clear();
  pending_rest_.clear();
  return Status::OK();
}

void DiscoveryState::AccumulateDeltas(const ActionOutcome& outcome) {
  executions_ += outcome.executions_delta;
  respawns_ += outcome.respawns_delta;
  crashed_trials_ += outcome.crashed_trials_delta;
  timed_out_trials_ += outcome.timed_out_trials_delta;
  steals_ += outcome.steals_delta;
  cancelled_chunks_ += outcome.cancelled_chunks_delta;
  straggler_wait_micros_ += outcome.straggler_wait_micros_delta;
  if (replica_trials_.size() < outcome.replica_trials_delta.size()) {
    replica_trials_.resize(outcome.replica_trials_delta.size(), 0);
  }
  for (size_t i = 0; i < outcome.replica_trials_delta.size(); ++i) {
    replica_trials_[i] += outcome.replica_trials_delta[i];
  }
}

void DiscoveryState::ObserveBudgetedRound(
    const std::vector<PredicateId>& preds, const ActionOutcome& outcome) {
  planner_->ObserveRoundCost(outcome.trial_micros_delta, outcome.used);
  report_.budgeted_trials_allocated += static_cast<uint64_t>(outcome.used);
  report_.budgeted_trials_saved +=
      static_cast<int64_t>(options_.trials_per_intervention) - outcome.used;
  if (outcome.result.AnyFailed()) {
    if (outcome.used < outcome.planned) ++report_.budget_early_stops;
    belief_->ObservePersistingRound(outcome.used - 1);
  } else {
    belief_->ObserveStoppedRound(preds, outcome.used);
  }
}

void DiscoveryState::FeedRound(const DiscoveryAction& action,
                               const ActionOutcome& outcome) {
  if (action.budgeted) ObserveBudgetedRound(action.preds, outcome);
  RecordRound(action.preds, outcome.result, action.phase);
  const bool failure_stopped = !outcome.result.AnyFailed();

  if (stage_ == Stage::kBranchInner) {
    const std::vector<size_t>& losers =
        failure_stopped ? pending_rest_ : pending_selected_;
    for (size_t i : losers) Decide(i, ItemDecision::kSpurious);
    bp_live_ = failure_stopped ? pending_selected_ : pending_rest_;
    if (options_.predicate_pruning) {
      InterventionalPruning(pending_selected_, outcome.result);
      // Pruning may have decided survivors; drop them from the live set.
      bp_live_.erase(std::remove_if(bp_live_.begin(), bp_live_.end(),
                                    [&](size_t i) {
                                      return decisions_[i] ==
                                             ItemDecision::kSpurious;
                                    }),
                     bp_live_.end());
    }
    return;
  }

  AID_CHECK(stage_ == Stage::kGiwp && !giwp_stack_.empty());
  if (failure_stopped) {
    // Lines 6-12: a counterfactual cause is inside the group.
    if (pending_selected_.size() == 1) {
      Decide(pending_selected_[0], ItemDecision::kCausal);
      if (options_.predicate_pruning) {
        InterventionalPruning(pending_selected_, outcome.result);
      }
    } else {
      // Recurse into the selected half; the parent applies this round's
      // pruning after the child frame pops (the recursive order).
      GiwpFrame& parent = giwp_stack_.back();
      if (options_.predicate_pruning) {
        parent.has_pending_prune = true;
        parent.pending_selected = pending_selected_;
        parent.pending_result = outcome.result;
      }
      GiwpFrame child;
      child.pool = pending_selected_;
      giwp_stack_.push_back(std::move(child));
    }
  } else {
    // Lines 13-14: intervened predicates did not avert the failure.
    for (size_t i : pending_selected_) Decide(i, ItemDecision::kSpurious);
    if (options_.predicate_pruning) {
      InterventionalPruning(pending_selected_, outcome.result);
    }
  }
}

void DiscoveryState::FeedBatch(const DiscoveryAction& action,
                               const ActionOutcome& outcome) {
  if (options_.budget.enabled) {
    planner_->ObserveRoundCost(outcome.trial_micros_delta,
                               static_cast<int>(outcome.budgeted_trials));
    report_.budgeted_trials_allocated += outcome.budgeted_trials;
    for (size_t k = 0; k < action.spans.size(); ++k) {
      if (!action.funded[k]) continue;
      report_.budgeted_trials_saved +=
          static_cast<int64_t>(options_.trials_per_intervention) -
          action.alloc[k];
    }
  }

  for (size_t k = 0; k < action.spans.size(); ++k) {
    const size_t item = pending_selected_[k];
    if (!action.funded[k]) continue;  // unfunded span: stays undecided
    if (decisions_[item] != ItemDecision::kUndecided) {
      // Pruning answered this span before its result was consumed: its
      // executions were speculative (see DiscoveryReport).
      report_.speculative_executions += outcome.batch[k].logs.size();
      continue;
    }
    const TargetRunResult& result = outcome.batch[k];
    if (options_.observer) {
      options_.observer->OnRoundStarted(report_.rounds + 1, action.spans[k]);
    }
    RecordRound(action.spans[k], result, kPhaseGiwp);
    if (belief_ != nullptr) {
      if (result.AnyFailed()) {
        int passes = 0;
        for (const PredicateLog& log : result.logs) {
          if (log.failed) break;
          ++passes;
        }
        belief_->ObservePersistingRound(passes);
      } else {
        belief_->ObserveStoppedRound(action.spans[k],
                                     static_cast<int>(result.logs.size()));
      }
    }
    Decide(item, result.AnyFailed() ? ItemDecision::kSpurious
                                    : ItemDecision::kCausal);
    if (options_.predicate_pruning) {
      InterventionalPruning({item}, result);
    }
  }

  if (budget_exhausted_) {
    // An exhausted batch leaves its unfunded spans undecided, and the
    // leftover budget cannot cover any of them (funding is greedy over
    // every span the remainder could pay for) -- re-planning would spin.
    giwp_stack_.clear();
  }
}

bool DiscoveryState::BudgetSpent() const {
  if (!options_.budget.enabled || options_.budget.max_executions == 0) {
    return false;
  }
  return executions_ >= options_.budget.max_executions;
}

void DiscoveryState::RecordRound(const std::vector<PredicateId>& preds,
                                 const TargetRunResult& result,
                                 const char* phase) {
  ++report_.rounds;
  if (options_.telemetry != nullptr) {
    options_.telemetry->metrics().GetCounter("aid_rounds_total")->Add(1);
  }
  InterventionRound round;
  round.intervened = preds;
  round.failure_stopped = !result.AnyFailed();
  round.phase = phase;
  if (options_.observer) {
    ObservedRound observed;
    observed.round = report_.rounds;
    observed.intervened = preds;
    observed.failure_stopped = round.failure_stopped;
    observed.phase = phase;
    options_.observer->OnRoundFinished(observed);
  }
  report_.history.push_back(std::move(round));
}

void DiscoveryState::Decide(size_t item, ItemDecision decision) {
  AID_CHECK(decisions_[item] == ItemDecision::kUndecided);
  decisions_[item] = decision;
  const bool causal = decision == ItemDecision::kCausal;
  std::vector<PredicateId>& sink = causal ? causal_ : spurious_;
  for (PredicateId id : items_[item].preds) {
    sink.push_back(id);
    if (belief_ != nullptr) {
      // Certified verdicts pin the budgeting posterior (and, for causal
      // ones, propagate a discount over incomparable candidates).
      if (causal) {
        belief_->MarkCausal(id);
      } else {
        belief_->MarkSpurious(id);
      }
    }
    if (options_.observer) {
      options_.observer->OnPredicateDecided(id, causal);
    }
  }
}

bool DiscoveryState::ItemReachesItem(size_t a, size_t b) const {
  for (PredicateId pa : items_[a].preds) {
    for (PredicateId pb : items_[b].preds) {
      if (dag_->Reaches(pa, pb)) return true;
    }
  }
  return false;
}

bool DiscoveryState::ItemObserved(const Item& item,
                                  const PredicateLog& log) const {
  // A branch is a disjunction over its predicates (Algorithm 2 line 10).
  for (PredicateId id : item.preds) {
    if (log.Has(id)) return true;
  }
  return false;
}

void DiscoveryState::InterventionalPruning(
    const std::vector<size_t>& intervened, const TargetRunResult& result) {
  std::unordered_set<size_t> intervened_set(intervened.begin(),
                                            intervened.end());
  for (size_t i = 0; i < items_.size(); ++i) {
    if (decisions_[i] != ItemDecision::kUndecided) continue;
    if (intervened_set.count(i)) continue;
    // Ancestor guard (Definition 2): an ancestor of an intervened predicate
    // may have had its causal influence muted by the intervention.
    bool is_ancestor = false;
    for (size_t j : intervened) {
      if (ItemReachesItem(i, j)) {
        is_ancestor = true;
        break;
      }
    }
    if (is_ancestor) continue;

    for (const PredicateLog& log : result.logs) {
      // A crashed or timed-out trial carries only a partial observation set
      // (whatever the subject streamed before dying); concluding "P was
      // absent" from it would prune soundly-causal predicates. Its failed
      // flag still feeds the group verdict (AnyFailed), just not Definition
      // 2's absence reasoning.
      if (!log.complete()) continue;
      const bool observed = ItemObserved(items_[i], log);
      if ((observed && !log.failed) || (!observed && log.failed)) {
        Decide(i, ItemDecision::kSpurious);
        break;
      }
    }
  }
}

void DiscoveryState::MakeSingletonItems(
    const std::vector<PredicateId>& preds) {
  items_.clear();
  decisions_.clear();
  std::unordered_map<PredicateId, int> topo_pos;
  {
    int pos = 0;
    for (PredicateId id : dag_->TopoOrder()) topo_pos[id] = pos++;
  }
  std::vector<PredicateId> ordered = preds;
  if (options_.topological_order) {
    std::sort(ordered.begin(), ordered.end(),
              [&](PredicateId a, PredicateId b) {
                return topo_pos[a] < topo_pos[b];
              });
  } else {
    rng_.Shuffle(ordered);
  }
  items_.reserve(ordered.size());
  for (size_t i = 0; i < ordered.size(); ++i) {
    items_.push_back(Item{{ordered[i]}, static_cast<int>(i)});
  }
  decisions_.assign(items_.size(), ItemDecision::kUndecided);
}

std::vector<size_t> DiscoveryState::UndecidedItems() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < items_.size(); ++i) {
    if (decisions_[i] == ItemDecision::kUndecided) out.push_back(i);
  }
  return out;
}

Result<DiscoveryReport> DiscoveryState::Finalize() {
  if (stage_ != Stage::kFinished) {
    return Status::FailedPrecondition(
        "Finalize before the discovery is done");
  }
  if (finalized_) {
    return Status::FailedPrecondition("Finalize called twice");
  }
  finalized_ = true;

  // Assemble the causal path: causal predicates in topological order, then F
  // (Definition 1: C0 .. Cn with Cn = F).
  std::sort(causal_.begin(), causal_.end());
  causal_.erase(std::unique(causal_.begin(), causal_.end()), causal_.end());
  std::unordered_map<PredicateId, int> topo_pos;
  {
    int pos = 0;
    for (PredicateId id : dag_->TopoOrder()) topo_pos[id] = pos++;
  }
  std::sort(causal_.begin(), causal_.end(),
            [&](PredicateId a, PredicateId b) {
              return topo_pos[a] < topo_pos[b];
            });
  report_.causal_path = causal_;
  report_.causal_path.push_back(dag_->failure());

  // Definition 1 sanity: the causal predicates should be totally ordered by
  // reachability. When they are not (e.g. a conjunctive root cause on
  // disjoint branches), flag the assumption violation instead of silently
  // presenting an unordered set as a chain (Section 5.1).
  report_.path_is_chain = true;
  for (size_t i = 0; i + 1 < causal_.size(); ++i) {
    if (!dag_->Reaches(causal_[i], causal_[i + 1])) {
      report_.path_is_chain = false;
      break;
    }
  }

  std::sort(spurious_.begin(), spurious_.end());
  spurious_.erase(std::unique(spurious_.begin(), spurious_.end()),
                  spurious_.end());
  report_.spurious = spurious_;
  report_.executions = executions_;
  report_.respawns = respawns_;
  report_.crashed_trials = crashed_trials_;
  report_.timed_out_trials = timed_out_trials_;
  report_.steals = steals_;
  report_.straggler_wait_micros = straggler_wait_micros_;
  report_.replica_trials = replica_trials_;
  report_.budget_exhausted = budget_exhausted_;
  if (belief_ != nullptr) report_.confidence = belief_->Snapshot();

  // Fold the report's own deltas into the metrics registry, so the exported
  // snapshot matches the DiscoveryReport EXACTLY (rounds were counted live
  // in RecordRound; everything else lands here, at the quiescent end of the
  // run). Substrates only feed latency histograms/EWMAs live -- totals come
  // from the same numbers the report carries.
  if (options_.telemetry != nullptr) {
    MetricsRegistry& reg = options_.telemetry->metrics();
    reg.GetCounter("aid_executions_total")->Add(report_.executions);
    reg.GetCounter("aid_speculative_executions_total")
        ->Add(report_.speculative_executions);
    reg.GetCounter("aid_respawns_total")->Add(report_.respawns);
    reg.GetCounter("aid_crashed_trials_total")->Add(report_.crashed_trials);
    reg.GetCounter("aid_timed_out_trials_total")
        ->Add(report_.timed_out_trials);
    reg.GetCounter("aid_steals_total")->Add(report_.steals);
    reg.GetCounter("aid_straggler_wait_micros_total")
        ->Add(report_.straggler_wait_micros);
    reg.GetCounter("aid_cancelled_chunks_total")->Add(cancelled_chunks_);
    if (options_.budget.enabled) {
      reg.GetCounter("aid_budget_trials_allocated_total")
          ->Add(report_.budgeted_trials_allocated);
      if (report_.budgeted_trials_saved > 0) {
        // Counters are monotone; a negative saving (cap raised above the
        // fixed trial count) simply adds nothing.
        reg.GetCounter("aid_budget_trials_saved_total")
            ->Add(static_cast<uint64_t>(report_.budgeted_trials_saved));
      }
      reg.GetCounter("aid_budget_early_stops_total")
          ->Add(report_.budget_early_stops);
      reg.GetGauge("aid_budget_exhausted")->Set(budget_exhausted_ ? 1 : 0);
    }
  }
  discovery_scope_.End();
  return report_;
}

Result<std::string> DiscoveryState::Serialize() const {
  if (has_pending_action_) {
    return Status::FailedPrecondition(
        "cannot checkpoint with an action in flight; Feed the pending "
        "outcome first");
  }
  if (finalized_) {
    return Status::FailedPrecondition("cannot checkpoint after Finalize");
  }
  WireWriter w;
  w.U8(kStateFormatVersion);
  EncodeEngineOptions(options_, w);
  uint64_t rng_state[Rng::kStateWords];
  rng_.SaveState(rng_state);
  for (uint64_t word : rng_state) w.U64(word);
  w.U8(static_cast<uint8_t>(stage_));
  w.U8(budget_exhausted_ ? 1 : 0);

  EncodePredVector(candidates_, w);
  EncodePredVector(causal_, w);
  EncodePredVector(spurious_, w);
  w.U32(static_cast<uint32_t>(items_.size()));
  for (const Item& item : items_) {
    EncodePredVector(item.preds, w);
    w.I32(item.order_key);
  }
  for (ItemDecision d : decisions_) w.U8(static_cast<uint8_t>(d));

  w.U64(report_.rounds);
  w.U64(report_.speculative_executions);
  w.U64(report_.budgeted_trials_allocated);
  w.I64(report_.budgeted_trials_saved);
  w.U64(report_.budget_early_stops);
  w.U32(static_cast<uint32_t>(report_.history.size()));
  for (const InterventionRound& round : report_.history) {
    EncodePredVector(round.intervened, w);
    w.U8(round.failure_stopped ? 1 : 0);
    w.Str(round.phase);
  }

  w.U64(executions_);
  w.U64(respawns_);
  w.U64(crashed_trials_);
  w.U64(timed_out_trials_);
  w.U64(steals_);
  w.U64(cancelled_chunks_);
  w.U64(straggler_wait_micros_);
  w.U32(static_cast<uint32_t>(replica_trials_.size()));
  for (uint64_t t : replica_trials_) w.U64(t);

  w.U32(static_cast<uint32_t>(giwp_stack_.size()));
  for (const GiwpFrame& frame : giwp_stack_) {
    EncodeIndexVector(frame.pool, w);
    w.U8(frame.has_pending_prune ? 1 : 0);
    EncodeIndexVector(frame.pending_selected, w);
    EncodeRunResult(frame.pending_result, w);
  }
  EncodePredVector(bp_remaining_, w);
  EncodeIndexVector(bp_live_, w);

  w.U8(belief_ != nullptr ? 1 : 0);
  if (belief_ != nullptr) {
    const auto posts = belief_->ExportState();
    w.U32(static_cast<uint32_t>(posts.size()));
    for (const auto& [id, p] : posts) {
      w.I32(id);
      w.F64(p);
    }
    w.F64(belief_->flaky_alpha());
    w.F64(belief_->flaky_beta());
    w.F64(planner_->trial_cost_micros());
  }
  return w.Release();
}

Result<std::unique_ptr<DiscoveryState>> DiscoveryState::Deserialize(
    const AcDag* dag, std::string_view bytes, Observer* observer,
    Telemetry* telemetry) {
  WireReader r(bytes);
  const uint8_t version = r.U8();
  if (r.ok() && version != kStateFormatVersion) {
    return Status::InvalidArgument(
        "unsupported discovery state format version " +
        std::to_string(static_cast<int>(version)));
  }
  AID_ASSIGN_OR_RETURN(EngineOptions options, DecodeEngineOptions(r));
  options.observer = observer;
  options.telemetry = telemetry;
  AID_RETURN_IF_ERROR(ValidateDiscoveryOptions(options));
  uint64_t rng_state[Rng::kStateWords];
  for (uint64_t& word : rng_state) word = r.U64();
  Rng rng;
  rng.LoadState(rng_state);

  std::unique_ptr<DiscoveryState> state(
      new DiscoveryState(dag, options, rng));
  const uint8_t stage_byte = r.U8();
  if (stage_byte > static_cast<uint8_t>(Stage::kFinished)) {
    return Status::InvalidArgument("corrupt discovery state: bad stage " +
                                   std::to_string(stage_byte));
  }
  state->stage_ = static_cast<Stage>(stage_byte);
  state->budget_exhausted_ = r.U8() != 0;

  state->candidates_ = DecodePredVector(r);
  state->causal_ = DecodePredVector(r);
  state->spurious_ = DecodePredVector(r);
  const uint32_t item_count = r.Count(sizeof(uint32_t) + sizeof(int32_t));
  state->items_.reserve(item_count);
  for (uint32_t i = 0; i < item_count; ++i) {
    Item item;
    item.preds = DecodePredVector(r);
    item.order_key = r.I32();
    state->items_.push_back(std::move(item));
  }
  state->decisions_.reserve(item_count);
  for (uint32_t i = 0; i < item_count; ++i) {
    const uint8_t d = r.U8();
    if (d > static_cast<uint8_t>(ItemDecision::kSpurious)) {
      return Status::InvalidArgument(
          "corrupt discovery state: bad item decision");
    }
    state->decisions_.push_back(static_cast<ItemDecision>(d));
  }

  state->report_.rounds = r.U64();
  state->report_.speculative_executions = r.U64();
  state->report_.budgeted_trials_allocated = r.U64();
  state->report_.budgeted_trials_saved = r.I64();
  state->report_.budget_early_stops = r.U64();
  const uint32_t history_count = r.Count(sizeof(uint32_t) + 1);
  state->report_.history.reserve(history_count);
  for (uint32_t i = 0; i < history_count; ++i) {
    InterventionRound round;
    round.intervened = DecodePredVector(r);
    round.failure_stopped = r.U8() != 0;
    round.phase = r.Str();
    state->report_.history.push_back(std::move(round));
  }

  state->executions_ = r.U64();
  state->respawns_ = r.U64();
  state->crashed_trials_ = r.U64();
  state->timed_out_trials_ = r.U64();
  state->steals_ = r.U64();
  state->cancelled_chunks_ = r.U64();
  state->straggler_wait_micros_ = r.U64();
  const uint32_t replica_count = r.Count(sizeof(uint64_t));
  state->replica_trials_.reserve(replica_count);
  for (uint32_t i = 0; i < replica_count; ++i) {
    state->replica_trials_.push_back(r.U64());
  }

  const uint32_t frame_count = r.Count(2 * sizeof(uint32_t) + 1);
  state->giwp_stack_.reserve(frame_count);
  for (uint32_t i = 0; i < frame_count; ++i) {
    GiwpFrame frame;
    frame.pool = DecodeIndexVector(r);
    frame.has_pending_prune = r.U8() != 0;
    frame.pending_selected = DecodeIndexVector(r);
    frame.pending_result = DecodeRunResult(r);
    state->giwp_stack_.push_back(std::move(frame));
  }
  state->bp_remaining_ = DecodePredVector(r);
  state->bp_live_ = DecodeIndexVector(r);

  const bool has_belief = r.U8() != 0;
  std::vector<std::pair<PredicateId, double>> posts;
  double flaky_alpha = 0.0;
  double flaky_beta = 0.0;
  double cost_ewma = 0.0;
  if (has_belief) {
    const uint32_t post_count = r.Count(sizeof(int32_t) + sizeof(double));
    posts.reserve(post_count);
    for (uint32_t i = 0; i < post_count; ++i) {
      const PredicateId id = r.I32();
      const double p = r.F64();
      posts.emplace_back(id, p);
    }
    flaky_alpha = r.F64();
    flaky_beta = r.F64();
    cost_ewma = r.F64();
  }
  AID_RETURN_IF_ERROR(r.Finish());

  // Index sanity: every stored item index must address items_.
  for (const GiwpFrame& frame : state->giwp_stack_) {
    for (size_t i : frame.pool) {
      if (i >= state->items_.size()) {
        return Status::InvalidArgument(
            "corrupt discovery state: GIWP pool index out of range");
      }
    }
    for (size_t i : frame.pending_selected) {
      if (i >= state->items_.size()) {
        return Status::InvalidArgument(
            "corrupt discovery state: GIWP pending index out of range");
      }
    }
  }
  for (size_t i : state->bp_live_) {
    if (i >= state->items_.size()) {
      return Status::InvalidArgument(
          "corrupt discovery state: branch live index out of range");
    }
  }
  if (has_belief && !options.budget.enabled) {
    return Status::InvalidArgument(
        "corrupt discovery state: belief present without budgeting");
  }

  if (has_belief) {
    state->belief_ = std::make_unique<BeliefState>(dag, options.budget);
    state->belief_->RestoreState(posts, flaky_alpha, flaky_beta);
    state->planner_ = std::make_unique<BudgetPlanner>(options.budget,
                                                      state->belief_.get());
    state->planner_->RestoreCostEwma(cost_ewma);
  }

  // Re-anchor the process-local machinery the blob deliberately omits:
  // fresh discovery/phase spans on the new tracer, and the current phase
  // re-announced to the new observer.
  if (state->stage_ != Stage::kInit && state->stage_ != Stage::kFinished) {
    Tracer* tracer = telemetry != nullptr ? telemetry->tracer() : nullptr;
    state->discovery_scope_ = ScopedSpan(tracer, "discovery");
    const bool in_branch = state->stage_ == Stage::kBranchOuter ||
                           state->stage_ == Stage::kBranchInner;
    if (observer != nullptr) {
      observer->OnPhaseChanged(in_branch ? SessionPhase::kBranchPruning
                                         : SessionPhase::kGiwp);
    }
    state->phase_scope_ =
        ScopedSpan(tracer, in_branch ? "branch_prune" : "giwp",
                   state->discovery_scope_.id());
    state->phase_span_ = state->phase_scope_.id();
  } else if (state->stage_ == Stage::kFinished) {
    Tracer* tracer = telemetry != nullptr ? telemetry->tracer() : nullptr;
    state->discovery_scope_ = ScopedSpan(tracer, "discovery");
  }
  return state;
}

Result<ActionOutcome> ExecuteDiscoveryAction(DiscoveryState& state,
                                             const DiscoveryAction& action,
                                             InterventionTarget* target) {
  const EngineOptions& options = state.options();
  Telemetry* telemetry = options.telemetry;
  Tracer* tracer = telemetry != nullptr ? telemetry->tracer() : nullptr;

  ActionOutcome outcome;
  const uint64_t executions_before = target->executions();
  const TargetHealth health_before = target->health();
  const DispatchStats dispatch_before = target->dispatch_stats();
  Status run_status = Status::OK();

  if (action.kind == DiscoveryAction::Kind::kRound) {
    if (options.observer) {
      options.observer->OnRoundStarted(state.next_round_index(),
                                       action.preds);
    }
    // The round span is published as the ACTIVE PARENT while the dispatch
    // is in flight: worker threads (and the wire clients under them) parent
    // their chunk/trial spans under it without the engine threading ids
    // through the InterventionTarget interface. Rounds are serial, so one
    // slot suffices.
    ScopedSpan round_span;
    if (telemetry != nullptr && tracer != nullptr) {
      round_span = ScopedSpan(tracer, "round", state.phase_span());
      telemetry->SetActiveParent(round_span.id());
    }
    if (!action.budgeted) {
      Result<TargetRunResult> result =
          target->RunIntervened(action.preds, action.trials);
      if (!result.ok()) {
        run_status = result.status();
      } else {
        outcome.result = std::move(*result);
      }
    } else {
      // Trials run one at a time so a failing trial -- decisive proof the
      // group is spurious -- ends the round immediately. Replicable targets
      // make this equivalent, trial for trial, to one RunIntervened(preds,
      // k) call truncated at the failure.
      outcome.planned = state.PlanBudgetedTrials(action.preds,
                                                 round_span.id());
      bool failed = false;
      while (outcome.used < outcome.planned && !failed) {
        Result<TargetRunResult> one = target->RunIntervened(action.preds, 1);
        if (!one.ok()) {
          run_status = one.status();
          break;
        }
        outcome.used +=
            one->logs.empty() ? 1 : static_cast<int>(one->logs.size());
        for (PredicateLog& log : one->logs) {
          failed = failed || log.failed;
          outcome.result.logs.push_back(std::move(log));
        }
      }
    }
    if (telemetry != nullptr) telemetry->SetActiveParent(0);
    round_span.End();
  } else if (action.kind == DiscoveryAction::Kind::kBatch) {
    // One "round.batch" span covers the whole batched dispatch (the
    // decisions it feeds are consumed by Feed, outside the span); like the
    // round span, it is the active parent for substrate-side spans.
    ScopedSpan batch_span;
    if (telemetry != nullptr && tracer != nullptr) {
      batch_span = ScopedSpan(tracer, "round.batch", state.phase_span());
      telemetry->SetActiveParent(batch_span.id());
    }
    outcome.batch.resize(action.spans.size());
    if (!action.budgeted) {
      Result<std::vector<TargetRunResult>> batch =
          target->RunInterventionsBatch(action.spans, action.trials);
      if (!batch.ok()) {
        run_status = batch.status();
      } else if (batch->size() != action.spans.size()) {
        // Backends are third-party code; a contract violation is their
        // runtime error, not our programming error.
        run_status = Status::Internal(
            "RunInterventionsBatch returned " +
            std::to_string(batch->size()) + " results for " +
            std::to_string(action.spans.size()) + " spans");
      } else {
        outcome.batch = std::move(*batch);
      }
    } else {
      // Submit one sub-batch per distinct allocation (the batch interface
      // takes a single trial count), then map results back to scan order.
      std::map<int, std::vector<size_t>> buckets;
      for (size_t k = 0; k < action.spans.size(); ++k) {
        if (action.funded[k]) buckets[action.alloc[k]].push_back(k);
      }
      for (const auto& [trials, indexes] : buckets) {
        InterventionSpans sub;
        sub.reserve(indexes.size());
        for (size_t k : indexes) sub.push_back(action.spans[k]);
        Result<std::vector<TargetRunResult>> batch =
            target->RunInterventionsBatch(sub, trials);
        if (!batch.ok()) {
          run_status = batch.status();
          break;
        }
        if (batch->size() != indexes.size()) {
          run_status = Status::Internal(
              "RunInterventionsBatch returned " +
              std::to_string(batch->size()) + " results for " +
              std::to_string(sub.size()) + " spans");
          break;
        }
        for (size_t j = 0; j < indexes.size(); ++j) {
          outcome.budgeted_trials += (*batch)[j].logs.size();
          outcome.batch[indexes[j]] = std::move((*batch)[j]);
        }
      }
    }
    if (telemetry != nullptr) telemetry->SetActiveParent(0);
    batch_span.End();
  } else {
    return Status::InvalidArgument("cannot execute a kDone action");
  }
  AID_RETURN_IF_ERROR(run_status);

  outcome.executions_delta = target->executions() - executions_before;
  const TargetHealth health_after = target->health();
  outcome.trial_micros_delta =
      health_after.trial_micros - health_before.trial_micros;
  outcome.respawns_delta = health_after.respawns - health_before.respawns;
  outcome.crashed_trials_delta =
      health_after.crashed_trials - health_before.crashed_trials;
  outcome.timed_out_trials_delta =
      health_after.timed_out_trials - health_before.timed_out_trials;
  const DispatchStats dispatch_after = target->dispatch_stats();
  outcome.steals_delta = dispatch_after.steals - dispatch_before.steals;
  outcome.cancelled_chunks_delta =
      dispatch_after.cancelled_chunks - dispatch_before.cancelled_chunks;
  outcome.straggler_wait_micros_delta =
      dispatch_after.straggler_wait_micros -
      dispatch_before.straggler_wait_micros;
  outcome.replica_trials_delta = dispatch_after.replica_trials;
  for (size_t i = 0; i < outcome.replica_trials_delta.size() &&
                     i < dispatch_before.replica_trials.size();
       ++i) {
    outcome.replica_trials_delta[i] -= dispatch_before.replica_trials[i];
  }
  return outcome;
}

}  // namespace aid
