// InterventionTarget: the engine's view of the application under debug.
//
// Algorithms 1-3 never touch the VM or the synthetic model directly; they
// re-execute an abstract target under a set of forced-false predicates and
// read back labeled predicate logs. Two backends exist:
//
//   * core::VmTarget     -- recompiles the predicate set into fault
//                           injections and re-runs the real VM program
//                           (case studies, examples);
//   * synth::ModelTarget -- propagates occurrence through a ground-truth
//                           causal model (the paper's synthetic benchmark).

#ifndef AID_CORE_TARGET_H_
#define AID_CORE_TARGET_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "predicates/predicate.h"

namespace aid {

/// Outcome of one intervention round (possibly several executions, paper
/// footnote 1: nondeterministic programs are re-run multiple times per
/// intervention).
struct TargetRunResult {
  /// One predicate log per execution; log.failed reflects that execution.
  std::vector<PredicateLog> logs;

  /// True iff any execution failed.
  bool AnyFailed() const {
    for (const auto& log : logs) {
      if (log.failed) return true;
    }
    return false;
  }
};

/// A batch of intervention spans: each span is one predicate set to force
/// during `trials` executions. The engine submits a whole round's worth of
/// spans at once where its strategy allows, so backends that can run
/// interventions concurrently (process pools, remote fleets, async VMs)
/// get the full round in a single call.
using InterventionSpans = std::vector<std::vector<PredicateId>>;

/// Cumulative health counters of a target's execution substrate. In-process
/// backends never touch them; process-isolated backends (src/proc/) count
/// subject crashes, per-trial deadline kills, and the child respawns they
/// triggered; remote-fleet backends (src/net/) count dropped connections
/// and the reconnects that replaced them, in the same three buckets. The
/// engine snapshots them around a discovery run the same way it snapshots
/// executions(), so DiscoveryReport surfaces per-run deltas.
struct TargetHealth {
  /// 64-bit on purpose: fleet-scale sessions multiply replicas by trials by
  /// rounds, and a 32-bit counter silently wraps right where the numbers
  /// start to matter.
  uint64_t respawns = 0;          ///< subject processes/connections replaced
  uint64_t crashed_trials = 0;    ///< trials recorded failing from a crash
  uint64_t timed_out_trials = 0;  ///< trials killed at their deadline
  /// Cumulative wall-clock the substrate spent executing intervened trials,
  /// in microseconds. Process-backed substrates (src/proc/, src/net/) time
  /// every trial at the wire (proc/client); in-process backends may leave it
  /// zero and let the scheduler's own call-site timing stand in. Feeds the
  /// latency-aware scheduler's per-replica EWMA (src/exec/scheduler.h).
  uint64_t trial_micros = 0;

  TargetHealth& operator+=(const TargetHealth& other) {
    respawns += other.respawns;
    crashed_trials += other.crashed_trials;
    timed_out_trials += other.timed_out_trials;
    trial_micros += other.trial_micros;
    return *this;
  }
};

/// Cumulative counters of a pooling target's dispatch schedule (the
/// work-stealing scheduler of src/exec/). Purely observational: the schedule
/// decides WHERE trials run, never their bytes, so none of this participates
/// in the bit-identical contract (SameDiscoveryOutcome excludes it). Serial
/// targets keep the empty default; the engine snapshots per-run deltas into
/// DiscoveryReport the way it snapshots executions() and health().
struct DispatchStats {
  /// Intervened trials each replica slot has executed, in slot order.
  std::vector<uint64_t> replica_trials;
  /// Chunks a fast replica executed off another replica's queue.
  uint64_t steals = 0;
  /// Chunks dropped unexecuted by fail-fast error cancellation.
  uint64_t cancelled_chunks = 0;
  /// Worker-time spent idle at round barriers waiting for the slowest
  /// replica to finish (microseconds, summed over workers and rounds).
  uint64_t straggler_wait_micros = 0;
};

class InterventionTarget {
 public:
  virtual ~InterventionTarget() = default;

  /// Re-executes the application `trials` times while forcing every
  /// predicate in `intervened` to its successful-execution value.
  virtual Result<TargetRunResult> RunIntervened(
      const std::vector<PredicateId>& intervened, int trials) = 0;

  /// Runs every span in `spans` for `trials` executions each and returns
  /// one TargetRunResult per span, in order.
  ///
  /// The default implementation dispatches the spans serially through
  /// RunIntervened; backends override it to batch, parallelize, or ship the
  /// round elsewhere (exec::ParallelTarget fans spans out across a pool of
  /// target replicas, see src/exec/). Overrides must preserve the per-span
  /// semantics and the result ordering.
  virtual Result<std::vector<TargetRunResult>> RunInterventionsBatch(
      const InterventionSpans& spans, int trials) {
    std::vector<TargetRunResult> results;
    results.reserve(spans.size());
    for (const auto& span : spans) {
      AID_ASSIGN_OR_RETURN(TargetRunResult result,
                           RunIntervened(span, trials));
      results.push_back(std::move(result));
    }
    return results;
  }

  /// Total application executions performed so far (cost accounting).
  /// 64-bit: replica pools over high trial counts overflow int in real
  /// fleet-scale sessions.
  virtual uint64_t executions() const = 0;

  /// Cumulative substrate health counters (see TargetHealth). In-process
  /// backends keep the all-zero default; pooling backends sum their
  /// replicas' counters the way they sum executions().
  virtual TargetHealth health() const { return {}; }

  /// Cumulative dispatch-schedule counters (see DispatchStats). Only
  /// pooling targets (exec::ParallelTarget) report them; everything else
  /// keeps the empty default.
  virtual DispatchStats dispatch_stats() const { return {}; }
};

}  // namespace aid

#endif  // AID_CORE_TARGET_H_
