// Human-readable rendering of a DiscoveryReport: the artifact AID hands a
// developer -- the root cause, the causal explanation path, the intervention
// transcript, and the assumption-violation warnings.

#ifndef AID_CORE_REPORT_H_
#define AID_CORE_REPORT_H_

#include <string>

#include "causal/acdag.h"
#include "core/engine.h"

namespace aid {

struct ReportRenderOptions {
  /// Resolve method/object names through these tables (either may be null).
  const SymbolTable* methods = nullptr;
  const SymbolTable* objects = nullptr;
  /// Include the per-round intervention transcript.
  bool include_history = true;
  /// Include the predicates proven spurious.
  bool include_spurious = false;
};

/// Renders `report` (discovered over `dag`) as a multi-line string.
std::string RenderReport(const DiscoveryReport& report, const AcDag& dag,
                         const ReportRenderOptions& options = {});

}  // namespace aid

#endif  // AID_CORE_REPORT_H_
