#include "telemetry/telemetry.h"

#include <unordered_set>
#include <utility>

#include "telemetry/json.h"

namespace aid {

Telemetry::Telemetry(TelemetryOptions options)
    : options_(std::move(options)) {}

std::shared_ptr<Telemetry> Telemetry::Create(TelemetryOptions options) {
  return std::make_shared<Telemetry>(std::move(options));
}

Histogram* Telemetry::LatencyHistogram(const std::string& name,
                                       MetricLabels labels) {
  return metrics_.GetHistogram(name, std::move(labels),
                               options_.latency_bucket_bounds_us);
}

TelemetrySnapshot Telemetry::Snapshot() const {
  TelemetrySnapshot snapshot;
  snapshot.metrics = metrics_.Snapshot();
  if (options_.trace_spans) snapshot.spans = tracer_.Spans();
  return snapshot;
}

namespace {

void WriteLabelsObject(JsonWriter& w, const MetricLabels& labels) {
  w.BeginObject();
  for (const auto& [key, value] : labels) {
    w.Key(key).String(value);
  }
  w.EndObject();
}

void WriteMetricPoints(JsonWriter& w, const MetricsSnapshot& snapshot) {
  w.BeginArray();
  for (const MetricPoint& point : snapshot.points) {
    w.BeginObject();
    w.Key("name").String(point.name);
    w.Key("kind").String(MetricKindName(point.kind));
    w.Key("labels");
    WriteLabelsObject(w, point.labels);
    if (point.kind == MetricKind::kHistogram) {
      w.Key("count").U64(point.count);
      w.Key("sum").U64(point.sum);
      w.Key("bounds").BeginArray();
      for (const uint64_t bound : point.bounds) w.U64(bound);
      w.EndArray();
      w.Key("buckets").BeginArray();
      for (const uint64_t bucket : point.buckets) w.U64(bucket);
      w.EndArray();
    } else {
      w.Key("value").U64(point.value);
    }
    w.EndObject();
  }
  w.EndArray();
}

void WriteSpanArray(JsonWriter& w, const std::vector<SpanRecord>& spans) {
  w.BeginArray();
  for (const SpanRecord& span : spans) {
    w.BeginObject();
    w.Key("id").U64(span.id);
    w.Key("parent").U64(span.parent);
    w.Key("name").String(span.name);
    w.Key("lane").U64(span.lane);
    w.Key("start_us").U64(span.start_us);
    w.Key("end_us").U64(span.end_us);
    w.Key("imported").Bool(span.imported);
    w.EndObject();
  }
  w.EndArray();
}

/// Prometheus label value escaping: backslash, quote, newline.
std::string PromEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string PromLabels(const MetricLabels& labels,
                       const std::string& extra_key = "",
                       const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key + "=\"" + PromEscape(value) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key + "=\"" + PromEscape(extra_value) + "\"";
  }
  out += '}';
  return out;
}

}  // namespace

std::string MetricsJson(const MetricsSnapshot& snapshot) {
  JsonWriter w;
  w.BeginObject();
  w.Key("metrics");
  WriteMetricPoints(w, snapshot);
  w.EndObject();
  return w.str();
}

std::string PrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  std::unordered_set<std::string> typed;
  for (const MetricPoint& point : snapshot.points) {
    if (typed.insert(point.name).second) {
      out += "# TYPE " + point.name + " " + MetricKindName(point.kind) + "\n";
    }
    if (point.kind == MetricKind::kHistogram) {
      uint64_t cumulative = 0;
      for (size_t i = 0; i < point.buckets.size(); ++i) {
        cumulative += point.buckets[i];
        const std::string le = i < point.bounds.size()
                                   ? std::to_string(point.bounds[i])
                                   : std::string("+Inf");
        out += point.name + "_bucket" + PromLabels(point.labels, "le", le) +
               " " + std::to_string(cumulative) + "\n";
      }
      out += point.name + "_sum" + PromLabels(point.labels) + " " +
             std::to_string(point.sum) + "\n";
      out += point.name + "_count" + PromLabels(point.labels) + " " +
             std::to_string(point.count) + "\n";
    } else {
      out += point.name + PromLabels(point.labels) + " " +
             std::to_string(point.value) + "\n";
    }
  }
  return out;
}

std::string ChromeTraceJson(const std::vector<SpanRecord>& spans) {
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents").BeginArray();
  for (const SpanRecord& span : spans) {
    w.BeginObject();
    w.Key("name").String(span.name);
    w.Key("cat").String(span.imported ? "aid.host" : "aid");
    w.Key("ph").String("X");
    w.Key("ts").U64(span.start_us);
    w.Key("dur").U64(span.end_us > span.start_us
                         ? span.end_us - span.start_us
                         : 0);
    w.Key("pid").U64(1);
    w.Key("tid").U64(span.lane);
    w.Key("args").BeginObject();
    w.Key("span_id").U64(span.id);
    w.Key("parent").U64(span.parent);
    w.Key("imported").Bool(span.imported);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.Key("displayTimeUnit").String("ms");
  w.EndObject();
  return w.str();
}

std::string TelemetryJson(const TelemetrySnapshot& snapshot) {
  JsonWriter w;
  w.BeginObject();
  w.Key("metrics");
  WriteMetricPoints(w, snapshot.metrics);
  w.Key("spans");
  WriteSpanArray(w, snapshot.spans);
  w.EndObject();
  return w.str();
}

}  // namespace aid
