#include "telemetry/metrics.h"

#include <algorithm>

namespace aid {

Histogram::Histogram(std::vector<uint64_t> bounds)
    : bounds_(bounds.empty()
                  ? std::vector<uint64_t>(
                        kLatencyBucketBoundsUs,
                        kLatencyBucketBoundsUs + kLatencyBucketBoundCount)
                  : std::move(bounds)),
      buckets_(bounds_.size() + 1) {}

void Histogram::Record(uint64_t sample) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), sample);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
}

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

const MetricPoint* MetricsSnapshot::Find(const std::string& name,
                                         const MetricLabels& labels) const {
  MetricLabels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  for (const MetricPoint& point : points) {
    if (point.name == name && point.labels == sorted) return &point;
  }
  return nullptr;
}

uint64_t MetricsSnapshot::Value(const std::string& name,
                                const MetricLabels& labels) const {
  const MetricPoint* point = Find(name, labels);
  if (point == nullptr) return 0;
  return point->kind == MetricKind::kHistogram ? point->count : point->value;
}

uint64_t MetricsSnapshot::Total(const std::string& name) const {
  uint64_t total = 0;
  for (const MetricPoint& point : points) {
    if (point.name != name) continue;
    total +=
        point.kind == MetricKind::kHistogram ? point.count : point.value;
  }
  return total;
}

std::string MetricsRegistry::SeriesKey(const std::string& name,
                                       const MetricLabels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    // \x1f cannot appear in either half (labels come from endpoint strings
    // and fixed identifiers), so the key is collision-free.
    key += '\x1f';
    key += k;
    key += '\x1f';
    key += v;
  }
  return key;
}

MetricsRegistry::Instrument* MetricsRegistry::Intern(
    const std::string& name, MetricLabels labels, MetricKind kind,
    std::vector<uint64_t> bounds) {
  std::sort(labels.begin(), labels.end());
  const std::string key = SeriesKey(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(key);
  if (it == series_.end()) {
    auto instrument = std::make_unique<Instrument>();
    instrument->name = name;
    instrument->labels = std::move(labels);
    instrument->kind = kind;
    switch (kind) {
      case MetricKind::kCounter:
        instrument->counter = std::make_unique<Counter>();
        break;
      case MetricKind::kGauge:
        instrument->gauge = std::make_unique<Gauge>();
        break;
      case MetricKind::kHistogram:
        instrument->histogram =
            std::make_unique<Histogram>(std::move(bounds));
        break;
    }
    it = series_.emplace(key, std::move(instrument)).first;
  }
  return it->second.get();
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     MetricLabels labels) {
  return Intern(name, std::move(labels), MetricKind::kCounter, {})
      ->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 MetricLabels labels) {
  return Intern(name, std::move(labels), MetricKind::kGauge, {})->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         MetricLabels labels,
                                         std::vector<uint64_t> bounds) {
  return Intern(name, std::move(labels), MetricKind::kHistogram,
                std::move(bounds))
      ->histogram.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.points.reserve(series_.size());
  for (const auto& [key, instrument] : series_) {
    MetricPoint point;
    point.name = instrument->name;
    point.labels = instrument->labels;
    point.kind = instrument->kind;
    switch (instrument->kind) {
      case MetricKind::kCounter:
        point.value = instrument->counter->value();
        break;
      case MetricKind::kGauge:
        point.value = instrument->gauge->value();
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *instrument->histogram;
        point.bounds = h.bounds();
        point.buckets.reserve(point.bounds.size() + 1);
        for (size_t i = 0; i <= point.bounds.size(); ++i) {
          point.buckets.push_back(h.bucket_count(i));
        }
        point.count = h.count();
        point.sum = h.sum();
        break;
      }
    }
    snapshot.points.push_back(std::move(point));
  }
  return snapshot;
}

size_t MetricsRegistry::series_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_.size();
}

}  // namespace aid
