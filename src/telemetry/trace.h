// Span-based tracing of the AID pipeline.
//
// A span is one timed region of the run -- a pipeline phase, an
// intervention round, a single trial -- identified by a nonzero id and
// linked to its parent span, forming the trace tree the Chrome trace-event
// exporter (telemetry.h) renders for Perfetto / chrome://tracing.
//
// Timestamps are microseconds on the tracer's own clock: a steady clock
// whose zero is the tracer's construction. Spans executed in another
// process (the runner-side subject host) report their times on *their*
// steady clock; ImportSpan re-bases them into this tracer's timeline using
// the engine-side send timestamp and clamps them inside the parent span,
// so a runner's host-side trial execution always nests under the
// engine-side trial span that requested it -- one coherent cross-process
// trace (see docs/telemetry.md for the wire propagation).
//
// Lanes are the trace's thread axis (chrome "tid"): each OS thread that
// opens a span gets a small stable lane number; imported spans inherit
// their parent's lane so cross-process children render inside their
// parent's track.

#ifndef AID_TELEMETRY_TRACE_H_
#define AID_TELEMETRY_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

namespace aid {

/// One recorded span. `end_us` == 0 means the span is still open (or was
/// abandoned; exporters render it with zero duration).
struct SpanRecord {
  uint64_t id = 0;
  uint64_t parent = 0;  ///< 0 = root
  std::string name;
  uint64_t lane = 0;     ///< trace track (chrome tid)
  uint64_t start_us = 0; ///< micros since the tracer's epoch
  uint64_t end_us = 0;
  bool imported = false; ///< true: carried over the wire from a subject host
};

/// Thread-safe span recorder. Span ids are dense and start at 1.
class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Microseconds since this tracer's epoch.
  uint64_t NowMicros() const;

  /// Opens a span on the calling thread's lane. parent 0 = root.
  uint64_t StartSpan(std::string name, uint64_t parent = 0);
  /// Closes the span (no-op on id 0 or an already-closed span).
  void EndSpan(uint64_t id);

  /// Records a span measured in another clock domain (a subject host's
  /// steady clock). `start_us` / `end_us` must already be re-based into
  /// this tracer's timeline by the caller; they are then clamped inside
  /// the parent span (when it exists) so clock skew can never break
  /// nesting. The span lands on the parent's lane.
  uint64_t ImportSpan(std::string name, uint64_t parent, uint64_t start_us,
                      uint64_t end_us);

  /// Stable small lane id for the calling thread (registered on first use).
  uint64_t CurrentLane();

  /// Copies every span recorded so far (open ones included).
  std::vector<SpanRecord> Spans() const;

  size_t span_count() const;

 private:
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;  ///< spans_[id - 1]
  std::unordered_map<std::thread::id, uint64_t> lanes_;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII wrapper ending its span on scope exit. Null-tracer tolerant, so
/// instrumentation sites stay one-liners under disabled telemetry.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(Tracer* tracer, std::string name, uint64_t parent = 0)
      : tracer_(tracer),
        id_(tracer == nullptr ? 0 : tracer->StartSpan(std::move(name),
                                                      parent)) {}
  ScopedSpan(ScopedSpan&& other) noexcept
      : tracer_(other.tracer_), id_(other.id_) {
    other.tracer_ = nullptr;
    other.id_ = 0;
  }
  ScopedSpan& operator=(ScopedSpan&& other) noexcept {
    if (this != &other) {
      End();
      tracer_ = other.tracer_;
      id_ = other.id_;
      other.tracer_ = nullptr;
      other.id_ = 0;
    }
    return *this;
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() { End(); }

  /// Ends the span now (idempotent).
  void End() {
    if (tracer_ != nullptr && id_ != 0) tracer_->EndSpan(id_);
    tracer_ = nullptr;
    id_ = 0;
  }

  uint64_t id() const { return id_; }

 private:
  Tracer* tracer_ = nullptr;
  uint64_t id_ = 0;
};

}  // namespace aid

#endif  // AID_TELEMETRY_TRACE_H_
