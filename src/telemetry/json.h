// Minimal JSON emission and validation for the telemetry exporters.
//
// The exporters (telemetry.h) emit three machine-readable formats; two of
// them are JSON documents that external tools parse (Perfetto, CI scripts,
// bench dashboards). JsonWriter is a tiny append-only builder with correct
// string escaping and automatic comma placement, so every exporter site
// produces valid JSON by construction instead of by string concatenation.
// JsonLooksValid is a strict recursive-descent checker used by the golden
// tests and the runner's --stats path to reject malformed documents without
// dragging in a JSON library dependency.

#ifndef AID_TELEMETRY_JSON_H_
#define AID_TELEMETRY_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace aid {

/// Escapes `raw` for inclusion inside a JSON string literal (quotes not
/// included): `"`, `\`, and control characters become escape sequences.
std::string JsonEscape(std::string_view raw);

/// Append-only JSON document builder. Values are written depth-first:
///
///   JsonWriter w;
///   w.BeginObject().Key("trials").U64(12).Key("tags").BeginArray()
///    .String("fleet").EndArray().EndObject();
///   w.str();  // {"trials":12,"tags":["fleet"]}
///
/// Commas are inserted automatically; the caller only has to balance
/// Begin/End pairs. Misuse (a bare value where a key is required) produces
/// syntactically valid but semantically shifted output -- the golden tests
/// validate every exporter end-to-end instead.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  /// Writes an object key; the next call must write its value.
  JsonWriter& Key(std::string_view key);
  JsonWriter& String(std::string_view value);
  JsonWriter& U64(uint64_t value);
  JsonWriter& I64(int64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();
  /// Splices `json` in verbatim as one value (must itself be valid JSON).
  JsonWriter& Raw(std::string_view json);

  const std::string& str() const { return out_; }

 private:
  void BeforeValue();
  void AfterValue();

  std::string out_;
  std::vector<bool> needs_comma_;  ///< one flag per open container
  bool after_key_ = false;
};

/// Strict whole-document JSON validity check (RFC 8259 grammar, depth
/// capped at 128). Used by exporter tests and aid_runner's stats path; not
/// a parser -- it extracts nothing.
bool JsonLooksValid(std::string_view text);

}  // namespace aid

#endif  // AID_TELEMETRY_JSON_H_
