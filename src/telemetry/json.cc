#include "telemetry/json.h"

#include <array>
#include <cctype>
#include <cstdio>

namespace aid {

std::string JsonEscape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::array<char, 8> buf{};
          std::snprintf(buf.data(), buf.size(), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf.data();
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!needs_comma_.empty() && needs_comma_.back()) out_ += ',';
}

void JsonWriter::AfterValue() {
  if (!needs_comma_.empty()) needs_comma_.back() = true;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  needs_comma_.pop_back();
  AfterValue();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  needs_comma_.pop_back();
  AfterValue();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  AfterValue();
  return *this;
}

JsonWriter& JsonWriter::U64(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  AfterValue();
  return *this;
}

JsonWriter& JsonWriter::I64(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  AfterValue();
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  std::array<char, 64> buf{};
  // %.17g round-trips every double; JSON has no Inf/NaN, clamp to null.
  const int n = std::snprintf(buf.data(), buf.size(), "%.17g", value);
  std::string_view text(buf.data(), n > 0 ? static_cast<size_t>(n) : 0);
  if (text.find("inf") != std::string_view::npos ||
      text.find("nan") != std::string_view::npos) {
    out_ += "null";
  } else {
    out_ += text;
  }
  AfterValue();
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  AfterValue();
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  AfterValue();
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  BeforeValue();
  out_ += json;
  AfterValue();
  return *this;
}

namespace {

/// Recursive-descent JSON checker over a cursor; grammar per RFC 8259.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool CheckDocument() {
    SkipWs();
    if (!CheckValue(0)) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  static constexpr int kMaxDepth = 128;

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Eat(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool EatLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  bool CheckString() {
    if (!Eat('"')) return false;
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return false;  // raw control character
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= text_.size() ||
                std::isxdigit(static_cast<unsigned char>(text_[pos_ + i])) ==
                    0) {
              return false;
            }
          }
          pos_ += 4;
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool EatDigits() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool CheckNumber() {
    (void)Eat('-');
    if (Eat('0')) {
      // leading zero: no further integer digits allowed
    } else if (!EatDigits()) {
      return false;
    }
    if (Eat('.') && !EatDigits()) return false;
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!EatDigits()) return false;
    }
    return true;
  }

  bool CheckValue(int depth) {
    if (depth > kMaxDepth || pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      SkipWs();
      if (Eat('}')) return true;
      for (;;) {
        SkipWs();
        if (!CheckString()) return false;
        SkipWs();
        if (!Eat(':')) return false;
        SkipWs();
        if (!CheckValue(depth + 1)) return false;
        SkipWs();
        if (Eat('}')) return true;
        if (!Eat(',')) return false;
      }
    }
    if (c == '[') {
      ++pos_;
      SkipWs();
      if (Eat(']')) return true;
      for (;;) {
        SkipWs();
        if (!CheckValue(depth + 1)) return false;
        SkipWs();
        if (Eat(']')) return true;
        if (!Eat(',')) return false;
      }
    }
    if (c == '"') return CheckString();
    if (c == 't') return EatLiteral("true");
    if (c == 'f') return EatLiteral("false");
    if (c == 'n') return EatLiteral("null");
    return CheckNumber();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

bool JsonLooksValid(std::string_view text) {
  return JsonChecker(text).CheckDocument();
}

}  // namespace aid
