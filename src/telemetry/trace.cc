#include "telemetry/trace.h"

#include <algorithm>

namespace aid {

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

uint64_t Tracer::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

uint64_t Tracer::StartSpan(std::string name, uint64_t parent) {
  const uint64_t now = NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  SpanRecord span;
  span.id = spans_.size() + 1;
  span.parent = parent;
  span.name = std::move(name);
  const auto [it, inserted] =
      lanes_.try_emplace(std::this_thread::get_id(), lanes_.size());
  span.lane = it->second;
  span.start_us = now;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Tracer::EndSpan(uint64_t id) {
  const uint64_t now = NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id > spans_.size()) return;
  SpanRecord& span = spans_[id - 1];
  // Clamp to >= 1 so a span closed within the tracer's first microsecond
  // still reads as closed (end_us == 0 is the documented "open" marker).
  if (span.end_us == 0) {
    span.end_us = std::max<uint64_t>(std::max(now, span.start_us), 1);
  }
}

uint64_t Tracer::ImportSpan(std::string name, uint64_t parent,
                            uint64_t start_us, uint64_t end_us) {
  const uint64_t now = NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  SpanRecord span;
  span.id = spans_.size() + 1;
  span.parent = parent;
  span.name = std::move(name);
  span.imported = true;
  span.start_us = start_us;
  span.end_us = std::max(end_us, start_us);
  if (parent != 0 && parent <= spans_.size()) {
    // Clamp inside the parent: the child's clock domain was re-based from
    // wire timestamps, and skew must not let it escape its parent span.
    const SpanRecord& up = spans_[parent - 1];
    const uint64_t up_end = up.end_us != 0 ? up.end_us : now;
    span.lane = up.lane;
    span.start_us = std::clamp(span.start_us, up.start_us, up_end);
    span.end_us = std::clamp(span.end_us, span.start_us, up_end);
  }
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

uint64_t Tracer::CurrentLane() {
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] =
      lanes_.try_emplace(std::this_thread::get_id(), lanes_.size());
  return it->second;
}

std::vector<SpanRecord> Tracer::Spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

}  // namespace aid
