// Thread-safe metrics registry: counters, gauges, and fixed-bucket latency
// histograms, labeled by phase / endpoint / replica.
//
// The registry is the quantitative half of the telemetry subsystem (the
// Tracer in trace.h is the temporal half). Instruments are interned by
// (name, sorted labels): the first Get* call creates the time series, every
// later call returns the same pointer, and the pointer stays valid for the
// registry's lifetime -- so hot paths look an instrument up once and then
// touch nothing but a relaxed atomic. Snapshot() copies every series under
// the registry lock into plain structs the exporters (telemetry.h) render
// as JSON or Prometheus text.
//
// Writes are std::memory_order_relaxed: per-event counts need atomicity,
// not ordering, and the quiescent points where snapshots are taken (end of
// a discovery run, after a round barrier) are already synchronized by the
// dispatch joins.

#ifndef AID_TELEMETRY_METRICS_H_
#define AID_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace aid {

/// Key/value pairs identifying one time series of a metric ("endpoint" ->
/// "127.0.0.1:7601"). Order-insensitive: the registry sorts on intern.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Default latency-histogram bucket upper bounds, in microseconds. Spans
/// sub-100us in-process model trials up to second-scale remote trials; the
/// runner's shared-memory stats block (proc/subject_host.h) mirrors these
/// bounds so engine-side and runner-side histograms line up.
inline constexpr uint64_t kLatencyBucketBoundsUs[] = {
    100,   250,    500,    1000,    2500,    5000,
    10000, 25000,  50000,  100000,  250000,  1000000};
inline constexpr size_t kLatencyBucketBoundCount =
    sizeof(kLatencyBucketBoundsUs) / sizeof(kLatencyBucketBoundsUs[0]);

/// Monotonically increasing event count.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (EWMAs, placements, pool sizes).
class Gauge {
 public:
  void Set(uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Fixed-bucket histogram. A sample lands in the first bucket whose upper
/// bound is >= the sample (Prometheus `le` semantics); samples above every
/// bound land in the implicit +Inf overflow bucket, so there are
/// bounds().size() + 1 buckets in total.
class Histogram {
 public:
  /// `bounds` must be ascending; empty falls back to the default latency
  /// bounds above.
  explicit Histogram(std::vector<uint64_t> bounds);

  void Record(uint64_t sample);

  const std::vector<uint64_t>& bounds() const { return bounds_; }
  /// i in [0, bounds().size()]; the last index is the +Inf bucket.
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<uint64_t> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  ///< bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

enum class MetricKind : uint8_t { kCounter, kGauge, kHistogram };

const char* MetricKindName(MetricKind kind);

/// One exported time series, decoupled from the live atomics.
struct MetricPoint {
  std::string name;
  MetricLabels labels;
  MetricKind kind = MetricKind::kCounter;
  /// Counter / gauge value (0 for histograms).
  uint64_t value = 0;
  /// Histogram payload (empty for counters / gauges). `buckets` has one
  /// entry per bound plus the trailing +Inf bucket.
  std::vector<uint64_t> bounds;
  std::vector<uint64_t> buckets;
  uint64_t count = 0;
  uint64_t sum = 0;
};

/// Point-in-time copy of every registered series.
struct MetricsSnapshot {
  std::vector<MetricPoint> points;

  /// The series with this exact name + label set, or nullptr.
  const MetricPoint* Find(const std::string& name,
                          const MetricLabels& labels = {}) const;
  /// Find()'s value (counter/gauge) or count (histogram); 0 when absent.
  uint64_t Value(const std::string& name,
                 const MetricLabels& labels = {}) const;
  /// Sum of Value over every label set carrying `name`.
  uint64_t Total(const std::string& name) const;
};

/// The interning registry. All methods are thread-safe; returned instrument
/// pointers are stable for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, MetricLabels labels = {});
  Gauge* GetGauge(const std::string& name, MetricLabels labels = {});
  /// `bounds` applies only on first intern; empty = default latency bounds.
  Histogram* GetHistogram(const std::string& name, MetricLabels labels = {},
                          std::vector<uint64_t> bounds = {});

  MetricsSnapshot Snapshot() const;

  /// Number of distinct (name, labels) series -- the label-cardinality
  /// tests watch this.
  size_t series_count() const;

 private:
  struct Instrument {
    std::string name;
    MetricLabels labels;
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  static std::string SeriesKey(const std::string& name,
                               const MetricLabels& labels);
  Instrument* Intern(const std::string& name, MetricLabels labels,
                     MetricKind kind, std::vector<uint64_t> bounds);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Instrument>> series_;
};

}  // namespace aid

#endif  // AID_TELEMETRY_METRICS_H_
