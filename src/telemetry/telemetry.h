// The telemetry bundle: one MetricsRegistry + one Tracer threaded through
// a whole session, plus the exporters that turn a snapshot into files.
//
// Enablement model: telemetry is OFF unless a Telemetry object exists.
// Every instrumentation site in the engine, scheduler, and transports holds
// a nullable pointer and guards on it, so a session without
// SessionBuilder::WithTelemetry pays nothing -- not an atomic, not a
// branch-into-cold-code -- and its reports stay bit-identical to pre-
// telemetry builds (verified by bench_micro and the fleet example).
//
// Exporters:
//   MetricsJson      -- {"metrics":[...]} snapshot for dashboards/benches
//   PrometheusText   -- text exposition format (scrapeable)
//   ChromeTraceJson  -- trace-event JSON loadable in Perfetto /
//                       chrome://tracing; each event carries its span id
//                       and parent id in "args" so tools (and the CI
//                       validator) can check nesting structurally.
//
// See docs/telemetry.md for the metric catalog and the span model.

#ifndef AID_TELEMETRY_TELEMETRY_H_
#define AID_TELEMETRY_TELEMETRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace aid {

struct TelemetryOptions {
  /// Latency histogram bucket upper bounds in microseconds; empty = the
  /// default kLatencyBucketBoundsUs ladder.
  std::vector<uint64_t> latency_bucket_bounds_us;
  /// Record spans (metrics are always on when telemetry is on). Turn off
  /// for long-running services where an ever-growing span list is unwanted.
  bool trace_spans = true;
};

/// Everything TelemetrySnapshot() hands back: decoupled from the live
/// registry/tracer, safe to export after the session is gone.
struct TelemetrySnapshot {
  MetricsSnapshot metrics;
  std::vector<SpanRecord> spans;
};

/// The per-session telemetry sink. Shared (via shared_ptr) between the
/// Session, its target stack, and the caller exporting results.
class Telemetry {
 public:
  explicit Telemetry(TelemetryOptions options = {});
  static std::shared_ptr<Telemetry> Create(TelemetryOptions options = {});

  MetricsRegistry& metrics() { return metrics_; }
  /// Null when options.trace_spans is false: span sites skip themselves
  /// with the same null-guard they use for disabled telemetry.
  Tracer* tracer() { return options_.trace_spans ? &tracer_ : nullptr; }

  const TelemetryOptions& options() const { return options_; }

  /// Histogram interned with this bundle's configured latency bounds.
  Histogram* LatencyHistogram(const std::string& name,
                              MetricLabels labels = {});

  /// Cross-thread span parenting: the engine publishes the active round
  /// span before handing a round to the replica pool (rounds are serial,
  /// so one slot suffices), and worker-side sites parent their chunk/trial
  /// spans under it.
  void SetActiveParent(uint64_t span_id) {
    active_parent_.store(span_id, std::memory_order_release);
  }
  uint64_t active_parent() const {
    return active_parent_.load(std::memory_order_acquire);
  }

  TelemetrySnapshot Snapshot() const;

 private:
  TelemetryOptions options_;
  MetricsRegistry metrics_;
  Tracer tracer_;
  std::atomic<uint64_t> active_parent_{0};
};

/// {"metrics":[{name, kind, labels, value | histogram fields}...]}.
std::string MetricsJson(const MetricsSnapshot& snapshot);

/// Prometheus text exposition (# TYPE comments + one line per series;
/// histograms expand into _bucket/_sum/_count).
std::string PrometheusText(const MetricsSnapshot& snapshot);

/// Chrome trace-event JSON: complete ("ph":"X") events, microsecond
/// timestamps, one pid, lanes as tids, span/parent ids in "args".
std::string ChromeTraceJson(const std::vector<SpanRecord>& spans);

/// Combined document: {"metrics":[...],"spans":[...]} -- what benches
/// embed next to their own numbers.
std::string TelemetryJson(const TelemetrySnapshot& snapshot);

}  // namespace aid

#endif  // AID_TELEMETRY_TELEMETRY_H_
