// TraceRecorder: the instrumentation sink used by the VM while executing a
// program. It assigns the global sequence numbers (a total-order logical
// clock; see Section 4's note on clock granularity -- a total order
// sidesteps the tie problems of wall clocks) and tracks per-thread locksets
// so that access events carry the information race detection needs.

#ifndef AID_TRACE_RECORDER_H_
#define AID_TRACE_RECORDER_H_

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "trace/trace.h"

namespace aid {

/// Builds an ExecutionTrace incrementally. One recorder per run.
class TraceRecorder {
 public:
  TraceRecorder() = default;

  /// Records entry into `method` on `thread`; returns the fresh call uid.
  CallUid MethodEnter(ThreadIndex thread, SymbolId method, Tick tick) {
    const CallUid uid = next_call_uid_++;
    Event e;
    e.kind = EventKind::kMethodEnter;
    e.thread = thread;
    e.method = method;
    e.call_uid = uid;
    e.tick = tick;
    Push(std::move(e));
    return uid;
  }

  /// Records a normal or unwinding exit of a call.
  void MethodExit(ThreadIndex thread, SymbolId method, CallUid uid, Tick tick,
                  bool has_return_value, int64_t return_value) {
    Event e;
    e.kind = EventKind::kMethodExit;
    e.thread = thread;
    e.method = method;
    e.call_uid = uid;
    e.tick = tick;
    e.has_value = has_return_value;
    e.value = return_value;
    Push(std::move(e));
  }

  /// Records a shared-object access with the thread's current lockset.
  void Access(ThreadIndex thread, SymbolId method, CallUid uid, SymbolId object,
              bool is_write, int64_t value, Tick tick) {
    Event e;
    e.kind = is_write ? EventKind::kWrite : EventKind::kRead;
    e.thread = thread;
    e.method = method;
    e.call_uid = uid;
    e.object = object;
    e.value = value;
    e.has_value = true;
    e.tick = tick;
    e.locks_held = locksets_[thread];
    Push(std::move(e));
  }

  void Throw(ThreadIndex thread, SymbolId method, CallUid uid,
             SymbolId exception_type, Tick tick) {
    Event e;
    e.kind = EventKind::kThrow;
    e.thread = thread;
    e.method = method;
    e.call_uid = uid;
    e.object = exception_type;
    e.tick = tick;
    Push(std::move(e));
  }

  /// Records that the call `uid` contained the in-flight exception.
  void Catch(ThreadIndex thread, SymbolId method, CallUid uid,
             SymbolId exception_type, Tick tick) {
    Event e;
    e.kind = EventKind::kCatch;
    e.thread = thread;
    e.method = method;
    e.call_uid = uid;
    e.object = exception_type;
    e.tick = tick;
    Push(std::move(e));
  }

  void LockAcquire(ThreadIndex thread, SymbolId method, CallUid uid,
                   SymbolId mutex, Tick tick) {
    locksets_[thread].push_back(mutex);
    Event e;
    e.kind = EventKind::kLockAcquire;
    e.thread = thread;
    e.method = method;
    e.call_uid = uid;
    e.object = mutex;
    e.tick = tick;
    Push(std::move(e));
  }

  void LockRelease(ThreadIndex thread, SymbolId method, CallUid uid,
                   SymbolId mutex, Tick tick) {
    auto& set = locksets_[thread];
    auto it = std::find(set.begin(), set.end(), mutex);
    if (it != set.end()) set.erase(it);
    Event e;
    e.kind = EventKind::kLockRelease;
    e.thread = thread;
    e.method = method;
    e.call_uid = uid;
    e.object = mutex;
    e.tick = tick;
    Push(std::move(e));
  }

  void Spawn(ThreadIndex thread, SymbolId method, CallUid uid,
             ThreadIndex spawned, Tick tick) {
    Event e;
    e.kind = EventKind::kSpawn;
    e.thread = thread;
    e.method = method;
    e.call_uid = uid;
    e.spawned_thread = spawned;
    e.tick = tick;
    Push(std::move(e));
  }

  void Join(ThreadIndex thread, SymbolId method, CallUid uid,
            ThreadIndex joined, Tick tick) {
    Event e;
    e.kind = EventKind::kJoin;
    e.thread = thread;
    e.method = method;
    e.call_uid = uid;
    e.spawned_thread = joined;
    e.tick = tick;
    Push(std::move(e));
  }

  /// Finalizes and returns the trace. The recorder is left empty.
  ExecutionTrace Finish(bool failed, FailureSignature signature, Tick end_tick,
                        int thread_count) {
    trace_.set_failed(failed);
    trace_.set_failure_signature(signature);
    trace_.set_end_tick(end_tick);
    trace_.set_thread_count(thread_count);
    ExecutionTrace out = std::move(trace_);
    trace_ = ExecutionTrace();
    next_seq_ = 0;
    next_call_uid_ = 0;
    locksets_.clear();
    return out;
  }

 private:
  void Push(Event e) {
    e.seq = next_seq_++;
    trace_.Append(std::move(e));
  }

  ExecutionTrace trace_;
  uint64_t next_seq_ = 0;
  CallUid next_call_uid_ = 0;
  std::unordered_map<ThreadIndex, std::vector<SymbolId>> locksets_;
};

}  // namespace aid

#endif  // AID_TRACE_RECORDER_H_
