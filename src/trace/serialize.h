// Serialization of execution traces.
//
// Two formats:
//
//   * TSV text, for golden tests and offline inspection -- one event per
//     line (seq, tick, thread, kind, method, call_uid, object, value,
//     has_value, spawned, locks), names resolved through the program's
//     SymbolTables;
//   * a compact little-endian binary encoding. WireWriter / WireReader are
//     the shared primitives every binary codec in the repository builds on
//     (the proc/ wire protocol frames, subject specs, program
//     serialization); SerializeTrace / DeserializeTrace apply them to whole
//     ExecutionTraces for offline storage and for backends that ship raw
//     traces across a machine boundary (the remote fleet of src/net/ ships
//     subject specs and streamed observations over these primitives). The
//     trace format round-trips every Event field bit-for-bit and fails
//     with InvalidArgument on truncated input.

#ifndef AID_TRACE_SERIALIZE_H_
#define AID_TRACE_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/status.h"
#include "common/symbol_table.h"
#include "trace/trace.h"

namespace aid {

/// Append-only little-endian binary encoder. The buffer is a std::string so
/// encoded messages move cheaply into pipe writes and test fixtures.
class WireWriter {
 public:
  void U8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { AppendLe(&v, sizeof(v)); }
  void U64(uint64_t v) { AppendLe(&v, sizeof(v)); }
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  /// Length-prefixed byte string (u32 length + raw bytes).
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    buffer_.append(s.data(), s.size());
  }
  /// Raw bytes, no length prefix (caller frames them).
  void Raw(std::string_view s) { buffer_.append(s.data(), s.size()); }

  const std::string& buffer() const { return buffer_; }
  std::string Release() { return std::move(buffer_); }

 private:
  void AppendLe(const void* v, size_t n);

  std::string buffer_;
};

/// Cursor-based decoder over a byte buffer. Reads past the end do not throw
/// or abort: they latch an InvalidArgument status, and every subsequent read
/// returns a zero value, so decoders stay linear and check status() once at
/// the end (or wherever they need a trusted value, e.g. before sizing an
/// allocation from a decoded count).
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  uint8_t U8();
  uint32_t U32();
  uint64_t U64();
  int32_t I32() { return static_cast<int32_t>(U32()); }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  double F64();
  std::string Str();

  /// Reads a u32 item count and validates it against the bytes remaining,
  /// given that each item occupies at least `min_item_bytes` on the wire:
  /// a corrupt count can then never force a large reserve()/allocation --
  /// it is rejected (latched InvalidArgument, returns 0) before any sizing
  /// happens. Every repeated-group decoder should read its count this way.
  uint32_t Count(size_t min_item_bytes);

  /// True while no read has run past the end of the buffer.
  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  /// OK when the reader is healthy AND fully consumed; trailing garbage is
  /// an error for whole-message decoders.
  Status Finish() const;

  size_t remaining() const { return data_.size() - pos_; }

 private:
  bool Take(void* out, size_t n);

  std::string_view data_;
  size_t pos_ = 0;
  Status status_;
};

/// Appends the binary encoding of `trace` (all Event fields + the failure
/// label, signature, end tick, and thread count) to `writer`.
void SerializeTrace(const ExecutionTrace& trace, WireWriter& writer);

/// Decodes one trace previously written by SerializeTrace. Returns
/// InvalidArgument on truncated or corrupt input (e.g. an event count that
/// overruns the buffer).
Result<ExecutionTrace> DeserializeTrace(WireReader& reader);

/// Whole-buffer conveniences for tests and file storage.
std::string TraceToBytes(const ExecutionTrace& trace);
Result<ExecutionTrace> TraceFromBytes(std::string_view bytes);

/// Symbol tables needed to render a trace with human-readable names.
struct TraceSymbols {
  const SymbolTable* methods = nullptr;
  const SymbolTable* objects = nullptr;  ///< shared vars, arrays, mutexes
  const SymbolTable* exceptions = nullptr;
};

/// Renders the trace as TSV text (header line + one line per event).
std::string TraceToTsv(const ExecutionTrace& trace, const TraceSymbols& symbols);

/// Renders a short human-readable summary: outcome, duration, counts.
std::string TraceSummary(const ExecutionTrace& trace, const TraceSymbols& symbols);

}  // namespace aid

#endif  // AID_TRACE_SERIALIZE_H_
