// Plain-text (TSV) serialization of execution traces, for golden tests and
// offline inspection. One event per line:
//
//   seq <TAB> tick <TAB> thread <TAB> kind <TAB> method <TAB> call_uid
//       <TAB> object <TAB> value <TAB> has_value <TAB> spawned <TAB> locks
//
// where names are resolved through the program's SymbolTables.

#ifndef AID_TRACE_SERIALIZE_H_
#define AID_TRACE_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "common/symbol_table.h"
#include "trace/trace.h"

namespace aid {

/// Symbol tables needed to render a trace with human-readable names.
struct TraceSymbols {
  const SymbolTable* methods = nullptr;
  const SymbolTable* objects = nullptr;  ///< shared vars, arrays, mutexes
  const SymbolTable* exceptions = nullptr;
};

/// Renders the trace as TSV text (header line + one line per event).
std::string TraceToTsv(const ExecutionTrace& trace, const TraceSymbols& symbols);

/// Renders a short human-readable summary: outcome, duration, counts.
std::string TraceSummary(const ExecutionTrace& trace, const TraceSymbols& symbols);

}  // namespace aid

#endif  // AID_TRACE_SERIALIZE_H_
