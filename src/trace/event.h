// Event model for execution traces.
//
// The paper's instrumentation (Appendix A, Figure 9b) records, per executed
// method: start and end time, thread id, ids of accessed objects, access
// type, return values, and whether an exception was thrown. aid::runtime
// emits exactly this schema; the predicate extractors (aid::predicates)
// consume it offline, mirroring the paper's separation of instrumentation
// from predicate extraction.

#ifndef AID_TRACE_EVENT_H_
#define AID_TRACE_EVENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/symbol_table.h"

namespace aid {

/// Virtual time, in scheduler ticks. The VM clock is discrete and global, so
/// tick comparisons across threads are meaningful (the paper relies on
/// computer clocks the same way, Section 4 "Temporal precedence").
using Tick = int64_t;

/// Dense thread index assigned by the VM in spawn order (main thread = 0).
using ThreadIndex = int32_t;

/// Unique id of one dynamic method execution (call instance) within a run.
using CallUid = int64_t;

enum class EventKind : uint8_t {
  kMethodEnter,
  kMethodExit,
  kRead,         ///< shared-object read (object field set)
  kWrite,        ///< shared-object write
  kThrow,        ///< exception raised (object = exception type symbol)
  kCatch,        ///< exception swallowed by a handler or an intervention
  kLockAcquire,  ///< mutex acquired (object = mutex symbol)
  kLockRelease,
  kSpawn,  ///< new thread created (spawned_thread set)
  kJoin,   ///< joined on spawned_thread
};

std::string_view EventKindName(EventKind kind);

/// One trace record. Fields not applicable to `kind` hold their defaults.
struct Event {
  EventKind kind = EventKind::kMethodEnter;
  ThreadIndex thread = -1;
  SymbolId method = kInvalidSymbol;  ///< enclosing method
  CallUid call_uid = -1;             ///< enclosing dynamic call instance
  SymbolId object = kInvalidSymbol;  ///< accessed object/mutex/exception type
  int64_t value = 0;                 ///< retval (kMethodExit) or datum (access)
  bool has_value = false;
  Tick tick = 0;          ///< global virtual time of the event
  uint64_t seq = 0;       ///< global total-order sequence number (logical clock)
  ThreadIndex spawned_thread = -1;
  std::vector<SymbolId> locks_held;  ///< lockset at access time (race detection)
};

/// A derived interval view: one dynamic execution of a method, assembled from
/// its kMethodEnter/kMethodExit pair (plus contained throw/access events).
struct MethodExecution {
  SymbolId method = kInvalidSymbol;
  CallUid call_uid = -1;
  ThreadIndex thread = -1;
  Tick enter_tick = 0;
  Tick exit_tick = 0;
  uint64_t enter_seq = 0;
  uint64_t exit_seq = 0;
  bool has_return_value = false;
  int64_t return_value = 0;
  bool threw = false;                        ///< raised an exception
  bool exception_escaped = false;            ///< exception left this frame
  SymbolId exception_type = kInvalidSymbol;  ///< type of raised exception
  Tick throw_tick = 0;                       ///< when the exception was raised
  /// 1-based index among the dynamic executions of the same method within the
  /// run, ordered by enter time. Used to occurrence-index predicates so that
  /// loop iterations map to distinct predicates (paper Appendix A).
  int occurrence = 0;
  /// Indexes (into ExecutionTrace::events) of access events inside this call,
  /// excluding those of nested calls.
  std::vector<size_t> access_events;

  Tick duration() const { return exit_tick - enter_tick; }
  /// True if the two executions overlap in virtual time.
  bool Overlaps(const MethodExecution& other) const {
    return enter_tick < other.exit_tick && other.enter_tick < exit_tick;
  }
};

}  // namespace aid

#endif  // AID_TRACE_EVENT_H_
