#include "trace/serialize.h"

#include <sstream>

#include "common/strings.h"

namespace aid {
namespace {

std::string ResolveObject(const TraceSymbols& symbols, const Event& e) {
  if (e.object == kInvalidSymbol) return "-";
  if (e.kind == EventKind::kThrow || e.kind == EventKind::kCatch) {
    return symbols.exceptions ? symbols.exceptions->Name(e.object)
                              : std::to_string(e.object);
  }
  return symbols.objects ? symbols.objects->Name(e.object)
                         : std::to_string(e.object);
}

}  // namespace

std::string TraceToTsv(const ExecutionTrace& trace,
                       const TraceSymbols& symbols) {
  std::ostringstream out;
  out << "seq\ttick\tthread\tkind\tmethod\tcall\tobject\tvalue\tspawned\tlocks\n";
  for (const Event& e : trace.events()) {
    out << e.seq << '\t' << e.tick << '\t' << e.thread << '\t'
        << EventKindName(e.kind) << '\t'
        << (symbols.methods && e.method != kInvalidSymbol
                ? symbols.methods->Name(e.method)
                : std::string("-"))
        << '\t' << e.call_uid << '\t' << ResolveObject(symbols, e) << '\t';
    if (e.has_value) {
      out << e.value;
    } else {
      out << '-';
    }
    out << '\t' << e.spawned_thread << '\t';
    for (size_t i = 0; i < e.locks_held.size(); ++i) {
      if (i > 0) out << ',';
      out << (symbols.objects ? symbols.objects->Name(e.locks_held[i])
                              : std::to_string(e.locks_held[i]));
    }
    if (e.locks_held.empty()) out << '-';
    out << '\n';
  }
  return out.str();
}

std::string TraceSummary(const ExecutionTrace& trace,
                         const TraceSymbols& symbols) {
  size_t accesses = 0;
  size_t throws = 0;
  size_t calls = 0;
  for (const Event& e : trace.events()) {
    switch (e.kind) {
      case EventKind::kMethodEnter:
        ++calls;
        break;
      case EventKind::kRead:
      case EventKind::kWrite:
        ++accesses;
        break;
      case EventKind::kThrow:
        ++throws;
        break;
      default:
        break;
    }
  }
  std::string outcome = trace.failed() ? "FAILED" : "ok";
  std::string signature = "-";
  if (trace.failed() && symbols.exceptions != nullptr &&
      trace.failure_signature().exception_type != kInvalidSymbol) {
    signature = symbols.exceptions->Name(trace.failure_signature().exception_type);
    if (symbols.methods != nullptr &&
        trace.failure_signature().method != kInvalidSymbol) {
      signature += " @ " + symbols.methods->Name(trace.failure_signature().method);
    }
  }
  return StrFormat(
      "%s: %zu events, %zu calls, %zu accesses, %zu throws, %d threads, "
      "%lld ticks, signature=%s",
      outcome.c_str(), trace.events().size(), calls, accesses, throws,
      trace.thread_count(), static_cast<long long>(trace.end_tick()),
      signature.c_str());
}

}  // namespace aid
