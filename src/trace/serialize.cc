#include "trace/serialize.h"

#include <limits>
#include <sstream>

#include "common/strings.h"

namespace aid {

// ------------------------------------------------------------ wire codec --

namespace {

/// Serialized traces embed a format version so the proc/ wire protocol can
/// evolve the event schema without breaking old hosts mid-handshake.
constexpr uint32_t kTraceFormatVersion = 1;

/// Guard against corrupt counts: no legitimate trace or string comes close,
/// and a bogus 4-byte length must not turn into a giant allocation.
constexpr uint32_t kMaxWireCount = 1u << 28;

}  // namespace

void WireWriter::AppendLe(const void* v, size_t n) {
  // Little-endian is the wire byte order. On big-endian hosts the bytes
  // would need a swap; every supported platform is little-endian today and
  // parent and child always run on the same machine, so a memcpy suffices.
  buffer_.append(static_cast<const char*>(v), n);
}

bool WireReader::Take(void* out, size_t n) {
  if (!status_.ok() || data_.size() - pos_ < n) {
    if (status_.ok()) {
      status_ = Status::InvalidArgument(
          "wire decode: input truncated at byte " + std::to_string(pos_) +
          " (wanted " + std::to_string(n) + " more, have " +
          std::to_string(data_.size() - pos_) + ")");
    }
    std::memset(out, 0, n);
    return false;
  }
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
  return true;
}

uint8_t WireReader::U8() {
  uint8_t v;
  Take(&v, sizeof(v));
  return v;
}

uint32_t WireReader::U32() {
  uint32_t v;
  Take(&v, sizeof(v));
  return v;
}

uint64_t WireReader::U64() {
  uint64_t v;
  Take(&v, sizeof(v));
  return v;
}

double WireReader::F64() {
  const uint64_t bits = U64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

uint32_t WireReader::Count(size_t min_item_bytes) {
  const uint32_t n = U32();
  if (!status_.ok()) return 0;
  if (min_item_bytes > 0 && n > remaining() / min_item_bytes) {
    status_ = Status::InvalidArgument(
        "wire decode: item count " + std::to_string(n) + " needs >= " +
        std::to_string(static_cast<uint64_t>(n) * min_item_bytes) +
        " bytes but only " + std::to_string(remaining()) + " remain");
    return 0;
  }
  return n;
}

std::string WireReader::Str() {
  const uint32_t n = U32();
  if (!status_.ok()) return {};
  if (n > kMaxWireCount || n > remaining()) {
    status_ = Status::InvalidArgument(
        "wire decode: string length " + std::to_string(n) +
        " overruns the buffer (" + std::to_string(remaining()) +
        " bytes remain)");
    return {};
  }
  std::string s(data_.substr(pos_, n));
  pos_ += n;
  return s;
}

Status WireReader::Finish() const {
  AID_RETURN_IF_ERROR(status_);
  if (pos_ != data_.size()) {
    return Status::InvalidArgument(
        "wire decode: " + std::to_string(data_.size() - pos_) +
        " trailing bytes after the message");
  }
  return Status::OK();
}

// ---------------------------------------------------- binary trace serde --

void SerializeTrace(const ExecutionTrace& trace, WireWriter& writer) {
  writer.U32(kTraceFormatVersion);
  writer.U8(trace.failed() ? 1 : 0);
  writer.I32(trace.failure_signature().exception_type);
  writer.I32(trace.failure_signature().method);
  writer.I64(trace.end_tick());
  writer.I32(trace.thread_count());
  writer.U32(static_cast<uint32_t>(trace.events().size()));
  for (const Event& e : trace.events()) {
    writer.U8(static_cast<uint8_t>(e.kind));
    writer.I32(e.thread);
    writer.I32(e.method);
    writer.I64(e.call_uid);
    writer.I32(e.object);
    writer.I64(e.value);
    writer.U8(e.has_value ? 1 : 0);
    writer.I64(e.tick);
    writer.U64(e.seq);
    writer.I32(e.spawned_thread);
    writer.U32(static_cast<uint32_t>(e.locks_held.size()));
    for (SymbolId lock : e.locks_held) writer.I32(lock);
  }
}

Result<ExecutionTrace> DeserializeTrace(WireReader& reader) {
  const uint32_t version = reader.U32();
  if (reader.ok() && version != kTraceFormatVersion) {
    return Status::InvalidArgument("trace decode: unsupported format version " +
                                   std::to_string(version));
  }
  ExecutionTrace trace;
  trace.set_failed(reader.U8() != 0);
  FailureSignature signature;
  signature.exception_type = reader.I32();
  signature.method = reader.I32();
  trace.set_failure_signature(signature);
  trace.set_end_tick(reader.I64());
  trace.set_thread_count(reader.I32());
  // Every event occupies at least 54 wire bytes (fixed fields + lock count).
  const uint32_t count = reader.Count(54);
  AID_RETURN_IF_ERROR(reader.status());
  for (uint32_t i = 0; i < count; ++i) {
    Event e;
    e.kind = static_cast<EventKind>(reader.U8());
    e.thread = reader.I32();
    e.method = reader.I32();
    e.call_uid = reader.I64();
    e.object = reader.I32();
    e.value = reader.I64();
    e.has_value = reader.U8() != 0;
    e.tick = reader.I64();
    e.seq = reader.U64();
    e.spawned_thread = reader.I32();
    const uint32_t locks = reader.Count(sizeof(SymbolId));
    AID_RETURN_IF_ERROR(reader.status());
    e.locks_held.reserve(locks);
    for (uint32_t j = 0; j < locks; ++j) e.locks_held.push_back(reader.I32());
    AID_RETURN_IF_ERROR(reader.status());
    trace.Append(std::move(e));
  }
  return trace;
}

std::string TraceToBytes(const ExecutionTrace& trace) {
  WireWriter writer;
  SerializeTrace(trace, writer);
  return writer.Release();
}

Result<ExecutionTrace> TraceFromBytes(std::string_view bytes) {
  WireReader reader(bytes);
  AID_ASSIGN_OR_RETURN(ExecutionTrace trace, DeserializeTrace(reader));
  AID_RETURN_IF_ERROR(reader.Finish());
  return trace;
}

namespace {

std::string ResolveObject(const TraceSymbols& symbols, const Event& e) {
  if (e.object == kInvalidSymbol) return "-";
  if (e.kind == EventKind::kThrow || e.kind == EventKind::kCatch) {
    return symbols.exceptions ? symbols.exceptions->Name(e.object)
                              : std::to_string(e.object);
  }
  return symbols.objects ? symbols.objects->Name(e.object)
                         : std::to_string(e.object);
}

}  // namespace

std::string TraceToTsv(const ExecutionTrace& trace,
                       const TraceSymbols& symbols) {
  std::ostringstream out;
  out << "seq\ttick\tthread\tkind\tmethod\tcall\tobject\tvalue\tspawned\tlocks\n";
  for (const Event& e : trace.events()) {
    out << e.seq << '\t' << e.tick << '\t' << e.thread << '\t'
        << EventKindName(e.kind) << '\t'
        << (symbols.methods && e.method != kInvalidSymbol
                ? symbols.methods->Name(e.method)
                : std::string("-"))
        << '\t' << e.call_uid << '\t' << ResolveObject(symbols, e) << '\t';
    if (e.has_value) {
      out << e.value;
    } else {
      out << '-';
    }
    out << '\t' << e.spawned_thread << '\t';
    for (size_t i = 0; i < e.locks_held.size(); ++i) {
      if (i > 0) out << ',';
      out << (symbols.objects ? symbols.objects->Name(e.locks_held[i])
                              : std::to_string(e.locks_held[i]));
    }
    if (e.locks_held.empty()) out << '-';
    out << '\n';
  }
  return out.str();
}

std::string TraceSummary(const ExecutionTrace& trace,
                         const TraceSymbols& symbols) {
  size_t accesses = 0;
  size_t throws = 0;
  size_t calls = 0;
  for (const Event& e : trace.events()) {
    switch (e.kind) {
      case EventKind::kMethodEnter:
        ++calls;
        break;
      case EventKind::kRead:
      case EventKind::kWrite:
        ++accesses;
        break;
      case EventKind::kThrow:
        ++throws;
        break;
      default:
        break;
    }
  }
  std::string outcome = trace.failed() ? "FAILED" : "ok";
  std::string signature = "-";
  if (trace.failed() && symbols.exceptions != nullptr &&
      trace.failure_signature().exception_type != kInvalidSymbol) {
    signature = symbols.exceptions->Name(trace.failure_signature().exception_type);
    if (symbols.methods != nullptr &&
        trace.failure_signature().method != kInvalidSymbol) {
      signature += " @ " + symbols.methods->Name(trace.failure_signature().method);
    }
  }
  return StrFormat(
      "%s: %zu events, %zu calls, %zu accesses, %zu throws, %d threads, "
      "%lld ticks, signature=%s",
      outcome.c_str(), trace.events().size(), calls, accesses, throws,
      trace.thread_count(), static_cast<long long>(trace.end_tick()),
      signature.c_str());
}

}  // namespace aid
