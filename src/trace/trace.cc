#include "trace/trace.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/strings.h"

namespace aid {

Result<std::vector<MethodExecution>> ExecutionTrace::BuildMethodExecutions()
    const {
  std::vector<MethodExecution> executions;
  // Per-thread stack of open call frames (indexes into `executions`).
  std::unordered_map<ThreadIndex, std::vector<size_t>> open_frames;

  for (size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    switch (e.kind) {
      case EventKind::kMethodEnter: {
        MethodExecution exec;
        exec.method = e.method;
        exec.call_uid = e.call_uid;
        exec.thread = e.thread;
        exec.enter_tick = e.tick;
        exec.enter_seq = e.seq;
        executions.push_back(exec);
        open_frames[e.thread].push_back(executions.size() - 1);
        break;
      }
      case EventKind::kMethodExit: {
        auto& stack = open_frames[e.thread];
        if (stack.empty()) {
          return Status::InvalidArgument(StrFormat(
              "method exit without enter (thread %d, seq %llu)", e.thread,
              static_cast<unsigned long long>(e.seq)));
        }
        MethodExecution& exec = executions[stack.back()];
        if (exec.call_uid != e.call_uid) {
          return Status::InvalidArgument(StrFormat(
              "mismatched call uid at exit (thread %d: open %lld, exit %lld)",
              e.thread, static_cast<long long>(exec.call_uid),
              static_cast<long long>(e.call_uid)));
        }
        exec.exit_tick = e.tick;
        exec.exit_seq = e.seq;
        exec.has_return_value = e.has_value;
        exec.return_value = e.value;
        stack.pop_back();
        break;
      }
      case EventKind::kRead:
      case EventKind::kWrite: {
        auto& stack = open_frames[e.thread];
        if (!stack.empty()) {
          executions[stack.back()].access_events.push_back(i);
        }
        break;
      }
      case EventKind::kThrow: {
        auto& stack = open_frames[e.thread];
        // The exception is attributed to every open frame on this thread: it
        // was raised inside the innermost and escapes through the rest unless
        // a kCatch event intervenes (handled below by clearing the flag).
        for (size_t frame : stack) {
          MethodExecution& exec = executions[frame];
          if (!exec.threw) exec.throw_tick = e.tick;
          exec.threw = true;
          exec.exception_escaped = true;
          exec.exception_type = e.object;
        }
        break;
      }
      case EventKind::kCatch: {
        // A catch at frame F stops the escape at F: frames *outer* than the
        // catching frame never see the exception. The recorder emits kCatch
        // with the catching call's uid; mark outer frames clean again.
        auto& stack = open_frames[e.thread];
        bool inside_catcher = false;
        for (size_t frame : stack) {
          MethodExecution& exec = executions[frame];
          if (!inside_catcher) {
            exec.threw = false;
            exec.exception_escaped = false;
            exec.exception_type = kInvalidSymbol;
          }
          if (exec.call_uid == e.call_uid) {
            // The catching frame itself observed the exception but contains
            // it; record that it threw internally without escaping.
            exec.threw = true;
            exec.exception_escaped = false;
            exec.exception_type = e.object;
            inside_catcher = true;
          }
        }
        break;
      }
      default:
        break;
    }
  }

  // Close any frames left open by an uncaught exception that aborted the
  // thread: give them the trace end time as exit time.
  for (auto& [thread, stack] : open_frames) {
    (void)thread;
    for (size_t frame : stack) {
      executions[frame].exit_tick = end_tick_;
      executions[frame].exit_seq =
          events_.empty() ? 0 : events_.back().seq + 1;
    }
  }

  // Occurrence indexes: k-th dynamic execution of the same method, in enter
  // order. `executions` is already in enter order (push on kMethodEnter).
  std::unordered_map<SymbolId, int> counts;
  for (auto& exec : executions) {
    exec.occurrence = ++counts[exec.method];
  }
  return executions;
}

}  // namespace aid
