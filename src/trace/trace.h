// ExecutionTrace: the complete instrumentation record of one program run.

#ifndef AID_TRACE_TRACE_H_
#define AID_TRACE_TRACE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "trace/event.h"

namespace aid {

/// A failure signature groups failures caused by the same root cause, as the
/// paper's Assumption 1 discussion prescribes (metadata such as the failure
/// location and exception type collected by failure trackers).
struct FailureSignature {
  SymbolId exception_type = kInvalidSymbol;
  SymbolId method = kInvalidSymbol;  ///< method from which it escaped last
  bool operator==(const FailureSignature&) const = default;
};

/// The full event log of one execution plus its success/failure label.
class ExecutionTrace {
 public:
  ExecutionTrace() = default;

  /// Appends an event (recorder use only; events must be seq-ordered).
  void Append(Event event) { events_.push_back(std::move(event)); }

  const std::vector<Event>& events() const { return events_; }

  /// Whether the run ended with an exception escaping a thread's root frame.
  bool failed() const { return failed_; }
  void set_failed(bool failed) { failed_ = failed; }

  const FailureSignature& failure_signature() const { return signature_; }
  void set_failure_signature(FailureSignature sig) { signature_ = sig; }

  /// Virtual time at which the run finished.
  Tick end_tick() const { return end_tick_; }
  void set_end_tick(Tick t) { end_tick_ = t; }

  /// Number of threads that participated in the run.
  int thread_count() const { return thread_count_; }
  void set_thread_count(int n) { thread_count_ = n; }

  /// Assembles the per-call interval view (one MethodExecution per dynamic
  /// call), ordered by enter time, with occurrence indexes filled in.
  /// Returns InvalidArgument on malformed traces (unbalanced enter/exit).
  Result<std::vector<MethodExecution>> BuildMethodExecutions() const;

 private:
  std::vector<Event> events_;
  bool failed_ = false;
  FailureSignature signature_;
  Tick end_tick_ = 0;
  int thread_count_ = 0;
};

}  // namespace aid

#endif  // AID_TRACE_TRACE_H_
