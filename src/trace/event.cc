#include "trace/event.h"

namespace aid {

std::string_view EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kMethodEnter:
      return "enter";
    case EventKind::kMethodExit:
      return "exit";
    case EventKind::kRead:
      return "read";
    case EventKind::kWrite:
      return "write";
    case EventKind::kThrow:
      return "throw";
    case EventKind::kCatch:
      return "catch";
    case EventKind::kLockAcquire:
      return "lock";
    case EventKind::kLockRelease:
      return "unlock";
    case EventKind::kSpawn:
      return "spawn";
    case EventKind::kJoin:
      return "join";
  }
  return "unknown";
}

}  // namespace aid
