// Static analysis knobs and the per-discovery summary of what the analysis
// did (threaded through core/engine into DiscoveryReport).
//
// This header is dependency-free on purpose: core/, api/, and proc/ all
// embed these PODs without pulling in the analyzer itself.

#ifndef AID_ANALYSIS_SUMMARY_H_
#define AID_ANALYSIS_SUMMARY_H_

#include <cstdint>

namespace aid {

/// Configuration for the static analysis pass over subject programs.
/// Disabled by default: every existing pipeline behaves bit-identically
/// unless a caller opts in (SessionBuilder::WithStaticAnalysis).
struct AnalysisOptions {
  /// Master switch. When false the other knobs are ignored.
  bool enabled = false;
  /// Prune AC-DAG candidate edges between dependence-disjoint
  /// instrumentation points before the intervention loop.
  bool prune_edges = true;
  /// Lint the program before running it; error findings fail target
  /// construction (and, on the proc/ wire, produce an ERROR frame).
  bool lint_programs = true;
  /// Exclude statically infeasible predicates (sites on unreachable
  /// methods) from the statistical debugger's denominators.
  bool exclude_infeasible = true;
};

/// What the analysis pass actually did for one discovery run. Carried in
/// DiscoveryReport; deliberately NOT part of SameDiscoveryOutcome, which
/// compares discovery results, not how they were obtained.
struct AnalysisSummary {
  bool ran = false;
  /// AC-DAG size before dependence pruning (after the usual
  /// unreachable-node drop), and how much pruning removed.
  uint64_t nodes_before = 0;
  uint64_t nodes_pruned = 0;
  uint64_t edges_before = 0;
  uint64_t edges_pruned = 0;
  /// Predicates excluded from statistical-debugging denominators because
  /// their sites are statically unreachable.
  uint64_t infeasible_predicates = 0;
  /// Lint findings on the subject program.
  uint64_t lint_errors = 0;
  uint64_t lint_warnings = 0;
};

}  // namespace aid

#endif  // AID_ANALYSIS_SUMMARY_H_
