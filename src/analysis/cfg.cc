#include "analysis/cfg.h"

#include <algorithm>

namespace aid {

namespace {

uint32_t RegBit(Reg r) {
  return (r >= 0 && r < kNumRegs) ? (1u << static_cast<uint32_t>(r)) : 0u;
}

}  // namespace

uint32_t InstrDefMask(const Instr& instr) {
  switch (instr.op) {
    case Op::kLoadConst:
    case Op::kLoadGlobal:
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kAddImm:
    case Op::kCmpEq:
    case Op::kCmpLt:
    case Op::kArrayLen:
    case Op::kArrayLoad:
    case Op::kRandom:
    case Op::kCall:
    case Op::kSpawn:
      return RegBit(instr.a);
    default:
      return 0;
  }
}

uint32_t InstrUseMask(const Instr& instr) {
  switch (instr.op) {
    case Op::kStoreGlobal:
    case Op::kArrayResize:
    case Op::kJoin:
    case Op::kJumpIfZero:
    case Op::kJumpIfNonZero:
    case Op::kThrowIfZero:
    case Op::kThrowIfNonZero:
    case Op::kReturn:
      return RegBit(instr.a);
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kCmpEq:
    case Op::kCmpLt:
      return RegBit(instr.b) | RegBit(instr.c);
    case Op::kAddImm:
    case Op::kArrayLoad:
      return RegBit(instr.b);
    case Op::kArrayStore:  // a = source value, b = index
      return RegBit(instr.a) | RegBit(instr.b);
    default:
      return 0;
  }
}

bool InstrFallsThrough(Op op) {
  return op != Op::kJump && op != Op::kThrow && op != Op::kReturn;
}

MethodCfg MethodCfg::Build(const MethodDef& method) {
  MethodCfg cfg;
  cfg.n_ = method.code.size();
  cfg.BuildEdges(method);
  cfg.ComputeReachability();
  cfg.ComputeMaybeUnwritten(method);
  cfg.ComputeReachingDefs(method);
  cfg.ComputePostdominators();
  cfg.ComputeControlDeps();
  return cfg;
}

void MethodCfg::BuildEdges(const MethodDef& method) {
  const int exit = static_cast<int>(n_);
  succ_.assign(n_ + 1, {});
  pred_.assign(n_ + 1, {});
  def_mask_.assign(n_, 0);
  use_mask_.assign(n_, 0);
  auto add_edge = [&](size_t from, int to) {
    // Malformed jump targets are clamped to the exit node: the analyzer
    // reports them as lint errors, but the CFG must stay well-formed so
    // the remaining passes can still run on hostile input.
    if (to < 0 || to > exit) to = exit;
    succ_[from].push_back(to);
    pred_[static_cast<size_t>(to)].push_back(static_cast<int>(from));
  };
  for (size_t pc = 0; pc < n_; ++pc) {
    const Instr& instr = method.code[pc];
    def_mask_[pc] = InstrDefMask(instr);
    use_mask_[pc] = InstrUseMask(instr);
    switch (instr.op) {
      case Op::kJump:
        add_edge(pc, static_cast<int>(instr.imm));
        break;
      case Op::kJumpIfZero:
      case Op::kJumpIfNonZero:
        add_edge(pc, static_cast<int>(instr.imm));
        add_edge(pc, static_cast<int>(pc) + 1);
        break;
      case Op::kReturn:
      case Op::kThrow:
        add_edge(pc, exit);
        break;
      case Op::kThrowIfZero:
      case Op::kThrowIfNonZero:
        add_edge(pc, exit);
        add_edge(pc, static_cast<int>(pc) + 1);
        break;
      default:
        add_edge(pc, static_cast<int>(pc) + 1);
        break;
    }
  }
}

void MethodCfg::ComputeReachability() {
  reachable_.assign(n_ + 1, false);
  if (n_ == 0) {
    reachable_[0] = true;  // empty method: entry == exit
    return;
  }
  std::vector<size_t> stack = {0};
  reachable_[0] = true;
  while (!stack.empty()) {
    const size_t node = stack.back();
    stack.pop_back();
    for (int next : succ_[node]) {
      if (!reachable_[static_cast<size_t>(next)]) {
        reachable_[static_cast<size_t>(next)] = true;
        stack.push_back(static_cast<size_t>(next));
      }
    }
  }
}

void MethodCfg::ComputeMaybeUnwritten(const MethodDef& method) {
  (void)method;
  const uint32_t all = (kNumRegs >= 32) ? ~0u : ((1u << kNumRegs) - 1);
  // in[pc] = union over predecessors of (in[p] & ~def[p]); in[0] |= all.
  maybe_unwritten_.assign(n_, 0);
  if (n_ == 0) return;
  std::vector<uint32_t> in(n_ + 1, 0);
  in[0] = all;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t pc = 0; pc < n_ + 1; ++pc) {
      uint32_t v = (pc == 0) ? all : 0;
      for (int p : pred_[pc]) {
        const auto up = static_cast<size_t>(p);
        v |= in[up] & ~def_mask_[up];
      }
      if (v != in[pc]) {
        in[pc] = v;
        changed = true;
      }
    }
  }
  for (size_t pc = 0; pc < n_; ++pc) maybe_unwritten_[pc] = in[pc];
}

void MethodCfg::ComputeReachingDefs(const MethodDef& method) {
  const size_t events = n_ + static_cast<size_t>(kNumRegs);
  rd_words_ = (events + 63) / 64;
  rd_in_.assign((n_ + 1) * rd_words_, 0);
  if (n_ == 0) return;

  auto word = [&](size_t node, size_t bit) -> uint64_t& {
    return rd_in_[node * rd_words_ + bit / 64];
  };
  auto test = [&](const std::vector<uint64_t>& set, size_t bit) {
    return (set[bit / 64] >> (bit % 64)) & 1u;
  };
  (void)test;

  // Entry: every register holds its frame-initial pseudo-definition.
  for (int r = 0; r < kNumRegs; ++r) {
    word(0, n_ + static_cast<size_t>(r)) |= 1ull << ((n_ + static_cast<size_t>(r)) % 64);
  }

  // Precompute, per register, the kill set (all events defining it).
  std::vector<std::vector<uint64_t>> kill_for_reg(
      static_cast<size_t>(kNumRegs), std::vector<uint64_t>(rd_words_, 0));
  for (int r = 0; r < kNumRegs; ++r) {
    auto& kill = kill_for_reg[static_cast<size_t>(r)];
    const size_t entry_bit = n_ + static_cast<size_t>(r);
    kill[entry_bit / 64] |= 1ull << (entry_bit % 64);
    for (size_t pc = 0; pc < n_; ++pc) {
      if (def_mask_[pc] & (1u << static_cast<uint32_t>(r))) {
        kill[pc / 64] |= 1ull << (pc % 64);
      }
    }
  }

  std::vector<uint64_t> out(rd_words_);
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t pc = 0; pc < n_; ++pc) {
      // out = (in & ~kill(defined regs)) | gen
      std::copy(rd_in_.begin() + static_cast<long>(pc * rd_words_),
                rd_in_.begin() + static_cast<long>((pc + 1) * rd_words_),
                out.begin());
      if (def_mask_[pc] != 0) {
        for (int r = 0; r < kNumRegs; ++r) {
          if (!(def_mask_[pc] & (1u << static_cast<uint32_t>(r)))) continue;
          const auto& kill = kill_for_reg[static_cast<size_t>(r)];
          for (size_t w = 0; w < rd_words_; ++w) out[w] &= ~kill[w];
        }
        out[pc / 64] |= 1ull << (pc % 64);
      }
      for (int next : succ_[pc]) {
        const auto node = static_cast<size_t>(next);
        for (size_t w = 0; w < rd_words_; ++w) {
          const uint64_t merged = rd_in_[node * rd_words_ + w] | out[w];
          if (merged != rd_in_[node * rd_words_ + w]) {
            rd_in_[node * rd_words_ + w] = merged;
            changed = true;
          }
        }
      }
    }
  }

  (void)method;
}

std::vector<int> MethodCfg::ReachingDefs(size_t pc, Reg r) const {
  std::vector<int> defs;
  if (r < 0 || r >= kNumRegs || pc > n_) return defs;
  auto test = [&](size_t bit) {
    return (rd_in_[pc * rd_words_ + bit / 64] >> (bit % 64)) & 1u;
  };
  const size_t entry_bit = n_ + static_cast<size_t>(r);
  if (test(entry_bit)) defs.push_back(-1);
  for (size_t d = 0; d < n_; ++d) {
    if ((def_mask_[d] & (1u << static_cast<uint32_t>(r))) && test(d)) {
      defs.push_back(static_cast<int>(d));
    }
  }
  return defs;
}

void MethodCfg::ComputePostdominators() {
  // Iterative dataflow on the reverse graph, exit as root. Nodes that do
  // not reach the exit keep ipostdom == -1.
  const int exit = static_cast<int>(n_);
  ipostdom_.assign(n_ + 1, -1);
  ipostdom_[static_cast<size_t>(exit)] = exit;
  if (n_ == 0) return;

  // Reverse postorder of the reverse CFG (i.e. postorder from exit over
  // pred edges) gives fast convergence for the standard Cooper/Harvey/
  // Kennedy algorithm.
  std::vector<int> order;  // nodes in visit-finish order from exit
  std::vector<uint8_t> state(n_ + 1, 0);
  std::vector<std::pair<int, size_t>> stack = {{exit, 0}};
  state[static_cast<size_t>(exit)] = 1;
  while (!stack.empty()) {
    auto& [node, i] = stack.back();
    const auto& preds = pred_[static_cast<size_t>(node)];
    if (i < preds.size()) {
      const int p = preds[i++];
      if (state[static_cast<size_t>(p)] == 0) {
        state[static_cast<size_t>(p)] = 1;
        stack.push_back({p, 0});
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  // order.back() == exit; process in reverse (exit first).
  std::vector<int> index_of(n_ + 1, -1);
  for (size_t i = 0; i < order.size(); ++i) {
    index_of[static_cast<size_t>(order[i])] = static_cast<int>(i);
  }
  auto intersect = [&](int a, int b) {
    while (a != b) {
      while (index_of[static_cast<size_t>(a)] < index_of[static_cast<size_t>(b)]) {
        a = ipostdom_[static_cast<size_t>(a)];
      }
      while (index_of[static_cast<size_t>(b)] < index_of[static_cast<size_t>(a)]) {
        b = ipostdom_[static_cast<size_t>(b)];
      }
    }
    return a;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const int node = *it;
      if (node == exit) continue;
      int new_idom = -1;
      for (int s : succ_[static_cast<size_t>(node)]) {
        if (ipostdom_[static_cast<size_t>(s)] == -1) continue;
        new_idom = (new_idom == -1) ? s : intersect(new_idom, s);
      }
      if (new_idom != -1 && ipostdom_[static_cast<size_t>(node)] != new_idom) {
        ipostdom_[static_cast<size_t>(node)] = new_idom;
        changed = true;
      }
    }
  }
}

void MethodCfg::ComputeControlDeps() {
  ctrl_deps_.assign(n_, {});
  // Ferrante et al.: for each edge (u, v) where v does not postdominate u,
  // every node on the postdominator-tree path from v up to (exclusive)
  // ipostdom(u) is control-dependent on u.
  for (size_t u = 0; u < n_; ++u) {
    if (succ_[u].size() < 2) continue;  // only branches induce dependence
    const int u_ipdom = ipostdom_[u];
    for (int v : succ_[u]) {
      int walk = v;
      // Follow the postdominator chain; -1 means the path never rejoins
      // the exit (infinite loop) -- everything visited is dependent on u.
      int guard = 0;
      while (walk != -1 && walk != u_ipdom &&
             guard++ <= static_cast<int>(n_) + 1) {
        if (walk != static_cast<int>(n_)) {
          auto& deps = ctrl_deps_[static_cast<size_t>(walk)];
          if (std::find(deps.begin(), deps.end(), static_cast<int>(u)) ==
              deps.end()) {
            deps.push_back(static_cast<int>(u));
          }
        }
        walk = ipostdom_[static_cast<size_t>(walk)];
      }
    }
  }
}

}  // namespace aid
