#include "analysis/analyzer.h"

#include <algorithm>

#include "common/strings.h"

namespace aid {

namespace {

/// Influence graphs beyond this many program points fall back to the
/// conservative "everything may influence everything" relation; the cap
/// keeps hostile wire-received programs from forcing quadratic bitset
/// work before the host even forks.
constexpr size_t kMaxInfluencePoints = 4096;

bool NeedsObject(Op op) {
  switch (op) {
    case Op::kLoadGlobal:
    case Op::kStoreGlobal:
    case Op::kArrayLen:
    case Op::kArrayLoad:
    case Op::kArrayStore:
    case Op::kArrayResize:
    case Op::kLock:
    case Op::kUnlock:
    case Op::kThrow:
    case Op::kThrowIfZero:
    case Op::kThrowIfNonZero:
      return true;
    default:
      return false;
  }
}

bool IsWriteAccess(Op op) {
  return op == Op::kStoreGlobal || op == Op::kArrayStore ||
         op == Op::kArrayResize;
}

bool IsDataAccess(Op op) {
  return IsWriteAccess(op) || op == Op::kLoadGlobal || op == Op::kArrayLen ||
         op == Op::kArrayLoad;
}

}  // namespace

ProgramAnalysis ProgramAnalysis::Analyze(const Program& program) {
  ProgramAnalysis analysis(program);
  analysis.cfgs_.reserve(program.methods().size());
  for (const MethodDef& method : program.methods()) {
    analysis.cfgs_.push_back(MethodCfg::Build(method));
  }
  analysis.Lint();
  analysis.BuildInfluence();
  return analysis;
}

void ProgramAnalysis::AddFinding(LintFinding::Severity severity,
                                 std::string code, std::string message,
                                 SymbolId method, int pc) {
  if (severity == LintFinding::Severity::kError) ++error_count_;
  findings_.push_back(LintFinding{severity, std::move(code),
                                  std::move(message), method, pc});
}

Status ProgramAnalysis::LintStatus() const {
  if (error_count_ == 0) return Status::OK();
  std::vector<std::string> parts;
  for (const LintFinding& f : findings_) {
    if (f.severity != LintFinding::Severity::kError) continue;
    parts.push_back(StrFormat("[%s] %s", f.code.c_str(), f.message.c_str()));
    if (parts.size() == 3) break;
  }
  return Status::InvalidArgument(StrFormat(
      "program lint failed with %zu error(s): %s", error_count_,
      Join(parts, "; ").c_str()));
}

void ProgramAnalysis::Lint() {
  const auto& methods = program_->methods();
  if (program_->entry() < 0 ||
      static_cast<size_t>(program_->entry()) >= methods.size()) {
    AddFinding(LintFinding::Severity::kError, "no-entry",
               "program has no valid entry method", kInvalidSymbol, -1);
  }
  for (size_t m = 0; m < methods.size(); ++m) {
    const MethodDef& method = methods[m];
    if (method.code.empty()) {
      AddFinding(LintFinding::Severity::kError, "empty-method",
                 StrFormat("method '%s' has no body", method.name.c_str()),
                 static_cast<SymbolId>(m), -1);
      continue;
    }
    const Op last = method.code.back().op;
    if (last != Op::kReturn && last != Op::kThrow && last != Op::kJump) {
      AddFinding(
          LintFinding::Severity::kError, "missing-terminator",
          StrFormat("method '%s' must end with return/throw/jump",
                    method.name.c_str()),
          static_cast<SymbolId>(m), static_cast<int>(method.code.size()) - 1);
    }
    const MethodCfg& cfg = cfgs_[m];
    for (size_t pc = 0; pc < method.code.size(); ++pc) {
      LintInstr(method, pc);
      if (!cfg.Reachable(pc)) {
        AddFinding(LintFinding::Severity::kWarning, "unreachable-code",
                   StrFormat("method '%s' pc %zu is unreachable",
                             method.name.c_str(), pc),
                   static_cast<SymbolId>(m), static_cast<int>(pc));
      } else if (InstrUseMask(method.code[pc]) & cfg.MaybeUnwritten(pc)) {
        AddFinding(LintFinding::Severity::kWarning, "maybe-undefined-register",
                   StrFormat("method '%s' pc %zu reads a register that may "
                             "never have been written",
                             method.name.c_str(), pc),
                   static_cast<SymbolId>(m), static_cast<int>(pc));
      }
    }
  }
}

void ProgramAnalysis::LintInstr(const MethodDef& method, size_t pc) {
  const Instr& instr = method.code[pc];
  const auto id = method.id;
  const int ipc = static_cast<int>(pc);
  auto error = [&](const char* code, std::string message) {
    AddFinding(LintFinding::Severity::kError, code, std::move(message), id,
               ipc);
  };
  auto warning = [&](const char* code, std::string message) {
    AddFinding(LintFinding::Severity::kWarning, code, std::move(message), id,
               ipc);
  };

  if (static_cast<uint8_t>(instr.op) > static_cast<uint8_t>(Op::kReturn)) {
    error("bad-opcode", StrFormat("method '%s' pc %zu: opcode %u out of range",
                                  method.name.c_str(), pc,
                                  static_cast<unsigned>(instr.op)));
    return;  // operand conventions are meaningless for unknown opcodes
  }
  if (instr.cost < 1) {
    error("non-positive-cost",
          StrFormat("method '%s' pc %zu: non-positive cost",
                    method.name.c_str(), pc));
  }

  auto check_reg = [&](Reg r, bool allow_none) {
    if (r == kNoReg && allow_none) return;
    if (r < 0 || r >= kNumRegs) {
      error("register-out-of-range",
            StrFormat("method '%s' pc %zu: register %d out of range",
                      method.name.c_str(), pc, r));
    }
  };

  switch (instr.op) {
    case Op::kJump:
    case Op::kJumpIfZero:
    case Op::kJumpIfNonZero:
      if (instr.imm < 0 ||
          static_cast<size_t>(instr.imm) >= method.code.size()) {
        error("bad-jump-target",
              StrFormat("method '%s' pc %zu: jump target %lld out of range",
                        method.name.c_str(), pc,
                        static_cast<long long>(instr.imm)));
      }
      if (instr.op != Op::kJump) check_reg(instr.a, false);
      break;
    case Op::kCall:
    case Op::kSpawn: {
      const auto callee = static_cast<size_t>(instr.imm);
      if (instr.imm < 0 || callee >= program_->methods().size() ||
          program_->methods()[callee].code.empty()) {
        error("unknown-callee",
              StrFormat("method '%s' pc %zu: callee %lld has no body",
                        method.name.c_str(), pc,
                        static_cast<long long>(instr.imm)));
      }
      check_reg(instr.a, true);
      break;
    }
    case Op::kReturn:
      check_reg(instr.a, true);
      break;
    case Op::kRandom:
      check_reg(instr.a, false);
      if (instr.imm <= 0) {
        error("bad-random-bound",
              StrFormat("method '%s' pc %zu: random bound %lld must be > 0",
                        method.name.c_str(), pc,
                        static_cast<long long>(instr.imm)));
      }
      break;
    case Op::kDelayRand:
      if (instr.imm2 < instr.imm) {
        error("bad-delay-range",
              StrFormat("method '%s' pc %zu: delay range [%lld, %lld] is "
                        "inverted",
                        method.name.c_str(), pc,
                        static_cast<long long>(instr.imm),
                        static_cast<long long>(instr.imm2)));
      }
      break;
    case Op::kNop:
    case Op::kDelay:
    case Op::kThrow:
    case Op::kLock:
    case Op::kUnlock:
      break;
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kCmpEq:
    case Op::kCmpLt:
      check_reg(instr.a, false);
      check_reg(instr.b, false);
      check_reg(instr.c, false);
      break;
    case Op::kAddImm:
    case Op::kArrayLoad:
    case Op::kArrayStore:
      check_reg(instr.a, false);
      check_reg(instr.b, false);
      break;
    default:
      check_reg(instr.a, false);
      break;
  }

  if (NeedsObject(instr.op)) {
    const bool is_exception = instr.op == Op::kThrow ||
                              instr.op == Op::kThrowIfZero ||
                              instr.op == Op::kThrowIfNonZero;
    const size_t table_size = is_exception
                                  ? program_->exception_names().size()
                                  : program_->object_names().size();
    if (instr.obj < 0 || static_cast<size_t>(instr.obj) >= table_size) {
      error("bad-object",
            StrFormat("method '%s' pc %zu: %s symbol %d out of range",
                      method.name.c_str(), pc,
                      is_exception ? "exception" : "object", instr.obj));
    } else if (!is_exception) {
      // Declared-kind mismatches execute safely (the VM auto-creates the
      // missing state) but almost always indicate a corrupted program.
      const bool is_global = program_->globals().count(instr.obj) > 0;
      const bool is_array = program_->arrays().count(instr.obj) > 0;
      const bool is_mutex =
          std::find(program_->mutexes().begin(), program_->mutexes().end(),
                    instr.obj) != program_->mutexes().end();
      const bool want_global =
          instr.op == Op::kLoadGlobal || instr.op == Op::kStoreGlobal;
      const bool want_mutex = instr.op == Op::kLock || instr.op == Op::kUnlock;
      const bool matches = want_global   ? is_global
                           : want_mutex  ? is_mutex
                                         : is_array;
      if (!matches) {
        warning((is_global || is_array || is_mutex) ? "object-kind-mismatch"
                                                    : "undeclared-object",
                StrFormat("method '%s' pc %zu: object '%s' is not declared "
                          "as the kind this opcode expects",
                          method.name.c_str(), pc,
                          program_->object_names().Name(instr.obj).c_str()));
      }
    }
  }
}

void ProgramAnalysis::BuildInfluence() {
  const auto& methods = program_->methods();
  const size_t m = methods.size();
  method_reachable_.assign(m, true);
  may_influence_.assign(m, std::vector<bool>(m, true));
  if (m == 0 || error_count_ > 0) {
    // Malformed programs get the fully conservative relation.
    degenerate_ = true;
    return;
  }

  // Program points: per method, one point per instruction plus a synthetic
  // exit. Shared-object and mutex channels go through per-object hub
  // points so cliques stay linear in the number of accesses.
  std::vector<size_t> offset(m + 1, 0);
  for (size_t i = 0; i < m; ++i) {
    offset[i + 1] = offset[i] + methods[i].code.size() + 1;
  }
  const size_t code_points = offset[m];
  const size_t object_count = program_->object_names().size();
  const size_t total = code_points + object_count;
  if (code_points == 0 || total > kMaxInfluencePoints) {
    degenerate_ = true;
    return;
  }
  auto point = [&](size_t method, size_t pc) { return offset[method] + pc; };
  auto exit_point = [&](size_t method) {
    return offset[method] + methods[method].code.size();
  };
  auto hub = [&](SymbolId obj) {
    return code_points + static_cast<size_t>(obj);
  };

  std::vector<std::vector<int>> adj(total);
  auto add_edge = [&](size_t from, size_t to) {
    adj[from].push_back(static_cast<int>(to));
  };

  // Spawn-target universe for unresolved joins: every spawned method plus
  // the entry (thread 0).
  std::vector<size_t> spawn_targets;
  auto remember_spawn = [&](size_t callee) {
    if (std::find(spawn_targets.begin(), spawn_targets.end(), callee) ==
        spawn_targets.end()) {
      spawn_targets.push_back(callee);
    }
  };
  remember_spawn(static_cast<size_t>(program_->entry()));
  for (const MethodDef& method : methods) {
    for (const Instr& instr : method.code) {
      if (instr.op == Op::kSpawn && instr.imm >= 0 &&
          static_cast<size_t>(instr.imm) < m) {
        remember_spawn(static_cast<size_t>(instr.imm));
      }
    }
  }

  for (size_t i = 0; i < m; ++i) {
    const MethodCfg& cfg = cfgs_[i];
    const auto& code = methods[i].code;
    for (size_t pc = 0; pc < code.size(); ++pc) {
      for (int s : cfg.Successors(pc)) {
        add_edge(point(i, pc), point(i, static_cast<size_t>(s)));
      }
      const Instr& instr = code[pc];
      switch (instr.op) {
        case Op::kCall: {
          const auto callee = static_cast<size_t>(instr.imm);
          if (instr.imm >= 0 && callee < m) {
            add_edge(point(i, pc), point(callee, 0));
            // Normal return resumes after the call; an uncaught exception
            // unwinds the caller, so the callee's exit also influences the
            // caller's exit.
            add_edge(exit_point(callee),
                     point(i, std::min(pc + 1, code.size())));
            add_edge(exit_point(callee), exit_point(i));
          }
          break;
        }
        case Op::kSpawn: {
          const auto callee = static_cast<size_t>(instr.imm);
          if (instr.imm >= 0 && callee < m) {
            add_edge(point(i, pc), point(callee, 0));
          }
          break;
        }
        case Op::kJoin: {
          // Resolve which threads this join can wait on through the
          // reaching definitions of the join register: kSpawn definitions
          // name the method; anything else degrades to every spawnable
          // method.
          bool unknown = false;
          std::vector<size_t> targets;
          for (int d : cfg.ReachingDefs(pc, instr.a)) {
            if (d >= 0 && code[static_cast<size_t>(d)].op == Op::kSpawn &&
                code[static_cast<size_t>(d)].imm >= 0 &&
                static_cast<size_t>(code[static_cast<size_t>(d)].imm) < m) {
              targets.push_back(
                  static_cast<size_t>(code[static_cast<size_t>(d)].imm));
            } else {
              unknown = true;
            }
          }
          if (unknown || targets.empty()) targets = spawn_targets;
          for (size_t tm : targets) {
            add_edge(exit_point(tm), point(i, pc));
          }
          break;
        }
        default:
          break;
      }
      if (NeedsObject(instr.op) && instr.obj >= 0 &&
          static_cast<size_t>(instr.obj) < object_count) {
        if (instr.op == Op::kLock || instr.op == Op::kUnlock) {
          // Blocking influences flow both ways between lock points.
          add_edge(point(i, pc), hub(instr.obj));
          add_edge(hub(instr.obj), point(i, pc));
        } else if (IsDataAccess(instr.op)) {
          if (IsWriteAccess(instr.op)) add_edge(point(i, pc), hub(instr.obj));
          add_edge(hub(instr.obj), point(i, pc));
        }
      }
    }
  }

  // Transitive reachability over the point graph (worklist to fixpoint;
  // the graph is cyclic, so plain topological propagation cannot apply).
  const size_t words = (total + 63) / 64;
  std::vector<uint64_t> reach(total * words, 0);
  auto set_bit = [&](std::vector<uint64_t>& bits, size_t base, size_t v) {
    bits[base + v / 64] |= 1ull << (v % 64);
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t u = total; u-- > 0;) {
      const size_t base = u * words;
      for (int v : adj[u]) {
        const size_t vb = static_cast<size_t>(v) * words;
        uint64_t diff = 0;
        for (size_t w = 0; w < words; ++w) {
          const uint64_t add = reach[vb + w];
          diff |= add & ~reach[base + w];
          reach[base + w] |= add;
        }
        if (!(reach[base + static_cast<size_t>(v) / 64] >>
                  (static_cast<size_t>(v) % 64) &
              1u)) {
          set_bit(reach, base, static_cast<size_t>(v));
          diff = 1;
        }
        if (diff != 0) changed = true;
      }
    }
  }

  auto any_in_method = [&](const std::vector<uint64_t>& bits, size_t base,
                           size_t method) {
    for (size_t p = offset[method]; p <= exit_point(method); ++p) {
      if ((bits[base + p / 64] >> (p % 64)) & 1u) return true;
    }
    return false;
  };

  const auto entry_pt = point(static_cast<size_t>(program_->entry()), 0);
  for (size_t j = 0; j < m; ++j) {
    method_reachable_[j] =
        j == static_cast<size_t>(program_->entry()) ||
        any_in_method(reach, entry_pt * words, j);
  }

  for (size_t i = 0; i < m; ++i) {
    // Union of reach over every point of i.
    std::vector<uint64_t> from(words, 0);
    for (size_t p = offset[i]; p <= exit_point(i); ++p) {
      for (size_t w = 0; w < words; ++w) from[w] |= reach[p * words + w];
    }
    for (size_t j = 0; j < m; ++j) {
      may_influence_[i][j] = i == j || any_in_method(from, 0, j);
    }
  }
  degenerate_ = false;
}

bool ProgramAnalysis::MethodReachable(SymbolId method) const {
  if (method < 0 || static_cast<size_t>(method) >= method_reachable_.size()) {
    return true;
  }
  return method_reachable_[static_cast<size_t>(method)];
}

bool ProgramAnalysis::MayInfluence(SymbolId from, SymbolId to) const {
  if (degenerate_) return true;
  if (from < 0 || to < 0 ||
      static_cast<size_t>(from) >= may_influence_.size() ||
      static_cast<size_t>(to) >= may_influence_.size()) {
    return true;
  }
  return may_influence_[static_cast<size_t>(from)][static_cast<size_t>(to)];
}

std::vector<SymbolId> PredicateMethods(const PredicateCatalog& catalog,
                                       PredicateId id) {
  std::vector<SymbolId> methods;
  std::vector<PredicateId> stack = {id};
  int guard = 0;
  while (!stack.empty() && guard++ < 64) {
    const PredicateId current = stack.back();
    stack.pop_back();
    if (current < 0 || static_cast<size_t>(current) >= catalog.size()) {
      continue;
    }
    const Predicate& pred = catalog.Get(current);
    if (pred.kind == PredKind::kCompound) {
      stack.push_back(pred.sub1);
      stack.push_back(pred.sub2);
      continue;
    }
    for (SymbolId method : {pred.m1, pred.m2}) {
      if (method == kInvalidSymbol) continue;
      if (std::find(methods.begin(), methods.end(), method) == methods.end()) {
        methods.push_back(method);
      }
    }
  }
  return methods;
}

std::vector<PredicateId> InfeasiblePredicates(const ProgramAnalysis& analysis,
                                              const PredicateCatalog& catalog) {
  std::vector<PredicateId> infeasible;
  for (size_t i = 0; i < catalog.size(); ++i) {
    const auto id = static_cast<PredicateId>(i);
    const Predicate& pred = catalog.Get(id);
    if (pred.kind == PredKind::kFailure || pred.kind == PredKind::kSynthetic) {
      continue;
    }
    const std::vector<SymbolId> methods = PredicateMethods(catalog, id);
    if (methods.empty()) continue;
    // A site is infeasible when any constituent method can never run.
    const bool dead = std::any_of(
        methods.begin(), methods.end(),
        [&](SymbolId method) { return !analysis.MethodReachable(method); });
    if (dead) infeasible.push_back(id);
  }
  return infeasible;
}

}  // namespace aid
