// Per-method control-flow graph, def-use sets, reaching definitions, and
// control dependence for the AID VM (runtime/program.h).
//
// The CFG is the intra-procedural half of the static analyzer: one graph
// per MethodDef whose nodes are instruction indices plus a synthetic exit
// node (pc == code.size()). kReturn and kThrow edge to the exit; jumps edge
// to their targets; everything else falls through. Construction never
// fails -- malformed operands (out-of-range jump targets and the like) are
// clamped to the exit node so the analyzer can still reason about hostile
// wire-received programs while reporting the malformation as a lint
// finding (analysis/analyzer.h).

#ifndef AID_ANALYSIS_CFG_H_
#define AID_ANALYSIS_CFG_H_

#include <cstdint>
#include <vector>

#include "runtime/program.h"

namespace aid {

/// Registers defined (written) by one instruction, as a bitmask over
/// [0, kNumRegs). kNoReg operands contribute no bit.
uint32_t InstrDefMask(const Instr& instr);

/// Registers used (read) by one instruction, as a bitmask.
uint32_t InstrUseMask(const Instr& instr);

/// Whether control can continue to pc+1 after this opcode (false for
/// unconditional jump, throw, and return).
bool InstrFallsThrough(Op op);

/// CFG + dataflow facts for one method. Nodes are [0, n] where n =
/// code.size() is the synthetic exit node.
class MethodCfg {
 public:
  /// Builds the CFG and runs the dataflow passes. Total work is a small
  /// number of fixpoint sweeps over the (tiny) method body.
  static MethodCfg Build(const MethodDef& method);

  size_t size() const { return n_; }  ///< instruction count (exit node id)

  const std::vector<int>& Successors(size_t node) const {
    return succ_[node];
  }
  /// True if `node` is reachable from the method entry (pc 0).
  bool Reachable(size_t node) const { return reachable_[node]; }

  /// Registers that may still be unwritten (holding their frame-initial
  /// zero) on entry to `pc`, as a bitmask.
  uint32_t MaybeUnwritten(size_t pc) const { return maybe_unwritten_[pc]; }

  /// Definition sites of register `r` that may reach the entry of `pc`.
  /// Contains -1 when the frame-initial value may still be live.
  std::vector<int> ReachingDefs(size_t pc, Reg r) const;

  /// Branch instructions `pc` is control-dependent on (Ferrante et al.,
  /// computed from the postdominator tree). Nodes that cannot reach the
  /// exit (e.g. bodies of infinite loops) have no postdominator; the walk
  /// from such a branch edge records its head and stops.
  const std::vector<int>& ControlDeps(size_t pc) const {
    return ctrl_deps_[pc];
  }

  /// Immediate postdominator of `node`, or -1 if the node cannot reach the
  /// exit. The exit node postdominates itself.
  int ImmediatePostdom(size_t node) const { return ipostdom_[node]; }

 private:
  MethodCfg() = default;

  void BuildEdges(const MethodDef& method);
  void ComputeReachability();
  void ComputeMaybeUnwritten(const MethodDef& method);
  void ComputeReachingDefs(const MethodDef& method);
  void ComputePostdominators();
  void ComputeControlDeps();

  size_t n_ = 0;
  std::vector<std::vector<int>> succ_;   // [0, n_]
  std::vector<std::vector<int>> pred_;   // [0, n_]
  std::vector<bool> reachable_;          // [0, n_]
  std::vector<uint32_t> def_mask_;       // [0, n_)
  std::vector<uint32_t> use_mask_;       // [0, n_)
  std::vector<uint32_t> maybe_unwritten_;  // [0, n_)
  std::vector<int> ipostdom_;            // [0, n_]
  std::vector<std::vector<int>> ctrl_deps_;  // [0, n_)
  // Reaching definitions: per node, a bitset over "definition events".
  // Events 0..n_-1 are definitions at that pc; event n_+r is the
  // frame-initial pseudo-definition of register r.
  size_t rd_words_ = 0;
  std::vector<uint64_t> rd_in_;  // (n_+1) * rd_words_
};

}  // namespace aid

#endif  // AID_ANALYSIS_CFG_H_
