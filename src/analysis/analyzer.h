// Whole-program static analysis over runtime::Program: lint + a
// conservative may-influence relation between methods.
//
// The analyzer serves three consumers (paper Section 4's "prune edges the
// program can be *proven* not to realize" is dynamic in CAID; this is the
// static complement):
//
//   * causal/acdag -- an AC-DAG edge P -> Q is causally meaningful only if
//     some program point of P's method(s) can influence a point of Q's
//     method(s) through control flow, spawned threads, joins, shared
//     globals/arrays, or mutexes. Edges between dependence-disjoint points
//     are temporal coincidences and are pruned before the intervention
//     loop spends trials on them.
//   * inject/compiler -- statically enumerated intervention points: a
//     predicate whose methods fall outside the program (or whose flip
//     would perturb shared state) is rejected with a diagnostic up front.
//   * proc/subject_host -- pre-fork lint of wire-received programs:
//     undefined registers, unreachable sites, malformed operands become a
//     structured ERROR frame instead of a crashed child.
//
// Analysis never aborts on malformed programs; malformations surface as
// kError findings and the influence relation degrades conservatively
// (everything may influence everything).

#ifndef AID_ANALYSIS_ANALYZER_H_
#define AID_ANALYSIS_ANALYZER_H_

#include <string>
#include <vector>

#include "analysis/cfg.h"
#include "common/status.h"
#include "predicates/predicate.h"
#include "runtime/program.h"

namespace aid {

/// One lint diagnostic about a program. `code` is a stable slug (the lint
/// catalog is documented in docs/static_analysis.md).
struct LintFinding {
  enum class Severity : uint8_t { kWarning, kError };
  Severity severity = Severity::kWarning;
  std::string code;     ///< e.g. "bad-jump-target"
  std::string message;  ///< human-readable, method/pc-qualified
  SymbolId method = kInvalidSymbol;
  int pc = -1;
};

/// Static analysis results for one Program. Build once per program (the
/// program must outlive the analysis).
class ProgramAnalysis {
 public:
  static ProgramAnalysis Analyze(const Program& program);

  const std::vector<LintFinding>& findings() const { return findings_; }
  size_t error_count() const { return error_count_; }
  size_t warning_count() const { return findings_.size() - error_count_; }

  /// OK if the program has no error-severity findings; otherwise an
  /// InvalidArgument listing the first few errors.
  Status LintStatus() const;

  /// True if `method` is reachable from the entry method via calls and
  /// spawns. Unknown methods are conservatively reachable.
  bool MethodReachable(SymbolId method) const;

  /// Conservative influence: can executing `from` affect the execution,
  /// timing, or values observed in `to`? Reflexive; true whenever the
  /// analysis cannot prove independence.
  bool MayInfluence(SymbolId from, SymbolId to) const;

  /// Per-method CFG/dataflow facts (valid method ids only).
  const MethodCfg& cfg(SymbolId method) const {
    return cfgs_[static_cast<size_t>(method)];
  }

  const Program& program() const { return *program_; }

 private:
  explicit ProgramAnalysis(const Program& program) : program_(&program) {}

  void Lint();
  void LintInstr(const MethodDef& method, size_t pc);
  void BuildInfluence();
  void AddFinding(LintFinding::Severity severity, std::string code,
                  std::string message, SymbolId method, int pc);

  const Program* program_;
  std::vector<MethodCfg> cfgs_;
  std::vector<LintFinding> findings_;
  size_t error_count_ = 0;
  bool degenerate_ = false;  ///< analysis bailed; everything influences
  std::vector<bool> method_reachable_;
  std::vector<std::vector<bool>> may_influence_;  // [from][to]
};

/// Predicate ids in `catalog` whose instrumentation sites can never fire
/// because every referenced method is statically unreachable. These should
/// not enter statistical-debugging denominators (they would dilute scores
/// with structurally impossible observations).
std::vector<PredicateId> InfeasiblePredicates(const ProgramAnalysis& analysis,
                                              const PredicateCatalog& catalog);

/// Methods a predicate's truth depends on (m1/m2, recursing through
/// compound predicates). Empty for predicates that reference no method
/// (e.g. kFailure, kSynthetic) -- callers must treat those conservatively.
std::vector<SymbolId> PredicateMethods(const PredicateCatalog& catalog,
                                       PredicateId id);

}  // namespace aid

#endif  // AID_ANALYSIS_ANALYZER_H_
