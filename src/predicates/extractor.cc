#include "predicates/extractor.h"

#include <algorithm>
#include <map>

#include "common/strings.h"

namespace aid {
namespace {

/// Registers one observed predicate instance into the log, interning it if a
/// catalog is provided. If the same predicate was already observed in this
/// run (e.g. two executions of a loop body are both slow and occurrence
/// indexing is off), the earliest instance is kept, matching the intuition
/// that the first manifestation is the potential cause.
void Register(const Predicate& pred, PredicateObservation obs,
              const PredicateCatalog& frozen, PredicateCatalog* intern_into,
              PredicateLog* log) {
  PredicateId id;
  if (intern_into != nullptr) {
    id = intern_into->Intern(pred);
  } else {
    id = frozen.Find(pred);
    if (id == kInvalidPredicate) return;
  }
  auto it = log->observed.find(id);
  if (it == log->observed.end() || obs.start < it->second.start) {
    log->observed[id] = obs;
  }
}

}  // namespace

Status PredicateExtractor::Observe(const std::vector<ExecutionTrace>& traces) {
  if (observed_) {
    return Status::FailedPrecondition("Observe() may only be called once");
  }
  int successes = 0;
  int failures = 0;
  for (const auto& trace : traces) {
    trace.failed() ? ++failures : ++successes;
  }
  if (successes == 0 || failures == 0) {
    return Status::InvalidArgument(
        StrFormat("need both successful and failed runs (got %d/%d)",
                  successes, failures));
  }

  // Pass 1: baselines from the successful executions.
  for (const auto& trace : traces) {
    if (trace.failed()) continue;
    AID_ASSIGN_OR_RETURN(std::vector<MethodExecution> execs,
                         trace.BuildMethodExecutions());
    for (const MethodExecution& exec : execs) {
      MethodBaseline& base = baselines_[exec.method];
      const Tick duration = exec.duration();
      if (base.executions == 0) {
        base.min_duration = duration;
        base.max_duration = duration;
        if (exec.has_return_value && !exec.threw) {
          base.consistent_return = exec.return_value;
        }
      } else {
        base.min_duration = std::min(base.min_duration, duration);
        base.max_duration = std::max(base.max_duration, duration);
        if (!exec.has_return_value || exec.threw ||
            (base.consistent_return.has_value() &&
             *base.consistent_return != exec.return_value)) {
          base.consistent_return.reset();
        }
      }
      ++base.executions;
    }
  }

  // The failure predicate is always part of the catalog.
  failure_predicate_ = catalog_.Intern(Predicate{.kind = PredKind::kFailure});

  // Pass 2: extract and intern predicates from every run.
  logs_.reserve(traces.size());
  for (const auto& trace : traces) {
    PredicateLog log;
    AID_RETURN_IF_ERROR(ExtractInto(trace, &catalog_, &log));
    logs_.push_back(std::move(log));
  }
  observed_ = true;
  return Status::OK();
}

Result<PredicateLog> PredicateExtractor::Evaluate(
    const ExecutionTrace& trace) const {
  if (!observed_) {
    return Status::FailedPrecondition("Evaluate() requires Observe() first");
  }
  PredicateLog log;
  AID_RETURN_IF_ERROR(ExtractInto(trace, nullptr, &log));
  return log;
}

Status PredicateExtractor::ExtractInto(const ExecutionTrace& trace,
                                       PredicateCatalog* intern_into,
                                       PredicateLog* log) const {
  log->failed = trace.failed();
  AID_ASSIGN_OR_RETURN(std::vector<MethodExecution> execs,
                       trace.BuildMethodExecutions());

  // Per-execution predicates: durations, returns, failures.
  for (const MethodExecution& exec : execs) {
    const int occurrence = options_.per_occurrence ? exec.occurrence : 0;
    if (options_.method_failures && exec.threw) {
      // A method has "failed" once the exception leaves it (its abnormal
      // exit); a contained exception is stamped where it was raised. This
      // orders MethodFails predicates along the unwind chain.
      const Tick when =
          exec.exception_escaped ? exec.exit_tick : exec.throw_tick;
      Register(Predicate{.kind = PredKind::kMethodFails,
                         .m1 = exec.method,
                         .occurrence = occurrence},
               {when, when}, catalog_, intern_into, log);
    }
    auto base_it = baselines_.find(exec.method);
    if (base_it == baselines_.end()) continue;
    const MethodBaseline& base = base_it->second;
    if (options_.durations) {
      const Tick duration = exec.duration();
      if (duration > base.max_duration + options_.duration_slack) {
        // "Too slow" becomes definite the moment the execution outlives the
        // slowest successful run -- not at its (much later) exit. Stamping
        // the onset keeps the predicate temporally *before* its downstream
        // effects (e.g. an event that fires mid-execution because the
        // method is still running), so the AC-DAG edge points the causal
        // way (Section 4, Case 1).
        const Tick definite_at =
            exec.enter_tick + base.max_duration + options_.duration_slack;
        Register(Predicate{.kind = PredKind::kTooSlow,
                           .m1 = exec.method,
                           .occurrence = occurrence},
                 {exec.enter_tick, definite_at}, catalog_, intern_into, log);
      } else if (duration + options_.duration_slack < base.min_duration) {
        Register(Predicate{.kind = PredKind::kTooFast,
                           .m1 = exec.method,
                           .occurrence = occurrence},
                 {exec.enter_tick, exec.exit_tick}, catalog_, intern_into, log);
      }
    }
    if (options_.wrong_returns && exec.has_return_value && !exec.threw &&
        base.consistent_return.has_value() &&
        exec.return_value != *base.consistent_return) {
      Register(Predicate{.kind = PredKind::kWrongReturn,
                         .m1 = exec.method,
                         .occurrence = occurrence,
                         .expected = *base.consistent_return},
               {exec.exit_tick, exec.exit_tick}, catalog_, intern_into, log);
    }
  }

  // Data races: concurrent, lock-disjoint accesses to the same object from
  // different threads, at least one a write, inside temporally overlapping
  // method executions (the paper's Figure 2 extraction condition).
  if (options_.data_races) {
    std::unordered_map<CallUid, const MethodExecution*> by_uid;
    for (const MethodExecution& exec : execs) by_uid[exec.call_uid] = &exec;
    std::map<SymbolId, std::vector<const Event*>> accesses;
    for (const Event& e : trace.events()) {
      if (e.kind == EventKind::kRead || e.kind == EventKind::kWrite) {
        accesses[e.object].push_back(&e);
      }
    }
    auto disjoint = [](const std::vector<SymbolId>& a,
                       const std::vector<SymbolId>& b) {
      for (SymbolId x : a) {
        if (std::find(b.begin(), b.end(), x) != b.end()) return false;
      }
      return true;
    };
    for (const auto& [object, events] : accesses) {
      for (size_t i = 0; i < events.size(); ++i) {
        for (size_t j = i + 1; j < events.size(); ++j) {
          const Event& a = *events[i];
          const Event& b = *events[j];
          if (a.thread == b.thread) continue;
          if (a.kind != EventKind::kWrite && b.kind != EventKind::kWrite) {
            continue;
          }
          if (!disjoint(a.locks_held, b.locks_held)) continue;
          auto ita = by_uid.find(a.call_uid);
          auto itb = by_uid.find(b.call_uid);
          if (ita == by_uid.end() || itb == by_uid.end()) continue;
          if (!ita->second->Overlaps(*itb->second)) continue;
          SymbolId m1 = ita->second->method;
          SymbolId m2 = itb->second->method;
          if (m1 > m2) std::swap(m1, m2);
          Register(Predicate{.kind = PredKind::kDataRace,
                             .m1 = m1,
                             .m2 = m2,
                             .obj = object},
                   {std::min(a.tick, b.tick), std::max(a.tick, b.tick)},
                   catalog_, intern_into, log);
        }
      }
    }
  }

  // Atomicity violations: a conflicting access from another thread lands
  // strictly between two consecutive accesses of one method execution (the
  // intruder breaks the interval the method implicitly assumed atomic).
  // Accesses conflict when they touch the same object and at least one is a
  // write. This is the crisp single-predicate form the paper's reference
  // predicate design uses for the dominant class of concurrency bugs.
  if (options_.atomicity_violations) {
    std::unordered_map<CallUid, const MethodExecution*> by_uid;
    for (const MethodExecution& exec : execs) by_uid[exec.call_uid] = &exec;
    std::vector<const Event*> all_accesses;
    for (const Event& e : trace.events()) {
      if (e.kind == EventKind::kRead || e.kind == EventKind::kWrite) {
        all_accesses.push_back(&e);
      }
    }
    for (const MethodExecution& exec : execs) {
      for (size_t k = 0; k + 1 < exec.access_events.size(); ++k) {
        const Event& first = trace.events()[exec.access_events[k]];
        const Event& second = trace.events()[exec.access_events[k + 1]];
        for (const Event* intruder : all_accesses) {
          if (intruder->thread == exec.thread) continue;
          if (intruder->tick <= first.tick || intruder->tick >= second.tick) {
            continue;
          }
          // Conflict with either endpoint of the atomic section.
          const bool conflicts =
              (intruder->object == first.object &&
               (intruder->kind == EventKind::kWrite ||
                first.kind == EventKind::kWrite)) ||
              (intruder->object == second.object &&
               (intruder->kind == EventKind::kWrite ||
                second.kind == EventKind::kWrite));
          if (!conflicts) continue;
          auto it = by_uid.find(intruder->call_uid);
          if (it == by_uid.end()) continue;
          Register(Predicate{.kind = PredKind::kAtomicityViolation,
                             .m1 = exec.method,
                             .m2 = it->second->method,
                             .obj = intruder->object},
                   {intruder->tick, intruder->tick}, catalog_, intern_into,
                   log);
        }
      }
    }
  }

  // Order inversions and return-value collisions range over the *first*
  // executions of method pairs.
  if (options_.order_inversions || options_.return_equals) {
    std::map<SymbolId, const MethodExecution*> first_exec;
    for (const MethodExecution& exec : execs) {
      auto [it, inserted] = first_exec.emplace(exec.method, &exec);
      if (!inserted && exec.enter_seq < it->second->enter_seq) {
        it->second = &exec;
      }
    }
    for (auto ita = first_exec.begin(); ita != first_exec.end(); ++ita) {
      for (auto itb = first_exec.begin(); itb != first_exec.end(); ++itb) {
        if (ita == itb) continue;
        const MethodExecution& a = *ita->second;
        const MethodExecution& b = *itb->second;
        // "a started before b finished" -- only meaningful cross-thread and
        // only recorded in the inverted direction (a after b is the common
        // case when b waits for a).
        if (options_.order_inversions && a.thread != b.thread &&
            a.enter_tick < b.exit_tick && a.enter_tick > b.enter_tick) {
          Register(Predicate{.kind = PredKind::kOrder,
                             .m1 = a.method,
                             .m2 = b.method},
                   {a.enter_tick, a.enter_tick}, catalog_, intern_into, log);
        }
        if (options_.return_equals && ita->first < itb->first &&
            a.has_return_value && b.has_return_value && !a.threw && !b.threw &&
            a.return_value == b.return_value) {
          const Tick when = std::max(a.exit_tick, b.exit_tick);
          Register(Predicate{.kind = PredKind::kReturnEquals,
                             .m1 = a.method,
                             .m2 = b.method},
                   {when, when}, catalog_, intern_into, log);
        }
      }
    }
  }

  // The failure predicate F.
  if (trace.failed()) {
    Register(Predicate{.kind = PredKind::kFailure},
             {trace.end_tick(), trace.end_tick()}, catalog_, intern_into, log);
  }

  // Compound predicates: conjunction observed iff both members are.
  for (const auto& [a, b] : compounds_) {
    auto ia = log->observed.find(a);
    auto ib = log->observed.find(b);
    if (ia == log->observed.end() || ib == log->observed.end()) continue;
    const Predicate compound{
        .kind = PredKind::kCompound, .sub1 = a, .sub2 = b};
    Register(compound,
             {std::min(ia->second.start, ib->second.start),
              std::max(ia->second.end, ib->second.end)},
             catalog_, intern_into, log);
  }
  return Status::OK();
}

Result<PredicateId> PredicateExtractor::AddCompound(PredicateId a,
                                                    PredicateId b) {
  if (!observed_) {
    return Status::FailedPrecondition("AddCompound() requires Observe() first");
  }
  if (a == b || a < 0 || b < 0 ||
      static_cast<size_t>(a) >= catalog_.size() ||
      static_cast<size_t>(b) >= catalog_.size()) {
    return Status::InvalidArgument("invalid compound members");
  }
  const PredicateId id = catalog_.Intern(
      Predicate{.kind = PredKind::kCompound, .sub1 = a, .sub2 = b});
  compounds_.emplace_back(a, b);
  for (PredicateLog& log : logs_) {
    auto ia = log.observed.find(a);
    auto ib = log.observed.find(b);
    if (ia == log.observed.end() || ib == log.observed.end()) continue;
    log.observed[id] = {std::min(ia->second.start, ib->second.start),
                        std::max(ia->second.end, ib->second.end)};
  }
  return id;
}

}  // namespace aid
