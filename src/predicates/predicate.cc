#include "predicates/predicate.h"

#include "common/strings.h"

namespace aid {
namespace {

std::string MethodName(const SymbolTable* methods, SymbolId id) {
  if (id == kInvalidSymbol) return "?";
  if (methods == nullptr) return StrFormat("m%d", id);
  return methods->Name(id);
}

std::string ObjectName(const SymbolTable* objects, SymbolId id) {
  if (id == kInvalidSymbol) return "?";
  if (objects == nullptr) return StrFormat("o%d", id);
  return objects->Name(id);
}

}  // namespace

std::string_view PredKindName(PredKind kind) {
  switch (kind) {
    case PredKind::kDataRace:
      return "DataRace";
    case PredKind::kAtomicityViolation:
      return "AtomicityViolation";
    case PredKind::kMethodFails:
      return "MethodFails";
    case PredKind::kTooSlow:
      return "TooSlow";
    case PredKind::kTooFast:
      return "TooFast";
    case PredKind::kWrongReturn:
      return "WrongReturn";
    case PredKind::kOrder:
      return "OrderInversion";
    case PredKind::kReturnEquals:
      return "ReturnEquals";
    case PredKind::kCompound:
      return "Compound";
    case PredKind::kSynthetic:
      return "Synthetic";
    case PredKind::kFailure:
      return "Failure";
  }
  return "Unknown";
}

std::string_view TrialOutcomeName(TrialOutcome outcome) {
  switch (outcome) {
    case TrialOutcome::kCompleted:
      return "completed";
    case TrialOutcome::kCrashed:
      return "crashed";
    case TrialOutcome::kTimedOut:
      return "timed_out";
  }
  return "unknown";
}

std::string PredicateCatalog::Describe(PredicateId id,
                                       const SymbolTable* methods,
                                       const SymbolTable* objects) const {
  const Predicate& p = Get(id);
  const std::string occ =
      p.occurrence > 0 ? StrFormat("#%d", p.occurrence) : std::string();
  switch (p.kind) {
    case PredKind::kDataRace:
      return StrFormat("data race between %s and %s on %s",
                       MethodName(methods, p.m1).c_str(),
                       MethodName(methods, p.m2).c_str(),
                       ObjectName(objects, p.obj).c_str());
    case PredKind::kAtomicityViolation:
      return StrFormat("%s interleaves %s's atomic section on %s",
                       MethodName(methods, p.m2).c_str(),
                       MethodName(methods, p.m1).c_str(),
                       ObjectName(objects, p.obj).c_str());
    case PredKind::kMethodFails:
      return StrFormat("%s%s throws an exception",
                       MethodName(methods, p.m1).c_str(), occ.c_str());
    case PredKind::kTooSlow:
      return StrFormat("%s%s runs too slow", MethodName(methods, p.m1).c_str(),
                       occ.c_str());
    case PredKind::kTooFast:
      return StrFormat("%s%s runs too fast", MethodName(methods, p.m1).c_str(),
                       occ.c_str());
    case PredKind::kWrongReturn:
      return StrFormat("%s%s returns incorrect value (expected %lld)",
                       MethodName(methods, p.m1).c_str(), occ.c_str(),
                       static_cast<long long>(p.expected));
    case PredKind::kOrder:
      return StrFormat("%s starts before %s finishes",
                       MethodName(methods, p.m1).c_str(),
                       MethodName(methods, p.m2).c_str());
    case PredKind::kReturnEquals:
      return StrFormat("%s and %s return the same value",
                       MethodName(methods, p.m1).c_str(),
                       MethodName(methods, p.m2).c_str());
    case PredKind::kCompound:
      return StrFormat("(%s) and (%s)",
                       Describe(p.sub1, methods, objects).c_str(),
                       Describe(p.sub2, methods, objects).c_str());
    case PredKind::kSynthetic:
      return StrFormat("P%d", p.occurrence);
    case PredKind::kFailure:
      return "FAILURE";
  }
  return "unknown predicate";
}

}  // namespace aid
