// Predicate model.
//
// A predicate is a boolean statement about one execution of the application
// ("there is a data race between M1 and M2 on X", "method M runs too slow").
// Predicates are interned in a PredicateCatalog, giving them dense ids used
// by every later stage (SD filtering, AC-DAG, intervention engine).
//
// Loop executions: the k-th dynamic execution of a method is distinguished
// through the `occurrence` field (paper Appendix A); occurrence 0 means
// "any execution".

#ifndef AID_PREDICATES_PREDICATE_H_
#define AID_PREDICATES_PREDICATE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/symbol_table.h"
#include "trace/event.h"

namespace aid {

using PredicateId = int32_t;
inline constexpr PredicateId kInvalidPredicate = -1;

enum class PredKind : uint8_t {
  kDataRace,      ///< m1 and m2 access obj concurrently, one write, no lock
  kAtomicityViolation,  ///< m2 intrudes between two of m1's accesses (obj)
  kMethodFails,   ///< m1 throws an exception
  kTooSlow,       ///< m1's duration exceeds the max successful duration
  kTooFast,       ///< m1's duration is below the min successful duration
  kWrongReturn,   ///< m1 returns a value != the consistent successful value
  kOrder,         ///< m1 starts before m2 has finished (inverted order)
  kReturnEquals,  ///< m1 and m2 return the same value (e.g. id collision)
  kCompound,      ///< conjunction of two predicates (sub1 && sub2)
  kSynthetic,     ///< abstract predicate of a synthetic ground-truth app
  kFailure,       ///< the failure-indicating predicate F
};

std::string_view PredKindName(PredKind kind);

/// An immutable predicate description. Value-semantics; hashable.
struct Predicate {
  PredKind kind = PredKind::kFailure;
  SymbolId m1 = kInvalidSymbol;
  SymbolId m2 = kInvalidSymbol;
  SymbolId obj = kInvalidSymbol;
  /// 1-based dynamic occurrence of m1; 0 = any occurrence.
  int occurrence = 0;
  /// kWrongReturn: the consistent successful return value.
  int64_t expected = 0;
  /// kCompound: member predicate ids. (kSynthetic reuses `occurrence` as its
  /// node index.)
  PredicateId sub1 = kInvalidPredicate;
  PredicateId sub2 = kInvalidPredicate;

  bool operator==(const Predicate&) const = default;
};

struct PredicateHash {
  size_t operator()(const Predicate& p) const {
    size_t h = static_cast<size_t>(p.kind);
    auto mix = [&h](uint64_t v) {
      h ^= std::hash<uint64_t>()(v) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    };
    mix(static_cast<uint64_t>(p.m1));
    mix(static_cast<uint64_t>(p.m2));
    mix(static_cast<uint64_t>(p.obj));
    mix(static_cast<uint64_t>(p.occurrence));
    mix(static_cast<uint64_t>(p.expected));
    mix(static_cast<uint64_t>(p.sub1));
    mix(static_cast<uint64_t>(p.sub2));
    return h;
  }
};

/// When a predicate was observed within one run. Point predicates have
/// start == end; interval predicates span their relevant window.
struct PredicateObservation {
  Tick start = 0;
  Tick end = 0;
};

/// How one trial execution ended. In-process targets always complete;
/// process-isolated targets (src/proc/) additionally report subject crashes
/// and per-trial deadline kills. Non-completed trials carry a *partial*
/// predicate log -- whatever the subject streamed before dying -- so
/// consumers that reason counterfactually about absence (Definition 2
/// pruning) must skip them, while the failed flag stays trustworthy (a
/// subject that crashed or hung did fail).
enum class TrialOutcome : uint8_t {
  kCompleted = 0,
  kCrashed = 1,   ///< the subject process died mid-trial
  kTimedOut = 2,  ///< the trial hit its deadline and was killed
};

std::string_view TrialOutcomeName(TrialOutcome outcome);

/// The predicate values of one execution: which predicates were observed
/// (with their time windows) and whether the execution failed. This is the
/// paper's "predicate log".
struct PredicateLog {
  bool failed = false;
  TrialOutcome outcome = TrialOutcome::kCompleted;
  std::unordered_map<PredicateId, PredicateObservation> observed;

  bool Has(PredicateId id) const { return observed.count(id) > 0; }
  /// True iff the log is a complete observation of its execution (see
  /// TrialOutcome): only complete logs admit absence-based reasoning.
  bool complete() const { return outcome == TrialOutcome::kCompleted; }
};

/// Interning table: Predicate <-> dense PredicateId.
class PredicateCatalog {
 public:
  /// Interns `pred`, returning its id (stable across calls).
  PredicateId Intern(const Predicate& pred) {
    auto it = ids_.find(pred);
    if (it != ids_.end()) return it->second;
    const PredicateId id = static_cast<PredicateId>(predicates_.size());
    predicates_.push_back(pred);
    ids_.emplace(pred, id);
    return id;
  }

  /// Lookup without interning; kInvalidPredicate if absent.
  PredicateId Find(const Predicate& pred) const {
    auto it = ids_.find(pred);
    return it == ids_.end() ? kInvalidPredicate : it->second;
  }

  const Predicate& Get(PredicateId id) const {
    return predicates_[static_cast<size_t>(id)];
  }

  size_t size() const { return predicates_.size(); }

  /// Human-readable description, resolving names through the tables
  /// (either may be null, falling back to raw ids).
  std::string Describe(PredicateId id, const SymbolTable* methods,
                       const SymbolTable* objects) const;

 private:
  std::vector<Predicate> predicates_;
  std::unordered_map<Predicate, PredicateId, PredicateHash> ids_;
};

}  // namespace aid

#endif  // AID_PREDICATES_PREDICATE_H_
