// Predicate extraction: offline analysis of execution traces.
//
// Mirrors the paper's two-phase design (Appendix A): the instrumentation
// (the VM) records raw traces; the extractor evaluates predicates over them
// afterwards. Extraction is relative to *baselines* computed from the
// successful runs (min/max durations, consistent return values), exactly as
// Figure 2's extraction conditions prescribe.
//
// Usage:
//   PredicateExtractor extractor(options);
//   AID_RETURN_IF_ERROR(extractor.Observe(traces));   // 50 + 50 runs
//   ... extractor.catalog(), extractor.logs() ...
//   PredicateLog log = extractor.Evaluate(new_trace); // intervened re-runs

#ifndef AID_PREDICATES_EXTRACTOR_H_
#define AID_PREDICATES_EXTRACTOR_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "predicates/predicate.h"
#include "trace/trace.h"

namespace aid {

/// Per-method facts established from the successful executions.
struct MethodBaseline {
  Tick min_duration = 0;  ///< fastest successful execution
  Tick max_duration = 0;  ///< slowest successful execution
  /// Set iff every successful execution returned the same value.
  std::optional<int64_t> consistent_return;
  int executions = 0;  ///< successful executions observed
};

struct ExtractionOptions {
  bool data_races = true;
  /// Atomicity violations (Jin et al.-style, the paper's reference predicate
  /// design for concurrency bugs): another thread's conflicting access lands
  /// between two consecutive accesses of one method execution.
  bool atomicity_violations = true;
  bool method_failures = true;
  bool durations = true;      ///< too-slow / too-fast
  bool wrong_returns = true;
  bool order_inversions = true;
  bool return_equals = false;  ///< M1/M2 return-value collision predicates
  /// Headroom added to [min,max] successful durations before an execution
  /// counts as too fast / too slow (absorbs scheduler jitter).
  Tick duration_slack = 0;
  /// Distinguish dynamic occurrences of duration/return predicates
  /// (occurrence-indexed predicates; paper Appendix A). When false the
  /// predicate refers to any execution of the method.
  bool per_occurrence = false;
};

/// Extracts predicates from traces and evaluates later traces against the
/// frozen catalog + baselines.
class PredicateExtractor {
 public:
  explicit PredicateExtractor(ExtractionOptions options = {})
      : options_(options) {}

  /// Observation phase over labeled traces (must contain at least one
  /// successful and one failed run). Computes baselines from the successful
  /// runs, extracts predicates from every run, interns them, and appends the
  /// failure predicate F. Can be called once.
  Status Observe(const std::vector<ExecutionTrace>& traces);

  /// Evaluates a trace against the frozen catalog (no new predicates are
  /// interned) -- used for intervened re-executions.
  Result<PredicateLog> Evaluate(const ExecutionTrace& trace) const;

  const PredicateCatalog& catalog() const { return catalog_; }
  PredicateCatalog& mutable_catalog() { return catalog_; }
  /// One log per observed trace, in input order.
  const std::vector<PredicateLog>& logs() const { return logs_; }
  PredicateId failure_predicate() const { return failure_predicate_; }
  const std::unordered_map<SymbolId, MethodBaseline>& baselines() const {
    return baselines_;
  }

  /// Registers a compound (conjunction) predicate over two interned
  /// predicates and re-evaluates all observation logs so the compound's
  /// observations are present (paper Section 3.2, modeling nondeterminism).
  Result<PredicateId> AddCompound(PredicateId a, PredicateId b);

 private:
  /// Extracts (predicate, observation) pairs from one trace. When
  /// `intern_into` is non-null unseen predicates are added to it; otherwise
  /// they are looked up in the frozen catalog and dropped if absent.
  Status ExtractInto(const ExecutionTrace& trace,
                     PredicateCatalog* intern_into, PredicateLog* log) const;

  ExtractionOptions options_;
  bool observed_ = false;
  PredicateCatalog catalog_;
  std::vector<PredicateLog> logs_;
  std::unordered_map<SymbolId, MethodBaseline> baselines_;
  PredicateId failure_predicate_ = kInvalidPredicate;
  std::vector<std::pair<PredicateId, PredicateId>> compounds_;
};

}  // namespace aid

#endif  // AID_PREDICATES_EXTRACTOR_H_
