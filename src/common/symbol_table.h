// SymbolTable: bidirectional name <-> dense-id registry.
//
// The runtime, trace, and predicate layers all refer to methods, shared
// objects, mutexes, and exception types by small dense integer ids; the
// SymbolTable owns the mapping back to human-readable names for reports.

#ifndef AID_COMMON_SYMBOL_TABLE_H_
#define AID_COMMON_SYMBOL_TABLE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace aid {

/// Dense id type used across the library. -1 (kInvalidSymbol) means "none".
using SymbolId = int32_t;
inline constexpr SymbolId kInvalidSymbol = -1;

/// Bidirectional string<->id interning table. Ids are dense and assigned in
/// insertion order, which makes them usable as vector indexes.
class SymbolTable {
 public:
  /// Returns the id for `name`, interning it on first use.
  SymbolId Intern(std::string_view name) {
    auto it = ids_.find(std::string(name));
    if (it != ids_.end()) return it->second;
    const SymbolId id = static_cast<SymbolId>(names_.size());
    names_.emplace_back(name);
    ids_.emplace(names_.back(), id);
    return id;
  }

  /// Returns the id for `name` or kInvalidSymbol if never interned.
  SymbolId Find(std::string_view name) const {
    auto it = ids_.find(std::string(name));
    return it == ids_.end() ? kInvalidSymbol : it->second;
  }

  /// Name for a valid id; "<invalid>" for kInvalidSymbol.
  const std::string& Name(SymbolId id) const {
    static const std::string kInvalid = "<invalid>";
    if (id < 0 || static_cast<size_t>(id) >= names_.size()) return kInvalid;
    return names_[static_cast<size_t>(id)];
  }

  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, SymbolId> ids_;
};

}  // namespace aid

#endif  // AID_COMMON_SYMBOL_TABLE_H_
