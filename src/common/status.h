// Status and Result<T>: exception-free error propagation for the AID library.
//
// Follows the RocksDB/Arrow idiom: every fallible public operation returns a
// Status (or a Result<T> carrying either a value or a Status). Exceptions are
// reserved for the *simulated* programs executed by aid::runtime -- the
// library code itself never throws across module boundaries.

#ifndef AID_COMMON_STATUS_H_
#define AID_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace aid {

/// Canonical error space, modeled after absl::StatusCode / rocksdb::Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kFailedPrecondition = 3,
  kOutOfRange = 4,
  kUnimplemented = 5,
  kInternal = 6,
  kAborted = 7,
  kDeadlineExceeded = 8,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeName(StatusCode code);

/// A cheap, copyable success-or-error value.
///
/// The OK status carries no allocation; error statuses carry a message that
/// should identify the failing operation and the offending input.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// A value-or-error wrapper, used as the return type of fallible factories.
///
/// Access to the value of a non-OK Result is a programming error and aborts
/// in debug builds (assert). Callers are expected to test `ok()` or use the
/// AID_ASSIGN_OR_RETURN macro.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit construction from an error status. `status.ok()` is illegal.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;  // nullopt iff !ok(); T need not be default-constructible
};

}  // namespace aid

/// Propagates a non-OK Status from the current function.
#define AID_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::aid::Status _aid_status = (expr);          \
    if (!_aid_status.ok()) return _aid_status;   \
  } while (false)

#define AID_MACRO_CONCAT_INNER(x, y) x##y
#define AID_MACRO_CONCAT(x, y) AID_MACRO_CONCAT_INNER(x, y)

/// Evaluates `rexpr` (a Result<T>); on error returns its Status, otherwise
/// assigns the value to `lhs` (which may include a declaration).
#define AID_ASSIGN_OR_RETURN(lhs, rexpr)                                  \
  auto AID_MACRO_CONCAT(_aid_result_, __LINE__) = (rexpr);                \
  if (!AID_MACRO_CONCAT(_aid_result_, __LINE__).ok())                     \
    return AID_MACRO_CONCAT(_aid_result_, __LINE__).status();             \
  lhs = std::move(AID_MACRO_CONCAT(_aid_result_, __LINE__)).value()

#endif  // AID_COMMON_STATUS_H_
