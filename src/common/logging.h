// Minimal leveled logging and check macros.
//
// The library logs to stderr only. Verbosity is a process-wide setting so
// that benchmark binaries can silence progress chatter. AID_CHECK* are used
// for programmer-error invariants (never for recoverable conditions, which
// return Status).

#ifndef AID_COMMON_LOGGING_H_
#define AID_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace aid {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level that is actually emitted (default kWarning so
/// library users see problems but not progress chatter). The AID_LOG_LEVEL
/// environment variable ("debug" | "info" | "warning" | "error" or 0-3)
/// overrides the default once at first use; SetLogLevel overrides both.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  /// Assembles the full line (level, UTC timestamp, thread tag, site) and
  /// emits it as a single write to stderr, so concurrent threads interleave
  /// whole lines, never fragments.
  ~LogMessage();
  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

class LogMessageVoidify {
 public:
  // Operator with lower precedence than << but higher than ?:.
  void operator&(std::ostream&) {}
};

[[noreturn]] void CheckFailed(const char* file, int line, const std::string& what);

}  // namespace internal
}  // namespace aid

#define AID_LOG_DEBUG ::aid::LogLevel::kDebug
#define AID_LOG_INFO ::aid::LogLevel::kInfo
#define AID_LOG_WARNING ::aid::LogLevel::kWarning
#define AID_LOG_ERROR ::aid::LogLevel::kError

#define AID_LOG(level)                                       \
  (AID_LOG_##level < ::aid::GetLogLevel())                   \
      ? (void)0                                              \
      : ::aid::internal::LogMessageVoidify() &               \
            ::aid::internal::LogMessage(AID_LOG_##level, __FILE__, __LINE__) \
                .stream()

#define AID_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::aid::internal::CheckFailed(__FILE__, __LINE__,                    \
                                   "AID_CHECK failed: " #cond);           \
    }                                                                     \
  } while (false)

#define AID_CHECK_OK(expr)                                                 \
  do {                                                                     \
    ::aid::Status _aid_check_status = (expr);                              \
    if (!_aid_check_status.ok()) {                                         \
      ::aid::internal::CheckFailed(__FILE__, __LINE__,                     \
                                   "AID_CHECK_OK failed: " #expr " -> " +  \
                                       _aid_check_status.ToString());      \
    }                                                                      \
  } while (false)

#endif  // AID_COMMON_LOGGING_H_
