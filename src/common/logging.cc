#include "common/logging.h"

#include <atomic>

namespace aid {
namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }
void SetLogLevel(LogLevel level) { g_log_level.store(static_cast<int>(level)); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() { std::cerr << stream_.str() << std::endl; }

void CheckFailed(const char* file, int line, const std::string& what) {
  LogMessage(LogLevel::kError, file, line).stream() << what;
  std::abort();
}

}  // namespace internal
}  // namespace aid
