#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <functional>
#include <mutex>
#include <thread>

namespace aid {
namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

/// Applies AID_LOG_LEVEL from the environment exactly once, before the
/// first GetLogLevel/SetLogLevel takes effect. Daemons (aid_runner,
/// aid_subject_host) become verbose via the environment without a code
/// change; an explicit SetLogLevel call afterwards still wins.
void ApplyEnvLogLevelOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* raw = std::getenv("AID_LOG_LEVEL");
    if (raw == nullptr || *raw == '\0') return;
    int level = -1;
    if (std::strcmp(raw, "debug") == 0 || std::strcmp(raw, "0") == 0) {
      level = static_cast<int>(LogLevel::kDebug);
    } else if (std::strcmp(raw, "info") == 0 || std::strcmp(raw, "1") == 0) {
      level = static_cast<int>(LogLevel::kInfo);
    } else if (std::strcmp(raw, "warning") == 0 ||
               std::strcmp(raw, "2") == 0) {
      level = static_cast<int>(LogLevel::kWarning);
    } else if (std::strcmp(raw, "error") == 0 || std::strcmp(raw, "3") == 0) {
      level = static_cast<int>(LogLevel::kError);
    }
    if (level >= 0) g_log_level.store(level);
  });
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

/// Compact stable id for the calling thread (hash folded to 5 digits);
/// enough to tell interleaved writers apart without platform tid syscalls.
unsigned long ThreadTag() {
  const size_t hash = std::hash<std::thread::id>{}(std::this_thread::get_id());
  return static_cast<unsigned long>(hash % 100000);
}

}  // namespace

LogLevel GetLogLevel() {
  ApplyEnvLogLevelOnce();
  return static_cast<LogLevel>(g_log_level.load());
}

void SetLogLevel(LogLevel level) {
  ApplyEnvLogLevelOnce();
  g_log_level.store(static_cast<int>(level));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  // Assemble the whole line first and emit it as ONE stdio write: lines
  // from concurrent threads (replica pools, runner children) interleave as
  // whole lines instead of shredding each other mid-token.
  const char* base = file_;
  for (const char* p = file_; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000000;
  std::tm tm_utc{};
#if defined(_WIN32)
  gmtime_s(&tm_utc, &seconds);
#else
  gmtime_r(&seconds, &tm_utc);
#endif
  char stamp[32];
  std::snprintf(stamp, sizeof(stamp), "%02d:%02d:%02d.%06ld", tm_utc.tm_hour,
                tm_utc.tm_min, tm_utc.tm_sec, static_cast<long>(micros));

  std::string line = "[";
  line += LevelName(level_);
  line += ' ';
  line += stamp;
  line += " t";
  line += std::to_string(ThreadTag());
  line += ' ';
  line += base;
  line += ':';
  line += std::to_string(line_);
  line += "] ";
  line += stream_.str();
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

void CheckFailed(const char* file, int line, const std::string& what) {
  LogMessage(LogLevel::kError, file, line).stream() << what;
  std::abort();
}

}  // namespace internal
}  // namespace aid
