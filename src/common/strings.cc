#include "common/strings.h"

#include <cstdio>

namespace aid {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

}  // namespace aid
