// Math helpers used by the group-testing bounds and the theory module.

#ifndef AID_COMMON_MATH_UTIL_H_
#define AID_COMMON_MATH_UTIL_H_

#include <cassert>
#include <cmath>
#include <cstdint>

namespace aid {

/// ceil(a / b) for positive integers.
inline int64_t CeilDiv(int64_t a, int64_t b) {
  assert(b > 0);
  return (a + b - 1) / b;
}

/// ceil(log2(n)) for n >= 1; the number of halving steps to isolate one item
/// among n.
inline int CeilLog2(uint64_t n) {
  assert(n >= 1);
  int bits = 0;
  uint64_t v = n - 1;
  while (v > 0) {
    ++bits;
    v >>= 1;
  }
  return bits;
}

/// log2 of n as a double (n > 0).
inline double Log2(double n) {
  assert(n > 0);
  return std::log2(n);
}

/// One EWMA step over the zero-means-unmeasured convention shared by the
/// latency trackers (exec/scheduler.h, net/latency.h): the first sample
/// seeds the average, later samples blend by `alpha`, and the result
/// clamps to >= 1 so genuinely measured sub-unit samples can never be
/// mistaken for the unmeasured sentinel.
inline double FoldEwma(double previous, double sample, double alpha) {
  const double next =
      previous == 0 ? sample : alpha * sample + (1.0 - alpha) * previous;
  return next < 1.0 ? 1.0 : next;
}

/// log2 of the binomial coefficient C(n, k), computed in log-space via
/// lgamma so it never overflows. Returns 0 for k == 0 or k == n.
inline double Log2Binomial(int64_t n, int64_t k) {
  assert(n >= 0 && k >= 0 && k <= n);
  if (k == 0 || k == n) return 0.0;
  const double ln = std::lgamma(static_cast<double>(n) + 1.0) -
                    std::lgamma(static_cast<double>(k) + 1.0) -
                    std::lgamma(static_cast<double>(n - k) + 1.0);
  return ln / std::log(2.0);
}

/// The group-testing crossover rule (paper Section 2): adaptive group testing
/// is only worthwhile when the number of defectives D < N / log2(N); above
/// that a linear scan is preferable.
inline bool GroupTestingWorthwhile(int64_t num_items, int64_t num_defective) {
  assert(num_items >= 1);
  if (num_items <= 2) return false;
  return static_cast<double>(num_defective) <
         static_cast<double>(num_items) / Log2(static_cast<double>(num_items));
}

}  // namespace aid

#endif  // AID_COMMON_MATH_UTIL_H_
