// Deterministic pseudo-random number generation.
//
// Every stochastic component of the library (the VM scheduler, the synthetic
// application generator, tie-breaking in the intervention engine) draws from
// an explicitly seeded Rng so that experiments and tests are reproducible
// bit-for-bit. The generator is xoshiro256**, seeded through SplitMix64,
// which is the standard recommendation for seeding xoshiro-family states.

#ifndef AID_COMMON_RNG_H_
#define AID_COMMON_RNG_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

namespace aid {

/// SplitMix64 step; used for seeding and for cheap hash mixing.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic, copyable random number generator (xoshiro256**).
class Rng {
 public:
  /// Seeds the generator. Equal seeds produce equal streams on every
  /// platform; the generator never consults global state.
  explicit Rng(uint64_t seed = 0x5eed0fa1d2020ULL) {
    uint64_t sm = seed;
    for (auto& word : s_) word = SplitMix64(sm);
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection sampling to
  /// avoid modulo bias.
  uint64_t Uniform(uint64_t n) {
    assert(n > 0);
    const uint64_t threshold = -n % n;  // (2^64 - n) mod n
    for (;;) {
      const uint64_t r = Next();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in the inclusive range [lo, hi]. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

  /// True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[Uniform(i)]);
    }
  }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    assert(!v.empty());
    return v[Uniform(v.size())];
  }

  /// Derives an independent child generator; `stream` distinguishes children
  /// forked from the same parent state.
  Rng Fork(uint64_t stream) {
    uint64_t mix = Next() ^ (stream * 0x9e3779b97f4a7c15ULL);
    return Rng(SplitMix64(mix));
  }

  /// Raw generator state, for checkpointing a stream mid-flight. `out` must
  /// hold kStateWords words; LoadState resumes the exact stream SaveState
  /// captured.
  static constexpr size_t kStateWords = 4;
  void SaveState(uint64_t out[kStateWords]) const {
    std::copy(s_, s_ + kStateWords, out);
  }
  void LoadState(const uint64_t in[kStateWords]) {
    std::copy(in, in + kStateWords, s_);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace aid

#endif  // AID_COMMON_RNG_H_
