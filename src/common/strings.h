// Small string helpers (printf-style formatting, join, split).
//
// libstdc++ 12 does not ship <format>, so StrFormat wraps vsnprintf.

#ifndef AID_COMMON_STRINGS_H_
#define AID_COMMON_STRINGS_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace aid {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins elements with `sep`, using `to_string`-able or string elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `text` on `sep` (single char), keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Removes leading/trailing whitespace.
std::string_view StripWhitespace(std::string_view text);

}  // namespace aid

#endif  // AID_COMMON_STRINGS_H_
