// The Approximate Causal DAG (paper Section 4).
//
// Nodes are the fully-discriminative predicates; an edge P -> Q means P's
// policy timestamp precedes Q's in *every* failed log. Because each log
// orders predicates totally (strictly, ties excluded) and the edge relation
// is the intersection of those orders, the relation is a strict partial
// order: transitively closed and acyclic by construction. The stored edge
// set therefore *is* the transitive closure (the paper's AC-DAG "includes
// all edges implied by transitive closure"); a transitive reduction is kept
// alongside for traversal, junction detection, and display.
//
// Nodes with no path to the failure predicate are discarded at build time --
// they cannot be causes (this is how the Kafka case study drops 30 of its 72
// discriminative predicates).

#ifndef AID_CAUSAL_ACDAG_H_
#define AID_CAUSAL_ACDAG_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "causal/precedence.h"
#include "common/status.h"
#include "predicates/predicate.h"

namespace aid {

class AcDag {
 public:
  /// Static-analysis edge veto: returning false discharges a closure edge
  /// (from, to) before reachability-to-failure pruning. The analysis/
  /// subsystem supplies a dependence-based filter; a default-constructed
  /// (empty) filter keeps every edge.
  using EdgeFilter = std::function<bool(PredicateId from, PredicateId to)>;

  /// What static pruning removed, measured against the DAG the same build
  /// would have produced with no filter (after the usual
  /// unreachable-node drop in both cases).
  struct PruneStats {
    size_t nodes_before = 0;
    size_t nodes_pruned = 0;
    size_t edges_before = 0;
    size_t edges_pruned = 0;
  };

  /// Builds the AC-DAG from the failed observation logs.
  ///
  /// `candidates` are the fully-discriminative predicate ids (from
  /// StatisticalDebugger::FullyDiscriminative); `failure` must be among
  /// them. Successful logs in `logs` are ignored. When `filter` is
  /// non-empty, vetoed closure edges are removed (and `stats`, if given,
  /// reports the difference against the unfiltered build).
  static Result<AcDag> Build(const PredicateCatalog* catalog,
                             const std::vector<PredicateLog>& logs,
                             const std::vector<PredicateId>& candidates,
                             PredicateId failure,
                             const PrecedenceConfig& config =
                                 PrecedenceConfig::Default(),
                             const EdgeFilter& filter = {},
                             PruneStats* stats = nullptr);

  /// Builds directly from explicit edges (synthetic targets, tests). Edges
  /// are transitively closed internally; must be acyclic. `filter`/`stats`
  /// behave as in Build.
  static Result<AcDag> FromEdges(
      const PredicateCatalog* catalog, const std::vector<PredicateId>& nodes,
      const std::vector<std::pair<PredicateId, PredicateId>>& edges,
      PredicateId failure, const EdgeFilter& filter = {},
      PruneStats* stats = nullptr);

  /// All nodes (ascending id), including the failure predicate.
  const std::vector<PredicateId>& nodes() const { return nodes_; }
  size_t size() const { return nodes_.size(); }
  /// Number of ordered pairs in the stored closure.
  size_t EdgeCount() const;
  PredicateId failure() const { return failure_; }
  const PredicateCatalog* catalog() const { return catalog_; }

  bool Contains(PredicateId id) const { return index_.count(id) > 0; }

  /// True iff `from` strictly precedes `to` in the closure (from ; to).
  bool Reaches(PredicateId from, PredicateId to) const;

  /// Children/parents in the transitive reduction (computed lazily; the
  /// engine itself operates on the closure, the reduction serves display
  /// and white-box tests).
  const std::vector<PredicateId>& Children(PredicateId id) const;
  const std::vector<PredicateId>& Parents(PredicateId id) const;

  /// Deterministic topological order (ids break ties among incomparables).
  std::vector<PredicateId> TopoOrder() const;

  /// Longest-path layering: level(n) = 0 for roots, else
  /// 1 + max(level(parents)). Returned ascending by level; members sorted.
  /// A level with more than one member is a junction (Algorithm 2).
  std::vector<std::vector<PredicateId>> TopoLevels() const;

  /// Subgraph induced on `keep` (the failure node is always retained).
  AcDag Restrict(const std::vector<PredicateId>& keep) const;

  /// All descendants of `id` in the closure (excluding `id`).
  std::vector<PredicateId> Descendants(PredicateId id) const;

  /// Graphviz rendering (transitive reduction) for reports.
  std::string ToDot(const SymbolTable* methods, const SymbolTable* objects) const;

 private:
  AcDag() = default;
  /// Validates, applies the optional edge filter (re-closing the relation
  /// afterwards), and applies reachability-to-failure pruning.
  static Result<AcDag> FromClosure(const PredicateCatalog* catalog,
                                   std::vector<PredicateId> nodes,
                                   std::vector<std::vector<bool>> closure,
                                   PredicateId failure, bool drop_unreachable,
                                   const EdgeFilter* filter = nullptr,
                                   PruneStats* stats = nullptr);
  void BuildReduction() const;
  int IndexOf(PredicateId id) const;

  const PredicateCatalog* catalog_ = nullptr;
  std::vector<PredicateId> nodes_;
  std::unordered_map<PredicateId, int> index_;
  PredicateId failure_ = kInvalidPredicate;
  /// closure_[i][j]: nodes_[i] ; nodes_[j].
  std::vector<std::vector<bool>> closure_;
  mutable bool reduction_built_ = false;
  mutable std::vector<std::vector<PredicateId>> children_;  ///< reduction
  mutable std::vector<std::vector<PredicateId>> parents_;   ///< reduction
};

}  // namespace aid

#endif  // AID_CAUSAL_ACDAG_H_
