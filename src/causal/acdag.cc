#include "causal/acdag.h"

#include <algorithm>
#include <queue>
#include <sstream>

#include "common/logging.h"
#include "common/strings.h"

namespace aid {

Result<AcDag> AcDag::Build(const PredicateCatalog* catalog,
                           const std::vector<PredicateLog>& logs,
                           const std::vector<PredicateId>& candidates,
                           PredicateId failure, const PrecedenceConfig& config,
                           const EdgeFilter& filter, PruneStats* stats) {
  if (catalog == nullptr) {
    return Status::InvalidArgument("catalog must not be null");
  }
  std::vector<PredicateId> nodes = candidates;
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  if (!std::binary_search(nodes.begin(), nodes.end(), failure)) {
    return Status::InvalidArgument(
        "failure predicate must be among the candidates");
  }

  const size_t n = nodes.size();
  // precedes[i][j]: time(i) < time(j) in every failed log where both were
  // observed; co_occurred[i][j]: they were observed together at least once.
  // Fully-discriminative predicates co-occur in every failed log, making
  // this the paper's "in all logs where both appear" rule.
  std::vector<std::vector<bool>> precedes(n, std::vector<bool>(n, true));
  std::vector<std::vector<bool>> co_occurred(n, std::vector<bool>(n, false));

  int failed_logs = 0;
  std::vector<Tick> times(n);
  std::vector<bool> present(n);
  for (const PredicateLog& log : logs) {
    if (!log.failed) continue;
    ++failed_logs;
    for (size_t i = 0; i < n; ++i) {
      auto it = log.observed.find(nodes[i]);
      present[i] = it != log.observed.end();
      if (present[i]) {
        times[i] = config.TimeOf(catalog->Get(nodes[i]), it->second);
      }
    }
    for (size_t i = 0; i < n; ++i) {
      if (!present[i]) continue;
      for (size_t j = 0; j < n; ++j) {
        if (i == j || !present[j]) continue;
        co_occurred[i][j] = true;
        if (times[i] >= times[j]) precedes[i][j] = false;
      }
    }
  }
  if (failed_logs == 0) {
    return Status::InvalidArgument("no failed logs to build the AC-DAG from");
  }

  // The intersection of per-log strict orders is a strict partial order:
  // irreflexive, transitive, acyclic. It is its own transitive closure.
  std::vector<std::vector<bool>> closure(n, std::vector<bool>(n, false));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      closure[i][j] = i != j && co_occurred[i][j] && precedes[i][j];
    }
  }
  return FromClosure(catalog, std::move(nodes), std::move(closure), failure,
                     /*drop_unreachable=*/true, filter ? &filter : nullptr,
                     stats);
}

Result<AcDag> AcDag::FromEdges(
    const PredicateCatalog* catalog, const std::vector<PredicateId>& nodes_in,
    const std::vector<std::pair<PredicateId, PredicateId>>& edges,
    PredicateId failure, const EdgeFilter& filter, PruneStats* stats) {
  std::vector<PredicateId> nodes = nodes_in;
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  if (!std::binary_search(nodes.begin(), nodes.end(), failure)) {
    return Status::InvalidArgument(
        "failure predicate must be among the nodes");
  }
  const size_t n = nodes.size();
  std::unordered_map<PredicateId, size_t> index;
  for (size_t i = 0; i < n; ++i) index[nodes[i]] = i;

  std::vector<std::vector<size_t>> adj(n);
  for (const auto& [from, to] : edges) {
    auto fi = index.find(from);
    auto ti = index.find(to);
    if (fi == index.end() || ti == index.end()) {
      return Status::InvalidArgument("edge endpoint not among the nodes");
    }
    if (fi->second == ti->second) {
      return Status::InvalidArgument("self-loop edge");
    }
    adj[fi->second].push_back(ti->second);
  }

  // Closure via iterative DFS from each node: O(n * E), which keeps the
  // synthetic benchmark (thousands of generated DAGs) fast.
  std::vector<std::vector<bool>> closure(n, std::vector<bool>(n, false));
  std::vector<size_t> stack;
  for (size_t src = 0; src < n; ++src) {
    stack.assign(adj[src].begin(), adj[src].end());
    while (!stack.empty()) {
      const size_t v = stack.back();
      stack.pop_back();
      if (closure[src][v]) continue;
      closure[src][v] = true;
      for (size_t next : adj[v]) {
        if (!closure[src][next]) stack.push_back(next);
      }
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (closure[i][i]) {
      return Status::InvalidArgument("edges contain a cycle");
    }
  }
  return FromClosure(catalog, std::move(nodes), std::move(closure), failure,
                     /*drop_unreachable=*/true, filter ? &filter : nullptr,
                     stats);
}

Result<AcDag> AcDag::FromClosure(const PredicateCatalog* catalog,
                                 std::vector<PredicateId> nodes,
                                 std::vector<std::vector<bool>> closure,
                                 PredicateId failure, bool drop_unreachable,
                                 const EdgeFilter* filter, PruneStats* stats) {
  const size_t n = nodes.size();
  if (filter != nullptr) {
    if (stats != nullptr) {
      // Measure against the DAG the unfiltered build would produce.
      auto baseline = FromClosure(catalog, nodes, closure, failure,
                                  drop_unreachable);
      if (!baseline.ok()) return baseline;
      stats->nodes_before = baseline->size();
      stats->edges_before = baseline->EdgeCount();
    }
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        if (closure[i][j] && !(*filter)(nodes[i], nodes[j])) {
          closure[i][j] = false;
        }
      }
    }
    // Re-close the filtered relation (Floyd-Warshall). A reachability-based
    // filter leaves a transitive relation transitive, so this is a no-op
    // for the analysis/ filter -- but the closure invariant must hold for
    // arbitrary filters, and everything downstream (junction layering,
    // Definition 2's ancestor guard) depends on it.
    for (size_t k = 0; k < n; ++k) {
      for (size_t i = 0; i < n; ++i) {
        if (!closure[i][k]) continue;
        for (size_t j = 0; j < n; ++j) {
          if (closure[k][j]) closure[i][j] = true;
        }
      }
    }
  }
  if (drop_unreachable) {
    // Keep the failure node and every node that reaches it: a predicate with
    // no path to F cannot cause F under the temporal over-approximation.
    size_t failure_index = n;
    for (size_t i = 0; i < n; ++i) {
      if (nodes[i] == failure) failure_index = i;
    }
    AID_CHECK(failure_index < n);
    std::vector<size_t> keep;
    for (size_t i = 0; i < n; ++i) {
      if (i == failure_index || closure[i][failure_index]) keep.push_back(i);
    }
    if (keep.size() != n) {
      std::vector<PredicateId> kept_nodes;
      std::vector<std::vector<bool>> kept_closure(
          keep.size(), std::vector<bool>(keep.size(), false));
      kept_nodes.reserve(keep.size());
      for (size_t a = 0; a < keep.size(); ++a) {
        kept_nodes.push_back(nodes[keep[a]]);
        for (size_t b = 0; b < keep.size(); ++b) {
          kept_closure[a][b] = closure[keep[a]][keep[b]];
        }
      }
      nodes = std::move(kept_nodes);
      closure = std::move(kept_closure);
    }
  }

  AcDag dag;
  dag.catalog_ = catalog;
  dag.nodes_ = std::move(nodes);
  dag.closure_ = std::move(closure);
  dag.failure_ = failure;
  for (size_t i = 0; i < dag.nodes_.size(); ++i) {
    dag.index_[dag.nodes_[i]] = static_cast<int>(i);
  }
  if (filter != nullptr && stats != nullptr) {
    // Filtering only removes edges, so the filtered DAG is never larger
    // than the baseline: the subtractions cannot underflow.
    stats->nodes_pruned = stats->nodes_before - dag.nodes_.size();
    stats->edges_pruned = stats->edges_before - dag.EdgeCount();
  }
  return dag;
}

size_t AcDag::EdgeCount() const {
  size_t count = 0;
  for (const auto& row : closure_) {
    for (bool edge : row) count += edge ? 1 : 0;
  }
  return count;
}

void AcDag::BuildReduction() const {
  if (reduction_built_) return;
  const size_t n = nodes_.size();
  children_.assign(n, {});
  parents_.assign(n, {});
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (!closure_[i][j]) continue;
      // (i, j) is a reduction edge iff no k mediates i ; k ; j.
      bool mediated = false;
      for (size_t k = 0; k < n && !mediated; ++k) {
        mediated = closure_[i][k] && closure_[k][j];
      }
      if (!mediated) {
        children_[i].push_back(nodes_[j]);
        parents_[j].push_back(nodes_[i]);
      }
    }
  }
  for (auto& v : children_) std::sort(v.begin(), v.end());
  for (auto& v : parents_) std::sort(v.begin(), v.end());
  reduction_built_ = true;
}

int AcDag::IndexOf(PredicateId id) const {
  auto it = index_.find(id);
  AID_CHECK(it != index_.end());
  return it->second;
}

bool AcDag::Reaches(PredicateId from, PredicateId to) const {
  return closure_[static_cast<size_t>(IndexOf(from))]
                 [static_cast<size_t>(IndexOf(to))];
}

const std::vector<PredicateId>& AcDag::Children(PredicateId id) const {
  BuildReduction();
  return children_[static_cast<size_t>(IndexOf(id))];
}

const std::vector<PredicateId>& AcDag::Parents(PredicateId id) const {
  BuildReduction();
  return parents_[static_cast<size_t>(IndexOf(id))];
}

std::vector<PredicateId> AcDag::TopoOrder() const {
  // Kahn's algorithm over the closure with a min-heap for determinism.
  const size_t n = nodes_.size();
  std::vector<int> indegree(n, 0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (closure_[j][i]) ++indegree[i];
    }
  }
  std::priority_queue<PredicateId, std::vector<PredicateId>,
                      std::greater<PredicateId>>
      ready;
  for (size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push(nodes_[i]);
  }
  std::vector<PredicateId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const PredicateId id = ready.top();
    ready.pop();
    order.push_back(id);
    const size_t i = static_cast<size_t>(IndexOf(id));
    for (size_t j = 0; j < n; ++j) {
      if (closure_[i][j] && --indegree[j] == 0) ready.push(nodes_[j]);
    }
  }
  AID_CHECK(order.size() == n);  // acyclic by construction
  return order;
}

std::vector<std::vector<PredicateId>> AcDag::TopoLevels() const {
  // Longest-path layering computed over closure parents: the longest chain
  // below a node has the same length whether counted over the reduction or
  // the closure.
  const size_t n = nodes_.size();
  std::vector<int> level(n, 0);
  int max_level = 0;
  for (PredicateId id : TopoOrder()) {
    const size_t i = static_cast<size_t>(IndexOf(id));
    for (size_t p = 0; p < n; ++p) {
      if (closure_[p][i]) level[i] = std::max(level[i], level[p] + 1);
    }
    max_level = std::max(max_level, level[i]);
  }
  std::vector<std::vector<PredicateId>> levels(
      static_cast<size_t>(max_level) + 1);
  for (size_t i = 0; i < n; ++i) {
    levels[static_cast<size_t>(level[i])].push_back(nodes_[i]);
  }
  for (auto& v : levels) std::sort(v.begin(), v.end());
  return levels;
}

AcDag AcDag::Restrict(const std::vector<PredicateId>& keep) const {
  std::vector<PredicateId> kept = keep;
  kept.push_back(failure_);
  std::sort(kept.begin(), kept.end());
  kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
  std::vector<PredicateId> nodes;
  for (PredicateId id : kept) {
    if (Contains(id)) nodes.push_back(id);
  }
  const size_t m = nodes.size();
  std::vector<std::vector<bool>> closure(m, std::vector<bool>(m, false));
  for (size_t a = 0; a < m; ++a) {
    for (size_t b = 0; b < m; ++b) {
      if (a != b) closure[a][b] = Reaches(nodes[a], nodes[b]);
    }
  }
  auto result = FromClosure(catalog_, std::move(nodes), std::move(closure),
                            failure_, /*drop_unreachable=*/false);
  AID_CHECK(result.ok());
  return std::move(result).value();
}

std::vector<PredicateId> AcDag::Descendants(PredicateId id) const {
  const size_t i = static_cast<size_t>(IndexOf(id));
  std::vector<PredicateId> out;
  for (size_t j = 0; j < nodes_.size(); ++j) {
    if (closure_[i][j]) out.push_back(nodes_[j]);
  }
  return out;
}

std::string AcDag::ToDot(const SymbolTable* methods,
                         const SymbolTable* objects) const {
  std::ostringstream out;
  out << "digraph acdag {\n  rankdir=TB;\n";
  for (PredicateId id : nodes_) {
    std::string label = catalog_ != nullptr
                            ? catalog_->Describe(id, methods, objects)
                            : StrFormat("P%d", id);
    for (auto& c : label) {
      if (c == '"') c = '\'';
    }
    out << StrFormat("  n%d [label=\"%s\"%s];\n", id, label.c_str(),
                     id == failure_ ? ", shape=doubleoctagon" : "");
  }
  for (PredicateId id : nodes_) {
    for (PredicateId child : Children(id)) {
      out << StrFormat("  n%d -> n%d;\n", id, child);
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace aid
