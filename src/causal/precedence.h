// Temporal-precedence policies (paper Section 4).
//
// Predicates are associated with time windows, and the correct point to
// compare depends on predicate semantics. The paper's two cases:
//
//   Case 1 ("runs slow"):   end-time implies precedence -- a callee being
//                           slow causes its caller to be slow, and the
//                           callee *ends* first.
//   Case 2 ("starts late"): start-time implies precedence.
//
// Any conservative policy is admissible as long as it creates no cycles
// (Section 4's closing remark); spurious edges are pruned by interventions.

#ifndef AID_CAUSAL_PRECEDENCE_H_
#define AID_CAUSAL_PRECEDENCE_H_

#include <array>

#include "predicates/predicate.h"

namespace aid {

enum class TimestampPolicy : uint8_t { kStart, kEnd };

/// Maps each predicate kind to the timestamp used for precedence.
class PrecedenceConfig {
 public:
  /// The paper's defaults: duration predicates order by end time (Case 1);
  /// races, order inversions, and point predicates by start time (Case 2);
  /// the failure predicate by end time (it closes every failed run).
  static PrecedenceConfig Default() {
    PrecedenceConfig config;
    config.Set(PredKind::kTooSlow, TimestampPolicy::kEnd);
    config.Set(PredKind::kTooFast, TimestampPolicy::kEnd);
    config.Set(PredKind::kFailure, TimestampPolicy::kEnd);
    return config;
  }

  void Set(PredKind kind, TimestampPolicy policy) {
    policies_[static_cast<size_t>(kind)] = policy;
  }

  TimestampPolicy PolicyFor(PredKind kind) const {
    return policies_[static_cast<size_t>(kind)];
  }

  /// The comparison timestamp of one observation of `pred`.
  Tick TimeOf(const Predicate& pred, const PredicateObservation& obs) const {
    return PolicyFor(pred.kind) == TimestampPolicy::kStart ? obs.start
                                                           : obs.end;
  }

 private:
  std::array<TimestampPolicy, 16> policies_{};  // default kStart
};

}  // namespace aid

#endif  // AID_CAUSAL_PRECEDENCE_H_
