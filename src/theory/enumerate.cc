#include "theory/enumerate.h"

#include <unordered_map>
#include <vector>

namespace aid {

uint64_t CountCpdSolutions(const AcDag& dag) {
  std::unordered_map<PredicateId, uint64_t> ending_at;
  uint64_t total = 1;  // the empty chain
  for (PredicateId v : dag.TopoOrder()) {
    if (v == dag.failure()) continue;
    uint64_t count = 1;  // the chain {v}
    for (PredicateId u : dag.nodes()) {
      if (u != v && u != dag.failure() && dag.Reaches(u, v)) {
        count += ending_at[u];
      }
    }
    ending_at[v] = count;
    total += count;
  }
  return total;
}

}  // namespace aid
