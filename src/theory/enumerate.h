// Exact enumeration of CPD's search space for validating Lemma 1 and the
// symmetric-DAG formula on small AC-DAGs.
//
// A candidate CPD solution is a set of predicates that could form a causal
// path: under the deterministic-effect assumption its members must be
// totally ordered by the AC-DAG's reachability relation (a chain of the
// partial order). The empty set is a valid candidate (no causal predicate
// beyond F itself), giving e.g. 2 * (2^3 - 1) + 1 = 15 for the paper's
// Example 3.

#ifndef AID_THEORY_ENUMERATE_H_
#define AID_THEORY_ENUMERATE_H_

#include <cstdint>

#include "causal/acdag.h"

namespace aid {

/// Counts the chains (totally-ordered subsets, including the empty set) of
/// the AC-DAG's reachability order over the non-failure nodes.
///
/// DP over topological order: chains_ending_at(v) = 1 + sum over u ; v of
/// chains_ending_at(u); total = 1 + sum over v. Exact while it fits in
/// uint64_t; intended for small validation DAGs.
uint64_t CountCpdSolutions(const AcDag& dag);

}  // namespace aid

#endif  // AID_THEORY_ENUMERATE_H_
