// Closed forms from the paper's Section 6: search spaces (Lemma 1 and the
// symmetric AC-DAG), information-theoretic lower bounds (Theorem 2), and
// intervention upper bounds (Theorem 3 and Section 6.3.1), as summarized in
// the paper's Figure 6.
//
// All search-space sizes are reported in log2 (bit) units: the quantities
// themselves (e.g. 2^{JBn}) overflow any integer type at realistic sizes.

#ifndef AID_THEORY_BOUNDS_H_
#define AID_THEORY_BOUNDS_H_

#include <cmath>
#include <cstdint>

#include "common/math_util.h"

namespace aid {

/// The symmetric AC-DAG of Figure 5(c): J junctions, B branches per
/// junction, n predicates per branch; N = J * B * n.
struct SymmetricDagShape {
  int junctions = 1;   // J
  int branches = 2;    // B
  int chain_len = 1;   // n
  int64_t total() const {
    return static_cast<int64_t>(junctions) * branches * chain_len;
  }
};

// --- Search space (Section 6.1) ---------------------------------------------

/// log2 of GT's search space over N predicates: all subsets, 2^N.
inline double GtSearchSpaceLog2(int64_t n) { return static_cast<double>(n); }

/// log2 of CPD's search space on the symmetric AC-DAG:
/// W_CPD = (B(2^n - 1) + 1)^J.
inline double CpdSearchSpaceLog2Symmetric(const SymmetricDagShape& shape) {
  const double per_block =
      static_cast<double>(shape.branches) *
          (std::pow(2.0, static_cast<double>(shape.chain_len)) - 1.0) +
      1.0;
  return static_cast<double>(shape.junctions) * std::log2(per_block);
}

/// Lemma 1, horizontal expansion: W(GH) = 1 + (W(G1)-1) + (W(G2)-1),
/// in raw counts (use for small DAGs only).
inline uint64_t HorizontalExpansion(uint64_t w1, uint64_t w2) {
  return 1 + (w1 - 1) + (w2 - 1);
}

/// Lemma 1, vertical expansion: W(GV) = W(G1) * W(G2).
inline uint64_t VerticalExpansion(uint64_t w1, uint64_t w2) {
  return w1 * w2;
}

// --- Lower bounds (Section 6.2) ---------------------------------------------

/// GT information-theoretic lower bound: log2 C(N, D).
inline double GtLowerBound(int64_t n, int64_t d) { return Log2Binomial(n, d); }

/// Theorem 2: CPD lower bound when every group intervention discards at
/// least S1 predicates: log2 C(N, D) / (1 + D*S1/N), equivalently
/// N/(N + D*S1) * log2 C(N, D).
inline double CpdLowerBound(int64_t n, int64_t d, double s1) {
  if (n <= 0) return 0.0;
  const double scale = static_cast<double>(n) /
                       (static_cast<double>(n) + static_cast<double>(d) * s1);
  return scale * Log2Binomial(n, d);
}

// --- Upper bounds (Section 6.3) ---------------------------------------------

/// TAGT upper bound on a flat pool: D log2 N (Section 2's trivial bound).
inline double TagtUpperBound(int64_t n, int64_t d) {
  if (n <= 1 || d <= 0) return 0.0;
  return static_cast<double>(d) * std::log2(static_cast<double>(n));
}

/// Theorem 3: AID with predicate pruning discarding at least S2 predicates
/// per causal-predicate discovery: D log2 N - D(D-1) S2 / (2N).
inline double AidUpperBoundPredicatePruning(int64_t n, int64_t d, double s2) {
  if (n <= 1 || d <= 0) return 0.0;
  return TagtUpperBound(n, d) -
         static_cast<double>(d) * static_cast<double>(d - 1) * s2 /
             (2.0 * static_cast<double>(n));
}

/// Section 6.3.1: with branch pruning, J junctions of at most T branches and
/// a maximum path length N_M: J log2 T + D log2 N_M. AID beats TAGT's
/// D log2 T + D log2 N_M whenever J < D.
inline double AidUpperBoundBranchPruning(int64_t junctions, int64_t max_branches,
                                         int64_t max_path_len, int64_t d) {
  const double jt = max_branches > 1
                        ? static_cast<double>(junctions) *
                              std::log2(static_cast<double>(max_branches))
                        : 0.0;
  const double dn = (max_path_len > 1 && d > 0)
                        ? static_cast<double>(d) *
                              std::log2(static_cast<double>(max_path_len))
                        : 0.0;
  return jt + dn;
}

/// Figure 6, upper-bound row for the symmetric AC-DAG.
/// AID:  J log2 B + D log2(J n) - D(D-1) S2 / (2 J n)
/// TAGT: D log2 B + D log2(J n) - D(D-1) / (2 J B n)
struct SymmetricUpperBounds {
  double aid = 0.0;
  double tagt = 0.0;
};
inline SymmetricUpperBounds Figure6UpperBounds(const SymmetricDagShape& shape,
                                               int64_t d, double s2) {
  const double log_b =
      shape.branches > 1 ? std::log2(static_cast<double>(shape.branches)) : 0.0;
  const double jn =
      static_cast<double>(shape.junctions) * shape.chain_len;
  const double log_jn = jn > 1 ? std::log2(jn) : 0.0;
  const double dd1 = static_cast<double>(d) * static_cast<double>(d - 1);
  SymmetricUpperBounds out;
  out.aid = shape.junctions * log_b + static_cast<double>(d) * log_jn -
            dd1 * s2 / (2.0 * jn);
  out.tagt = static_cast<double>(d) * log_b +
             static_cast<double>(d) * log_jn -
             dd1 / (2.0 * jn * shape.branches);
  return out;
}

/// Figure 6, lower-bound row for the symmetric AC-DAG.
struct SymmetricLowerBounds {
  double cpd = 0.0;
  double gt = 0.0;
};
inline SymmetricLowerBounds Figure6LowerBounds(const SymmetricDagShape& shape,
                                               int64_t d, double s1) {
  SymmetricLowerBounds out;
  out.gt = GtLowerBound(shape.total(), d);
  out.cpd = CpdLowerBound(shape.total(), d, s1);
  return out;
}

}  // namespace aid

#endif  // AID_THEORY_BOUNDS_H_
