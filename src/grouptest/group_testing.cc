#include "grouptest/group_testing.h"

#include <algorithm>

namespace aid {

SetOracle::SetOracle(std::vector<int> defectives) {
  for (int d : defectives) max_item_ = std::max(max_item_, d);
  is_defective_.assign(static_cast<size_t>(max_item_ + 1), false);
  for (int d : defectives) is_defective_[static_cast<size_t>(d)] = true;
}

bool SetOracle::Test(const std::vector<int>& items) {
  ++tests_;
  for (int item : items) {
    if (item <= max_item_ && is_defective_[static_cast<size_t>(item)]) {
      return true;
    }
  }
  return false;
}

namespace {

/// Repeats the oracle `allocator(items)` times (min 1); positive iff any
/// repetition is. Each repetition counts one test.
bool TestGroup(const std::vector<int>& items, GroupTestOracle& oracle,
               const GroupTrialAllocator& allocator, int64_t* tests) {
  const int repetitions = std::max(1, allocator(items));
  for (int i = 0; i < repetitions; ++i) {
    ++*tests;
    if (oracle.Test(items)) return true;  // one positive is decisive
  }
  return false;
}

/// Recursively isolates the defectives in `items`, which is known positive.
void Isolate(std::vector<int> items, GroupTestOracle& oracle,
             const GroupTrialAllocator& allocator, std::vector<int>* defectives,
             int64_t* tests) {
  if (items.size() == 1) {
    defectives->push_back(items[0]);
    return;
  }
  const size_t half = (items.size() + 1) / 2;
  std::vector<int> left(items.begin(), items.begin() + half);
  std::vector<int> right(items.begin() + half, items.end());
  if (TestGroup(left, oracle, allocator, tests)) {
    Isolate(std::move(left), oracle, allocator, defectives, tests);
    // The right half may or may not contain further defectives.
    if (TestGroup(right, oracle, allocator, tests)) {
      Isolate(std::move(right), oracle, allocator, defectives, tests);
    }
  } else {
    // Left negative and the parent was positive: right must be positive.
    Isolate(std::move(right), oracle, allocator, defectives, tests);
  }
}

}  // namespace

GroupTestResult AdaptiveGroupTest(int n, GroupTestOracle& oracle) {
  return AdaptiveGroupTest(n, oracle,
                           [](const std::vector<int>&) { return 1; });
}

GroupTestResult AdaptiveGroupTest(int n, GroupTestOracle& oracle,
                                  const GroupTrialAllocator& allocator) {
  GroupTestResult result;
  if (n <= 0) return result;
  std::vector<int> all(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) all[static_cast<size_t>(i)] = i;
  if (TestGroup(all, oracle, allocator, &result.tests)) {
    Isolate(std::move(all), oracle, allocator, &result.defectives,
            &result.tests);
  }
  std::sort(result.defectives.begin(), result.defectives.end());
  return result;
}

GroupTestResult LinearScan(int n, GroupTestOracle& oracle) {
  GroupTestResult result;
  for (int i = 0; i < n; ++i) {
    ++result.tests;
    if (oracle.Test({i})) result.defectives.push_back(i);
  }
  return result;
}

}  // namespace aid
