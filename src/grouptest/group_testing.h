// Generic adaptive group testing (paper Section 2).
//
// Identifies the D defective items among N using group tests, where a test
// on a group is positive iff the group contains at least one defective. The
// classic adaptive strategy -- test, then binary-split positive groups --
// achieves O(D log N) tests (Hwang 1972). In AID's setting a "test" is a
// group intervention and "defective" is "causal", with the polarity flipped:
// intervening on a group *stops* the failure iff the group contains a causal
// predicate. This module keeps the abstract combinatorial form; the
// intervention-based variant lives in aid::core.

#ifndef AID_GROUPTEST_GROUP_TESTING_H_
#define AID_GROUPTEST_GROUP_TESTING_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/math_util.h"
#include "common/rng.h"

namespace aid {

/// Oracle answering group tests. Implementations should count invocations.
class GroupTestOracle {
 public:
  virtual ~GroupTestOracle() = default;
  /// True iff `items` contains at least one defective.
  virtual bool Test(const std::vector<int>& items) = 0;
};

/// Oracle over a fixed defective set, counting tests (for tests/benchmarks).
class SetOracle : public GroupTestOracle {
 public:
  explicit SetOracle(std::vector<int> defectives);
  bool Test(const std::vector<int>& items) override;
  int tests() const { return tests_; }

 private:
  std::vector<bool> is_defective_;
  int max_item_ = -1;
  int tests_ = 0;
};

struct GroupTestResult {
  std::vector<int> defectives;  ///< ascending
  int tests = 0;                ///< oracle invocations
};

/// Adaptive binary-splitting group testing over items {0, .., n-1}.
///
/// Tests the whole pool; a positive pool is split in half and both halves
/// are processed recursively (with the standard refinement that when the
/// left half is negative the right half is known positive and its
/// whole-group test is skipped). Worst case ~ D * ceil(log2 N) + D tests.
GroupTestResult AdaptiveGroupTest(int n, GroupTestOracle& oracle);

/// Non-adaptive baseline: tests every item individually (n tests). The
/// preferable strategy when D >= N / log2(N) (paper Section 2).
GroupTestResult LinearScan(int n, GroupTestOracle& oracle);

/// Upper bound on adaptive group tests: D * ceil(log2 N) (paper Section 2's
/// trivial bound via per-defective binary search).
inline int64_t AdaptiveGroupTestUpperBound(int64_t n, int64_t d) {
  if (n <= 0 || d <= 0) return 0;
  return d * CeilLog2(static_cast<uint64_t>(n));
}

/// Information-theoretic lower bound: log2 C(N, D) tests.
inline double GroupTestLowerBound(int64_t n, int64_t d) {
  if (n <= 0 || d < 0 || d > n) return 0;
  return Log2Binomial(n, d);
}

}  // namespace aid

#endif  // AID_GROUPTEST_GROUP_TESTING_H_
