// Generic adaptive group testing (paper Section 2).
//
// Identifies the D defective items among N using group tests, where a test
// on a group is positive iff the group contains at least one defective. The
// classic adaptive strategy -- test, then binary-split positive groups --
// achieves O(D log N) tests (Hwang 1972). In AID's setting a "test" is a
// group intervention and "defective" is "causal", with the polarity flipped:
// intervening on a group *stops* the failure iff the group contains a causal
// predicate. This module keeps the abstract combinatorial form; the
// intervention-based variant lives in aid::core.

#ifndef AID_GROUPTEST_GROUP_TESTING_H_
#define AID_GROUPTEST_GROUP_TESTING_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/math_util.h"
#include "common/rng.h"

namespace aid {

/// Oracle answering group tests. Implementations should count invocations.
class GroupTestOracle {
 public:
  virtual ~GroupTestOracle() = default;
  /// True iff `items` contains at least one defective.
  virtual bool Test(const std::vector<int>& items) = 0;
};

/// Oracle over a fixed defective set, counting tests (for tests/benchmarks).
class SetOracle : public GroupTestOracle {
 public:
  explicit SetOracle(std::vector<int> defectives);
  bool Test(const std::vector<int>& items) override;
  int64_t tests() const { return tests_; }

 private:
  std::vector<bool> is_defective_;
  int max_item_ = -1;
  int64_t tests_ = 0;
};

struct GroupTestResult {
  std::vector<int> defectives;  ///< ascending
  int64_t tests = 0;            ///< oracle invocations
};

/// Per-group repetition policy for noisy oracles: given the group about to
/// be tested, returns how many times to repeat the oracle call (clamped to
/// >= 1). The aggregate answer is positive iff ANY repetition is positive --
/// the decision asymmetry of AID's interventions, where one failing trial is
/// decisive but passes are only probabilistic. Budget-aware callers (e.g. a
/// BudgetPlanner-backed allocator) hand out more repetitions for groups
/// whose verdict is uncertain and fewer for decisive ones.
using GroupTrialAllocator = std::function<int(const std::vector<int>&)>;

/// Adaptive binary-splitting group testing over items {0, .., n-1}.
///
/// Tests the whole pool; a positive pool is split in half and both halves
/// are processed recursively (with the standard refinement that when the
/// left half is negative the right half is known positive and its
/// whole-group test is skipped). Worst case ~ D * ceil(log2 N) + D tests.
GroupTestResult AdaptiveGroupTest(int n, GroupTestOracle& oracle);

/// Same, with a per-group repetition allocator for noisy oracles. Each
/// repetition counts as one test; the group's answer is positive iff any
/// repetition was. The single-repetition overload above is equivalent to an
/// allocator that always returns 1.
GroupTestResult AdaptiveGroupTest(int n, GroupTestOracle& oracle,
                                  const GroupTrialAllocator& allocator);

/// Non-adaptive baseline: tests every item individually (n tests). The
/// preferable strategy when D >= N / log2(N) (paper Section 2).
GroupTestResult LinearScan(int n, GroupTestOracle& oracle);

/// Upper bound on adaptive group tests: D * ceil(log2 N) (paper Section 2's
/// trivial bound via per-defective binary search).
inline int64_t AdaptiveGroupTestUpperBound(int64_t n, int64_t d) {
  if (n <= 0 || d <= 0) return 0;
  return d * CeilLog2(static_cast<uint64_t>(n));
}

/// Information-theoretic lower bound: log2 C(N, D) tests.
inline double GroupTestLowerBound(int64_t n, int64_t d) {
  if (n <= 0 || d < 0 || d > n) return 0;
  return Log2Binomial(n, d);
}

}  // namespace aid

#endif  // AID_GROUPTEST_GROUP_TESTING_H_
