#include "budget/options.h"

#include <string>

namespace aid {
namespace {

Status InUnitInterval(const char* name, double value, bool open_left,
                      bool open_right) {
  const bool left_ok = open_left ? value > 0.0 : value >= 0.0;
  const bool right_ok = open_right ? value < 1.0 : value <= 1.0;
  if (left_ok && right_ok) return Status::OK();
  return Status::InvalidArgument(
      std::string("budget options: ") + name + " must be in " +
      (open_left ? "(" : "[") + "0, 1" + (open_right ? ")" : "]") + ", got " +
      std::to_string(value));
}

}  // namespace

Status ValidateBudgetOptions(const BudgetOptions& options) {
  if (!(options.error_tolerance > 0.0 && options.error_tolerance < 0.5)) {
    return Status::InvalidArgument(
        "budget options: error_tolerance must be in (0, 0.5), got " +
        std::to_string(options.error_tolerance));
  }
  AID_RETURN_IF_ERROR(InUnitInterval("causal_prior", options.causal_prior,
                                     /*open_left=*/true, /*open_right=*/true));
  if (options.max_trials_per_round < 0 ||
      options.max_trials_per_round > kMaxBudgetTrialsPerRound) {
    return Status::InvalidArgument(
        "budget options: max_trials_per_round must be in [0, " +
        std::to_string(kMaxBudgetTrialsPerRound) +
        "] (0 = cap at trials_per_intervention), got " +
        std::to_string(options.max_trials_per_round));
  }
  if (!(options.flakiness_prior_alpha > 0.0) ||
      !(options.flakiness_prior_beta > 0.0)) {
    return Status::InvalidArgument(
        "budget options: the flakiness Beta prior needs alpha > 0 and "
        "beta > 0, got alpha=" + std::to_string(options.flakiness_prior_alpha) +
        " beta=" + std::to_string(options.flakiness_prior_beta));
  }
  AID_RETURN_IF_ERROR(InUnitInterval("topology_discount",
                                     options.topology_discount,
                                     /*open_left=*/true,
                                     /*open_right=*/false));
  AID_RETURN_IF_ERROR(InUnitInterval("cost_ewma_alpha",
                                     options.cost_ewma_alpha,
                                     /*open_left=*/true,
                                     /*open_right=*/false));
  AID_RETURN_IF_ERROR(InUnitInterval("advice.suspect_prior",
                                     options.advice.suspect_prior,
                                     /*open_left=*/true,
                                     /*open_right=*/true));
  AID_RETURN_IF_ERROR(InUnitInterval("advice.sd_weight",
                                     options.advice.sd_weight,
                                     /*open_left=*/false,
                                     /*open_right=*/false));
  return Status::OK();
}

}  // namespace aid
