// BudgetPlanner: turns the belief state into per-round trial allocations.
//
// Allocation is a sequential probability ratio test (SPRT): a round on
// group G keeps executing trials until either one FAILS (decisive -- the
// group is spurious, see budget/belief.h) or `PlanTrials` consecutive
// passes have accumulated enough evidence that the posterior odds of
// "the failure really stopped" clear (1 - eps) / eps:
//
//       odds(G causal) / (1 - m)^k  >=  (1 - eps) / eps
//   =>  k  >=  ( ln((1-eps)/eps) - ln odds(G) ) / -ln(1 - m)
//
// with m the estimated flakiness and the prior odds capped at even, so
// optimism can only ever ADD trials relative to the flat-odds bound.
// Decisive candidates (a near-deterministic target, once the flakiness
// posterior has learned it) get 1 trial; noisy or unlikely-causal ones
// more, up to a cap.
//
// The planner also prices a round: expected information gain (entropy
// reduction over the group verdict) divided by predicted cost (an EWMA of
// the substrate's per-trial latency, fed from TargetHealth::trial_micros
// the same way exec/scheduler.h feeds its replica EWMAs). The score never
// reorders the engine's group schedule -- Algorithms 1-2 fix WHICH group
// is tested -- but when a global execution budget cannot cover a whole
// batched round, the highest-scoring spans are funded first and the rest
// are left undecided for the best-effort report.

#ifndef AID_BUDGET_PLANNER_H_
#define AID_BUDGET_PLANNER_H_

#include <cstdint>
#include <vector>

#include "budget/belief.h"
#include "budget/options.h"
#include "predicates/predicate.h"

namespace aid {

class BudgetPlanner {
 public:
  /// `belief` is borrowed and must outlive the planner.
  BudgetPlanner(const BudgetOptions& options, const BeliefState* belief);

  /// SPRT pass requirement for one round on `group`, clamped to [1, cap].
  int PlanTrials(const std::vector<PredicateId>& group, int cap) const;

  /// Expected entropy reduction (bits) of a `trials`-pass round on
  /// `group`'s causal-vs-spurious verdict. 0 once the verdict is certain.
  double InformationGain(const std::vector<PredicateId>& group,
                         int trials) const;

  /// Information gain per predicted microsecond: the round-funding
  /// priority when the global budget cannot cover everything.
  double Score(const std::vector<PredicateId>& group, int trials) const;

  /// Folds one finished round into the cost model: `micros` of substrate
  /// trial time over `trials` executions. micros == 0 means the substrate
  /// does not self-time (in-process backends); the sample is skipped, per
  /// the zero-means-unmeasured EWMA convention.
  void ObserveRoundCost(uint64_t micros, int trials);

  /// Predicted per-trial cost in microseconds; 0 until first measured.
  double trial_cost_micros() const { return cost_ewma_; }

  /// Checkpoint support: reinstates a cost EWMA captured by
  /// trial_cost_micros() on another planner (core/discovery_state.h).
  void RestoreCostEwma(double ewma) { cost_ewma_ = ewma; }

 private:
  BudgetOptions options_;
  const BeliefState* belief_;
  double cost_ewma_ = 0.0;
};

}  // namespace aid

#endif  // AID_BUDGET_PLANNER_H_
