#include "budget/belief.h"

#include <algorithm>
#include <cmath>

#include "budget/advice.h"

namespace aid {
namespace {

/// Working posteriors stay strictly inside (0, 1) until a certified
/// verdict pins them; evidence can then never saturate a belief into
/// un-updatable certainty.
constexpr double kPosteriorFloor = 0.001;
constexpr double kPosteriorCeil = 0.999;

}  // namespace

BeliefState::BeliefState(const AcDag* dag, const BudgetOptions& options)
    : dag_(dag),
      options_(options),
      flaky_alpha_(options.flakiness_prior_alpha),
      flaky_beta_(options.flakiness_prior_beta) {}

void BeliefState::SeedCandidates(const std::vector<PredicateId>& candidates) {
  posterior_.clear();
  const std::vector<double> priors =
      SeedPriors(candidates, options_.causal_prior, options_.advice);
  for (size_t i = 0; i < candidates.size(); ++i) {
    posterior_[candidates[i]] = priors[i];
  }
}

double BeliefState::posterior(PredicateId id) const {
  auto it = posterior_.find(id);
  return it == posterior_.end() ? 0.0 : it->second;
}

double BeliefState::GroupCausalProbability(
    const std::vector<PredicateId>& group) const {
  double none_causal = 1.0;
  for (PredicateId id : group) {
    none_causal *= 1.0 - posterior(id);
  }
  return 1.0 - none_causal;
}

double BeliefState::flakiness() const {
  const double mean = flaky_alpha_ / (flaky_alpha_ + flaky_beta_);
  return std::clamp(mean, 0.01, 0.99);
}

void BeliefState::ObservePersistingRound(int passes_before_failure) {
  flaky_alpha_ += 1.0;  // the failing trial manifested
  if (passes_before_failure > 0) {
    flaky_beta_ += static_cast<double>(passes_before_failure);
  }
}

void BeliefState::ObserveStoppedRound(const std::vector<PredicateId>& group,
                                      int passes) {
  if (passes <= 0) return;
  const double p_group = GroupCausalProbability(group);
  if (p_group <= 0.0 || p_group >= 1.0) return;
  const double lucky = std::pow(1.0 - flakiness(), passes);
  const double p_after = p_group / (p_group + (1.0 - p_group) * lucky);
  const double scale = p_after / p_group;
  for (PredicateId id : group) {
    auto it = posterior_.find(id);
    if (it == posterior_.end()) continue;
    if (it->second <= 0.0 || it->second >= 1.0) continue;  // already pinned
    it->second = std::clamp(it->second * scale, kPosteriorFloor,
                            kPosteriorCeil);
  }
}

void BeliefState::MarkCausal(PredicateId id) {
  posterior_[id] = 1.0;
  if (options_.topology_discount >= 1.0) return;
  // Definition 1: causal predicates form a reachability chain, so any
  // candidate incomparable with a certified causal one is unlikely causal.
  for (auto& [other, p] : posterior_) {
    if (other == id || p <= 0.0 || p >= 1.0) continue;
    if (!dag_->Reaches(id, other) && !dag_->Reaches(other, id)) {
      p = std::max(kPosteriorFloor, p * options_.topology_discount);
    }
  }
}

void BeliefState::MarkSpurious(PredicateId id) { posterior_[id] = 0.0; }

std::vector<PredicateConfidence> BeliefState::Snapshot() const {
  std::vector<PredicateConfidence> out;
  out.reserve(posterior_.size());
  for (const auto& [id, p] : posterior_) {
    out.push_back(PredicateConfidence{id, p});
  }
  std::sort(out.begin(), out.end(),
            [](const PredicateConfidence& a, const PredicateConfidence& b) {
              return a.id < b.id;
            });
  return out;
}

std::vector<std::pair<PredicateId, double>> BeliefState::ExportState() const {
  std::vector<std::pair<PredicateId, double>> out(posterior_.begin(),
                                                  posterior_.end());
  std::sort(out.begin(), out.end());
  return out;
}

void BeliefState::RestoreState(
    const std::vector<std::pair<PredicateId, double>>& posts,
    double flaky_alpha, double flaky_beta) {
  posterior_.clear();
  for (const auto& [id, p] : posts) posterior_[id] = p;
  flaky_alpha_ = flaky_alpha;
  flaky_beta_ = flaky_beta;
}

double BeliefState::BinaryEntropy(double p) {
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

}  // namespace aid
