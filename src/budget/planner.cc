#include "budget/planner.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace aid {

BudgetPlanner::BudgetPlanner(const BudgetOptions& options,
                             const BeliefState* belief)
    : options_(options), belief_(belief) {}

int BudgetPlanner::PlanTrials(const std::vector<PredicateId>& group,
                              int cap) const {
  if (cap < 1) cap = 1;
  // The prior odds are capped at even (p <= 0.5): an unlikely-causal group
  // must pass MORE trials before a stop is believed, but an optimistic
  // prior never lowers the requirement below the flat-odds SPRT bound --
  // that keeps the per-round false-stop probability at most
  // (1-m)^k <= eps/(1-eps) no matter how wrong the advice or the noisy-or
  // group prior is (bad advice costs executions, never soundness).
  const double p = std::clamp(belief_->GroupCausalProbability(group), 0.001,
                              0.5);
  const double m = belief_->flakiness();
  const double eps = options_.error_tolerance;
  // k >= (ln((1-eps)/eps) - ln(p/(1-p))) / -ln(1-m); see the header.
  const double needed = (std::log((1.0 - eps) / eps) -
                         std::log(p / (1.0 - p))) /
                        -std::log(1.0 - m);
  if (!(needed > 0.0)) return 1;
  const int k = static_cast<int>(std::ceil(needed - 1e-9));
  return std::clamp(k, 1, cap);
}

double BudgetPlanner::InformationGain(const std::vector<PredicateId>& group,
                                      int trials) const {
  if (trials < 1) return 0.0;
  const double p = belief_->GroupCausalProbability(group);
  if (p <= 0.0 || p >= 1.0) return 0.0;
  const double m = belief_->flakiness();
  // A round either stops (all `trials` pass: certain under H_causal,
  // (1-m)^trials under H_spurious) or persists (posterior collapses to
  // spurious, entropy 0).
  const double lucky = std::pow(1.0 - m, trials);
  const double p_stop = p + (1.0 - p) * lucky;
  const double p_causal_given_stop = p / p_stop;
  return BeliefState::BinaryEntropy(p) -
         p_stop * BeliefState::BinaryEntropy(p_causal_given_stop);
}

double BudgetPlanner::Score(const std::vector<PredicateId>& group,
                            int trials) const {
  if (trials < 1) return 0.0;
  const double per_trial = std::max(1.0, cost_ewma_);
  return InformationGain(group, trials) /
         (per_trial * static_cast<double>(trials));
}

void BudgetPlanner::ObserveRoundCost(uint64_t micros, int trials) {
  if (micros == 0 || trials < 1) return;  // unmeasured substrate
  const double sample =
      static_cast<double>(micros) / static_cast<double>(trials);
  cost_ewma_ = FoldEwma(cost_ewma_, sample, options_.cost_ewma_alpha);
}

}  // namespace aid
