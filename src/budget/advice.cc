#include "budget/advice.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace aid {
namespace {

/// Priors never start certain: a 0 or 1 prior would make the posterior
/// immune to evidence, which advice must not be able to do.
double ClampPrior(double p) { return std::clamp(p, 0.01, 0.99); }

}  // namespace

std::vector<double> SeedPriors(const std::vector<PredicateId>& candidates,
                               double base_prior, const AdvicePriors& advice) {
  std::unordered_map<PredicateId, double> sd;
  for (const SuspiciousnessScore& s : advice.sd_scores) {
    sd[s.id] = std::clamp(s.score, 0.0, 1.0);
  }
  std::unordered_set<PredicateId> suspects(advice.suspects.begin(),
                                           advice.suspects.end());

  std::vector<double> priors;
  priors.reserve(candidates.size());
  for (PredicateId id : candidates) {
    double prior = base_prior;
    auto it = sd.find(id);
    if (it != sd.end()) {
      prior = (1.0 - advice.sd_weight) * base_prior +
              advice.sd_weight * it->second;
    }
    if (suspects.count(id)) {
      prior = std::max(prior, advice.suspect_prior);
    }
    priors.push_back(ClampPrior(prior));
  }
  return priors;
}

}  // namespace aid
