// BeliefState: the budgeter's per-candidate Bayesian posterior of "causal
// vs spurious", plus its running estimate of the target's flakiness.
//
// The evidence model follows the engine's decision rule (core/engine.h):
// intervening on a group that contains a causal predicate provably stops
// the failure, so
//
//   P(trial fails | group causal)   = 0    -- one failure is DECISIVE
//   P(trial passes | group spurious) = 1 - m
//
// where m is the manifestation (flakiness) rate: the probability one trial
// of a persisting failure actually fires. A round of k passing trials
// therefore multiplies the odds of "group causal" by 1 / (1-m)^k, and m
// itself is learned as a Beta posterior from persisting rounds only (a
// failing trial manifested; each pass before it did not; an all-pass round
// is ambiguous between "causal" and "spurious but lucky" and teaches
// nothing about m).
//
// Certified verdicts (the engine's Decide) pin posteriors to 0/1 and
// propagate over the AC-DAG: Definition 1's chain assumption totally
// orders the causal predicates by reachability, so certifying P causal
// discounts every candidate incomparable with P. Propagation moves
// spending priorities only -- verdicts always come from interventions.

#ifndef AID_BUDGET_BELIEF_H_
#define AID_BUDGET_BELIEF_H_

#include <unordered_map>
#include <vector>

#include "budget/options.h"
#include "causal/acdag.h"
#include "predicates/predicate.h"

namespace aid {

class BeliefState {
 public:
  /// `dag` is borrowed and must outlive the belief state.
  BeliefState(const AcDag* dag, const BudgetOptions& options);

  /// Seeds one posterior per candidate from the flat causal prior and the
  /// configured advice (budget/advice.h). Resets any previous state.
  void SeedCandidates(const std::vector<PredicateId>& candidates);

  /// Posterior that `id` is causal; 0 for predicates never seeded.
  double posterior(PredicateId id) const;

  /// P(the group contains >= 1 causal predicate) = 1 - prod(1 - p_i),
  /// assuming independence across members.
  double GroupCausalProbability(const std::vector<PredicateId>& group) const;

  /// Posterior mean of the manifestation rate m, clamped inside (0, 1) so
  /// log-likelihoods stay finite.
  double flakiness() const;

  /// A round whose failure persisted: `passes_before_failure` trials
  /// passed, then one failed. Updates only the flakiness posterior -- the
  /// group verdict itself arrives through MarkSpurious.
  void ObservePersistingRound(int passes_before_failure);

  /// A round of `passes` all-passing trials on `group`: scales the member
  /// posteriors up by the Bayes factor 1 / (p_G + (1 - p_G)(1-m)^passes).
  void ObserveStoppedRound(const std::vector<PredicateId>& group, int passes);

  /// Certified verdicts (the engine's Decide). MarkCausal pins the
  /// posterior to 1 and discounts every undecided candidate topologically
  /// incomparable with `id` by options.topology_discount.
  void MarkCausal(PredicateId id);
  void MarkSpurious(PredicateId id);

  /// Every seeded candidate's posterior, ascending by id -- the
  /// DiscoveryReport::confidence payload.
  std::vector<PredicateConfidence> Snapshot() const;

  /// Entropy of a Bernoulli(p) verdict in bits; 0 at p in {0, 1}.
  static double BinaryEntropy(double p);

  /// Checkpoint support (core/discovery_state.h). ExportState returns every
  /// posterior ascending by id; RestoreState replaces the posterior table
  /// and the flakiness Beta posterior wholesale. The AC-DAG and options are
  /// reconstructed by the owner, not carried here.
  std::vector<std::pair<PredicateId, double>> ExportState() const;
  void RestoreState(const std::vector<std::pair<PredicateId, double>>& posts,
                    double flaky_alpha, double flaky_beta);
  double flaky_alpha() const { return flaky_alpha_; }
  double flaky_beta() const { return flaky_beta_; }

 private:
  const AcDag* dag_;
  BudgetOptions options_;
  std::unordered_map<PredicateId, double> posterior_;
  /// Beta posterior of the manifestation rate.
  double flaky_alpha_;
  double flaky_beta_;
};

}  // namespace aid

#endif  // AID_BUDGET_BELIEF_H_
