// BudgetOptions: the knobs of the adaptive intervention budgeter, plus the
// per-candidate confidence record the budgeted DiscoveryReport carries.
//
// The budgeter replaces the engine's fixed trials-per-intervention with a
// sequential probability ratio test (SPRT) over a per-candidate Bayesian
// posterior of "causal vs spurious": a failing trial under intervention is
// decisive (the round ends after 1 trial), while consecutive passing
// trials accumulate evidence until the posterior odds of "the failure
// really stopped" clear 1 - error_tolerance under the estimated flakiness
// rate. See docs/adaptive_budgeting.md for the model and the soundness
// argument.
//
// Dependency-light on purpose: core/engine.h embeds BudgetOptions in
// EngineOptions, so this header must not pull the engine (or anything
// above it) back in.

#ifndef AID_BUDGET_OPTIONS_H_
#define AID_BUDGET_OPTIONS_H_

#include <cstdint>

#include "budget/advice.h"
#include "common/status.h"
#include "predicates/predicate.h"

namespace aid {

/// Upper bound on max_trials_per_round: beyond this a "trial allocation"
/// is a typo, not a strategy (mirrors kMaxParallelism's role for workers).
inline constexpr int kMaxBudgetTrialsPerRound = 100000;

struct BudgetOptions {
  /// Master switch. Off = the engine's fixed-trial behavior, bit-identical
  /// to a build without the budgeter.
  bool enabled = false;
  /// SPRT error tolerance: the accepted probability that a round declared
  /// "stopped" was a spurious group passing by luck. Smaller = more
  /// passing trials demanded before accepting a stop. In (0, 0.5).
  double error_tolerance = 0.02;
  /// Flat prior that a candidate is causal before advice, in (0, 1).
  double causal_prior = 0.5;
  /// Hard cap on trials a single round may spend. 0 = cap at the engine's
  /// configured trials_per_intervention, which guarantees a budgeted round
  /// never costs more than the fixed-trial baseline.
  int max_trials_per_round = 0;
  /// Global execution budget across the whole discovery run; when spent,
  /// the engine stops intervening and reports best-effort verdicts plus
  /// per-candidate confidence (DiscoveryReport::budget_exhausted /
  /// ::confidence). 0 = unlimited.
  uint64_t max_executions = 0;
  /// Beta prior of the manifestation (flakiness) rate m: the probability a
  /// persisting failure actually fires in one trial. The posterior is
  /// updated only from persisting rounds (a failure proves manifestation;
  /// passes before it prove non-manifestation); stopped rounds are
  /// ambiguous and carry no flakiness information. The default leans
  /// "mostly manifests" (mean 0.8), so deterministic targets converge to
  /// 1-trial rounds quickly while genuinely flaky ones pull the estimate
  /// down and earn more trials.
  double flakiness_prior_alpha = 4.0;
  double flakiness_prior_beta = 1.0;
  /// Posterior discount applied to candidates topologically incomparable
  /// with a freshly certified causal predicate: Definition 1's chain
  /// assumption says causal predicates are totally ordered by
  /// reachability, so incomparable candidates are unlikely causal. Affects
  /// only trial spending, never verdicts. In (0, 1]; 1 disables.
  double topology_discount = 0.5;
  /// EWMA blend for the planner's predicted per-trial cost, fed by the
  /// substrate's TargetHealth::trial_micros deltas (same convention as
  /// exec/scheduler.h's replica EWMAs). In (0, 1].
  double cost_ewma_alpha = 0.25;
  /// Side-information seeding the posterior (budget/advice.h).
  AdvicePriors advice;
};

/// InvalidArgument for out-of-range knobs, naming the offending value.
Status ValidateBudgetOptions(const BudgetOptions& options);

/// One candidate's posterior at the end of a budgeted discovery run:
/// 1 = certified causal, 0 = certified spurious, in between = undecided
/// (only possible when the execution budget ran out first).
struct PredicateConfidence {
  PredicateId id = kInvalidPredicate;
  double causal_posterior = 0.0;
};

}  // namespace aid

#endif  // AID_BUDGET_OPTIONS_H_
