// AdvicePriors: side-information that seeds the budgeting posterior.
//
// The belief state (budget/belief.h) starts every candidate at a flat
// causal prior; advice bends that start toward what is already known
// before the first intervention: statistical-debugging suspiciousness
// (the classic SD ranking a developer would sift by hand) and predicates
// the user explicitly suspects. Advice only moves PRIORS -- it biases
// where trials are spent, never what a verdict means, so bad advice
// costs executions, not soundness (the active-learning-with-advice
// framing of PAPERS.md).

#ifndef AID_BUDGET_ADVICE_H_
#define AID_BUDGET_ADVICE_H_

#include <vector>

#include "predicates/predicate.h"

namespace aid {

/// One predicate's suspiciousness in [0, 1] (statistical debugging feeds
/// the F1 score of its ranked output here).
struct SuspiciousnessScore {
  PredicateId id = kInvalidPredicate;
  double score = 0.0;
};

/// Prior side-information for the adaptive budgeter.
struct AdvicePriors {
  /// Predicates the user explicitly suspects; their prior is raised to at
  /// least `suspect_prior`.
  std::vector<PredicateId> suspects;
  double suspect_prior = 0.9;
  /// Statistical-debugging suspiciousness scores. Filled automatically by
  /// aid::Session from the backend's SD stage when left empty; backends
  /// without SD (ground-truth models) contribute nothing.
  std::vector<SuspiciousnessScore> sd_scores;
  /// Blend weight of the SD score against the flat base prior: the seeded
  /// prior is (1 - sd_weight) * base + sd_weight * score. 0 ignores SD.
  double sd_weight = 0.5;
};

/// Seeds one prior per candidate (aligned with `candidates`): `base_prior`
/// blended with the candidate's SD score per `advice.sd_weight`, then
/// raised to `advice.suspect_prior` for user-named suspects. Every result
/// is clamped inside (0, 1) so no candidate starts certain.
std::vector<double> SeedPriors(const std::vector<PredicateId>& candidates,
                               double base_prior, const AdvicePriors& advice);

}  // namespace aid

#endif  // AID_BUDGET_ADVICE_H_
