#include "runtime/program.h"

#include "common/logging.h"
#include "common/strings.h"

namespace aid {

ProgramBuilder::ProgramBuilder() {
  program_.index_out_of_range_ =
      program_.exception_names_.Intern("IndexOutOfRange");
  program_.deadlock_ = program_.exception_names_.Intern("Deadlock");
}

SymbolId ProgramBuilder::InternObject(std::string_view name, ObjectKind kind) {
  const SymbolId id = program_.object_names_.Intern(name);
  auto [it, inserted] = program_.object_kinds_.emplace(id, kind);
  AID_CHECK(it->second == kind);  // one name, one kind
  (void)inserted;
  return id;
}

SymbolId ProgramBuilder::InternMethod(std::string_view name) {
  const SymbolId id = program_.method_names_.Intern(name);
  if (static_cast<size_t>(id) >= program_.methods_.size()) {
    MethodDef def;
    def.id = id;
    def.name = std::string(name);
    program_.methods_.push_back(std::move(def));
  }
  return id;
}

ProgramBuilder& ProgramBuilder::Global(std::string_view name,
                                       int64_t initial_value) {
  program_.globals_[InternObject(name, ObjectKind::kGlobal)] = initial_value;
  return *this;
}

ProgramBuilder& ProgramBuilder::Array(std::string_view name,
                                      int64_t initial_length) {
  AID_CHECK(initial_length >= 0);
  program_.arrays_[InternObject(name, ObjectKind::kArray)] = initial_length;
  return *this;
}

ProgramBuilder& ProgramBuilder::Mutex(std::string_view name) {
  const SymbolId id = InternObject(name, ObjectKind::kMutex);
  for (SymbolId existing : program_.mutexes_) {
    if (existing == id) return *this;
  }
  program_.mutexes_.push_back(id);
  return *this;
}

MethodBuilder ProgramBuilder::Method(std::string_view name) {
  const SymbolId id = InternMethod(name);
  return MethodBuilder(this, static_cast<size_t>(id));
}

Result<Program> ProgramBuilder::Build(std::string_view entry) {
  const SymbolId entry_id = program_.method_names_.Find(entry);
  if (entry_id == kInvalidSymbol) {
    return Status::InvalidArgument(
        StrFormat("entry method '%s' not defined", std::string(entry).c_str()));
  }
  program_.entry_ = entry_id;

  for (const MethodDef& method : program_.methods_) {
    if (method.code.empty()) {
      return Status::InvalidArgument(
          StrFormat("method '%s' referenced but has no body", method.name.c_str()));
    }
    for (size_t pc = 0; pc < method.code.size(); ++pc) {
      const Instr& instr = method.code[pc];
      auto check_reg = [&](Reg r, bool allow_none) -> Status {
        if (r == kNoReg && allow_none) return Status::OK();
        if (r < 0 || r >= kNumRegs) {
          return Status::InvalidArgument(
              StrFormat("method '%s' pc %zu: register %d out of range",
                        method.name.c_str(), pc, r));
        }
        return Status::OK();
      };
      switch (instr.op) {
        case Op::kJump:
        case Op::kJumpIfZero:
        case Op::kJumpIfNonZero:
          if (instr.imm < 0 ||
              static_cast<size_t>(instr.imm) >= method.code.size()) {
            return Status::InvalidArgument(
                StrFormat("method '%s' pc %zu: jump target %lld out of range",
                          method.name.c_str(), pc,
                          static_cast<long long>(instr.imm)));
          }
          if (instr.op != Op::kJump) AID_RETURN_IF_ERROR(check_reg(instr.a, false));
          break;
        case Op::kCall:
        case Op::kSpawn: {
          const auto callee = static_cast<size_t>(instr.imm);
          if (callee >= program_.methods_.size() ||
              program_.methods_[callee].code.empty()) {
            return Status::InvalidArgument(StrFormat(
                "method '%s' pc %zu: callee '%s' has no body",
                method.name.c_str(), pc,
                callee < program_.methods_.size()
                    ? program_.methods_[callee].name.c_str()
                    : "<unknown>"));
          }
          AID_RETURN_IF_ERROR(check_reg(instr.a, true));
          break;
        }
        case Op::kReturn:
          AID_RETURN_IF_ERROR(check_reg(instr.a, true));
          break;
        case Op::kNop:
        case Op::kDelay:
        case Op::kDelayRand:
        case Op::kThrow:
        case Op::kLock:
        case Op::kUnlock:
          break;
        case Op::kAdd:
        case Op::kSub:
        case Op::kMul:
        case Op::kCmpEq:
        case Op::kCmpLt:
          AID_RETURN_IF_ERROR(check_reg(instr.a, false));
          AID_RETURN_IF_ERROR(check_reg(instr.b, false));
          AID_RETURN_IF_ERROR(check_reg(instr.c, false));
          break;
        case Op::kAddImm:
          AID_RETURN_IF_ERROR(check_reg(instr.a, false));
          AID_RETURN_IF_ERROR(check_reg(instr.b, false));
          break;
        case Op::kArrayLoad:
        case Op::kArrayStore:
          AID_RETURN_IF_ERROR(check_reg(instr.a, false));
          AID_RETURN_IF_ERROR(check_reg(instr.b, false));
          break;
        default:
          AID_RETURN_IF_ERROR(check_reg(instr.a, false));
          break;
      }
      if (instr.cost < 1) {
        return Status::InvalidArgument(
            StrFormat("method '%s' pc %zu: non-positive cost",
                      method.name.c_str(), pc));
      }
    }
    // Require a terminating return so pc never runs off the end.
    if (method.code.back().op != Op::kReturn &&
        method.code.back().op != Op::kThrow &&
        method.code.back().op != Op::kJump) {
      return Status::InvalidArgument(StrFormat(
          "method '%s' must end with return/throw/jump", method.name.c_str()));
    }
  }
  return program_;
}

Instr& MethodBuilder::Emit(Instr instr) {
  auto& code = program_->program_.methods_[method_index_].code;
  code.push_back(instr);
  return code.back();
}

MethodBuilder& MethodBuilder::LoadConst(Reg dst, int64_t value) {
  Emit({.op = Op::kLoadConst, .a = dst, .imm = value});
  return *this;
}

MethodBuilder& MethodBuilder::LoadGlobal(Reg dst, std::string_view global) {
  Emit({.op = Op::kLoadGlobal,
        .a = dst,
        .obj = program_->InternObject(global, ObjectKind::kGlobal)});
  return *this;
}

MethodBuilder& MethodBuilder::StoreGlobal(std::string_view global, Reg src) {
  Emit({.op = Op::kStoreGlobal,
        .a = src,
        .obj = program_->InternObject(global, ObjectKind::kGlobal)});
  return *this;
}

MethodBuilder& MethodBuilder::Add(Reg dst, Reg lhs, Reg rhs) {
  Emit({.op = Op::kAdd, .a = dst, .b = lhs, .c = rhs});
  return *this;
}

MethodBuilder& MethodBuilder::Sub(Reg dst, Reg lhs, Reg rhs) {
  Emit({.op = Op::kSub, .a = dst, .b = lhs, .c = rhs});
  return *this;
}

MethodBuilder& MethodBuilder::Mul(Reg dst, Reg lhs, Reg rhs) {
  Emit({.op = Op::kMul, .a = dst, .b = lhs, .c = rhs});
  return *this;
}

MethodBuilder& MethodBuilder::AddImm(Reg dst, Reg src, int64_t imm) {
  Emit({.op = Op::kAddImm, .a = dst, .b = src, .imm = imm});
  return *this;
}

MethodBuilder& MethodBuilder::CmpEq(Reg dst, Reg lhs, Reg rhs) {
  Emit({.op = Op::kCmpEq, .a = dst, .b = lhs, .c = rhs});
  return *this;
}

MethodBuilder& MethodBuilder::CmpLt(Reg dst, Reg lhs, Reg rhs) {
  Emit({.op = Op::kCmpLt, .a = dst, .b = lhs, .c = rhs});
  return *this;
}

MethodBuilder& MethodBuilder::ArrayLen(Reg dst, std::string_view array) {
  Emit({.op = Op::kArrayLen,
        .a = dst,
        .obj = program_->InternObject(array, ObjectKind::kArray)});
  return *this;
}

MethodBuilder& MethodBuilder::ArrayLoad(Reg dst, std::string_view array,
                                        Reg index) {
  Emit({.op = Op::kArrayLoad,
        .a = dst,
        .b = index,
        .obj = program_->InternObject(array, ObjectKind::kArray)});
  return *this;
}

MethodBuilder& MethodBuilder::ArrayStore(std::string_view array, Reg index,
                                         Reg src) {
  Emit({.op = Op::kArrayStore,
        .a = src,
        .b = index,
        .obj = program_->InternObject(array, ObjectKind::kArray)});
  return *this;
}

MethodBuilder& MethodBuilder::ArrayResize(std::string_view array, Reg new_len) {
  Emit({.op = Op::kArrayResize,
        .a = new_len,
        .obj = program_->InternObject(array, ObjectKind::kArray)});
  return *this;
}

MethodBuilder& MethodBuilder::Delay(Tick ticks) {
  AID_CHECK(ticks >= 0);
  Emit({.op = Op::kDelay, .imm = ticks});
  return *this;
}

MethodBuilder& MethodBuilder::DelayRand(Tick min_ticks, Tick max_ticks) {
  AID_CHECK(0 <= min_ticks && min_ticks <= max_ticks);
  Emit({.op = Op::kDelayRand, .imm = min_ticks, .imm2 = max_ticks});
  return *this;
}

MethodBuilder& MethodBuilder::Random(Reg dst, int64_t bound) {
  AID_CHECK(bound > 0);
  Emit({.op = Op::kRandom, .a = dst, .imm = bound});
  return *this;
}

MethodBuilder& MethodBuilder::Call(Reg dst, std::string_view method) {
  Emit({.op = Op::kCall, .a = dst, .imm = program_->InternMethod(method)});
  return *this;
}

MethodBuilder& MethodBuilder::CallVoid(std::string_view method) {
  return Call(kNoReg, method);
}

MethodBuilder& MethodBuilder::Spawn(Reg dst_thread, std::string_view method) {
  Emit({.op = Op::kSpawn,
        .a = dst_thread,
        .imm = program_->InternMethod(method)});
  return *this;
}

MethodBuilder& MethodBuilder::Join(Reg thread) {
  Emit({.op = Op::kJoin, .a = thread});
  return *this;
}

MethodBuilder& MethodBuilder::Lock(std::string_view mutex) {
  program_->Mutex(mutex);
  Emit({.op = Op::kLock,
        .obj = program_->program_.object_names_.Find(mutex)});
  return *this;
}

MethodBuilder& MethodBuilder::Unlock(std::string_view mutex) {
  program_->Mutex(mutex);
  Emit({.op = Op::kUnlock,
        .obj = program_->program_.object_names_.Find(mutex)});
  return *this;
}

MethodBuilder& MethodBuilder::Throw(std::string_view exception) {
  Emit({.op = Op::kThrow,
        .obj = program_->program_.exception_names_.Intern(exception)});
  return *this;
}

MethodBuilder& MethodBuilder::ThrowIfZero(Reg cond, std::string_view exception) {
  Emit({.op = Op::kThrowIfZero,
        .a = cond,
        .obj = program_->program_.exception_names_.Intern(exception)});
  return *this;
}

MethodBuilder& MethodBuilder::ThrowIfNonZero(Reg cond,
                                             std::string_view exception) {
  Emit({.op = Op::kThrowIfNonZero,
        .a = cond,
        .obj = program_->program_.exception_names_.Intern(exception)});
  return *this;
}

MethodBuilder& MethodBuilder::Return(Reg src) {
  Emit({.op = Op::kReturn, .a = src});
  return *this;
}

size_t MethodBuilder::JumpPlaceholder() {
  Emit({.op = Op::kJump, .imm = -1});
  return program_->program_.methods_[method_index_].code.size() - 1;
}

size_t MethodBuilder::JumpIfZeroPlaceholder(Reg cond) {
  Emit({.op = Op::kJumpIfZero, .a = cond, .imm = -1});
  return program_->program_.methods_[method_index_].code.size() - 1;
}

size_t MethodBuilder::JumpIfNonZeroPlaceholder(Reg cond) {
  Emit({.op = Op::kJumpIfNonZero, .a = cond, .imm = -1});
  return program_->program_.methods_[method_index_].code.size() - 1;
}

MethodBuilder& MethodBuilder::JumpTo(size_t target) {
  Emit({.op = Op::kJump, .imm = static_cast<int64_t>(target)});
  return *this;
}

MethodBuilder& MethodBuilder::JumpIfNonZeroTo(Reg cond, size_t target) {
  Emit({.op = Op::kJumpIfNonZero,
        .a = cond,
        .imm = static_cast<int64_t>(target)});
  return *this;
}

MethodBuilder& MethodBuilder::PatchTarget(size_t jump_index) {
  auto& code = program_->program_.methods_[method_index_].code;
  AID_CHECK(jump_index < code.size());
  code[jump_index].imm = static_cast<int64_t>(code.size());
  return *this;
}

size_t MethodBuilder::Here() const {
  return program_->program_.methods_[method_index_].code.size();
}

MethodBuilder& MethodBuilder::WithCost(Tick cost) {
  auto& code = program_->program_.methods_[method_index_].code;
  AID_CHECK(!code.empty());
  AID_CHECK(cost >= 1);
  code.back().cost = cost;
  return *this;
}

MethodBuilder& MethodBuilder::SideEffectFree() {
  program_->program_.methods_[method_index_].side_effect_free = true;
  return *this;
}

MethodBuilder& MethodBuilder::CatchesExceptions(int64_t fallback) {
  auto& def = program_->program_.methods_[method_index_];
  def.catches_exceptions = true;
  def.catch_fallback = fallback;
  return *this;
}

}  // namespace aid
