#include "runtime/intervention.h"

namespace aid {

std::string_view VmActionKindName(VmActionKind kind) {
  switch (kind) {
    case VmActionKind::kSerializeMethods:
      return "serialize-methods";
    case VmActionKind::kCatchExceptions:
      return "catch-exceptions";
    case VmActionKind::kDelayBeforeReturn:
      return "delay-before-return";
    case VmActionKind::kDelayAtEnter:
      return "delay-at-enter";
    case VmActionKind::kPrematureReturn:
      return "premature-return";
    case VmActionKind::kForceReturnValue:
      return "force-return-value";
    case VmActionKind::kEnforceOrder:
      return "enforce-order";
    case VmActionKind::kForceReturnDistinct:
      return "force-return-distinct";
  }
  return "unknown";
}

}  // namespace aid
