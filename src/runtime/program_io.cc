#include "runtime/program_io.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"

namespace aid {
namespace {

constexpr uint32_t kProgramFormatVersion = 1;

void SerializeInstr(const Instr& instr, WireWriter& writer) {
  writer.U8(static_cast<uint8_t>(instr.op));
  writer.I32(instr.a);
  writer.I32(instr.b);
  writer.I32(instr.c);
  writer.I32(instr.obj);
  writer.I64(instr.imm);
  writer.I64(instr.imm2);
  writer.I64(instr.cost);
}

Instr DeserializeInstr(WireReader& reader) {
  Instr instr;
  instr.op = static_cast<Op>(reader.U8());
  instr.a = reader.I32();
  instr.b = reader.I32();
  instr.c = reader.I32();
  instr.obj = reader.I32();
  instr.imm = reader.I64();
  instr.imm2 = reader.I64();
  instr.cost = reader.I64();
  return instr;
}

}  // namespace

void SerializeSymbolTable(const SymbolTable& table, WireWriter& writer) {
  writer.U32(static_cast<uint32_t>(table.size()));
  for (size_t id = 0; id < table.size(); ++id) {
    writer.Str(table.Name(static_cast<SymbolId>(id)));
  }
}

Result<SymbolTable> DeserializeSymbolTable(WireReader& reader) {
  // Each entry carries at least its u32 length prefix.
  const uint32_t count = reader.Count(4);
  AID_RETURN_IF_ERROR(reader.status());
  SymbolTable table;
  for (uint32_t i = 0; i < count; ++i) {
    const std::string name = reader.Str();
    AID_RETURN_IF_ERROR(reader.status());
    const SymbolId id = table.Intern(name);
    if (id != static_cast<SymbolId>(i)) {
      return Status::InvalidArgument(
          "symbol table decode: duplicate name '" + name +
          "' breaks dense id assignment");
    }
  }
  return table;
}

/// Full private access to Program (friend declared in program.h).
struct ProgramSerde {
  static void Serialize(const Program& program, WireWriter& writer) {
    writer.U32(kProgramFormatVersion);
    writer.I32(program.entry_);
    SerializeSymbolTable(program.method_names_, writer);
    SerializeSymbolTable(program.object_names_, writer);
    SerializeSymbolTable(program.exception_names_, writer);

    writer.U32(static_cast<uint32_t>(program.methods_.size()));
    for (const MethodDef& method : program.methods_) {
      writer.I32(method.id);
      writer.Str(method.name);
      writer.U8(method.side_effect_free ? 1 : 0);
      writer.U8(method.catches_exceptions ? 1 : 0);
      writer.I64(method.catch_fallback);
      writer.U32(static_cast<uint32_t>(method.code.size()));
      for (const Instr& instr : method.code) SerializeInstr(instr, writer);
    }

    // Shared-state declarations, keyed by object symbol. Maps are emitted in
    // symbol-id order so equal programs serialize to equal bytes.
    const size_t object_count = program.object_names_.size();
    writer.U32(static_cast<uint32_t>(object_count));
    for (size_t id = 0; id < object_count; ++id) {
      const SymbolId symbol = static_cast<SymbolId>(id);
      writer.U8(static_cast<uint8_t>(program.object_kinds_.at(symbol)));
      int64_t initial = 0;
      if (auto it = program.globals_.find(symbol); it != program.globals_.end()) {
        initial = it->second;
      } else if (auto at = program.arrays_.find(symbol);
                 at != program.arrays_.end()) {
        initial = at->second;
      }
      writer.I64(initial);
    }
    writer.U32(static_cast<uint32_t>(program.mutexes_.size()));
    for (SymbolId mutex : program.mutexes_) writer.I32(mutex);
    writer.I32(program.index_out_of_range_);
    writer.I32(program.deadlock_);
  }

  static Result<Program> Deserialize(WireReader& reader) {
    const uint32_t version = reader.U32();
    if (reader.ok() && version != kProgramFormatVersion) {
      return Status::InvalidArgument(
          "program decode: unsupported format version " +
          std::to_string(version));
    }
    Program program;
    program.entry_ = reader.I32();
    AID_ASSIGN_OR_RETURN(program.method_names_,
                         DeserializeSymbolTable(reader));
    AID_ASSIGN_OR_RETURN(program.object_names_,
                         DeserializeSymbolTable(reader));
    AID_ASSIGN_OR_RETURN(program.exception_names_,
                         DeserializeSymbolTable(reader));

    // Fixed per-method header: id + name length + flags + fallback + count.
    const uint32_t method_count = reader.Count(22);
    AID_RETURN_IF_ERROR(reader.status());
    program.methods_.reserve(method_count);
    for (uint32_t i = 0; i < method_count; ++i) {
      MethodDef method;
      method.id = reader.I32();
      method.name = reader.Str();
      method.side_effect_free = reader.U8() != 0;
      method.catches_exceptions = reader.U8() != 0;
      method.catch_fallback = reader.I64();
      // Each serialized Instr occupies exactly 41 bytes.
      const uint32_t code_len = reader.Count(41);
      AID_RETURN_IF_ERROR(reader.status());
      method.code.reserve(code_len);
      for (uint32_t j = 0; j < code_len; ++j) {
        method.code.push_back(DeserializeInstr(reader));
      }
      AID_RETURN_IF_ERROR(reader.status());
      program.methods_.push_back(std::move(method));
    }

    const uint32_t object_count = reader.U32();
    AID_RETURN_IF_ERROR(reader.status());
    if (object_count != program.object_names_.size()) {
      return Status::InvalidArgument(
          "program decode: object declaration count " +
          std::to_string(object_count) + " != object table size " +
          std::to_string(program.object_names_.size()));
    }
    for (uint32_t id = 0; id < object_count; ++id) {
      const SymbolId symbol = static_cast<SymbolId>(id);
      const uint8_t kind_byte = reader.U8();
      const int64_t initial = reader.I64();
      if (reader.ok() && kind_byte > static_cast<uint8_t>(ObjectKind::kMutex)) {
        return Status::InvalidArgument(
            "program decode: object kind byte " + std::to_string(kind_byte) +
            " is not a known ObjectKind");
      }
      const ObjectKind kind = static_cast<ObjectKind>(kind_byte);
      program.object_kinds_[symbol] = kind;
      switch (kind) {
        case ObjectKind::kGlobal:
          program.globals_[symbol] = initial;
          break;
        case ObjectKind::kArray:
          program.arrays_[symbol] = initial;
          break;
        case ObjectKind::kMutex:
          break;
      }
    }
    const uint32_t mutex_count = reader.Count(sizeof(SymbolId));
    AID_RETURN_IF_ERROR(reader.status());
    program.mutexes_.reserve(mutex_count);
    for (uint32_t i = 0; i < mutex_count; ++i) {
      program.mutexes_.push_back(reader.I32());
    }
    program.index_out_of_range_ = reader.I32();
    program.deadlock_ = reader.I32();
    AID_RETURN_IF_ERROR(reader.status());
    return program;
  }
};

Status ValidateProgram(const Program& program) {
  const auto& methods = program.methods();
  if (program.entry() < 0 ||
      static_cast<size_t>(program.entry()) >= methods.size()) {
    return Status::InvalidArgument(
        StrFormat("program: entry method id %d out of range (have %zu "
                  "methods)",
                  program.entry(), methods.size()));
  }
  const size_t exception_count = program.exception_names().size();
  for (size_t m = 0; m < methods.size(); ++m) {
    const MethodDef& method = methods[m];
    if (method.id != static_cast<SymbolId>(m)) {
      return Status::InvalidArgument(
          StrFormat("program: method '%s' at index %zu carries id %d (ids "
                    "must be dense table indexes)",
                    method.name.c_str(), m, method.id));
    }
    if (method.code.empty()) {
      return Status::InvalidArgument(StrFormat(
          "program: method '%s' has no body", method.name.c_str()));
    }
    for (size_t pc = 0; pc < method.code.size(); ++pc) {
      const Instr& instr = method.code[pc];
      auto fail = [&](const std::string& what) {
        return Status::InvalidArgument(
            StrFormat("program: method '%s' pc %zu: %s",
                      method.name.c_str(), pc, what.c_str()));
      };
      if (static_cast<uint8_t>(instr.op) > static_cast<uint8_t>(Op::kReturn)) {
        return fail(StrFormat("opcode byte %u outside the instruction set",
                              static_cast<unsigned>(instr.op)));
      }
      auto check_reg = [&](Reg r, bool allow_none) -> Status {
        if (r == kNoReg && allow_none) return Status::OK();
        if (r < 0 || r >= kNumRegs) {
          return fail(StrFormat("register %d out of range", r));
        }
        return Status::OK();
      };
      auto check_declared = [&](const char* kind, bool declared) -> Status {
        if (!declared) {
          return fail(StrFormat("object symbol %d is not a declared %s",
                                instr.obj, kind));
        }
        return Status::OK();
      };
      switch (instr.op) {
        case Op::kJump:
        case Op::kJumpIfZero:
        case Op::kJumpIfNonZero:
          if (instr.imm < 0 ||
              static_cast<size_t>(instr.imm) >= method.code.size()) {
            return fail(StrFormat("jump target %lld out of range",
                                  static_cast<long long>(instr.imm)));
          }
          if (instr.op != Op::kJump) {
            AID_RETURN_IF_ERROR(check_reg(instr.a, false));
          }
          break;
        case Op::kCall:
        case Op::kSpawn: {
          const auto callee = static_cast<uint64_t>(instr.imm);
          if (instr.imm < 0 || callee >= methods.size() ||
              methods[callee].code.empty()) {
            return fail(StrFormat("callee %lld has no body",
                                  static_cast<long long>(instr.imm)));
          }
          AID_RETURN_IF_ERROR(check_reg(instr.a, true));
          break;
        }
        case Op::kReturn:
          AID_RETURN_IF_ERROR(check_reg(instr.a, true));
          break;
        case Op::kLoadGlobal:
          AID_RETURN_IF_ERROR(check_reg(instr.a, false));
          AID_RETURN_IF_ERROR(check_declared(
              "global", program.globals().count(instr.obj) > 0));
          break;
        case Op::kStoreGlobal:
          AID_RETURN_IF_ERROR(check_reg(instr.a, false));
          AID_RETURN_IF_ERROR(check_declared(
              "global", program.globals().count(instr.obj) > 0));
          break;
        case Op::kArrayLen:
        case Op::kArrayLoad:
        case Op::kArrayStore:
        case Op::kArrayResize:
          AID_RETURN_IF_ERROR(check_reg(instr.a, false));
          if (instr.op == Op::kArrayLoad || instr.op == Op::kArrayStore) {
            AID_RETURN_IF_ERROR(check_reg(instr.b, false));
          }
          AID_RETURN_IF_ERROR(check_declared(
              "array", program.arrays().count(instr.obj) > 0));
          break;
        case Op::kLock:
        case Op::kUnlock:
          AID_RETURN_IF_ERROR(check_declared(
              "mutex", std::find(program.mutexes().begin(),
                                 program.mutexes().end(),
                                 instr.obj) != program.mutexes().end()));
          break;
        case Op::kThrow:
        case Op::kThrowIfZero:
        case Op::kThrowIfNonZero:
          if (instr.op != Op::kThrow) {
            AID_RETURN_IF_ERROR(check_reg(instr.a, false));
          }
          if (instr.obj < 0 ||
              static_cast<size_t>(instr.obj) >= exception_count) {
            return fail(StrFormat("exception symbol %d out of range",
                                  instr.obj));
          }
          break;
        case Op::kRandom:
          AID_RETURN_IF_ERROR(check_reg(instr.a, false));
          // Uniform(0) divides by zero.
          if (instr.imm < 1) {
            return fail(StrFormat("random bound %lld must be positive",
                                  static_cast<long long>(instr.imm)));
          }
          break;
        case Op::kDelayRand:
          if (instr.imm < 0 || instr.imm2 < instr.imm) {
            return fail(StrFormat(
                "delay range [%lld, %lld] is invalid",
                static_cast<long long>(instr.imm),
                static_cast<long long>(instr.imm2)));
          }
          break;
        case Op::kNop:
        case Op::kDelay:
          break;
        case Op::kAdd:
        case Op::kSub:
        case Op::kMul:
        case Op::kCmpEq:
        case Op::kCmpLt:
          AID_RETURN_IF_ERROR(check_reg(instr.a, false));
          AID_RETURN_IF_ERROR(check_reg(instr.b, false));
          AID_RETURN_IF_ERROR(check_reg(instr.c, false));
          break;
        case Op::kAddImm:
          AID_RETURN_IF_ERROR(check_reg(instr.a, false));
          AID_RETURN_IF_ERROR(check_reg(instr.b, false));
          break;
        case Op::kLoadConst:
        case Op::kJoin:
          AID_RETURN_IF_ERROR(check_reg(instr.a, false));
          break;
      }
      if (instr.cost < 1) {
        return fail("non-positive cost");
      }
    }
    const Op last = method.code.back().op;
    if (last != Op::kReturn && last != Op::kThrow && last != Op::kJump) {
      return Status::InvalidArgument(
          StrFormat("program: method '%s' must end with return/throw/jump",
                    method.name.c_str()));
    }
  }
  return Status::OK();
}

void SerializeProgram(const Program& program, WireWriter& writer) {
  ProgramSerde::Serialize(program, writer);
}

Result<Program> DeserializeProgram(WireReader& reader) {
  AID_ASSIGN_OR_RETURN(Program program, ProgramSerde::Deserialize(reader));
  AID_RETURN_IF_ERROR(ValidateProgram(program));
  return program;
}

std::string ProgramToBytes(const Program& program) {
  WireWriter writer;
  SerializeProgram(program, writer);
  return writer.Release();
}

Result<Program> ProgramFromBytes(std::string_view bytes) {
  WireReader reader(bytes);
  AID_ASSIGN_OR_RETURN(Program program, DeserializeProgram(reader));
  AID_RETURN_IF_ERROR(reader.Finish());
  return program;
}

}  // namespace aid
