#include "runtime/vm.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace aid {

Result<ExecutionTrace> Vm::Run(const VmOptions& options,
                               const InterventionPlan* plan) {
  // Reset all run state.
  options_ = options;
  plan_ = plan;
  sched_rng_ = Rng(options.seed);
  recorder_ = TraceRecorder();
  now_ = 0;
  threads_.clear();
  globals_.clear();
  arrays_.clear();
  mutexes_.clear();
  enter_counts_.clear();
  exited_.clear();
  exit_totals_.clear();
  last_return_.clear();
  failed_ = false;
  stop_ = false;
  signature_ = FailureSignature{};

  for (const auto& [id, value] : program_->globals()) globals_[id] = value;
  for (const auto& [id, len] : program_->arrays()) {
    arrays_[id] = std::vector<int64_t>(static_cast<size_t>(len), 0);
  }

  ThreadState main;
  main.index = 0;
  main.pending.active = true;
  main.pending.method = program_->entry();
  main.pending.ret_reg = kNoReg;
  uint64_t mix = options.seed;
  main.app_rng = Rng(SplitMix64(mix));
  threads_.push_back(std::move(main));

  int64_t steps = 0;
  std::vector<size_t> runnable;
  while (!stop_) {
    if (++steps > options_.max_steps) {
      return Status::Aborted(
          StrFormat("program exceeded max_steps=%lld (livelock or runaway loop)",
                    static_cast<long long>(options_.max_steps)));
    }

    runnable.clear();
    bool any_sleeping = false;
    bool any_blocked = false;
    bool any_live = false;
    Tick min_wake = 0;
    for (size_t i = 0; i < threads_.size(); ++i) {
      switch (threads_[i].status) {
        case ThreadStatus::kRunnable:
          runnable.push_back(i);
          any_live = true;
          break;
        case ThreadStatus::kSleeping:
          if (!any_sleeping || threads_[i].wake_tick < min_wake) {
            min_wake = threads_[i].wake_tick;
          }
          any_sleeping = true;
          any_live = true;
          break;
        case ThreadStatus::kBlockedLock:
        case ThreadStatus::kBlockedJoin:
        case ThreadStatus::kBlockedOrder:
          any_blocked = true;
          any_live = true;
          break;
        case ThreadStatus::kFinished:
        case ThreadStatus::kCrashed:
          break;
      }
    }
    if (!any_live) break;  // all threads done

    if (runnable.empty()) {
      if (any_sleeping) {
        // Advance virtual time to the next wake-up.
        now_ = std::max(now_, min_wake);
        for (auto& t : threads_) {
          if (t.status == ThreadStatus::kSleeping && t.wake_tick <= now_) {
            t.status = ThreadStatus::kRunnable;
          }
        }
        continue;
      }
      // Only blocked threads remain: deadlock. The run fails with the
      // dedicated deadlock signature.
      AID_CHECK(any_blocked);
      failed_ = true;
      signature_.exception_type = program_->deadlock();
      signature_.method = kInvalidSymbol;
      break;
    }

    ThreadState& t = threads_[runnable[sched_rng_.Uniform(runnable.size())]];
    StepThread(t);

    // Wake sleepers whose time has come as the clock advanced.
    for (auto& th : threads_) {
      if (th.status == ThreadStatus::kSleeping && th.wake_tick <= now_) {
        th.status = ThreadStatus::kRunnable;
      }
    }
  }

  int thread_count = static_cast<int>(threads_.size());
  // The run's end strictly follows every recorded event, so the failure
  // predicate F is temporally last (its AC-DAG position).
  return recorder_.Finish(failed_, signature_, now_ + 1, thread_count);
}

void Vm::StepThread(ThreadState& t) {
  if (t.pending.active) {
    BeginPendingCall(t);
    return;
  }
  AID_CHECK(!t.stack.empty());
  Frame& frame = t.stack.back();
  if (frame.premature) {
    // Woke up from the injected sleep; complete the premature return.
    now_ += 1;
    ExitMethod(t, /*has_value=*/true, frame.premature_value);
    return;
  }
  ExecuteInstr(t);
}

void Vm::BeginPendingCall(ThreadState& t) {
  const SymbolId callee = t.pending.method;
  const int next_occurrence = enter_counts_[callee] + 1;

  if (plan_ != nullptr) {
    // Order enforcement: hold the call until the prerequisite has exited.
    bool order_blocked = false;
    SymbolId wait_method = kInvalidSymbol;
    int wait_occurrence = kAllOccurrences;
    plan_->ForEachMatching(
        VmActionKind::kEnforceOrder, callee, next_occurrence,
        [&](const VmAction& action) {
          if (!OrderSatisfied(action.method2, action.occurrence2)) {
            order_blocked = true;
            wait_method = action.method2;
            wait_occurrence = action.occurrence2;
          }
        });
    if (order_blocked) {
      t.status = ThreadStatus::kBlockedOrder;
      t.order_method = wait_method;
      t.order_occurrence = wait_occurrence;
      return;
    }

    // Serialization: acquire every matching intervention mutex before entry.
    // Mutexes are gathered in sorted order so concurrent entries of the two
    // racing methods cannot deadlock against each other.
    std::vector<SymbolId> needed;
    plan_->ForEachMatching(
        VmActionKind::kSerializeMethods, callee, next_occurrence,
        [&](const VmAction& action) { needed.push_back(action.mutex); });
    std::sort(needed.begin(), needed.end());
    needed.erase(std::unique(needed.begin(), needed.end()), needed.end());
    while (t.pending.mutexes_acquired < needed.size()) {
      const SymbolId mutex = needed[t.pending.mutexes_acquired];
      if (!TryAcquire(mutex, t.index)) {
        t.status = ThreadStatus::kBlockedLock;
        t.waiting_mutex = mutex;
        return;
      }
      ++t.pending.mutexes_acquired;
    }
  }

  // Commit the entry.
  const int occurrence = ++enter_counts_[callee];
  now_ += 1;
  const CallUid uid = recorder_.MethodEnter(t.index, callee, now_);

  Frame frame;
  frame.method = callee;
  frame.uid = uid;
  frame.ret_reg = t.pending.ret_reg;
  frame.occurrence = occurrence;
  frame.enter_tick = now_;

  const MethodDef& def = program_->method(callee);
  frame.catches = def.catches_exceptions;
  frame.catch_fallback = def.catch_fallback;

  Tick enter_delay = 0;
  bool premature = false;
  if (plan_ != nullptr) {
    plan_->ForEachMatching(VmActionKind::kSerializeMethods, callee, occurrence,
                           [&](const VmAction& action) {
                             frame.serialize_mutexes.push_back(action.mutex);
                           });
    std::sort(frame.serialize_mutexes.begin(), frame.serialize_mutexes.end());
    frame.serialize_mutexes.erase(
        std::unique(frame.serialize_mutexes.begin(),
                    frame.serialize_mutexes.end()),
        frame.serialize_mutexes.end());
    plan_->ForEachMatching(VmActionKind::kCatchExceptions, callee, occurrence,
                           [&](const VmAction& action) {
                             frame.catches = true;
                             frame.catch_fallback = action.value;
                           });
    plan_->ForEachMatching(VmActionKind::kForceReturnValue, callee, occurrence,
                           [&](const VmAction& action) {
                             frame.force_return = true;
                             frame.forced_value = action.value;
                           });
    plan_->ForEachMatching(VmActionKind::kDelayBeforeReturn, callee, occurrence,
                           [&](const VmAction& action) {
                             frame.delay_before_return += action.ticks;
                           });
    plan_->ForEachMatching(VmActionKind::kDelayAtEnter, callee, occurrence,
                           [&](const VmAction& action) { enter_delay += action.ticks; });
    plan_->ForEachMatching(VmActionKind::kPrematureReturn, callee, occurrence,
                           [&](const VmAction& action) {
                             premature = true;
                             frame.premature_value = action.value;
                             enter_delay = action.ticks;
                           });
  }
  frame.premature = premature;

  t.pending = PendingCall{};
  t.stack.push_back(std::move(frame));
  if (enter_delay > 0) {
    Sleep(t, enter_delay);
  }
}

void Vm::ExecuteInstr(ThreadState& t) {
  Frame& frame = t.stack.back();
  const MethodDef& def = program_->method(frame.method);
  AID_CHECK(frame.pc < def.code.size());
  const Instr& instr = def.code[frame.pc];

  auto reg = [&](Reg r) -> int64_t& { return frame.regs[static_cast<size_t>(r)]; };

  switch (instr.op) {
    case Op::kNop:
      now_ += instr.cost;
      ++frame.pc;
      break;
    case Op::kLoadConst:
      reg(instr.a) = instr.imm;
      now_ += instr.cost;
      ++frame.pc;
      break;
    case Op::kLoadGlobal: {
      const int64_t value = globals_[instr.obj];
      reg(instr.a) = value;
      now_ += instr.cost;
      recorder_.Access(t.index, frame.method, frame.uid, instr.obj,
                       /*is_write=*/false, value, now_);
      ++frame.pc;
      break;
    }
    case Op::kStoreGlobal: {
      const int64_t value = reg(instr.a);
      globals_[instr.obj] = value;
      now_ += instr.cost;
      recorder_.Access(t.index, frame.method, frame.uid, instr.obj,
                       /*is_write=*/true, value, now_);
      ++frame.pc;
      break;
    }
    case Op::kAdd:
      reg(instr.a) = reg(instr.b) + reg(instr.c);
      now_ += instr.cost;
      ++frame.pc;
      break;
    case Op::kSub:
      reg(instr.a) = reg(instr.b) - reg(instr.c);
      now_ += instr.cost;
      ++frame.pc;
      break;
    case Op::kMul:
      reg(instr.a) = reg(instr.b) * reg(instr.c);
      now_ += instr.cost;
      ++frame.pc;
      break;
    case Op::kAddImm:
      reg(instr.a) = reg(instr.b) + instr.imm;
      now_ += instr.cost;
      ++frame.pc;
      break;
    case Op::kCmpEq:
      reg(instr.a) = (reg(instr.b) == reg(instr.c)) ? 1 : 0;
      now_ += instr.cost;
      ++frame.pc;
      break;
    case Op::kCmpLt:
      reg(instr.a) = (reg(instr.b) < reg(instr.c)) ? 1 : 0;
      now_ += instr.cost;
      ++frame.pc;
      break;
    case Op::kJump:
      now_ += instr.cost;
      frame.pc = static_cast<size_t>(instr.imm);
      break;
    case Op::kJumpIfZero:
      now_ += instr.cost;
      frame.pc = (reg(instr.a) == 0) ? static_cast<size_t>(instr.imm)
                                     : frame.pc + 1;
      break;
    case Op::kJumpIfNonZero:
      now_ += instr.cost;
      frame.pc = (reg(instr.a) != 0) ? static_cast<size_t>(instr.imm)
                                     : frame.pc + 1;
      break;
    case Op::kArrayLen: {
      const auto& arr = arrays_[instr.obj];
      reg(instr.a) = static_cast<int64_t>(arr.size());
      now_ += instr.cost;
      recorder_.Access(t.index, frame.method, frame.uid, instr.obj,
                       /*is_write=*/false, reg(instr.a), now_);
      ++frame.pc;
      break;
    }
    case Op::kArrayLoad: {
      auto& arr = arrays_[instr.obj];
      const int64_t index = reg(instr.b);
      now_ += instr.cost;
      recorder_.Access(t.index, frame.method, frame.uid, instr.obj,
                       /*is_write=*/false, index, now_);
      if (index < 0 || static_cast<size_t>(index) >= arr.size()) {
        RaiseException(t, program_->index_out_of_range());
        return;
      }
      reg(instr.a) = arr[static_cast<size_t>(index)];
      ++frame.pc;
      break;
    }
    case Op::kArrayStore: {
      auto& arr = arrays_[instr.obj];
      const int64_t index = reg(instr.b);
      now_ += instr.cost;
      recorder_.Access(t.index, frame.method, frame.uid, instr.obj,
                       /*is_write=*/true, index, now_);
      if (index < 0 || static_cast<size_t>(index) >= arr.size()) {
        RaiseException(t, program_->index_out_of_range());
        return;
      }
      arr[static_cast<size_t>(index)] = reg(instr.a);  // a = source register
      ++frame.pc;
      break;
    }
    case Op::kArrayResize: {
      auto& arr = arrays_[instr.obj];
      const int64_t new_len = std::max<int64_t>(0, reg(instr.a));
      arr.resize(static_cast<size_t>(new_len), 0);
      now_ += instr.cost;
      recorder_.Access(t.index, frame.method, frame.uid, instr.obj,
                       /*is_write=*/true, new_len, now_);
      ++frame.pc;
      break;
    }
    case Op::kDelay:
      ++frame.pc;
      Sleep(t, instr.imm);
      break;
    case Op::kDelayRand: {
      const Tick ticks = t.app_rng.UniformRange(instr.imm, instr.imm2);
      ++frame.pc;
      Sleep(t, ticks);
      break;
    }
    case Op::kRandom:
      reg(instr.a) = static_cast<int64_t>(
          t.app_rng.Uniform(static_cast<uint64_t>(instr.imm)));
      now_ += instr.cost;
      ++frame.pc;
      break;
    case Op::kCall:
      now_ += instr.cost;
      ++frame.pc;
      t.pending.active = true;
      t.pending.method = static_cast<SymbolId>(instr.imm);
      t.pending.ret_reg = instr.a;
      t.pending.mutexes_acquired = 0;
      break;
    case Op::kSpawn: {
      now_ += instr.cost;
      ThreadState child;
      child.index = static_cast<ThreadIndex>(threads_.size());
      child.pending.active = true;
      child.pending.method = static_cast<SymbolId>(instr.imm);
      child.pending.ret_reg = kNoReg;
      uint64_t mix = options_.seed + 0x9e3779b97f4a7c15ULL *
                                         static_cast<uint64_t>(child.index);
      child.app_rng = Rng(SplitMix64(mix));
      if (instr.a != kNoReg) reg(instr.a) = child.index;
      recorder_.Spawn(t.index, frame.method, frame.uid, child.index, now_);
      ++frame.pc;
      threads_.push_back(std::move(child));
      // NOTE: threads_ may have reallocated; `t` and `frame` are dead now.
      return;
    }
    case Op::kJoin: {
      const int64_t target = reg(instr.a);
      if (target < 0 || static_cast<size_t>(target) >= threads_.size()) {
        RaiseException(t, program_->deadlock());
        return;
      }
      const ThreadState& other = threads_[static_cast<size_t>(target)];
      if (other.status == ThreadStatus::kFinished ||
          other.status == ThreadStatus::kCrashed) {
        now_ += instr.cost;
        recorder_.Join(t.index, frame.method, frame.uid,
                       static_cast<ThreadIndex>(target), now_);
        ++frame.pc;
      } else {
        t.status = ThreadStatus::kBlockedJoin;
        t.waiting_thread = static_cast<ThreadIndex>(target);
      }
      break;
    }
    case Op::kLock:
      if (TryAcquire(instr.obj, t.index)) {
        now_ += instr.cost;
        if (mutexes_[instr.obj].depth == 1) {
          recorder_.LockAcquire(t.index, frame.method, frame.uid, instr.obj,
                                now_);
        }
        ++frame.pc;
      } else {
        t.status = ThreadStatus::kBlockedLock;
        t.waiting_mutex = instr.obj;
      }
      break;
    case Op::kUnlock: {
      MutexState& m = mutexes_[instr.obj];
      if (m.owner != t.index || m.depth <= 0) {
        RaiseException(t, program_->deadlock());
        return;
      }
      now_ += instr.cost;
      if (m.depth == 1) {
        recorder_.LockRelease(t.index, frame.method, frame.uid, instr.obj,
                              now_);
      }
      Release(instr.obj, t.index);
      ++frame.pc;
      break;
    }
    case Op::kThrow:
      now_ += instr.cost;
      RaiseException(t, instr.obj);
      return;
    case Op::kThrowIfZero:
      now_ += instr.cost;
      if (reg(instr.a) == 0) {
        RaiseException(t, instr.obj);
        return;
      }
      ++frame.pc;
      break;
    case Op::kThrowIfNonZero:
      now_ += instr.cost;
      if (reg(instr.a) != 0) {
        RaiseException(t, instr.obj);
        return;
      }
      ++frame.pc;
      break;
    case Op::kReturn: {
      if (frame.delay_before_return > 0 && !frame.return_delay_done) {
        // "Method runs too fast" intervention: stall before returning.
        frame.return_delay_done = true;
        Sleep(t, frame.delay_before_return);
        return;  // pc unchanged: re-executes kReturn after waking
      }
      now_ += instr.cost;
      const bool has_value = instr.a != kNoReg;
      ExitMethod(t, has_value, has_value ? reg(instr.a) : 0);
      break;
    }
  }
}

void Vm::ExitMethod(ThreadState& t, bool has_value, int64_t value) {
  Frame frame = std::move(t.stack.back());
  t.stack.pop_back();

  if (frame.force_return) {
    value = frame.forced_value;
    has_value = true;
  }
  if (plan_ != nullptr) {
    plan_->ForEachMatching(
        VmActionKind::kForceReturnDistinct, frame.method, frame.occurrence,
        [&](const VmAction& action) {
          auto it = last_return_.find(action.method2);
          if (it != last_return_.end() && has_value && value == it->second) {
            value = it->second + 1;
          }
        });
  }
  if (has_value) last_return_[frame.method] = value;

  recorder_.MethodExit(t.index, frame.method, frame.uid, now_, has_value,
                       value);
  for (auto it = frame.serialize_mutexes.rbegin();
       it != frame.serialize_mutexes.rend(); ++it) {
    Release(*it, t.index);
  }
  exited_.insert({frame.method, frame.occurrence});
  ++exit_totals_[frame.method];
  WakeOrderWaiters();

  if (t.stack.empty()) {
    if (has_value && frame.ret_reg != kNoReg) {
      // Root method return value is discarded.
    }
    FinishThread(t, /*crashed=*/false);
    return;
  }
  if (frame.ret_reg != kNoReg) {
    t.stack.back().regs[static_cast<size_t>(frame.ret_reg)] =
        has_value ? value : 0;
  }
}

void Vm::RaiseException(ThreadState& t, SymbolId exception_type) {
  AID_CHECK(!t.stack.empty());
  const SymbolId origin_method = t.stack.back().method;
  recorder_.Throw(t.index, origin_method, t.stack.back().uid, exception_type,
                  now_);

  // Unwind until a catching frame is found. Each frame unwound costs one
  // tick, so an exception's escape through nested frames is temporally
  // ordered (innermost method fails strictly before its caller does).
  while (!t.stack.empty()) {
    Frame& frame = t.stack.back();
    now_ += 1;
    if (frame.catches) {
      recorder_.Catch(t.index, frame.method, frame.uid, exception_type, now_);
      // The catching method returns its fallback value.
      ExitMethod(t, /*has_value=*/true, frame.catch_fallback);
      return;
    }
    // Abnormal exit: record, release intervention locks, pop.
    recorder_.MethodExit(t.index, frame.method, frame.uid, now_,
                         /*has_value=*/false, 0);
    for (auto it = frame.serialize_mutexes.rbegin();
         it != frame.serialize_mutexes.rend(); ++it) {
      Release(*it, t.index);
    }
    exited_.insert({frame.method, frame.occurrence});
    ++exit_totals_[frame.method];
    t.stack.pop_back();
  }
  WakeOrderWaiters();

  // Escaped the root frame: the thread crashes and the run fails.
  failed_ = true;
  signature_.exception_type = exception_type;
  signature_.method = origin_method;
  FinishThread(t, /*crashed=*/true);
  if (options_.stop_on_failure) stop_ = true;
}

void Vm::FinishThread(ThreadState& t, bool crashed) {
  // Release any program locks the thread still holds (crash hygiene keeps
  // other threads runnable so deadlock detection stays meaningful).
  for (auto& [mutex, state] : mutexes_) {
    if (state.owner == t.index) {
      state.owner = -1;
      state.depth = 0;
      WakeLockWaiters(mutex);
    }
  }
  t.status = crashed ? ThreadStatus::kCrashed : ThreadStatus::kFinished;
  WakeJoinWaiters(t.index);
}

bool Vm::TryAcquire(SymbolId mutex, ThreadIndex thread) {
  MutexState& m = mutexes_[mutex];
  if (m.depth == 0 || m.owner == thread) {
    m.owner = thread;
    ++m.depth;
    return true;
  }
  return false;
}

void Vm::Release(SymbolId mutex, ThreadIndex thread) {
  MutexState& m = mutexes_[mutex];
  if (m.owner != thread || m.depth == 0) return;
  if (--m.depth == 0) {
    m.owner = -1;
    WakeLockWaiters(mutex);
  }
}

void Vm::WakeLockWaiters(SymbolId mutex) {
  for (auto& t : threads_) {
    if (t.status == ThreadStatus::kBlockedLock && t.waiting_mutex == mutex) {
      t.status = ThreadStatus::kRunnable;
      t.waiting_mutex = kInvalidSymbol;
    }
  }
}

void Vm::WakeJoinWaiters(ThreadIndex finished) {
  for (auto& t : threads_) {
    if (t.status == ThreadStatus::kBlockedJoin &&
        t.waiting_thread == finished) {
      t.status = ThreadStatus::kRunnable;
      t.waiting_thread = -1;
    }
  }
}

bool Vm::OrderSatisfied(SymbolId method, int occurrence) const {
  if (occurrence == kAllOccurrences) {
    auto it = exit_totals_.find(method);
    return it != exit_totals_.end() && it->second > 0;
  }
  return exited_.count({method, occurrence}) > 0;
}

void Vm::WakeOrderWaiters() {
  for (auto& t : threads_) {
    if (t.status == ThreadStatus::kBlockedOrder &&
        OrderSatisfied(t.order_method, t.order_occurrence)) {
      t.status = ThreadStatus::kRunnable;
      t.order_method = kInvalidSymbol;
    }
  }
}

void Vm::Sleep(ThreadState& t, Tick ticks) {
  if (ticks <= 0) return;
  t.status = ThreadStatus::kSleeping;
  t.wake_tick = now_ + ticks;
}

Result<std::vector<ExecutionTrace>> CollectTraces(const Program& program,
                                                  uint64_t first_seed,
                                                  int count,
                                                  const VmOptions& base) {
  std::vector<ExecutionTrace> traces;
  traces.reserve(static_cast<size_t>(count));
  Vm vm(&program);
  for (int i = 0; i < count; ++i) {
    VmOptions options = base;
    options.seed = first_seed + static_cast<uint64_t>(i);
    AID_ASSIGN_OR_RETURN(ExecutionTrace trace, vm.Run(options));
    traces.push_back(std::move(trace));
  }
  return traces;
}

}  // namespace aid
