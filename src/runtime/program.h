// Program model for the AID concurrent-program VM.
//
// The paper instruments real database applications (Npgsql, Kafka clients,
// Cosmos DB clients) whose intermittent failures stem from runtime
// nondeterminism: thread interleaving and timing. We reproduce that substrate
// with a small register VM whose programs have exactly the ingredients those
// bugs need -- shared variables, arrays with bounds checks, reentrant
// mutexes, thread spawn/join, virtual-time delays, exceptions -- executed
// under a seeded scheduler (see vm.h). The VM emits the trace schema of the
// paper's Figure 9(b), so every downstream AID stage is exercised unchanged.

#ifndef AID_RUNTIME_PROGRAM_H_
#define AID_RUNTIME_PROGRAM_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/symbol_table.h"
#include "trace/event.h"

namespace aid {

/// Register index within a call frame. Frames have kNumRegs registers; -1
/// denotes "no register" (e.g. void returns).
using Reg = int32_t;
inline constexpr int kNumRegs = 16;
inline constexpr Reg kNoReg = -1;

/// VM opcodes. Operand conventions are documented per opcode; `a`, `b`, `c`
/// are registers, `obj` is a symbol (global/array/mutex/exception), `imm`
/// and `imm2` are immediates.
enum class Op : uint8_t {
  kNop,            ///< no effect
  kLoadConst,      ///< regs[a] = imm
  kLoadGlobal,     ///< regs[a] = globals[obj]        (records a read access)
  kStoreGlobal,    ///< globals[obj] = regs[a]        (records a write access)
  kAdd,            ///< regs[a] = regs[b] + regs[c]
  kSub,            ///< regs[a] = regs[b] - regs[c]
  kMul,            ///< regs[a] = regs[b] * regs[c]
  kAddImm,         ///< regs[a] = regs[b] + imm
  kCmpEq,          ///< regs[a] = (regs[b] == regs[c])
  kCmpLt,          ///< regs[a] = (regs[b] <  regs[c])
  kJump,           ///< pc = imm
  kJumpIfZero,     ///< if (regs[a] == 0) pc = imm
  kJumpIfNonZero,  ///< if (regs[a] != 0) pc = imm
  kArrayLen,       ///< regs[a] = length(arrays[obj]) (read access)
  kArrayLoad,      ///< regs[a] = arrays[obj][regs[b]]; IndexOutOfRange if OOB
  kArrayStore,     ///< arrays[obj][regs[b]] = regs[c]; IndexOutOfRange if OOB
  kArrayResize,    ///< resize(arrays[obj], regs[a])  (write access)
  kDelay,          ///< sleep imm virtual ticks
  kDelayRand,      ///< sleep uniform[imm, imm2] virtual ticks (app RNG stream)
  kRandom,         ///< regs[a] = app-rng uniform [0, imm)
  kCall,           ///< regs[a] = invoke method imm (a == kNoReg: drop retval)
  kSpawn,          ///< regs[a] = index of new thread running method imm
  kJoin,           ///< block until thread regs[a] finishes
  kLock,           ///< acquire reentrant mutex obj
  kUnlock,         ///< release mutex obj
  kThrow,          ///< raise exception obj
  kThrowIfZero,    ///< if (regs[a] == 0) raise exception obj
  kThrowIfNonZero, ///< if (regs[a] != 0) raise exception obj
  kReturn,         ///< return regs[a] (a == kNoReg: void return)
};

/// One VM instruction. `cost` is the virtual-time price of executing it.
struct Instr {
  Op op = Op::kNop;
  Reg a = kNoReg;
  Reg b = kNoReg;
  Reg c = kNoReg;
  SymbolId obj = kInvalidSymbol;
  int64_t imm = 0;
  int64_t imm2 = 0;
  Tick cost = 1;
};

/// A method: a named instruction sequence.
struct MethodDef {
  SymbolId id = kInvalidSymbol;
  std::string name;
  std::vector<Instr> code;
  /// Whether the method mutates no shared state. Only side-effect-free
  /// methods admit return-value and exception-swallowing interventions
  /// (paper Section 3.3, "Validity of intervention").
  bool side_effect_free = false;
  /// Method-level try/catch: exceptions raised in the body (or callees) are
  /// contained here and `catch_fallback` is returned instead.
  bool catches_exceptions = false;
  int64_t catch_fallback = 0;
};

/// Kinds of named shared state.
enum class ObjectKind : uint8_t { kGlobal, kArray, kMutex };

/// A complete executable program: methods + shared state declarations.
class Program {
 public:
  const std::vector<MethodDef>& methods() const { return methods_; }
  const MethodDef& method(SymbolId id) const { return methods_[static_cast<size_t>(id)]; }
  SymbolId entry() const { return entry_; }

  const SymbolTable& method_names() const { return method_names_; }
  const SymbolTable& object_names() const { return object_names_; }
  const SymbolTable& exception_names() const { return exception_names_; }

  /// Initial values of globals, indexed by object symbol id.
  const std::unordered_map<SymbolId, int64_t>& globals() const { return globals_; }
  /// Initial lengths of arrays, indexed by object symbol id.
  const std::unordered_map<SymbolId, int64_t>& arrays() const { return arrays_; }
  /// Declared mutex symbols.
  const std::vector<SymbolId>& mutexes() const { return mutexes_; }

  ObjectKind object_kind(SymbolId id) const { return object_kinds_.at(id); }

  /// Exception type raised by out-of-bounds array accesses.
  SymbolId index_out_of_range() const { return index_out_of_range_; }
  /// Failure signature exception used for deadlocks.
  SymbolId deadlock() const { return deadlock_; }

 private:
  friend class ProgramBuilder;
  friend class MethodBuilder;
  /// Binary serialization across the process boundary (runtime/program_io):
  /// programs are value types at heart, and the subprocess subject host
  /// rebuilds them field-for-field from the wire.
  friend struct ProgramSerde;
  std::vector<MethodDef> methods_;
  SymbolId entry_ = kInvalidSymbol;
  SymbolTable method_names_;
  SymbolTable object_names_;
  SymbolTable exception_names_;
  std::unordered_map<SymbolId, int64_t> globals_;
  std::unordered_map<SymbolId, int64_t> arrays_;
  std::vector<SymbolId> mutexes_;
  std::unordered_map<SymbolId, ObjectKind> object_kinds_;
  SymbolId index_out_of_range_ = kInvalidSymbol;
  SymbolId deadlock_ = kInvalidSymbol;
};

class ProgramBuilder;

/// Fluent builder for one method body. Obtained from ProgramBuilder::Method.
/// Emitters append instructions; jump emitters return the instruction index
/// so the target can be patched with PatchTarget once the destination is
/// reached (or pass an explicit target obtained from Here()).
class MethodBuilder {
 public:
  MethodBuilder(ProgramBuilder* program, size_t method_index)
      : program_(program), method_index_(method_index) {}

  MethodBuilder& LoadConst(Reg dst, int64_t value);
  MethodBuilder& LoadGlobal(Reg dst, std::string_view global);
  MethodBuilder& StoreGlobal(std::string_view global, Reg src);
  MethodBuilder& Add(Reg dst, Reg lhs, Reg rhs);
  MethodBuilder& Sub(Reg dst, Reg lhs, Reg rhs);
  MethodBuilder& Mul(Reg dst, Reg lhs, Reg rhs);
  MethodBuilder& AddImm(Reg dst, Reg src, int64_t imm);
  MethodBuilder& CmpEq(Reg dst, Reg lhs, Reg rhs);
  MethodBuilder& CmpLt(Reg dst, Reg lhs, Reg rhs);
  MethodBuilder& ArrayLen(Reg dst, std::string_view array);
  MethodBuilder& ArrayLoad(Reg dst, std::string_view array, Reg index);
  MethodBuilder& ArrayStore(std::string_view array, Reg index, Reg src);
  MethodBuilder& ArrayResize(std::string_view array, Reg new_len);
  MethodBuilder& Delay(Tick ticks);
  MethodBuilder& DelayRand(Tick min_ticks, Tick max_ticks);
  MethodBuilder& Random(Reg dst, int64_t bound);
  MethodBuilder& Call(Reg dst, std::string_view method);
  MethodBuilder& CallVoid(std::string_view method);
  MethodBuilder& Spawn(Reg dst_thread, std::string_view method);
  MethodBuilder& Join(Reg thread);
  MethodBuilder& Lock(std::string_view mutex);
  MethodBuilder& Unlock(std::string_view mutex);
  MethodBuilder& Throw(std::string_view exception);
  MethodBuilder& ThrowIfZero(Reg cond, std::string_view exception);
  MethodBuilder& ThrowIfNonZero(Reg cond, std::string_view exception);
  MethodBuilder& Return(Reg src = kNoReg);

  /// Emits a forward jump whose target is patched later; returns the
  /// instruction index to pass to PatchTarget.
  size_t JumpPlaceholder();
  size_t JumpIfZeroPlaceholder(Reg cond);
  size_t JumpIfNonZeroPlaceholder(Reg cond);
  /// Emits a backward jump to an already-known target.
  MethodBuilder& JumpTo(size_t target);
  MethodBuilder& JumpIfNonZeroTo(Reg cond, size_t target);
  /// Sets the pending jump at `jump_index` to land on the next instruction.
  MethodBuilder& PatchTarget(size_t jump_index);
  /// Index of the next instruction to be emitted (a jump label).
  size_t Here() const;

  /// Overrides the virtual-time cost of the most recent instruction.
  MethodBuilder& WithCost(Tick cost);

  /// Marks the method safe for return-value/exception interventions.
  MethodBuilder& SideEffectFree();
  /// Adds a method-level try/catch returning `fallback` on any exception.
  MethodBuilder& CatchesExceptions(int64_t fallback = 0);

 private:
  friend class ProgramBuilder;
  Instr& Emit(Instr instr);
  ProgramBuilder* program_;
  size_t method_index_;
};

/// Builder for whole programs. Typical use:
///
///   ProgramBuilder b;
///   b.Global("_nextSlot", 10);
///   b.Array("_pools", 10);
///   auto main = b.Method("Main");
///   main.Spawn(0, "Writer").Spawn(1, "Reader").Join(0).Join(1).Return();
///   ...
///   AID_ASSIGN_OR_RETURN(Program p, b.Build("Main"));
class ProgramBuilder {
 public:
  ProgramBuilder();

  /// Declares a shared integer variable with an initial value.
  ProgramBuilder& Global(std::string_view name, int64_t initial_value);
  /// Declares a shared array with an initial length (elements start at 0).
  ProgramBuilder& Array(std::string_view name, int64_t initial_length);
  /// Declares a mutex.
  ProgramBuilder& Mutex(std::string_view name);

  /// Starts (or resumes) building the method `name`.
  MethodBuilder Method(std::string_view name);

  /// Validates and produces the program with `entry` as the main method.
  Result<Program> Build(std::string_view entry);

 private:
  friend class MethodBuilder;
  SymbolId InternObject(std::string_view name, ObjectKind kind);
  SymbolId InternMethod(std::string_view name);

  Program program_;
};

}  // namespace aid

#endif  // AID_RUNTIME_PROGRAM_H_
