// VM-level intervention actions: the fault-injection vocabulary.
//
// These are the concrete mechanisms of the paper's Figure 2 (column 3) --
// what an LFI-style injector would do to the binary, expressed as hooks the
// VM consults during execution:
//
//   predicate "data race on X between M1, M2"  -> SerializeMethods (lock)
//   predicate "method M fails"                 -> CatchExceptions (try/catch)
//   predicate "M runs too fast"                -> DelayBeforeReturn
//   predicate "M runs too slow"                -> PrematureReturn
//   predicate "M returns incorrect value"      -> ForceReturnValue
//   predicate "A must precede B" (order bug)   -> EnforceOrder
//
// The mapping from *predicates* to these actions lives in aid::inject; this
// header keeps the runtime free of predicate knowledge.

#ifndef AID_RUNTIME_INTERVENTION_H_
#define AID_RUNTIME_INTERVENTION_H_

#include <string>
#include <vector>

#include "common/symbol_table.h"
#include "trace/event.h"

namespace aid {

/// Matches all dynamic executions of a method when occurrence == 0,
/// otherwise exactly the k-th execution (1-based, in enter order).
inline constexpr int kAllOccurrences = 0;

/// Reserved (negative) symbol ids for mutexes created by interventions, so
/// plans need not mutate the program's symbol tables.
inline SymbolId InterventionMutexId(int k) { return -2 - k; }

enum class VmActionKind : uint8_t {
  /// Acquire `mutex` on entry to either method, release on exit: puts locks
  /// around the racing segments, serializing them.
  kSerializeMethods,
  /// Wrap the matched method execution in a try/catch returning `value`.
  kCatchExceptions,
  /// Sleep `ticks` immediately before the matched method returns.
  kDelayBeforeReturn,
  /// Sleep `ticks` immediately after the matched method is entered.
  kDelayAtEnter,
  /// Skip the method body; sleep `ticks` (the successful-execution duration)
  /// and return `value` (the correct value from successful executions).
  kPrematureReturn,
  /// Execute the body but return `value` instead of the computed result.
  kForceReturnValue,
  /// Block entry of (method, occurrence) until (method2, occurrence2) has
  /// exited: enforces the successful-execution order of two events.
  kEnforceOrder,
  /// If the matched method would return the same value `method2` last
  /// returned, return that value + 1 instead (repairs id collisions).
  kForceReturnDistinct,
};

std::string_view VmActionKindName(VmActionKind kind);

/// One injection. Fields beyond (kind, method, occurrence) are per-kind.
struct VmAction {
  VmActionKind kind = VmActionKind::kDelayAtEnter;
  SymbolId method = kInvalidSymbol;
  int occurrence = kAllOccurrences;
  /// kSerializeMethods: the second racing method. kEnforceOrder: the method
  /// whose exit must happen first.
  SymbolId method2 = kInvalidSymbol;
  int occurrence2 = kAllOccurrences;
  /// kSerializeMethods: dedicated intervention mutex symbol.
  SymbolId mutex = kInvalidSymbol;
  int64_t value = 0;    ///< forced return / catch fallback
  bool has_value = false;
  Tick ticks = 0;       ///< delay amount / premature-return duration
};

/// The set of injections applied to one VM run. Plans are cheap to copy.
class InterventionPlan {
 public:
  InterventionPlan() = default;

  void Add(VmAction action) { actions_.push_back(action); }
  const std::vector<VmAction>& actions() const { return actions_; }
  bool empty() const { return actions_.empty(); }
  size_t size() const { return actions_.size(); }

  /// All actions of `kind` that match the given dynamic method execution.
  /// (Linear scan: plans hold a handful of actions.)
  template <typename Fn>
  void ForEachMatching(VmActionKind kind, SymbolId method, int occurrence,
                       Fn&& fn) const {
    for (const VmAction& action : actions_) {
      if (action.kind != kind) continue;
      if (action.kind == VmActionKind::kSerializeMethods) {
        // Serialization matches either of the two racing methods.
        const bool m1 = action.method == method &&
                        (action.occurrence == kAllOccurrences ||
                         action.occurrence == occurrence);
        const bool m2 = action.method2 == method &&
                        (action.occurrence2 == kAllOccurrences ||
                         action.occurrence2 == occurrence);
        if (m1 || m2) fn(action);
        continue;
      }
      if (action.method != method) continue;
      if (action.occurrence != kAllOccurrences &&
          action.occurrence != occurrence) {
        continue;
      }
      fn(action);
    }
  }

 private:
  std::vector<VmAction> actions_;
};

}  // namespace aid

#endif  // AID_RUNTIME_INTERVENTION_H_
