// The AID concurrent-program VM.
//
// A discrete-event interpreter: every thread is a stack of call frames over
// a shared virtual clock, and a seeded scheduler picks which runnable thread
// executes its next instruction. Nondeterminism is therefore *controlled*:
// the same (program, seed) pair always produces the same trace, while
// different seeds explore different interleavings -- exactly the class of
// nondeterminism (thread scheduling and timing) the paper targets, but
// reproducible enough for CI.
//
// The VM consults an InterventionPlan at method enter/exit/throw, which is
// how AID's fault injections (Figure 2, column 3) are realized.

#ifndef AID_RUNTIME_VM_H_
#define AID_RUNTIME_VM_H_

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "runtime/intervention.h"
#include "runtime/program.h"
#include "trace/recorder.h"
#include "trace/trace.h"

namespace aid {

struct VmOptions {
  /// Scheduler + application RNG seed. Same seed => identical trace.
  uint64_t seed = 1;
  /// Abort guard against runaway programs (returns Status::Aborted).
  int64_t max_steps = 2'000'000;
  /// End the run at the first uncaught exception (the paper's subject
  /// applications crash); remaining threads are frozen.
  bool stop_on_failure = true;
};

/// Executes programs and produces execution traces.
class Vm {
 public:
  explicit Vm(const Program* program) : program_(program) {}

  /// Runs the program once. `plan` may be null (no interventions).
  Result<ExecutionTrace> Run(const VmOptions& options,
                             const InterventionPlan* plan = nullptr);

 private:
  enum class ThreadStatus : uint8_t {
    kRunnable,
    kSleeping,      // until wake_tick
    kBlockedLock,   // on waiting_mutex
    kBlockedJoin,   // on waiting_thread
    kBlockedOrder,  // on (order_method, order_occurrence) having exited
    kFinished,
    kCrashed,
  };

  struct Frame {
    SymbolId method = kInvalidSymbol;
    CallUid uid = -1;
    size_t pc = 0;
    std::array<int64_t, kNumRegs> regs{};
    Reg ret_reg = kNoReg;  ///< caller register receiving the return value
    int occurrence = 0;
    Tick enter_tick = 0;
    bool catches = false;  ///< method-level or injected try/catch
    int64_t catch_fallback = 0;
    bool force_return = false;
    int64_t forced_value = 0;
    Tick delay_before_return = 0;
    bool return_delay_done = false;
    bool premature = false;  ///< injected premature return in progress
    int64_t premature_value = 0;
    std::vector<SymbolId> serialize_mutexes;  ///< to release on exit
  };

  struct PendingCall {
    bool active = false;
    SymbolId method = kInvalidSymbol;
    Reg ret_reg = kNoReg;
    size_t mutexes_acquired = 0;  ///< progress through serialize-mutex list
  };

  struct ThreadState {
    ThreadIndex index = -1;
    ThreadStatus status = ThreadStatus::kRunnable;
    std::vector<Frame> stack;
    PendingCall pending;
    Tick wake_tick = 0;
    SymbolId waiting_mutex = kInvalidSymbol;
    ThreadIndex waiting_thread = -1;
    SymbolId order_method = kInvalidSymbol;
    int order_occurrence = kAllOccurrences;
    /// Application-level randomness (kRandom/kDelayRand) is drawn from a
    /// per-thread stream keyed by (run seed, thread index). This keeps a
    /// program's random choices independent of scheduling, so an
    /// intervention that perturbs the schedule cannot silently change the
    /// inputs that made a failing seed fail.
    Rng app_rng{0};
  };

  struct MutexState {
    ThreadIndex owner = -1;
    int depth = 0;
  };

  // --- execution steps -----------------------------------------------------
  void StepThread(ThreadState& t);
  void BeginPendingCall(ThreadState& t);
  void ExecuteInstr(ThreadState& t);
  void ExitMethod(ThreadState& t, bool has_value, int64_t value);
  void RaiseException(ThreadState& t, SymbolId exception_type);
  void FinishThread(ThreadState& t, bool crashed);

  // --- blocking helpers ----------------------------------------------------
  bool TryAcquire(SymbolId mutex, ThreadIndex thread);
  void Release(SymbolId mutex, ThreadIndex thread);
  void WakeLockWaiters(SymbolId mutex);
  void WakeJoinWaiters(ThreadIndex finished);
  void WakeOrderWaiters();
  bool OrderSatisfied(SymbolId method, int occurrence) const;
  void Sleep(ThreadState& t, Tick ticks);

  // --- state ---------------------------------------------------------------
  const Program* program_;
  const InterventionPlan* plan_ = nullptr;
  VmOptions options_;
  Rng sched_rng_{0};
  TraceRecorder recorder_;
  Tick now_ = 0;
  std::vector<ThreadState> threads_;
  std::unordered_map<SymbolId, int64_t> globals_;
  std::unordered_map<SymbolId, std::vector<int64_t>> arrays_;
  std::map<SymbolId, MutexState> mutexes_;
  std::unordered_map<SymbolId, int> enter_counts_;  ///< per-method occurrences
  std::set<std::pair<SymbolId, int>> exited_;       ///< (method, occurrence)
  std::unordered_map<SymbolId, int> exit_totals_;
  std::unordered_map<SymbolId, int64_t> last_return_;
  bool failed_ = false;
  bool stop_ = false;
  FailureSignature signature_;
};

/// Convenience: run `program` across `count` seeds starting at `first_seed`,
/// returning the traces (failures and successes interleaved as they come).
Result<std::vector<ExecutionTrace>> CollectTraces(const Program& program,
                                                  uint64_t first_seed,
                                                  int count,
                                                  const VmOptions& base = {});

}  // namespace aid

#endif  // AID_RUNTIME_VM_H_
