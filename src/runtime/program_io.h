// Binary serialization of whole VM programs (runtime/program.h).
//
// The process-isolation subsystem (src/proc/) runs subjects in sandboxed
// child processes; a subject backed by an arbitrary Program -- not just a
// named case study -- must therefore travel over the wire. A Program is
// plain data (methods with instruction lists, symbol tables, initial shared
// state), so the encoding is a field-for-field dump through the WireWriter
// primitives of trace/serialize.h, and deserialization reconstructs a
// Program that is observably identical: same symbol ids, same instruction
// stream, same scheduler behavior under the same seed.

#ifndef AID_RUNTIME_PROGRAM_IO_H_
#define AID_RUNTIME_PROGRAM_IO_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "runtime/program.h"
#include "trace/serialize.h"

namespace aid {

/// Appends the binary encoding of `program` to `writer`.
void SerializeProgram(const Program& program, WireWriter& writer);

/// Decodes one program previously written by SerializeProgram. Returns
/// InvalidArgument on truncated or structurally corrupt input. The decoded
/// program passes ValidateProgram: hostile bytes that decode cleanly but
/// violate VM invariants are rejected here, not by a crash mid-execution.
Result<Program> DeserializeProgram(WireReader& reader);

/// Checks the VM's structural invariants: a valid entry method, method ids
/// matching their table index, opcodes within the instruction set, register
/// and jump-target ranges, callees with bodies, declared shared-state
/// symbols, positive costs, non-degenerate random/delay bounds, and method
/// terminators. ProgramBuilder::Build-produced programs always pass;
/// wire-received programs must be checked before they reach a Vm (the
/// runner daemons do this in their decode path).
Status ValidateProgram(const Program& program);

/// Whole-buffer conveniences.
std::string ProgramToBytes(const Program& program);
Result<Program> ProgramFromBytes(std::string_view bytes);

/// Symbol tables serialize as their name list in id order (ids are dense and
/// assigned in insertion order, so the list reconstructs the table exactly).
/// Exposed for the subject-spec codec, which ships tables of its own.
void SerializeSymbolTable(const SymbolTable& table, WireWriter& writer);
Result<SymbolTable> DeserializeSymbolTable(WireReader& reader);

}  // namespace aid

#endif  // AID_RUNTIME_PROGRAM_IO_H_
