// aid_subject_host: the sandboxed subject harness binary.
//
// Exec'd by proc::SubprocessTarget with the wire protocol on stdin/stdout
// (see proc/wire.h and docs/proc_protocol.md). All real logic lives in
// proc/subject_host.cc so tests can drive it over plain pipes.

#include "proc/subject_host.h"
#include "proc/wire.h"

#if AID_PROC_SUPPORTED
#include <sys/resource.h>
#endif

int main() {
#if AID_PROC_SUPPORTED
  // Deliberate subject crashes (fault injection, genuinely broken subjects)
  // abort; a core dump per crashed trial would swamp CI working dirs.
  struct rlimit no_core;
  no_core.rlim_cur = 0;
  no_core.rlim_max = 0;
  setrlimit(RLIMIT_CORE, &no_core);
#endif
  return aid::RunSubjectHost(/*in_fd=*/0, /*out_fd=*/1);
}
