// SubprocessTarget: process-isolated subject execution.
//
// Each replica of the subject runs in a sandboxed child process -- the
// `aid_subject_host` binary launched via fork/exec -- and the engine's
// intervention requests travel over the versioned wire protocol of
// proc/wire.h. Isolation buys exactly what the paper's setting demands
// (intermittent failures on real concurrent applications, Sections 1-2):
// a subject that segfaults, aborts, or deadlocks cannot take the debugging
// engine down with it.
//
// Failure semantics:
//
//   * child crash (EOF / EPIPE mid-trial)  -> the trial is recorded as a
//     failing execution with TrialOutcome::kCrashed and a fresh child is
//     spawned; the partial predicate log streamed before death is kept
//     (complete() == false, so Definition 2 pruning skips it);
//   * per-trial deadline expiring          -> the child is SIGKILLed, the
//     trial is recorded failing with TrialOutcome::kTimedOut, respawn;
//   * crash loops                          -> after max_respawns respawns
//     the target gives up with Aborted rather than burning CPU forever.
//
// Counters (respawns / crashed / timed-out trials) surface through
// InterventionTarget::health() and land in DiscoveryReport.
//
// SubprocessTarget is a ReplicableTarget: Clone() hands out another
// lazily-spawning child over the same serialized spec, so replicas pool
// naturally under exec::ParallelTarget and one session can drive 1..N
// isolated subject processes concurrently. All per-trial nondeterminism is
// positional (the global trial index rides in every RUN_TRIAL frame), so
// reports are bit-identical to the in-process run at any worker count.

#ifndef AID_PROC_SUBPROCESS_TARGET_H_
#define AID_PROC_SUBPROCESS_TARGET_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "exec/replicable.h"
#include "proc/subject_spec.h"
#include "proc/wire.h"

namespace aid {

class Telemetry;  // telemetry/telemetry.h; nullable everywhere below

/// Where a target backend executes its subject.
enum class Isolation : uint8_t {
  kInProcess = 0,   ///< today's default: subject shares the engine process
  kSubprocess = 1,  ///< sandboxed child per replica (src/proc/)
};

std::string_view IsolationName(Isolation isolation);

struct SubprocessOptions {
  /// Wall-clock budget per trial in milliseconds; expiring kills the child
  /// and records a timed-out trial. 0 = no deadline -- a genuinely hung
  /// subject then hangs the session, so set one for untrusted subjects.
  int trial_deadline_ms = 0;

  /// Path to the aid_subject_host binary. Empty = auto-discovery: the
  /// AID_SUBJECT_HOST environment variable, then siblings of the running
  /// executable (and its parent directory), then $PATH.
  std::string host_path;

  /// Budget for spawn + handshake + subject construction (VM subjects
  /// re-run their observation scan in the child).
  int spawn_timeout_ms = 60000;

  /// Give-up bound on child respawns across this target's lifetime; crossing
  /// it fails the run with Aborted (crash-loop guard).
  int max_respawns = 1000;

  /// Deterministic fault injection forwarded into the subject spec (see
  /// proc/subject_spec.h). Testing / chaos knobs; 0 = off.
  uint64_t inject_crash_period = 0;
  uint64_t inject_hang_period = 0;

  /// When nonzero, every handshake cross-checks the child's catalog size
  /// against this value and fails with Internal on mismatch -- the guard
  /// that parent and child agree on the predicate id space. Session targets
  /// set it to the parent-side catalog size.
  uint32_t expected_catalog_size = 0;

  /// Telemetry sink shared with the session (null = off). Each trial opens
  /// an engine-side "trial" span, records wire latency into
  /// aid_trial_latency_us{transport="pipe"}, and propagates span context to
  /// the child so host-side spans nest under it (see docs/telemetry.md).
  /// Never changes a trial's bytes.
  std::shared_ptr<Telemetry> telemetry;
};

class SubprocessTarget : public ReplicableTarget {
 public:
  /// Validates and freezes `spec` (serializing it once; the spec's borrowed
  /// pointers are not needed afterwards). The child is spawned lazily on
  /// first use, so building a target -- and cloning it into a pool -- stays
  /// cheap and the ParallelTarget primary never launches a process at all.
  /// Returns Unimplemented on platforms without fork/exec.
  static Result<std::unique_ptr<SubprocessTarget>> Create(
      const SubjectSpec& spec, SubprocessOptions options = {});

  ~SubprocessTarget() override;

  SubprocessTarget(const SubprocessTarget&) = delete;
  SubprocessTarget& operator=(const SubprocessTarget&) = delete;

  Result<TargetRunResult> RunIntervened(
      const std::vector<PredicateId>& intervened, int trials) override;

  /// Another lazily-spawning child over the same frozen spec, positioned at
  /// this target's trial cursor (the ReplicableTarget contract).
  Result<std::unique_ptr<ReplicableTarget>> Clone() const override;

  void SeekTrial(uint64_t trial_index) override { trial_cursor_ = trial_index; }
  uint64_t trial_position() const override { return trial_cursor_; }

  uint64_t executions() const override { return executions_; }
  TargetHealth health() const override { return health_; }

  /// Catalog size the child reported at handshake; 0 before the first spawn.
  /// Session targets cross-check it against the parent-side catalog.
  uint32_t child_catalog_size() const { return child_catalog_size_; }

  const SubprocessOptions& options() const { return options_; }

 private:
  SubprocessTarget(std::shared_ptr<const std::string> spec_bytes,
                   SubprocessOptions options)
      : spec_bytes_(std::move(spec_bytes)), options_(std::move(options)) {}

  /// Spawns + handshakes the child if none is alive.
  Status EnsureChild();
  /// Tears the current child down (best-effort SHUTDOWN, then SIGKILL after
  /// a grace period) and reaps it.
  void StopChild(bool force_kill);
  /// StopChild + EnsureChild with the crash-loop guard applied.
  Status Respawn();
  /// Runs one trial at `trial_index`, classifying crashes and deadline kills
  /// into the returned log instead of propagating them as errors.
  Result<PredicateLog> RunOneTrial(const std::vector<PredicateId>& intervened,
                                   uint64_t trial_index);

  std::shared_ptr<const std::string> spec_bytes_;
  SubprocessOptions options_;

  int64_t child_pid_ = -1;  ///< -1: no child alive
  /// Frame transport to the live child (a PipeChannel over its
  /// stdin/stdout); null while no child is alive.
  std::unique_ptr<FrameChannel> channel_;
  uint32_t child_catalog_size_ = 0;

  uint64_t trial_cursor_ = 0;
  uint64_t executions_ = 0;
  TargetHealth health_;
};

}  // namespace aid

#endif  // AID_PROC_SUBPROCESS_TARGET_H_
