// SubjectHost: the child-side half of the process-isolation subsystem.
//
// The `aid_subject_host` binary (proc/subject_host_main.cc) is exec'd by
// proc::SubprocessTarget with the wire protocol on stdin/stdout. It embeds
// any existing in-process intervention backend -- ground-truth models, flaky
// models, VM case studies, arbitrary serialized VM programs -- behind the
// protocol: it announces itself (HELLO), receives a SubjectSpec, builds the
// corresponding ReplicableTarget (running the backend's observation phase
// where one exists), acknowledges (READY), and then answers RUN_TRIAL
// requests by seeking to the requested global trial index, executing one
// trial, streaming the observed predicates as TRACE_EVENT frames, and
// closing the trial with a VERDICT frame.
//
// The host is deliberately a library function plus a thin main(): tests can
// drive RunSubjectHost over plain pipes without fork/exec, and the binary
// stays a five-line shell.

#ifndef AID_PROC_SUBJECT_HOST_H_
#define AID_PROC_SUBJECT_HOST_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/status.h"
#include "exec/replicable.h"
#include "proc/subject_spec.h"
#include "proc/wire.h"
#include "telemetry/metrics.h"

namespace aid {

/// Trial statistics a subject host records as it serves, designed to live
/// in MAP_SHARED|MAP_ANONYMOUS memory: the aid_runner daemon maps one block
/// before forking, every session child inherits the mapping and records its
/// trials into it, and any later child (a `--stats` connection) reads the
/// totals of the whole fleet node. Plain atomics, no pointers, fixed size
/// -- the layout is the contract between daemon and children within one
/// binary, never serialized across machines. The histogram mirrors the
/// default telemetry bucket ladder (kLatencyBucketBoundsUs) so runner-side
/// and engine-side latency histograms line up bucket for bucket.
struct SharedHostStats {
  std::atomic<uint64_t> trials{0};
  std::atomic<uint64_t> failed_trials{0};
  std::atomic<uint64_t> trial_micros{0};
  /// kLatencyBucketBoundCount bounded buckets + trailing +Inf bucket.
  std::atomic<uint64_t> latency_buckets[kLatencyBucketBoundCount + 1]{};

  /// Folds one served trial into the block (relaxed; totals only).
  void RecordTrial(uint64_t micros, bool failed);
};

/// Host-side knobs (the spec describes the SUBJECT; these describe the
/// machine hosting it).
struct SubjectHostOptions {
  /// Extra latency charged before answering each trial, microseconds.
  /// 0 = none. The heterogeneity knob behind slow-runner benches and
  /// tests (aid_runner --slow-us): it models a loaded or distant machine
  /// without touching the wire protocol or the subject's bytes -- trials
  /// stay positional, so reports stay bit-identical however slow a host
  /// answers.
  uint64_t trial_delay_us = 0;
  /// Shared stats block to record served trials into (see SharedHostStats);
  /// null = don't record. The aid_runner daemon passes its pre-fork mapping
  /// here.
  SharedHostStats* shared_stats = nullptr;
  /// Context for answering STATS requests: the hosting daemon's start time
  /// (microseconds on the system steady clock, which all processes of one
  /// machine share) and how many sessions it had started when this host
  /// was forked. Zero start = report zero uptime.
  uint64_t daemon_start_micros = 0;
  uint64_t daemon_sessions_started = 0;
};

/// Builds the in-process intervention target an OwnedSubjectSpec describes,
/// running the backend's observation phase (VM subjects scan seeds exactly
/// like the parent did, reproducing the identical predicate catalog).
/// The returned target borrows spec.model / spec.program.
Result<std::unique_ptr<ReplicableTarget>> BuildSubjectTarget(
    const OwnedSubjectSpec& spec);

/// Runs the host protocol loop over `channel` until SHUTDOWN or EOF.
/// Returns the process exit code. Fault injection (spec crash/hang periods)
/// happens in here -- before a poisoned trial is answered -- so the engine
/// observes a mid-trial death exactly as with a genuinely broken subject.
/// PING frames are answered with PONG at any protocol stage (v2 keepalive).
/// The transport does not matter: SubprocessTarget drives this loop over
/// pipes, the aid_runner daemon over accepted TCP sockets.
int RunSubjectHost(FrameChannel& channel, const SubjectHostOptions& host = {});

/// Convenience overload over a descriptor pair (the exec'd child's
/// stdin/stdout). Does not take ownership of the descriptors.
int RunSubjectHost(int in_fd, int out_fd, const SubjectHostOptions& host = {});

}  // namespace aid

#endif  // AID_PROC_SUBJECT_HOST_H_
