#include "proc/subprocess_target.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "proc/client.h"
#include "proc/wire.h"

#if AID_PROC_SUPPORTED
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#if defined(__APPLE__)
#include <mach-o/dyld.h>
#endif

#include <chrono>
#include <mutex>
#include <thread>
#endif

namespace aid {

std::string_view IsolationName(Isolation isolation) {
  switch (isolation) {
    case Isolation::kInProcess: return "in_process";
    case Isolation::kSubprocess: return "subprocess";
  }
  return "unknown";
}

#if AID_PROC_SUPPORTED

namespace {

/// Absolute path of the running executable; empty when undeterminable.
std::string SelfExecutablePath() {
#if defined(__linux__)
  char exe[4096];
  const ssize_t n = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  if (n <= 0) return {};
  exe[n] = '\0';
  return exe;
#elif defined(__APPLE__)
  char exe[4096];
  uint32_t size = sizeof(exe);
  if (_NSGetExecutablePath(exe, &size) != 0) return {};
  return exe;
#else
  return {};
#endif
}

/// Resolution order: env override, then siblings of the running executable
/// (tests and benches sit next to aid_subject_host in the build dir) and of
/// its parent directory (examples live one level down), then $PATH.
std::string ResolveHostPath(const std::string& configured) {
  if (!configured.empty()) return configured;
  if (const char* env = std::getenv("AID_SUBJECT_HOST");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  std::string dir = SelfExecutablePath();
  const size_t slash = dir.rfind('/');
  if (!dir.empty() && slash != std::string::npos) {
    dir.resize(slash);
    for (const std::string& candidate :
         {dir + "/aid_subject_host", dir + "/../aid_subject_host"}) {
      if (::access(candidate.c_str(), X_OK) == 0) return candidate;
    }
  }
  return "aid_subject_host";  // $PATH fallback via execvp
}

}  // namespace

Result<std::unique_ptr<SubprocessTarget>> SubprocessTarget::Create(
    const SubjectSpec& spec, SubprocessOptions options) {
  if (options.trial_deadline_ms < 0) {
    return Status::InvalidArgument(
        "SubprocessTarget: trial_deadline_ms must be >= 0, got " +
        std::to_string(options.trial_deadline_ms));
  }
  if (options.max_respawns < 0) {
    return Status::InvalidArgument(
        "SubprocessTarget: max_respawns must be >= 0, got " +
        std::to_string(options.max_respawns));
  }
  SubjectSpec effective = spec;
  // The injection knobs live on the options (the session-facing surface) but
  // execute in the child, so they ride inside the frozen spec.
  if (options.inject_crash_period != 0) {
    effective.crash_period = options.inject_crash_period;
  }
  if (options.inject_hang_period != 0) {
    effective.hang_period = options.inject_hang_period;
  }
  AID_ASSIGN_OR_RETURN(std::string bytes, EncodeSubjectSpec(effective));
  return std::unique_ptr<SubprocessTarget>(new SubprocessTarget(
      std::make_shared<const std::string>(std::move(bytes)),
      std::move(options)));
}

SubprocessTarget::~SubprocessTarget() { StopChild(/*force_kill=*/false); }

namespace {

/// Creates a pipe whose BOTH ends are close-on-exec from birth. pipe2 makes
/// that atomic on Linux; elsewhere the flags are set immediately after --
/// combined with the spawn mutex below, no concurrently forked sibling can
/// inherit the ends either way.
int PipeCloexec(int fds[2]) {
#if defined(__linux__)
  return ::pipe2(fds, O_CLOEXEC);
#else
  if (::pipe(fds) != 0) return -1;
  ::fcntl(fds[0], F_SETFD, FD_CLOEXEC);
  ::fcntl(fds[1], F_SETFD, FD_CLOEXEC);
  return 0;
#endif
}

/// Serializes pipe creation + fork across SubprocessTargets. Without it, a
/// replica forking between a sibling's pipe() and its CLOEXEC flags (non-
/// Linux path) would inherit the sibling's pipe write end, keeping that
/// sibling's EOF-based crash detection from ever firing.
std::mutex& SpawnMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

}  // namespace

Status SubprocessTarget::EnsureChild() {
  if (child_pid_ > 0) return Status::OK();

  const std::string host = ResolveHostPath(options_.host_path);
  int to_child[2];    // parent writes -> child stdin
  int from_child[2];  // child stdout -> parent reads
  pid_t pid = -1;
  {
    std::lock_guard<std::mutex> lock(SpawnMutex());
    if (PipeCloexec(to_child) != 0) {
      return Status::Internal(std::string("SubprocessTarget: pipe failed: ") +
                              std::strerror(errno));
    }
    if (PipeCloexec(from_child) != 0) {
      ::close(to_child[0]);
      ::close(to_child[1]);
      return Status::Internal(std::string("SubprocessTarget: pipe failed: ") +
                              std::strerror(errno));
    }

    pid = ::fork();
    if (pid < 0) {
      for (int fd : {to_child[0], to_child[1], from_child[0], from_child[1]}) {
        ::close(fd);
      }
      return Status::Internal(std::string("SubprocessTarget: fork failed: ") +
                              std::strerror(errno));
    }
    if (pid == 0) {
      // Child: protocol on stdin/stdout (dup2 clears CLOEXEC on the copies),
      // original ends closed.
      ::dup2(to_child[0], 0);
      ::dup2(from_child[1], 1);
      for (int fd : {to_child[0], to_child[1], from_child[0], from_child[1]}) {
        ::close(fd);
      }
      char* const argv[] = {const_cast<char*>("aid_subject_host"), nullptr};
      ::execvp(host.c_str(), argv);
      // exec failed; 127 is the shell convention the parent reports on EOF.
      ::_exit(127);
    }
  }

  // Parent.
  ::close(to_child[0]);
  ::close(from_child[1]);
  channel_ = std::make_unique<PipeChannel>(
      /*read_fd=*/from_child[0], /*write_fd=*/to_child[1], /*owns_fds=*/true);
  child_pid_ = pid;

  // Handshake: HELLO, SPEC, READY -- all under the spawn budget. (The spec
  // can exceed the pipe buffer; the handshake deadline keeps a host that
  // stops reading from wedging the engine.)
  SubjectHandshake handshake;
  handshake.timeout_ms = options_.spawn_timeout_ms;
  handshake.expected_catalog_size = options_.expected_catalog_size;
  handshake.previous_catalog_size = child_catalog_size_;
  handshake.peer = "subject host '" + host + "'";
  Result<uint32_t> catalog = HandshakeSubject(*channel_, *spec_bytes_,
                                              handshake);
  if (!catalog.ok()) {
    StopChild(/*force_kill=*/true);
    return Status(catalog.status().code(),
                  "SubprocessTarget: " + catalog.status().message());
  }
  child_catalog_size_ = *catalog;
  return Status::OK();
}

void SubprocessTarget::StopChild(bool force_kill) {
  if (child_pid_ <= 0) {
    channel_.reset();
    return;
  }
  if (!force_kill && channel_ != nullptr) {
    (void)channel_->Write(ProcMsgType::kShutdown, {});
  }
  channel_.reset();  // closing both ends is the EOF backstop for hosts mid-read

  const pid_t pid = static_cast<pid_t>(child_pid_);
  child_pid_ = -1;
  if (force_kill) {
    ::kill(pid, SIGKILL);
    (void)WaitpidRetry(pid, nullptr, 0);
    return;
  }
  // Grace period, then SIGKILL: a wedged host must not wedge our destructor.
  constexpr int kGraceMs = 2000;
  constexpr int kPollMs = 10;
  for (int waited = 0; waited < kGraceMs; waited += kPollMs) {
    const pid_t rc = WaitpidRetry(pid, nullptr, WNOHANG);
    if (rc == pid || (rc < 0 && errno == ECHILD)) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(kPollMs));
  }
  ::kill(pid, SIGKILL);
  (void)WaitpidRetry(pid, nullptr, 0);
}

Status SubprocessTarget::Respawn() {
  if (health_.respawns >= static_cast<uint64_t>(options_.max_respawns)) {
    return Status::Aborted(
        "SubprocessTarget: subject crashed/hung through " +
        std::to_string(health_.respawns) +
        " respawns (max_respawns); giving up on a crash loop");
  }
  ++health_.respawns;
  return EnsureChild();
}

Result<PredicateLog> SubprocessTarget::RunOneTrial(
    const std::vector<PredicateId>& intervened, uint64_t trial_index) {
  AID_RETURN_IF_ERROR(EnsureChild());
  // Crash -> kCrashed, deadline -> SIGKILL + kTimedOut, fresh child either
  // way (proc/client.h has the full lifecycle contract).
  return RunTrialWithRecovery(
      *channel_, trial_index, intervened, options_.trial_deadline_ms,
      &health_,
      [this]() {
        StopChild(/*force_kill=*/true);
        return Respawn();
      },
      options_.telemetry.get());
}

Result<TargetRunResult> SubprocessTarget::RunIntervened(
    const std::vector<PredicateId>& intervened, int trials) {
  if (trials < 1) trials = 1;
  TargetRunResult result;
  result.logs.reserve(static_cast<size_t>(trials));
  for (int i = 0; i < trials; ++i) {
    const uint64_t trial_index = trial_cursor_++;
    ++executions_;
    AID_ASSIGN_OR_RETURN(PredicateLog log,
                         RunOneTrial(intervened, trial_index));
    result.logs.push_back(std::move(log));
  }
  return result;
}

Result<std::unique_ptr<ReplicableTarget>> SubprocessTarget::Clone() const {
  auto clone = std::unique_ptr<SubprocessTarget>(
      new SubprocessTarget(spec_bytes_, options_));
  clone->trial_cursor_ = trial_cursor_;
  return std::unique_ptr<ReplicableTarget>(std::move(clone));
}

#else  // !AID_PROC_SUPPORTED

Result<std::unique_ptr<SubprocessTarget>> SubprocessTarget::Create(
    const SubjectSpec&, SubprocessOptions) {
  return Status::Unimplemented(
      "SubprocessTarget: process isolation requires fork/exec, which this "
      "platform does not provide");
}

SubprocessTarget::~SubprocessTarget() = default;

Status SubprocessTarget::EnsureChild() {
  return Status::Unimplemented("SubprocessTarget: unsupported platform");
}

void SubprocessTarget::StopChild(bool) {}

Status SubprocessTarget::Respawn() {
  return Status::Unimplemented("SubprocessTarget: unsupported platform");
}

Result<PredicateLog> SubprocessTarget::RunOneTrial(
    const std::vector<PredicateId>&, uint64_t) {
  return Status::Unimplemented("SubprocessTarget: unsupported platform");
}

Result<TargetRunResult> SubprocessTarget::RunIntervened(
    const std::vector<PredicateId>&, int) {
  return Status::Unimplemented("SubprocessTarget: unsupported platform");
}

Result<std::unique_ptr<ReplicableTarget>> SubprocessTarget::Clone() const {
  return Status::Unimplemented("SubprocessTarget: unsupported platform");
}

#endif  // AID_PROC_SUPPORTED

}  // namespace aid
