#include "proc/subprocess_target.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "proc/wire.h"

#if AID_PROC_SUPPORTED
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#if defined(__APPLE__)
#include <mach-o/dyld.h>
#endif

#include <chrono>
#include <mutex>
#include <thread>
#endif

namespace aid {

std::string_view IsolationName(Isolation isolation) {
  switch (isolation) {
    case Isolation::kInProcess: return "in_process";
    case Isolation::kSubprocess: return "subprocess";
  }
  return "unknown";
}

#if AID_PROC_SUPPORTED

namespace {

/// Absolute path of the running executable; empty when undeterminable.
std::string SelfExecutablePath() {
#if defined(__linux__)
  char exe[4096];
  const ssize_t n = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  if (n <= 0) return {};
  exe[n] = '\0';
  return exe;
#elif defined(__APPLE__)
  char exe[4096];
  uint32_t size = sizeof(exe);
  if (_NSGetExecutablePath(exe, &size) != 0) return {};
  return exe;
#else
  return {};
#endif
}

/// Resolution order: env override, then siblings of the running executable
/// (tests and benches sit next to aid_subject_host in the build dir) and of
/// its parent directory (examples live one level down), then $PATH.
std::string ResolveHostPath(const std::string& configured) {
  if (!configured.empty()) return configured;
  if (const char* env = std::getenv("AID_SUBJECT_HOST");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  std::string dir = SelfExecutablePath();
  const size_t slash = dir.rfind('/');
  if (!dir.empty() && slash != std::string::npos) {
    dir.resize(slash);
    for (const std::string& candidate :
         {dir + "/aid_subject_host", dir + "/../aid_subject_host"}) {
      if (::access(candidate.c_str(), X_OK) == 0) return candidate;
    }
  }
  return "aid_subject_host";  // $PATH fallback via execvp
}

void CloseIfOpen(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

Result<std::unique_ptr<SubprocessTarget>> SubprocessTarget::Create(
    const SubjectSpec& spec, SubprocessOptions options) {
  if (options.trial_deadline_ms < 0) {
    return Status::InvalidArgument(
        "SubprocessTarget: trial_deadline_ms must be >= 0, got " +
        std::to_string(options.trial_deadline_ms));
  }
  if (options.max_respawns < 0) {
    return Status::InvalidArgument(
        "SubprocessTarget: max_respawns must be >= 0, got " +
        std::to_string(options.max_respawns));
  }
  SubjectSpec effective = spec;
  // The injection knobs live on the options (the session-facing surface) but
  // execute in the child, so they ride inside the frozen spec.
  if (options.inject_crash_period != 0) {
    effective.crash_period = options.inject_crash_period;
  }
  if (options.inject_hang_period != 0) {
    effective.hang_period = options.inject_hang_period;
  }
  AID_ASSIGN_OR_RETURN(std::string bytes, EncodeSubjectSpec(effective));
  return std::unique_ptr<SubprocessTarget>(new SubprocessTarget(
      std::make_shared<const std::string>(std::move(bytes)),
      std::move(options)));
}

SubprocessTarget::~SubprocessTarget() { StopChild(/*force_kill=*/false); }

namespace {

/// Creates a pipe whose BOTH ends are close-on-exec from birth. pipe2 makes
/// that atomic on Linux; elsewhere the flags are set immediately after --
/// combined with the spawn mutex below, no concurrently forked sibling can
/// inherit the ends either way.
int PipeCloexec(int fds[2]) {
#if defined(__linux__)
  return ::pipe2(fds, O_CLOEXEC);
#else
  if (::pipe(fds) != 0) return -1;
  ::fcntl(fds[0], F_SETFD, FD_CLOEXEC);
  ::fcntl(fds[1], F_SETFD, FD_CLOEXEC);
  return 0;
#endif
}

/// Serializes pipe creation + fork across SubprocessTargets. Without it, a
/// replica forking between a sibling's pipe() and its CLOEXEC flags (non-
/// Linux path) would inherit the sibling's pipe write end, keeping that
/// sibling's EOF-based crash detection from ever firing.
std::mutex& SpawnMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

}  // namespace

Status SubprocessTarget::EnsureChild() {
  if (child_pid_ > 0) return Status::OK();

  const std::string host = ResolveHostPath(options_.host_path);
  int to_child[2];    // parent writes -> child stdin
  int from_child[2];  // child stdout -> parent reads
  pid_t pid = -1;
  {
    std::lock_guard<std::mutex> lock(SpawnMutex());
    if (PipeCloexec(to_child) != 0) {
      return Status::Internal(std::string("SubprocessTarget: pipe failed: ") +
                              std::strerror(errno));
    }
    if (PipeCloexec(from_child) != 0) {
      ::close(to_child[0]);
      ::close(to_child[1]);
      return Status::Internal(std::string("SubprocessTarget: pipe failed: ") +
                              std::strerror(errno));
    }

    pid = ::fork();
    if (pid < 0) {
      for (int fd : {to_child[0], to_child[1], from_child[0], from_child[1]}) {
        ::close(fd);
      }
      return Status::Internal(std::string("SubprocessTarget: fork failed: ") +
                              std::strerror(errno));
    }
    if (pid == 0) {
      // Child: protocol on stdin/stdout (dup2 clears CLOEXEC on the copies),
      // original ends closed.
      ::dup2(to_child[0], 0);
      ::dup2(from_child[1], 1);
      for (int fd : {to_child[0], to_child[1], from_child[0], from_child[1]}) {
        ::close(fd);
      }
      char* const argv[] = {const_cast<char*>("aid_subject_host"), nullptr};
      ::execvp(host.c_str(), argv);
      // exec failed; 127 is the shell convention the parent reports on EOF.
      ::_exit(127);
    }
  }

  // Parent.
  ::close(to_child[0]);
  ::close(from_child[1]);
  to_child_ = to_child[1];
  from_child_ = from_child[0];
  child_pid_ = pid;

  // Handshake: HELLO, SPEC, READY -- all under the spawn budget.
  auto fail_spawn = [&](Status status) {
    StopChild(/*force_kill=*/true);
    return status;
  };
  Result<ProcFrame> hello =
      ReadFrameDeadline(from_child_, options_.spawn_timeout_ms);
  if (!hello.ok()) {
    return fail_spawn(Status(hello.status().code(),
                             "SubprocessTarget: no HELLO from subject host '" +
                                 host + "': " + hello.status().message()));
  }
  if (hello->type != ProcMsgType::kHello) {
    return fail_spawn(Status::Internal(
        "SubprocessTarget: expected HELLO, got " +
        std::string(ProcMsgTypeName(hello->type))));
  }
  Result<HelloMsg> hello_or = DecodeHello(hello->payload);
  if (!hello_or.ok()) return fail_spawn(hello_or.status());
  const HelloMsg& hello_msg = *hello_or;
  if (hello_msg.version != kProcProtocolVersion) {
    return fail_spawn(Status::FailedPrecondition(
        "SubprocessTarget: protocol version mismatch (host speaks v" +
        std::to_string(hello_msg.version) + ", engine v" +
        std::to_string(kProcProtocolVersion) + ")"));
  }

  // Specs can exceed the pipe buffer; the deadline keeps a host that stops
  // reading from wedging the handshake.
  if (Status sent = WriteFrameDeadline(to_child_, ProcMsgType::kSpec,
                                       *spec_bytes_,
                                       options_.spawn_timeout_ms);
      !sent.ok()) {
    return fail_spawn(std::move(sent));
  }
  Result<ProcFrame> ready =
      ReadFrameDeadline(from_child_, options_.spawn_timeout_ms);
  if (!ready.ok()) {
    return fail_spawn(
        Status(ready.status().code(),
               "SubprocessTarget: subject host died during construction: " +
                   ready.status().message()));
  }
  if (ready->type == ProcMsgType::kError) {
    Result<ErrorMsg> error = DecodeError(ready->payload);
    return fail_spawn(error.ok() ? error->ToStatus() : error.status());
  }
  if (ready->type != ProcMsgType::kReady) {
    return fail_spawn(Status::Internal(
        "SubprocessTarget: expected READY, got " +
        std::string(ProcMsgTypeName(ready->type))));
  }
  Result<ReadyMsg> ready_or = DecodeReady(ready->payload);
  if (!ready_or.ok()) return fail_spawn(ready_or.status());
  const ReadyMsg& ready_msg = *ready_or;
  if (options_.expected_catalog_size != 0 &&
      options_.expected_catalog_size != ready_msg.catalog_size) {
    return fail_spawn(Status::Internal(
        "SubprocessTarget: subject host rebuilt a different predicate "
        "catalog (" +
        std::to_string(ready_msg.catalog_size) + " predicates, expected " +
        std::to_string(options_.expected_catalog_size) +
        "); parent and child would disagree on predicate ids"));
  }
  if (child_catalog_size_ != 0 &&
      child_catalog_size_ != ready_msg.catalog_size) {
    return fail_spawn(Status::Internal(
        "SubprocessTarget: respawned host rebuilt a different catalog (" +
        std::to_string(ready_msg.catalog_size) + " vs " +
        std::to_string(child_catalog_size_) + " predicates)"));
  }
  child_catalog_size_ = ready_msg.catalog_size;
  return Status::OK();
}

void SubprocessTarget::StopChild(bool force_kill) {
  if (child_pid_ <= 0) {
    CloseIfOpen(to_child_);
    CloseIfOpen(from_child_);
    return;
  }
  if (!force_kill && to_child_ >= 0) {
    (void)WriteFrame(to_child_, ProcMsgType::kShutdown, {});
  }
  CloseIfOpen(to_child_);  // EOF backstop for hosts mid-read
  CloseIfOpen(from_child_);

  const pid_t pid = static_cast<pid_t>(child_pid_);
  child_pid_ = -1;
  if (force_kill) {
    ::kill(pid, SIGKILL);
    (void)::waitpid(pid, nullptr, 0);
    return;
  }
  // Grace period, then SIGKILL: a wedged host must not wedge our destructor.
  constexpr int kGraceMs = 2000;
  constexpr int kPollMs = 10;
  for (int waited = 0; waited < kGraceMs; waited += kPollMs) {
    const pid_t rc = ::waitpid(pid, nullptr, WNOHANG);
    if (rc == pid || (rc < 0 && errno == ECHILD)) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(kPollMs));
  }
  ::kill(pid, SIGKILL);
  (void)::waitpid(pid, nullptr, 0);
}

Status SubprocessTarget::Respawn() {
  if (health_.respawns >= options_.max_respawns) {
    return Status::Aborted(
        "SubprocessTarget: subject crashed/hung through " +
        std::to_string(health_.respawns) +
        " respawns (max_respawns); giving up on a crash loop");
  }
  ++health_.respawns;
  return EnsureChild();
}

Result<PredicateLog> SubprocessTarget::RunOneTrial(
    const std::vector<PredicateId>& intervened, uint64_t trial_index) {
  AID_RETURN_IF_ERROR(EnsureChild());

  PredicateLog log;
  RunTrialMsg request;
  request.trial_index = trial_index;
  request.intervened = intervened;

  auto record_crash = [&]() -> Result<PredicateLog> {
    // The subject died mid-trial: that IS a failing execution of the trial
    // (paper semantics: the failure was certainly not repressed), recorded
    // with a partial log so pruning will not reason from absences.
    log.failed = true;
    log.outcome = TrialOutcome::kCrashed;
    ++health_.crashed_trials;
    StopChild(/*force_kill=*/true);
    AID_RETURN_IF_ERROR(Respawn());
    return log;
  };

  Status sent = WriteFrame(to_child_, ProcMsgType::kRunTrial,
                           EncodeRunTrial(request));
  if (!sent.ok()) {
    if (sent.code() == StatusCode::kAborted) return record_crash();
    return sent;
  }

  // The deadline budgets the WHOLE trial, not each frame: a subject that
  // streams events forever must still die at the deadline, so an exhausted
  // budget times the trial out even when frames are still arriving.
  const auto trial_start = std::chrono::steady_clock::now();
  auto remaining_ms = [&]() -> int {
    if (options_.trial_deadline_ms <= 0) return 0;  // no deadline
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - trial_start)
                             .count();
    const int remaining =
        options_.trial_deadline_ms - static_cast<int>(elapsed);
    return remaining > 0 ? remaining : -1;  // -1: budget exhausted
  };
  auto record_timeout = [&]() -> Result<PredicateLog> {
    // The subject hung (or streamed past its budget): kill it and record
    // the distinct timed-out outcome.
    log.failed = true;
    log.outcome = TrialOutcome::kTimedOut;
    ++health_.timed_out_trials;
    StopChild(/*force_kill=*/true);
    AID_RETURN_IF_ERROR(Respawn());
    return log;
  };

  for (;;) {
    const int budget = remaining_ms();
    if (budget < 0) return record_timeout();
    Result<ProcFrame> frame = ReadFrameDeadline(from_child_, budget);
    if (!frame.ok()) {
      if (frame.status().code() == StatusCode::kAborted) {
        return record_crash();
      }
      if (frame.status().code() == StatusCode::kDeadlineExceeded) {
        return record_timeout();
      }
      return frame.status();
    }
    switch (frame->type) {
      case ProcMsgType::kTraceEvent: {
        AID_ASSIGN_OR_RETURN(TraceEventMsg event,
                             DecodeTraceEvent(frame->payload));
        log.observed[event.predicate] = {event.start, event.end};
        break;
      }
      case ProcMsgType::kVerdict: {
        AID_ASSIGN_OR_RETURN(VerdictMsg verdict, DecodeVerdict(frame->payload));
        log.failed = verdict.failed;
        log.outcome = TrialOutcome::kCompleted;
        return log;
      }
      case ProcMsgType::kError: {
        AID_ASSIGN_OR_RETURN(ErrorMsg error, DecodeError(frame->payload));
        return error.ToStatus();
      }
      default:
        return Status::Internal("SubprocessTarget: unexpected frame " +
                                std::string(ProcMsgTypeName(frame->type)) +
                                " inside a trial");
    }
  }
}

Result<TargetRunResult> SubprocessTarget::RunIntervened(
    const std::vector<PredicateId>& intervened, int trials) {
  if (trials < 1) trials = 1;
  TargetRunResult result;
  result.logs.reserve(static_cast<size_t>(trials));
  for (int i = 0; i < trials; ++i) {
    const uint64_t trial_index = trial_cursor_++;
    ++executions_;
    AID_ASSIGN_OR_RETURN(PredicateLog log,
                         RunOneTrial(intervened, trial_index));
    result.logs.push_back(std::move(log));
  }
  return result;
}

Result<std::unique_ptr<ReplicableTarget>> SubprocessTarget::Clone() const {
  auto clone = std::unique_ptr<SubprocessTarget>(
      new SubprocessTarget(spec_bytes_, options_));
  clone->trial_cursor_ = trial_cursor_;
  return std::unique_ptr<ReplicableTarget>(std::move(clone));
}

#else  // !AID_PROC_SUPPORTED

Result<std::unique_ptr<SubprocessTarget>> SubprocessTarget::Create(
    const SubjectSpec&, SubprocessOptions) {
  return Status::Unimplemented(
      "SubprocessTarget: process isolation requires fork/exec, which this "
      "platform does not provide");
}

SubprocessTarget::~SubprocessTarget() = default;

Status SubprocessTarget::EnsureChild() {
  return Status::Unimplemented("SubprocessTarget: unsupported platform");
}

void SubprocessTarget::StopChild(bool) {}

Status SubprocessTarget::Respawn() {
  return Status::Unimplemented("SubprocessTarget: unsupported platform");
}

Result<PredicateLog> SubprocessTarget::RunOneTrial(
    const std::vector<PredicateId>&, uint64_t) {
  return Status::Unimplemented("SubprocessTarget: unsupported platform");
}

Result<TargetRunResult> SubprocessTarget::RunIntervened(
    const std::vector<PredicateId>&, int) {
  return Status::Unimplemented("SubprocessTarget: unsupported platform");
}

Result<std::unique_ptr<ReplicableTarget>> SubprocessTarget::Clone() const {
  return Status::Unimplemented("SubprocessTarget: unsupported platform");
}

#endif  // AID_PROC_SUPPORTED

}  // namespace aid
