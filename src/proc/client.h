// Engine-side drivers of the subject wire protocol, transport-agnostic.
//
// proc::SubprocessTarget (pipes to a fork/exec'd child) and
// net::RemoteTarget (TCP to an aid_runner) speak the identical conversation
// -- HELLO/SPEC/READY handshake, then RUN_TRIAL / TRACE_EVENT* / VERDICT
// trials -- and differ only in how they create, kill, and replace the peer.
// These helpers implement the shared conversation over any FrameChannel so
// the transports implement nothing but lifecycle.
//
// Error vocabulary (the channel's, passed through): Aborted = the peer died
// mid-conversation (callers record a crashed trial and respawn/reconnect);
// DeadlineExceeded = the peer is alive but hung (callers record a timed-out
// trial); everything else is a genuine protocol or subject error.

#ifndef AID_PROC_CLIENT_H_
#define AID_PROC_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/target.h"
#include "predicates/predicate.h"
#include "proc/wire.h"

#if AID_PROC_SUPPORTED
#include <sys/types.h>
#endif

namespace aid {

class Telemetry;  // telemetry/telemetry.h; nullable everywhere below

struct SubjectHandshake {
  /// Budget across the whole handshake (HELLO + SPEC + READY). <= 0 = none.
  int timeout_ms = 60000;

  /// When nonzero, a READY whose catalog size differs fails with Internal:
  /// engine and host would disagree on predicate ids.
  uint32_t expected_catalog_size = 0;

  /// Catalog size a previous incarnation of this peer reported; nonzero
  /// makes a diverging respawn/reconnect fail with Internal.
  uint32_t previous_catalog_size = 0;

  /// Peer description for error messages ("subject host '/path'",
  /// "runner 10.0.0.7:7601").
  std::string peer = "subject host";
};

/// Performs the engine side of the handshake over `channel`: awaits HELLO
/// (checking magic and protocol version), sends `spec_bytes` as the SPEC
/// frame, awaits READY (or a host-side ERROR, which is returned as its
/// carried Status). Returns the host's catalog size.
Result<uint32_t> HandshakeSubject(FrameChannel& channel,
                                  std::string_view spec_bytes,
                                  const SubjectHandshake& options);

/// Runs one trial over `channel`: sends RUN_TRIAL, collects the streamed
/// TRACE_EVENTs into `*log`, and closes it on VERDICT. `trial_deadline_ms`
/// budgets the WHOLE trial (send included): a subject that streams events
/// forever still times out. Stray PONGs from an earlier keepalive probe are
/// skipped. A host-side ERROR frame is returned as its carried Status;
/// Aborted / DeadlineExceeded surface the channel's classification for the
/// caller to turn into crashed / timed-out trial accounting -- in both
/// cases the events streamed before the failure are KEPT in `*log`
/// (outcome stays non-complete), so pruning can still see the partial
/// observation set.
///
/// Telemetry (both optional): with a non-null `telemetry` and a nonzero
/// `trial_span_id`, the RUN_TRIAL carries the engine-side span context over
/// the wire and any host-side spans returned in the VERDICT are re-based
/// into the engine tracer's timeline and imported under `trial_span_id` --
/// the cross-process nesting of docs/telemetry.md.
Status RunTrialOverChannel(FrameChannel& channel, uint64_t trial_index,
                           const std::vector<PredicateId>& intervened,
                           int trial_deadline_ms, PredicateLog* log,
                           Telemetry* telemetry = nullptr,
                           uint64_t trial_span_id = 0);

/// Keepalive probe: sends PING with `token` and waits for the PONG echoing
/// it, skipping unrelated stale frames. DeadlineExceeded after `timeout_ms`,
/// Aborted when the peer is gone.
Status PingPeer(FrameChannel& channel, uint64_t token, int timeout_ms);

/// RunTrialOverChannel plus the shared failure lifecycle of the
/// process-backed transports: a peer death (Aborted) records a crashed
/// trial, a deadline expiry records a timed-out trial -- both failing,
/// both keeping the partial log (paper semantics: the failure was
/// certainly not repressed, and pruning must not reason from an
/// incomplete observation set), both counted into `*health` -- and in
/// either case `replace_peer` is invoked to stand up a fresh subject
/// (respawn a child, reconnect a socket); its error fails the run.
/// Other errors (host-side ERROR frames, protocol corruption) propagate.
/// Every path also charges the trial's wall-clock (wire time plus any peer
/// replacement) into `health->trial_micros`: the substrate-level timing
/// that feeds the latency-aware scheduler (exec/scheduler.h) and the
/// fleet's endpoint placement (net/latency.h).
/// With non-null `telemetry`, each trial additionally opens an engine-side
/// "trial" span (parented under the engine's active round span), records
/// its wire latency into the aid_trial_latency_us histogram labeled by the
/// channel's transport, and propagates/imports span context per
/// RunTrialOverChannel. Null = zero overhead.
Result<PredicateLog> RunTrialWithRecovery(
    FrameChannel& channel, uint64_t trial_index,
    const std::vector<PredicateId>& intervened, int trial_deadline_ms,
    TargetHealth* health, const std::function<Status()>& replace_peer,
    Telemetry* telemetry = nullptr);

#if AID_PROC_SUPPORTED
/// waitpid with the EINTR retry every raw syscall in the transports gets;
/// shared by the subprocess target and the runner daemon. Without it, a
/// signal delivered mid-reap would leak a zombie child.
pid_t WaitpidRetry(pid_t pid, int* status, int flags);
#endif

}  // namespace aid

#endif  // AID_PROC_CLIENT_H_
