// SubjectSpec: a serializable description of a debuggable subject, shipped
// to a sandboxed subject host (proc/subject_host) over the wire protocol.
//
// The spec covers every in-process intervention backend:
//
//   * kModel / kFlakyModel -- a ground-truth model, serialized at the
//     predicate level (catalog ids, true-cause rules, causal chain, temporal
//     edges) so the child's catalog is id-for-id identical to the parent's;
//   * kCase               -- one of the named case studies, reconstructed in
//     the child by key (the program is deterministic per key);
//   * kVmProgram          -- an arbitrary VM program, serialized through
//     runtime/program_io plus its VmTargetOptions, so even hand-built
//     subjects can run isolated.
//
// The spec also carries deterministic fault injection for exercising the
// isolation machinery itself: crash_period / hang_period make the *child
// process* abort or hang on trials whose global index hits the period.
// Because the trigger is the positional trial index, a crashy subject still
// yields identical discovery reports at any worker count.
//
// Parent-side specs borrow their model/program pointers (they only need to
// live until EncodeSubjectSpec returns); the decoded OwnedSubjectSpec owns
// everything, which is what a freshly exec'd host needs.

#ifndef AID_PROC_SUBJECT_SPEC_H_
#define AID_PROC_SUBJECT_SPEC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "core/vm_target.h"
#include "runtime/program.h"
#include "synth/model.h"
#include "trace/serialize.h"

namespace aid {

enum class SubjectKind : uint8_t {
  kModel = 0,
  kFlakyModel = 1,
  kCase = 2,
  kVmProgram = 3,
};

std::string_view SubjectKindName(SubjectKind kind);

struct SubjectSpec {
  SubjectKind kind = SubjectKind::kModel;

  /// kModel / kFlakyModel: borrowed; must outlive EncodeSubjectSpec.
  const GroundTruthModel* model = nullptr;
  double manifest_probability = 1.0;
  uint64_t flaky_seed = 1;

  /// kCase: case-study key ("npgsql", "kafka", ...).
  std::string case_key;

  /// kVmProgram: borrowed; must outlive EncodeSubjectSpec.
  const Program* program = nullptr;
  VmTargetOptions vm;

  /// Fault injection (0 = off): the child aborts / hangs forever before
  /// answering any trial whose 1-based global index is a multiple of the
  /// period. Positional, so deterministic across worker counts.
  uint64_t crash_period = 0;
  uint64_t hang_period = 0;
};

/// The decoded, fully owned form used inside the subject host.
struct OwnedSubjectSpec {
  SubjectKind kind = SubjectKind::kModel;
  std::unique_ptr<GroundTruthModel> model;
  double manifest_probability = 1.0;
  uint64_t flaky_seed = 1;
  std::string case_key;
  std::unique_ptr<Program> program;
  VmTargetOptions vm;
  uint64_t crash_period = 0;
  uint64_t hang_period = 0;
};

/// Serializes `spec` for the SPEC frame. Returns InvalidArgument when the
/// spec is self-inconsistent (e.g. kModel without a model pointer).
Result<std::string> EncodeSubjectSpec(const SubjectSpec& spec);

/// Decodes a SPEC payload into an owned spec. The reconstructed model's
/// predicate catalog assigns exactly the ids the parent's model did.
Result<OwnedSubjectSpec> DecodeSubjectSpec(std::string_view payload);

/// Model codec, exposed for round-trip tests: the decoded model's catalog,
/// true-cause rules, chain, and temporal-edge order all match the input.
void SerializeModel(const GroundTruthModel& model, WireWriter& writer);
Result<std::unique_ptr<GroundTruthModel>> DeserializeModel(WireReader& reader);

}  // namespace aid

#endif  // AID_PROC_SUBJECT_SPEC_H_
