#include "proc/client.h"

#include <cerrno>
#include <chrono>
#include <string>
#include <utility>

#include "telemetry/telemetry.h"

#if AID_PROC_SUPPORTED
#include <sys/wait.h>
#endif

namespace aid {

namespace {

using Clock = std::chrono::steady_clock;

/// Remaining budget against an absolute deadline, for channel calls that
/// want milliseconds. 0 = no deadline; -1 = budget exhausted.
int RemainingMs(bool has_deadline, Clock::time_point deadline) {
  if (!has_deadline) return 0;
  const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                             deadline - Clock::now())
                             .count();
  if (remaining <= 0) return -1;
  return static_cast<int>(remaining);
}

}  // namespace

Result<uint32_t> HandshakeSubject(FrameChannel& channel,
                                  std::string_view spec_bytes,
                                  const SubjectHandshake& options) {
  const bool has_deadline = options.timeout_ms > 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(options.timeout_ms);

  int budget = RemainingMs(has_deadline, deadline);
  Result<ProcFrame> hello = channel.Read(budget < 0 ? 1 : budget);
  if (!hello.ok()) {
    return Status(hello.status().code(),
                  "handshake: no HELLO from " + options.peer + ": " +
                      hello.status().message());
  }
  if (hello->type != ProcMsgType::kHello) {
    return Status::Internal("handshake: expected HELLO from " + options.peer +
                            ", got " +
                            std::string(ProcMsgTypeName(hello->type)));
  }
  AID_ASSIGN_OR_RETURN(HelloMsg hello_msg, DecodeHello(hello->payload));
  if (hello_msg.version != kProcProtocolVersion) {
    return Status::FailedPrecondition(
        "handshake: protocol version mismatch (" + options.peer +
        " speaks v" + std::to_string(hello_msg.version) + ", engine v" +
        std::to_string(kProcProtocolVersion) + ")");
  }

  // Specs can exceed the transport's buffering; the deadline keeps a peer
  // that stops reading from wedging the handshake.
  budget = RemainingMs(has_deadline, deadline);
  if (budget < 0) {
    return Status::DeadlineExceeded("handshake: budget exhausted before SPEC");
  }
  AID_RETURN_IF_ERROR(channel.Write(ProcMsgType::kSpec, spec_bytes, budget));

  budget = RemainingMs(has_deadline, deadline);
  Result<ProcFrame> ready = channel.Read(budget < 0 ? 1 : budget);
  if (!ready.ok()) {
    return Status(ready.status().code(),
                  "handshake: " + options.peer +
                      " died during subject construction: " +
                      ready.status().message());
  }
  if (ready->type == ProcMsgType::kError) {
    AID_ASSIGN_OR_RETURN(ErrorMsg error, DecodeError(ready->payload));
    return error.ToStatus();
  }
  if (ready->type != ProcMsgType::kReady) {
    return Status::Internal("handshake: expected READY from " + options.peer +
                            ", got " +
                            std::string(ProcMsgTypeName(ready->type)));
  }
  AID_ASSIGN_OR_RETURN(ReadyMsg ready_msg, DecodeReady(ready->payload));
  if (options.expected_catalog_size != 0 &&
      options.expected_catalog_size != ready_msg.catalog_size) {
    return Status::Internal(
        "handshake: " + options.peer +
        " rebuilt a different predicate catalog (" +
        std::to_string(ready_msg.catalog_size) + " predicates, expected " +
        std::to_string(options.expected_catalog_size) +
        "); engine and host would disagree on predicate ids");
  }
  if (options.previous_catalog_size != 0 &&
      options.previous_catalog_size != ready_msg.catalog_size) {
    return Status::Internal(
        "handshake: respawned " + options.peer +
        " rebuilt a different catalog (" +
        std::to_string(ready_msg.catalog_size) + " vs " +
        std::to_string(options.previous_catalog_size) + " predicates)");
  }
  return ready_msg.catalog_size;
}

Status RunTrialOverChannel(FrameChannel& channel, uint64_t trial_index,
                           const std::vector<PredicateId>& intervened,
                           int trial_deadline_ms, PredicateLog* log,
                           Telemetry* telemetry, uint64_t trial_span_id) {
  const bool has_deadline = trial_deadline_ms > 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(trial_deadline_ms);

  Tracer* tracer = telemetry != nullptr ? telemetry->tracer() : nullptr;
  const bool propagate = tracer != nullptr && trial_span_id != 0;

  RunTrialMsg request;
  request.trial_index = trial_index;
  request.intervened = intervened;
  uint64_t engine_send_us = 0;
  if (propagate) {
    request.has_span_context = true;
    request.trace_id = 1;  // one trace per Telemetry bundle
    request.parent_span_id = trial_span_id;
    engine_send_us = tracer->NowMicros();
  }
  AID_RETURN_IF_ERROR(channel.Write(ProcMsgType::kRunTrial,
                                    EncodeRunTrial(request),
                                    has_deadline ? trial_deadline_ms : 0));

  for (;;) {
    // The deadline budgets the WHOLE trial, not each frame: a subject that
    // streams events forever must still die at the deadline.
    const int budget = RemainingMs(has_deadline, deadline);
    if (budget < 0) {
      return Status::DeadlineExceeded("trial " + std::to_string(trial_index) +
                                      ": deadline expired");
    }
    Result<ProcFrame> frame = channel.Read(budget);
    if (!frame.ok()) return frame.status();
    switch (frame->type) {
      case ProcMsgType::kTraceEvent: {
        Result<TraceEventMsg> event = DecodeTraceEvent(frame->payload);
        if (!event.ok()) return event.status();
        log->observed[event->predicate] = {event->start, event->end};
        break;
      }
      case ProcMsgType::kVerdict: {
        Result<VerdictMsg> verdict = DecodeVerdict(frame->payload);
        if (!verdict.ok()) return verdict.status();
        log->failed = verdict->failed;
        log->outcome = TrialOutcome::kCompleted;
        if (propagate && verdict->has_host_telemetry) {
          // Re-base the host's steady-clock span times into this tracer's
          // timeline: the host anchored them on its RUN_TRIAL receive
          // timestamp, which happened (wire latency aside) at our send
          // timestamp. ImportSpan clamps inside the trial span, so skew
          // can never break the cross-process nesting.
          for (const WireHostSpan& span : verdict->host_spans) {
            const uint64_t start =
                engine_send_us +
                (span.start_us >= verdict->host_recv_us
                     ? span.start_us - verdict->host_recv_us
                     : 0);
            const uint64_t end =
                engine_send_us +
                (span.end_us >= verdict->host_recv_us
                     ? span.end_us - verdict->host_recv_us
                     : 0);
            tracer->ImportSpan(span.name, trial_span_id, start, end);
          }
        }
        return Status::OK();
      }
      case ProcMsgType::kError: {
        Result<ErrorMsg> error = DecodeError(frame->payload);
        if (!error.ok()) return error.status();
        return error->ToStatus();
      }
      case ProcMsgType::kPong:
        // Stale answer to an earlier keepalive probe; harmless.
        break;
      default:
        return Status::Internal("trial " + std::to_string(trial_index) +
                                ": unexpected frame " +
                                std::string(ProcMsgTypeName(frame->type)));
    }
  }
}

Result<PredicateLog> RunTrialWithRecovery(
    FrameChannel& channel, uint64_t trial_index,
    const std::vector<PredicateId>& intervened, int trial_deadline_ms,
    TargetHealth* health, const std::function<Status()>& replace_peer,
    Telemetry* telemetry) {
  // Trial timing at the wire, charged on every exit path: the substrate's
  // real per-trial latency -- RPC, streamed events, and any peer
  // replacement -- feeds the latency-aware scheduler's per-replica EWMA
  // (exec/scheduler.h) and the fleet's endpoint placement (net/latency.h).
  const Clock::time_point start = Clock::now();
  // The engine-side "trial" span, parented under whatever round span the
  // engine published. It covers the whole trial including any peer
  // replacement, and is the import anchor for the host-side spans.
  ScopedSpan trial_span;
  if (telemetry != nullptr && telemetry->tracer() != nullptr) {
    trial_span = ScopedSpan(telemetry->tracer(), "trial",
                            telemetry->active_parent());
  }
  Result<PredicateLog> out = [&]() -> Result<PredicateLog> {
    PredicateLog log;
    const Status run =
        RunTrialOverChannel(channel, trial_index, intervened,
                            trial_deadline_ms, &log, telemetry,
                            trial_span.id());
    if (run.ok()) return log;
    if (run.code() == StatusCode::kAborted) {
      log.failed = true;
      log.outcome = TrialOutcome::kCrashed;
      ++health->crashed_trials;
      AID_RETURN_IF_ERROR(replace_peer());
      return log;
    }
    if (run.code() == StatusCode::kDeadlineExceeded) {
      log.failed = true;
      log.outcome = TrialOutcome::kTimedOut;
      ++health->timed_out_trials;
      AID_RETURN_IF_ERROR(replace_peer());
      return log;
    }
    return run;
  }();
  trial_span.End();
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                           Clock::now() - start)
                           .count();
  if (elapsed > 0) health->trial_micros += static_cast<uint64_t>(elapsed);
  if (telemetry != nullptr && elapsed > 0) {
    telemetry
        ->LatencyHistogram("aid_trial_latency_us",
                           {{"transport", std::string(channel.transport())}})
        ->Record(static_cast<uint64_t>(elapsed));
  }
  return out;
}

#if AID_PROC_SUPPORTED
pid_t WaitpidRetry(pid_t pid, int* status, int flags) {
  for (;;) {
    const pid_t rc = ::waitpid(pid, status, flags);
    if (rc >= 0 || errno != EINTR) return rc;
  }
}
#endif

Status PingPeer(FrameChannel& channel, uint64_t token, int timeout_ms) {
  const bool has_deadline = timeout_ms > 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  PingMsg ping;
  ping.token = token;
  AID_RETURN_IF_ERROR(
      channel.Write(ProcMsgType::kPing, EncodePing(ping), timeout_ms));
  for (;;) {
    const int budget = RemainingMs(has_deadline, deadline);
    if (budget < 0) {
      return Status::DeadlineExceeded("ping: no PONG within " +
                                      std::to_string(timeout_ms) + "ms");
    }
    AID_ASSIGN_OR_RETURN(ProcFrame frame, channel.Read(budget));
    if (frame.type != ProcMsgType::kPong) continue;  // stale trial traffic
    AID_ASSIGN_OR_RETURN(PingMsg pong, DecodePing(frame.payload));
    if (pong.token == token) return Status::OK();
  }
}

}  // namespace aid
