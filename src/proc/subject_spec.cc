#include "proc/subject_spec.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "runtime/program_io.h"

namespace aid {
namespace {

// Version history:
//   1  initial format
//   2  model dependence edges; VmTargetOptions analysis flags
constexpr uint32_t kSpecFormatVersion = 2;

void SerializeVmTargetOptions(const VmTargetOptions& options,
                              WireWriter& writer) {
  writer.U64(options.first_seed);
  writer.I32(options.min_successes);
  writer.I32(options.min_failures);
  writer.I32(options.max_seed_scan);
  const ExtractionOptions& ex = options.extraction;
  writer.U8(ex.data_races ? 1 : 0);
  writer.U8(ex.atomicity_violations ? 1 : 0);
  writer.U8(ex.method_failures ? 1 : 0);
  writer.U8(ex.durations ? 1 : 0);
  writer.U8(ex.wrong_returns ? 1 : 0);
  writer.U8(ex.order_inversions ? 1 : 0);
  writer.U8(ex.return_equals ? 1 : 0);
  writer.I64(ex.duration_slack);
  writer.U8(ex.per_occurrence ? 1 : 0);
  writer.U64(options.vm.seed);
  writer.I64(options.vm.max_steps);
  writer.U8(options.vm.stop_on_failure ? 1 : 0);
  writer.U8(options.analysis.enabled ? 1 : 0);
  writer.U8(options.analysis.prune_edges ? 1 : 0);
  writer.U8(options.analysis.lint_programs ? 1 : 0);
  writer.U8(options.analysis.exclude_infeasible ? 1 : 0);
}

VmTargetOptions DeserializeVmTargetOptions(WireReader& reader) {
  VmTargetOptions options;
  options.first_seed = reader.U64();
  options.min_successes = reader.I32();
  options.min_failures = reader.I32();
  options.max_seed_scan = reader.I32();
  ExtractionOptions& ex = options.extraction;
  ex.data_races = reader.U8() != 0;
  ex.atomicity_violations = reader.U8() != 0;
  ex.method_failures = reader.U8() != 0;
  ex.durations = reader.U8() != 0;
  ex.wrong_returns = reader.U8() != 0;
  ex.order_inversions = reader.U8() != 0;
  ex.return_equals = reader.U8() != 0;
  ex.duration_slack = reader.I64();
  ex.per_occurrence = reader.U8() != 0;
  options.vm.seed = reader.U64();
  options.vm.max_steps = reader.I64();
  options.vm.stop_on_failure = reader.U8() != 0;
  options.analysis.enabled = reader.U8() != 0;
  options.analysis.prune_edges = reader.U8() != 0;
  options.analysis.lint_programs = reader.U8() != 0;
  options.analysis.exclude_infeasible = reader.U8() != 0;
  return options;
}

/// A hostile predicate id that escapes the catalog range would index out of
/// bounds in GroundTruthModel::Execute; every wire-received id is checked
/// here instead.
Status CheckModelId(const GroundTruthModel& model, PredicateId id,
                    const char* what) {
  if (id < 0 || static_cast<size_t>(id) >= model.catalog().size()) {
    return Status::InvalidArgument(
        "model decode: " + std::string(what) + " id " + std::to_string(id) +
        " outside the catalog range [0, " +
        std::to_string(model.catalog().size()) + ")");
  }
  return Status::OK();
}

}  // namespace

std::string_view SubjectKindName(SubjectKind kind) {
  switch (kind) {
    case SubjectKind::kModel: return "model";
    case SubjectKind::kFlakyModel: return "flaky-model";
    case SubjectKind::kCase: return "case";
    case SubjectKind::kVmProgram: return "vm-program";
  }
  return "unknown";
}

void SerializeModel(const GroundTruthModel& model, WireWriter& writer) {
  // Catalog reconstruction script: predicate ids are dense and assigned in
  // interning order, so emitting (id, display index) pairs in id order --
  // with the failure id marked -- lets the decoder replay AddPredicate /
  // AddFailure calls and land on the identical id space.
  writer.I32(model.failure());
  writer.U32(static_cast<uint32_t>(model.predicates().size()));
  for (PredicateId id : model.predicates()) {
    writer.I32(id);
    writer.I32(model.catalog().Get(id).occurrence);  // display index
  }

  // Chain before rules: the decoder replays SetCausalChain (which installs
  // the chain's default rules) and then the explicit rules, so any override
  // a generator applied after SetCausalChain wins on the replay too.
  writer.U32(static_cast<uint32_t>(model.causal_chain().size()));
  for (PredicateId id : model.causal_chain()) writer.I32(id);

  // True-cause rules, in id order for byte-stable encodings.
  std::vector<PredicateId> ruled;
  ruled.reserve(model.true_parents().size());
  for (const auto& [id, parents] : model.true_parents()) ruled.push_back(id);
  std::sort(ruled.begin(), ruled.end());
  writer.U32(static_cast<uint32_t>(ruled.size()));
  for (PredicateId id : ruled) {
    writer.I32(id);
    const auto& parents = model.true_parents().at(id);
    writer.U32(static_cast<uint32_t>(parents.size()));
    for (PredicateId parent : parents) writer.I32(parent);
  }

  // Temporal edges keep their exact order: AC-DAG construction consumes them
  // in sequence, and topological tie-breaking downstream is order-sensitive.
  writer.U32(static_cast<uint32_t>(model.temporal_edges().size()));
  for (const auto& [from, to] : model.temporal_edges()) {
    writer.I32(from);
    writer.I32(to);
  }

  // Dependence channels (format version 2): the static-analysis analog the
  // dependence-aware DAG pruning consumes.
  writer.U32(static_cast<uint32_t>(model.dependence_edges().size()));
  for (const auto& [from, to] : model.dependence_edges()) {
    writer.I32(from);
    writer.I32(to);
  }
}

Result<std::unique_ptr<GroundTruthModel>> DeserializeModel(WireReader& reader) {
  const PredicateId failure = reader.I32();
  // Each predicate entry is (id, display index): 8 bytes.
  const uint32_t pred_count = reader.Count(8);
  AID_RETURN_IF_ERROR(reader.status());

  struct PredEntry {
    PredicateId id;
    int index;
  };
  std::vector<PredEntry> entries;
  entries.reserve(pred_count);
  for (uint32_t i = 0; i < pred_count; ++i) {
    PredEntry entry;
    entry.id = reader.I32();
    entry.index = reader.I32();
    entries.push_back(entry);
  }
  AID_RETURN_IF_ERROR(reader.status());

  // Replay the interning script in id order so ids come out identical.
  auto model = std::make_unique<GroundTruthModel>();
  {
    std::vector<PredEntry> by_id = entries;
    std::sort(by_id.begin(), by_id.end(),
              [](const PredEntry& a, const PredEntry& b) { return a.id < b.id; });
    size_t next = 0;
    const size_t total = by_id.size() + (failure >= 0 ? 1 : 0);
    for (PredicateId id = 0; static_cast<size_t>(id) < total; ++id) {
      if (id == failure) {
        if (model->AddFailure() != id) {
          return Status::InvalidArgument(
              "model decode: failure id replay mismatch");
        }
        continue;
      }
      if (next >= by_id.size() || by_id[next].id != id) {
        return Status::InvalidArgument(
            "model decode: predicate ids are not dense");
      }
      if (model->AddPredicate(by_id[next].index) != id) {
        return Status::InvalidArgument(
            "model decode: predicate id replay mismatch (duplicate display "
            "index?)");
      }
      ++next;
    }
    if (next != by_id.size()) {
      return Status::InvalidArgument("model decode: predicate ids exceed the "
                                     "catalog range");
    }
  }

  const uint32_t chain_count = reader.Count(sizeof(PredicateId));
  AID_RETURN_IF_ERROR(reader.status());
  if (chain_count > 0) {
    if (failure < 0) {
      return Status::InvalidArgument(
          "model decode: a causal chain requires a failure predicate");
    }
    std::vector<PredicateId> chain;
    chain.reserve(chain_count);
    for (uint32_t i = 0; i < chain_count; ++i) chain.push_back(reader.I32());
    AID_RETURN_IF_ERROR(reader.status());
    for (PredicateId id : chain) {
      AID_RETURN_IF_ERROR(CheckModelId(*model, id, "causal chain"));
    }
    model->SetCausalChain(std::move(chain));
  }

  // Each rule is at least (id, parent count): 8 bytes.
  const uint32_t rule_count = reader.Count(8);
  AID_RETURN_IF_ERROR(reader.status());
  for (uint32_t i = 0; i < rule_count; ++i) {
    const PredicateId id = reader.I32();
    const uint32_t parent_count = reader.Count(sizeof(PredicateId));
    AID_RETURN_IF_ERROR(reader.status());
    std::vector<PredicateId> parents;
    parents.reserve(parent_count);
    for (uint32_t j = 0; j < parent_count; ++j) parents.push_back(reader.I32());
    AID_RETURN_IF_ERROR(reader.status());
    AID_RETURN_IF_ERROR(CheckModelId(*model, id, "true-cause rule"));
    for (PredicateId parent : parents) {
      AID_RETURN_IF_ERROR(CheckModelId(*model, parent, "true-cause parent"));
    }
    model->SetTrueParents(id, std::move(parents));
  }

  const uint32_t edge_count = reader.Count(2 * sizeof(PredicateId));
  AID_RETURN_IF_ERROR(reader.status());
  for (uint32_t i = 0; i < edge_count; ++i) {
    const PredicateId from = reader.I32();
    const PredicateId to = reader.I32();
    AID_RETURN_IF_ERROR(reader.status());
    AID_RETURN_IF_ERROR(CheckModelId(*model, from, "temporal edge"));
    AID_RETURN_IF_ERROR(CheckModelId(*model, to, "temporal edge"));
    model->AddTemporalEdge(from, to);
  }

  const uint32_t dep_count = reader.Count(2 * sizeof(PredicateId));
  AID_RETURN_IF_ERROR(reader.status());
  for (uint32_t i = 0; i < dep_count; ++i) {
    const PredicateId from = reader.I32();
    const PredicateId to = reader.I32();
    AID_RETURN_IF_ERROR(reader.status());
    AID_RETURN_IF_ERROR(CheckModelId(*model, from, "dependence edge"));
    AID_RETURN_IF_ERROR(CheckModelId(*model, to, "dependence edge"));
    model->AddDependenceEdge(from, to);
  }
  AID_RETURN_IF_ERROR(reader.status());
  return model;
}

Result<std::string> EncodeSubjectSpec(const SubjectSpec& spec) {
  WireWriter writer;
  writer.U32(kSpecFormatVersion);
  writer.U8(static_cast<uint8_t>(spec.kind));
  writer.U64(spec.crash_period);
  writer.U64(spec.hang_period);
  switch (spec.kind) {
    case SubjectKind::kModel:
    case SubjectKind::kFlakyModel:
      if (spec.model == nullptr) {
        return Status::InvalidArgument("subject spec: " +
                                       std::string(SubjectKindName(spec.kind)) +
                                       " requires a model");
      }
      writer.F64(spec.manifest_probability);
      writer.U64(spec.flaky_seed);
      SerializeModel(*spec.model, writer);
      break;
    case SubjectKind::kCase:
      if (spec.case_key.empty()) {
        return Status::InvalidArgument(
            "subject spec: case kind requires a case key");
      }
      writer.Str(spec.case_key);
      break;
    case SubjectKind::kVmProgram:
      if (spec.program == nullptr) {
        return Status::InvalidArgument(
            "subject spec: vm-program kind requires a program");
      }
      SerializeVmTargetOptions(spec.vm, writer);
      SerializeProgram(*spec.program, writer);
      break;
  }
  return writer.Release();
}

Result<OwnedSubjectSpec> DecodeSubjectSpec(std::string_view payload) {
  WireReader reader(payload);
  const uint32_t version = reader.U32();
  if (reader.ok() && version != kSpecFormatVersion) {
    return Status::InvalidArgument(
        "subject spec decode: unsupported format version " +
        std::to_string(version));
  }
  OwnedSubjectSpec spec;
  spec.kind = static_cast<SubjectKind>(reader.U8());
  spec.crash_period = reader.U64();
  spec.hang_period = reader.U64();
  AID_RETURN_IF_ERROR(reader.status());
  switch (spec.kind) {
    case SubjectKind::kModel:
    case SubjectKind::kFlakyModel: {
      spec.manifest_probability = reader.F64();
      spec.flaky_seed = reader.U64();
      AID_ASSIGN_OR_RETURN(spec.model, DeserializeModel(reader));
      break;
    }
    case SubjectKind::kCase: {
      spec.case_key = reader.Str();
      break;
    }
    case SubjectKind::kVmProgram: {
      spec.vm = DeserializeVmTargetOptions(reader);
      AID_ASSIGN_OR_RETURN(Program program, DeserializeProgram(reader));
      spec.program = std::make_unique<Program>(std::move(program));
      break;
    }
    default:
      return Status::InvalidArgument(
          "subject spec decode: unknown subject kind " +
          std::to_string(static_cast<int>(spec.kind)));
  }
  AID_RETURN_IF_ERROR(reader.Finish());
  return spec;
}

}  // namespace aid
