// The AID subject wire protocol (version 2).
//
// A debugging engine and a subject host speak length-prefixed binary frames
// over any byte transport -- the pipe pair of a fork/exec'd child
// (proc::SubprocessTarget, the child's stdin/stdout) or a TCP connection to
// a remote runner (net::RemoteTarget / the aid_runner daemon). Every frame
// is
//
//   [u32 length][u8 type][payload (length - 1 bytes)]
//
// with all integers little-endian (trace/serialize.h WireWriter/WireReader).
// The conversation:
//
//   host   -> engine   HELLO      magic, protocol version, pid
//   engine -> host     SPEC       serialized SubjectSpec (proc/subject_spec)
//   host   -> engine   READY      catalog size (id-space sanity check)
//                   or ERROR      status code + message (bad spec, failed
//                                 observation, version mismatch)
//   engine -> host     RUN_TRIAL  global trial index + intervened predicates
//   host   -> engine   TRACE_EVENT * N    streamed predicate observations
//   host   -> engine   VERDICT    failed flag (closes the trial)
//                   or ERROR      subject-level error for this trial
//   ...                (RUN_TRIAL repeats)
//   engine -> host     PING       keepalive probe (any time between trials)
//   host   -> engine   PONG       echoed token
//   engine -> host     STATS      stats request (any time; runner daemons)
//   host   -> engine   STATS_REPLY  JSON stats document
//   engine -> host     SHUTDOWN   host exits 0
//
// Version 2 added the PING/PONG keepalive pair (idle fleet connections need
// a liveness probe; over pipes the pair is a harmless no-op).
//
// Still version 2 (additive, no version bump): RUN_TRIAL may carry an
// optional trailing SPAN_CONTEXT (trace id + parent span id) and VERDICT an
// optional trailing host-telemetry block (receive timestamp + host-side
// spans). Both are appended only when the sender's telemetry is enabled;
// with telemetry off the encoded bytes are identical to pre-telemetry
// builds, and current decoders accept frames with or without the trailing
// block. The STATS / STATS_REPLY pair is likewise additive: hosts that
// predate it answer with their normal unexpected-frame ERROR, which stats
// clients surface as "unsupported".
//
// Failure semantics live at the transport layer: an EOF or write error means
// the peer died (the engine records a crashed trial and respawns or
// reconnects); a read deadline expiring means the subject hung (the engine
// SIGKILLs or drops the connection and records a timed-out trial). See
// docs/proc_protocol.md and docs/remote_protocol.md for the full
// specification.
//
// The free WriteFrame/ReadFrame functions speak the protocol over raw file
// descriptors; FrameChannel wraps them behind a transport-agnostic interface
// (PipeChannel here, net::SocketChannel for TCP) so protocol drivers --
// proc/client.h, proc/subject_host -- never care which transport carries
// their frames.
//
// Platform support: the transports use POSIX descriptors. On platforms
// without them, SubprocessIsolationSupported() returns false and every
// transport entry point returns Unimplemented.

#ifndef AID_PROC_WIRE_H_
#define AID_PROC_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "predicates/predicate.h"
#include "trace/serialize.h"

#if defined(__unix__) || defined(__APPLE__)
#define AID_PROC_SUPPORTED 1
#else
#define AID_PROC_SUPPORTED 0
#endif

namespace aid {

/// True when this build can fork/exec sandboxed subject hosts.
constexpr bool SubprocessIsolationSupported() {
  return AID_PROC_SUPPORTED != 0;
}

inline constexpr uint32_t kProcMagic = 0x41494450;  // "AIDP"
/// v2 = v1 + the PING/PONG keepalive pair.
inline constexpr uint32_t kProcProtocolVersion = 2;

/// Frames larger than this are rejected as corrupt before any allocation;
/// real frames are dominated by subject specs (programs/models, ~KBs).
inline constexpr uint32_t kProcMaxFramePayload = 64u << 20;

enum class ProcMsgType : uint8_t {
  kHello = 1,
  kSpec = 2,
  kReady = 3,
  kError = 4,
  kRunTrial = 5,
  kTraceEvent = 6,
  kVerdict = 7,
  kShutdown = 8,
  kPing = 9,
  kPong = 10,
  kStats = 11,
  kStatsReply = 12,
};

std::string_view ProcMsgTypeName(ProcMsgType type);

struct ProcFrame {
  ProcMsgType type = ProcMsgType::kError;
  std::string payload;
};

// ----------------------------------------------------------- transport ----

/// Writes one frame, retrying on EINTR and short writes. Returns Aborted
/// when the peer has closed its end (EPIPE), Internal on other I/O errors.
/// SIGPIPE is ignored process-wide on first use (standard practice for
/// pipe-speaking libraries; a closed peer must surface as a Status, not a
/// signal).
Status WriteFrame(int fd, ProcMsgType type, std::string_view payload);

/// Same, but gives up with DeadlineExceeded after `deadline_ms` if the peer
/// stops draining the pipe (poll()-based, temporarily non-blocking). Large
/// payloads (subject specs can exceed the pipe buffer) must use this when
/// the peer is untrusted: a wedged reader must not wedge the writer.
/// deadline_ms <= 0 means block indefinitely.
Status WriteFrameDeadline(int fd, ProcMsgType type, std::string_view payload,
                          int deadline_ms);

/// Reads one frame, blocking indefinitely. Returns Aborted on EOF (peer
/// died), InvalidArgument on a corrupt length prefix.
Result<ProcFrame> ReadFrame(int fd);

/// Reads one frame, giving up after `deadline_ms` (measured across the
/// whole frame, poll()-based). Returns DeadlineExceeded on expiry with the
/// partial bytes discarded; deadline_ms <= 0 means block indefinitely.
Result<ProcFrame> ReadFrameDeadline(int fd, int deadline_ms);

// ------------------------------------------------------------- channels ----

/// A bidirectional frame transport: the seam between the protocol drivers
/// (proc/client.h, proc/subject_host) and whatever bytes actually carry the
/// frames. Every operation takes a deadline in milliseconds (<= 0 = block
/// indefinitely); all EINTR retrying happens below this interface.
///
/// Status vocabulary, shared by all implementations:
///   Aborted          -- the peer is gone (EOF, EPIPE, ECONNRESET);
///   DeadlineExceeded -- the peer is alive but silent / not draining;
///   InvalidArgument  -- corrupt frame (bad length prefix);
///   Internal         -- local I/O failure.
///
/// Channels are not thread-safe; one conversation owns one channel.
class FrameChannel {
 public:
  virtual ~FrameChannel() = default;

  virtual Status Write(ProcMsgType type, std::string_view payload,
                       int deadline_ms = 0) = 0;
  virtual Result<ProcFrame> Read(int deadline_ms = 0) = 0;

  /// Releases the transport (idempotent). Further Read/Write fail Internal.
  virtual void Close() = 0;
  virtual bool open() const = 0;

  /// Transport name for error messages ("pipe", "socket").
  virtual std::string_view transport() const = 0;
};

/// FrameChannel over a unidirectional descriptor pair -- the subprocess
/// transport (parent side: child stdin/stdout; host side: its own 0/1).
class PipeChannel : public FrameChannel {
 public:
  /// `owns_fds`: close the descriptors on Close()/destruction. The host
  /// side wraps stdin/stdout non-owning.
  PipeChannel(int read_fd, int write_fd, bool owns_fds)
      : read_fd_(read_fd), write_fd_(write_fd), owns_fds_(owns_fds) {}
  ~PipeChannel() override { Close(); }

  PipeChannel(const PipeChannel&) = delete;
  PipeChannel& operator=(const PipeChannel&) = delete;

  Status Write(ProcMsgType type, std::string_view payload,
               int deadline_ms = 0) override;
  Result<ProcFrame> Read(int deadline_ms = 0) override;
  void Close() override;
  bool open() const override { return read_fd_ >= 0 || write_fd_ >= 0; }
  std::string_view transport() const override { return "pipe"; }

 private:
  int read_fd_;
  int write_fd_;
  bool owns_fds_;
};

// ------------------------------------------------------------ messages ----

struct HelloMsg {
  uint32_t magic = kProcMagic;
  uint32_t version = kProcProtocolVersion;
  uint64_t pid = 0;
};

struct ReadyMsg {
  /// Size of the child's predicate catalog. The parent cross-checks it
  /// against its own catalog: a mismatch means the spec did not reconstruct
  /// the same predicate id space and every answer would be garbage.
  uint32_t catalog_size = 0;
};

struct ErrorMsg {
  StatusCode code = StatusCode::kInternal;
  std::string message;

  Status ToStatus() const { return Status(code, message); }
};

struct RunTrialMsg {
  /// Global trial index: the child SeekTrial()s here before executing, so
  /// all per-trial nondeterminism is positional (exec/replicable.h) and any
  /// replica produces the bytes serial dispatch would have.
  uint64_t trial_index = 0;
  std::vector<PredicateId> intervened;
  /// Optional trailing SPAN_CONTEXT (telemetry): the engine-side trace and
  /// parent span this trial executes under. Encoded only when
  /// has_span_context -- with it false the bytes are identical to
  /// pre-telemetry builds.
  bool has_span_context = false;
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
};

/// One streamed predicate observation of the running trial.
struct TraceEventMsg {
  PredicateId predicate = kInvalidPredicate;
  int64_t start = 0;
  int64_t end = 0;
};

/// One host-side span carried back in a VERDICT's telemetry block. Times
/// are microseconds on the HOST's steady clock; the engine re-bases them
/// into its tracer timeline (see proc/client.cc).
struct WireHostSpan {
  std::string name;
  uint64_t start_us = 0;
  uint64_t end_us = 0;
};

struct VerdictMsg {
  bool failed = false;
  /// Optional trailing host telemetry, sent only when the RUN_TRIAL carried
  /// a SPAN_CONTEXT: the host clock's timestamp at which the RUN_TRIAL was
  /// received (the engine's re-basing anchor) and the host-side spans of
  /// this trial.
  bool has_host_telemetry = false;
  uint64_t host_recv_us = 0;
  std::vector<WireHostSpan> host_spans;
};

/// Keepalive probe. The host echoes the token back in its PONG so a prober
/// can match responses even after stale frames (v2).
struct PingMsg {
  uint64_t token = 0;
};

/// STATS_REPLY: a self-describing JSON document (uptime, sessions, trial
/// counts, latency histogram). JSON rather than packed fields so
/// `aid_runner --stats` output is directly consumable by scripts and the
/// schema can grow without a protocol change. The STATS request itself has
/// an empty payload.
struct StatsReplyMsg {
  std::string json;
};

std::string EncodeHello(const HelloMsg& msg);
Result<HelloMsg> DecodeHello(std::string_view payload);
std::string EncodeReady(const ReadyMsg& msg);
Result<ReadyMsg> DecodeReady(std::string_view payload);
std::string EncodeError(const Status& status);
Result<ErrorMsg> DecodeError(std::string_view payload);
std::string EncodeRunTrial(const RunTrialMsg& msg);
Result<RunTrialMsg> DecodeRunTrial(std::string_view payload);
std::string EncodeTraceEvent(const TraceEventMsg& msg);
Result<TraceEventMsg> DecodeTraceEvent(std::string_view payload);
std::string EncodeVerdict(const VerdictMsg& msg);
Result<VerdictMsg> DecodeVerdict(std::string_view payload);
std::string EncodePing(const PingMsg& msg);
Result<PingMsg> DecodePing(std::string_view payload);
std::string EncodeStatsReply(const StatsReplyMsg& msg);
Result<StatsReplyMsg> DecodeStatsReply(std::string_view payload);

}  // namespace aid

#endif  // AID_PROC_WIRE_H_
