// The AID process-isolation wire protocol (version 1).
//
// A debugging engine (parent) and a sandboxed subject host (child) speak
// length-prefixed binary frames over a pipe pair -- the child's stdin/stdout
// once exec'd. Every frame is
//
//   [u32 length][u8 type][payload (length - 1 bytes)]
//
// with all integers little-endian (trace/serialize.h WireWriter/WireReader).
// The conversation:
//
//   child  -> parent   HELLO      magic, protocol version, pid
//   parent -> child    SPEC       serialized SubjectSpec (proc/subject_spec)
//   child  -> parent   READY      catalog size (id-space sanity check)
//                   or ERROR      status code + message (bad spec, failed
//                                 observation, version mismatch)
//   parent -> child    RUN_TRIAL  global trial index + intervened predicates
//   child  -> parent   TRACE_EVENT * N    streamed predicate observations
//   child  -> parent   VERDICT    failed flag (closes the trial)
//                   or ERROR      subject-level error for this trial
//   ...                (RUN_TRIAL repeats)
//   parent -> child    SHUTDOWN   child exits 0
//
// Failure semantics live at the transport layer: an EOF or write error means
// the peer died (the parent records a crashed trial and respawns); a read
// deadline expiring means the subject hung (the parent SIGKILLs and records
// a timed-out trial). See docs/proc_protocol.md for the full specification.
//
// Platform support: the transport uses POSIX pipes. On platforms without
// them, SubprocessIsolationSupported() returns false and every transport
// entry point returns Unimplemented.

#ifndef AID_PROC_WIRE_H_
#define AID_PROC_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "predicates/predicate.h"
#include "trace/serialize.h"

#if defined(__unix__) || defined(__APPLE__)
#define AID_PROC_SUPPORTED 1
#else
#define AID_PROC_SUPPORTED 0
#endif

namespace aid {

/// True when this build can fork/exec sandboxed subject hosts.
constexpr bool SubprocessIsolationSupported() {
  return AID_PROC_SUPPORTED != 0;
}

inline constexpr uint32_t kProcMagic = 0x41494450;  // "AIDP"
inline constexpr uint32_t kProcProtocolVersion = 1;

/// Frames larger than this are rejected as corrupt before any allocation;
/// real frames are dominated by subject specs (programs/models, ~KBs).
inline constexpr uint32_t kProcMaxFramePayload = 64u << 20;

enum class ProcMsgType : uint8_t {
  kHello = 1,
  kSpec = 2,
  kReady = 3,
  kError = 4,
  kRunTrial = 5,
  kTraceEvent = 6,
  kVerdict = 7,
  kShutdown = 8,
};

std::string_view ProcMsgTypeName(ProcMsgType type);

struct ProcFrame {
  ProcMsgType type = ProcMsgType::kError;
  std::string payload;
};

// ----------------------------------------------------------- transport ----

/// Writes one frame, retrying on EINTR and short writes. Returns Aborted
/// when the peer has closed its end (EPIPE), Internal on other I/O errors.
/// SIGPIPE is ignored process-wide on first use (standard practice for
/// pipe-speaking libraries; a closed peer must surface as a Status, not a
/// signal).
Status WriteFrame(int fd, ProcMsgType type, std::string_view payload);

/// Same, but gives up with DeadlineExceeded after `deadline_ms` if the peer
/// stops draining the pipe (poll()-based, temporarily non-blocking). Large
/// payloads (subject specs can exceed the pipe buffer) must use this when
/// the peer is untrusted: a wedged reader must not wedge the writer.
/// deadline_ms <= 0 means block indefinitely.
Status WriteFrameDeadline(int fd, ProcMsgType type, std::string_view payload,
                          int deadline_ms);

/// Reads one frame, blocking indefinitely. Returns Aborted on EOF (peer
/// died), InvalidArgument on a corrupt length prefix.
Result<ProcFrame> ReadFrame(int fd);

/// Reads one frame, giving up after `deadline_ms` (measured across the
/// whole frame, poll()-based). Returns DeadlineExceeded on expiry with the
/// partial bytes discarded; deadline_ms <= 0 means block indefinitely.
Result<ProcFrame> ReadFrameDeadline(int fd, int deadline_ms);

// ------------------------------------------------------------ messages ----

struct HelloMsg {
  uint32_t magic = kProcMagic;
  uint32_t version = kProcProtocolVersion;
  uint64_t pid = 0;
};

struct ReadyMsg {
  /// Size of the child's predicate catalog. The parent cross-checks it
  /// against its own catalog: a mismatch means the spec did not reconstruct
  /// the same predicate id space and every answer would be garbage.
  uint32_t catalog_size = 0;
};

struct ErrorMsg {
  StatusCode code = StatusCode::kInternal;
  std::string message;

  Status ToStatus() const { return Status(code, message); }
};

struct RunTrialMsg {
  /// Global trial index: the child SeekTrial()s here before executing, so
  /// all per-trial nondeterminism is positional (exec/replicable.h) and any
  /// replica produces the bytes serial dispatch would have.
  uint64_t trial_index = 0;
  std::vector<PredicateId> intervened;
};

/// One streamed predicate observation of the running trial.
struct TraceEventMsg {
  PredicateId predicate = kInvalidPredicate;
  int64_t start = 0;
  int64_t end = 0;
};

struct VerdictMsg {
  bool failed = false;
};

std::string EncodeHello(const HelloMsg& msg);
Result<HelloMsg> DecodeHello(std::string_view payload);
std::string EncodeReady(const ReadyMsg& msg);
Result<ReadyMsg> DecodeReady(std::string_view payload);
std::string EncodeError(const Status& status);
Result<ErrorMsg> DecodeError(std::string_view payload);
std::string EncodeRunTrial(const RunTrialMsg& msg);
Result<RunTrialMsg> DecodeRunTrial(std::string_view payload);
std::string EncodeTraceEvent(const TraceEventMsg& msg);
Result<TraceEventMsg> DecodeTraceEvent(std::string_view payload);
std::string EncodeVerdict(const VerdictMsg& msg);
Result<VerdictMsg> DecodeVerdict(std::string_view payload);

}  // namespace aid

#endif  // AID_PROC_WIRE_H_
