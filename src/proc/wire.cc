#include "proc/wire.h"

#include <cerrno>
#include <cstring>

#if AID_PROC_SUPPORTED
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <unistd.h>
#endif

#include <chrono>
#include <mutex>

namespace aid {

std::string_view ProcMsgTypeName(ProcMsgType type) {
  switch (type) {
    case ProcMsgType::kHello: return "HELLO";
    case ProcMsgType::kSpec: return "SPEC";
    case ProcMsgType::kReady: return "READY";
    case ProcMsgType::kError: return "ERROR";
    case ProcMsgType::kRunTrial: return "RUN_TRIAL";
    case ProcMsgType::kTraceEvent: return "TRACE_EVENT";
    case ProcMsgType::kVerdict: return "VERDICT";
    case ProcMsgType::kShutdown: return "SHUTDOWN";
    case ProcMsgType::kPing: return "PING";
    case ProcMsgType::kPong: return "PONG";
    case ProcMsgType::kStats: return "STATS";
    case ProcMsgType::kStatsReply: return "STATS_REPLY";
  }
  return "UNKNOWN";
}

#if AID_PROC_SUPPORTED

namespace {

/// A closed peer must surface as EPIPE (-> Status), not as a fatal SIGPIPE.
/// Installed once, process-wide, before the first pipe write -- the standard
/// contract of libraries that own pipe/socket transports.
void IgnoreSigpipeOnce() {
  static std::once_flag once;
  std::call_once(once, []() { ::signal(SIGPIPE, SIG_IGN); });
}

Status WriteAll(int fd, const char* data, size_t n) {
  size_t written = 0;
  while (written < n) {
    const ssize_t rc = ::write(fd, data + written, n - written);
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::Aborted("proc wire: peer closed the channel (" +
                               std::string(std::strerror(errno)) + ")");
      }
      return Status::Internal(std::string("proc wire: write failed: ") +
                              std::strerror(errno));
    }
    written += static_cast<size_t>(rc);
  }
  return Status::OK();
}

using Clock = std::chrono::steady_clock;

/// WriteAll with an absolute give-up point: the fd is flipped to
/// non-blocking for the duration and each would-block wait goes through
/// poll(POLLOUT) with the remaining budget, so a peer that stops draining
/// the pipe surfaces as DeadlineExceeded instead of wedging the writer.
Status WriteAllDeadline(int fd, const char* data, size_t n,
                        Clock::time_point deadline) {
  const int flags = ::fcntl(fd, F_GETFL);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(std::string("proc wire: fcntl failed: ") +
                            std::strerror(errno));
  }
  auto restore = [&]() { ::fcntl(fd, F_SETFL, flags); };
  size_t written = 0;
  while (written < n) {
    const ssize_t rc = ::write(fd, data + written, n - written);
    if (rc > 0) {
      written += static_cast<size_t>(rc);
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    if (rc < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      restore();
      return Status::Aborted("proc wire: peer closed the channel (" +
                             std::string(std::strerror(errno)) + ")");
    }
    if (rc < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
      restore();
      return Status::Internal(std::string("proc wire: write failed: ") +
                              std::strerror(errno));
    }
    // Pipe full: wait for drain within the remaining budget.
    const auto remaining = deadline - Clock::now();
    const int remaining_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(remaining)
            .count());
    if (remaining_ms <= 0) {
      restore();
      return Status::DeadlineExceeded("proc wire: write deadline expired");
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLOUT;
    const int prc = ::poll(&pfd, 1, remaining_ms);
    if (prc < 0 && errno != EINTR) {
      restore();
      return Status::Internal(std::string("proc wire: poll failed: ") +
                              std::strerror(errno));
    }
    if (prc == 0) {
      restore();
      return Status::DeadlineExceeded("proc wire: write deadline expired");
    }
  }
  restore();
  return Status::OK();
}

/// Reads exactly `n` bytes. `deadline` is the absolute give-up point
/// (time_point::max() = block forever). EOF mid-message is Aborted: the only
/// writer is the peer process, so a short stream means it died.
Status ReadAllDeadline(int fd, char* out, size_t n, Clock::time_point deadline) {
  size_t got = 0;
  while (got < n) {
    if (deadline != Clock::time_point::max()) {
      const auto remaining = deadline - Clock::now();
      const int remaining_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(remaining)
              .count());
      if (remaining_ms <= 0) {
        return Status::DeadlineExceeded("proc wire: read deadline expired");
      }
      struct pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLIN;
      const int rc = ::poll(&pfd, 1, remaining_ms);
      if (rc < 0) {
        if (errno == EINTR) continue;
        return Status::Internal(std::string("proc wire: poll failed: ") +
                                std::strerror(errno));
      }
      if (rc == 0) {
        return Status::DeadlineExceeded("proc wire: read deadline expired");
      }
      // POLLHUP with buffered data still reads; plain read() below decides.
    }
    const ssize_t rc = ::read(fd, out + got, n - got);
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) {
        return Status::Aborted("proc wire: peer reset the connection");
      }
      return Status::Internal(std::string("proc wire: read failed: ") +
                              std::strerror(errno));
    }
    if (rc == 0) {
      return Status::Aborted("proc wire: peer closed the channel (EOF)");
    }
    got += static_cast<size_t>(rc);
  }
  return Status::OK();
}

Result<ProcFrame> ReadFrameUntil(int fd, Clock::time_point deadline) {
  uint32_t length = 0;
  AID_RETURN_IF_ERROR(
      ReadAllDeadline(fd, reinterpret_cast<char*>(&length), sizeof(length),
                      deadline));
  if (length < 1 || length > kProcMaxFramePayload + 1) {
    return Status::InvalidArgument("proc wire: corrupt frame length " +
                                   std::to_string(length));
  }
  std::string body(length, '\0');
  AID_RETURN_IF_ERROR(ReadAllDeadline(fd, body.data(), body.size(), deadline));
  ProcFrame frame;
  frame.type = static_cast<ProcMsgType>(static_cast<uint8_t>(body[0]));
  frame.payload = body.substr(1);
  return frame;
}

}  // namespace

namespace {

/// One contiguous buffer per frame: a single write() syscall -- and, over
/// TCP_NODELAY sockets, a single segment -- instead of a header write plus
/// a payload write on the per-trial hot path.
std::string AssembleFrame(ProcMsgType type, std::string_view payload) {
  WireWriter frame;
  frame.U32(static_cast<uint32_t>(payload.size()) + 1);
  frame.U8(static_cast<uint8_t>(type));
  frame.Raw(payload);
  return frame.Release();
}

}  // namespace

Status WriteFrame(int fd, ProcMsgType type, std::string_view payload) {
  IgnoreSigpipeOnce();
  if (payload.size() > kProcMaxFramePayload) {
    return Status::InvalidArgument("proc wire: frame payload too large (" +
                                   std::to_string(payload.size()) + " bytes)");
  }
  const std::string frame = AssembleFrame(type, payload);
  return WriteAll(fd, frame.data(), frame.size());
}

Status WriteFrameDeadline(int fd, ProcMsgType type, std::string_view payload,
                          int deadline_ms) {
  if (deadline_ms <= 0) return WriteFrame(fd, type, payload);
  IgnoreSigpipeOnce();
  if (payload.size() > kProcMaxFramePayload) {
    return Status::InvalidArgument("proc wire: frame payload too large (" +
                                   std::to_string(payload.size()) + " bytes)");
  }
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(deadline_ms);
  const std::string frame = AssembleFrame(type, payload);
  return WriteAllDeadline(fd, frame.data(), frame.size(), deadline);
}

Result<ProcFrame> ReadFrame(int fd) {
  return ReadFrameUntil(fd, Clock::time_point::max());
}

Result<ProcFrame> ReadFrameDeadline(int fd, int deadline_ms) {
  if (deadline_ms <= 0) return ReadFrame(fd);
  return ReadFrameUntil(fd,
                        Clock::now() + std::chrono::milliseconds(deadline_ms));
}

Status PipeChannel::Write(ProcMsgType type, std::string_view payload,
                          int deadline_ms) {
  if (write_fd_ < 0) {
    return Status::Internal("pipe channel: write side is closed");
  }
  return WriteFrameDeadline(write_fd_, type, payload, deadline_ms);
}

Result<ProcFrame> PipeChannel::Read(int deadline_ms) {
  if (read_fd_ < 0) {
    return Status::Internal("pipe channel: read side is closed");
  }
  return ReadFrameDeadline(read_fd_, deadline_ms);
}

void PipeChannel::Close() {
  if (owns_fds_) {
    if (read_fd_ >= 0) ::close(read_fd_);
    if (write_fd_ >= 0 && write_fd_ != read_fd_) ::close(write_fd_);
  }
  read_fd_ = -1;
  write_fd_ = -1;
}

#else  // !AID_PROC_SUPPORTED

Status WriteFrame(int, ProcMsgType, std::string_view) {
  return Status::Unimplemented(
      "proc wire: pipes are unavailable on this platform");
}

Status WriteFrameDeadline(int, ProcMsgType, std::string_view, int) {
  return Status::Unimplemented(
      "proc wire: pipes are unavailable on this platform");
}

Result<ProcFrame> ReadFrame(int) {
  return Status::Unimplemented(
      "proc wire: pipes are unavailable on this platform");
}

Result<ProcFrame> ReadFrameDeadline(int, int) {
  return Status::Unimplemented(
      "proc wire: pipes are unavailable on this platform");
}

Status PipeChannel::Write(ProcMsgType, std::string_view, int) {
  return Status::Unimplemented(
      "proc wire: pipes are unavailable on this platform");
}

Result<ProcFrame> PipeChannel::Read(int) {
  return Status::Unimplemented(
      "proc wire: pipes are unavailable on this platform");
}

void PipeChannel::Close() {
  read_fd_ = -1;
  write_fd_ = -1;
}

#endif  // AID_PROC_SUPPORTED

// -------------------------------------------------------------- messages --

std::string EncodeHello(const HelloMsg& msg) {
  WireWriter writer;
  writer.U32(msg.magic);
  writer.U32(msg.version);
  writer.U64(msg.pid);
  return writer.Release();
}

Result<HelloMsg> DecodeHello(std::string_view payload) {
  WireReader reader(payload);
  HelloMsg msg;
  msg.magic = reader.U32();
  msg.version = reader.U32();
  msg.pid = reader.U64();
  AID_RETURN_IF_ERROR(reader.Finish());
  if (msg.magic != kProcMagic) {
    return Status::InvalidArgument(
        "proc wire: HELLO magic mismatch (not a subject host?)");
  }
  return msg;
}

std::string EncodeReady(const ReadyMsg& msg) {
  WireWriter writer;
  writer.U32(msg.catalog_size);
  return writer.Release();
}

Result<ReadyMsg> DecodeReady(std::string_view payload) {
  WireReader reader(payload);
  ReadyMsg msg;
  msg.catalog_size = reader.U32();
  AID_RETURN_IF_ERROR(reader.Finish());
  return msg;
}

std::string EncodeError(const Status& status) {
  WireWriter writer;
  writer.U32(static_cast<uint32_t>(status.code()));
  writer.Str(status.message());
  return writer.Release();
}

Result<ErrorMsg> DecodeError(std::string_view payload) {
  WireReader reader(payload);
  ErrorMsg msg;
  msg.code = static_cast<StatusCode>(reader.U32());
  msg.message = reader.Str();
  AID_RETURN_IF_ERROR(reader.Finish());
  if (msg.code == StatusCode::kOk) {
    // An ERROR frame must carry an error; a peer sending OK is confused.
    msg.code = StatusCode::kInternal;
  }
  return msg;
}

std::string EncodeRunTrial(const RunTrialMsg& msg) {
  WireWriter writer;
  writer.U64(msg.trial_index);
  writer.U32(static_cast<uint32_t>(msg.intervened.size()));
  for (PredicateId id : msg.intervened) writer.I32(id);
  if (msg.has_span_context) {
    // Optional trailing SPAN_CONTEXT (telemetry). Absent = bytes identical
    // to pre-telemetry builds; see the wire.h compatibility note.
    writer.U64(msg.trace_id);
    writer.U64(msg.parent_span_id);
  }
  return writer.Release();
}

Result<RunTrialMsg> DecodeRunTrial(std::string_view payload) {
  WireReader reader(payload);
  RunTrialMsg msg;
  msg.trial_index = reader.U64();
  const uint32_t count = reader.Count(sizeof(PredicateId));
  AID_RETURN_IF_ERROR(reader.status());
  msg.intervened.reserve(count);
  for (uint32_t i = 0; i < count; ++i) msg.intervened.push_back(reader.I32());
  if (reader.ok() && reader.remaining() > 0) {
    msg.trace_id = reader.U64();
    msg.parent_span_id = reader.U64();
    msg.has_span_context = reader.ok();
  }
  AID_RETURN_IF_ERROR(reader.Finish());
  return msg;
}

std::string EncodeTraceEvent(const TraceEventMsg& msg) {
  WireWriter writer;
  writer.I32(msg.predicate);
  writer.I64(msg.start);
  writer.I64(msg.end);
  return writer.Release();
}

Result<TraceEventMsg> DecodeTraceEvent(std::string_view payload) {
  WireReader reader(payload);
  TraceEventMsg msg;
  msg.predicate = reader.I32();
  msg.start = reader.I64();
  msg.end = reader.I64();
  AID_RETURN_IF_ERROR(reader.Finish());
  return msg;
}

std::string EncodeVerdict(const VerdictMsg& msg) {
  WireWriter writer;
  writer.U8(msg.failed ? 1 : 0);
  if (msg.has_host_telemetry) {
    // Optional trailing host-telemetry block, mirrored on RUN_TRIAL's
    // SPAN_CONTEXT: absent = pre-telemetry bytes.
    writer.U64(msg.host_recv_us);
    writer.U32(static_cast<uint32_t>(msg.host_spans.size()));
    for (const WireHostSpan& span : msg.host_spans) {
      writer.Str(span.name);
      writer.U64(span.start_us);
      writer.U64(span.end_us);
    }
  }
  return writer.Release();
}

Result<VerdictMsg> DecodeVerdict(std::string_view payload) {
  WireReader reader(payload);
  VerdictMsg msg;
  msg.failed = reader.U8() != 0;
  if (reader.ok() && reader.remaining() > 0) {
    msg.host_recv_us = reader.U64();
    const uint32_t count = reader.Count(sizeof(uint32_t) + 2 * sizeof(uint64_t));
    AID_RETURN_IF_ERROR(reader.status());
    msg.host_spans.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      WireHostSpan span;
      span.name = reader.Str();
      span.start_us = reader.U64();
      span.end_us = reader.U64();
      msg.host_spans.push_back(std::move(span));
    }
    msg.has_host_telemetry = reader.ok();
  }
  AID_RETURN_IF_ERROR(reader.Finish());
  return msg;
}

std::string EncodePing(const PingMsg& msg) {
  WireWriter writer;
  writer.U64(msg.token);
  return writer.Release();
}

Result<PingMsg> DecodePing(std::string_view payload) {
  WireReader reader(payload);
  PingMsg msg;
  msg.token = reader.U64();
  AID_RETURN_IF_ERROR(reader.Finish());
  return msg;
}

std::string EncodeStatsReply(const StatsReplyMsg& msg) {
  WireWriter writer;
  writer.Str(msg.json);
  return writer.Release();
}

Result<StatsReplyMsg> DecodeStatsReply(std::string_view payload) {
  WireReader reader(payload);
  StatsReplyMsg msg;
  msg.json = reader.Str();
  AID_RETURN_IF_ERROR(reader.Finish());
  return msg;
}

}  // namespace aid
