#include "proc/subject_host.h"

#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

#include "analysis/analyzer.h"
#include "casestudies/case_study.h"
#include "common/logging.h"
#include "core/vm_target.h"
#include "proc/wire.h"
#include "synth/flaky_target.h"

#if AID_PROC_SUPPORTED
#include <unistd.h>
#endif

namespace aid {
namespace {

/// Owns whatever the spec's target borrows (a case study's program) next to
/// the target itself, in destruction-safe order.
struct HostSubject {
  std::unique_ptr<CaseStudy> study;
  std::unique_ptr<ReplicableTarget> target;
  size_t catalog_size = 0;
};

Result<HostSubject> BuildHostSubject(const OwnedSubjectSpec& spec) {
  HostSubject subject;
  switch (spec.kind) {
    case SubjectKind::kModel:
    case SubjectKind::kFlakyModel: {
      if (spec.model == nullptr) {
        return Status::InvalidArgument("subject host: spec carries no model");
      }
      AID_ASSIGN_OR_RETURN(subject.target, BuildSubjectTarget(spec));
      subject.catalog_size = spec.model->catalog().size();
      return subject;
    }
    case SubjectKind::kCase: {
      AID_ASSIGN_OR_RETURN(CaseStudy study, MakeCaseStudyByKey(spec.case_key));
      subject.study = std::make_unique<CaseStudy>(std::move(study));
      AID_ASSIGN_OR_RETURN(
          std::unique_ptr<VmTarget> target,
          VmTarget::Create(&subject.study->program,
                           subject.study->target_options));
      subject.catalog_size = target->extractor().catalog().size();
      subject.target = std::move(target);
      return subject;
    }
    case SubjectKind::kVmProgram: {
      if (spec.program == nullptr) {
        return Status::InvalidArgument("subject host: spec carries no program");
      }
      // Pre-execution lint on every wire-received program, regardless of
      // the spec's analysis options: undefined registers, unreachable
      // predicate sites, out-of-range targets and the like become a
      // structured ERROR frame here instead of a child crash mid-scan.
      const ProgramAnalysis analysis =
          ProgramAnalysis::Analyze(*spec.program);
      AID_RETURN_IF_ERROR(analysis.LintStatus());
      AID_ASSIGN_OR_RETURN(std::unique_ptr<VmTarget> target,
                           VmTarget::Create(spec.program.get(), spec.vm));
      subject.catalog_size = target->extractor().catalog().size();
      subject.target = std::move(target);
      return subject;
    }
  }
  return Status::InvalidArgument("subject host: unknown subject kind");
}

/// Poisoned-trial check: 1-based global trial index hits the period.
bool HitsPeriod(uint64_t trial_index, uint64_t period) {
  return period != 0 && (trial_index + 1) % period == 0;
}

[[noreturn]] void HangForever() {
  // A deliberately wedged subject: the paper's hung-subject scenario. The
  // parent's per-trial deadline is the only way out (SIGKILL).
  for (;;) std::this_thread::sleep_for(std::chrono::hours(24));
}

Status SendTrialAnswer(FrameChannel& channel, const PredicateLog& log) {
  for (const auto& [id, observation] : log.observed) {
    TraceEventMsg event;
    event.predicate = id;
    event.start = observation.start;
    event.end = observation.end;
    AID_RETURN_IF_ERROR(
        channel.Write(ProcMsgType::kTraceEvent, EncodeTraceEvent(event)));
  }
  VerdictMsg verdict;
  verdict.failed = log.failed;
  return channel.Write(ProcMsgType::kVerdict, EncodeVerdict(verdict));
}

/// Answers a PING by echoing its token back (v2 keepalive). A garbled PING
/// still gets a PONG (token 0): liveness is the point, not the payload.
Status AnswerPing(FrameChannel& channel, const ProcFrame& frame) {
  PingMsg pong;
  if (Result<PingMsg> ping = DecodePing(frame.payload); ping.ok()) {
    pong.token = ping->token;
  }
  return channel.Write(ProcMsgType::kPong, EncodePing(pong));
}

}  // namespace

Result<std::unique_ptr<ReplicableTarget>> BuildSubjectTarget(
    const OwnedSubjectSpec& spec) {
  switch (spec.kind) {
    case SubjectKind::kModel:
      return std::unique_ptr<ReplicableTarget>(
          std::make_unique<ModelTarget>(spec.model.get()));
    case SubjectKind::kFlakyModel:
      return std::unique_ptr<ReplicableTarget>(
          std::make_unique<FlakyModelTarget>(
              spec.model.get(), spec.manifest_probability, spec.flaky_seed));
    case SubjectKind::kCase: {
      // Callers who need the study kept alive use BuildHostSubject; this
      // entry point only serves specs whose subject is self-contained.
      return Status::InvalidArgument(
          "BuildSubjectTarget: case subjects own their program; use "
          "RunSubjectHost");
    }
    case SubjectKind::kVmProgram: {
      AID_ASSIGN_OR_RETURN(std::unique_ptr<VmTarget> target,
                           VmTarget::Create(spec.program.get(), spec.vm));
      return std::unique_ptr<ReplicableTarget>(std::move(target));
    }
  }
  return Status::InvalidArgument("BuildSubjectTarget: unknown subject kind");
}

int RunSubjectHost(FrameChannel& channel, const SubjectHostOptions& host) {
#if !AID_PROC_SUPPORTED
  (void)channel;
  (void)host;
  return 3;
#else
  HelloMsg hello;
  hello.pid = static_cast<uint64_t>(::getpid());
  if (!channel.Write(ProcMsgType::kHello, EncodeHello(hello)).ok()) {
    return 2;
  }

  // SPEC -> build -> READY (or ERROR and exit).
  OwnedSubjectSpec spec;
  HostSubject subject;
  for (;;) {
    Result<ProcFrame> frame = channel.Read();
    if (!frame.ok()) return 2;
    if (frame->type == ProcMsgType::kShutdown) return 0;
    if (frame->type == ProcMsgType::kPing) {
      if (!AnswerPing(channel, *frame).ok()) return 2;
      continue;
    }
    if (frame->type != ProcMsgType::kSpec) {
      (void)channel.Write(
          ProcMsgType::kError,
          EncodeError(Status::InvalidArgument(
              "subject host: expected SPEC, got " +
              std::string(ProcMsgTypeName(frame->type)))));
      return 2;
    }
    Result<OwnedSubjectSpec> decoded = DecodeSubjectSpec(frame->payload);
    if (!decoded.ok()) {
      (void)channel.Write(ProcMsgType::kError, EncodeError(decoded.status()));
      return 2;
    }
    spec = std::move(decoded).value();
    Result<HostSubject> built = BuildHostSubject(spec);
    if (!built.ok()) {
      (void)channel.Write(ProcMsgType::kError, EncodeError(built.status()));
      return 2;
    }
    subject = std::move(built).value();
    ReadyMsg ready;
    ready.catalog_size = static_cast<uint32_t>(subject.catalog_size);
    if (!channel.Write(ProcMsgType::kReady, EncodeReady(ready)).ok()) {
      return 2;
    }
    break;
  }

  // Trial loop.
  for (;;) {
    Result<ProcFrame> frame = channel.Read();
    if (!frame.ok()) {
      // EOF: the engine died or dropped us; exiting is the clean response.
      return frame.status().code() == StatusCode::kAborted ? 0 : 2;
    }
    switch (frame->type) {
      case ProcMsgType::kShutdown:
        return 0;
      case ProcMsgType::kPing:
        if (!AnswerPing(channel, *frame).ok()) return 2;
        break;
      case ProcMsgType::kRunTrial: {
        Result<RunTrialMsg> request = DecodeRunTrial(frame->payload);
        if (!request.ok()) {
          (void)channel.Write(ProcMsgType::kError,
                              EncodeError(request.status()));
          return 2;
        }
        // Fault injection happens mid-trial, after the request is accepted:
        // the engine has committed to this trial and observes a genuine
        // mid-trial death or hang.
        if (HitsPeriod(request->trial_index, spec.crash_period)) {
          std::abort();
        }
        if (HitsPeriod(request->trial_index, spec.hang_period)) {
          HangForever();
        }
        if (host.trial_delay_us > 0) {
          // Simulated slow host (see SubjectHostOptions): charged inside
          // the trial so the engine-side deadline still covers it.
          std::this_thread::sleep_for(
              std::chrono::microseconds(host.trial_delay_us));
        }
        subject.target->SeekTrial(request->trial_index);
        Result<TargetRunResult> result =
            subject.target->RunIntervened(request->intervened, 1);
        if (!result.ok()) {
          // Subject-level error: report and keep serving (the engine decides
          // whether to fail the discovery run).
          if (!channel.Write(ProcMsgType::kError,
                             EncodeError(result.status()))
                   .ok()) {
            return 2;
          }
          break;
        }
        if (result->logs.empty()) {
          if (!channel.Write(ProcMsgType::kError,
                             EncodeError(Status::Internal(
                                 "subject host: target produced no log")))
                   .ok()) {
            return 2;
          }
          break;
        }
        if (!SendTrialAnswer(channel, result->logs.front()).ok()) return 2;
        break;
      }
      default:
        (void)channel.Write(
            ProcMsgType::kError,
            EncodeError(Status::InvalidArgument(
                "subject host: unexpected frame " +
                std::string(ProcMsgTypeName(frame->type)))));
        return 2;
    }
  }
#endif  // AID_PROC_SUPPORTED
}

int RunSubjectHost(int in_fd, int out_fd, const SubjectHostOptions& host) {
  PipeChannel channel(in_fd, out_fd, /*owns_fds=*/false);
  return RunSubjectHost(channel, host);
}

}  // namespace aid
