#include "proc/subject_host.h"

#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

#include "analysis/analyzer.h"
#include "casestudies/case_study.h"
#include "common/logging.h"
#include "core/vm_target.h"
#include "proc/wire.h"
#include "synth/flaky_target.h"
#include "telemetry/json.h"

#if AID_PROC_SUPPORTED
#include <unistd.h>
#endif

namespace aid {
namespace {

/// Owns whatever the spec's target borrows (a case study's program) next to
/// the target itself, in destruction-safe order.
struct HostSubject {
  std::unique_ptr<CaseStudy> study;
  std::unique_ptr<ReplicableTarget> target;
  size_t catalog_size = 0;
};

Result<HostSubject> BuildHostSubject(const OwnedSubjectSpec& spec) {
  HostSubject subject;
  switch (spec.kind) {
    case SubjectKind::kModel:
    case SubjectKind::kFlakyModel: {
      if (spec.model == nullptr) {
        return Status::InvalidArgument("subject host: spec carries no model");
      }
      AID_ASSIGN_OR_RETURN(subject.target, BuildSubjectTarget(spec));
      subject.catalog_size = spec.model->catalog().size();
      return subject;
    }
    case SubjectKind::kCase: {
      AID_ASSIGN_OR_RETURN(CaseStudy study, MakeCaseStudyByKey(spec.case_key));
      subject.study = std::make_unique<CaseStudy>(std::move(study));
      AID_ASSIGN_OR_RETURN(
          std::unique_ptr<VmTarget> target,
          VmTarget::Create(&subject.study->program,
                           subject.study->target_options));
      subject.catalog_size = target->extractor().catalog().size();
      subject.target = std::move(target);
      return subject;
    }
    case SubjectKind::kVmProgram: {
      if (spec.program == nullptr) {
        return Status::InvalidArgument("subject host: spec carries no program");
      }
      // Pre-execution lint on every wire-received program, regardless of
      // the spec's analysis options: undefined registers, unreachable
      // predicate sites, out-of-range targets and the like become a
      // structured ERROR frame here instead of a child crash mid-scan.
      const ProgramAnalysis analysis =
          ProgramAnalysis::Analyze(*spec.program);
      AID_RETURN_IF_ERROR(analysis.LintStatus());
      AID_ASSIGN_OR_RETURN(std::unique_ptr<VmTarget> target,
                           VmTarget::Create(spec.program.get(), spec.vm));
      subject.catalog_size = target->extractor().catalog().size();
      subject.target = std::move(target);
      return subject;
    }
  }
  return Status::InvalidArgument("subject host: unknown subject kind");
}

/// Poisoned-trial check: 1-based global trial index hits the period.
bool HitsPeriod(uint64_t trial_index, uint64_t period) {
  return period != 0 && (trial_index + 1) % period == 0;
}

[[noreturn]] void HangForever() {
  // A deliberately wedged subject: the paper's hung-subject scenario. The
  // parent's per-trial deadline is the only way out (SIGKILL).
  for (;;) std::this_thread::sleep_for(std::chrono::hours(24));
}

/// Microseconds on the host's steady clock (CLOCK_MONOTONIC; shared by
/// every process on the machine, which is what lets the runner daemon's
/// start time be compared against a child's now).
uint64_t HostNowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Status SendTrialAnswer(FrameChannel& channel, const PredicateLog& log,
                       bool with_telemetry, uint64_t host_recv_us,
                       std::vector<WireHostSpan> host_spans) {
  for (const auto& [id, observation] : log.observed) {
    TraceEventMsg event;
    event.predicate = id;
    event.start = observation.start;
    event.end = observation.end;
    AID_RETURN_IF_ERROR(
        channel.Write(ProcMsgType::kTraceEvent, EncodeTraceEvent(event)));
  }
  VerdictMsg verdict;
  verdict.failed = log.failed;
  if (with_telemetry) {
    // The engine asked for span context on the RUN_TRIAL; answer with the
    // host-side spans in OUR clock domain, anchored on the receive
    // timestamp the engine re-bases against (see proc/client.cc).
    verdict.has_host_telemetry = true;
    verdict.host_recv_us = host_recv_us;
    verdict.host_spans = std::move(host_spans);
  }
  return channel.Write(ProcMsgType::kVerdict, EncodeVerdict(verdict));
}

/// Answers a STATS request with the self-describing JSON document of
/// `aid_runner --stats`: daemon uptime / session count (zeros when run
/// outside a daemon, e.g. under plain SubprocessTarget) plus the shared
/// trial totals and latency histogram of the whole fleet node.
Status AnswerStats(FrameChannel& channel, const SubjectHostOptions& host) {
  JsonWriter w;
  w.BeginObject();
  const uint64_t uptime_us =
      host.daemon_start_micros != 0 &&
              HostNowMicros() > host.daemon_start_micros
          ? HostNowMicros() - host.daemon_start_micros
          : 0;
  w.Key("uptime_seconds").U64(uptime_us / 1000000);
  w.Key("sessions_started").U64(host.daemon_sessions_started);
  uint64_t trials = 0;
  uint64_t failed = 0;
  uint64_t micros = 0;
  w.Key("trial_latency_us").BeginObject();
  w.Key("bounds").BeginArray();
  for (size_t i = 0; i < kLatencyBucketBoundCount; ++i) {
    w.U64(kLatencyBucketBoundsUs[i]);
  }
  w.EndArray();
  w.Key("buckets").BeginArray();
  for (size_t i = 0; i <= kLatencyBucketBoundCount; ++i) {
    w.U64(host.shared_stats != nullptr
              ? host.shared_stats->latency_buckets[i].load(
                    std::memory_order_relaxed)
              : 0);
  }
  w.EndArray();
  w.EndObject();
  if (host.shared_stats != nullptr) {
    trials = host.shared_stats->trials.load(std::memory_order_relaxed);
    failed = host.shared_stats->failed_trials.load(std::memory_order_relaxed);
    micros = host.shared_stats->trial_micros.load(std::memory_order_relaxed);
  }
  w.Key("trials").U64(trials);
  w.Key("failed_trials").U64(failed);
  w.Key("trial_micros_total").U64(micros);
  w.EndObject();
  StatsReplyMsg reply;
  reply.json = w.str();
  return channel.Write(ProcMsgType::kStatsReply, EncodeStatsReply(reply));
}

/// Answers a PING by echoing its token back (v2 keepalive). A garbled PING
/// still gets a PONG (token 0): liveness is the point, not the payload.
Status AnswerPing(FrameChannel& channel, const ProcFrame& frame) {
  PingMsg pong;
  if (Result<PingMsg> ping = DecodePing(frame.payload); ping.ok()) {
    pong.token = ping->token;
  }
  return channel.Write(ProcMsgType::kPong, EncodePing(pong));
}

}  // namespace

void SharedHostStats::RecordTrial(uint64_t micros, bool failed) {
  trials.fetch_add(1, std::memory_order_relaxed);
  if (failed) failed_trials.fetch_add(1, std::memory_order_relaxed);
  trial_micros.fetch_add(micros, std::memory_order_relaxed);
  size_t bucket = kLatencyBucketBoundCount;  // +Inf overflow
  for (size_t i = 0; i < kLatencyBucketBoundCount; ++i) {
    if (micros <= kLatencyBucketBoundsUs[i]) {
      bucket = i;
      break;
    }
  }
  latency_buckets[bucket].fetch_add(1, std::memory_order_relaxed);
}

Result<std::unique_ptr<ReplicableTarget>> BuildSubjectTarget(
    const OwnedSubjectSpec& spec) {
  switch (spec.kind) {
    case SubjectKind::kModel:
      return std::unique_ptr<ReplicableTarget>(
          std::make_unique<ModelTarget>(spec.model.get()));
    case SubjectKind::kFlakyModel:
      return std::unique_ptr<ReplicableTarget>(
          std::make_unique<FlakyModelTarget>(
              spec.model.get(), spec.manifest_probability, spec.flaky_seed));
    case SubjectKind::kCase: {
      // Callers who need the study kept alive use BuildHostSubject; this
      // entry point only serves specs whose subject is self-contained.
      return Status::InvalidArgument(
          "BuildSubjectTarget: case subjects own their program; use "
          "RunSubjectHost");
    }
    case SubjectKind::kVmProgram: {
      AID_ASSIGN_OR_RETURN(std::unique_ptr<VmTarget> target,
                           VmTarget::Create(spec.program.get(), spec.vm));
      return std::unique_ptr<ReplicableTarget>(std::move(target));
    }
  }
  return Status::InvalidArgument("BuildSubjectTarget: unknown subject kind");
}

int RunSubjectHost(FrameChannel& channel, const SubjectHostOptions& host) {
#if !AID_PROC_SUPPORTED
  (void)channel;
  (void)host;
  return 3;
#else
  HelloMsg hello;
  hello.pid = static_cast<uint64_t>(::getpid());
  if (!channel.Write(ProcMsgType::kHello, EncodeHello(hello)).ok()) {
    return 2;
  }

  // SPEC -> build -> READY (or ERROR and exit).
  OwnedSubjectSpec spec;
  HostSubject subject;
  for (;;) {
    Result<ProcFrame> frame = channel.Read();
    if (!frame.ok()) return 2;
    if (frame->type == ProcMsgType::kShutdown) return 0;
    if (frame->type == ProcMsgType::kPing) {
      if (!AnswerPing(channel, *frame).ok()) return 2;
      continue;
    }
    if (frame->type == ProcMsgType::kStats) {
      // Stats connections never send a SPEC: answer and keep waiting (the
      // client follows up with SHUTDOWN or just closes).
      if (!AnswerStats(channel, host).ok()) return 2;
      continue;
    }
    if (frame->type != ProcMsgType::kSpec) {
      (void)channel.Write(
          ProcMsgType::kError,
          EncodeError(Status::InvalidArgument(
              "subject host: expected SPEC, got " +
              std::string(ProcMsgTypeName(frame->type)))));
      return 2;
    }
    Result<OwnedSubjectSpec> decoded = DecodeSubjectSpec(frame->payload);
    if (!decoded.ok()) {
      (void)channel.Write(ProcMsgType::kError, EncodeError(decoded.status()));
      return 2;
    }
    spec = std::move(decoded).value();
    Result<HostSubject> built = BuildHostSubject(spec);
    if (!built.ok()) {
      (void)channel.Write(ProcMsgType::kError, EncodeError(built.status()));
      return 2;
    }
    subject = std::move(built).value();
    ReadyMsg ready;
    ready.catalog_size = static_cast<uint32_t>(subject.catalog_size);
    if (!channel.Write(ProcMsgType::kReady, EncodeReady(ready)).ok()) {
      return 2;
    }
    break;
  }

  // Trial loop.
  for (;;) {
    Result<ProcFrame> frame = channel.Read();
    if (!frame.ok()) {
      // EOF: the engine died or dropped us; exiting is the clean response.
      return frame.status().code() == StatusCode::kAborted ? 0 : 2;
    }
    switch (frame->type) {
      case ProcMsgType::kShutdown:
        return 0;
      case ProcMsgType::kPing:
        if (!AnswerPing(channel, *frame).ok()) return 2;
        break;
      case ProcMsgType::kStats:
        if (!AnswerStats(channel, host).ok()) return 2;
        break;
      case ProcMsgType::kRunTrial: {
        const uint64_t recv_us = HostNowMicros();
        Result<RunTrialMsg> request = DecodeRunTrial(frame->payload);
        if (!request.ok()) {
          (void)channel.Write(ProcMsgType::kError,
                              EncodeError(request.status()));
          return 2;
        }
        // Fault injection happens mid-trial, after the request is accepted:
        // the engine has committed to this trial and observes a genuine
        // mid-trial death or hang.
        if (HitsPeriod(request->trial_index, spec.crash_period)) {
          std::abort();
        }
        if (HitsPeriod(request->trial_index, spec.hang_period)) {
          HangForever();
        }
        if (host.trial_delay_us > 0) {
          // Simulated slow host (see SubjectHostOptions): charged inside
          // the trial so the engine-side deadline still covers it.
          std::this_thread::sleep_for(
              std::chrono::microseconds(host.trial_delay_us));
        }
        const uint64_t run_start_us = HostNowMicros();
        subject.target->SeekTrial(request->trial_index);
        Result<TargetRunResult> result =
            subject.target->RunIntervened(request->intervened, 1);
        const uint64_t run_end_us = HostNowMicros();
        if (!result.ok()) {
          // Subject-level error: report and keep serving (the engine decides
          // whether to fail the discovery run).
          if (host.shared_stats != nullptr) {
            host.shared_stats->RecordTrial(run_end_us - recv_us,
                                           /*failed=*/true);
          }
          if (!channel.Write(ProcMsgType::kError,
                             EncodeError(result.status()))
                   .ok()) {
            return 2;
          }
          break;
        }
        if (result->logs.empty()) {
          if (!channel.Write(ProcMsgType::kError,
                             EncodeError(Status::Internal(
                                 "subject host: target produced no log")))
                   .ok()) {
            return 2;
          }
          break;
        }
        if (host.shared_stats != nullptr) {
          host.shared_stats->RecordTrial(run_end_us - recv_us,
                                         result->logs.front().failed);
        }
        // Host-side spans, sent back only when the engine propagated span
        // context on the request: host.trial covers the whole request
        // handling (delay injection included), host.subject_run just the
        // subject's execution. Times stay in this host's clock domain.
        std::vector<WireHostSpan> host_spans;
        if (request->has_span_context) {
          host_spans.push_back(
              WireHostSpan{"host.trial", recv_us, run_end_us});
          host_spans.push_back(
              WireHostSpan{"host.subject_run", run_start_us, run_end_us});
        }
        if (!SendTrialAnswer(channel, result->logs.front(),
                             request->has_span_context, recv_us,
                             std::move(host_spans))
                 .ok()) {
          return 2;
        }
        break;
      }
      default:
        (void)channel.Write(
            ProcMsgType::kError,
            EncodeError(Status::InvalidArgument(
                "subject host: unexpected frame " +
                std::string(ProcMsgTypeName(frame->type)))));
        return 2;
    }
  }
#endif  // AID_PROC_SUPPORTED
}

int RunSubjectHost(int in_fd, int out_fd, const SubjectHostOptions& host) {
  PipeChannel channel(in_fd, out_fd, /*owns_fds=*/false);
  return RunSubjectHost(channel, host);
}

}  // namespace aid
