// "BuildAndTest": the large-scale build-and-test platform (paper Section
// 7.1.4). Root cause: an order violation between two events -- the test
// runner starts consuming the build artifact before the publisher has
// finished publishing it. When the publisher is slow, the fetch reads an
// empty artifact and verification fails.

#include "casestudies/case_study.h"

namespace aid {

Result<CaseStudy> MakeBuildAndTestOrder() {
  ProgramBuilder b;
  b.Global("artifact_ready", 0);
  b.Global("artifact_data", 0);

  {
    auto m = b.Method("Main");
    m.Spawn(0, "Publisher").Spawn(1, "TestRunner").Join(0).Join(1).Return();
  }
  {
    // Publishing takes 8 (warm cache) or 48 (cold cache) ticks.
    auto m = b.Method("Publisher");
    m.Random(0, 2);
    const size_t slow = m.JumpIfNonZeroPlaceholder(0);
    m.Delay(8);
    const size_t publish = m.JumpPlaceholder();
    m.PatchTarget(slow);
    m.Delay(48);
    m.PatchTarget(publish);
    m.LoadConst(1, 99)
        .StoreGlobal("artifact_data", 1)
        .LoadConst(2, 1)
        .StoreGlobal("artifact_ready", 2)
        .Return();
  }
  {
    // The test runner starts on its own schedule (the order bug): it never
    // waits for the publisher. Writes test reports, hence not s.e.f.
    auto m = b.Method("TestRunner");
    m.Delay(24)
        .Call(0, "FetchArtifact")
        .Call(1, "ReadBuildNumber")
        .CallVoid("VerifyArtifact")
        .Return();
  }
  {
    auto m = b.Method("FetchArtifact");
    m.SideEffectFree();
    m.LoadGlobal(0, "artifact_data").Return(0);  // 99 when published
  }
  {
    auto m = b.Method("ReadBuildNumber");
    m.SideEffectFree();
    m.LoadGlobal(0, "artifact_ready")
        .LoadConst(1, 7)
        .Mul(2, 0, 1)
        .AddImm(3, 2, 3)
        .Return(3);  // 10 when published, 3 before
  }
  {
    auto m = b.Method("VerifyArtifact");
    m.SideEffectFree();
    m.LoadGlobal(0, "artifact_ready")
        .ThrowIfZero(0, "ArtifactMissingException")
        .Return(0);
  }

  AID_ASSIGN_OR_RETURN(Program program, b.Build("Main"));

  CaseStudy study;
  study.name = "BuildAndTest";
  study.origin = "proprietary build-and-test platform";
  study.root_cause =
      "order violation: tests fetch the artifact before the publisher "
      "finishes publishing it";
  study.paper = {.sd_predicates = 25,
                 .causal_path = 3,
                 .aid_interventions = 10,
                 .tagt_interventions = 15};
  study.program = std::move(program);
  study.expected_root_substring = "starts before Publisher finishes";
  return study;
}

}  // namespace aid
