// "Network": the data-center network control plane (paper Section 7.1.4).
//
// The paper reports the root cause as a random number collision. Two
// services allocate random identifiers concurrently; when the identifiers
// collide, registry validation fails and the control plane crashes. The
// root-cause predicate is the return-value collision between the two
// allocators; the repair steers the second allocator away from the first
// allocator's value.

#include "casestudies/case_study.h"

namespace aid {

Result<CaseStudy> MakeNetworkCollision() {
  ProgramBuilder b;
  b.Global("id_a", -1);
  b.Global("id_b", -1);

  {
    auto m = b.Method("Main");
    m.Spawn(0, "ServiceA")
        .Spawn(1, "ServiceB")
        .Join(0)
        .Join(1)
        .Call(2, "CheckDistinct")
        .Call(3, "CountHealthy")
        .CallVoid("ValidateRegistry")
        .Return();
  }
  {
    auto m = b.Method("ServiceA");
    m.Call(0, "AllocateIdA").StoreGlobal("id_a", 0).Return();
  }
  {
    auto m = b.Method("ServiceB");
    m.Call(0, "AllocateIdB").StoreGlobal("id_b", 0).Return();
  }
  {
    auto m = b.Method("AllocateIdA");
    m.SideEffectFree();
    m.DelayRand(2, 6).Random(0, 4).Return(0);
  }
  {
    auto m = b.Method("AllocateIdB");
    m.SideEffectFree();
    m.DelayRand(2, 6).Random(0, 4).Return(0);
  }
  {
    // Read-only probe: 1 when the ids are distinct (the healthy value).
    auto m = b.Method("CheckDistinct");
    m.SideEffectFree();
    m.LoadGlobal(0, "id_a")
        .LoadGlobal(1, "id_b")
        .CmpEq(2, 0, 1)
        .LoadConst(3, 1)
        .Sub(4, 3, 2)
        .Return(4);
  }
  {
    // Another probe, deliberately *not* side-effect-free: SD sees its wrong
    // return, but AID must exclude it from the AC-DAG (Section 3.3).
    auto m = b.Method("CountHealthy");
    m.LoadGlobal(0, "id_a")
        .LoadGlobal(1, "id_b")
        .CmpEq(2, 0, 1)
        .LoadConst(3, 2)
        .Sub(4, 3, 2)
        .Return(4);  // 2 healthy, 1 on collision
  }
  {
    // Registry commit: mutates external state, hence not intervenable.
    auto m = b.Method("ValidateRegistry");
    m.LoadGlobal(0, "id_a")
        .LoadGlobal(1, "id_b")
        .CmpEq(2, 0, 1)
        .ThrowIfNonZero(2, "RegistrationConflict")
        .Return();
  }

  AID_ASSIGN_OR_RETURN(Program program, b.Build("Main"));

  CaseStudy study;
  study.name = "Network";
  study.origin = "proprietary data-center network control plane";
  study.root_cause = "random identifier collision between two services";
  study.paper = {.sd_predicates = 24,
                 .causal_path = 1,
                 .aid_interventions = 2,
                 .tagt_interventions = 5};
  study.program = std::move(program);
  study.target_options.extraction.return_equals = true;
  study.expected_root_substring = "return the same value";
  return study;
}

}  // namespace aid
