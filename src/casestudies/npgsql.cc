// Npgsql GitHub issue #2485 (paper Section 7.1.1, Figure 9).
//
// A data race on the array-index variable `_nextSlot`: GetOrAdd increments
// the index and only later resizes `_pools`, while the lock-free
// TryGetValue reads the index and immediately dereferences the array. When
// the read lands inside GetOrAdd's increment-to-resize window, TryGetValue
// indexes one past the array bound and the resulting IndexOutOfRange
// exception crashes the connection-opening thread.
//
// Thread start offsets are drawn from coarse discrete grids so the racing
// window either clearly overlaps (deterministic failure) or stays clearly
// apart (deterministic success) regardless of scheduler jitter -- this is
// what makes the race predicate fully discriminative, as in the paper's
// Figure 9(c).

#include "casestudies/case_study.h"

namespace aid {

Result<CaseStudy> MakeNpgsqlRace() {
  ProgramBuilder b;
  b.Global("_nextSlot", 4);
  b.Array("_pools", 4);

  {
    auto m = b.Method("Main");
    m.Spawn(0, "Opener")
        .Spawn(1, "Expander")
        .Spawn(2, "Watchdog")
        .Spawn(3, "MetricsFlusher")
        .Join(0)
        .Join(1)
        .Return();
  }
  {
    // Opener waits 0, 50, or 140 ticks, then opens a connection.
    auto m = b.Method("Opener");
    m.Random(0, 3);
    m.LoadConst(1, 1).CmpEq(2, 0, 1);
    const size_t to_mid = m.JumpIfNonZeroPlaceholder(2);
    m.LoadConst(1, 2).CmpEq(2, 0, 1);
    const size_t to_late = m.JumpIfNonZeroPlaceholder(2);
    const size_t to_call_a = m.JumpPlaceholder();
    m.PatchTarget(to_mid);
    m.Delay(60);
    const size_t to_call_b = m.JumpPlaceholder();
    m.PatchTarget(to_late);
    m.Delay(150);
    m.PatchTarget(to_call_a).PatchTarget(to_call_b);
    m.Call(3, "TryGetValue").Return(3);
  }
  {
    // Expander grows the pool after 45 or 135 ticks.
    auto m = b.Method("Expander");
    m.Random(0, 2);
    const size_t slow = m.JumpIfNonZeroPlaceholder(0);
    m.Delay(45);
    const size_t go = m.JumpPlaceholder();
    m.PatchTarget(slow);
    m.Delay(135);
    m.PatchTarget(go);
    m.CallVoid("GetOrAdd").Return();
  }
  {
    // Figure 9(a): lock-free read of _nextSlot, then the array access.
    auto m = b.Method("TryGetValue");
    m.SideEffectFree();
    m.LoadGlobal(0, "_nextSlot")
        .AddImm(1, 0, -1)
        .ArrayLoad(2, "_pools", 1)  // IndexOutOfRange when the index is stale
        .Return(2);
  }
  {
    // Figure 9(a): increment first, resize (much) later.
    auto m = b.Method("GetOrAdd");
    m.LoadGlobal(0, "_nextSlot")
        .AddImm(1, 0, 1)
        .StoreGlobal("_nextSlot", 1)
        .Delay(30)  // the danger window: index published, array still small
        .LoadConst(2, 8)
        .ArrayResize("_pools", 2)
        .LoadConst(3, 42)
        .ArrayStore("_pools", 0, 3)
        .Return(1);
  }
  {
    auto m = b.Method("Watchdog");
    m.Delay(400).LoadGlobal(0, "_nextSlot").Return(0);
  }
  {
    auto m = b.Method("MetricsFlusher");
    m.Delay(500).Return();
  }

  AID_ASSIGN_OR_RETURN(Program program, b.Build("Main"));

  CaseStudy study;
  study.name = "Npgsql";
  study.origin = "Npgsql GitHub issue #2485";
  study.root_cause =
      "data race on the _nextSlot index: a thread reads the incremented "
      "index before the backing array is resized and accesses beyond the "
      "array bound";
  study.paper = {.sd_predicates = 14,
                 .causal_path = 3,
                 .aid_interventions = 5,
                 .tagt_interventions = 11};
  study.program = std::move(program);
  // Canonical race naming orders the methods by interning id.
  study.expected_root_substring = "data race between TryGetValue and GetOrAdd";
  return study;
}

}  // namespace aid
