// "HealthTelemetry": the runtime-health reporting module (paper Section
// 7.1.4). Root cause: a race condition -- two reporters perform an unlocked
// read-modify-write on the metric counter; when their windows interleave,
// one update is lost. The corrupted count then flows through a seven-stage
// aggregation pipeline, and the final report validation throws. The long
// pipeline gives the paper's longest causal path (10 predicates).

#include "casestudies/case_study.h"

#include "common/strings.h"

namespace aid {

Result<CaseStudy> MakeHealthTelemetryRace() {
  ProgramBuilder b;
  b.Global("metric_count", 0);

  {
    auto m = b.Method("Main");
    m.Spawn(0, "Reporter1").Spawn(1, "Reporter2").Join(0).Join(1);
    for (int i = 1; i <= 8; ++i) {
      m.CallVoid(StrFormat("Probe%d", i));
    }
    m.Call(2, "ValidateReport").Return(2);
  }
  {
    // Reporter1 reports at offset 2 or 36; Reporter2 at 36 or 70. Only the
    // (36, 36) combination overlaps the read-modify-write windows.
    auto m = b.Method("Reporter1");
    m.Random(0, 2);
    const size_t late = m.JumpIfNonZeroPlaceholder(0);
    m.Delay(2);
    const size_t go = m.JumpPlaceholder();
    m.PatchTarget(late);
    m.Delay(36);
    m.PatchTarget(go);
    m.CallVoid("Report").Return();
  }
  {
    auto m = b.Method("Reporter2");
    m.Random(0, 2);
    const size_t late = m.JumpIfNonZeroPlaceholder(0);
    m.Delay(36);
    const size_t go = m.JumpPlaceholder();
    m.PatchTarget(late);
    m.Delay(70);
    m.PatchTarget(go);
    m.CallVoid("Report").Return();
  }
  {
    // Unlocked read-modify-write; the delay widens the lost-update window.
    auto m = b.Method("Report");
    m.LoadGlobal(0, "metric_count")
        .Delay(6)
        .AddImm(1, 0, 1)
        .StoreGlobal("metric_count", 1)
        .Return(1);
  }
  // Read-only probes: symptoms of the corrupted counter.
  for (int i = 1; i <= 8; ++i) {
    auto m = b.Method(StrFormat("Probe%d", i));
    m.SideEffectFree();
    m.LoadGlobal(0, "metric_count").AddImm(1, 0, 10 * i).Return(1);
  }
  {
    auto m = b.Method("GetCount");
    m.SideEffectFree();
    m.LoadGlobal(0, "metric_count").Return(0);  // 2 when both updates land
  }
  // Aggregation pipeline: Stage1 .. Stage7, each adds one to the previous.
  for (int i = 1; i <= 7; ++i) {
    auto m = b.Method(StrFormat("Stage%d", i));
    m.SideEffectFree();
    m.Call(0, i == 1 ? std::string("GetCount") : StrFormat("Stage%d", i - 1))
        .AddImm(1, 0, 1)
        .Return(1);
  }
  {
    // The healthy report value is 2 + 7 = 9.
    auto m = b.Method("ValidateReport");
    m.SideEffectFree();
    m.Call(0, "Stage7")
        .LoadConst(1, 9)
        .CmpEq(2, 0, 1)
        .ThrowIfZero(2, "TelemetryMismatchException")
        .Return(0);
  }

  AID_ASSIGN_OR_RETURN(Program program, b.Build("Main"));

  CaseStudy study;
  study.name = "HealthTelemetry";
  study.origin = "proprietary service-health telemetry module";
  study.root_cause =
      "race condition: unlocked read-modify-write on the metric counter "
      "loses an update, corrupting the aggregation pipeline";
  study.paper = {.sd_predicates = 93,
                 .causal_path = 10,
                 .aid_interventions = 40,
                 .tagt_interventions = 70};
  study.program = std::move(program);
  study.target_options.extraction.duration_slack = 4;
  study.expected_root_substring = "between Report and Report";
  return study;
}

}  // namespace aid
