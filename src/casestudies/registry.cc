#include "casestudies/case_study.h"

namespace aid {

Result<std::vector<CaseStudy>> AllCaseStudies() {
  std::vector<CaseStudy> studies;
  {
    AID_ASSIGN_OR_RETURN(CaseStudy study, MakeNpgsqlRace());
    studies.push_back(std::move(study));
  }
  {
    AID_ASSIGN_OR_RETURN(CaseStudy study, MakeKafkaUseAfterFree());
    studies.push_back(std::move(study));
  }
  {
    AID_ASSIGN_OR_RETURN(CaseStudy study, MakeCosmosDbCacheExpiry());
    studies.push_back(std::move(study));
  }
  {
    AID_ASSIGN_OR_RETURN(CaseStudy study, MakeNetworkCollision());
    studies.push_back(std::move(study));
  }
  {
    AID_ASSIGN_OR_RETURN(CaseStudy study, MakeBuildAndTestOrder());
    studies.push_back(std::move(study));
  }
  {
    AID_ASSIGN_OR_RETURN(CaseStudy study, MakeHealthTelemetryRace());
    studies.push_back(std::move(study));
  }
  return studies;
}

}  // namespace aid
