#include "casestudies/case_study.h"

namespace aid {

Result<CaseStudy> MakeCaseStudyByKey(const std::string& key) {
  if (key == "npgsql") return MakeNpgsqlRace();
  if (key == "kafka") return MakeKafkaUseAfterFree();
  if (key == "cosmosdb") return MakeCosmosDbCacheExpiry();
  if (key == "network") return MakeNetworkCollision();
  if (key == "buildandtest") return MakeBuildAndTestOrder();
  if (key == "healthtelemetry") return MakeHealthTelemetryRace();
  return Status::NotFound("unknown case study '" + key +
                          "' (expected npgsql, kafka, cosmosdb, network, "
                          "buildandtest, or healthtelemetry)");
}

const std::vector<std::string>& CaseStudyKeys() {
  static const std::vector<std::string>* keys = new std::vector<std::string>{
      "npgsql", "kafka",        "cosmosdb",
      "network", "buildandtest", "healthtelemetry"};
  return *keys;
}

Result<std::vector<CaseStudy>> AllCaseStudies() {
  std::vector<CaseStudy> studies;
  {
    AID_ASSIGN_OR_RETURN(CaseStudy study, MakeNpgsqlRace());
    studies.push_back(std::move(study));
  }
  {
    AID_ASSIGN_OR_RETURN(CaseStudy study, MakeKafkaUseAfterFree());
    studies.push_back(std::move(study));
  }
  {
    AID_ASSIGN_OR_RETURN(CaseStudy study, MakeCosmosDbCacheExpiry());
    studies.push_back(std::move(study));
  }
  {
    AID_ASSIGN_OR_RETURN(CaseStudy study, MakeNetworkCollision());
    studies.push_back(std::move(study));
  }
  {
    AID_ASSIGN_OR_RETURN(CaseStudy study, MakeBuildAndTestOrder());
    studies.push_back(std::move(study));
  }
  {
    AID_ASSIGN_OR_RETURN(CaseStudy study, MakeHealthTelemetryRace());
    studies.push_back(std::move(study));
  }
  return studies;
}

}  // namespace aid
