#include "casestudies/pipeline.h"

#include "sd/statistical_debugger.h"

namespace aid {

Result<PipelineOutcome> RunPipeline(const CaseStudy& study,
                                    const PipelineConfig& config) {
  AID_ASSIGN_OR_RETURN(std::unique_ptr<VmTarget> target,
                       VmTarget::Create(&study.program, study.target_options));

  AID_ASSIGN_OR_RETURN(StatisticalDebugger sd,
                       StatisticalDebugger::Analyze(
                           target->extractor().catalog(),
                           target->extractor().logs()));

  PipelineOutcome outcome;
  outcome.fully_discriminative =
      static_cast<int>(sd.FullyDiscriminative().size());

  AID_ASSIGN_OR_RETURN(AcDag dag, target->BuildAcDag());
  outcome.acdag_nodes = static_cast<int>(dag.size());

  {
    CausalPathDiscovery discovery(&dag, target.get(), config.aid);
    AID_ASSIGN_OR_RETURN(outcome.aid, discovery.Run());
  }
  if (config.run_tagt) {
    CausalPathDiscovery discovery(&dag, target.get(), config.tagt);
    AID_ASSIGN_OR_RETURN(outcome.tagt, discovery.Run());
  }

  const PredicateCatalog& catalog = target->extractor().catalog();
  const SymbolTable* methods = &study.program.method_names();
  const SymbolTable* objects = &study.program.object_names();
  if (outcome.aid.root_cause() != kInvalidPredicate) {
    outcome.root_cause =
        catalog.Describe(outcome.aid.root_cause(), methods, objects);
  }
  for (PredicateId id : outcome.aid.causal_path) {
    outcome.causal_path.push_back(catalog.Describe(id, methods, objects));
  }
  return outcome;
}

}  // namespace aid
