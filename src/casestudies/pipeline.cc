#include "casestudies/pipeline.h"

#include <utility>

#include "api/session.h"

namespace aid {

// The deprecated entry point itself; silence the self-referential warning.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

Result<PipelineOutcome> RunPipeline(const CaseStudy& study,
                                    const PipelineConfig& config) {
  SessionBuilder builder;
  builder.WithProgram(&study.program, study.target_options)
      .WithEngineOptions(config.aid);
  if (config.run_tagt) builder.WithTagtBaselineOptions(config.tagt);
  AID_ASSIGN_OR_RETURN(Session session, builder.Build());
  AID_ASSIGN_OR_RETURN(SessionReport report, session.Run());

  PipelineOutcome outcome;
  outcome.fully_discriminative = report.sd_predicates;
  outcome.acdag_nodes = report.acdag_nodes;
  outcome.aid = std::move(report.discovery);
  if (report.tagt_baseline.has_value()) {
    outcome.tagt = std::move(*report.tagt_baseline);
  }
  outcome.root_cause = std::move(report.root_cause);
  outcome.causal_path = std::move(report.causal_path);
  return outcome;
}

#pragma GCC diagnostic pop

}  // namespace aid
