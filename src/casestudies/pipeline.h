// DEPRECATED end-to-end pipeline driver for a case study.
//
// RunPipeline predates aid::Session (api/session.h), which now owns the
// observe -> SD -> AC-DAG -> intervention workflow for every backend. This
// header remains as a thin shim so existing callers keep working; new code
// should build a Session:
//
//   aid::SessionBuilder()
//       .WithProgram(&study.program, study.target_options)
//       .WithEngineOptions(config.aid)
//       .WithTagtBaselineOptions(config.tagt)
//       .Build();

#ifndef AID_CASESTUDIES_PIPELINE_H_
#define AID_CASESTUDIES_PIPELINE_H_

#include <string>
#include <vector>

#include "casestudies/case_study.h"
#include "core/engine.h"

namespace aid {

struct PipelineOutcome {
  /// Measured statistics.
  int fully_discriminative = 0;  ///< SD output size (the paper's column 3)
  int acdag_nodes = 0;           ///< after safety + reachability filtering
  DiscoveryReport aid;
  DiscoveryReport tagt;
  /// Human-readable root cause and causal path (AID).
  std::string root_cause;
  std::vector<std::string> causal_path;

  int aid_path_len() const {
    // Predicates in the causal path, excluding F (the paper's column 4).
    return static_cast<int>(aid.causal_path.size()) - 1;
  }
};

struct PipelineConfig {
  EngineOptions aid = EngineOptions::Aid();
  EngineOptions tagt = EngineOptions::Tagt();
  bool run_tagt = true;
};

/// Runs the whole pipeline on one case study.
[[deprecated("use aid::SessionBuilder (api/session.h)")]]
Result<PipelineOutcome> RunPipeline(const CaseStudy& study,
                                    const PipelineConfig& config = {});

}  // namespace aid

#endif  // AID_CASESTUDIES_PIPELINE_H_
