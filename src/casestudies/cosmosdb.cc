// Azure Cosmos DB .NET SDK pull request #713 (paper Section 7.1.3).
//
// Timing bug: the application populates a cache whose entries expire after
// a fixed interval (the Janitor thread), runs a few tasks, and then reads a
// cached entry. A transient fault in Task2 triggers expensive fault
// handling that pushes the task sequence past the expiry, so the final
// lookup misses and the application crashes.
//
// The causal chain mirrors the paper's seven-step explanation: Task2 too
// slow -> RunTasks too slow -> the cache check chain returns stale results
// (CheckCache -> ValidateEntry -> FetchMetadata) -> GetCachedEntry throws.

#include "casestudies/case_study.h"

namespace aid {

Result<CaseStudy> MakeCosmosDbCacheExpiry() {
  ProgramBuilder b;
  b.Global("cache_valid", 0);

  {
    auto m = b.Method("Main");
    m.CallVoid("PopulateCache")
        .Spawn(0, "Janitor")
        .CallVoid("RunTasks")
        .CallVoid("VerifyFreshness")
        .CallVoid("ReadEntryAge")
        .Call(1, "GetCachedEntry")
        .Join(0)
        .Return(1);
  }
  {
    auto m = b.Method("PopulateCache");
    m.LoadConst(0, 1).StoreGlobal("cache_valid", 0).Return();
  }
  {
    // Cache TTL: entries expire 100 ticks after population.
    auto m = b.Method("Janitor");
    m.Delay(100).LoadConst(0, 0).StoreGlobal("cache_valid", 0).Return();
  }
  {
    auto m = b.Method("RunTasks");
    m.SideEffectFree();
    m.CallVoid("Task1").CallVoid("Task2").CallVoid("Task3").Return();
  }
  {
    auto m = b.Method("Task1");
    m.SideEffectFree();
    m.DelayRand(8, 14).Return();
  }
  {
    // Task2 occasionally hits a transient fault whose handling is costly.
    auto m = b.Method("Task2");
    m.SideEffectFree();
    m.Random(0, 6);
    const size_t no_fault = m.JumpIfNonZeroPlaceholder(0);
    m.CallVoid("HandleTransientFault");
    m.PatchTarget(no_fault);
    m.DelayRand(8, 14).Return();
  }
  {
    auto m = b.Method("HandleTransientFault");
    m.SideEffectFree();
    m.Delay(90).Return();
  }
  {
    auto m = b.Method("Task3");
    m.SideEffectFree();
    m.DelayRand(8, 14).Return();
  }
  {
    // Read-only freshness probes (symptoms, not causes).
    auto m = b.Method("VerifyFreshness");
    m.SideEffectFree();
    m.LoadGlobal(0, "cache_valid").AddImm(1, 0, 10).Return(1);  // 11 fresh
  }
  {
    auto m = b.Method("ReadEntryAge");
    m.SideEffectFree();
    m.LoadGlobal(0, "cache_valid").LoadConst(1, 5).Mul(2, 0, 1).Return(2);
  }
  {
    // The lookup chain: GetCachedEntry -> FetchMetadata -> ValidateEntry ->
    // CheckCache; each link propagates the staleness upward.
    auto m = b.Method("CheckCache");
    m.SideEffectFree();
    m.LoadGlobal(0, "cache_valid").Return(0);
  }
  {
    auto m = b.Method("ValidateEntry");
    m.SideEffectFree();
    m.Call(0, "CheckCache").Return(0);
  }
  {
    auto m = b.Method("FetchMetadata");
    m.SideEffectFree();
    m.Call(0, "ValidateEntry").Return(0);
  }
  {
    auto m = b.Method("GetCachedEntry");
    m.SideEffectFree();
    m.Call(0, "FetchMetadata")
        .ThrowIfZero(0, "CacheMissException")
        .LoadConst(1, 7)
        .Return(1);
  }

  AID_ASSIGN_OR_RETURN(Program program, b.Build("Main"));

  CaseStudy study;
  study.name = "CosmosDB";
  study.origin = "Azure Cosmos DB .NET SDK pull request #713";
  study.root_cause =
      "transient-fault handling makes Task2 outlive the cache expiry, so "
      "the entry is gone when the application finally reads it";
  study.paper = {.sd_predicates = 64,
                 .causal_path = 7,
                 .aid_interventions = 15,
                 .tagt_interventions = 42};
  study.program = std::move(program);
  study.expected_root_substring = "Task2 runs too slow";
  return study;
}

}  // namespace aid
