// The paper's six real-world case studies (Section 7.1, Figure 7), rebuilt
// as VM programs whose failure mechanisms match the reported bugs:
//
//   Npgsql #2485          data race on an array-index variable ->
//                         IndexOutOfRange -> crash
//   Kafka #279            consumer disposed by the main thread while a slow
//                         child still commits -> use-after-free exception
//   Cosmos DB #713        transient-fault handling makes a task outlive the
//                         cache expiry -> cache miss -> crash
//   Network (propr.)      random id collision between two services
//   BuildAndTest (propr.) tests start before the artifact is published
//   HealthTelemetry       lost update on a metric counter corrupts a
//   (propr.)              multi-stage aggregation pipeline
//
// Each case records the paper's Figure 7 numbers so benchmarks can print
// paper-vs-measured side by side.

#ifndef AID_CASESTUDIES_CASE_STUDY_H_
#define AID_CASESTUDIES_CASE_STUDY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/vm_target.h"
#include "runtime/program.h"

namespace aid {

/// The paper's Figure 7 row for one case study.
struct PaperNumbers {
  int sd_predicates = 0;     ///< column 3: #discriminative preds (SD)
  int causal_path = 0;       ///< column 4: #preds in causal path
  int aid_interventions = 0; ///< column 5
  int tagt_interventions = 0;///< column 6 (worst case)
};

struct CaseStudy {
  std::string name;
  std::string origin;      ///< e.g. "Npgsql GitHub issue #2485"
  std::string root_cause;  ///< the developers' explanation
  PaperNumbers paper;
  Program program;
  VmTargetOptions target_options;
  /// Substring expected in the description of the discovered root cause
  /// (used by tests to pin the qualitative outcome).
  std::string expected_root_substring;
};

Result<CaseStudy> MakeNpgsqlRace();
Result<CaseStudy> MakeKafkaUseAfterFree();
Result<CaseStudy> MakeCosmosDbCacheExpiry();
Result<CaseStudy> MakeNetworkCollision();
Result<CaseStudy> MakeBuildAndTestOrder();
Result<CaseStudy> MakeHealthTelemetryRace();

/// All six, in the paper's Figure 7 order.
Result<std::vector<CaseStudy>> AllCaseStudies();

/// The canonical key -> factory mapping ("npgsql", "kafka", "cosmosdb",
/// "network", "buildandtest", "healthtelemetry"). Both the TargetFactory
/// presets and the subprocess subject host resolve case studies through
/// this single registry, so a study added here is reachable from every
/// execution mode at once. NotFound for unknown keys.
Result<CaseStudy> MakeCaseStudyByKey(const std::string& key);
/// The keys MakeCaseStudyByKey accepts, in Figure 7 order.
const std::vector<std::string>& CaseStudyKeys();

}  // namespace aid

#endif  // AID_CASESTUDIES_CASE_STUDY_H_
