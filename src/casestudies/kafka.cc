// Kafka (confluent-kafka-dotnet) GitHub issue #279 (paper Section 7.1.2).
//
// Use-after-free: the main thread disposes the consumer on a fixed
// schedule; a child thread's work item sometimes runs long, and its commit
// then touches the disposed consumer, raising ObjectDisposedException.
//
// Causal story (paper): child runs too slow -> main disposes consumer ->
// child commits on disposed consumer -> exception -> crash. Between the
// slow work and the commit, several read-only status methods observe the
// disposed flag and return "wrong" values -- fully-discriminative symptoms
// that are *not* causes, which AID must prune (like P7/P10 in Figure 4).

#include "casestudies/case_study.h"

namespace aid {

Result<CaseStudy> MakeKafkaUseAfterFree() {
  ProgramBuilder b;
  b.Global("disposed", 0);

  {
    auto m = b.Method("Main");
    m.Spawn(0, "Worker")
        .Spawn(1, "LagMonitor")
        .Delay(90)
        .CallVoid("DisposeConsumer")
        .Join(0)
        .Return();
  }
  {
    auto m = b.Method("Worker");
    m.SideEffectFree();
    m.CallVoid("DoWork")
        .Call(1, "PrepareCommit")
        .Call(2, "CheckConnection")
        .Call(3, "GetRetryBudget")
        .CallVoid("CommitOffsets")
        .Return();
  }
  {
    // Work duration in {10, 30, 120, 140}: the slow half clearly outlives
    // the dispose at ~90, the fast half clearly finishes before it.
    auto m = b.Method("DoWork");
    m.SideEffectFree();
    m.Random(0, 4);
    m.LoadConst(1, 0).CmpEq(2, 0, 1);
    const size_t d10 = m.JumpIfNonZeroPlaceholder(2);
    m.LoadConst(1, 1).CmpEq(2, 0, 1);
    const size_t d30 = m.JumpIfNonZeroPlaceholder(2);
    m.LoadConst(1, 2).CmpEq(2, 0, 1);
    const size_t d120 = m.JumpIfNonZeroPlaceholder(2);
    m.Delay(140);
    const size_t end140 = m.JumpPlaceholder();
    m.PatchTarget(d10);
    m.Delay(10);
    const size_t end10 = m.JumpPlaceholder();
    m.PatchTarget(d30);
    m.Delay(30);
    const size_t end30 = m.JumpPlaceholder();
    m.PatchTarget(d120);
    m.Delay(120);
    m.PatchTarget(end140).PatchTarget(end10).PatchTarget(end30);
    m.Return();
  }
  {
    auto m = b.Method("DisposeConsumer");
    m.LoadConst(0, 1).StoreGlobal("disposed", 0).Return();
  }
  {
    // Read-only status probes: wrong values once the consumer is disposed.
    auto m = b.Method("PrepareCommit");
    m.SideEffectFree();
    m.LoadGlobal(0, "disposed").Return(0);  // 0 healthy, 1 disposed
  }
  {
    auto m = b.Method("CheckConnection");
    m.SideEffectFree();
    m.LoadGlobal(0, "disposed").LoadConst(1, 1).Sub(2, 1, 0).Return(2);
  }
  {
    auto m = b.Method("GetRetryBudget");
    m.SideEffectFree();
    m.LoadGlobal(0, "disposed")
        .LoadConst(1, 2)
        .Mul(2, 0, 1)
        .LoadConst(3, 5)
        .Sub(4, 3, 2)
        .Return(4);  // 5 healthy, 3 disposed
  }
  {
    auto m = b.Method("CommitOffsets");
    m.SideEffectFree();
    m.LoadGlobal(0, "disposed")
        .ThrowIfNonZero(0, "ObjectDisposedException")
        .LoadConst(1, 0)
        .Return(1);
  }
  {
    // Unrelated long-lived monitor; crashes cut it short (symptom only).
    auto m = b.Method("LagMonitor");
    m.Delay(400).LoadGlobal(0, "disposed").Return(0);
  }

  AID_ASSIGN_OR_RETURN(Program program, b.Build("Main"));

  CaseStudy study;
  study.name = "Kafka";
  study.origin = "confluent-kafka-dotnet GitHub issue #279";
  study.root_cause =
      "the child thread's work item runs too slow, the main thread disposes "
      "the consumer meanwhile, and the child's commit hits the disposed "
      "consumer";
  study.paper = {.sd_predicates = 72,
                 .causal_path = 5,
                 .aid_interventions = 17,
                 .tagt_interventions = 33};
  study.program = std::move(program);
  study.expected_root_substring = "DoWork runs too slow";
  return study;
}

}  // namespace aid
