#include "synth/model.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"

namespace aid {

PredicateId GroundTruthModel::AddPredicate(int index) {
  const PredicateId id = catalog_.Intern(
      Predicate{.kind = PredKind::kSynthetic, .occurrence = index});
  predicates_.push_back(id);
  return id;
}

PredicateId GroundTruthModel::AddFailure() {
  AID_CHECK(failure_ == kInvalidPredicate);
  failure_ = catalog_.Intern(Predicate{.kind = PredKind::kFailure});
  return failure_;
}

void GroundTruthModel::SetTrueParents(PredicateId id,
                                      std::vector<PredicateId> parents) {
  true_parents_[id] = std::move(parents);
}

void GroundTruthModel::SetCausalChain(std::vector<PredicateId> chain) {
  AID_CHECK(failure_ != kInvalidPredicate);
  AID_CHECK(!chain.empty());
  causal_chain_ = std::move(chain);
  SetTrueParents(causal_chain_.front(), {});
  for (size_t i = 1; i < causal_chain_.size(); ++i) {
    SetTrueParents(causal_chain_[i], {causal_chain_[i - 1]});
  }
  SetTrueParents(failure_, {causal_chain_.back()});
}

void GroundTruthModel::AddTemporalEdge(PredicateId from, PredicateId to) {
  temporal_edges_.emplace_back(from, to);
}

void GroundTruthModel::AddDependenceEdge(PredicateId from, PredicateId to) {
  dependence_edges_.emplace_back(from, to);
}

PredicateLog GroundTruthModel::Execute(
    const std::vector<PredicateId>& intervened) const {
  std::vector<bool> blocked(catalog_.size(), false);
  for (PredicateId id : intervened) {
    if (id >= 0 && static_cast<size_t>(id) < blocked.size()) {
      blocked[static_cast<size_t>(id)] = true;
    }
  }

  // Propagate occurrence to a fixpoint. The true-cause relation is acyclic
  // (generators build it over an existing order), and occurrence is
  // monotone, so iterating passes converges within the DAG depth.
  std::vector<bool> occurs(catalog_.size(), false);
  auto eval = [&](PredicateId id) {
    if (blocked[static_cast<size_t>(id)]) return false;
    auto it = true_parents_.find(id);
    if (it == true_parents_.end()) return true;  // spontaneous
    for (PredicateId parent : it->second) {
      if (!occurs[static_cast<size_t>(parent)]) return false;
    }
    return true;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (PredicateId id : predicates_) {
      const bool now = eval(id);
      if (now != occurs[static_cast<size_t>(id)]) {
        occurs[static_cast<size_t>(id)] = now;
        changed = true;
      }
    }
  }

  PredicateLog log;
  Tick tick = 0;
  for (PredicateId id : predicates_) {
    if (occurs[static_cast<size_t>(id)]) {
      log.observed[id] = {tick, tick};
    }
    ++tick;
  }
  // The failure predicate cannot be intervened, only caused.
  auto it = true_parents_.find(failure_);
  bool failed = true;
  if (it != true_parents_.end()) {
    for (PredicateId parent : it->second) {
      if (!occurs[static_cast<size_t>(parent)]) failed = false;
    }
  }
  log.failed = failed;
  if (failed) log.observed[failure_] = {tick, tick};
  return log;
}

Result<AcDag> GroundTruthModel::BuildAcDag() const {
  return BuildAcDag(/*apply_dependence_pruning=*/false, nullptr);
}

Result<AcDag> GroundTruthModel::BuildAcDag(bool apply_dependence_pruning,
                                           AcDag::PruneStats* stats) const {
  std::vector<PredicateId> nodes = predicates_;
  nodes.push_back(failure_);
  std::vector<std::pair<PredicateId, PredicateId>> edges = temporal_edges_;
  // Every predicate temporally precedes the failure.
  for (PredicateId id : predicates_) edges.emplace_back(id, failure_);

  AcDag::EdgeFilter filter;
  if (apply_dependence_pruning && !dependence_edges_.empty()) {
    // Transitive reachability over the declared dependence channels. The
    // failure is reachable from anything that reaches a declared edge into
    // it; everything else is only self-reachable (filters never see
    // reflexive pairs, but keep them correct anyway).
    const size_t n = catalog_.size();
    auto reach = std::make_shared<std::vector<std::vector<bool>>>(
        n, std::vector<bool>(n, false));
    for (size_t i = 0; i < n; ++i) (*reach)[i][i] = true;
    for (const auto& [from, to] : dependence_edges_) {
      if (from >= 0 && to >= 0 && static_cast<size_t>(from) < n &&
          static_cast<size_t>(to) < n) {
        (*reach)[static_cast<size_t>(from)][static_cast<size_t>(to)] = true;
      }
    }
    for (size_t k = 0; k < n; ++k) {
      for (size_t i = 0; i < n; ++i) {
        if (!(*reach)[i][k]) continue;
        for (size_t j = 0; j < n; ++j) {
          if ((*reach)[k][j]) (*reach)[i][j] = true;
        }
      }
    }
    filter = [reach, n](PredicateId from, PredicateId to) {
      if (from < 0 || to < 0 || static_cast<size_t>(from) >= n ||
          static_cast<size_t>(to) >= n) {
        return true;  // unknown ids stay conservative
      }
      return static_cast<bool>(
          (*reach)[static_cast<size_t>(from)][static_cast<size_t>(to)]);
    };
  }
  return AcDag::FromEdges(&catalog_, nodes, edges, failure_, filter,
                          filter ? stats : nullptr);
}

Result<TargetRunResult> ModelTarget::RunIntervened(
    const std::vector<PredicateId>& intervened, int trials) {
  TargetRunResult result;
  if (trials < 1) trials = 1;
  PredicateLog log = model_->Execute(intervened);
  executions_ += trials;
  // The model is deterministic: all trials yield the same log.
  for (int i = 0; i < trials; ++i) result.logs.push_back(log);
  return result;
}

Result<std::vector<TargetRunResult>> ModelTarget::RunInterventionsBatch(
    const InterventionSpans& spans, int trials) {
  if (trials < 1) trials = 1;
  std::vector<TargetRunResult> results(spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    PredicateLog log = model_->Execute(spans[i]);
    executions_ += trials;
    results[i].logs.assign(static_cast<size_t>(trials), log);
  }
  return results;
}

}  // namespace aid
