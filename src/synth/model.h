// Ground-truth synthetic applications (paper Section 7.2).
//
// A GroundTruthModel is an abstract "application" defined directly at the
// predicate level: a set of fully-discriminative predicates, a known causal
// chain from the root cause to the failure, and true-cause rules for the
// remaining (correlated but non-causal) predicates. "Executing" the model
// under an intervention propagates occurrence through the true-cause rules:
//
//   P occurs  iff  P is not intervened  and  all true parents of P occurred
//   (no parents = spontaneous: occurs unless intervened)
//
// The observable AC-DAG is the temporal over-approximation the generator
// also emits: it contains the true causal edges plus the merely-temporal
// ones, exactly the superset relationship of the paper's Figure 4(a)/(b).

#ifndef AID_SYNTH_MODEL_H_
#define AID_SYNTH_MODEL_H_

#include <unordered_map>
#include <vector>

#include "causal/acdag.h"
#include "common/status.h"
#include "core/target.h"
#include "exec/replicable.h"
#include "predicates/predicate.h"

namespace aid {

class GroundTruthModel {
 public:
  GroundTruthModel() = default;

  /// Adds a predicate node; returns its id. `index` is a display index.
  PredicateId AddPredicate(int index);
  /// Adds the failure predicate (exactly once).
  PredicateId AddFailure();

  /// Declares P's true causes: P occurs iff all of `parents` occurred
  /// (conjunction). No declaration = spontaneous.
  void SetTrueParents(PredicateId id, std::vector<PredicateId> parents);

  /// Declares the counterfactual causal chain c0 -> .. -> ck (-> F): wires
  /// each element to the previous one and F to the last.
  void SetCausalChain(std::vector<PredicateId> chain);

  /// Adds an observed temporal edge (AC-DAG construction input).
  void AddTemporalEdge(PredicateId from, PredicateId to);

  /// Declares a static dependence channel from -> to: the abstract
  /// "program" has a control/data path by which `from` could influence
  /// `to`. This is the model-level analog of what analysis/ derives from
  /// VM programs; BuildAcDag's pruning overload keeps only temporal edges
  /// covered by dependence reachability. Generators must declare a channel
  /// for every true-cause edge (or pruning would be unsound); extra
  /// channels merely cost precision.
  void AddDependenceEdge(PredicateId from, PredicateId to);

  /// Evaluates which predicates occur under `intervened`.
  /// Returns a PredicateLog (failed = F occurred).
  PredicateLog Execute(const std::vector<PredicateId>& intervened) const;

  /// Builds the observable AC-DAG (temporal edges, transitively closed).
  /// The model must outlive the returned DAG (it borrows the catalog).
  Result<AcDag> BuildAcDag() const;

  /// BuildAcDag with optional dependence-based pruning: when
  /// `apply_dependence_pruning` is true and the model declares dependence
  /// edges, temporal edges not covered by dependence reachability are
  /// dropped before closure (stats, if non-null, record the delta against
  /// the unpruned DAG). With no declared dependence edges this degrades to
  /// the plain build -- an undeclared program is all-may-influence, never
  /// influence-free.
  Result<AcDag> BuildAcDag(bool apply_dependence_pruning,
                           AcDag::PruneStats* stats) const;

  const PredicateCatalog& catalog() const { return catalog_; }
  PredicateId failure() const { return failure_; }
  const std::vector<PredicateId>& predicates() const { return predicates_; }
  const std::vector<PredicateId>& causal_chain() const { return causal_chain_; }
  /// True-cause rules and observed temporal edges, exposed so the model can
  /// be serialized across a process boundary (proc/subject_spec).
  const std::unordered_map<PredicateId, std::vector<PredicateId>>&
  true_parents() const {
    return true_parents_;
  }
  const std::vector<std::pair<PredicateId, PredicateId>>& temporal_edges()
      const {
    return temporal_edges_;
  }
  const std::vector<std::pair<PredicateId, PredicateId>>& dependence_edges()
      const {
    return dependence_edges_;
  }
  PredicateId root_cause() const {
    return causal_chain_.empty() ? kInvalidPredicate : causal_chain_.front();
  }
  size_t size() const { return predicates_.size(); }

 private:
  PredicateCatalog catalog_;
  std::vector<PredicateId> predicates_;  ///< excludes F
  PredicateId failure_ = kInvalidPredicate;
  std::unordered_map<PredicateId, std::vector<PredicateId>> true_parents_;
  std::vector<PredicateId> causal_chain_;
  std::vector<std::pair<PredicateId, PredicateId>> temporal_edges_;
  std::vector<std::pair<PredicateId, PredicateId>> dependence_edges_;
};

/// InterventionTarget over a ground-truth model. Deterministic: one trial is
/// sufficient, and `trials` executions produce identical logs. Replicable:
/// clones share the (immutable) model and need no trial seeking.
class ModelTarget : public ReplicableTarget {
 public:
  explicit ModelTarget(const GroundTruthModel* model) : model_(model) {}

  Result<TargetRunResult> RunIntervened(
      const std::vector<PredicateId>& intervened, int trials) override;
  /// Batched dispatch: evaluates every span in one pass over the model,
  /// skipping the per-span Result plumbing of the serial default.
  Result<std::vector<TargetRunResult>> RunInterventionsBatch(
      const InterventionSpans& spans, int trials) override;
  Result<std::unique_ptr<ReplicableTarget>> Clone() const override {
    return std::unique_ptr<ReplicableTarget>(new ModelTarget(model_));
  }
  uint64_t executions() const override { return executions_; }

 private:
  const GroundTruthModel* model_;
  uint64_t executions_ = 0;
};

}  // namespace aid

#endif  // AID_SYNTH_MODEL_H_
