#include "synth/generator.h"

#include <algorithm>
#include <cmath>

#include "causal/acdag.h"
#include "common/math_util.h"
#include "common/strings.h"

namespace aid {
namespace {

/// Picks `count` distinct sorted positions in [0, n).
std::vector<size_t> PickPositions(size_t n, size_t count, Rng& rng) {
  std::vector<size_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = i;
  rng.Shuffle(all);
  all.resize(count);
  std::sort(all.begin(), all.end());
  return all;
}

/// Declares a dependence channel for every true-cause relation of the
/// model. This is the soundness floor of dependence-based pruning: a true
/// cause always has a channel to its effect, so pruning can never cut a
/// causal edge. Iterates in predicate order (not map order) so the declared
/// edge list is deterministic.
void DeclareTrueParentDependences(GroundTruthModel& model) {
  const auto& parents_map = model.true_parents();
  auto declare = [&](PredicateId id) {
    auto it = parents_map.find(id);
    if (it == parents_map.end()) return;
    for (PredicateId parent : it->second) model.AddDependenceEdge(parent, id);
  };
  for (PredicateId id : model.predicates()) declare(id);
  declare(model.failure());
}

}  // namespace

Result<std::unique_ptr<GroundTruthModel>> GenerateSyntheticApp(
    const SyntheticAppOptions& options) {
  if (options.max_threads < options.min_threads || options.min_threads < 1) {
    return Status::InvalidArgument("invalid thread range");
  }
  if (options.chain_min < 1 || options.chain_max < options.chain_min ||
      options.branch_min < 1 || options.branch_max < options.branch_min ||
      options.blocks_min < 1 || options.blocks_max < options.blocks_min) {
    return Status::InvalidArgument("invalid segment ranges");
  }
  Rng rng(options.seed);
  auto model = std::make_unique<GroundTruthModel>();
  model->AddFailure();

  const int threads = static_cast<int>(
      rng.UniformRange(options.min_threads, options.max_threads));
  const int blocks = static_cast<int>(
      rng.UniformRange(options.blocks_min, options.blocks_max));

  // Layout: chain0, block1, chain1, .., blockK, chainK. `path` collects the
  // candidate causal path: every serial node plus one branch per block.
  int next_index = 0;
  std::vector<PredicateId> path;
  PredicateId prev_tail = kInvalidPredicate;  // last node of prior segment

  auto add_chain = [&](int length) {
    std::vector<PredicateId> chain;
    for (int i = 0; i < length; ++i) {
      const PredicateId id = model->AddPredicate(next_index++);
      if (prev_tail != kInvalidPredicate) {
        model->AddTemporalEdge(prev_tail, id);
        // Intra-thread serial adjacency and the fork edge into a branch
        // head are real influence channels; the join edges into a merge
        // head (below) are not declared, which is exactly what makes the
        // cross-branch temporal edges prunable.
        model->AddDependenceEdge(prev_tail, id);
      }
      prev_tail = id;
      chain.push_back(id);
    }
    return chain;
  };

  for (PredicateId id :
       add_chain(static_cast<int>(rng.UniformRange(options.chain_min, options.chain_max)))) {
    path.push_back(id);
  }

  for (int block = 0; block < blocks; ++block) {
    const PredicateId split = prev_tail;
    const size_t causal_branch = rng.Uniform(static_cast<uint64_t>(threads));
    std::vector<PredicateId> branch_tails;
    for (int b = 0; b < threads; ++b) {
      const int len = static_cast<int>(
          rng.UniformRange(options.branch_min, options.branch_max));
      prev_tail = split;
      std::vector<PredicateId> branch = add_chain(len);
      branch_tails.push_back(prev_tail);
      if (static_cast<size_t>(b) == causal_branch) {
        for (PredicateId id : branch) path.push_back(id);
      }
    }
    // Merge: the serial segment after the block starts once every branch
    // has finished (join), so every branch tail precedes it.
    const int merge_len = static_cast<int>(
        rng.UniformRange(options.chain_min, options.chain_max));
    prev_tail = kInvalidSymbol;
    std::vector<PredicateId> merge_chain;
    for (int i = 0; i < merge_len; ++i) {
      const PredicateId id = model->AddPredicate(next_index++);
      if (i == 0) {
        for (PredicateId tail : branch_tails) model->AddTemporalEdge(tail, id);
      } else {
        model->AddTemporalEdge(prev_tail, id);
        model->AddDependenceEdge(prev_tail, id);
      }
      prev_tail = id;
      merge_chain.push_back(id);
      path.push_back(id);
    }
  }

  // Causal chain: D ~ U[1, N / log2 N] of the path nodes, in order.
  const size_t n = model->size();
  const double log2n = std::max(1.0, Log2(static_cast<double>(std::max<size_t>(2, n))));
  const int64_t d_cap =
      std::max<int64_t>(1, static_cast<int64_t>(static_cast<double>(n) / log2n));
  size_t d = static_cast<size_t>(rng.UniformRange(1, d_cap));
  d = std::min(d, path.size());
  std::vector<size_t> chosen = PickPositions(path.size(), d, rng);
  std::vector<PredicateId> chain;
  for (size_t pos : chosen) chain.push_back(path[pos]);
  model->SetCausalChain(chain);

  // Non-causal predicates: symptoms of causal predicates or spontaneous
  // noise. A symptom's true parent must be a temporal *ancestor* in the
  // AC-DAG -- true causality the AC-DAG misses would break the paper's
  // completeness guarantee (Section 4) -- so candidates are restricted via
  // the DAG built from the structural edges (a smaller id alone is not
  // enough: a chain member on a sibling branch has no stable order).
  AID_ASSIGN_OR_RETURN(AcDag dag, model->BuildAcDag());
  std::vector<bool> on_chain(model->catalog().size(), false);
  for (PredicateId id : chain) on_chain[static_cast<size_t>(id)] = true;
  for (PredicateId id : model->predicates()) {
    if (on_chain[static_cast<size_t>(id)]) continue;
    if (!rng.Bernoulli(options.symptom_prob)) continue;  // spontaneous
    std::vector<PredicateId> ancestors;
    for (PredicateId c : chain) {
      if (dag.Reaches(c, id)) ancestors.push_back(c);
    }
    if (ancestors.empty()) continue;
    model->SetTrueParents(id, {rng.Pick(ancestors)});
  }

  // Static dependence channels: the true-cause relations (mandatory for
  // pruning soundness) plus random spurious channels, drawn from a
  // DEDICATED Rng so the observable model is byte-identical to what this
  // seed has always produced -- dependence declarations only feed the
  // optional pruning pass.
  DeclareTrueParentDependences(*model);
  Rng dep_rng(options.seed ^ 0x9e3779b97f4a7c15ULL);
  const std::vector<PredicateId>& preds = model->predicates();
  for (size_t i = 1; i < preds.size(); ++i) {
    if (!dep_rng.Bernoulli(options.dependence_noise_prob)) continue;
    const size_t j = dep_rng.Uniform(static_cast<uint64_t>(i));
    model->AddDependenceEdge(preds[j], preds[i]);
  }
  return model;
}

Result<std::unique_ptr<GroundTruthModel>> MakeSymmetricModel(int junctions,
                                                             int branches,
                                                             int chain_len,
                                                             int causal,
                                                             uint64_t seed) {
  if (junctions < 1 || branches < 1 || chain_len < 1) {
    return Status::InvalidArgument("junctions, branches, chain_len must be >= 1");
  }
  if (causal < 1 || causal > junctions * chain_len) {
    return Status::InvalidArgument(StrFormat(
        "causal must be in [1, %d]", junctions * chain_len));
  }
  Rng rng(seed);
  auto model = std::make_unique<GroundTruthModel>();
  model->AddFailure();

  int next_index = 0;
  std::vector<PredicateId> path;
  std::vector<PredicateId> prev_tails;  // tails of the previous block
  for (int j = 0; j < junctions; ++j) {
    const size_t causal_branch = rng.Uniform(static_cast<uint64_t>(branches));
    std::vector<PredicateId> tails;
    for (int b = 0; b < branches; ++b) {
      PredicateId prev = kInvalidPredicate;
      for (int i = 0; i < chain_len; ++i) {
        const PredicateId id = model->AddPredicate(next_index++);
        if (prev != kInvalidPredicate) {
          model->AddTemporalEdge(prev, id);
          // Serial adjacency is a dependence channel; the junction join
          // edges below are temporal-only and therefore prunable.
          model->AddDependenceEdge(prev, id);
        } else {
          for (PredicateId tail : prev_tails) model->AddTemporalEdge(tail, id);
        }
        prev = id;
        if (static_cast<size_t>(b) == causal_branch) path.push_back(id);
      }
      tails.push_back(prev);
    }
    prev_tails = std::move(tails);
  }

  std::vector<size_t> chosen =
      PickPositions(path.size(), static_cast<size_t>(causal), rng);
  std::vector<PredicateId> chain;
  for (size_t pos : chosen) chain.push_back(path[pos]);
  model->SetCausalChain(chain);
  DeclareTrueParentDependences(*model);
  return model;
}

}  // namespace aid
