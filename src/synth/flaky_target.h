// FlakyModelTarget: a ground-truth target whose root cause manifests only
// probabilistically, modeling the real-world situation of the paper's
// footnote 1 -- a concurrency bug that needs the "right" interleaving even
// on a failing input, which is why AID executes every intervention several
// times and treats a single failing run as proof that the failure was not
// repressed.
//
// The manifestation coin flip for trial t is a pure function of (seed, t):
// each flip draws from an Rng seeded by mixing the target seed with the
// global trial index, instead of consuming one shared stream in arrival
// order. That makes the target replicable (exec/replicable.h): any replica
// positioned at trial t by SeekTrial produces the same flip, so parallel
// dispatch across clones is bit-identical to serial dispatch.

#ifndef AID_SYNTH_FLAKY_TARGET_H_
#define AID_SYNTH_FLAKY_TARGET_H_

#include <memory>

#include "common/rng.h"
#include "exec/replicable.h"
#include "synth/model.h"

namespace aid {

class FlakyModelTarget : public ReplicableTarget {
 public:
  /// On each execution, the root cause spontaneously fires only with
  /// `manifest_probability`; when it does not fire, the run behaves like a
  /// lucky interleaving (no failure, downstream chain absent).
  FlakyModelTarget(const GroundTruthModel* model, double manifest_probability,
                   uint64_t seed)
      : model_(model),
        manifest_probability_(manifest_probability),
        seed_(seed) {}

  Result<TargetRunResult> RunIntervened(
      const std::vector<PredicateId>& intervened, int trials) override {
    TargetRunResult result;
    if (trials < 1) trials = 1;
    for (int i = 0; i < trials; ++i) {
      ++executions_;
      if (ManifestsAt(trial_cursor_++)) {
        result.logs.push_back(model_->Execute(intervened));
      } else {
        // The nondeterminism did not line up: suppress the root cause too.
        std::vector<PredicateId> blocked = intervened;
        blocked.push_back(model_->root_cause());
        result.logs.push_back(model_->Execute(blocked));
      }
    }
    return result;
  }

  Result<std::unique_ptr<ReplicableTarget>> Clone() const override {
    auto clone = std::unique_ptr<FlakyModelTarget>(
        new FlakyModelTarget(model_, manifest_probability_, seed_));
    clone->trial_cursor_ = trial_cursor_;
    return std::unique_ptr<ReplicableTarget>(std::move(clone));
  }

  void SeekTrial(uint64_t trial_index) override { trial_cursor_ = trial_index; }

  uint64_t trial_position() const override { return trial_cursor_; }

  uint64_t executions() const override { return executions_; }

 private:
  /// The trial-t manifestation flip: deterministic in (seed_, t).
  bool ManifestsAt(uint64_t trial) const {
    uint64_t mix = seed_ ^ ((trial + 1) * 0x9e3779b97f4a7c15ULL);
    return Rng(SplitMix64(mix)).Bernoulli(manifest_probability_);
  }

  const GroundTruthModel* model_;
  double manifest_probability_;
  uint64_t seed_;
  uint64_t trial_cursor_ = 0;
  uint64_t executions_ = 0;
};

}  // namespace aid

#endif  // AID_SYNTH_FLAKY_TARGET_H_
