// FlakyModelTarget: a ground-truth target whose root cause manifests only
// probabilistically, modeling the real-world situation of the paper's
// footnote 1 -- a concurrency bug that needs the "right" interleaving even
// on a failing input, which is why AID executes every intervention several
// times and treats a single failing run as proof that the failure was not
// repressed.

#ifndef AID_SYNTH_FLAKY_TARGET_H_
#define AID_SYNTH_FLAKY_TARGET_H_

#include "common/rng.h"
#include "core/target.h"
#include "synth/model.h"

namespace aid {

class FlakyModelTarget : public InterventionTarget {
 public:
  /// On each execution, the root cause spontaneously fires only with
  /// `manifest_probability`; when it does not fire, the run behaves like a
  /// lucky interleaving (no failure, downstream chain absent).
  FlakyModelTarget(const GroundTruthModel* model, double manifest_probability,
                   uint64_t seed)
      : model_(model),
        manifest_probability_(manifest_probability),
        rng_(seed) {}

  Result<TargetRunResult> RunIntervened(
      const std::vector<PredicateId>& intervened, int trials) override {
    TargetRunResult result;
    if (trials < 1) trials = 1;
    for (int i = 0; i < trials; ++i) {
      ++executions_;
      if (rng_.Bernoulli(manifest_probability_)) {
        result.logs.push_back(model_->Execute(intervened));
      } else {
        // The nondeterminism did not line up: suppress the root cause too.
        std::vector<PredicateId> blocked = intervened;
        blocked.push_back(model_->root_cause());
        result.logs.push_back(model_->Execute(blocked));
      }
    }
    return result;
  }

  int executions() const override { return executions_; }

 private:
  const GroundTruthModel* model_;
  double manifest_probability_;
  Rng rng_;
  int executions_ = 0;
};

}  // namespace aid

#endif  // AID_SYNTH_FLAKY_TARGET_H_
