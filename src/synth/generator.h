// Synthetic application generator (paper Section 7.2) and the symmetric
// AC-DAG of Figure 5(c).
//
// Generated applications mirror the paper's benchmark: multi-threaded
// programs with up to MAXt threads, predicate counts N growing with MAXt
// (the paper reports N in [4, 284] for MAXt in [2, 40]), and the number of
// causal predicates drawn uniformly from [1, N / log2 N].
//
// Shape: alternating serial chain segments and parallel blocks of T branch
// chains (spawn/join phases of a concurrent program). The true causal chain
// follows one branch through each parallel block; remaining predicates are
// either spontaneous co-occurring noise or true effects of causal
// predicates (symptoms) -- the two flavors of spurious predicate the paper's
// Figure 4 walk-through exhibits (P7 vs P10).

#ifndef AID_SYNTH_GENERATOR_H_
#define AID_SYNTH_GENERATOR_H_

#include <memory>

#include "common/rng.h"
#include "common/status.h"
#include "synth/model.h"

namespace aid {

struct SyntheticAppOptions {
  int max_threads = 10;  ///< the paper's MAXt knob
  uint64_t seed = 1;
  int min_threads = 2;
  /// Serial segment length range.
  int chain_min = 1;
  int chain_max = 3;
  /// Per-branch chain length range inside parallel blocks.
  int branch_min = 1;
  int branch_max = 6;
  /// Number of parallel blocks (junctions) range.
  int blocks_min = 1;
  int blocks_max = 2;
  /// Probability that a non-causal predicate is a symptom (true effect of a
  /// causal predicate) rather than spontaneous noise.
  double symptom_prob = 0.5;
  /// Probability that a predicate gets a spurious static dependence channel
  /// from a random earlier predicate (see GroundTruthModel dependence
  /// edges). Drawn from a dedicated Rng, so the observable model -- nodes,
  /// temporal edges, true-cause rules -- is byte-identical for any value.
  double dependence_noise_prob = 0.15;
};

/// Generates one synthetic application with a known root cause.
Result<std::unique_ptr<GroundTruthModel>> GenerateSyntheticApp(
    const SyntheticAppOptions& options);

/// Builds the symmetric AC-DAG model of Figure 5(c): `junctions` blocks,
/// each with `branches` branches of `chain_len` predicates; `causal` of the
/// path predicates form the causal chain. Requires causal <= junctions *
/// chain_len.
Result<std::unique_ptr<GroundTruthModel>> MakeSymmetricModel(int junctions,
                                                             int branches,
                                                             int chain_len,
                                                             int causal,
                                                             uint64_t seed);

}  // namespace aid

#endif  // AID_SYNTH_GENERATOR_H_
