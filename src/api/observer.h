// Observer: progress callbacks for the AID pipeline.
//
// Part of the stable public surface under api/. The interface itself lives
// in core/observer.h so the engine layer stays self-contained; this header
// re-exports it for api/ consumers. See core/observer.h for the contract:
// Observer (OnPhaseChanged / OnRoundStarted / OnRoundFinished /
// OnPredicateDecided), SessionPhase, and ObservedRound.

#ifndef AID_API_OBSERVER_H_
#define AID_API_OBSERVER_H_

#include "core/observer.h"

#endif  // AID_API_OBSERVER_H_
