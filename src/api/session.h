// aid::Session -- the one public entry point to the AID pipeline.
//
// A Session owns the whole debugging workflow of the paper's Figure 1 over
// any target backend: trace ingestion and predicate extraction (the
// backend's observation phase), statistical debugging, AC-DAG construction,
// and causality-guided causal path discovery. Sessions are built through
// the fluent SessionBuilder:
//
//   auto session_or = aid::SessionBuilder()
//                         .WithProgram(&program)        // or WithModel(...),
//                                                       // WithTarget("vm",..)
//                         .WithEngine(EnginePreset::kAid)
//                         .WithTrials(3)
//                         .WithObserver(&progress)      // optional
//                         .Build();                     // observation phase
//   AID_ASSIGN_OR_RETURN(SessionReport report, session_or->Run());
//   // report.root_cause, report.causal_path, report.discovery ...
//
// Every workload in the repository -- examples, benchmarks, case-study
// drivers -- goes through this API; the engine and targets underneath stay
// composable for tests and research code.

#ifndef AID_API_SESSION_H_
#define AID_API_SESSION_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/observer.h"
#include "api/options.h"
#include "api/target_factory.h"
#include "core/engine.h"
#include "core/report.h"
#include "telemetry/telemetry.h"

namespace aid {

/// The outcome of one Session::Run.
struct SessionReport {
  std::string target_name;
  /// #fully-discriminative predicates from SD (-1: backend has no SD stage).
  int sd_predicates = -1;
  /// AC-DAG size after safety + reachability filtering.
  int acdag_nodes = 0;
  /// The main discovery run.
  DiscoveryReport discovery;
  /// The TAGT baseline, when SessionOptions::run_tagt_baseline was set.
  std::optional<DiscoveryReport> tagt_baseline;
  /// Human-readable root cause (empty when none was certified) and causal
  /// path, when SessionOptions::describe was set.
  std::string root_cause;
  std::vector<std::string> causal_path;

  bool has_root_cause() const { return discovery.has_root_cause(); }
  /// Predicates in the causal path excluding F (the paper's Figure 7
  /// "causal path" column).
  int causal_path_len() const {
    return static_cast<int>(discovery.causal_path.size()) - 1;
  }
};

/// One debugging session over one target. Create via SessionBuilder.
class Session {
 public:
  Session(Session&&) = default;
  Session& operator=(Session&&) = default;

  /// Runs the pipeline stages that follow observation: statistical
  /// debugging, AC-DAG construction, causal path discovery, and the
  /// optional TAGT baseline. May be called repeatedly; the AC-DAG is built
  /// once and reused, while discovery runs fresh each time (re-running
  /// accumulates executions on the shared target).
  Result<SessionReport> Run();

  /// Same, but with `engine` in place of the configured engine options --
  /// the way to compare presets over one observed target without paying the
  /// observation and AC-DAG phases again. The TAGT baseline is NOT run on
  /// this overload (it belongs to the configured Run(); comparison loops
  /// should not accumulate hidden baseline executions).
  Result<SessionReport> Run(const EngineOptions& engine);

  /// Renders `report` through core/report.h with this session's symbol
  /// tables filled in.
  std::string Render(const SessionReport& report,
                     ReportRenderOptions options = {}) const;

  /// The target backend (valid for the session's lifetime).
  SessionTarget& target() { return *target_; }
  const SessionTarget& target() const { return *target_; }

  /// The AC-DAG (borrowed from the target when it holds one prebuilt,
  /// otherwise built and owned here); null before the first Run().
  const AcDag* dag() const {
    if (borrowed_dag_ != nullptr) return borrowed_dag_;
    return dag_.has_value() ? &*dag_ : nullptr;
  }

  const SessionOptions& options() const { return options_; }

  /// The session's telemetry bundle; null unless built with WithTelemetry.
  /// Valid for the session's lifetime (shared with the target substrates).
  Telemetry* telemetry() const { return telemetry_.get(); }

  /// Point-in-time copy of everything telemetry collected so far: every
  /// metric series plus every finished span (the pipeline spans of this
  /// process and the host spans imported from subject processes). Empty
  /// when telemetry is off. Feed it to MetricsJson / ChromeTraceJson /
  /// PrometheusText / TelemetryJson (telemetry/telemetry.h) to export.
  aid::TelemetrySnapshot TelemetrySnapshot() const {
    return telemetry_ != nullptr ? telemetry_->Snapshot()
                                 : aid::TelemetrySnapshot{};
  }

 private:
  friend class SessionBuilder;
  Result<SessionReport> RunInternal(const EngineOptions& engine,
                                    bool run_baseline);
  Session(std::unique_ptr<SessionTarget> target, SessionOptions options,
          Observer* observer, std::shared_ptr<Telemetry> telemetry)
      : target_(std::move(target)),
        options_(std::move(options)),
        observer_(observer),
        telemetry_(std::move(telemetry)) {}

  std::unique_ptr<SessionTarget> target_;
  SessionOptions options_;
  Observer* observer_ = nullptr;  ///< non-owning; may be null
  /// Telemetry bundle shared with the target substrates; null = off.
  std::shared_ptr<Telemetry> telemetry_;
  std::optional<AcDag> dag_;  ///< owned DAG (unset when borrowing)
  /// DAG borrowed from the target (points into *target_, so it stays valid
  /// across Session moves).
  const AcDag* borrowed_dag_ = nullptr;
};

/// Fluent builder for Session. All setters return *this; Build() runs the
/// backend's observation phase and hands back the ready Session.
class SessionBuilder {
 public:
  // ----- target selection (exactly one required) ------------------------
  /// Any backend registered with TargetFactory ("vm", "model", "case", ...).
  SessionBuilder& WithTarget(std::string backend, TargetConfig config);
  /// A pre-built custom backend (takes ownership).
  SessionBuilder& WithTarget(std::unique_ptr<SessionTarget> target);
  /// Shorthand for the "vm" backend over `program`.
  SessionBuilder& WithProgram(const Program* program,
                              VmTargetOptions options = {});
  /// Shorthand for the "model" backend over `model`.
  SessionBuilder& WithModel(const GroundTruthModel* model);
  /// Shorthand for the "flaky-model" backend.
  SessionBuilder& WithFlakyModel(const GroundTruthModel* model,
                                 double manifest_probability,
                                 uint64_t seed = 1);
  /// Shorthand for the "case:<name>" backend.
  SessionBuilder& WithCaseStudy(std::string name);

  // ----- engine configuration ------------------------------------------
  SessionBuilder& WithEngine(EnginePreset preset);
  SessionBuilder& WithEngineOptions(const EngineOptions& options);
  /// Executions per intervention round; applies to the main engine and the
  /// TAGT baseline (overrides whatever the engine options carry). Values
  /// outside [1, kMaxTrialsPerIntervention] fail Build() with
  /// InvalidArgument.
  SessionBuilder& WithTrials(int trials_per_intervention);
  /// Adaptive intervention budgeting (src/budget/): replace the fixed
  /// trials-per-round count with a sequential probability ratio test over
  /// a per-candidate Bayesian posterior -- decisive candidates get one
  /// trial, noisy ones more (never more than the fixed count unless
  /// options.max_trials_per_round raises the cap), and rounds stop at the
  /// first failing trial. An optional global execution budget
  /// (options.max_executions) degrades gracefully into a best-effort
  /// report with per-candidate confidence. When the backend runs
  /// statistical debugging (e.g. "vm"), its suspiciousness scores seed the
  /// priors automatically unless options.advice already carries scores.
  /// Applies to the main engine only -- the TAGT baseline stays
  /// fixed-trial so its execution counts remain comparable. Budgeting off
  /// (the default) leaves reports bit-identical to previous releases.
  /// Invalid knobs fail Build() with InvalidArgument.
  SessionBuilder& WithAdaptiveBudget(BudgetOptions options);
  SessionBuilder& WithAdaptiveBudget() {
    BudgetOptions options;
    options.enabled = true;
    return WithAdaptiveBudget(options);
  }
  /// Seed for random ordering / tie-breaking of the main engine.
  SessionBuilder& WithSeed(uint64_t seed);
  /// Dispatch linear-scan rounds through RunInterventionsBatch.
  SessionBuilder& WithBatchedDispatch(bool batched = true);
  /// Replicate the target backend across `parallelism` workers and dispatch
  /// intervention rounds (and the trials within a round) concurrently
  /// through exec::ParallelTarget. Worker count and scheduling order never
  /// affect results: reports are bit-identical to a 1-worker run of the
  /// same dispatch mode. One caveat on the mode itself: parallelism > 1
  /// implies batched linear-scan dispatch (see EngineOptions), whose
  /// speculative executions leave decisions unchanged on deterministic
  /// targets but can shift trial positions -- and thus decisions -- on
  /// nondeterministic (flaky) targets relative to an *unbatched* serial
  /// scan; compare against WithBatchedDispatch(true) for an apples-to-
  /// apples serial baseline there. Default 1 = serial. Requires a factory
  /// backend (WithTarget(name)/WithProgram/WithModel/WithCaseStudy);
  /// prebuilt SessionTargets cannot be replicated from outside. Values
  /// outside [1, kMaxParallelism] fail Build() with InvalidArgument.
  SessionBuilder& WithParallelism(int parallelism);
  /// How the replica pool of WithParallelism schedules each round's trials
  /// over its replicas (exec/scheduler.h). The default is latency-aware
  /// work stealing: rounds are cut into fine-grained chunks, per-replica
  /// latency is tracked as an EWMA (fed by the substrates' own wire-level
  /// timing under process isolation / remote fleets), and fast replicas
  /// steal chunks queued behind stragglers -- so one slow replica no
  /// longer stalls every round at its pace. SchedulerPolicy::kStatic
  /// restores the fixed contiguous sharding of earlier releases.
  /// Scheduling decides where trials run, never their bytes: reports stay
  /// bit-identical under every policy, worker count, and steal schedule.
  /// No-op without WithParallelism(n > 1). Out-of-range knobs fail Build()
  /// with InvalidArgument.
  SessionBuilder& WithScheduler(const SchedulerOptions& scheduler);
  /// Run every intervention replica as a sandboxed subject process
  /// (src/proc/): a subject that crashes is recorded as a failing trial and
  /// respawned; one that exceeds `trial_deadline_ms` is SIGKILLed and the
  /// trial records the distinct timed-out outcome
  /// (DiscoveryReport::{crashed,timed_out}_trials and ::respawns surface
  /// the counts). deadline 0 = none -- set one for subjects that may hang.
  /// Composes with WithParallelism(n): the pool becomes n isolated child
  /// processes. Requires a factory backend, like WithParallelism. On
  /// platforms without fork/exec, Build() fails with Unimplemented.
  SessionBuilder& WithProcessIsolation(int trial_deadline_ms = 0);
  /// Run every intervention replica on a remote fleet of aid_runner
  /// daemons (src/net/): `endpoints` lists them as "host:port" strings,
  /// and replicas -- one, or `WithParallelism(n)` of them -- spread
  /// round-robin across the fleet, each holding one TCP connection to a
  /// sandboxed runner-side subject process. A dropped connection is
  /// recorded as a crashed trial and reconnected with backoff (failing
  /// over across the fleet); a trial exceeding `trial_deadline_ms` records
  /// the distinct timed-out outcome (deadline 0 = none). Counters surface
  /// in DiscoveryReport::{crashed,timed_out}_trials and ::respawns.
  /// Placement never affects results: reports are bit-identical to the
  /// in-process run at any fleet size or worker count. Requires a factory
  /// backend; mutually exclusive with WithProcessIsolation (the fleet
  /// already sandboxes every replica). On platforms without sockets,
  /// Build() fails with Unimplemented. See docs/remote_protocol.md.
  SessionBuilder& WithRemoteFleet(std::vector<std::string> endpoints,
                                  int trial_deadline_ms = 0);
  /// Run the static analysis pass (src/analysis/) on the target. For
  /// VM-backed targets (WithProgram / WithCaseStudy): lint the program
  /// before the observation scan and fail Build() on error findings
  /// (options.lint_programs), exclude statically infeasible predicate
  /// sites from statistical debugging (options.exclude_infeasible), and
  /// prune AC-DAG edges between instrumentation points with no static
  /// influence channel (options.prune_edges). For model-backed targets:
  /// prune temporal edges not covered by the model's declared dependence
  /// channels. Pruning is sound -- the discovered root cause is
  /// bit-identical, only cheaper to reach -- and what it did is reported in
  /// DiscoveryReport::analysis. The no-argument overload enables all
  /// passes. Requires a factory backend, like WithParallelism.
  SessionBuilder& WithStaticAnalysis(AnalysisOptions options);
  SessionBuilder& WithStaticAnalysis() {
    AnalysisOptions options;
    options.enabled = true;
    return WithStaticAnalysis(options);
  }

  /// Collect telemetry for this session (src/telemetry/): pipeline spans
  /// (observation, statistical debugging, AC-DAG construction, every
  /// intervention round and trial -- including spans imported from subject
  /// processes over the wire), latency histograms, and fleet/scheduler
  /// metrics whose totals match the DiscoveryReport of Run() exactly.
  /// Observability only: reports are bit-identical with telemetry on or
  /// off. Read results via Session::TelemetrySnapshot() or telemetry(),
  /// export via MetricsJson / ChromeTraceJson / PrometheusText. The TAGT
  /// baseline run is never instrumented, so metric totals stay comparable
  /// to the main run's report.
  SessionBuilder& WithTelemetry(TelemetryOptions options = {});
  /// Same, but sharing a caller-owned bundle (e.g. one registry across
  /// several sessions). Passing nullptr turns telemetry back off.
  SessionBuilder& WithTelemetry(std::shared_ptr<Telemetry> telemetry);

  // ----- session behavior ----------------------------------------------
  SessionBuilder& WithObserver(Observer* observer);
  SessionBuilder& WithTagtBaseline(bool run = true);
  SessionBuilder& WithTagtBaselineOptions(const EngineOptions& options);
  SessionBuilder& WithDescriptions(bool describe);

  /// Creates the target (running its observation phase) and the Session.
  Result<Session> Build();

 private:
  std::string backend_;
  TargetConfig config_;
  std::unique_ptr<SessionTarget> prebuilt_target_;
  SessionOptions options_;
  Observer* observer_ = nullptr;
  std::optional<int> trials_;
  std::optional<BudgetOptions> budget_;  ///< set iff WithAdaptiveBudget
  std::optional<uint64_t> seed_;
  std::optional<bool> batched_;
  std::optional<int> parallelism_;
  std::optional<SchedulerOptions> scheduler_;  ///< set iff WithScheduler
  std::optional<int> isolation_deadline_ms_;  ///< set iff WithProcessIsolation
  /// Set iff WithRemoteFleet: the endpoint list and per-trial deadline.
  std::optional<std::vector<std::string>> fleet_endpoints_;
  int fleet_trial_deadline_ms_ = 0;
  std::optional<AnalysisOptions> analysis_;  ///< set iff WithStaticAnalysis
  std::shared_ptr<Telemetry> telemetry_;     ///< set iff WithTelemetry
};

}  // namespace aid

#endif  // AID_API_SESSION_H_
