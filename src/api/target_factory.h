// Pluggable target backends: SessionTarget and the TargetFactory registry.
//
// Part of the stable public surface under api/. A SessionTarget is one
// debuggable application: it owns the observed subject, exposes the
// InterventionTarget the engine intervenes on, and builds the AC-DAG over
// the intervenable fully-discriminative predicates. New backends register a
// creator under a name (TargetFactory::Register) and become reachable from
// SessionBuilder::WithTarget without any engine change.
//
// Built-in backends (registered on first factory use):
//
//   "vm"           VmTarget over TargetConfig::program: runs the full
//                  observation phase, statistical debugging, and fault-
//                  injection interventions (case studies, examples);
//   "model"        deterministic ModelTarget over TargetConfig::model (the
//                  paper's synthetic benchmark);
//   "flaky-model"  FlakyModelTarget over TargetConfig::model whose root
//                  cause manifests with TargetConfig::manifest_probability;
//   "case"         one of the paper's six case studies, selected by
//                  TargetConfig::case_study ("npgsql", "kafka", "cosmosdb",
//                  "network", "buildandtest", "healthtelemetry"); also
//                  registered individually as "case:<name>".

#ifndef AID_API_TARGET_FACTORY_H_
#define AID_API_TARGET_FACTORY_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/summary.h"
#include "budget/advice.h"
#include "causal/acdag.h"
#include "common/status.h"
#include "core/target.h"
#include "core/vm_target.h"
#include "exec/scheduler.h"
#include "net/remote_target.h"
#include "proc/subprocess_target.h"
#include "synth/model.h"

namespace aid {

/// Union of the inputs the built-in backends consume. Pointer members are
/// non-owning and must outlive the created target.
struct TargetConfig {
  /// "vm": the program under debug and its observation options.
  const Program* program = nullptr;
  VmTargetOptions vm;

  /// "model" / "flaky-model": the ground-truth model.
  const GroundTruthModel* model = nullptr;
  /// "flaky-model": per-execution probability the root cause manifests.
  double manifest_probability = 1.0;
  /// "flaky-model": seed of the manifestation coin flips.
  uint64_t flaky_seed = 1;

  /// "case": case-study key ("npgsql", "kafka", ...).
  std::string case_study;

  /// All built-in backends: replicate the intervention target across this
  /// many workers and dispatch intervention rounds in parallel (src/exec/).
  /// 1 = serial dispatch, today's behavior. Worker count never affects
  /// results (ReplicableTarget contract: bit-identical to a 1-worker run of
  /// the same dispatch mode); the engine-side switch to batched linear-scan
  /// dispatch is what changes the executions/rounds split -- see
  /// SessionBuilder::WithParallelism for the nondeterministic-target
  /// caveat. Usually set through that builder method. Validated on every
  /// factory path: values outside [1, kMaxParallelism] are rejected with
  /// InvalidArgument instead of silently degrading to serial dispatch.
  int parallelism = 1;

  /// All built-in backends, parallelism > 1 only: how the replica pool
  /// schedules each round's trials over the replicas. The default is
  /// latency-aware work stealing (exec/scheduler.h); kStatic restores the
  /// fixed contiguous sharding of earlier releases. Scheduling decides
  /// where trials run, never their bytes -- reports stay bit-identical
  /// under every policy. Usually set through SessionBuilder::WithScheduler.
  /// Validated on every factory path: out-of-range knobs are rejected with
  /// InvalidArgument.
  SchedulerOptions scheduler;

  /// All built-in backends: where the *intervention* replicas execute.
  /// kSubprocess runs each replica as a sandboxed aid_subject_host child
  /// process speaking the proc/ wire protocol -- a subject that crashes or
  /// hangs is respawned (and, with a deadline, killed) instead of taking the
  /// engine down. Observation (and so the AC-DAG) always happens in-process,
  /// where the backend needs the traces anyway. Usually set through
  /// SessionBuilder::WithProcessIsolation.
  Isolation isolation = Isolation::kInProcess;

  /// kSubprocess only: child lifecycle knobs (per-trial deadline, host
  /// binary path, respawn budget, fault injection).
  SubprocessOptions subprocess;

  /// All built-in backends: when non-empty, the *intervention* replicas run
  /// on this remote fleet of aid_runner daemons ("host:port" per entry,
  /// src/net/) instead of in this process. Replicas spread round-robin
  /// across the fleet (net::FleetTarget) and pool under parallelism like
  /// any other backend; a lost connection becomes a crashed trial plus a
  /// reconnect with endpoint failover, never an engine failure. Mutually
  /// exclusive with isolation = kSubprocess (the fleet already sandboxes
  /// each replica in a runner-side child process). Observation still
  /// happens in-process; the runner rebuilds the identical predicate
  /// catalog from the shipped spec (cross-checked at handshake). Usually
  /// set through SessionBuilder::WithRemoteFleet.
  std::vector<std::string> fleet;

  /// Fleet only: connection & trial lifecycle knobs (per-trial deadline,
  /// reconnect budget/backoff, fault injection).
  RemoteOptions remote;

  /// All built-in backends: the static analysis pass (src/analysis/). When
  /// `analysis.enabled`, VM-backed targets lint the program before the
  /// observation scan, exclude statically infeasible predicates from
  /// statistical debugging, and prune dependence-free AC-DAG edges;
  /// model-backed targets prune temporal edges not covered by the model's
  /// declared dependence channels. Disabled (all passes off) by default --
  /// when disabled, backend-specific options (e.g. TargetConfig::vm's own
  /// analysis field) are left untouched. Usually set through
  /// SessionBuilder::WithStaticAnalysis.
  AnalysisOptions analysis;

  /// All built-in backends: the session's telemetry bundle (null = off).
  /// Threaded into every execution substrate the factory assembles --
  /// replica pools (chunk spans, replica EWMAs/steals), subprocess children
  /// and remote fleets (trial spans, wire latency histograms, endpoint
  /// gauges, cross-process span propagation). Observability only: never
  /// changes a report's bytes. Usually set through
  /// SessionBuilder::WithTelemetry.
  std::shared_ptr<Telemetry> telemetry;
};

/// One debuggable application: the pluggable unit behind aid::Session.
///
/// Construction (via TargetFactory or a custom creator) performs whatever
/// observation the backend needs; afterwards the target answers the
/// pipeline queries below. Implementations own their subject (program,
/// model, case study) or borrow it from the caller per their contract.
class SessionTarget {
 public:
  virtual ~SessionTarget() = default;

  /// Backend name for reports (e.g. "vm", "model", "case:kafka").
  virtual std::string_view name() const = 0;

  /// Human-readable provenance of the subject (e.g. a case study's origin);
  /// empty when the backend has none.
  virtual std::string_view description() const { return {}; }

  /// The intervention interface handed to the engine. Owned by this target.
  virtual InterventionTarget* intervention_target() = 0;

  /// Builds the AC-DAG over the intervenable fully-discriminative
  /// predicates. The target must outlive the returned DAG.
  virtual Result<AcDag> BuildAcDag() = 0;

  /// The AC-DAG the backend already holds, if any; Session borrows it
  /// instead of calling BuildAcDag (adapter targets avoid a deep copy this
  /// way). Must stay valid for the target's lifetime. Default: null.
  virtual const AcDag* prebuilt_dag() const { return nullptr; }

  /// Predicate catalog for rendering. Never null.
  virtual const PredicateCatalog* catalog() const = 0;

  /// Symbol tables for predicate descriptions (may be null).
  virtual const SymbolTable* method_names() const { return nullptr; }
  virtual const SymbolTable* object_names() const { return nullptr; }

  /// #fully-discriminative predicates statistical debugging surfaced, or -1
  /// when the backend has no SD stage (ground-truth models).
  virtual int sd_predicate_count() const { return -1; }

  /// Statistical-debugging suspiciousness scores (F1 over the observed
  /// runs) for seeding adaptive-budget priors (src/budget/advice.h). Empty
  /// when the backend has no SD stage.
  virtual std::vector<SuspiciousnessScore> sd_suspiciousness() const {
    return {};
  }

  /// What the static analysis pass did for this target (ran == false when
  /// analysis was off or the backend has no analysis stage). Pruning
  /// counters are filled in by BuildAcDag, so read this after building the
  /// DAG.
  virtual AnalysisSummary analysis_summary() const { return {}; }
};

/// Registry of target backends, keyed by name.
///
/// Thread-safe. Registering an existing name replaces the creator (tests
/// override built-ins this way); the built-in backends are installed before
/// the first lookup.
class TargetFactory {
 public:
  using Creator =
      std::function<Result<std::unique_ptr<SessionTarget>>(const TargetConfig&)>;

  static void Register(std::string name, Creator creator);
  static bool IsRegistered(const std::string& name);
  /// Registered backend names, sorted.
  static std::vector<std::string> RegisteredNames();
  /// Creates a target through the registered creator; NotFound for unknown
  /// names.
  static Result<std::unique_ptr<SessionTarget>> Create(
      const std::string& name, const TargetConfig& config);
};

/// Wraps a VmTarget (and optionally an owned case study) as a SessionTarget.
/// Exposed for backends that want to build on the VM observation pipeline.
/// With `parallelism` > 1 the VM target is replicated into an
/// exec::ParallelTarget pool of that many workers scheduled per
/// `scheduler`; with `isolation` = kSubprocess each intervention replica is
/// a sandboxed subject process; with a non-empty `fleet` the replicas run
/// on remote aid_runner daemons.
Result<std::unique_ptr<SessionTarget>> MakeVmSessionTarget(
    const Program* program, const VmTargetOptions& options,
    std::string name = "vm", int parallelism = 1,
    Isolation isolation = Isolation::kInProcess,
    const SubprocessOptions& subprocess = {},
    const std::vector<std::string>& fleet = {},
    const RemoteOptions& remote = {}, const SchedulerOptions& scheduler = {},
    const AnalysisOptions& analysis = {},
    std::shared_ptr<Telemetry> telemetry = nullptr);

/// Wraps a ground-truth model as a SessionTarget. `model` must outlive the
/// target. With `manifest_probability` < 1 the intervention target is a
/// FlakyModelTarget seeded with `flaky_seed`. With `parallelism` > 1 the
/// model target is replicated into an exec::ParallelTarget pool; with
/// `isolation` = kSubprocess the replicas are sandboxed subject processes;
/// with a non-empty `fleet` the replicas run on remote aid_runner daemons.
Result<std::unique_ptr<SessionTarget>> MakeModelSessionTarget(
    const GroundTruthModel* model, double manifest_probability = 1.0,
    uint64_t flaky_seed = 1, std::string name = "model", int parallelism = 1,
    Isolation isolation = Isolation::kInProcess,
    const SubprocessOptions& subprocess = {},
    const std::vector<std::string>& fleet = {},
    const RemoteOptions& remote = {}, const SchedulerOptions& scheduler = {},
    const AnalysisOptions& analysis = {},
    std::shared_ptr<Telemetry> telemetry = nullptr);

/// Adapts a borrowed InterventionTarget and prebuilt AC-DAG as a
/// SessionTarget -- the escape hatch for research setups that assemble the
/// observation pipeline by hand but still want Session to drive discovery.
/// All pointers are non-owning and must outlive the session.
std::unique_ptr<SessionTarget> MakeAdapterSessionTarget(
    InterventionTarget* target, const AcDag* dag,
    const PredicateCatalog* catalog, const SymbolTable* methods = nullptr,
    const SymbolTable* objects = nullptr, std::string name = "custom");

}  // namespace aid

#endif  // AID_API_TARGET_FACTORY_H_
