// Session options: named engine presets and session-level knobs.
//
// Part of the stable public surface under api/. The presets are the engine
// variants of the paper's Section 7.2; SessionOptions adds what a whole
// debugging session needs beyond the engine (baseline comparison runs,
// report rendering).

#ifndef AID_API_OPTIONS_H_
#define AID_API_OPTIONS_H_

#include <string_view>

#include "core/engine.h"

namespace aid {

/// The engine variants of the paper's Section 7.2 as named presets.
enum class EnginePreset {
  kAid,                    ///< topological order + branch + predicate pruning
  kAidNoPredicatePruning,  ///< AID-P
  kAidNoPruning,           ///< AID-P-B (topological order only)
  kTagt,                   ///< traditional adaptive group testing
  kLinear,                 ///< one-predicate-at-a-time repair
};

inline std::string_view EnginePresetName(EnginePreset preset) {
  switch (preset) {
    case EnginePreset::kAid: return "AID";
    case EnginePreset::kAidNoPredicatePruning: return "AID-P";
    case EnginePreset::kAidNoPruning: return "AID-P-B";
    case EnginePreset::kTagt: return "TAGT";
    case EnginePreset::kLinear: return "Linear";
  }
  return "unknown";
}

inline EngineOptions MakeEngineOptions(EnginePreset preset) {
  switch (preset) {
    case EnginePreset::kAid: return EngineOptions::Aid();
    case EnginePreset::kAidNoPredicatePruning:
      return EngineOptions::AidNoPredicatePruning();
    case EnginePreset::kAidNoPruning: return EngineOptions::AidNoPruning();
    case EnginePreset::kTagt: return EngineOptions::Tagt();
    case EnginePreset::kLinear: return EngineOptions::Linear();
  }
  return EngineOptions::Aid();
}

/// Session-level knobs beyond the engine options.
struct SessionOptions {
  /// The engine configuration of the main discovery run. Carries the
  /// session's parallelism too (EngineOptions::parallelism): Session
  /// propagates it to the TargetFactory so backends build exec/ replica
  /// pools, and the engine treats parallelism > 1 as license for batched
  /// linear-scan dispatch.
  EngineOptions engine = EngineOptions::Aid();
  /// Also run a TAGT baseline over the same target after the main run (the
  /// paper's Figure 7 comparison). The baseline reuses the target, so its
  /// executions add to the target's cost counters.
  bool run_tagt_baseline = false;
  EngineOptions tagt_baseline = EngineOptions::Tagt();
  /// Render human-readable root-cause / causal-path strings into the
  /// SessionReport (costs a catalog lookup per path predicate).
  bool describe = true;
};

}  // namespace aid

#endif  // AID_API_OPTIONS_H_
