#include "api/session.h"

#include <utility>

#include "exec/parallel_target.h"

namespace aid {

Result<SessionReport> Session::Run() {
  return RunInternal(options_.engine, options_.run_tagt_baseline);
}

Result<SessionReport> Session::Run(const EngineOptions& engine_options) {
  return RunInternal(engine_options, /*run_baseline=*/false);
}

Result<SessionReport> Session::RunInternal(const EngineOptions& engine_options,
                                           bool run_baseline) {
  SessionReport report;
  report.target_name = std::string(target_->name());
  report.sd_predicates = target_->sd_predicate_count();

  Tracer* tracer = telemetry_ != nullptr ? telemetry_->tracer() : nullptr;
  if (dag() == nullptr) {
    // SD ran inside the backend's construction; its phase is announced once
    // here, alongside the one-time DAG construction, so repeated Run calls
    // do not replay phases whose work is not redone. The SD span is
    // announced the same way (the work already happened during
    // observation); the DAG span times the actual build.
    if (observer_ != nullptr) {
      observer_->OnPhaseChanged(SessionPhase::kStatisticalDebugging);
      observer_->OnPhaseChanged(SessionPhase::kAcDagConstruction);
    }
    ScopedSpan(tracer, "statistical_debugging").End();
    ScopedSpan dag_span(tracer, "acdag_construction");
    borrowed_dag_ = target_->prebuilt_dag();
    if (borrowed_dag_ == nullptr) {
      AID_ASSIGN_OR_RETURN(AcDag built, target_->BuildAcDag());
      dag_.emplace(std::move(built));
    }
  }
  const AcDag* dag = this->dag();
  report.acdag_nodes = static_cast<int>(dag->size());

  EngineOptions engine = engine_options;
  if (engine.observer == nullptr) engine.observer = observer_;
  if (engine.budget.enabled && engine.budget.advice.sd_scores.empty()) {
    // Backends that ran statistical debugging seed the budget priors with
    // their suspiciousness ranking; explicit advice always wins.
    engine.budget.advice.sd_scores = target_->sd_suspiciousness();
  }
  {
    CausalPathDiscovery discovery(dag, target_->intervention_target(),
                                  engine);
    AID_ASSIGN_OR_RETURN(report.discovery, discovery.Run());
  }
  // Attach what static analysis did (lint counts from observation, pruning
  // counters from the DAG build). ran == false when analysis was off.
  report.discovery.analysis = target_->analysis_summary();
  if (run_baseline) {
    // The baseline is a silent comparison run: it reuses the target but not
    // the observer.
    CausalPathDiscovery discovery(dag, target_->intervention_target(),
                                  options_.tagt_baseline);
    AID_ASSIGN_OR_RETURN(DiscoveryReport baseline, discovery.Run());
    report.tagt_baseline = std::move(baseline);
  }

  if (options_.describe) {
    const PredicateCatalog* catalog = target_->catalog();
    const SymbolTable* methods = target_->method_names();
    const SymbolTable* objects = target_->object_names();
    if (report.discovery.has_root_cause()) {
      report.root_cause = catalog->Describe(report.discovery.root_cause(),
                                            methods, objects);
    }
    report.causal_path.reserve(report.discovery.causal_path.size());
    for (PredicateId id : report.discovery.causal_path) {
      report.causal_path.push_back(catalog->Describe(id, methods, objects));
    }
  }

  if (observer_ != nullptr) {
    observer_->OnPhaseChanged(SessionPhase::kFinished);
  }
  return report;
}

std::string Session::Render(const SessionReport& report,
                            ReportRenderOptions options) const {
  if (dag() == nullptr) return "(session not run)";
  if (options.methods == nullptr) options.methods = target_->method_names();
  if (options.objects == nullptr) options.objects = target_->object_names();
  return RenderReport(report.discovery, *dag(), options);
}

SessionBuilder& SessionBuilder::WithTarget(std::string backend,
                                           TargetConfig config) {
  backend_ = std::move(backend);
  config_ = std::move(config);
  prebuilt_target_.reset();
  return *this;
}

SessionBuilder& SessionBuilder::WithTarget(
    std::unique_ptr<SessionTarget> target) {
  prebuilt_target_ = std::move(target);
  backend_.clear();
  return *this;
}

SessionBuilder& SessionBuilder::WithProgram(const Program* program,
                                            VmTargetOptions options) {
  TargetConfig config;
  config.program = program;
  config.vm = options;
  return WithTarget("vm", std::move(config));
}

SessionBuilder& SessionBuilder::WithModel(const GroundTruthModel* model) {
  TargetConfig config;
  config.model = model;
  return WithTarget("model", std::move(config));
}

SessionBuilder& SessionBuilder::WithFlakyModel(const GroundTruthModel* model,
                                               double manifest_probability,
                                               uint64_t seed) {
  TargetConfig config;
  config.model = model;
  config.manifest_probability = manifest_probability;
  config.flaky_seed = seed;
  return WithTarget("flaky-model", std::move(config));
}

SessionBuilder& SessionBuilder::WithCaseStudy(std::string name) {
  TargetConfig config;
  config.case_study = std::move(name);
  return WithTarget("case", std::move(config));
}

SessionBuilder& SessionBuilder::WithEngine(EnginePreset preset) {
  options_.engine = MakeEngineOptions(preset);
  return *this;
}

SessionBuilder& SessionBuilder::WithEngineOptions(
    const EngineOptions& options) {
  options_.engine = options;
  return *this;
}

SessionBuilder& SessionBuilder::WithTrials(int trials_per_intervention) {
  trials_ = trials_per_intervention;
  return *this;
}

SessionBuilder& SessionBuilder::WithAdaptiveBudget(BudgetOptions options) {
  budget_ = std::move(options);
  return *this;
}

SessionBuilder& SessionBuilder::WithSeed(uint64_t seed) {
  seed_ = seed;
  return *this;
}

SessionBuilder& SessionBuilder::WithBatchedDispatch(bool batched) {
  batched_ = batched;
  return *this;
}

SessionBuilder& SessionBuilder::WithParallelism(int parallelism) {
  parallelism_ = parallelism;
  return *this;
}

SessionBuilder& SessionBuilder::WithScheduler(
    const SchedulerOptions& scheduler) {
  scheduler_ = scheduler;
  return *this;
}

SessionBuilder& SessionBuilder::WithProcessIsolation(int trial_deadline_ms) {
  isolation_deadline_ms_ = trial_deadline_ms;
  return *this;
}

SessionBuilder& SessionBuilder::WithRemoteFleet(
    std::vector<std::string> endpoints, int trial_deadline_ms) {
  fleet_endpoints_ = std::move(endpoints);
  fleet_trial_deadline_ms_ = trial_deadline_ms;
  return *this;
}

SessionBuilder& SessionBuilder::WithStaticAnalysis(AnalysisOptions options) {
  analysis_ = options;
  return *this;
}

SessionBuilder& SessionBuilder::WithTelemetry(TelemetryOptions options) {
  telemetry_ = Telemetry::Create(options);
  return *this;
}

SessionBuilder& SessionBuilder::WithTelemetry(
    std::shared_ptr<Telemetry> telemetry) {
  telemetry_ = std::move(telemetry);
  return *this;
}

SessionBuilder& SessionBuilder::WithObserver(Observer* observer) {
  observer_ = observer;
  return *this;
}

SessionBuilder& SessionBuilder::WithTagtBaseline(bool run) {
  options_.run_tagt_baseline = run;
  return *this;
}

SessionBuilder& SessionBuilder::WithTagtBaselineOptions(
    const EngineOptions& options) {
  options_.tagt_baseline = options;
  options_.run_tagt_baseline = true;
  return *this;
}

SessionBuilder& SessionBuilder::WithDescriptions(bool describe) {
  options_.describe = describe;
  return *this;
}

Result<Session> SessionBuilder::Build() {
  // The deferred knobs override the engine options regardless of the order
  // the builder calls arrived in.
  if (trials_.has_value()) {
    options_.engine.trials_per_intervention = *trials_;
    options_.tagt_baseline.trials_per_intervention = *trials_;
  }
  {
    const Status valid = ValidateTrialsPerIntervention(
        options_.engine.trials_per_intervention);
    if (!valid.ok()) {
      return Status(valid.code(), "SessionBuilder: " + valid.message());
    }
  }
  if (budget_.has_value()) {
    const Status valid = ValidateBudgetOptions(*budget_);
    if (!valid.ok()) {
      return Status(valid.code(), "SessionBuilder: " + valid.message());
    }
    // The main engine only: the TAGT baseline stays fixed-trial so its
    // execution counts remain a meaningful comparison point.
    options_.engine.budget = *budget_;
  }
  if (seed_.has_value()) options_.engine.seed = *seed_;
  if (batched_.has_value()) options_.engine.batched_dispatch = *batched_;
  // WithParallelism wins; otherwise honor parallelism carried in by
  // WithEngineOptions, so the engine's dispatch mode and the target's
  // replica pool can never silently disagree.
  const int parallelism =
      parallelism_.value_or(options_.engine.parallelism);
  {
    const Status valid = ValidateParallelism(parallelism);
    if (!valid.ok()) {
      return Status(valid.code(), "SessionBuilder: " + valid.message());
    }
  }
  options_.engine.parallelism = parallelism;
  options_.tagt_baseline.parallelism = parallelism;
  config_.parallelism = parallelism;
  if (scheduler_.has_value()) {
    // Validated here too (not only in the factory) so a bad knob fails the
    // build even on paths that never reach a replica pool.
    const Status valid = ValidateSchedulerOptions(*scheduler_);
    if (!valid.ok()) {
      return Status(valid.code(), "SessionBuilder: " + valid.message());
    }
    config_.scheduler = *scheduler_;
  }
  if (isolation_deadline_ms_.has_value()) {
    if (*isolation_deadline_ms_ < 0) {
      return Status::InvalidArgument(
          "SessionBuilder: process-isolation trial deadline must be >= 0 ms, "
          "got " + std::to_string(*isolation_deadline_ms_));
    }
    config_.isolation = Isolation::kSubprocess;
    config_.subprocess.trial_deadline_ms = *isolation_deadline_ms_;
  }
  if (fleet_endpoints_.has_value()) {
    if (isolation_deadline_ms_.has_value()) {
      return Status::InvalidArgument(
          "SessionBuilder: WithRemoteFleet and WithProcessIsolation are "
          "mutually exclusive (the fleet already sandboxes every replica in "
          "a runner-side child process)");
    }
    if (fleet_endpoints_->empty()) {
      return Status::InvalidArgument(
          "SessionBuilder: WithRemoteFleet needs at least one "
          "\"host:port\" runner endpoint");
    }
    if (fleet_trial_deadline_ms_ < 0) {
      return Status::InvalidArgument(
          "SessionBuilder: remote-fleet trial deadline must be >= 0 ms, "
          "got " + std::to_string(fleet_trial_deadline_ms_));
    }
    config_.fleet = *fleet_endpoints_;
    config_.remote.trial_deadline_ms = fleet_trial_deadline_ms_;
  }
  if (analysis_.has_value()) config_.analysis = *analysis_;
  // The main engine is instrumented; the TAGT baseline never is, so the
  // metric totals stay an exact mirror of the main run's DiscoveryReport.
  config_.telemetry = telemetry_;
  options_.engine.telemetry = telemetry_.get();

  std::unique_ptr<SessionTarget> target = std::move(prebuilt_target_);
  if (target != nullptr && config_.parallelism > 1) {
    return Status::InvalidArgument(
        "SessionBuilder: parallelism > 1 requires a factory backend; a "
        "prebuilt SessionTarget cannot be replicated from outside (wrap its "
        "intervention target in exec::ParallelTarget before building it, "
        "and use WithBatchedDispatch(true) if only batched linear-scan "
        "dispatch is wanted)");
  }
  if (target != nullptr && config_.isolation == Isolation::kSubprocess) {
    return Status::InvalidArgument(
        "SessionBuilder: process isolation requires a factory backend; a "
        "prebuilt SessionTarget cannot be re-hosted in a subprocess (build "
        "it over proc::SubprocessTarget instead)");
  }
  if (target != nullptr && !config_.fleet.empty()) {
    return Status::InvalidArgument(
        "SessionBuilder: a remote fleet requires a factory backend; a "
        "prebuilt SessionTarget cannot be shipped to runners (build it over "
        "net::FleetTarget instead)");
  }
  if (target != nullptr && analysis_.has_value() && analysis_->enabled) {
    return Status::InvalidArgument(
        "SessionBuilder: static analysis requires a factory backend; a "
        "prebuilt SessionTarget observes (and builds its DAG) before the "
        "session could analyze it (pass AnalysisOptions to the backend "
        "directly, e.g. VmTargetOptions::analysis)");
  }
  if (target == nullptr) {
    if (backend_.empty()) {
      return Status::InvalidArgument(
          "SessionBuilder: no target configured (call WithTarget / "
          "WithProgram / WithModel / WithCaseStudy first)");
    }
    if (observer_ != nullptr) {
      observer_->OnPhaseChanged(SessionPhase::kObservation);
    }
    Tracer* tracer =
        telemetry_ != nullptr ? telemetry_->tracer() : nullptr;
    ScopedSpan observation_span(tracer, "observation");
    AID_ASSIGN_OR_RETURN(target, TargetFactory::Create(backend_, config_));
  }
  return Session(std::move(target), options_, observer_, telemetry_);
}

}  // namespace aid
