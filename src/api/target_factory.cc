#include "api/target_factory.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <optional>
#include <utility>

#include "casestudies/case_study.h"
#include "exec/parallel_target.h"
#include "net/fleet_target.h"
#include "sd/statistical_debugger.h"
#include "synth/flaky_target.h"
#include "telemetry/telemetry.h"

namespace aid {
namespace {

/// The one composition rule of the execution substrates: subprocess
/// sandboxing and a remote fleet are both "replicas live in their own
/// process", so stacking them is a configuration error, not a feature.
Status ValidateSubstrate(const std::vector<std::string>& fleet,
                         Isolation isolation) {
  if (!fleet.empty() && isolation == Isolation::kSubprocess) {
    return Status::InvalidArgument(
        "target config: a remote fleet and subprocess isolation are "
        "mutually exclusive (the fleet already sandboxes every replica in "
        "a runner-side child process)");
  }
  return Status::OK();
}

/// A VmTarget plus the statistical-debugging stage, optionally owning the
/// case study the program came from. Observation always runs in-process
/// (the extractor needs the traces); under subprocess isolation the
/// *intervention* side is a SubprocessTarget over the same subject, whose
/// child re-runs the deterministic observation scan and therefore rebuilds
/// the identical predicate catalog (cross-checked at handshake).
class VmSessionTarget : public SessionTarget {
 public:
  static Result<std::unique_ptr<SessionTarget>> Create(
      std::string name, const Program* program, const VmTargetOptions& options,
      std::optional<CaseStudy> owned_study, int parallelism = 1,
      Isolation isolation = Isolation::kInProcess,
      const SubprocessOptions& subprocess = {},
      const std::string& case_key = {},
      const std::vector<std::string>& fleet = {},
      const RemoteOptions& remote = {},
      const SchedulerOptions& scheduler = {},
      const AnalysisOptions& analysis = {},
      std::shared_ptr<Telemetry> telemetry = nullptr) {
    AID_RETURN_IF_ERROR(ValidateParallelism(parallelism));
    AID_RETURN_IF_ERROR(ValidateSchedulerOptions(scheduler));
    AID_RETURN_IF_ERROR(ValidateSubstrate(fleet, isolation));
    std::unique_ptr<VmSessionTarget> target(
        new VmSessionTarget(std::move(name)));
    VmTargetOptions effective = options;
    if (owned_study.has_value()) {
      // Move the study into the target first so the program pointer is
      // taken from its final location.
      target->study_ = std::move(owned_study);
      program = &target->study_->program;
      effective = target->study_->target_options;
    }
    // The session-level analysis knob wins over whatever the backend
    // options carry -- crucially AFTER the owned-study overwrite above, or
    // WithStaticAnalysis would be silently dropped on case studies.
    if (analysis.enabled) effective.analysis = analysis;
    if (program == nullptr) {
      return Status::InvalidArgument(
          "vm target: TargetConfig::program is required");
    }
    target->program_ = program;
    AID_ASSIGN_OR_RETURN(target->vm_target_,
                         VmTarget::Create(program, effective));
    AID_ASSIGN_OR_RETURN(
        StatisticalDebugger sd,
        StatisticalDebugger::Analyze(target->vm_target_->extractor().catalog(),
                                     target->vm_target_->extractor().logs()));
    target->sd_count_ = static_cast<int>(sd.FullyDiscriminative().size());
    for (const RankedPredicate& ranked : sd.Ranked()) {
      target->sd_scores_.push_back(
          SuspiciousnessScore{ranked.id, ranked.stats.f1()});
    }
    if (isolation == Isolation::kSubprocess || !fleet.empty()) {
      SubjectSpec spec;
      if (!case_key.empty()) {
        spec.kind = SubjectKind::kCase;
        spec.case_key = case_key;
      } else {
        spec.kind = SubjectKind::kVmProgram;
        spec.program = program;
        spec.vm = effective;
      }
      const auto catalog_size = static_cast<uint32_t>(
          target->vm_target_->extractor().catalog().size());
      if (!fleet.empty()) {
        AID_ASSIGN_OR_RETURN(std::vector<Endpoint> endpoints,
                             ParseEndpoints(fleet));
        RemoteOptions opts = remote;
        opts.expected_catalog_size = catalog_size;
        opts.telemetry = telemetry;
        AID_ASSIGN_OR_RETURN(target->fleet_,
                             FleetTarget::Create(std::move(endpoints), spec,
                                                 opts));
      } else {
        SubprocessOptions opts = subprocess;
        opts.expected_catalog_size = catalog_size;
        opts.telemetry = telemetry;
        AID_ASSIGN_OR_RETURN(target->subprocess_,
                             SubprocessTarget::Create(spec, opts));
      }
    }
    if (parallelism > 1) {
      AID_ASSIGN_OR_RETURN(
          target->parallel_,
          ParallelTarget::Create(target->replicable_target(), parallelism,
                                 scheduler, telemetry.get()));
    }
    // Keep the bundle alive as long as the target stack that records into
    // it (the session usually shares it too).
    target->telemetry_ = std::move(telemetry);
    return std::unique_ptr<SessionTarget>(std::move(target));
  }

  std::string_view name() const override { return name_; }
  std::string_view description() const override {
    return study_.has_value() ? std::string_view(study_->origin)
                              : std::string_view();
  }
  InterventionTarget* intervention_target() override {
    if (parallel_ != nullptr) return parallel_.get();
    return replicable_target();
  }
  Result<AcDag> BuildAcDag() override { return vm_target_->BuildAcDag(); }
  const PredicateCatalog* catalog() const override {
    return &vm_target_->extractor().catalog();
  }
  const SymbolTable* method_names() const override {
    return &program_->method_names();
  }
  const SymbolTable* object_names() const override {
    return &program_->object_names();
  }
  int sd_predicate_count() const override { return sd_count_; }
  std::vector<SuspiciousnessScore> sd_suspiciousness() const override {
    return sd_scores_;
  }
  AnalysisSummary analysis_summary() const override {
    return vm_target_->analysis_summary();
  }

 private:
  explicit VmSessionTarget(std::string name) : name_(std::move(name)) {}

  /// The serial intervention backend: the remote fleet when one is
  /// configured, the isolated child when subprocess isolation is on, the
  /// in-process VM target otherwise.
  ReplicableTarget* replicable_target() {
    if (fleet_ != nullptr) return fleet_.get();
    if (subprocess_ != nullptr) return subprocess_.get();
    return vm_target_.get();
  }

  std::string name_;
  std::optional<CaseStudy> study_;  ///< set iff this target owns its study
  const Program* program_ = nullptr;
  std::unique_ptr<VmTarget> vm_target_;
  /// Process-isolated intervention backend; set iff isolation = subprocess.
  std::unique_ptr<SubprocessTarget> subprocess_;
  /// Remote-fleet intervention backend; set iff the config named a fleet.
  std::unique_ptr<FleetTarget> fleet_;
  /// Shared with every substrate above that records into it; held so the
  /// bundle cannot die before the recording targets do.
  std::shared_ptr<Telemetry> telemetry_;
  /// Replica pool over replicable_target(); set iff parallelism > 1.
  /// Declared last: it borrows the targets above, so it must die first.
  std::unique_ptr<ParallelTarget> parallel_;
  int sd_count_ = 0;
  /// SD suspiciousness ranking (F1 scores) for adaptive-budget priors.
  std::vector<SuspiciousnessScore> sd_scores_;
};

/// A ground-truth model target (deterministic or flaky). Borrows the model.
class ModelSessionTarget : public SessionTarget {
 public:
  static Result<std::unique_ptr<SessionTarget>> Create(
      std::string name, const GroundTruthModel* model,
      std::unique_ptr<ReplicableTarget> intervention, int parallelism,
      const SchedulerOptions& scheduler = {},
      const AnalysisOptions& analysis = {},
      std::shared_ptr<Telemetry> telemetry = nullptr) {
    AID_RETURN_IF_ERROR(ValidateParallelism(parallelism));
    AID_RETURN_IF_ERROR(ValidateSchedulerOptions(scheduler));
    auto target = std::make_unique<ModelSessionTarget>(
        std::move(name), model, std::move(intervention));
    target->analysis_ = analysis;
    if (parallelism > 1) {
      AID_ASSIGN_OR_RETURN(
          target->parallel_,
          ParallelTarget::Create(target->intervention_.get(), parallelism,
                                 scheduler, telemetry.get()));
    }
    target->telemetry_ = std::move(telemetry);
    return std::unique_ptr<SessionTarget>(std::move(target));
  }

  ModelSessionTarget(std::string name, const GroundTruthModel* model,
                     std::unique_ptr<ReplicableTarget> intervention)
      : name_(std::move(name)),
        model_(model),
        intervention_(std::move(intervention)) {}

  std::string_view name() const override { return name_; }
  InterventionTarget* intervention_target() override {
    if (parallel_ != nullptr) return parallel_.get();
    return intervention_.get();
  }
  Result<AcDag> BuildAcDag() override {
    if (!analysis_.enabled || !analysis_.prune_edges) {
      return model_->BuildAcDag();
    }
    // Dependence-based pruning over the model's declared channels. With no
    // declared edges the model build is the plain one (all-may-influence),
    // but the summary still records that analysis ran.
    summary_.ran = true;
    AcDag::PruneStats stats{};
    auto dag = model_->BuildAcDag(/*apply_dependence_pruning=*/true, &stats);
    if (dag.ok() && !model_->dependence_edges().empty()) {
      summary_.nodes_before = stats.nodes_before;
      summary_.nodes_pruned = stats.nodes_pruned;
      summary_.edges_before = stats.edges_before;
      summary_.edges_pruned = stats.edges_pruned;
    }
    return dag;
  }
  const PredicateCatalog* catalog() const override {
    return &model_->catalog();
  }
  AnalysisSummary analysis_summary() const override { return summary_; }

 private:
  std::string name_;
  const GroundTruthModel* model_;
  std::unique_ptr<ReplicableTarget> intervention_;
  /// Shared with the substrates above; keeps the bundle alive while the
  /// recording targets live.
  std::shared_ptr<Telemetry> telemetry_;
  /// Replica pool over intervention_; set iff parallelism > 1.
  std::unique_ptr<ParallelTarget> parallel_;
  AnalysisOptions analysis_;
  AnalysisSummary summary_;
};

/// Borrows an externally assembled InterventionTarget + AC-DAG.
class AdapterSessionTarget : public SessionTarget {
 public:
  AdapterSessionTarget(std::string name, InterventionTarget* target,
                       const AcDag* dag, const PredicateCatalog* catalog,
                       const SymbolTable* methods, const SymbolTable* objects)
      : name_(std::move(name)),
        target_(target),
        dag_(dag),
        catalog_(catalog),
        methods_(methods),
        objects_(objects) {}

  std::string_view name() const override { return name_; }
  InterventionTarget* intervention_target() override { return target_; }
  Result<AcDag> BuildAcDag() override { return *dag_; }
  const AcDag* prebuilt_dag() const override { return dag_; }
  const PredicateCatalog* catalog() const override { return catalog_; }
  const SymbolTable* method_names() const override { return methods_; }
  const SymbolTable* object_names() const override { return objects_; }

 private:
  std::string name_;
  InterventionTarget* target_;
  const AcDag* dag_;
  const PredicateCatalog* catalog_;
  const SymbolTable* methods_;
  const SymbolTable* objects_;
};

Result<std::unique_ptr<SessionTarget>> CreateCaseTarget(
    const std::string& key, const TargetConfig& config) {
  AID_ASSIGN_OR_RETURN(CaseStudy study, MakeCaseStudyByKey(key));
  return VmSessionTarget::Create("case:" + key, nullptr, {},
                                 std::move(study), config.parallelism,
                                 config.isolation, config.subprocess, key,
                                 config.fleet, config.remote,
                                 config.scheduler, config.analysis,
                                 config.telemetry);
}

struct Registry {
  std::mutex mu;
  std::map<std::string, TargetFactory::Creator> creators;

  Registry() {
    creators["vm"] = [](const TargetConfig& config) {
      return VmSessionTarget::Create("vm", config.program, config.vm,
                                     std::nullopt, config.parallelism,
                                     config.isolation, config.subprocess,
                                     /*case_key=*/{}, config.fleet,
                                     config.remote, config.scheduler,
                                     config.analysis, config.telemetry);
    };
    creators["model"] = [](const TargetConfig& config) {
      return MakeModelSessionTarget(config.model, 1.0, 1, "model",
                                    config.parallelism, config.isolation,
                                    config.subprocess, config.fleet,
                                    config.remote, config.scheduler,
                                    config.analysis, config.telemetry);
    };
    creators["flaky-model"] = [](const TargetConfig& config) {
      return MakeModelSessionTarget(config.model, config.manifest_probability,
                                    config.flaky_seed, "flaky-model",
                                    config.parallelism, config.isolation,
                                    config.subprocess, config.fleet,
                                    config.remote, config.scheduler,
                                    config.analysis, config.telemetry);
    };
    creators["case"] = [](const TargetConfig& config) {
      return CreateCaseTarget(config.case_study, config);
    };
    for (const std::string& key : CaseStudyKeys()) {
      creators["case:" + key] = [key](const TargetConfig& config) {
        return CreateCaseTarget(key, config);
      };
    }
  }
};

Registry& GetRegistry() {
  static Registry* registry = new Registry;
  return *registry;
}

}  // namespace

void TargetFactory::Register(std::string name, Creator creator) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.creators[std::move(name)] = std::move(creator);
}

bool TargetFactory::IsRegistered(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  return registry.creators.count(name) > 0;
}

std::vector<std::string> TargetFactory::RegisteredNames() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<std::string> names;
  names.reserve(registry.creators.size());
  for (const auto& [name, creator] : registry.creators) {
    names.push_back(name);
  }
  return names;
}

Result<std::unique_ptr<SessionTarget>> TargetFactory::Create(
    const std::string& name, const TargetConfig& config) {
  Creator creator;
  {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    auto it = registry.creators.find(name);
    if (it == registry.creators.end()) {
      return Status::NotFound("no target backend registered as '" + name +
                              "'");
    }
    creator = it->second;  // copy: creators may call back into the factory
  }
  return creator(config);
}

Result<std::unique_ptr<SessionTarget>> MakeVmSessionTarget(
    const Program* program, const VmTargetOptions& options, std::string name,
    int parallelism, Isolation isolation, const SubprocessOptions& subprocess,
    const std::vector<std::string>& fleet, const RemoteOptions& remote,
    const SchedulerOptions& scheduler, const AnalysisOptions& analysis,
    std::shared_ptr<Telemetry> telemetry) {
  return VmSessionTarget::Create(std::move(name), program, options,
                                 std::nullopt, parallelism, isolation,
                                 subprocess, /*case_key=*/{}, fleet, remote,
                                 scheduler, analysis, std::move(telemetry));
}

Result<std::unique_ptr<SessionTarget>> MakeModelSessionTarget(
    const GroundTruthModel* model, double manifest_probability,
    uint64_t flaky_seed, std::string name, int parallelism,
    Isolation isolation, const SubprocessOptions& subprocess,
    const std::vector<std::string>& fleet, const RemoteOptions& remote,
    const SchedulerOptions& scheduler, const AnalysisOptions& analysis,
    std::shared_ptr<Telemetry> telemetry) {
  if (model == nullptr) {
    return Status::InvalidArgument(
        "model target: TargetConfig::model is required");
  }
  AID_RETURN_IF_ERROR(ValidateSubstrate(fleet, isolation));
  std::unique_ptr<ReplicableTarget> intervention;
  if (isolation == Isolation::kSubprocess || !fleet.empty()) {
    SubjectSpec spec;
    spec.kind = manifest_probability >= 1.0 ? SubjectKind::kModel
                                            : SubjectKind::kFlakyModel;
    spec.model = model;
    spec.manifest_probability = manifest_probability;
    spec.flaky_seed = flaky_seed;
    const auto catalog_size =
        static_cast<uint32_t>(model->catalog().size());
    if (!fleet.empty()) {
      AID_ASSIGN_OR_RETURN(std::vector<Endpoint> endpoints,
                           ParseEndpoints(fleet));
      RemoteOptions opts = remote;
      opts.expected_catalog_size = catalog_size;
      opts.telemetry = telemetry;
      AID_ASSIGN_OR_RETURN(intervention,
                           FleetTarget::Create(std::move(endpoints), spec,
                                               opts));
    } else {
      SubprocessOptions opts = subprocess;
      opts.expected_catalog_size = catalog_size;
      opts.telemetry = telemetry;
      AID_ASSIGN_OR_RETURN(intervention, SubprocessTarget::Create(spec, opts));
    }
  } else if (manifest_probability >= 1.0) {
    intervention = std::make_unique<ModelTarget>(model);
  } else {
    intervention = std::make_unique<FlakyModelTarget>(
        model, manifest_probability, flaky_seed);
  }
  return ModelSessionTarget::Create(std::move(name), model,
                                    std::move(intervention), parallelism,
                                    scheduler, analysis,
                                    std::move(telemetry));
}

std::unique_ptr<SessionTarget> MakeAdapterSessionTarget(
    InterventionTarget* target, const AcDag* dag,
    const PredicateCatalog* catalog, const SymbolTable* methods,
    const SymbolTable* objects, std::string name) {
  return std::make_unique<AdapterSessionTarget>(std::move(name), target, dag,
                                                catalog, methods, objects);
}

}  // namespace aid
