#include "net/fleet_target.h"

#include <utility>

namespace aid {

Result<std::unique_ptr<FleetTarget>> FleetTarget::Create(
    std::vector<Endpoint> endpoints, const SubjectSpec& spec,
    RemoteOptions options) {
  // Reuse RemoteTarget's validation and spec freezing wholesale, then lift
  // the frozen bytes: the fleet IS a dealer of RemoteTargets.
  AID_ASSIGN_OR_RETURN(std::unique_ptr<RemoteTarget> prototype,
                       RemoteTarget::Create(endpoints, spec, options));
  auto fleet = std::unique_ptr<FleetTarget>(new FleetTarget(
      prototype->spec_bytes_, std::move(endpoints), std::move(options)));
  return fleet;
}

std::vector<Endpoint> FleetTarget::RotatedEndpoints(uint64_t first) const {
  const size_t m = endpoints_.size();
  std::vector<Endpoint> rotated;
  rotated.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    rotated.push_back(endpoints_[(first + i) % m]);
  }
  return rotated;
}

Result<TargetRunResult> FleetTarget::RunIntervened(
    const std::vector<PredicateId>& intervened, int trials) {
  if (self_ == nullptr) {
    const uint64_t slot = next_endpoint_->fetch_add(1);
    self_.reset(new RemoteTarget(spec_bytes_, RotatedEndpoints(slot),
                                 options_));
    self_->SeekTrial(trial_cursor_);
  }
  auto result = self_->RunIntervened(intervened, trials);
  trial_cursor_ = self_->trial_position();
  return result;
}

Result<std::unique_ptr<ReplicableTarget>> FleetTarget::Clone() const {
  const uint64_t slot = next_endpoint_->fetch_add(1);
  auto replica = std::unique_ptr<RemoteTarget>(new RemoteTarget(
      spec_bytes_, RotatedEndpoints(slot), options_));
  replica->SeekTrial(trial_cursor_);
  return std::unique_ptr<ReplicableTarget>(std::move(replica));
}

void FleetTarget::SeekTrial(uint64_t trial_index) {
  trial_cursor_ = trial_index;
  if (self_ != nullptr) self_->SeekTrial(trial_index);
}

}  // namespace aid
