#include "net/fleet_target.h"

#include <utility>

namespace aid {

Result<std::unique_ptr<FleetTarget>> FleetTarget::Create(
    std::vector<Endpoint> endpoints, const SubjectSpec& spec,
    RemoteOptions options) {
  // Reuse RemoteTarget's validation and spec freezing wholesale, then lift
  // the frozen bytes: the fleet IS a dealer of RemoteTargets.
  AID_ASSIGN_OR_RETURN(std::unique_ptr<RemoteTarget> prototype,
                       RemoteTarget::Create(endpoints, spec, options));
  auto fleet = std::unique_ptr<FleetTarget>(new FleetTarget(
      prototype->spec_bytes_, std::move(endpoints), std::move(options)));
  // The board mirrors its per-endpoint EWMAs and placement counts into the
  // session's telemetry; the Telemetry bundle outlives the target stack by
  // the shared_ptr held in the options.
  fleet->board_->AttachTelemetry(fleet->options_.telemetry.get());
  return fleet;
}

std::vector<Endpoint> FleetTarget::RotatedEndpoints(uint64_t first) const {
  const size_t m = endpoints_.size();
  std::vector<Endpoint> rotated;
  rotated.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    rotated.push_back(endpoints_[(first + i) % m]);
  }
  return rotated;
}

std::unique_ptr<RemoteTarget> FleetTarget::DealReplica() const {
  const size_t slot = board_->PlaceReplica(endpoints_);
  auto replica = std::unique_ptr<RemoteTarget>(new RemoteTarget(
      spec_bytes_, RotatedEndpoints(slot), options_));
  replica->latency_board_ = board_;
  replica->placed_on_ = endpoints_[slot];
  return replica;
}

Result<TargetRunResult> FleetTarget::RunIntervened(
    const std::vector<PredicateId>& intervened, int trials) {
  if (self_ == nullptr) {
    self_ = DealReplica();
    self_->SeekTrial(trial_cursor_);
  }
  auto result = self_->RunIntervened(intervened, trials);
  if (result.ok()) {
    trial_cursor_ = self_->trial_position();
  } else {
    // Commit only on success: the failed call consumed some unknowable
    // prefix of its trials, and adopting self_'s half-advanced position
    // would desync this cursor from what serial dispatch -- which stops at
    // its first error -- actually consumed. Re-align self_ instead so a
    // retry re-runs the same positions.
    self_->SeekTrial(trial_cursor_);
  }
  return result;
}

Result<std::unique_ptr<ReplicableTarget>> FleetTarget::Clone() const {
  std::unique_ptr<RemoteTarget> replica = DealReplica();
  replica->SeekTrial(trial_cursor_);
  return std::unique_ptr<ReplicableTarget>(std::move(replica));
}

void FleetTarget::SeekTrial(uint64_t trial_index) {
  trial_cursor_ = trial_index;
  if (self_ != nullptr) self_->SeekTrial(trial_index);
}

}  // namespace aid
