#include "net/socket.h"

#include <cerrno>
#include <cstring>

#if AID_NET_SUPPORTED
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace aid {

Result<Endpoint> ParseEndpoint(std::string_view text) {
  const size_t colon = text.find(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 >= text.size()) {
    return Status::InvalidArgument("endpoint '" + std::string(text) +
                                   "' is not host:port");
  }
  if (text.find(':', colon + 1) != std::string_view::npos) {
    return Status::InvalidArgument(
        "endpoint '" + std::string(text) +
        "' has multiple ':' (IPv6 literals are not supported; use a name)");
  }
  Endpoint endpoint;
  endpoint.host = std::string(text.substr(0, colon));
  const std::string_view port_text = text.substr(colon + 1);
  int port = 0;
  for (char c : port_text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("endpoint '" + std::string(text) +
                                     "' has a non-numeric port");
    }
    port = port * 10 + (c - '0');
    if (port > 65535) break;
  }
  if (port < 1 || port > 65535) {
    return Status::InvalidArgument("endpoint '" + std::string(text) +
                                   "' port must be in [1, 65535]");
  }
  endpoint.port = port;
  return endpoint;
}

Result<std::vector<Endpoint>> ParseEndpoints(
    const std::vector<std::string>& texts) {
  std::vector<Endpoint> endpoints;
  endpoints.reserve(texts.size());
  for (const std::string& text : texts) {
    AID_ASSIGN_OR_RETURN(Endpoint endpoint, ParseEndpoint(text));
    endpoints.push_back(std::move(endpoint));
  }
  return endpoints;
}

#if AID_NET_SUPPORTED

namespace {

Status ErrnoStatus(const std::string& op) {
  return Status::Internal("net: " + op + " failed: " + std::strerror(errno));
}

void SetCloexec(int fd) { ::fcntl(fd, F_SETFD, FD_CLOEXEC); }

void SetNodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// getaddrinfo over host:port for either binding or connecting.
Result<struct addrinfo*> Resolve(const std::string& host, int port,
                                 bool passive) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = passive ? AI_PASSIVE : 0;
  struct addrinfo* result = nullptr;
  const std::string port_text = std::to_string(port);
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               port_text.c_str(), &hints, &result);
  if (rc != 0) {
    return Status::InvalidArgument("net: cannot resolve '" + host +
                                   "': " + ::gai_strerror(rc));
  }
  return result;
}

/// poll() on one fd with EINTR retry against an absolute remaining budget.
/// Returns 1 (ready), 0 (timeout), or a Status via errno for real failures.
Result<int> PollOne(int fd, short events, int timeout_ms) {
  for (;;) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc >= 0) return rc;
    if (errno == EINTR) continue;
    return ErrnoStatus("poll");
  }
}

}  // namespace

Result<int> ListenOn(const std::string& host, int port, int backlog) {
  AID_ASSIGN_OR_RETURN(struct addrinfo* addrs,
                       Resolve(host, port, /*passive=*/true));
  Status last = Status::Internal("net: no addresses to bind");
  for (struct addrinfo* ai = addrs; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = ErrnoStatus("socket");
      continue;
    }
    SetCloexec(fd);
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 ||
        ::listen(fd, backlog) != 0) {
      last = ErrnoStatus("bind/listen on " + host + ":" +
                         std::to_string(port));
      ::close(fd);
      continue;
    }
    ::freeaddrinfo(addrs);
    return fd;
  }
  ::freeaddrinfo(addrs);
  return last;
}

Result<int> BoundPort(int listen_fd) {
  struct sockaddr_storage addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
                    &len) != 0) {
    return ErrnoStatus("getsockname");
  }
  if (addr.ss_family == AF_INET) {
    return static_cast<int>(
        ntohs(reinterpret_cast<struct sockaddr_in*>(&addr)->sin_port));
  }
  if (addr.ss_family == AF_INET6) {
    return static_cast<int>(
        ntohs(reinterpret_cast<struct sockaddr_in6*>(&addr)->sin6_port));
  }
  return Status::Internal("net: unexpected socket family");
}

Result<int> AcceptConnection(int listen_fd, int timeout_ms) {
  AID_ASSIGN_OR_RETURN(
      int ready, PollOne(listen_fd, POLLIN, timeout_ms <= 0 ? -1 : timeout_ms));
  if (ready == 0) {
    return Status::DeadlineExceeded("net: no connection within " +
                                    std::to_string(timeout_ms) + "ms");
  }
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      SetCloexec(fd);
      SetNodelay(fd);
      return fd;
    }
    if (errno == EINTR) continue;
    return ErrnoStatus("accept");
  }
}

Result<int> ConnectTo(const Endpoint& endpoint, int timeout_ms) {
  AID_ASSIGN_OR_RETURN(struct addrinfo* addrs,
                       Resolve(endpoint.host, endpoint.port,
                               /*passive=*/false));
  Status last = Status::Internal("net: no addresses for " +
                                 endpoint.ToString());
  for (struct addrinfo* ai = addrs; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = ErrnoStatus("socket");
      continue;
    }
    SetCloexec(fd);
    const int flags = ::fcntl(fd, F_GETFL);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);

    int rc;
    do {
      rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    } while (rc != 0 && errno == EINTR);

    if (rc != 0 && errno == EINPROGRESS) {
      Result<int> ready =
          PollOne(fd, POLLOUT, timeout_ms <= 0 ? -1 : timeout_ms);
      if (!ready.ok()) {
        ::close(fd);
        ::freeaddrinfo(addrs);
        return ready.status();
      }
      if (*ready == 0) {
        ::close(fd);
        ::freeaddrinfo(addrs);
        return Status::DeadlineExceeded("net: connect to " +
                                        endpoint.ToString() + " timed out");
      }
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
      if (so_error != 0) {
        errno = so_error;
        rc = -1;
      } else {
        rc = 0;
      }
    }
    if (rc != 0) {
      // ECONNREFUSED means nothing is listening there right now -- the
      // reconnect-with-backoff path wants to distinguish that (Aborted)
      // from local plumbing failures (Internal).
      last = errno == ECONNREFUSED
                 ? Status::Aborted("net: " + endpoint.ToString() +
                                   " refused the connection")
                 : ErrnoStatus("connect to " + endpoint.ToString());
      ::close(fd);
      continue;
    }
    ::fcntl(fd, F_SETFL, flags);
    SetNodelay(fd);
    ::freeaddrinfo(addrs);
    return fd;
  }
  ::freeaddrinfo(addrs);
  return last;
}

#else  // !AID_NET_SUPPORTED

Result<int> ListenOn(const std::string&, int, int) {
  return Status::Unimplemented("net: sockets unavailable on this platform");
}
Result<int> BoundPort(int) {
  return Status::Unimplemented("net: sockets unavailable on this platform");
}
Result<int> AcceptConnection(int, int) {
  return Status::Unimplemented("net: sockets unavailable on this platform");
}
Result<int> ConnectTo(const Endpoint&, int) {
  return Status::Unimplemented("net: sockets unavailable on this platform");
}

#endif  // AID_NET_SUPPORTED

}  // namespace aid
