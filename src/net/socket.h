// TCP plumbing for the remote-fleet subsystem: endpoints, listening
// sockets, and deadline-bounded connects/accepts.
//
// Everything here is transport setup; once a connection exists it is handed
// to net::SocketChannel and the byte protocol of proc/wire.h takes over.
// All syscalls retry EINTR; all timeouts are poll()-based so a silent peer
// surfaces as DeadlineExceeded instead of a wedged engine.
//
// Platform support matches src/proc/: POSIX sockets (and fork for the
// runner daemon). RemoteFleetSupported() gates every entry point; on other
// platforms they return Unimplemented.

#ifndef AID_NET_SOCKET_H_
#define AID_NET_SOCKET_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "proc/wire.h"

#define AID_NET_SUPPORTED AID_PROC_SUPPORTED

namespace aid {

/// True when this build can speak TCP to aid_runner daemons (and host them).
constexpr bool RemoteFleetSupported() { return AID_NET_SUPPORTED != 0; }

/// One runner address. `host` is a numeric address or resolvable name.
struct Endpoint {
  std::string host;
  int port = 0;

  std::string ToString() const { return host + ":" + std::to_string(port); }
  bool operator==(const Endpoint& other) const {
    return host == other.host && port == other.port;
  }
};

/// Parses "host:port" ("127.0.0.1:7601", "runner7:7601"). The port must be
/// in [1, 65535]; the host must be non-empty. (IPv6 literals would need
/// bracket syntax; the parser rejects multi-colon strings explicitly rather
/// than mis-splitting them.)
Result<Endpoint> ParseEndpoint(std::string_view text);

/// Convenience over a whole fleet list; fails on the first bad entry.
Result<std::vector<Endpoint>> ParseEndpoints(
    const std::vector<std::string>& texts);

/// Opens a listening TCP socket bound to host:port (port 0 = ephemeral,
/// read the outcome with BoundPort). SO_REUSEADDR + CLOEXEC.
Result<int> ListenOn(const std::string& host, int port, int backlog);

/// The locally bound port of a listening socket.
Result<int> BoundPort(int listen_fd);

/// Accepts one connection within `timeout_ms` (<= 0 = block indefinitely).
/// DeadlineExceeded when nothing arrived; the accepted socket has CLOEXEC
/// and TCP_NODELAY set (frames are small; Nagle would serialize the
/// RUN_TRIAL/VERDICT ping-pong into 40ms stalls).
Result<int> AcceptConnection(int listen_fd, int timeout_ms);

/// Connects to `endpoint` within `timeout_ms` (<= 0 = block indefinitely):
/// non-blocking connect + poll, then SO_ERROR is checked. Resolution goes
/// through getaddrinfo, so names work. Aborted when the peer refuses
/// (nothing listening), DeadlineExceeded on timeout. The socket has CLOEXEC
/// and TCP_NODELAY set.
Result<int> ConnectTo(const Endpoint& endpoint, int timeout_ms);

}  // namespace aid

#endif  // AID_NET_SOCKET_H_
