// RemoteTarget: a subject replica hosted by an aid_runner, behind TCP.
//
// The remote twin of proc::SubprocessTarget: the same SubjectSpec is
// serialized once, the same HELLO/SPEC/READY handshake and RUN_TRIAL
// conversation run (shared drivers in proc/client.h), and the same
// positional-determinism contract holds -- the global trial index rides in
// every RUN_TRIAL frame, so a fleet of remote replicas produces the
// bit-identical DiscoveryReport an in-process run would. Only the failure
// lifecycle differs:
//
//   * connection lost mid-trial (runner's session child crashed, runner
//     died, network broke)   -> the trial is recorded failing with
//     TrialOutcome::kCrashed and the partial log; the target reconnects
//     with exponential backoff, failing over across its endpoint list;
//   * per-trial deadline     -> the connection is dropped -- which is also
//     what kills the hung subject: the runner-side watchdog sees the
//     hangup and exits the session child -- and the trial records
//     TrialOutcome::kTimedOut; reconnect as above;
//   * reconnect budget spent -> Aborted, mirroring max_respawns.
//
// Reconnects count as TargetHealth::respawns (each one puts a fresh
// session child behind the connection), so fleet turbulence lands in
// DiscoveryReport::{crashed_trials,timed_out_trials,respawns} unchanged.
//
// RemoteTarget is a ReplicableTarget: Clone() hands out another
// lazily-connecting replica over the same endpoints, so remote runners
// pool under exec::ParallelTarget exactly like local replicas. Use
// net::FleetTarget to spread a pool's clones across several runners.

#ifndef AID_NET_REMOTE_TARGET_H_
#define AID_NET_REMOTE_TARGET_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/replicable.h"
#include "net/channel.h"
#include "net/latency.h"
#include "net/socket.h"
#include "proc/subject_spec.h"

namespace aid {

class Telemetry;  // telemetry/telemetry.h; nullable everywhere below

struct RemoteOptions {
  /// Wall-clock budget per trial in milliseconds; expiring drops the
  /// connection and records a timed-out trial. 0 = no deadline -- a hung
  /// remote subject then hangs the session, so set one for real fleets.
  int trial_deadline_ms = 0;

  /// Budget per connect attempt: TCP connect plus the whole handshake
  /// (VM subjects re-run their observation scan on the runner).
  int connect_timeout_ms = 60000;

  /// Connect/handshake attempts per (re)connect before giving up; each
  /// failed attempt fails over to the next endpoint and backs off.
  int connect_attempts = 5;

  /// Exponential backoff between failed connect attempts: attempt k >= 1
  /// sleeps min(backoff_ms << (k - 1), backoff_max_ms) first.
  int backoff_ms = 25;
  int backoff_max_ms = 1000;

  /// Give-up bound on reconnects across this target's lifetime; crossing
  /// it fails the run with Aborted (the crash-loop guard, mirroring
  /// SubprocessOptions::max_respawns).
  int max_reconnects = 1000;

  /// Deterministic fault injection forwarded into the subject spec: the
  /// runner's session child aborts / hangs on trials hitting the period.
  uint64_t inject_crash_period = 0;
  uint64_t inject_hang_period = 0;

  /// When nonzero, every handshake cross-checks the runner's catalog size
  /// against this value and fails with Internal on mismatch.
  uint32_t expected_catalog_size = 0;

  /// Telemetry sink shared with the session (null = off). Each trial opens
  /// an engine-side "trial" span, records wire latency into
  /// aid_trial_latency_us{transport="socket"} and
  /// aid_endpoint_trial_latency_us{endpoint}, and propagates span context
  /// over the wire so the runner's host-side spans nest under it (see
  /// docs/telemetry.md). Never changes a trial's bytes.
  std::shared_ptr<Telemetry> telemetry;
};

class RemoteTarget : public ReplicableTarget {
 public:
  /// Validates and freezes `spec`. `endpoints` is a preference order:
  /// element 0 is this replica's runner, the rest are failover candidates
  /// for reconnects. The connection is opened lazily on first use, so
  /// building (and cloning into a pool) stays cheap. Returns Unimplemented
  /// on platforms without sockets.
  static Result<std::unique_ptr<RemoteTarget>> Create(
      std::vector<Endpoint> endpoints, const SubjectSpec& spec,
      RemoteOptions options = {});

  ~RemoteTarget() override;

  RemoteTarget(const RemoteTarget&) = delete;
  RemoteTarget& operator=(const RemoteTarget&) = delete;

  Result<TargetRunResult> RunIntervened(
      const std::vector<PredicateId>& intervened, int trials) override;

  /// Another lazily-connecting replica over the same endpoints and frozen
  /// spec, positioned at this target's trial cursor.
  Result<std::unique_ptr<ReplicableTarget>> Clone() const override;

  void SeekTrial(uint64_t trial_index) override { trial_cursor_ = trial_index; }
  uint64_t trial_position() const override { return trial_cursor_; }

  uint64_t executions() const override { return executions_; }
  TargetHealth health() const override { return health_; }

  /// Keepalive probe of the live connection (connecting first if needed):
  /// PING, await the matching PONG. Aborted when the runner is gone.
  Status Ping(int timeout_ms = 5000);

  /// Catalog size the runner reported at handshake; 0 before first connect.
  uint32_t remote_catalog_size() const { return remote_catalog_size_; }

  /// The endpoint the current/next connection targets.
  const Endpoint& current_endpoint() const {
    return endpoints_[endpoint_index_ % endpoints_.size()];
  }

  const RemoteOptions& options() const { return options_; }

 private:
  friend class FleetTarget;
  RemoteTarget(std::shared_ptr<const std::string> spec_bytes,
               std::vector<Endpoint> endpoints, RemoteOptions options)
      : spec_bytes_(std::move(spec_bytes)),
        endpoints_(std::move(endpoints)),
        options_(std::move(options)) {}

  /// Connects + handshakes if no connection is live, failing over across
  /// endpoints with backoff (see RemoteOptions).
  Status EnsureConnected();
  /// Charges a failed connect/handshake attempt against `endpoint` on the
  /// latency board (no-op outside a fleet), so dead runners read as slow
  /// instead of staying "unmeasured" and attracting placements forever.
  void RecordEndpointFailure(const Endpoint& endpoint);
  /// Drops the connection (idempotent).
  void Disconnect();
  /// Disconnect + EnsureConnected with the reconnect budget applied.
  Status Reconnect();
  Result<PredicateLog> RunOneTrial(const std::vector<PredicateId>& intervened,
                                   uint64_t trial_index);

  std::shared_ptr<const std::string> spec_bytes_;
  std::vector<Endpoint> endpoints_;
  size_t endpoint_index_ = 0;  ///< preference cursor (advances on failover)
  RemoteOptions options_;

  std::unique_ptr<SocketChannel> channel_;  ///< null: not connected
  uint32_t remote_catalog_size_ = 0;
  uint64_t ping_token_ = 0;

  /// Shared fleet latency board (may be null outside a fleet): every
  /// trial's wire-level timing is reported against the endpoint that
  /// served it, steering FleetTarget's replica placement.
  std::shared_ptr<LatencyBoard> latency_board_;
  /// The endpoint this replica's board placement is registered on (set by
  /// FleetTarget when dealing, moved on reconnect, released on
  /// destruction) -- keeps the board's placement counts equal to the live
  /// replica population instead of growing without bound.
  std::optional<Endpoint> placed_on_;

  uint64_t trial_cursor_ = 0;
  uint64_t executions_ = 0;
  TargetHealth health_;
};

}  // namespace aid

#endif  // AID_NET_REMOTE_TARGET_H_
