#include "net/runner.h"

#include <cerrno>
#include <utility>

#if AID_NET_SUPPORTED
#include <poll.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <chrono>
#include <new>
#endif

#include "net/channel.h"
#include "proc/client.h"
#include "proc/subject_host.h"

namespace aid {

#if AID_NET_SUPPORTED

namespace {

/// Closes every descriptor >= lowest. Fork duplicates the whole descriptor
/// table, so a fresh session child holds dups of its SIBLINGS' connections
/// (and, for an embedded Runner, of everything its host process had open).
/// Left open, those dups break the protocol's death detection: killing a
/// session child would not deliver EOF to its engine while any sibling
/// still holds the socket.
void CloseDescriptorsFrom(int lowest) {
#if defined(__linux__) && defined(SYS_close_range)
  if (::syscall(SYS_close_range, static_cast<unsigned>(lowest), ~0U, 0) == 0) {
    return;
  }
#endif
  const long open_max = ::sysconf(_SC_OPEN_MAX);
  const int limit =
      open_max > 0 && open_max < 65536 ? static_cast<int>(open_max) : 65536;
  for (int fd = lowest; fd < limit; ++fd) ::close(fd);
}

/// Session-child watchdog: exits the child the moment the engine hangs up.
/// The protocol loop notices EOF on its own whenever it is reading -- but
/// a genuinely HUNG subject never reads again, and the engine that timed
/// its trial out can only drop the connection. Without this thread that
/// child would sleep on the runner forever (one leaked process per
/// timed-out trial). poll()ing for peer hangup consumes no protocol bytes,
/// so it runs safely beside the main loop's reads.
void StartPeerHangupWatchdog(int conn_fd) {
#if defined(POLLRDHUP)
  std::thread([conn_fd]() {
    for (;;) {
      struct pollfd pfd;
      pfd.fd = conn_fd;
      pfd.events = POLLRDHUP;
      const int rc = ::poll(&pfd, 1, -1);
      if (rc < 0 && errno == EINTR) continue;
      if (rc > 0 &&
          (pfd.revents & (POLLRDHUP | POLLERR | POLLHUP | POLLNVAL)) != 0) {
        ::_exit(0);
      }
      if (rc < 0) return;  // poll broke; leave exiting to the main loop
    }
  }).detach();
#else
  // Without POLLRDHUP (non-Linux) there is no bytes-free hangup probe;
  // hung subjects then outlive their engine until the runner restarts.
  (void)conn_fd;
#endif
}

/// Steady-clock microseconds; all processes of one machine share this
/// clock, so children can compute daemon uptime from the forked-in anchor.
uint64_t SteadyNowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// How long the admission-rejection conversation may hold the accept loop.
/// A well-behaved engine sends its SPEC right behind our HELLO, so the
/// exchange is one round trip; the bound only caps a stalled peer.
constexpr int kRejectDeadlineMs = 2000;

/// Admission control at the cap: the daemon itself (no fork) speaks just
/// enough of the protocol to return a structured error -- HELLO out, the
/// client's opening frame (its SPEC) in, ERROR out. Reading the client's
/// frame before replying matters: closing with the client's SPEC still in
/// flight would raise a TCP reset that can destroy the queued ERROR before
/// the client reads it, turning a clean "runner full" status into an opaque
/// dropped connection.
void RejectSession(int conn_fd, int max_sessions) {
  SocketChannel channel(conn_fd);  // owns conn_fd; closes on return
  HelloMsg hello;
  hello.pid = static_cast<uint64_t>(::getpid());
  if (!channel.Write(ProcMsgType::kHello, EncodeHello(hello),
                     kRejectDeadlineMs)
           .ok()) {
    return;
  }
  (void)channel.Read(kRejectDeadlineMs);
  (void)channel.Write(
      ProcMsgType::kError,
      EncodeError(Status::FailedPrecondition(
          "runner at its session cap (--max-sessions " +
          std::to_string(max_sessions) +
          "): no replica slot for this connection; retry once a session "
          "ends or raise the cap")),
      kRejectDeadlineMs);
}

}  // namespace

Result<std::unique_ptr<Runner>> Runner::Start(RunnerOptions options) {
  if (options.accept_poll_ms <= 0) {
    // The tick doubles as the Stop() latency bound; 0 would block the
    // accept loop forever and deadlock Stop()/the destructor.
    options.accept_poll_ms = 200;
  }
  auto runner = std::unique_ptr<Runner>(new Runner(std::move(options)));
  // Map the shared stats block BEFORE any fork so every session child
  // inherits the same physical page and STATS connections read node-wide
  // totals. Mapping failure is not fatal -- the daemon just serves zeros.
  void* stats_mem =
      ::mmap(nullptr, sizeof(SharedHostStats), PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (stats_mem != MAP_FAILED) {
    runner->shared_stats_ = new (stats_mem) SharedHostStats();
  }
  runner->start_micros_ = SteadyNowMicros();
  AID_ASSIGN_OR_RETURN(runner->listen_fd_,
                       ListenOn(runner->options_.host, runner->options_.port,
                                runner->options_.backlog));
  AID_ASSIGN_OR_RETURN(runner->port_, BoundPort(runner->listen_fd_));
  runner->accept_thread_ = std::thread([raw = runner.get()]() {
    raw->AcceptLoop();
  });
  return runner;
}

Runner::~Runner() {
  Stop();
  if (shared_stats_ != nullptr) {
    // Children hold their own inherited mappings; this only drops ours.
    ::munmap(shared_stats_, sizeof(SharedHostStats));
    shared_stats_ = nullptr;
  }
}

void Runner::AcceptLoop() {
  while (!stopping_.load()) {
    Result<int> conn =
        AcceptConnection(listen_fd_, options_.accept_poll_ms);
    ReapSessions(/*kill_first=*/false);
    if (!conn.ok()) {
      if (conn.status().code() == StatusCode::kDeadlineExceeded) continue;
      // The listen socket broke (or Stop() closed it): the daemon is done.
      return;
    }
    if (options_.max_sessions > 0) {
      int live = 0;
      {
        std::lock_guard<std::mutex> lock(sessions_mu_);
        live = static_cast<int>(session_pids_.size());
      }
      if (live >= options_.max_sessions) {
        RejectSession(*conn, options_.max_sessions);
        continue;
      }
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(*conn);
      continue;
    }
    if (pid == 0) {
      // Session child: this process IS the sandbox. Everything of the
      // daemon except the one connection is let go -- the connection is
      // parked at descriptor 3 and every other non-std descriptor closed,
      // so sibling sessions' sockets get their EOF the instant their own
      // child dies. Deliberate subject crashes abort without littering
      // core dumps.
      int conn_fd = *conn;
      if (conn_fd != 3) {
        ::dup2(conn_fd, 3);
        conn_fd = 3;
      }
      CloseDescriptorsFrom(4);
      struct rlimit no_core;
      no_core.rlim_cur = 0;
      no_core.rlim_max = 0;
      ::setrlimit(RLIMIT_CORE, &no_core);
      StartPeerHangupWatchdog(conn_fd);
      SocketChannel channel(conn_fd);
      SubjectHostOptions host;
      host.trial_delay_us = options_.trial_delay_us;
      host.shared_stats = shared_stats_;
      host.daemon_start_micros = start_micros_;
      // +1: this very connection counts, and the parent increments only
      // after the fork returns.
      host.daemon_sessions_started =
          static_cast<uint64_t>(sessions_started_.load()) + 1;
      ::_exit(RunSubjectHost(channel, host));
    }
    ::close(*conn);
    sessions_started_.fetch_add(1);
    std::lock_guard<std::mutex> lock(sessions_mu_);
    session_pids_.push_back(pid);
  }
}

void Runner::ReapSessions(bool kill_first) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  // Only the recorded pids are reaped -- never a blanket waitpid(-1):
  // an embedding process (tests, benches) may own unrelated children,
  // e.g. SubprocessTarget subject hosts.
  std::vector<int64_t> alive;
  alive.reserve(session_pids_.size());
  for (const int64_t pid64 : session_pids_) {
    const pid_t pid = static_cast<pid_t>(pid64);
    if (kill_first) {
      ::kill(pid, SIGKILL);
      WaitpidRetry(pid, nullptr, 0);
      continue;
    }
    const pid_t rc = WaitpidRetry(pid, nullptr, WNOHANG);
    if (rc == 0) alive.push_back(pid64);  // still running
  }
  session_pids_ = std::move(alive);
}

void Runner::KillSessions() { ReapSessions(/*kill_first=*/true); }

int Runner::live_sessions() {
  ReapSessions(/*kill_first=*/false);
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return static_cast<int>(session_pids_.size());
}

void Runner::Stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ReapSessions(/*kill_first=*/true);
}

Result<std::string> FetchRunnerStats(const std::string& endpoint,
                                     int timeout_ms) {
  AID_ASSIGN_OR_RETURN(Endpoint parsed, ParseEndpoint(endpoint));
  AID_ASSIGN_OR_RETURN(int fd, ConnectTo(parsed, timeout_ms));
  SocketChannel channel(fd);
  // The forked stats child speaks the full host protocol: it announces
  // itself first, then answers STATS while still waiting for a SPEC.
  AID_ASSIGN_OR_RETURN(ProcFrame hello, channel.Read(timeout_ms));
  if (hello.type != ProcMsgType::kHello) {
    return Status::Internal("runner stats: expected HELLO, got " +
                            std::string(ProcMsgTypeName(hello.type)));
  }
  AID_RETURN_IF_ERROR(channel.Write(ProcMsgType::kStats, "", timeout_ms));
  AID_ASSIGN_OR_RETURN(ProcFrame reply, channel.Read(timeout_ms));
  if (reply.type != ProcMsgType::kStatsReply) {
    return Status::Internal("runner stats: expected STATS_REPLY, got " +
                            std::string(ProcMsgTypeName(reply.type)));
  }
  AID_ASSIGN_OR_RETURN(StatsReplyMsg msg, DecodeStatsReply(reply.payload));
  (void)channel.Write(ProcMsgType::kShutdown, "", timeout_ms);
  return msg.json;
}

#else  // !AID_NET_SUPPORTED

Result<std::unique_ptr<Runner>> Runner::Start(RunnerOptions) {
  return Status::Unimplemented(
      "Runner: the remote fleet requires sockets and fork, which this "
      "platform does not provide");
}

Runner::~Runner() = default;
void Runner::AcceptLoop() {}
void Runner::ReapSessions(bool) {}
void Runner::KillSessions() {}
int Runner::live_sessions() { return 0; }
void Runner::Stop() {}

Result<std::string> FetchRunnerStats(const std::string&, int) {
  return Status::Unimplemented(
      "runner stats: the remote fleet requires sockets, which this platform "
      "does not provide");
}

#endif  // AID_NET_SUPPORTED

}  // namespace aid
