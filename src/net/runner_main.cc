// aid_runner: the remote-fleet runner daemon.
//
// Listens on a TCP port and hosts one sandboxed subject replica (a forked
// child running proc::RunSubjectHost) per accepted engine connection --
// see src/net/runner.h and docs/remote_protocol.md.
//
// Usage: aid_runner [--host H] [--port P] [--slow-us N] [--max-sessions N]
//        aid_runner --stats HOST:PORT
//
//   --host          bind address (default 127.0.0.1; 0.0.0.0 exposes the
//                   unauthenticated protocol to the network -- private
//                   networks only)
//   --port          listen port (default 7601; 0 = ephemeral)
//   --slow-us       extra latency per trial in microseconds (default 0):
//                   makes this runner deliberately slow, for heterogeneous-
//                   fleet benches/tests of the latency-aware scheduler
//   --max-sessions  admission cap (default 0 = unlimited): with N live
//                   session children, further connections get a structured
//                   FAILED_PRECONDITION ERROR frame instead of a fork --
//                   an engine fleet cannot fork this machine into the
//                   ground
//   --stats         client mode: connect to a running daemon and print its
//                   JSON stats document (uptime, sessions started,
//                   node-wide trial totals, trial latency histogram) to
//                   stdout, then exit
//
// Prints "aid_runner listening on H:P" once ready (scripts scrape it) and
// runs until SIGINT/SIGTERM.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/runner.h"

#if AID_NET_SUPPORTED
#include <signal.h>
#include <unistd.h>

namespace {

volatile sig_atomic_t g_stop = 0;
void HandleStop(int) { g_stop = 1; }

}  // namespace
#endif

int main(int argc, char** argv) {
  if (!aid::RemoteFleetSupported()) {
    std::fprintf(stderr, "aid_runner: unsupported on this platform\n");
    return 3;
  }
#if AID_NET_SUPPORTED
  aid::RunnerOptions options;
  options.port = 7601;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      options.host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      options.port = std::atoi(argv[++i]);
    } else if (arg == "--slow-us" && i + 1 < argc) {
      const long long slow = std::atoll(argv[++i]);
      options.trial_delay_us =
          slow > 0 ? static_cast<uint64_t>(slow) : 0;
    } else if (arg == "--max-sessions" && i + 1 < argc) {
      const int cap = std::atoi(argv[++i]);
      options.max_sessions = cap > 0 ? cap : 0;
    } else if (arg == "--stats" && i + 1 < argc) {
      auto stats = aid::FetchRunnerStats(argv[++i]);
      if (!stats.ok()) {
        std::fprintf(stderr, "aid_runner --stats: %s\n",
                     stats.status().ToString().c_str());
        return 1;
      }
      std::printf("%s\n", stats->c_str());
      return 0;
    } else {
      std::fprintf(stderr,
                   "usage: aid_runner [--host H] [--port P] [--slow-us N] "
                   "[--max-sessions N]\n"
                   "       aid_runner --stats HOST:PORT\n");
      return 2;
    }
  }

  auto runner = aid::Runner::Start(options);
  if (!runner.ok()) {
    std::fprintf(stderr, "aid_runner: %s\n",
                 runner.status().ToString().c_str());
    return 1;
  }
  std::printf("aid_runner listening on %s:%d\n", (*runner)->host().c_str(),
              (*runner)->port());
  std::fflush(stdout);

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleStop;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  while (g_stop == 0) {
    ::usleep(100 * 1000);
  }
  (*runner)->Stop();
  std::printf("aid_runner: stopped (%d sessions served)\n",
              (*runner)->sessions_started());
  return 0;
#else
  return 3;
#endif
}
