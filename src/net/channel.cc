#include "net/channel.h"

#if AID_NET_SUPPORTED
#include <unistd.h>
#endif

namespace aid {

Status SocketChannel::Write(ProcMsgType type, std::string_view payload,
                            int deadline_ms) {
  if (fd_ < 0) return Status::Internal("socket channel: closed");
  // Sockets buffer finitely just like pipes: a peer that stops draining
  // must surface as DeadlineExceeded, so deadline writes go through the
  // poll-bounded path.
  return WriteFrameDeadline(fd_, type, payload, deadline_ms);
}

Result<ProcFrame> SocketChannel::Read(int deadline_ms) {
  if (fd_ < 0) return Status::Internal("socket channel: closed");
  return ReadFrameDeadline(fd_, deadline_ms);
}

void SocketChannel::Close() {
#if AID_NET_SUPPORTED
  if (fd_ >= 0) ::close(fd_);
#endif
  fd_ = -1;
}

}  // namespace aid
