#include "net/latency.h"

#include "common/math_util.h"
#include "telemetry/telemetry.h"

namespace aid {

LatencyBoard::LatencyBoard(double ewma_alpha)
    : ewma_alpha_(ewma_alpha > 0.0 && ewma_alpha <= 1.0 ? ewma_alpha : 0.25) {}

void LatencyBoard::AttachTelemetry(Telemetry* telemetry) {
  std::lock_guard<std::mutex> lock(mu_);
  telemetry_ = telemetry;
  // Publish what the board already knows, so attaching after warm-up does
  // not leave gauges at zero until the next sample.
  if (telemetry_ != nullptr) {
    for (const auto& [key, entry] : entries_) PublishLocked(key, entry);
  }
}

void LatencyBoard::PublishLocked(const std::string& key, const Entry& entry) {
  if (telemetry_ == nullptr) return;
  MetricsRegistry& reg = telemetry_->metrics();
  reg.GetGauge("aid_endpoint_ewma_micros", {{"endpoint", key}})
      ->Set(static_cast<uint64_t>(entry.ewma + 0.5));
  reg.GetGauge("aid_endpoint_placements", {{"endpoint", key}})
      ->Set(entry.placements);
}

void LatencyBoard::RecordTrial(const Endpoint& endpoint, uint64_t micros) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[endpoint.ToString()];
  entry.ewma =
      FoldEwma(entry.ewma, static_cast<double>(micros), ewma_alpha_);
  entry.last_sample = std::chrono::steady_clock::now();
  PublishLocked(endpoint.ToString(), entry);
}

size_t LatencyBoard::PlaceReplica(const std::vector<Endpoint>& endpoints) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto now = std::chrono::steady_clock::now();
  const size_t n = endpoints.size();
  size_t pick = 0;
  bool have_pick = false;
  bool pick_unmeasured = false;
  double pick_score = 0;
  uint64_t pick_placements = 0;
  for (size_t offset = 0; offset < n; ++offset) {
    // Walk in rotated order so exploration ties break round-robin instead
    // of always favoring the front of the list.
    const size_t i = (rotation_ + offset) % n;
    const Entry& entry = entries_[endpoints[i].ToString()];
    // Stale estimates are re-explored like unmeasured endpoints: an
    // endpoint placement has been avoiding cannot refresh its own sample,
    // so without this a single connect-failure penalty would exile a
    // since-recovered runner for the whole session.
    const bool unmeasured =
        entry.ewma == 0 || now - entry.last_sample > kLatencySampleStaleAfter;
    // Predicted per-replica latency if we add one more replica here.
    const double score =
        entry.ewma * static_cast<double>(entry.placements + 1);
    const bool better =
        !have_pick ||
        // Unmeasured endpoints outrank measured ones (explore first) ...
        (unmeasured && !pick_unmeasured) ||
        // ... among unmeasured, fewest placements wins ...
        (unmeasured && pick_unmeasured &&
         entry.placements < pick_placements) ||
        // ... among measured, lowest predicted latency wins.
        (!unmeasured && !pick_unmeasured && score < pick_score);
    if (better) {
      pick = i;
      have_pick = true;
      pick_unmeasured = unmeasured;
      pick_score = score;
      pick_placements = entry.placements;
    }
  }
  Entry& picked = entries_[endpoints[pick].ToString()];
  ++picked.placements;
  ++rotation_;
  PublishLocked(endpoints[pick].ToString(), picked);
  return pick;
}

void LatencyBoard::ReleaseReplica(const Endpoint& endpoint) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(endpoint.ToString());
  if (it != entries_.end() && it->second.placements > 0) {
    --it->second.placements;
    PublishLocked(it->first, it->second);
  }
}

void LatencyBoard::MoveReplica(const Endpoint* from, const Endpoint& to) {
  std::lock_guard<std::mutex> lock(mu_);
  if (from != nullptr) {
    const auto it = entries_.find(from->ToString());
    if (it != entries_.end() && it->second.placements > 0) {
      --it->second.placements;
      PublishLocked(it->first, it->second);
    }
  }
  Entry& entry = entries_[to.ToString()];
  ++entry.placements;
  PublishLocked(to.ToString(), entry);
}

uint64_t LatencyBoard::ewma_micros(const Endpoint& endpoint) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(endpoint.ToString());
  if (it == entries_.end()) return 0;
  return static_cast<uint64_t>(it->second.ewma + 0.5);
}

uint64_t LatencyBoard::placements(const Endpoint& endpoint) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(endpoint.ToString());
  if (it == entries_.end()) return 0;
  return it->second.placements;
}

}  // namespace aid
