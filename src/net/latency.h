// LatencyBoard: shared per-endpoint latency estimates for replica placement.
//
// A heterogeneous fleet -- one runner on a loaded machine, one across a
// slow link -- makes blind round-robin placement the wrong default: every
// replica dealt to the slow runner drags its whole share of each round to
// the straggler's pace. The board closes the loop. RemoteTargets feed it
// one sample per trial (the wire-level timing proc/client charges into
// TargetHealth::trial_micros), it keeps an EWMA per endpoint, and
// FleetTarget asks it where the next replica should live:
//
//   * endpoints with no measurement yet -- or whose last sample is older
//     than the staleness window -- are placed first (round-robin by fewest
//     placements): a fleet must be explored before it can be ranked, with
//     no data at all this reproduces the old round-robin exactly, and the
//     staleness re-probe keeps one transient failure from exiling a
//     runner for the whole session (a penalized endpoint stops receiving
//     placements, so only re-exploration can ever correct its estimate);
//   * measured endpoints are ranked by predicted per-replica latency,
//     ewma * (placements + 1): runners are fork-per-connection, so
//     replicas sharing a runner share its machine, and the multiplier
//     keeps a uniform fleet balanced while a 10x-slower runner ends up
//     hosting ~1/10 the replicas.
//
// Placement is a scheduling decision only: trials carry absolute positions
// (ReplicableTarget::SeekTrial), so where a replica lives can never change
// a byte of the discovery report.
//
// Thread-safe: RemoteTargets on pool workers record concurrently with
// placements on the driving thread.

#ifndef AID_NET_LATENCY_H_
#define AID_NET_LATENCY_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "net/socket.h"

namespace aid {

class Telemetry;  // telemetry/telemetry.h; nullable everywhere below

/// How long a latency estimate is trusted for placement without a fresh
/// sample. An endpoint nothing has measured for this long is re-explored
/// like an unmeasured one -- the recovery path for runners that were
/// down (and penalized) but came back.
inline constexpr std::chrono::seconds kLatencySampleStaleAfter{15};

class LatencyBoard {
 public:
  /// EWMA smoothing factor for trial samples, in (0, 1]; out-of-range
  /// values fall back to the default.
  explicit LatencyBoard(double ewma_alpha = 0.25);

  /// Mirrors the board's state into `telemetry` (nullable, non-owning;
  /// must outlive the board): endpoint EWMAs surface as
  /// aid_endpoint_ewma_micros gauges and placement counts as
  /// aid_endpoint_placements gauges, refreshed on every sample / placement
  /// change. Null detaches.
  void AttachTelemetry(Telemetry* telemetry);

  /// Folds one trial's wall-clock (microseconds) into `endpoint`'s EWMA.
  void RecordTrial(const Endpoint& endpoint, uint64_t micros);

  /// Picks the endpoint the next replica should bind to (an index into
  /// `endpoints`) and registers the placement. See file comment for the
  /// policy. `endpoints` must be non-empty.
  size_t PlaceReplica(const std::vector<Endpoint>& endpoints);

  /// Releases one placement previously registered on `endpoint` (no-op at
  /// zero). Reconnects MOVE a replica's placement (release + place), and a
  /// dying replica releases its registration -- without this the
  /// placements term of the score only ever grows, drifting away from the
  /// real replica count until it steers placement toward slow endpoints.
  void ReleaseReplica(const Endpoint& endpoint);

  /// Re-registers a replica on the SPECIFIC endpoint it actually landed on
  /// (releasing `from` first when non-null): how a replica reports that
  /// connection failover moved it somewhere the placement pick did not
  /// anticipate, keeping the board's counts equal to where replicas really
  /// live.
  void MoveReplica(const Endpoint* from, const Endpoint& to);

  /// Current estimate for one endpoint, us/trial; 0 before any sample.
  uint64_t ewma_micros(const Endpoint& endpoint) const;

  /// Replicas placed on one endpoint so far.
  uint64_t placements(const Endpoint& endpoint) const;

 private:
  struct Entry {
    double ewma = 0;          ///< us/trial; 0 = unmeasured
    uint64_t placements = 0;  ///< replicas dealt here
    /// When the last sample arrived; estimates older than
    /// kLatencySampleStaleAfter lose placement trust (re-explored).
    std::chrono::steady_clock::time_point last_sample{};
  };

  /// Pushes `key`'s current gauges into telemetry_ (caller holds mu_).
  void PublishLocked(const std::string& key, const Entry& entry);

  double ewma_alpha_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;  ///< keyed by Endpoint::ToString()
  uint64_t rotation_ = 0;  ///< round-robin cursor for exploration ties
  Telemetry* telemetry_ = nullptr;  ///< nullable; see AttachTelemetry
};

}  // namespace aid

#endif  // AID_NET_LATENCY_H_
